module mumak

go 1.22

// Fuzz-then-hunt: the paper notes that bug coverage is bounded by the
// workload's code coverage and that automatic workload generators like
// PMFuzz are complementary (§4). This example combines the two: a
// PMFuzz-style loop evolves a deliberately poor seed workload towards
// more unique failure points, then Mumak analyses the target with both
// workloads — the seeded resize bug in CCEH is only reachable once the
// fuzzer has grown the workload enough to trigger segment splits.
//
//	go run ./examples/fuzzhunt
package main

import (
	"fmt"
	"log"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/cceh"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/pmfuzz"
	"mumak/internal/workload"
)

func main() {
	cfg := apps.Config{PoolSize: 8 << 20, Bugs: bugs.Enable(cceh.BugDirPublishEarly)}
	mk := func() harness.Application { return cceh.New(cfg) }

	// A weak seed: 40 operations over 6 keys never fills a segment, so
	// the buggy split path never runs.
	seed := workload.Generate(workload.Config{N: 40, Seed: 3, Keyspace: 6})

	analyse := func(label string, w workload.Workload) int {
		res, err := core.Analyze(mk(), w, core.Config{Budget: time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		n := len(res.Report.Bugs())
		fmt.Printf("%-16s %4d ops, %3d failure points -> %d bug(s)\n",
			label, w.Len(), res.Tree.Len(), n)
		return n
	}

	before := analyse("seed workload", seed)

	fz, err := pmfuzz.Fuzz(mk, seed, pmfuzz.Config{Rounds: 24, MutantsPerRound: 8, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzer: coverage %d -> %d unique failure points (%d evaluations)\n",
		fz.SeedCoverage, fz.BestCoverage, fz.Evaluated)

	after := analyse("fuzzed workload", fz.Best)
	if before == 0 && after > 0 {
		fmt.Println("the split-path bug was unreachable until the fuzzer grew the workload")
	}
}

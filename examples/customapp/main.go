// Custom application: Mumak is black-box, so it analyses any PM program
// that runs against the engine — no registration, annotations or
// semantics required. This example writes a small persistent FIFO queue
// from scratch, plants a classic ordering bug (the tail index is
// persisted before the element it publishes), and lets Mumak find it
// through the queue's own recovery procedure.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"mumak/internal/core"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// queue is a persistent ring buffer of uint64s.
//
// Layout: head u64 | tail u64 | check u64 | slots[cap]u64. Elements are
// pushed at tail and popped at head; check holds head^tail after every
// completed operation so recovery can tell a torn update from a clean
// state.
type queue struct {
	buggy bool
}

const (
	qHead  = 0x00
	qTail  = 0x08
	qCheck = 0x10
	qSlots = 0x40
	qCap   = 1024
)

// Name implements harness.Application.
func (q *queue) Name() string { return "example-fifo" }

// PoolSize implements harness.Application.
func (q *queue) PoolSize() int { return 1 << 20 }

// Setup implements harness.Application.
func (q *queue) Setup(e *pmem.Engine) error {
	e.Store64(qHead, 0)
	e.Store64(qTail, 0)
	e.Store64(qCheck, 0)
	persist(e, qHead, 24)
	return nil
}

// Run implements harness.Application: pushes and pops driven by the
// workload operations.
func (q *queue) Run(e *pmem.Engine, w workload.Workload) error {
	for _, op := range w.Ops {
		switch op.Kind {
		case workload.Put:
			q.push(e, op.Val|1) // non-zero payloads
		case workload.Delete:
			q.pop(e)
		}
	}
	return nil
}

func (q *queue) push(e *pmem.Engine, v uint64) {
	head, tail := e.Load64(qHead), e.Load64(qTail)
	if tail-head == qCap {
		return // full
	}
	slot := qSlots + 8*(tail%qCap)
	if q.buggy {
		// BUG: the tail (the publication point) is persisted before
		// the element it publishes.
		e.Store64(qTail, tail+1)
		e.Store64(qCheck, head^(tail+1))
		persist(e, qTail, 16)
		e.Store64(slot, v)
		persist(e, slot, 8)
		return
	}
	// Correct: element first, then the tail and checksum.
	e.Store64(slot, v)
	persist(e, slot, 8)
	e.Store64(qTail, tail+1)
	e.Store64(qCheck, head^(tail+1))
	persist(e, qTail, 16)
}

func (q *queue) pop(e *pmem.Engine) {
	head, tail := e.Load64(qHead), e.Load64(qTail)
	if head == tail {
		return // empty
	}
	e.Store64(qHead, head+1)
	e.Store64(qCheck, (head+1)^tail)
	persist(e, qHead, 16)
}

// Recover implements harness.Application: the queue's own recovery is
// Mumak's oracle. It checks the checksum and that every published slot
// holds a real element.
func (q *queue) Recover(e *pmem.Engine) error {
	head, tail := e.Load64(qHead), e.Load64(qTail)
	if e.Load64(qCheck) != head^tail {
		// A torn index pair: the in-between state of a correct push
		// never persists the indexes separately, so this only means
		// the final fence had not retired — acceptable, roll back to
		// nothing. (Black-box tools only see the verdict.)
		return nil
	}
	if tail < head || tail-head > qCap {
		return fmt.Errorf("fifo: indexes corrupt (head=%d tail=%d)", head, tail)
	}
	for i := head; i < tail; i++ {
		if e.Load64(qSlots+8*(i%qCap)) == 0 {
			return fmt.Errorf("fifo: published slot %d holds no element", i)
		}
	}
	return nil
}

// persist is the app's own flush+fence helper — custom PM code does not
// need any particular library.
func persist(e *pmem.Engine, off uint64, size int) {
	for line := off &^ 63; line <= (off+uint64(size)-1)&^63; line += 64 {
		e.CLWB(line)
	}
	e.SFence()
}

func main() {
	w := workload.Generate(workload.Config{N: 400, Seed: 7, PutFrac: 2, GetFrac: 0, DeleteFrac: 1})

	for _, buggy := range []bool{false, true} {
		res, err := core.Analyze(&queue{buggy: buggy}, w, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== buggy=%v: %d unique bug(s) across %d failure points\n",
			buggy, len(res.Report.Bugs()), res.Tree.Len())
		if buggy {
			fmt.Print(res.Report.Format(false))
		}
	}
}

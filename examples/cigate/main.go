// CI gate: the paper's motivating deployment — Mumak is fast and
// black-box enough to run inside a continuous-integration pipeline, so a
// crash-consistency regression fails the build before it merges.
//
// This example analyses a matrix of targets with a per-target time
// budget, prints one summary line each, and exits non-zero if any
// target has bugs — exactly the shape of a CI job.
//
//	go run ./examples/cigate
package main

import (
	"fmt"
	"os"
	"time"

	"mumak/internal/apps"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/wort"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/workload"
)

// job is one CI matrix entry. The wort entry carries a seeded regression
// so the gate has something to catch.
type job struct {
	target string
	cfg    apps.Config
}

func main() {
	jobs := []job{
		{"btree", apps.Config{SPT: true, PoolSize: 8 << 20}},
		{"hashmap", apps.Config{PoolSize: 8 << 20}},
		{"cceh", apps.Config{PoolSize: 8 << 20}},
		{"levelhash", apps.Config{PoolSize: 8 << 20, WithRecovery: true}},
		{"wort", apps.Config{PoolSize: 8 << 20, Bugs: bugs.Enable("wort/child-publish-early")}},
	}
	w := workload.Generate(workload.Config{N: 1000, Seed: 2026})
	failed := 0
	for _, j := range jobs {
		app, err := apps.New(j.target, j.cfg)
		if err != nil {
			fmt.Printf("FAIL  %-12s %v\n", j.target, err)
			failed++
			continue
		}
		res, err := core.Analyze(app, w, core.Config{Budget: time.Minute})
		if err != nil {
			fmt.Printf("FAIL  %-12s %v\n", j.target, err)
			failed++
			continue
		}
		if n := len(res.Report.Bugs()); n > 0 {
			fmt.Printf("FAIL  %-12s %d bug(s) in %s\n", j.target, n, res.Elapsed.Round(time.Millisecond))
			failed++
			continue
		}
		fmt.Printf("ok    %-12s clean in %s (%d failure points)\n",
			j.target, res.Elapsed.Round(time.Millisecond), res.Tree.Len())
	}
	if failed > 0 {
		fmt.Printf("\n%d target(s) failed the crash-consistency gate\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall targets passed the crash-consistency gate")
}

// Quickstart: analyse a PM application with Mumak in a dozen lines.
//
// The target is the PMDK btree example data store with one seeded
// crash-consistency defect (the element count is updated with a
// non-transactional persisted store). Mumak needs nothing but the
// application and a workload: no annotations, no library knowledge, no
// test oracles — the recovery procedure is the oracle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/workload"
)

func main() {
	// The "binary": a PM application. The seeded bug stands in for the
	// defect you are hunting.
	app := btree.New(apps.Config{
		SPT:      true,
		PoolSize: 8 << 20,
		Bugs:     bugs.Enable(btree.BugCountOutsideTx),
	})

	// The workload that drives it: 2000 operations, one third each of
	// puts, gets and deletes.
	w := workload.Generate(workload.Config{N: 2000, Seed: 1})

	// The analysis: fault injection at every unique failure point plus
	// single-pass trace analysis.
	res, err := core.Analyze(app, w, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Report.Format(false))
	fmt.Printf("\ninjected %d faults at %d unique failure points over a %d-record trace\n",
		res.Injections, res.Tree.Len(), res.TraceLen)
}

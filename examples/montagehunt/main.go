// Montage hunt: the §6.4 story. Montage ships its own persistent
// allocator and does not use PMDK, so every PMDK-annotation-based tool
// is blind to it — but Mumak only needs the binary and a workload. This
// example analyses both Montage hashtables with the two historical bugs
// enabled and prints the reports that correspond to the two upstream
// fixes (urcs-sync/Montage pull #36 and commit 3384e50).
//
//	go run ./examples/montagehunt
package main

import (
	"fmt"
	"log"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/montageht"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func main() {
	cfg := apps.Config{PoolSize: 16 << 20, MontageBuggy: true}
	targets := []harness.Application{
		montageht.New(cfg),
		montageht.NewLockFree(cfg),
	}
	w := workload.Generate(workload.Config{N: 3000, Seed: 11})
	for _, app := range targets {
		res, err := core.Analyze(app, w, core.Config{Budget: 2 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d unique bug(s) in %s\n",
			app.Name(), len(res.Report.Bugs()), res.Elapsed.Round(time.Millisecond))
		fmt.Print(res.Report.Format(false))
		fmt.Println()
	}
	fmt.Println("Both defects correspond to confirmed-and-fixed upstream Montage bugs;")
	fmt.Println("annotation-based tools cannot analyse Montage at all (it does not use PMDK).")
}

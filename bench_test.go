// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§6), plus the ablation benches for the design
// decisions DESIGN.md calls out and microbenchmarks of the hot
// substrate paths.
//
// The benches run at experiments.Quick scale; the cmd/ drivers run the
// same generators at the larger default scale. Reported custom metrics
// carry the figure data (seconds per tool, failure-point counts,
// coverage percentages) so `go test -bench=. -benchmem` regenerates
// every result in one pass.
package mumak_test

import (
	"fmt"
	"testing"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest/imagedup"
	_ "mumak/internal/apps/art"
	"mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/hashatomic"
	"mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/rbtree"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	_ "mumak/internal/apps/wort"
	"mumak/internal/core"
	"mumak/internal/experiments"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/pmfuzz"
	"mumak/internal/stack"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// --- Figure 3: unique execution paths vs workload size (E1 / C1).

func BenchmarkFig3Coverage(b *testing.B) {
	sizes := experiments.Fig3Sizes(100) // 30 .. 3000 ops
	for i := 0; i < b.N; i++ {
		fig3a, fig3b, err := experiments.Fig3(sizes, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range fig3a {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.Y, "fig3a_paths_"+s.Label)
			}
			for _, s := range fig3b {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.Y, "fig3b_paths_"+s.Label)
			}
		}
	}
}

// --- Figure 4 + Table 2: cross-tool analysis time and resources (E2 / C2).

func benchFig4(b *testing.B, ver pmdk.Version, tag string) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Fig4(ver, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		for _, r := range runs {
			name := fmt.Sprintf("%s_%s_%s_sec", tag, sanitize(r.Tool), sanitize(r.Target))
			secs := r.Elapsed.Seconds()
			if r.Censored {
				// The ∞ bars: report the budget as a floor.
				secs = sc.Budget.Seconds()
			}
			b.ReportMetric(secs, name)
		}
	}
}

func BenchmarkFig4aPMDK16(b *testing.B) { benchFig4(b, pmdk.V16, "fig4a") }
func BenchmarkFig4bPMDK18(b *testing.B) { benchFig4(b, pmdk.V18, "fig4b") }

func BenchmarkTable2Resources(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Fig4(pmdk.V16, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		for _, r := range runs {
			base := fmt.Sprintf("t2_%s_%s_", sanitize(r.Tool), sanitize(r.Target))
			b.ReportMetric(r.CPU, base+"cpu")
			b.ReportMetric(r.RAMx, base+"ramx")
			b.ReportMetric(r.PMx, base+"pmx")
		}
	}
}

// --- §6.2: bug coverage against the seeded registry.

func BenchmarkCoverage(b *testing.B) {
	sc := experiments.Quick()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		res, err := experiments.Coverage(sc, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Percent()), "coverage_pct")
			b.ReportMetric(float64(res.FoundCorrectness), "correctness_found")
			b.ReportMetric(float64(res.FoundPerformance), "performance_found")
		}
	}
}

func BenchmarkCoverageLevelHashNoRecovery(b *testing.B) {
	// The §6.2 oracle story: Level Hashing without its added recovery.
	sc := experiments.Quick()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		res, err := experiments.Coverage(sc, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			found := 0
			for _, o := range res.Outcomes {
				if o.Bug.App == "levelhash" && o.Bug.Correctness() && o.Found {
					found++
				}
			}
			b.ReportMetric(float64(found), "levelhash_found_without_recovery")
		}
	}
}

// --- Figure 5: scalability over large codebases (E3 / C3).

func BenchmarkFig5Scalability(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Fig5(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		for _, r := range runs {
			b.ReportMetric(r.Elapsed.Seconds(), "fig5_"+sanitize(r.Target)+"_sec")
			b.ReportMetric(float64(r.CodeSize), "fig5_"+sanitize(r.Target)+"_loc")
		}
	}
}

// --- §6.4: the four new bugs.

func BenchmarkNewBugs(b *testing.B) {
	sc := experiments.Quick()
	sc.Ops = 3000
	for i := 0; i < b.N; i++ {
		runs, err := experiments.NewBugs(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			found := 0
			for _, r := range runs {
				if r.Found {
					found++
				}
			}
			b.ReportMetric(float64(found), "newbugs_found_of_4")
		}
	}
}

// --- Ablations (DESIGN.md decisions).

// BenchmarkAblationGranularity compares the failure-point search space
// at store vs persistency-instruction granularity (decision 1).
func BenchmarkAblationGranularity(b *testing.B) {
	w := workload.Generate(workload.Config{N: 1000, Seed: 42})
	for _, g := range []fpt.Granularity{fpt.GranPersistency, fpt.GranStore} {
		name := "persistency"
		if g == fpt.GranStore {
			name = "store"
		}
		b.Run(name, func(b *testing.B) {
			var leaves int
			for i := 0; i < b.N; i++ {
				res, err := core.Analyze(btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}), w,
					core.Config{Granularity: g, DisableTraceAnalysis: true, MaxFailurePoints: 50})
				if err != nil {
					b.Fatal(err)
				}
				leaves = res.Tree.Len()
			}
			b.ReportMetric(float64(leaves), "failure_points")
		})
	}
}

// BenchmarkAblationPhases isolates the two pipeline phases (the
// two-pronged design of §4).
func BenchmarkAblationPhases(b *testing.B) {
	w := workload.Generate(workload.Config{N: 1000, Seed: 42})
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"fault-injection-only", core.Config{DisableTraceAnalysis: true}},
		{"trace-analysis-only", core.Config{DisableFaultInjection: true}},
		{"both", core.Config{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}), w, tc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel fault-injection campaign.

// BenchmarkParallelInjection measures the injection-phase wall clock of
// the counter-mode campaign as the worker pool widens. Counter-mode
// replays are independent (private engines, deterministic workload), so
// the phase should scale near-linearly; the reported inject_sec metric
// is the phase time alone, excluding the serial instrumented run.
func BenchmarkParallelInjection(b *testing.B) {
	targets := []struct {
		name string
		mk   func() harness.Application
		w    workload.Workload
	}{
		{
			name: "btree",
			mk:   func() harness.Application { return btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}) },
			w:    workload.Generate(workload.Config{N: 1500, Seed: 42}),
		},
		{
			name: "levelhash",
			mk:   func() harness.Application { return levelhash.New(apps.Config{PoolSize: 4 << 20, WithRecovery: true}) },
			w:    workload.Generate(workload.Config{N: 1500, Seed: 42}),
		},
	}
	for _, tgt := range targets {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", tgt.name, workers), func(b *testing.B) {
				var inject time.Duration
				for i := 0; i < b.N; i++ {
					res, err := core.Analyze(tgt.mk(), tgt.w,
						core.Config{DisableTraceAnalysis: true, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					inject += res.InjectTime
				}
				b.ReportMetric(inject.Seconds()/float64(b.N), "inject_sec")
			})
		}
	}
}

// BenchmarkStackInjectionParallel measures the injection-phase wall
// clock of the stack-mode campaign as the worker pool widens. Since the
// immutable-FPT refactor, stack mode fans its per-leaf targeted replays
// across the same bounded worker pool counter mode uses; each replay is
// independent (private engine, targeted injector, deterministic
// workload), so the phase should scale with available cores. Alongside
// inject_sec the bench reports utilization — worker busy time over
// phase wall time — which shows the fan-out working even on hosts whose
// core count caps the wall-clock speedup.
func BenchmarkStackInjectionParallel(b *testing.B) {
	targets := []struct {
		name string
		mk   func() harness.Application
		w    workload.Workload
	}{
		{
			name: "btree",
			mk:   func() harness.Application { return btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}) },
			w:    workload.Generate(workload.Config{N: 1500, Seed: 42}),
		},
		{
			name: "levelhash",
			mk:   func() harness.Application { return levelhash.New(apps.Config{PoolSize: 4 << 20, WithRecovery: true}) },
			w:    workload.Generate(workload.Config{N: 1500, Seed: 42}),
		},
	}
	for _, tgt := range targets {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", tgt.name, workers), func(b *testing.B) {
				var inject, busy time.Duration
				for i := 0; i < b.N; i++ {
					res, err := core.Analyze(tgt.mk(), tgt.w,
						core.Config{StackMode: true, DisableTraceAnalysis: true, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					inject += res.InjectTime
					busy += res.WorkerBusy
				}
				b.ReportMetric(inject.Seconds()/float64(b.N), "inject_sec")
				if inject > 0 {
					b.ReportMetric(float64(busy)/float64(inject), "utilization")
				}
			})
		}
	}
}

// --- Substrate microbenchmarks.

func BenchmarkEngineStore64(b *testing.B) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Store64(uint64(i%(1<<17))*8, uint64(i))
	}
}

func BenchmarkEnginePersistCycle(b *testing.B) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%(1<<14)) * 64
		e.Store64(addr, uint64(i))
		e.CLWB(addr)
		e.SFence()
	}
}

func BenchmarkEngineWithRecorder(b *testing.B) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 20})
	rec := trace.NewRecorder()
	e.AttachHook(rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Store64(uint64(i%(1<<17))*8, uint64(i))
	}
}

func BenchmarkStackCapture(b *testing.B) {
	tbl := stack.NewTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Capture(0)
	}
}

func BenchmarkFPTInsertLookup(b *testing.B) {
	st := stack.NewTable()
	tree := fpt.New(st)
	ids := make([]stack.ID, 256)
	for i := range ids {
		ids[i] = st.Intern([]uintptr{uintptr(i), uintptr(i >> 2), 7, 9})
		tree.Insert(ids[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tree.Lookup(ids[i%256]) == nil {
			b.Fatal("lost leaf")
		}
	}
}

func BenchmarkTraceAnalysisThroughput(b *testing.B) {
	// Measure the streaming §4.2 analysis, which runs inline with the
	// instrumented execution and never materialises the trace.
	app := btree.New(apps.Config{SPT: true, PoolSize: 4 << 20})
	w := workload.Generate(workload.Config{N: 2000, Seed: 42})
	b.ResetTimer()
	var peakState uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(app, w, core.Config{DisableFaultInjection: true})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.TraceLen))
		peakState = res.AnalyzerPeakStateBytes
	}
	b.ReportMetric(float64(peakState), "peak_state_bytes")
}

func BenchmarkTraceAnalysisStateScaling(b *testing.B) {
	// The online analyzer's working set must be proportional to live
	// cache lines, not trace length: growing the workload 4x grows the
	// analysed event count but must leave peak_state_bytes flat (compare
	// the metric across sub-benchmarks; trace_records grows instead).
	for _, n := range []int{2000, 8000} {
		n := n
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			app := btree.New(apps.Config{SPT: true, PoolSize: 16 << 20})
			w := workload.Generate(workload.Config{N: n, Seed: 42, Keyspace: 500})
			b.ResetTimer()
			var peakState uint64
			var records int
			for i := 0; i < b.N; i++ {
				res, err := core.Analyze(app, w, core.Config{DisableFaultInjection: true})
				if err != nil {
					b.Fatal(err)
				}
				peakState = res.AnalyzerPeakStateBytes
				records = res.TraceLen
			}
			b.ReportMetric(float64(peakState), "peak_state_bytes")
			b.ReportMetric(float64(records), "trace_records")
		})
	}
}

func BenchmarkRecoveryOracle(b *testing.B) {
	// One fault injection + recovery round trip, the unit of §4.1.
	app := btree.New(apps.Config{SPT: true, PoolSize: 1 << 20})
	w := workload.Generate(workload.Config{N: 200, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _, err := harness.Execute(app, w, pmem.Options{})
		if err != nil {
			b.Fatal(err)
		}
		img := eng.PrefixImage()
		e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
		if err := app.Recover(e2); err != nil {
			b.Fatal(err)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkAblationEADR compares analysis under the classic ADR domain
// and the extended eADR domain (§4.3).
func BenchmarkAblationEADR(b *testing.B) {
	w := workload.Generate(workload.Config{N: 1000, Seed: 42})
	for _, eadr := range []bool{false, true} {
		name := "adr"
		if eadr {
			name = "eadr"
		}
		b.Run(name, func(b *testing.B) {
			var bugsFound int
			for i := 0; i < b.N; i++ {
				res, err := core.Analyze(btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}), w,
					core.Config{EADR: eadr})
				if err != nil {
					b.Fatal(err)
				}
				bugsFound = len(res.Report.Bugs())
			}
			b.ReportMetric(float64(bugsFound), "findings")
		})
	}
}

// BenchmarkPMFuzzCoverageGain measures the coverage-guided workload
// generator (the §4 complementary system).
func BenchmarkPMFuzzCoverageGain(b *testing.B) {
	seed := workload.Generate(workload.Config{N: 60, Seed: 1, Keyspace: 4})
	mk := func() harness.Application { return btree.New(apps.Config{SPT: true, PoolSize: 2 << 20}) }
	for i := 0; i < b.N; i++ {
		res, err := pmfuzz.Fuzz(mk, seed, pmfuzz.Config{Rounds: 8, MutantsPerRound: 6, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.SeedCoverage), "seed_paths")
			b.ReportMetric(float64(res.BestCoverage), "fuzzed_paths")
		}
	}
}

// --- Crash-image dedup cache (DESIGN.md item 11).

// BenchmarkCrashImageMaterialisation measures the cost of taking the
// graceful-crash snapshot from a warm engine. The cow variant is the
// engine path: a shared base plus an O(dirty) overlay of the lines
// persisted since the last snapshot. The flat variant materialises a
// private full-pool copy each time — the pre-COW cost every snapshot
// used to pay.
func BenchmarkCrashImageMaterialisation(b *testing.B) {
	for _, poolMB := range []int{1, 4} {
		size := poolMB << 20
		for _, mode := range []string{"cow", "flat"} {
			b.Run(fmt.Sprintf("%s/pool-%dmb", mode, poolMB), func(b *testing.B) {
				e := pmem.NewEngine(pmem.Options{PoolSize: size})
				e.PrefixImage() // establish the snapshot base
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// A handful of persisted lines between snapshots, the
					// shape of consecutive counter-mode failure points.
					for j := 0; j < 4; j++ {
						addr := uint64((i*4+j)%(size/64)) * 64
						e.Store64(addr, uint64(i))
						e.CLWB(addr)
						e.SFence()
					}
					img := e.PrefixImage()
					if mode == "flat" {
						img = img.Clone()
					}
					if img.Len() != size {
						b.Fatal("bad image")
					}
				}
			})
		}
	}
}

// BenchmarkInjectionCampaignCached measures the verdict cache on the
// fixture built for it: an imagedup target whose scan phase makes most
// failure points materialise byte-identical crash images. The cached
// and uncached campaigns produce identical reports; the metrics carry
// the injection time and the measured hit rate.
func BenchmarkInjectionCampaignCached(b *testing.B) {
	w := workload.Generate(workload.Config{N: 100, Seed: 42})
	mk := func() harness.Application {
		return imagedup.Custom("imagedup-bench", imagedup.Clean, 6, 40, 1<<20)
	}
	for _, mode := range []struct {
		name      string
		cacheSize int
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			var inject time.Duration
			var hits, lookups int
			for i := 0; i < b.N; i++ {
				res, err := core.Analyze(mk(), w, core.Config{
					DisableTraceAnalysis: true,
					ImageCacheSize:       mode.cacheSize,
				})
				if err != nil {
					b.Fatal(err)
				}
				inject += res.InjectTime
				hits += res.ImageCacheHits
				lookups += res.ImageCacheHits + res.ImageCacheMisses
			}
			b.ReportMetric(inject.Seconds()/float64(b.N), "inject_sec")
			if lookups > 0 {
				b.ReportMetric(100*float64(hits)/float64(lookups), "hit_pct")
			}
		})
	}
}

// --- Checkpointed replay (DESIGN.md item 12).

// BenchmarkCheckpointedInjection measures the counter-mode injection
// phase with checkpointed replay disabled (every injection re-executes
// the workload prefix from icount 0 — the O(N²) pre-checkpoint cost)
// and enabled. The replayed_events metric carries the total engine work
// of the campaign, which drops from O(N²) to O(N·gap); speedup_x is the
// wall-clock ratio against the disabled baseline of the same target.
// The paper-scale target uses the default 150k-op workload with a pool
// sized to the working set, where prefix re-execution dominates the
// campaign; the small targets bound the constant overheads at trace
// lengths below one checkpoint interval.
func BenchmarkCheckpointedInjection(b *testing.B) {
	targets := []struct {
		name  string
		mk    func() harness.Application
		w     workload.Workload
		modes []int // checkpoint intervals; -1 disables, 0 is the default
	}{
		{
			name:  "btree-1500",
			mk:    func() harness.Application { return btree.New(apps.Config{SPT: true, PoolSize: 4 << 20}) },
			w:     workload.Generate(workload.Config{N: 1500, Seed: 42}),
			modes: []int{-1, 16384, 0},
		},
		{
			name:  "levelhash-1500",
			mk:    func() harness.Application { return levelhash.New(apps.Config{PoolSize: 4 << 20, WithRecovery: true}) },
			w:     workload.Generate(workload.Config{N: 1500, Seed: 42}),
			modes: []int{-1, 16384, 0},
		},
		{
			name:  "btree-150k",
			mk:    func() harness.Application { return btree.New(apps.Config{SPT: true, PoolSize: 8 << 20}) },
			w:     workload.Generate(workload.Config{N: 150000, Seed: 42}),
			modes: []int{-1, 0},
		},
	}
	modeName := func(interval int) string {
		switch {
		case interval < 0:
			return "off"
		case interval == 0:
			return fmt.Sprintf("interval-default-%d", core.DefaultCheckpointInterval)
		default:
			return fmt.Sprintf("interval-%d", interval)
		}
	}
	for _, tgt := range targets {
		var baseline float64
		for _, interval := range tgt.modes {
			b.Run(fmt.Sprintf("%s/%s", tgt.name, modeName(interval)), func(b *testing.B) {
				var inject time.Duration
				var events, ckptKiB uint64
				for i := 0; i < b.N; i++ {
					res, err := core.Analyze(tgt.mk(), tgt.w, core.Config{
						DisableTraceAnalysis: true,
						CheckpointInterval:   interval,
					})
					if err != nil {
						b.Fatal(err)
					}
					if interval < 0 && res.CheckpointRestores != 0 {
						b.Fatal("disabled checkpointing still restored")
					}
					if interval >= 0 && res.CheckpointRestores != res.Injections {
						b.Fatalf("only %d of %d injections restored", res.CheckpointRestores, res.Injections)
					}
					inject += res.InjectTime
					events += res.EngineEvents
					ckptKiB = res.CheckpointBytes >> 10
				}
				sec := inject.Seconds() / float64(b.N)
				b.ReportMetric(sec, "inject_sec")
				b.ReportMetric(float64(events)/float64(b.N), "replayed_events")
				b.ReportMetric(float64(ckptKiB), "ckpt_kib")
				if interval < 0 {
					baseline = sec
				} else if baseline > 0 && sec > 0 {
					b.ReportMetric(baseline/sec, "speedup_x")
				}
			})
		}
	}
}

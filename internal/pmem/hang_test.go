package pmem

import (
	"testing"
	"time"
)

// run executes f, returning the recovered *HangSignal (nil when f
// returned normally).
func trapHang(t *testing.T, f func()) (sig *HangSignal) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			hs, ok := r.(*HangSignal)
			if !ok {
				t.Fatalf("unexpected panic value %v", r)
			}
			sig = hs
		}
	}()
	f()
	return nil
}

func TestMaxEventsTripsHangSignal(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096, MaxEvents: 10})
	sig := trapHang(t, func() {
		for i := 0; i < 100; i++ {
			e.Load64(0)
		}
	})
	if sig == nil {
		t.Fatal("fuel budget never fired")
	}
	if sig.Budget != 10 || sig.ICount != 11 || sig.Deadline {
		t.Fatalf("HangSignal = %+v, want budget 10 tripped at instruction 11", sig)
	}
}

func TestMaxEventsZeroIsUnbounded(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096})
	if sig := trapHang(t, func() {
		for i := 0; i < 5000; i++ {
			e.Load64(0)
		}
	}); sig != nil {
		t.Fatalf("unbounded engine raised %+v", sig)
	}
}

func TestCrashAtWinsOverFuel(t *testing.T) {
	// An injected crash at the budget boundary must surface as a
	// CrashSignal, not a HangSignal: the replay reached its target.
	e := NewEngine(Options{PoolSize: 4096, MaxEvents: 5, CrashAt: 5})
	defer func() {
		if _, ok := recover().(*CrashSignal); !ok {
			t.Fatal("expected a CrashSignal at the shared boundary")
		}
	}()
	for i := 0; i < 10; i++ {
		e.Load64(0)
	}
}

func TestDeadlineTripsHangSignal(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096, Deadline: time.Now().Add(20 * time.Millisecond)})
	done := make(chan *HangSignal, 1)
	go func() {
		defer func() {
			sig, _ := recover().(*HangSignal)
			done <- sig
		}()
		for {
			e.Load64(0)
		}
	}()
	select {
	case sig := <-done:
		if sig == nil || !sig.Deadline || sig.Budget != 0 {
			t.Fatalf("HangSignal = %+v, want a deadline trip", sig)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline watchdog never preempted the loop")
	}
}

func TestHangSignalError(t *testing.T) {
	fuel := &HangSignal{ICount: 7, Budget: 6}
	if fuel.Error() == "" || (&HangSignal{ICount: 7, Deadline: true}).Error() == "" {
		t.Fatal("HangSignal must render as an error")
	}
}

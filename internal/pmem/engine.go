package pmem

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mumak/internal/stack"
)

// line is one volatile cache line. data is a full copy of the line
// contents; dirty has bit i set when byte i diverges from the medium.
type line struct {
	base  uint64
	data  [CacheLineSize]byte
	dirty uint64
}

// pending is an asynchronous write-back (clwb, clflushopt or ntstore)
// that has left the cache but is not yet guaranteed durable: it becomes
// durable at the next fence, or may be dropped by a power-cut crash.
type pending struct {
	base  uint64
	data  [CacheLineSize]byte
	dirty uint64
	// icount is the instruction that issued the write-back.
	icount uint64
}

// Engine simulates a single hardware thread issuing PM instructions
// against a pool. It is not safe for concurrent use: the targets under
// analysis execute deterministically on one goroutine, as required by the
// instruction-counter optimisation of §5.
type Engine struct {
	opts   Options
	medium []byte
	lines  map[uint64]*line
	queue  []pending
	hooks  []Hook
	anns   []AnnotationObserver
	icount uint64
	rng    *rand.Rand
	stats  Stats
	// evictable caches the keys of lines for seeded eviction.
	evictKeys []uint64

	// snapBase is the shared immutable base of the last materialised
	// snapshot; snapDirty records the line bases persisted to the
	// medium since it was taken (see dirty.go and mediumImage).
	snapBase  []byte
	snapDirty map[uint64]struct{}
	// mediumHash is the rolling XOR fold of per-line content hashes
	// over the medium, maintained incrementally at each line write so
	// image content keys never require a full-pool scan.
	mediumHash uint64
	// prefixHash, maintained only under Options.TrackPrefixHash, is the
	// rolling XOR fold of per-line content hashes over the coherent
	// (load-visible) state — which is provably also the graceful-crash
	// PrefixImage state: for an uncached line both are medium plus queued
	// write-backs in issue order, and a cached line's data is seeded from
	// that view and kept coherent, so its non-dirty bytes always equal
	// it. The fold therefore changes only where the coherent view does:
	// stores, NT stores, and seeded evictions whose dirty bytes are
	// re-overlaid by an older queued write-back (evictLine).
	prefixHash uint64

	// mediumMax is the medium high-water mark: the end offset of the
	// highest line ever persisted. Checkpoint restores copy only
	// [0, mediumMax), keeping restore cost proportional to the pool
	// actually touched rather than the pool size.
	mediumMax int
	// ckpt, when non-nil, records every state mutation (and periodic
	// full-state snapshots) as this engine executes, for O(gap)
	// counter-mode replays. See checkpoint.go.
	ckpt *CheckpointStore
}

// NewEngine creates an engine over a zeroed pool.
func NewEngine(opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:   o,
		medium: make([]byte, o.PoolSize),
		lines:  make(map[uint64]*line),
		rng:    rand.New(rand.NewSource(o.Seed)),
	}
	if o.CheckpointEvery > 0 {
		e.ckpt = newCheckpointStore(o, o.CheckpointEvery)
	}
	return e
}

// NewEngineFromImage creates an engine whose medium is initialised from a
// crash image, as happens when an application restarts after a failure.
// The image is copied.
func NewEngineFromImage(opts Options, img *Image) *Engine {
	o := opts
	o.PoolSize = img.Len()
	e := NewEngine(o)
	img.CopyInto(e.medium)
	// Seed the rolling hash from the image so this engine's own
	// snapshots stay hash-tracked; engine-produced images carry the
	// hash already, making this O(1) on the oracle path.
	e.mediumHash = img.Hash()
	// Cache and queue are empty at restart, so the prefix state equals
	// the medium.
	e.prefixHash = e.mediumHash
	// The image may hold data anywhere in the pool; the watermark
	// optimisation only applies to engines grown from a zeroed pool.
	e.mediumMax = len(e.medium)
	if e.ckpt != nil {
		// A recording engine seeded from an image starts its delta
		// chain here, not at a zeroed pool: the genesis checkpoint must
		// carry the image as its base state.
		e.ckpt.base = append([]byte(nil), e.medium...)
		e.ckpt.cps[0].hash = e.mediumHash
		e.ckpt.cps[0].prefix = e.prefixHash
		e.ckpt.cps[0].touched = e.mediumMax
	}
	return e
}

// Checkpoints returns the checkpoint store recorded by this engine's
// execution, or nil when Options.CheckpointEvery was zero. The store
// must be considered read-only once the recorded run has finished.
func (e *Engine) Checkpoints() *CheckpointStore { return e.ckpt }

// maybeCheckpoint snapshots full engine state once the instruction
// counter reaches the next checkpoint due point. It must run only after
// the current instruction's mutations (including seeded evictions) have
// fully applied, so the snapshot is exactly the state a crash strictly
// after this counter would observe.
func (e *Engine) maybeCheckpoint() {
	if e.ckpt != nil && e.icount >= e.ckpt.nextAt {
		e.ckpt.take(e)
	}
}

// Size returns the pool size in bytes.
func (e *Engine) Size() int { return len(e.medium) }

// ICount returns the current instruction counter (the counter of the last
// delivered event).
func (e *Engine) ICount() uint64 { return e.icount }

// Stacks returns the stack table used for capture, if any.
func (e *Engine) Stacks() *stack.Table { return e.opts.Stacks }

// AttachHook registers a hook; it also registers the hook as an
// annotation observer when it implements AnnotationObserver, and hands
// it the engine when it implements EngineObserver.
func (e *Engine) AttachHook(h Hook) {
	e.hooks = append(e.hooks, h)
	if ao, ok := h.(AnnotationObserver); ok {
		e.anns = append(e.anns, ao)
	}
	if eo, ok := h.(EngineObserver); ok {
		eo.ObserveEngine(e)
	}
}

// DetachHooks removes all hooks and annotation observers.
func (e *Engine) DetachHooks() {
	e.hooks = nil
	e.anns = nil
}

func (e *Engine) check(addr uint64, size int) {
	if size < 0 || addr > uint64(len(e.medium)) || addr+uint64(size) > uint64(len(e.medium)) {
		panic(fmt.Sprintf("pmem: access [0x%x,0x%x) outside pool of %d bytes", addr, addr+uint64(size), len(e.medium)))
	}
}

func (e *Engine) captureFor(op Opcode) stack.ID {
	var want bool
	switch e.opts.Capture {
	case CaptureNone:
		want = false
	case CapturePersistency:
		want = op.IsPersistency()
	case CaptureStores:
		want = op != OpLoad
	case CaptureAll:
		want = true
	}
	if !want {
		return stack.NoID
	}
	// Skip captureFor, emit and the engine entry point; trimming in the
	// stack table removes any residual instrumentation frames.
	return e.opts.Stacks.Capture(3)
}

func (e *Engine) emit(op Opcode, addr uint64, size int, data []byte) {
	e.icount++
	if e.icount == e.opts.CrashAt {
		panic(&CrashSignal{ICount: e.icount, Reason: "failure point (counter mode)"})
	}
	if e.opts.MaxEvents != 0 && e.icount > e.opts.MaxEvents {
		panic(&HangSignal{ICount: e.icount, Budget: e.opts.MaxEvents})
	}
	if e.icount%deadlineEvery == 0 && !e.opts.Deadline.IsZero() && time.Now().After(e.opts.Deadline) {
		panic(&HangSignal{ICount: e.icount, Deadline: true})
	}
	if len(e.hooks) == 0 && e.opts.Capture == CaptureNone {
		return
	}
	ev := Event{
		ICount: e.icount,
		Op:     op,
		Addr:   addr,
		Size:   size,
		Data:   data,
		Stack:  e.captureFor(op),
	}
	for _, h := range e.hooks {
		h.OnEvent(&ev)
	}
}

// Annotate emits a library annotation to annotation observers. It is a
// no-op for Mumak itself, which is annotation-free.
func (e *Engine) Annotate(kind AnnKind, addr uint64, size int) {
	if len(e.anns) == 0 {
		return
	}
	a := Annotation{ICount: e.icount, Kind: kind, Addr: addr, Size: size}
	for _, ao := range e.anns {
		ao.OnAnnotation(&a)
	}
}

// lineView returns the coherent contents of the line at base as seen by
// a load when the line is not cached: the medium overlaid with any queued
// (unfenced) write-backs, applied in issue order.
func (e *Engine) lineView(base uint64) [CacheLineSize]byte {
	var buf [CacheLineSize]byte
	copy(buf[:], e.medium[base:base+CacheLineSize])
	for i := range e.queue {
		p := &e.queue[i]
		if p.base != base {
			continue
		}
		applyMasked(buf[:], p.data[:], p.dirty)
	}
	return buf
}

func (e *Engine) lineFor(addr uint64) *line {
	base := addr &^ (CacheLineSize - 1)
	ln := e.lines[base]
	if ln == nil {
		ln = &line{base: base}
		ln.data = e.lineView(base)
		e.lines[base] = ln
		e.evictKeys = append(e.evictKeys, base)
		if n := len(e.lines); n > e.stats.PeakCacheLines {
			e.stats.PeakCacheLines = n
		}
	}
	return ln
}

// Store writes data to PM through the cache. The write is volatile until
// the affected lines are flushed and fenced (or evicted).
func (e *Engine) Store(addr uint64, data []byte) {
	e.check(addr, len(data))
	e.emit(OpStore, addr, len(data), data)
	e.stats.Stores++
	e.stats.BytesStored += uint64(len(data))
	if e.ckpt != nil {
		e.ckpt.record(ckStore, e.icount, addr, data)
	}
	e.applyStore(addr, data)
	e.maybeEvict()
	e.maybeCheckpoint()
}

func (e *Engine) applyStore(addr uint64, data []byte) {
	for len(data) > 0 {
		ln := e.lineFor(addr)
		off := addr - ln.base
		if e.opts.TrackPrefixHash {
			e.prefixHash ^= lineContrib(ln.base, ln.data[:])
		}
		n := copy(ln.data[off:], data)
		if e.opts.TrackPrefixHash {
			e.prefixHash ^= lineContrib(ln.base, ln.data[:])
		}
		ln.dirty |= storeMask(off, n)
		addr += uint64(n)
		data = data[n:]
	}
}

// Store64 writes an aligned 8-byte value; such a write is
// failure-atomic.
func (e *Engine) Store64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.Store(addr, b[:])
}

// Store32 writes a 4-byte little-endian value through the cache.
func (e *Engine) Store32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.Store(addr, b[:])
}

// NTStore performs a non-temporal store: the data bypasses the cache and
// enters the write-pending queue directly, but is only guaranteed durable
// after the next fence.
func (e *Engine) NTStore(addr uint64, data []byte) {
	e.check(addr, len(data))
	e.emit(OpNTStore, addr, len(data), data)
	e.stats.Stores++
	e.stats.NTStores++
	e.stats.BytesStored += uint64(len(data))
	if e.ckpt != nil {
		e.ckpt.record(ckNTStore, e.icount, addr, data)
	}
	e.applyNTStore(addr, data)
	e.maybeCheckpoint()
}

// applyNTStore is the state mutation of NTStore: it materialises the
// write as pending line images without dirtying the cache. If the line
// is currently cached, the volatile copy is kept coherent so subsequent
// loads observe the new data.
func (e *Engine) applyNTStore(addr uint64, data []byte) {
	for len(data) > 0 {
		base := addr &^ (CacheLineSize - 1)
		off := addr - base
		n := CacheLineSize - int(off)
		if n > len(data) {
			n = len(data)
		}
		if e.opts.TrackPrefixHash {
			// The coherent view of this line before the chunk applies:
			// the cached copy when present, else medium plus queue.
			cur := e.lineView(base)
			if ln := e.lines[base]; ln != nil {
				cur = ln.data
			}
			e.prefixHash ^= lineContrib(base, cur[:])
			copy(cur[off:], data[:n])
			e.prefixHash ^= lineContrib(base, cur[:])
		}
		var p pending
		p.base = base
		p.icount = e.icount
		if off != 0 || n != CacheLineSize {
			// Partial-line NT store: seed with the coherent view. A
			// full-line write needs no seed, which keeps bulk NT
			// zeroing (pmem_memset) linear in the region size.
			p.data = e.lineView(base)
			if ln := e.lines[base]; ln != nil {
				p.data = ln.data
			}
		}
		copy(p.data[off:], data[:n])
		p.dirty |= storeMask(off, n)
		if ln := e.lines[base]; ln != nil {
			copy(ln.data[off:], data[:n])
		}
		e.queue = append(e.queue, p)
		if q := len(e.queue); q > e.stats.PeakQueue {
			e.stats.PeakQueue = q
		}
		addr += uint64(n)
		data = data[n:]
	}
}

// NTStore64 performs an aligned 8-byte non-temporal store.
func (e *Engine) NTStore64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.NTStore(addr, b[:])
}

// Load reads size bytes at addr into a fresh slice, observing cached
// (volatile) data when present.
func (e *Engine) Load(addr uint64, size int) []byte {
	e.check(addr, size)
	e.emit(OpLoad, addr, size, nil)
	e.stats.Loads++
	out := make([]byte, size)
	e.readInto(out, addr)
	return out
}

// readInto fills out with the current (cache-coherent) view at addr.
func (e *Engine) readInto(out []byte, addr uint64) {
	for len(out) > 0 {
		base := addr &^ (CacheLineSize - 1)
		off := addr - base
		n := CacheLineSize - int(off)
		if n > len(out) {
			n = len(out)
		}
		if ln := e.lines[base]; ln != nil {
			copy(out[:n], ln.data[off:])
		} else {
			view := e.lineView(base)
			copy(out[:n], view[off:])
		}
		addr += uint64(n)
		out = out[n:]
	}
}

// Load64 reads an aligned 8-byte little-endian value.
func (e *Engine) Load64(addr uint64) uint64 {
	var b [8]byte
	e.check(addr, 8)
	e.emit(OpLoad, addr, 8, nil)
	e.stats.Loads++
	e.readInto(b[:], addr)
	return binary.LittleEndian.Uint64(b[:])
}

// Load32 reads a 4-byte little-endian value.
func (e *Engine) Load32(addr uint64) uint32 {
	var b [4]byte
	e.check(addr, 4)
	e.emit(OpLoad, addr, 4, nil)
	e.stats.Loads++
	e.readInto(b[:], addr)
	return binary.LittleEndian.Uint32(b[:])
}

// CLFlush synchronously writes the line containing addr back to the
// medium (and drops it from the cache).
func (e *Engine) CLFlush(addr uint64) {
	e.check(addr, 1)
	base := addr &^ (CacheLineSize - 1)
	e.emit(OpCLFlush, base, CacheLineSize, nil)
	e.stats.Flushes++
	if e.ckpt != nil {
		e.ckpt.record(ckCLFlush, e.icount, base, nil)
	}
	e.applyCLFlush(base)
	e.maybeCheckpoint()
}

// applyCLFlush is the state mutation of CLFlush. x86 orders flushes of
// the same line with each other: earlier asynchronous write-backs of
// this line complete first.
func (e *Engine) applyCLFlush(base uint64) {
	if len(e.queue) > 0 {
		kept := e.queue[:0]
		for i := range e.queue {
			if e.queue[i].base == base {
				e.applyPending(&e.queue[i])
			} else {
				kept = append(kept, e.queue[i])
			}
		}
		e.queue = kept
	}
	if ln := e.lines[base]; ln != nil {
		e.writeBack(ln)
		delete(e.lines, base)
	}
}

// CLFlushOpt asynchronously writes the line containing addr back and
// invalidates it; the write-back is durable only after the next fence.
func (e *Engine) CLFlushOpt(addr uint64) {
	e.flushAsync(addr, OpCLFlushOpt, true)
}

// CLWB asynchronously writes the line containing addr back, keeping the
// cached copy; the write-back is durable only after the next fence.
func (e *Engine) CLWB(addr uint64) {
	e.flushAsync(addr, OpCLWB, false)
}

func (e *Engine) flushAsync(addr uint64, op Opcode, invalidate bool) {
	e.check(addr, 1)
	base := addr &^ (CacheLineSize - 1)
	e.emit(op, base, CacheLineSize, nil)
	e.stats.Flushes++
	if e.ckpt != nil {
		tag := ckCLWB
		if invalidate {
			tag = ckCLFlushOpt
		}
		e.ckpt.record(tag, e.icount, base, nil)
	}
	e.applyFlushAsync(base, invalidate)
	e.maybeCheckpoint()
}

// applyFlushAsync is the state mutation of CLFlushOpt (invalidate) and
// CLWB (keep the cached copy).
func (e *Engine) applyFlushAsync(base uint64, invalidate bool) {
	ln := e.lines[base]
	if ln == nil {
		return
	}
	if ln.dirty != 0 {
		p := pending{base: base, data: ln.data, dirty: ln.dirty, icount: e.icount}
		e.queue = append(e.queue, p)
		if q := len(e.queue); q > e.stats.PeakQueue {
			e.stats.PeakQueue = q
		}
		ln.dirty = 0
	}
	if invalidate {
		delete(e.lines, base)
	}
}

// SFence drains the write-pending queue: every buffered flush and
// non-temporal store issued before the fence becomes durable.
func (e *Engine) SFence() {
	e.emit(OpSFence, 0, 0, nil)
	e.stats.Fences++
	if e.ckpt != nil {
		e.ckpt.record(ckFence, e.icount, 0, nil)
	}
	e.drain()
	e.maybeCheckpoint()
}

// MFence behaves like SFence for persistency purposes.
func (e *Engine) MFence() {
	e.emit(OpMFence, 0, 0, nil)
	e.stats.Fences++
	if e.ckpt != nil {
		e.ckpt.record(ckFence, e.icount, 0, nil)
	}
	e.drain()
	e.maybeCheckpoint()
}

// CAS64 performs an aligned 8-byte compare-and-swap. Like hardware RMW
// instructions it has fence semantics: it drains the write-pending queue.
// The stored value itself lands in the cache and still requires an
// explicit flush to be durable.
func (e *Engine) CAS64(addr uint64, old, new uint64) bool {
	e.check(addr, 8)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], new)
	e.emit(OpRMW, addr, 8, b[:])
	e.stats.Fences++
	e.stats.RMWs++
	e.drain()
	var cur [8]byte
	e.readInto(cur[:], addr)
	if binary.LittleEndian.Uint64(cur[:]) != old {
		// The event stream alone cannot tell a failed CAS from a
		// successful one (both emit OpRMW with the new value), so the
		// log records the outcome explicitly.
		if e.ckpt != nil {
			e.ckpt.record(ckRMWFailed, e.icount, addr, nil)
		}
		e.maybeCheckpoint()
		return false
	}
	if e.ckpt != nil {
		e.ckpt.record(ckRMW, e.icount, addr, b[:])
	}
	e.applyStore(addr, b[:])
	e.maybeCheckpoint()
	return true
}

// FAA64 performs an aligned 8-byte fetch-and-add with fence semantics and
// returns the previous value.
func (e *Engine) FAA64(addr uint64, delta uint64) uint64 {
	e.check(addr, 8)
	var cur [8]byte
	e.readInto(cur[:], addr)
	prev := binary.LittleEndian.Uint64(cur[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], prev+delta)
	e.emit(OpRMW, addr, 8, b[:])
	e.stats.Fences++
	e.stats.RMWs++
	if e.ckpt != nil {
		e.ckpt.record(ckRMW, e.icount, addr, b[:])
	}
	e.drain()
	e.applyStore(addr, b[:])
	e.maybeCheckpoint()
	return prev
}

// drain makes every pending write-back durable, preserving issue order.
func (e *Engine) drain() {
	for i := range e.queue {
		e.applyPending(&e.queue[i])
	}
	e.queue = e.queue[:0]
}

func (e *Engine) applyPending(p *pending) {
	e.beginMediumWrite(p.base)
	applyMasked(e.medium[p.base:p.base+CacheLineSize], p.data[:], p.dirty)
	e.endMediumWrite(p.base)
}

func (e *Engine) writeBack(ln *line) {
	if ln.dirty == 0 {
		return
	}
	e.beginMediumWrite(ln.base)
	applyMasked(e.medium[ln.base:ln.base+CacheLineSize], ln.data[:], ln.dirty)
	e.endMediumWrite(ln.base)
	ln.dirty = 0
}

// maybeEvict spontaneously writes back a pseudo-random dirty line under
// the seeded eviction policy.
func (e *Engine) maybeEvict() {
	if e.opts.Eviction != EvictSeeded || len(e.lines) == 0 {
		return
	}
	if e.rng.Intn(e.opts.EvictOneIn) != 0 {
		return
	}
	// Pick a pseudo-random cached line; compact stale keys lazily.
	for tries := 0; tries < 4 && len(e.evictKeys) > 0; tries++ {
		i := e.rng.Intn(len(e.evictKeys))
		base := e.evictKeys[i]
		ln := e.lines[base]
		if ln == nil {
			e.evictKeys[i] = e.evictKeys[len(e.evictKeys)-1]
			e.evictKeys = e.evictKeys[:len(e.evictKeys)-1]
			continue
		}
		// Log the eviction explicitly: replays apply it from the log
		// rather than re-deriving it, so the rng state never needs to
		// be part of a checkpoint.
		if e.ckpt != nil {
			e.ckpt.record(ckEvict, e.icount, base, nil)
		}
		e.evictLine(ln)
		e.stats.Evictions++
		return
	}
}

// evictLine writes a line back and drops it from the cache (the state
// mutation of a seeded eviction, live or replayed from the checkpoint
// log). Eviction is the one operation besides stores that can change
// the coherent view: when an older queued write-back overlaps the
// line's dirty bytes, the queue re-overlays the freshly written-back
// medium at the next drain, so the post-eviction view reverts those
// bytes to the queued (older) data. The rolling prefix hash swaps the
// line's contribution only when that happened.
func (e *Engine) evictLine(ln *line) {
	if !e.opts.TrackPrefixHash {
		e.writeBack(ln)
		delete(e.lines, ln.base)
		return
	}
	old := ln.data
	e.writeBack(ln)
	delete(e.lines, ln.base)
	if cur := e.lineView(ln.base); cur != old {
		e.prefixHash ^= lineContrib(ln.base, old[:])
		e.prefixHash ^= lineContrib(ln.base, cur[:])
	}
}

// RollingPrefixHash returns the incrementally maintained content hash
// of the graceful-crash prefix image — the value PrefixImageHash
// computes on demand — valid only under Options.TrackPrefixHash.
// Reading it is O(1), so phase 1 can stamp every candidate failure
// point with its prospective crash-image identity as the instrumented
// run executes.
func (e *Engine) RollingPrefixHash() uint64 { return e.prefixHash }

// TracksPrefixHash reports whether the engine maintains the rolling
// prefix-image hash.
func (e *Engine) TracksPrefixHash() bool { return e.opts.TrackPrefixHash }

// DirtyLines returns the bases of currently dirty cache lines in
// ascending order. Used by tests and by image construction.
func (e *Engine) DirtyLines() []uint64 {
	var out []uint64
	for base, ln := range e.lines {
		if ln.dirty != 0 {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingCount returns the number of queued (unfenced) write-backs.
func (e *Engine) PendingCount() int { return len(e.queue) }

// LineDirty reports whether the cache line containing addr holds
// unwritten-back store data. PM libraries use it to skip write-backs of
// clean lines.
func (e *Engine) LineDirty(addr uint64) bool {
	ln := e.lines[addr&^(CacheLineSize-1)]
	return ln != nil && ln.dirty != 0
}

package pmem

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// driveOps issues a deterministic pseudo-random instruction mix —
// multi-line and partial-line stores, NT stores, all three flush
// flavours, both fences, succeeding and failing CAS, FAA, and loads —
// against the engine. The sequence depends only on the seed, never on
// engine state, so a recording engine and a from-scratch CrashAt engine
// replay the exact same instruction stream.
func driveOps(e *Engine, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed ^ 0x05eed))
	span := e.Size() - 2*CacheLineSize
	addr := func() uint64 { return uint64(rng.Intn(span)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			buf := make([]byte, 1+rng.Intn(3*CacheLineSize/2))
			rng.Read(buf)
			e.Store(addr(), buf)
		case 3:
			buf := make([]byte, 1+rng.Intn(2*CacheLineSize))
			rng.Read(buf)
			e.NTStore(addr(), buf)
		case 4:
			e.CLFlush(addr())
		case 5:
			e.CLFlushOpt(addr())
		case 6:
			e.CLWB(addr())
		case 7:
			if rng.Intn(2) == 0 {
				e.SFence()
			} else {
				e.MFence()
			}
		case 8:
			a := addr() &^ 7
			// A load feeds the expected value, so the CAS succeeds; the
			// +1 variant is guaranteed to fail. Both outcomes must
			// replay from the log, not from the data.
			if rng.Intn(2) == 0 {
				e.CAS64(a, e.Load64(a), rng.Uint64())
			} else {
				e.CAS64(a, e.Load64(a)+1, rng.Uint64())
			}
		case 9:
			e.FAA64(addr()&^7, rng.Uint64())
		default:
			e.Load(addr(), 1+rng.Intn(CacheLineSize))
		}
	}
}

// runToCrash executes the op stream on a fresh engine that panics at
// the target counter, and returns the engine frozen in its crash state
// — the reference a checkpoint restore must reproduce bit for bit.
func runToCrash(t *testing.T, opts Options, seed int64, n int, target uint64) *Engine {
	t.Helper()
	o := opts
	o.CrashAt = target
	e := NewEngine(o)
	crashed := false
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*CrashSignal); ok {
				crashed = true
				return
			}
			if r != nil {
				panic(r)
			}
		}()
		driveOps(e, seed, n)
	}()
	if !crashed {
		t.Fatalf("reference run never reached counter %d", target)
	}
	return e
}

// diffEngines compares every piece of state a crash image can observe:
// instruction counter, medium bytes, rolling medium hash, cache lines
// (contents and dirty masks), the write-pending queue (order and issue
// counters included), and the graceful-crash image itself.
func diffEngines(t *testing.T, want, got *Engine, label string) {
	t.Helper()
	if want.icount != got.icount {
		t.Fatalf("%s: icount %d, want %d", label, got.icount, want.icount)
	}
	if !bytes.Equal(want.medium, got.medium) {
		t.Fatalf("%s: medium contents diverge", label)
	}
	if want.mediumHash != got.mediumHash {
		t.Fatalf("%s: mediumHash %#x, want %#x", label, got.mediumHash, want.mediumHash)
	}
	if len(want.lines) != len(got.lines) {
		t.Fatalf("%s: %d cache lines, want %d", label, len(got.lines), len(want.lines))
	}
	for base, w := range want.lines {
		g := got.lines[base]
		if g == nil {
			t.Fatalf("%s: cache line %#x missing", label, base)
		}
		if g.data != w.data || g.dirty != w.dirty {
			t.Fatalf("%s: cache line %#x diverges (dirty %#x vs %#x)", label, base, g.dirty, w.dirty)
		}
	}
	if !reflect.DeepEqual(want.queue, got.queue) && (len(want.queue) != 0 || len(got.queue) != 0) {
		t.Fatalf("%s: write-pending queue diverges: %d entries vs %d", label, len(got.queue), len(want.queue))
	}
	if w, g := want.PrefixImageHash(), got.PrefixImageHash(); w != g {
		t.Fatalf("%s: PrefixImageHash %#x, want %#x", label, g, w)
	}
	if w, g := want.PrefixImage(), got.PrefixImage(); !bytes.Equal(w.Bytes(), g.Bytes()) {
		t.Fatalf("%s: PrefixImage bytes diverge", label)
	}
}

// TestCheckpointReplayFidelity is the tentpole differential: for every
// sampled target counter — checkpoint boundaries, their neighbours, the
// very first instructions, and a pseudo-random spread — restoring the
// nearest checkpoint and replaying the mutation-log gap must yield an
// engine byte-identical to a from-scratch execution crashed at that
// counter, across seeds, eADR, and the seeded-eviction policy.
func TestCheckpointReplayFidelity(t *testing.T) {
	const n = 1200
	for _, eadr := range []bool{false, true} {
		for _, seed := range []int64{1, 7, 4242} {
			t.Run(fmt.Sprintf("seed=%d/eadr=%v", seed, eadr), func(t *testing.T) {
				opts := Options{
					PoolSize:   1 << 16,
					Seed:       seed,
					EADR:       eadr,
					Eviction:   EvictSeeded,
					EvictOneIn: 8,
				}
				rec := opts
				rec.CheckpointEvery = 64
				recorder := NewEngine(rec)
				driveOps(recorder, seed, n)
				s := recorder.Checkpoints()
				if s.Count() == 0 {
					t.Fatal("recording produced no checkpoints")
				}
				if s.LastICount() == 0 {
					t.Fatal("recording logged no mutations")
				}

				targets := map[uint64]bool{1: true, 2: true, s.LastICount(): true}
				for i := 1; i <= s.Count(); i++ {
					cp := s.cps[i].icount
					for _, d := range []int64{-1, 0, 1} {
						if c := int64(cp) + d; c >= 1 && uint64(c) <= s.LastICount() {
							targets[uint64(c)] = true
						}
					}
				}
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 12; i++ {
					targets[1+uint64(rng.Int63n(int64(s.LastICount())))] = true
				}

				for target := range targets {
					got, gap, err := s.ReplayTo(target, time.Time{})
					if err != nil {
						t.Fatalf("ReplayTo(%d): %v", target, err)
					}
					if gap == 0 || gap > target {
						t.Fatalf("ReplayTo(%d): nonsensical gap %d", target, gap)
					}
					want := runToCrash(t, opts, seed, n, target)
					diffEngines(t, want, got, fmt.Sprintf("target %d", target))
				}
			})
		}
	}
}

// TestCheckpointReplayBounds: targets the recorded run never reached
// are an error, not a bogus engine; a zero target is likewise rejected.
func TestCheckpointReplayBounds(t *testing.T) {
	opts := Options{PoolSize: 1 << 14, CheckpointEvery: 32}
	e := NewEngine(opts)
	driveOps(e, 3, 200)
	s := e.Checkpoints()
	if _, _, err := s.ReplayTo(0, time.Time{}); err == nil {
		t.Error("ReplayTo(0) succeeded; want error")
	}
	if _, _, err := s.ReplayTo(s.LastICount()+1, time.Time{}); err == nil {
		t.Error("ReplayTo past the log succeeded; want error")
	}
}

// TestCheckpointReplayDeadline: an already-expired deadline cuts the
// gap replay with ErrReplayDeadline once enough entries are applied.
func TestCheckpointReplayDeadline(t *testing.T) {
	opts := Options{PoolSize: 1 << 16, CheckpointEvery: 1 << 20}
	e := NewEngine(opts)
	// More logged mutations than one deadline-check stride, all in one
	// checkpoint gap, so the replay must hit the wall-clock sample.
	driveOps(e, 5, 2*replayDeadlineEvery)
	s := e.Checkpoints()
	if s.Entries() <= replayDeadlineEvery {
		t.Fatalf("fixture too small: %d entries", s.Entries())
	}
	_, _, err := s.ReplayTo(s.LastICount(), time.Now().Add(-time.Hour))
	if err != ErrReplayDeadline {
		t.Fatalf("err = %v, want ErrReplayDeadline", err)
	}
}

// TestCheckpointConcurrentRestores: the store is read-only after the
// recorded run, so concurrent ReplayTo calls — the parallel campaign's
// sharing pattern — must all reproduce the same state (run under -race
// in CI).
func TestCheckpointConcurrentRestores(t *testing.T) {
	opts := Options{PoolSize: 1 << 16, Seed: 9, Eviction: EvictSeeded, EvictOneIn: 8, CheckpointEvery: 64}
	e := NewEngine(opts)
	driveOps(e, 9, 800)
	s := e.Checkpoints()
	targets := []uint64{1, s.LastICount() / 3, s.LastICount() / 2, s.LastICount()}
	wantHash := make([]uint64, len(targets))
	for i, target := range targets {
		eng, _, err := s.ReplayTo(target, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		wantHash[i] = eng.PrefixImageHash()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, target := range targets {
				eng, _, err := s.ReplayTo(target, time.Time{})
				if err != nil {
					errs <- err
					return
				}
				if h := eng.PrefixImageHash(); h != wantHash[i] {
					errs <- fmt.Errorf("target %d: hash %#x, want %#x", target, h, wantHash[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCheckpointAccounting: Count, Entries and Bytes describe the
// recording truthfully — snapshots spaced by the interval, every
// mutation logged, resident size non-trivial but bounded.
func TestCheckpointAccounting(t *testing.T) {
	opts := Options{PoolSize: 1 << 16, CheckpointEvery: 128}
	e := NewEngine(opts)
	driveOps(e, 11, 1000)
	s := e.Checkpoints()
	if s.Interval() != 128 {
		t.Errorf("Interval = %d, want 128", s.Interval())
	}
	maxCkpts := int(e.ICount()/128) + 1
	if s.Count() < 1 || s.Count() > maxCkpts {
		t.Errorf("Count = %d, want within [1, %d] for %d events", s.Count(), maxCkpts, e.ICount())
	}
	if s.Entries() == 0 || s.LastICount() == 0 || s.LastICount() > e.ICount() {
		t.Errorf("implausible log accounting: %d entries, last %d, icount %d",
			s.Entries(), s.LastICount(), e.ICount())
	}
	if b := s.Bytes(); b < uint64(len(s.log)) {
		t.Errorf("Bytes = %d, below the log size %d", b, len(s.log))
	}
	// Consecutive snapshots are spaced by at least the interval (they
	// are taken at the first mutation at-or-after the due point).
	for i := 2; i < len(s.cps); i++ {
		if d := s.cps[i].icount - s.cps[i-1].icount; d < 128 {
			t.Errorf("checkpoints %d and %d only %d events apart", i-1, i, d)
		}
	}
}

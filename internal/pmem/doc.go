// Package pmem simulates a byte-addressable persistent memory device
// attached to an x86-style CPU cache hierarchy, following the relaxed,
// buffered persistency model of Intel-x86 (Raad et al., POPL 2020).
//
// The package is the substrate that replaces both Intel Optane DCPMM and
// Intel Pin in the original Mumak system: applications perform loads,
// stores and persistency instructions (clflush, clflushopt, clwb, sfence,
// mfence, non-temporal stores, read-modify-writes) through an Engine, and
// analysis tools observe the resulting instruction stream through Hooks
// without any cooperation from the application — the black-box observation
// channel of the paper.
//
// # Durability model
//
//   - The medium (the Pool) is durable: its contents survive a crash.
//   - Stores land in a volatile cache line (64 bytes) and are lost on a
//     crash unless written back.
//   - clflush writes a line back synchronously.
//   - clflushopt and clwb enqueue an asynchronous write-back that is only
//     guaranteed durable after the next fence (sfence, mfence or a
//     read-modify-write, which has fence semantics).
//   - Non-temporal stores bypass the cache but are buffered like an
//     asynchronous flush: they too require a fence.
//   - The cache may spontaneously evict dirty lines (persisting them
//     without a flush) under a seeded eviction policy, which is exactly
//     the non-determinism that masks missing-flush bugs in practice.
//
// Failure atomicity is provided for aligned 8-byte units: a crash image
// never exposes a torn 8-byte word, but a larger store may be split.
//
// # Crash images
//
// Engine can materialise several kinds of crash image: the strictly
// durable state (medium only), and the "graceful crash" image used by
// Mumak's fault injector, in which every store issued before the failure
// point is persisted (the program-order prefix of §4.1 of the paper).
// Finer-grained images (arbitrary subsets of unfenced flushes, store
// reorderings) are built from recorded traces by package trace.
package pmem

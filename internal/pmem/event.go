package pmem

import (
	"fmt"

	"mumak/internal/stack"
)

// Event is one observed PM instruction. Events are delivered to Hooks
// before the instruction takes effect, so a hook may crash the execution
// at precisely this point by panicking with a *CrashSignal.
//
// The fields mirror the optimised trace record of §5 of the paper: the
// instruction type, its argument(s), and a monotonically increasing
// instruction counter that uniquely identifies the traced instruction.
type Event struct {
	// ICount is the 1-based instruction counter of this event within
	// the engine's lifetime.
	ICount uint64
	// Op is the concrete instruction.
	Op Opcode
	// Addr is the first byte affected (stores, loads, flushes). For
	// flushes it is rounded down to the cache-line base. Zero for
	// fences.
	Addr uint64
	// Size is the number of bytes affected. CacheLineSize for flushes,
	// 0 for fences.
	Size int
	// Data holds the bytes being written for store events. The slice
	// aliases engine-internal memory and is only valid for the duration
	// of the hook call; hooks that retain it must copy.
	Data []byte
	// Stack identifies the call stack at the instruction, when the
	// engine was configured to capture stacks for this opcode class;
	// stack.NoID otherwise.
	Stack stack.ID
}

// String formats the event compactly for debug output.
func (e *Event) String() string {
	switch e.Op.Kind() {
	case KindFence:
		return fmt.Sprintf("#%d %s", e.ICount, e.Op)
	case KindFlush:
		return fmt.Sprintf("#%d %s 0x%x", e.ICount, e.Op, e.Addr)
	default:
		return fmt.Sprintf("#%d %s 0x%x+%d", e.ICount, e.Op, e.Addr, e.Size)
	}
}

// AnnKind classifies library annotations. Annotations are the analogue of
// pmemcheck/PMDK instrumentation macros: they are emitted by PM libraries
// (never required by Mumak, which is annotation-free) and consumed by the
// annotation-dependent baseline tools (PMDebugger, XFDetector).
type AnnKind uint8

// Annotation kinds mirroring the pmemcheck/XFDetector macro families.
const (
	// AnnTxBegin marks the start of a failure-atomic section.
	AnnTxBegin AnnKind = iota
	// AnnTxEnd marks the end of a failure-atomic section.
	AnnTxEnd
	// AnnPersist declares that [Addr, Addr+Size) has been made durable
	// by the library (pmemcheck's DO_PERSIST).
	AnnPersist
	// AnnCommitVar declares Addr as a commit variable whose persistence
	// publishes preceding writes (XFDetector's commit annotation).
	AnnCommitVar
	// AnnNoDrain declares a region exempt from durability checking
	// (transient scratch space registered by the library).
	AnnNoDrain
	// AnnTxAdd declares that [Addr, Addr+Size) was registered with the
	// transaction's undo log (pmemobj_tx_add_range); Agamotto's PMDK
	// transaction oracle consumes it.
	AnnTxAdd
)

var annNames = [...]string{
	AnnTxBegin:   "tx-begin",
	AnnTxEnd:     "tx-end",
	AnnPersist:   "persist",
	AnnCommitVar: "commit-var",
	AnnNoDrain:   "no-drain",
	AnnTxAdd:     "tx-add",
}

// String returns the annotation kind name.
func (k AnnKind) String() string {
	if int(k) < len(annNames) {
		return annNames[k]
	}
	return "ann?"
}

// Annotation is a library-emitted semantic hint.
type Annotation struct {
	// ICount is the instruction counter at which the annotation was
	// issued (annotations do not consume counters themselves).
	ICount uint64
	// Kind is the annotation family.
	Kind AnnKind
	// Addr and Size delimit the affected region where applicable.
	Addr uint64
	Size int
}

// Hook observes the PM instruction stream. OnEvent runs synchronously in
// the instrumented execution; a hook may panic with *CrashSignal to crash
// the application at the current instruction.
type Hook interface {
	OnEvent(*Event)
}

// AnnotationObserver is implemented by hooks that additionally consume
// library annotations (the annotation-dependent baselines).
type AnnotationObserver interface {
	OnAnnotation(*Annotation)
}

// EngineObserver is implemented by hooks that want a reference to the
// engine they are attached to — e.g. to read the rolling prefix-image
// hash at event time. AttachHook calls ObserveEngine once, at
// attachment.
type EngineObserver interface {
	ObserveEngine(*Engine)
}

// CrashSignal is the panic value used to crash an instrumented execution
// at a chosen instruction. The orchestrator recovers it and materialises
// the corresponding crash image.
type CrashSignal struct {
	// ICount is the instruction at which the crash was injected.
	ICount uint64
	// Stack is the call stack of the failure point, if captured.
	Stack stack.ID
	// Reason describes why the injector crashed here.
	Reason string
}

// Error makes CrashSignal usable as an error value.
func (c *CrashSignal) Error() string {
	return fmt.Sprintf("injected crash at instruction %d: %s", c.ICount, c.Reason)
}

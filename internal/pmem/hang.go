package pmem

import "fmt"

// deadlineEvery is the instruction-count stride at which the engine
// samples the wall clock against Options.Deadline. Checking every event
// would put a syscall on the hot path; every 1024th event bounds the
// overshoot to microseconds while keeping the common case to a single
// integer mask.
const deadlineEvery = 1024

// HangSignal is the panic value the engine raises when an execution
// exhausts its watchdog bounds: the deterministic fuel budget
// (Options.MaxEvents) or the wall-clock deadline (Options.Deadline).
//
// It is the preemption point of the whole tool: any code that touches PM
// — the target's workload, a fault-injection replay, a recovery
// procedure looping on a corrupted image — can be stopped from the
// outside without cooperation from the target, which is what lets a
// campaign survive non-terminating black-box behaviour and report it as
// a liveness finding instead of hanging with it.
type HangSignal struct {
	// ICount is the instruction counter at which the watchdog fired.
	ICount uint64
	// Budget is the exhausted event budget; zero when the wall-clock
	// deadline tripped instead.
	Budget uint64
	// Deadline reports that the wall-clock deadline, not the fuel
	// budget, stopped the execution.
	Deadline bool
}

// Error makes HangSignal usable as an error value.
func (h *HangSignal) Error() string {
	if h.Deadline {
		return fmt.Sprintf("execution stopped by the wall-clock watchdog at instruction %d", h.ICount)
	}
	return fmt.Sprintf("execution exhausted its budget of %d PM events", h.Budget)
}

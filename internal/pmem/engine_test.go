package pmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestEngine(size int) *Engine {
	return NewEngine(Options{PoolSize: size, Eviction: EvictNever})
}

func TestStoreIsVolatileUntilFlushed(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 0xdeadbeef)
	if got := e.MediumSnapshot().Bytes()[128]; got != 0 {
		t.Fatalf("store reached medium without flush: %#x", got)
	}
	if got := e.Load64(128); got != 0xdeadbeef {
		t.Fatalf("load does not observe cached store: %#x", got)
	}
}

func TestCLFlushPersistsSynchronously(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 42)
	e.CLFlush(128)
	img := e.MediumSnapshot()
	if got := le64(img.Bytes()[128:]); got != 42 {
		t.Fatalf("clflush did not persist: %d", got)
	}
}

func TestCLWBRequiresFence(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 42)
	e.CLWB(128)
	if got := le64(e.MediumSnapshot().Bytes()[128:]); got != 0 {
		t.Fatalf("clwb persisted before fence: %d", got)
	}
	if e.PendingCount() != 1 {
		t.Fatalf("pending count = %d, want 1", e.PendingCount())
	}
	e.SFence()
	if got := le64(e.MediumSnapshot().Bytes()[128:]); got != 42 {
		t.Fatalf("fence did not drain clwb: %d", got)
	}
	if e.PendingCount() != 0 {
		t.Fatalf("pending count after fence = %d", e.PendingCount())
	}
}

func TestCLFlushOptInvalidatesLine(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 42)
	e.CLFlushOpt(128)
	if _, ok := e.lines[128&^uint64(CacheLineSize-1)]; ok {
		t.Fatal("clflushopt left line cached")
	}
	e.SFence()
	if got := le64(e.MediumSnapshot().Bytes()[128:]); got != 42 {
		t.Fatalf("clflushopt+sfence did not persist: %d", got)
	}
}

func TestCLWBKeepsLineCached(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 42)
	e.CLWB(128)
	base := uint64(128) &^ (CacheLineSize - 1)
	ln, ok := e.lines[base]
	if !ok {
		t.Fatal("clwb dropped the line")
	}
	if ln.dirty != 0 {
		t.Fatal("clwb left line dirty")
	}
}

func TestNTStoreRequiresFence(t *testing.T) {
	e := newTestEngine(4096)
	e.NTStore64(256, 7)
	if got := le64(e.MediumSnapshot().Bytes()[256:]); got != 0 {
		t.Fatalf("ntstore persisted before fence: %d", got)
	}
	e.SFence()
	if got := le64(e.MediumSnapshot().Bytes()[256:]); got != 7 {
		t.Fatalf("ntstore not durable after fence: %d", got)
	}
}

func TestNTStoreCoherentWithCache(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(256, 1) // line now cached and dirty
	e.NTStore64(264, 2)
	if got := e.Load64(264); got != 2 {
		t.Fatalf("load after ntstore on cached line: %d", got)
	}
	e.CLWB(256)
	e.SFence()
	img := e.MediumSnapshot()
	if le64(img.Bytes()[256:]) != 1 || le64(img.Bytes()[264:]) != 2 {
		t.Fatalf("mixed store/ntstore line persisted wrong: %d %d",
			le64(img.Bytes()[256:]), le64(img.Bytes()[264:]))
	}
}

func TestRMWHasFenceSemantics(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(128, 42)
	e.CLWB(128)
	if !e.CAS64(512, 0, 9) {
		t.Fatal("CAS failed")
	}
	if got := le64(e.MediumSnapshot().Bytes()[128:]); got != 42 {
		t.Fatalf("RMW did not drain pending flushes: %d", got)
	}
	// The CAS'd value itself is cached, not durable.
	if got := le64(e.MediumSnapshot().Bytes()[512:]); got != 0 {
		t.Fatalf("RMW store durable without flush: %d", got)
	}
	if got := e.Load64(512); got != 9 {
		t.Fatalf("CAS value not visible: %d", got)
	}
}

func TestCASComparison(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(512, 5)
	if e.CAS64(512, 4, 9) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if got := e.Load64(512); got != 5 {
		t.Fatalf("failed CAS modified memory: %d", got)
	}
	if prev := e.FAA64(512, 3); prev != 5 {
		t.Fatalf("FAA returned %d, want 5", prev)
	}
	if got := e.Load64(512); got != 8 {
		t.Fatalf("FAA result: %d", got)
	}
}

func TestPrefixImageAppliesEverything(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(0, 1)   // dirty, never flushed
	e.Store64(128, 2) // flushed but not fenced
	e.CLWB(128)
	e.NTStore64(256, 3) // unfenced ntstore
	e.Store64(512, 4)
	e.CLFlush(512) // fully durable
	img := e.PrefixImage()
	for i, want := range map[int]uint64{0: 1, 128: 2, 256: 3, 512: 4} {
		if got := le64(img.Bytes()[i:]); got != want {
			t.Errorf("prefix image at %d = %d, want %d", i, got, want)
		}
	}
	// Strict image should only have the clflushed value.
	strict := e.MediumSnapshot()
	if le64(strict.Bytes()[0:]) != 0 || le64(strict.Bytes()[128:]) != 0 || le64(strict.Bytes()[256:]) != 0 {
		t.Error("strict image exposes unfenced data")
	}
	if le64(strict.Bytes()[512:]) != 4 {
		t.Error("strict image misses clflushed data")
	}
}

func TestFencedImageSubsets(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(0, 1)
	e.CLWB(0)
	e.Store64(128, 2)
	e.CLWB(128)
	img := e.FencedImage([]bool{true, false})
	if le64(img.Bytes()[0:]) != 1 || le64(img.Bytes()[128:]) != 0 {
		t.Fatalf("subset image wrong: %d %d", le64(img.Bytes()[0:]), le64(img.Bytes()[128:]))
	}
}

func TestSeededEvictionPersistsWithoutFlush(t *testing.T) {
	e := NewEngine(Options{PoolSize: 1 << 16, Eviction: EvictSeeded, EvictOneIn: 2, Seed: 1})
	for i := uint64(0); i < 512; i++ {
		e.Store64(i*64, i+1)
	}
	if e.Stats().Evictions == 0 {
		t.Fatal("seeded eviction never fired")
	}
	img := e.MediumSnapshot()
	persisted := 0
	for i := uint64(0); i < 512; i++ {
		if le64(img.Bytes()[i*64:]) == i+1 {
			persisted++
		}
	}
	if persisted == 0 {
		t.Fatal("no line reached medium via eviction")
	}
	if persisted == 512 {
		t.Fatal("every line persisted; eviction should be partial")
	}
}

func TestEvictionIsDeterministicPerSeed(t *testing.T) {
	run := func() *Image {
		e := NewEngine(Options{PoolSize: 1 << 16, Eviction: EvictSeeded, EvictOneIn: 3, Seed: 99})
		for i := uint64(0); i < 256; i++ {
			e.Store64(i*64, i^0xabc)
		}
		return e.MediumSnapshot()
	}
	if !bytes.Equal(run().Bytes(), run().Bytes()) {
		t.Fatal("same seed produced different eviction outcomes")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	e := newTestEngine(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds store did not panic")
		}
	}()
	e.Store64(uint64(e.Size()), 1)
}

func TestICountMonotonic(t *testing.T) {
	e := newTestEngine(4096)
	before := e.ICount()
	e.Store64(0, 1)
	e.CLWB(0)
	e.SFence()
	e.Load64(0)
	if e.ICount() != before+4 {
		t.Fatalf("icount advanced by %d, want 4", e.ICount()-before)
	}
}

// recorder collects events for hook-order assertions.
type recorder struct{ ops []Opcode }

func (r *recorder) OnEvent(ev *Event) { r.ops = append(r.ops, ev.Op) }

func TestHookSeesEventsInOrder(t *testing.T) {
	e := newTestEngine(4096)
	r := &recorder{}
	e.AttachHook(r)
	e.Store64(0, 1)
	e.CLWB(0)
	e.SFence()
	e.Load64(0)
	want := []Opcode{OpStore, OpCLWB, OpSFence, OpLoad}
	if len(r.ops) != len(want) {
		t.Fatalf("got %d events, want %d", len(r.ops), len(want))
	}
	for i := range want {
		if r.ops[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, r.ops[i], want[i])
		}
	}
}

func TestHookCrashLeavesEventUnapplied(t *testing.T) {
	e := newTestEngine(4096)
	crashAt := uint64(2) // the CLWB below
	e.AttachHook(hookFunc(func(ev *Event) {
		if ev.ICount == crashAt {
			panic(&CrashSignal{ICount: ev.ICount, Reason: "test"})
		}
	}))
	func() {
		defer func() {
			if _, ok := recover().(*CrashSignal); !ok {
				t.Fatal("expected CrashSignal")
			}
		}()
		e.Store64(0, 7)
		e.CLWB(0)
		t.Fatal("unreachable")
	}()
	// The CLWB never executed: nothing pending, store still dirty.
	if e.PendingCount() != 0 {
		t.Fatal("crashed flush still enqueued")
	}
	if got := le64(e.MediumSnapshot().Bytes()[0:]); got != 0 {
		t.Fatalf("crashed flush persisted data: %d", got)
	}
}

type hookFunc func(*Event)

func (f hookFunc) OnEvent(ev *Event) { f(ev) }

// Property: after any sequence of aligned 8-byte stores each followed by
// CLWB+SFENCE, the medium equals the cache view exactly.
func TestPropertyFlushedStoresAreDurable(t *testing.T) {
	f := func(words []uint64) bool {
		e := newTestEngine(1 << 14)
		n := uint64(e.Size() / 8)
		for i, w := range words {
			addr := (uint64(i) % n) * 8
			e.Store64(addr, w)
			e.CLWB(addr)
			e.SFence()
		}
		img := e.MediumSnapshot()
		for i := range words {
			addr := (uint64(i) % n) * 8
			if e.Load64(addr) != le64(img.Bytes()[addr:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the prefix image always equals the volatile view — every
// store in program order is applied.
func TestPropertyPrefixImageEqualsVolatileView(t *testing.T) {
	f := func(ops []uint16, vals []uint64) bool {
		e := newTestEngine(1 << 14)
		n := uint64(e.Size() / 8)
		for i, op := range ops {
			addr := (uint64(op) % n) * 8
			v := uint64(i)
			if i < len(vals) {
				v = vals[i]
			}
			switch op % 4 {
			case 0:
				e.Store64(addr, v)
			case 1:
				e.NTStore64(addr, v)
			case 2:
				e.Store64(addr, v)
				e.CLWB(addr)
			case 3:
				e.Store64(addr, v)
				e.CLFlush(addr)
				e.SFence()
			}
		}
		img := e.PrefixImage()
		view := make([]byte, e.Size())
		e.readInto(view, 0)
		return bytes.Equal(img.Bytes(), view)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the strictly durable medium never contains a value that was
// stored but neither flushed+fenced, clflushed, nor evicted (eviction is
// off here).
func TestPropertyUnflushedStoresNeverDurable(t *testing.T) {
	f := func(slots []uint16) bool {
		e := newTestEngine(1 << 14)
		n := uint64(e.Size() / 8)
		seen := map[uint64]bool{}
		for _, s := range slots {
			addr := (uint64(s) % n) * 8
			e.Store64(addr, 0xfeedface)
			seen[addr] = true
		}
		img := e.MediumSnapshot()
		for addr := range seen {
			if le64(img.Bytes()[addr:]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewEngineFromImage(t *testing.T) {
	e := newTestEngine(4096)
	e.Store64(64, 11)
	e.CLFlush(64)
	img := e.MediumSnapshot()
	e2 := NewEngineFromImage(Options{}, img)
	if got := e2.Load64(64); got != 11 {
		t.Fatalf("restored engine reads %d, want 11", got)
	}
	if e2.Size() != e.Size() {
		t.Fatalf("restored size %d != %d", e2.Size(), e.Size())
	}
	// Restored engine is independent of the image.
	e2.Store64(64, 12)
	e2.CLFlush(64)
	if got := le64(img.Bytes()[64:]); got != 11 {
		t.Fatalf("engine mutated source image: %d", got)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

package pmem

// Stats aggregates instruction and resource counters for one engine
// lifetime. They feed the Table 2 resource accounting.
type Stats struct {
	// Stores counts store events (including non-temporal stores).
	Stores uint64
	// NTStores counts non-temporal stores only.
	NTStores uint64
	// Loads counts load events.
	Loads uint64
	// Flushes counts clflush/clflushopt/clwb events.
	Flushes uint64
	// Fences counts sfence/mfence/RMW events.
	Fences uint64
	// RMWs counts read-modify-write events only.
	RMWs uint64
	// Evictions counts spontaneous dirty-line write-backs.
	Evictions uint64
	// BytesStored totals the payload bytes of all stores.
	BytesStored uint64
	// PeakCacheLines is the maximum number of simultaneously cached
	// lines.
	PeakCacheLines int
	// PeakQueue is the maximum depth of the write-pending queue.
	PeakQueue int
}

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Events returns the total number of instruction events delivered.
func (e *Engine) Events() uint64 { return e.icount }

package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Engine checkpointing — the Agamotto/Jaaru trick transplanted onto the
// deterministic engine.
//
// Every counter-mode fault injection needs only one thing from the
// replay: the engine's durable state at the leaf's instruction counter.
// The application's volatile state is irrelevant — the run crashes
// there. Re-executing the workload from icount 0 for every leaf is
// therefore pure waste: O(N²) engine events over a campaign whose
// failure points cover an N-event trace.
//
// Instead, the phase-1 instrumented run records two artifacts as it
// executes:
//
//   - a mutation log: a flat, compactly encoded stream of every
//     state-changing engine operation (stores, NT stores, flushes,
//     fences, RMWs, seeded evictions) with its instruction counter.
//     Loads are never logged — they do not change engine state — and
//     the encoding is append-only bytes, so the log costs a few bytes
//     per persistence event;
//   - periodic checkpoints, every CheckpointEvery events: the full
//     engine state — the medium as a *delta*: the lines persisted since
//     the previous checkpoint, copied into a per-checkpoint slab — plus
//     the incrementally maintained content hash, cache lines, the
//     write-pending queue, the medium high-water mark, and the log
//     offset of the first entry after the snapshot.
//
// Deltas chain: checkpoint k's medium is the store's genesis base (nil
// for the usual zeroed pool) with deltas 1..k applied in order. Each
// persisted line is therefore retained at most once per interval it was
// written in, so the whole store costs O(lines persisted) memory — a
// cumulative-overlay design (one COW image per checkpoint) retains
// every since-base line again in every later snapshot, which is O(N²)
// memory over a long recording and turns the campaign GC-bound.
//
// A replay to instruction counter F then restores the nearest
// checkpoint strictly below F and applies only the logged mutations in
// (checkpoint, F): O(gap) work instead of O(F), with no application
// code, no hook dispatch and no load traffic at all. Because the log
// replays the *exact* mutations the recording engine performed —
// including CAS outcomes and spontaneous seeded evictions — the
// restored engine is byte-identical to a from-scratch replay crashed at
// F: same medium, same cache lines and dirty masks, same queue (order
// and issue counters included), same rolling content hash. The
// graceful-crash image and its dedup-cache key therefore match the
// non-checkpointed campaign exactly, which keeps reports byte-identical
// with checkpointing on or off.
//
// After the instrumented run finishes the store is never written again;
// ReplayTo only reads it, so the campaign's parallel workers share one
// store without locks (the same read-only sharing the verdict cache and
// the frozen failure point tree use).

// Mutation-log entry tags. The tag encodes the operation and, for RMWs,
// whether the compare succeeded, so replay never has to re-derive a
// data-dependent outcome.
const (
	ckStore byte = iota + 1
	ckNTStore
	ckCLFlush
	ckCLFlushOpt
	ckCLWB
	ckFence
	ckRMW       // fence semantics + an applied 8-byte store
	ckRMWFailed // fence semantics only (compare failed)
	ckEvict     // seeded eviction: write back and drop one line
)

// ErrReplayDeadline reports that a checkpoint replay was cut short by
// the campaign deadline before reaching its target counter.
var ErrReplayDeadline = errors.New("pmem: checkpoint replay cut by deadline")

// replayDeadlineEvery is how many applied log entries pass between
// wall-clock deadline samples during gap replay.
const replayDeadlineEvery = 4096

// checkpoint is one snapshot of full engine state at an instruction
// counter, plus the log offset where post-snapshot entries begin.
type checkpoint struct {
	icount uint64
	// offset is the byte offset into the log of the first entry
	// recorded after this snapshot.
	offset int
	// delta holds the medium lines persisted since the previous
	// checkpoint (line base → line content in a shared slab); the
	// medium at this checkpoint is the genesis base with deltas 1..k
	// applied in order. hash is the rolling medium hash at the
	// snapshot, and touched the medium high-water mark in bytes —
	// restores copy only [0, touched) of the base.
	delta   map[uint64][]byte
	hash    uint64
	touched int
	// prefix is the rolling graceful-crash prefix hash at the snapshot
	// (zero unless the recording engine tracked it); restore carries it
	// over so gap replays keep it rolling.
	prefix uint64
	// lines and queue are deep copies of the volatile cache and the
	// write-pending queue.
	lines []line
	queue []pending
}

// CheckpointStore holds the mutation log and the ordered checkpoints of
// one recorded execution. It is written only by the recording engine
// (single-goroutine, like the engine itself) and becomes read-only once
// that run finishes; ReplayTo never mutates it, so concurrent replays
// are safe.
type CheckpointStore struct {
	opts     Options
	interval uint64
	log      []byte
	cps      []checkpoint
	// base is the medium at recording start; nil means an all-zero
	// pool (the common case — restores then skip the prefix copy
	// because a fresh engine's medium is already zeroed).
	base []byte
	// dirty accumulates the bases of lines persisted to the medium
	// since the last snapshot; take drains it into that checkpoint's
	// delta.
	dirty map[uint64]struct{}
	// nextAt is the instruction counter at which the next snapshot is
	// due; last is the counter of the most recent logged mutation (the
	// highest counter a replay can target).
	nextAt uint64
	last   uint64
	// entries counts logged mutations (diagnostics and tests).
	entries int
}

// newCheckpointStore is called by NewEngine when Options.CheckpointEvery
// is set. opts must already have defaults applied.
func newCheckpointStore(opts Options, interval uint64) *CheckpointStore {
	s := &CheckpointStore{
		opts: opts, interval: interval, nextAt: interval,
		dirty: make(map[uint64]struct{}),
	}
	// The genesis checkpoint: a fresh engine over a zeroed pool at
	// icount 0. It guarantees every target counter has a checkpoint
	// strictly below it.
	s.cps = append(s.cps, checkpoint{})
	return s
}

// Interval returns the configured snapshot interval in engine events.
func (s *CheckpointStore) Interval() uint64 { return s.interval }

// Count returns the number of materialised checkpoints (the implicit
// genesis checkpoint excluded).
func (s *CheckpointStore) Count() int { return len(s.cps) - 1 }

// Entries returns the number of logged mutations.
func (s *CheckpointStore) Entries() int { return s.entries }

// LastICount returns the instruction counter of the last logged
// mutation — the highest counter ReplayTo can reach.
func (s *CheckpointStore) LastICount() uint64 { return s.last }

// Bytes approximates the store's resident size: the mutation log, the
// genesis base (if any), and the per-checkpoint deltas plus cache-line
// and queue copies.
func (s *CheckpointStore) Bytes() uint64 {
	const lineBytes, pendingBytes = 96, 96 // struct sizes, rounded up
	total := uint64(len(s.log)) + uint64(len(s.base))
	for i := range s.cps {
		cp := &s.cps[i]
		total += uint64(len(cp.lines))*lineBytes + uint64(len(cp.queue))*pendingBytes
		total += uint64(len(cp.delta)) * (CacheLineSize + 24)
	}
	return total
}

// record appends one mutation entry: tag, absolute instruction counter,
// then per-tag operands. Store-class entries carry their payload; flush
// and evict entries carry the line base; fences carry nothing.
func (s *CheckpointStore) record(tag byte, icount, addr uint64, data []byte) {
	s.log = append(s.log, tag)
	s.log = binary.AppendUvarint(s.log, icount)
	switch tag {
	case ckStore, ckNTStore:
		s.log = binary.AppendUvarint(s.log, addr)
		s.log = binary.AppendUvarint(s.log, uint64(len(data)))
		s.log = append(s.log, data...)
	case ckCLFlush, ckCLFlushOpt, ckCLWB, ckEvict:
		s.log = binary.AppendUvarint(s.log, addr)
	case ckRMW:
		s.log = binary.AppendUvarint(s.log, addr)
		s.log = append(s.log, data...) // exactly 8 bytes
	case ckRMWFailed:
		s.log = binary.AppendUvarint(s.log, addr)
	case ckFence:
	}
	s.last = icount
	s.entries++
}

// take snapshots the recording engine's full state. The medium delta is
// the lines persisted since the previous snapshot, copied into one slab
// (O(changed lines), no sharing with the engine's own COW snapshot
// machinery); cache lines and the queue are small and copied outright.
func (s *CheckpointStore) take(e *Engine) {
	cp := checkpoint{
		icount:  e.icount,
		offset:  len(s.log),
		hash:    e.mediumHash,
		prefix:  e.prefixHash,
		touched: e.mediumMax,
	}
	if len(s.dirty) > 0 {
		cp.delta = make(map[uint64][]byte, len(s.dirty))
		slab := make([]byte, len(s.dirty)*CacheLineSize)
		for base := range s.dirty {
			ln := slab[:CacheLineSize:CacheLineSize]
			slab = slab[CacheLineSize:]
			copy(ln, e.medium[base:])
			cp.delta[base] = ln
		}
		clear(s.dirty)
	}
	if len(e.lines) > 0 {
		cp.lines = make([]line, 0, len(e.lines))
		for _, ln := range e.lines {
			cp.lines = append(cp.lines, *ln)
		}
	}
	if len(e.queue) > 0 {
		cp.queue = append([]pending(nil), e.queue...)
	}
	s.cps = append(s.cps, cp)
	s.nextAt = e.icount + s.interval
}

// nearestBelow returns the index of the latest checkpoint whose counter
// is strictly below target. The genesis checkpoint makes the search
// total.
func (s *CheckpointStore) nearestBelow(target uint64) int {
	lo, hi := 0, len(s.cps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.cps[mid].icount < target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// restore materialises a private engine from checkpoint idx: the
// genesis base prefix (skipped entirely for the usual zeroed pool)
// overlaid with deltas 1..idx in order. Restoring costs O(touched
// prefix + lines persisted up to the checkpoint) — line-copy work, far
// below re-executing the application — plus O(live lines + queue).
func (s *CheckpointStore) restore(idx int) *Engine {
	cp := &s.cps[idx]
	o := s.opts
	// The restored engine never executes application code: no
	// recording, no watchdogs, no capture. It only receives logged
	// mutations and then materialises crash images.
	o.CheckpointEvery = 0
	o.CrashAt = 0
	o.MaxEvents = 0
	o.Deadline = time.Time{}
	o.Capture = CaptureNone
	o.Stacks = nil
	e := NewEngine(o)
	if s.base != nil && cp.touched > 0 {
		copy(e.medium[:cp.touched], s.base[:cp.touched])
	}
	// Deltas never reach past their checkpoint's high-water mark, so
	// applying them in order rebuilds exactly the medium at idx.
	for j := 1; j <= idx; j++ {
		for base, ln := range s.cps[j].delta {
			copy(e.medium[base:], ln)
		}
	}
	e.mediumHash = cp.hash
	e.prefixHash = cp.prefix
	e.mediumMax = cp.touched
	for i := range cp.lines {
		ln := cp.lines[i]
		e.lines[ln.base] = &ln
		e.evictKeys = append(e.evictKeys, ln.base)
	}
	if len(cp.queue) > 0 {
		e.queue = append(e.queue, cp.queue...)
	}
	e.icount = cp.icount
	return e
}

// ReplayTo rebuilds the engine state of a replay crashed at the target
// instruction counter: restore the nearest checkpoint strictly below
// target, apply the logged mutations with counters in (checkpoint,
// target), and set the counter to target — exactly the state an
// execution reaches when the engine panics at CrashAt == target, which
// happens before the target instruction's own mutation.
//
// It returns the private restored engine and the replayed gap in
// instruction-counter units (target minus the checkpoint counter). A
// target beyond the last logged mutation returns an error (the
// recorded run never reached it); a non-zero deadline cuts long gap
// replays short with ErrReplayDeadline.
//
// ReplayTo is read-only on the store and safe to call concurrently once
// the recording run has finished.
func (s *CheckpointStore) ReplayTo(target uint64, deadline time.Time) (*Engine, uint64, error) {
	if target == 0 || target > s.last {
		return nil, 0, fmt.Errorf("pmem: replay target %d beyond the recorded run (last mutation at %d)", target, s.last)
	}
	idx := s.nearestBelow(target)
	cp := &s.cps[idx]
	e := s.restore(idx)
	pos := cp.offset
	applied := 0
	for pos < len(s.log) {
		tag := s.log[pos]
		icount, n := binary.Uvarint(s.log[pos+1:])
		pos += 1 + n
		if icount >= target {
			break
		}
		// pending entries stamp the current counter at issue time, so
		// the counter must be set before the mutation is applied.
		e.icount = icount
		switch tag {
		case ckStore, ckNTStore:
			addr, n := binary.Uvarint(s.log[pos:])
			pos += n
			size, n := binary.Uvarint(s.log[pos:])
			pos += n
			data := s.log[pos : pos+int(size)]
			pos += int(size)
			if tag == ckStore {
				e.applyStore(addr, data)
			} else {
				e.applyNTStore(addr, data)
			}
		case ckCLFlush:
			base, n := binary.Uvarint(s.log[pos:])
			pos += n
			e.applyCLFlush(base)
		case ckCLFlushOpt, ckCLWB:
			base, n := binary.Uvarint(s.log[pos:])
			pos += n
			e.applyFlushAsync(base, tag == ckCLFlushOpt)
		case ckFence:
			e.drain()
		case ckRMW:
			addr, n := binary.Uvarint(s.log[pos:])
			pos += n
			data := s.log[pos : pos+8]
			pos += 8
			e.drain()
			e.applyStore(addr, data)
		case ckRMWFailed:
			_, n := binary.Uvarint(s.log[pos:])
			pos += n
			e.drain()
		case ckEvict:
			base, n := binary.Uvarint(s.log[pos:])
			pos += n
			if ln := e.lines[base]; ln != nil {
				e.evictLine(ln)
			}
		default:
			return nil, 0, fmt.Errorf("pmem: corrupt checkpoint log: tag %d at offset %d", tag, pos)
		}
		applied++
		if applied%replayDeadlineEvery == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return nil, 0, ErrReplayDeadline
		}
	}
	e.icount = target
	return e, target - cp.icount, nil
}

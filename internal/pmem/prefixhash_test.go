package pmem

import (
	"testing"
	"time"
)

// assertRolling checks the tracked invariant: the rolling prefix hash
// equals the on-demand ground truth at every quiescent point.
func assertRolling(t *testing.T, e *Engine, label string) {
	t.Helper()
	if got, want := e.RollingPrefixHash(), e.PrefixImageHash(); got != want {
		t.Fatalf("%s: rolling prefix hash %#x != PrefixImageHash %#x", label, got, want)
	}
}

// exerciseEngine drives one deterministic mixed workload: cached and NT
// stores (full and partial lines), flushes of every flavour, fences,
// RMWs, and enough stores to trigger seeded evictions.
func exerciseEngine(e *Engine, check func(string)) {
	e.Store64(0, 0x1111)
	check("store64")
	e.Store(100, []byte{1, 2, 3, 4, 5})
	check("unaligned store")
	e.CLWB(0)
	check("clwb")
	e.Store64(0, 0x2222) // re-dirty a line with a queued write-back
	check("re-dirty after clwb")
	e.NTStore64(256, 0x3333)
	check("partial-line ntstore")
	buf := make([]byte, 192)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	e.NTStore(320, buf) // full-line chunks
	check("bulk ntstore")
	e.NTStore(130, buf[:10]) // partial NT overlapping a cached line
	check("nt over cached")
	e.SFence()
	check("sfence")
	e.CLFlush(100)
	check("clflush")
	e.CLFlushOpt(320)
	check("clflushopt")
	e.CAS64(512, 0, 0x4444)
	check("cas success")
	e.CAS64(512, 0, 0x5555)
	check("cas failure")
	e.FAA64(512, 3)
	check("faa")
	for i := uint64(0); i < 400; i++ {
		e.Store64(1024+8*(i%64), i)
		if i%16 == 0 {
			e.CLWB(1024 + 8*(i%64))
		}
	}
	check("store burst")
	e.SFence()
	check("final fence")
}

func TestRollingPrefixHashMatchesGroundTruth(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{PoolSize: 1 << 16, TrackPrefixHash: true}},
		{"evicting", Options{PoolSize: 1 << 16, TrackPrefixHash: true,
			Eviction: EvictSeeded, EvictOneIn: 4, Seed: 7}},
		{"eadr", Options{PoolSize: 1 << 16, TrackPrefixHash: true, EADR: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(tc.opts)
			assertRolling(t, e, "fresh engine")
			exerciseEngine(e, func(label string) { assertRolling(t, e, label) })
		})
	}
}

func TestRollingPrefixHashFromImage(t *testing.T) {
	src := NewEngine(Options{PoolSize: 1 << 12})
	src.Store64(64, 0xabcd)
	src.CLWB(64)
	src.SFence()
	img := src.PrefixImage()

	e := NewEngineFromImage(Options{TrackPrefixHash: true}, img)
	assertRolling(t, e, "restarted engine")
	e.Store64(128, 0x99)
	assertRolling(t, e, "post-restart store")
}

// TestRollingPrefixHashCheckpointRoundTrip proves the checkpoint
// round-trip: an engine restored from any checkpoint and gap-replayed
// to a target carries the same rolling hash a from-scratch tracked
// execution has at that instruction — and it still matches the ground
// truth.
func TestRollingPrefixHashCheckpointRoundTrip(t *testing.T) {
	opts := Options{PoolSize: 1 << 16, TrackPrefixHash: true,
		Eviction: EvictSeeded, EvictOneIn: 4, Seed: 7, CheckpointEvery: 32}
	rec := NewEngine(opts)
	type point struct {
		icount uint64
		hash   uint64
	}
	var points []point
	exerciseEngine(rec, func(string) {
		points = append(points, point{rec.ICount(), rec.RollingPrefixHash()})
	})
	ck := rec.Checkpoints()
	if ck.Count() == 0 {
		t.Fatal("recording produced no checkpoints")
	}
	for _, p := range points {
		if p.icount == 0 || p.icount+1 > ck.LastICount() {
			continue
		}
		// ReplayTo targets the state *before* icount; replay to the next
		// counter to land on the state after the recorded instruction.
		e, _, err := ck.ReplayTo(p.icount+1, time.Time{})
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", p.icount+1, err)
		}
		if got := e.RollingPrefixHash(); got != p.hash {
			t.Fatalf("replay to %d: rolling hash %#x, recorded run had %#x", p.icount, got, p.hash)
		}
		assertRolling(t, e, "restored engine")
	}
}

// TestRollingPrefixHashEvictionOverlap pins the one non-store mutation
// of the coherent view: a seeded eviction whose dirty bytes are
// re-overlaid by an older queued write-back of the same line.
func TestRollingPrefixHashEvictionOverlap(t *testing.T) {
	// EvictOneIn == 1 forces an eviction attempt after every store.
	e := NewEngine(Options{PoolSize: 1 << 12, TrackPrefixHash: true,
		Eviction: EvictSeeded, EvictOneIn: 1, Seed: 1})
	e.Store64(0, 0xaaaa)
	e.CLWB(0) // queue the line with 0xaaaa
	e.Store64(0, 0xbbbb)
	// The store above triggered an eviction sweep; keep storing until
	// line 0 is certainly evicted while its CLWB entry is still queued.
	for i := uint64(0); i < 32 && e.LineDirty(0); i++ {
		e.Store64(0, 0xbbbb+i)
	}
	assertRolling(t, e, "after eviction with queued overlap")
	e.SFence()
	assertRolling(t, e, "after drain")
}

func TestUntrackedEngineKeepsZeroPrefixHash(t *testing.T) {
	e := NewEngine(Options{PoolSize: 1 << 12})
	e.Store64(0, 1)
	e.CLWB(0)
	e.SFence()
	if e.TracksPrefixHash() {
		t.Fatal("engine reports tracking without TrackPrefixHash")
	}
	if e.RollingPrefixHash() != 0 {
		t.Fatal("untracked engine mutated the rolling prefix hash")
	}
}

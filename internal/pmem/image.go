package pmem

// Image is a durable snapshot of pool contents — the state an
// application would observe after a restart.
//
// Images are copy-on-write: an engine-produced image is a shared,
// immutable full-pool base plus a line-granular overlay of the bytes
// that diverge from it, so consecutive snapshots cost O(changed lines)
// rather than O(pool). Every engine-produced image also carries its
// content hash, maintained incrementally by the engine (dirty.go), so
// identity checks never rescan the pool.
//
// Engine-produced images must be treated as read-only: their base is
// shared with the engine and with sibling snapshots. Callers that need
// a mutable buffer (the trace replay cursor, exhaustive-exploration
// baselines) take ownership through Clone or NewImage, which always
// yield a private flat copy.
type Image struct {
	size int
	// base is the shared full-pool snapshot; overlay holds the lines
	// that diverge from it. For flat images (Clone, NewImage) base is
	// nil and flat owns the contents.
	base    []byte
	overlay map[uint64][]byte
	// flat caches the materialised contents; it aliases base when the
	// overlay is empty.
	flat []byte
	// hash is the content hash (ContentHash of the materialised
	// bytes); hashed reports whether the producer computed it.
	hash   uint64
	hashed bool
}

// NewImage builds a flat image from raw pool contents. The data is
// copied; the caller keeps ownership of its slice.
func NewImage(data []byte) *Image {
	cp := make([]byte, len(data))
	copy(cp, data)
	return &Image{size: len(cp), flat: cp}
}

// Len returns the pool size in bytes.
func (img *Image) Len() int { return img.size }

// Bytes returns the full materialised contents. The slice is cached and
// may alias the shared snapshot base: callers must not modify it unless
// they own the image (Clone, NewImage).
func (img *Image) Bytes() []byte {
	if img.flat != nil {
		return img.flat
	}
	if len(img.overlay) == 0 {
		img.flat = img.base
		return img.flat
	}
	flat := make([]byte, img.size)
	copy(flat, img.base)
	for base, ln := range img.overlay {
		copy(flat[base:], ln)
	}
	img.flat = flat
	return img.flat
}

// CopyInto materialises the image into dst (len(dst) >= Len()) without
// allocating or caching a flat copy.
func (img *Image) CopyInto(dst []byte) {
	switch {
	case img.flat != nil:
		copy(dst, img.flat)
	default:
		copy(dst, img.base)
		for base, ln := range img.overlay {
			copy(dst[base:], ln)
		}
	}
}

// Hash returns the image's content hash — the dedup identity used by
// the crash-image verdict cache. Engine-produced images carry it
// already; for hand-built images it is computed (and memoised) on first
// use, so call it only once the image is quiescent.
func (img *Image) Hash() uint64 {
	if !img.hashed {
		img.hash = ContentHash(img.Bytes())
		img.hashed = true
	}
	return img.hash
}

// Clone returns a private flat deep copy that the caller may modify.
func (img *Image) Clone() *Image {
	cp := make([]byte, img.size)
	img.CopyInto(cp)
	return &Image{size: img.size, flat: cp}
}

// MediumSnapshot returns the strictly durable state. Under the classic
// ADR domain that is the medium contents only: dirty cache lines and
// unfenced write-backs are lost, the worst-case power-cut image. Under
// eADR the caches are inside the persistence domain, so every store is
// already durable and the snapshot equals the coherent view.
func (e *Engine) MediumSnapshot() *Image {
	if e.opts.EADR {
		return e.PrefixImage()
	}
	return e.mediumImage()
}

// snapRebaseDivisor triggers a fresh snapshot base once the
// since-snapshot overlay would exceed this fraction of the pool:
// overlays larger than that stop being cheaper than a rebase, and the
// old base only pins dead memory.
const snapRebaseDivisor = 4

// mediumImage snapshots the raw medium, ignoring the persistence
// domain. The first call (and any call after heavy churn) materialises
// a full copy as the shared base; subsequent calls reuse it and overlay
// only the lines persisted since — O(changed lines).
func (e *Engine) mediumImage() *Image {
	lines := len(e.medium) / CacheLineSize
	if e.snapBase == nil || len(e.snapDirty)*snapRebaseDivisor > lines {
		base := make([]byte, len(e.medium))
		copy(base, e.medium)
		e.snapBase = base
		e.snapDirty = make(map[uint64]struct{})
		return &Image{size: len(e.medium), base: base, hash: e.mediumHash, hashed: true}
	}
	img := &Image{size: len(e.medium), base: e.snapBase, hash: e.mediumHash, hashed: true}
	if len(e.snapDirty) > 0 {
		img.overlay = make(map[uint64][]byte, len(e.snapDirty))
		buf := make([]byte, len(e.snapDirty)*CacheLineSize)
		for base := range e.snapDirty {
			ln := buf[:CacheLineSize:CacheLineSize]
			buf = buf[CacheLineSize:]
			copy(ln, e.medium[base:base+CacheLineSize])
			img.overlay[base] = ln
		}
	}
	return img
}

// PrefixImage returns the "graceful crash" image of §4.1: every store
// issued so far is persisted, respecting program order. It is built
// from the medium snapshot plus an overlay holding the durable view of
// every line with pending write-backs or dirty cached bytes. This is
// the deterministic post-failure state Mumak's fault injector hands to
// the recovery procedure.
func (e *Engine) PrefixImage() *Image {
	img := e.mediumImage()
	bases := e.durableOverlayBases()
	if len(bases) == 0 {
		return img
	}
	if img.overlay == nil {
		img.overlay = make(map[uint64][]byte, len(bases))
	}
	h := img.hash
	for _, base := range bases {
		view := e.durableLineView(base)
		h ^= lineContrib(base, e.medium[base:base+CacheLineSize])
		h ^= lineContrib(base, view)
		img.overlay[base] = view
	}
	img.hash = h
	return img
}

// FencedImage returns the image in which fenced data plus an arbitrary
// caller-selected subset of the unfenced write-backs is durable. keep[i]
// selects the i-th queued write-back. It models the power-cut
// non-determinism between a flush and its fence. Panics if len(keep)
// differs from PendingCount.
func (e *Engine) FencedImage(keep []bool) *Image {
	if len(keep) != len(e.queue) {
		panic("pmem: FencedImage selector length mismatch")
	}
	img := e.mediumImage()
	var touched map[uint64][]byte
	for i := range e.queue {
		if !keep[i] {
			continue
		}
		p := &e.queue[i]
		if touched == nil {
			touched = make(map[uint64][]byte)
		}
		ln := touched[p.base]
		if ln == nil {
			ln = make([]byte, CacheLineSize)
			copy(ln, e.medium[p.base:p.base+CacheLineSize])
			touched[p.base] = ln
		}
		applyMasked(ln, p.data[:], p.dirty)
	}
	if len(touched) == 0 {
		return img
	}
	if img.overlay == nil {
		img.overlay = make(map[uint64][]byte, len(touched))
	}
	h := img.hash
	for base, ln := range touched {
		h ^= lineContrib(base, e.medium[base:base+CacheLineSize])
		h ^= lineContrib(base, ln)
		img.overlay[base] = ln
	}
	img.hash = h
	return img
}

package pmem

// Image is a durable snapshot of pool contents — the state an application
// would observe after a restart.
type Image struct {
	// Data is the full pool contents.
	Data []byte
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	cp := make([]byte, len(img.Data))
	copy(cp, img.Data)
	return &Image{Data: cp}
}

// MediumSnapshot returns the strictly durable state. Under the classic
// ADR domain that is the medium contents only: dirty cache lines and
// unfenced write-backs are lost, the worst-case power-cut image. Under
// eADR the caches are inside the persistence domain, so every store is
// already durable and the snapshot equals the coherent view.
func (e *Engine) MediumSnapshot() *Image {
	if e.opts.EADR {
		return e.PrefixImage()
	}
	return e.mediumCopy()
}

// mediumCopy copies the raw medium contents, ignoring the persistence
// domain.
func (e *Engine) mediumCopy() *Image {
	img := &Image{Data: make([]byte, len(e.medium))}
	copy(img.Data, e.medium)
	return img
}

// PrefixImage returns the "graceful crash" image of §4.1: every store
// issued so far is persisted, respecting program order. It is built from
// the medium plus all pending write-backs plus all dirty cache lines.
// This is the deterministic post-failure state Mumak's fault injector
// hands to the recovery procedure.
func (e *Engine) PrefixImage() *Image {
	img := e.mediumCopy()
	for i := range e.queue {
		p := &e.queue[i]
		for b := 0; b < CacheLineSize; b++ {
			if p.dirty&(1<<uint(b)) != 0 {
				img.Data[p.base+uint64(b)] = p.data[b]
			}
		}
	}
	for _, ln := range e.lines {
		if ln.dirty == 0 {
			continue
		}
		for b := 0; b < CacheLineSize; b++ {
			if ln.dirty&(1<<uint(b)) != 0 {
				img.Data[ln.base+uint64(b)] = ln.data[b]
			}
		}
	}
	return img
}

// FencedImage returns the image in which fenced data plus an arbitrary
// caller-selected subset of the unfenced write-backs is durable. keep[i]
// selects the i-th queued write-back. It models the power-cut
// non-determinism between a flush and its fence. Panics if len(keep)
// differs from PendingCount.
func (e *Engine) FencedImage(keep []bool) *Image {
	if len(keep) != len(e.queue) {
		panic("pmem: FencedImage selector length mismatch")
	}
	img := e.mediumCopy()
	for i := range e.queue {
		if !keep[i] {
			continue
		}
		p := &e.queue[i]
		for b := 0; b < CacheLineSize; b++ {
			if p.dirty&(1<<uint(b)) != 0 {
				img.Data[p.base+uint64(b)] = p.data[b]
			}
		}
	}
	return img
}

package pmem

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomOps drives the engine through a pseudo-random instruction mix
// that exercises stores, NT stores, flushes, fences and RMWs.
func randomOps(e *Engine, rng *rand.Rand, n int) {
	size := uint64(e.Size())
	for i := 0; i < n; i++ {
		addr := (rng.Uint64() % (size - 16)) &^ 7
		switch rng.Intn(10) {
		case 0, 1, 2:
			e.Store64(addr, rng.Uint64())
		case 3:
			var buf [24]byte
			rng.Read(buf[:])
			e.Store(addr, buf[:])
		case 4:
			e.NTStore64(addr, rng.Uint64())
		case 5:
			e.CLWB(addr)
		case 6:
			e.CLFlushOpt(addr)
		case 7:
			e.CLFlush(addr)
		case 8:
			e.SFence()
		case 9:
			e.FAA64(addr, 3)
		}
	}
}

// The central dedup invariant: the incrementally maintained image hash
// always equals a from-scratch content hash of the materialised bytes,
// for both snapshot flavours, at arbitrary points of arbitrary
// instruction streams.
func TestIncrementalHashMatchesContentHash(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(Options{PoolSize: 1 << 16})
		for step := 0; step < 40; step++ {
			randomOps(e, rng, 25)
			img := e.PrefixImage()
			if got, want := img.Hash(), ContentHash(img.Bytes()); got != want {
				t.Fatalf("seed %d step %d: PrefixImage hash %#x, content hash %#x", seed, step, got, want)
			}
			if got, want := e.PrefixImageHash(), img.Hash(); got != want {
				t.Fatalf("seed %d step %d: PrefixImageHash %#x, image hash %#x", seed, step, got, want)
			}
			med := e.MediumSnapshot()
			if got, want := med.Hash(), ContentHash(med.Bytes()); got != want {
				t.Fatalf("seed %d step %d: MediumSnapshot hash %#x, content hash %#x", seed, step, got, want)
			}
			if got, want := e.MediumSnapshotHash(), med.Hash(); got != want {
				t.Fatalf("seed %d step %d: MediumSnapshotHash %#x, image hash %#x", seed, step, got, want)
			}
		}
	}
}

// FencedImage hashes must obey the same invariant for arbitrary keep
// subsets of the write-pending queue.
func TestFencedImageHash(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEngine(Options{PoolSize: 1 << 14})
	for i := 0; i < 6; i++ {
		addr := uint64(i) * 64
		e.Store64(addr, rng.Uint64())
		e.CLWB(addr)
	}
	n := e.PendingCount()
	if n == 0 {
		t.Fatal("no pending write-backs to subset")
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = mask&(1<<uint(i)) != 0
		}
		img := e.FencedImage(keep)
		if got, want := img.Hash(), ContentHash(img.Bytes()); got != want {
			t.Fatalf("mask %b: image hash %#x, content hash %#x", mask, got, want)
		}
	}
}

// A snapshot must be immutable: once taken, later engine activity may
// not leak into it (the COW base is shared, so this guards the
// aliasing discipline).
func TestSnapshotImmutableAfterLaterWrites(t *testing.T) {
	e := NewEngine(Options{PoolSize: 1 << 14})
	e.Store64(128, 42)
	e.CLWB(128)
	e.SFence()
	img := e.MediumSnapshot()
	want := append([]byte(nil), img.Bytes()...)
	wantHash := img.Hash()

	rng := rand.New(rand.NewSource(11))
	randomOps(e, rng, 300)
	e.SFence()

	if !bytes.Equal(img.Bytes(), want) {
		t.Fatal("snapshot bytes changed after later engine writes")
	}
	if img.Hash() != wantHash {
		t.Fatal("snapshot hash changed after later engine writes")
	}
}

// Consecutive snapshots share the base: a second snapshot after a small
// persisted change must observe the change (via its overlay) while the
// first keeps the old contents.
func TestCOWSnapshotsObserveOnlyOwnState(t *testing.T) {
	e := NewEngine(Options{PoolSize: 1 << 14})
	e.Store64(0, 1)
	e.CLFlush(0)
	s1 := e.MediumSnapshot()
	e.Store64(0, 2)
	e.Store64(4096, 3)
	e.CLFlush(0)
	e.CLFlush(4096)
	s2 := e.MediumSnapshot()
	if got := le64(s1.Bytes()[0:]); got != 1 {
		t.Fatalf("first snapshot sees %d at 0, want 1", got)
	}
	if got := le64(s2.Bytes()[0:]); got != 2 {
		t.Fatalf("second snapshot sees %d at 0, want 2", got)
	}
	if got := le64(s2.Bytes()[4096:]); got != 3 {
		t.Fatalf("second snapshot sees %d at 4096, want 3", got)
	}
	if s1.Hash() == s2.Hash() {
		t.Fatal("distinct contents hash equal")
	}
}

// Engines restored from an image inherit its hash, so their own
// snapshots stay consistent without a pool rescan.
func TestEngineFromImageInheritsHash(t *testing.T) {
	e := NewEngine(Options{PoolSize: 1 << 14})
	rng := rand.New(rand.NewSource(3))
	randomOps(e, rng, 200)
	img := e.PrefixImage()

	e2 := NewEngineFromImage(Options{}, img)
	snap := e2.MediumSnapshot()
	if got, want := snap.Hash(), img.Hash(); got != want {
		t.Fatalf("restored engine snapshot hash %#x, want image hash %#x", got, want)
	}
	if !bytes.Equal(snap.Bytes(), img.Bytes()) {
		t.Fatal("restored engine snapshot differs from source image")
	}
	// And hand-built images agree with engine-produced ones.
	if got, want := NewImage(img.Bytes()).Hash(), img.Hash(); got != want {
		t.Fatalf("NewImage hash %#x, want %#x", got, want)
	}
}

// Identical durable states reached through different instruction
// streams must collide on the same hash — the property the verdict
// cache keys on.
func TestIdenticalImagesHashEqual(t *testing.T) {
	build := func(flushFirst bool) *Engine {
		e := NewEngine(Options{PoolSize: 1 << 14})
		a, b := uint64(64), uint64(256)
		if flushFirst {
			e.Store64(a, 7)
			e.CLWB(a)
			e.SFence()
			e.Store64(b, 9)
		} else {
			e.Store64(b, 9)
			e.Store64(a, 7)
			// a left dirty in cache, b dirty too: prefix image equal.
		}
		return e
	}
	i1, i2 := build(true).PrefixImage(), build(false).PrefixImage()
	if !bytes.Equal(i1.Bytes(), i2.Bytes()) {
		t.Fatal("fixture images differ; test is vacuous")
	}
	if i1.Hash() != i2.Hash() {
		t.Fatalf("identical images hash %#x vs %#x", i1.Hash(), i2.Hash())
	}
}

// applyMasked must match the per-byte reference for arbitrary masks,
// including the full-line fast path.
func TestApplyMaskedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var dst, src, ref [CacheLineSize]byte
		rng.Read(dst[:])
		rng.Read(src[:])
		copy(ref[:], dst[:])
		var dirty uint64
		switch trial % 3 {
		case 0:
			dirty = rng.Uint64()
		case 1:
			dirty = ^uint64(0)
		case 2:
			dirty = 0
		}
		for i := 0; i < CacheLineSize; i++ {
			if dirty&(1<<uint(i)) != 0 {
				ref[i] = src[i]
			}
		}
		applyMasked(dst[:], src[:], dirty)
		if dst != ref {
			t.Fatalf("trial %d (dirty %#x): applyMasked diverges from reference", trial, dirty)
		}
	}
}

// storeMask must match the bit-loop it replaced.
func TestStoreMask(t *testing.T) {
	for off := uint64(0); off < CacheLineSize; off++ {
		for n := 1; int(off)+n <= CacheLineSize; n++ {
			var want uint64
			for i := 0; i < n; i++ {
				want |= 1 << (off + uint64(i))
			}
			if got := storeMask(off, n); got != want {
				t.Fatalf("storeMask(%d,%d) = %#x, want %#x", off, n, got, want)
			}
		}
	}
}

// ContentHash must not ignore a trailing partial line: two unaligned
// buffers differing only past the last full line would otherwise hash
// identically, and the verdict cache would serve one's recovery verdict
// for the other. The tail is folded zero-padded, so padding a buffer
// out to the line size explicitly is hash-neutral.
func TestContentHashCoversPartialTail(t *testing.T) {
	data := make([]byte, 3*CacheLineSize+17)
	for i := range data {
		data[i] = byte(i * 31)
	}
	twin := append([]byte(nil), data...)
	twin[len(twin)-1] ^= 0xff // diverge only inside the partial tail
	if ContentHash(data) == ContentHash(twin) {
		t.Fatal("buffers differing only in the trailing partial line hash identically")
	}
	padded := append(append([]byte(nil), data...), make([]byte, CacheLineSize-17)...)
	if ContentHash(data) != ContentHash(padded) {
		t.Fatal("zero-padding the tail to a full line changed the hash")
	}
	if got := ContentHash(data[:3*CacheLineSize]); got == ContentHash(data) {
		t.Fatal("dropping a non-zero tail did not change the hash")
	}
	// And the Image path agrees: a hand-built unaligned image hashes
	// like its raw bytes.
	if NewImage(data).Hash() != ContentHash(data) {
		t.Fatal("Image.Hash diverges from ContentHash on unaligned data")
	}
}

package pmem

import "testing"

func TestEADRStoresDurableWithoutFlush(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096, EADR: true})
	e.Store64(0, 7)
	e.NTStore64(64, 9)
	img := e.MediumSnapshot()
	if le64(img.Bytes()[0:]) != 7 || le64(img.Bytes()[64:]) != 9 {
		t.Fatalf("eADR snapshot lost visible stores: %d %d",
			le64(img.Bytes()[0:]), le64(img.Bytes()[64:]))
	}
}

func TestADRSnapshotStillStrict(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096})
	e.Store64(0, 7)
	if got := le64(e.MediumSnapshot().Bytes()[0:]); got != 0 {
		t.Fatalf("ADR snapshot exposed an unflushed store: %d", got)
	}
}

func TestCrashAtFiresWithoutHooks(t *testing.T) {
	e := NewEngine(Options{PoolSize: 4096, CrashAt: 3})
	var sig *CrashSignal
	func() {
		defer func() {
			if r := recover(); r != nil {
				sig = r.(*CrashSignal)
			}
		}()
		e.Store64(0, 1) // 1
		e.CLWB(0)       // 2
		e.SFence()      // 3 <- crash here, before the fence applies
		t.Fatal("unreachable")
	}()
	if sig == nil || sig.ICount != 3 {
		t.Fatalf("sig = %+v", sig)
	}
	// The fence never executed: the flush is still pending.
	if e.PendingCount() != 1 {
		t.Fatalf("pending = %d; the crashed fence must not drain", e.PendingCount())
	}
}

func TestCrashAtMatchesHookInjection(t *testing.T) {
	// The native fast path and a hook-based injector must stop the
	// engine in identical states.
	run := func(native bool) *Image {
		opts := Options{PoolSize: 4096}
		var hooks []Hook
		if native {
			opts.CrashAt = 5
		} else {
			hooks = append(hooks, hookFunc(func(ev *Event) {
				if ev.ICount == 5 {
					panic(&CrashSignal{ICount: 5, Reason: "hook"})
				}
			}))
		}
		e := NewEngine(opts)
		for _, h := range hooks {
			e.AttachHook(h)
		}
		func() {
			defer func() { recover() }()
			for i := uint64(0); i < 10; i++ {
				e.Store64(i*8, i+1)
				e.CLWB(i * 8)
				e.SFence()
			}
		}()
		return e.PrefixImage()
	}
	a, b := run(true), run(false)
	for i := range a.Bytes() {
		if a.Bytes()[i] != b.Bytes()[i] {
			t.Fatalf("images diverge at byte %d", i)
		}
	}
}

package pmem

// Opcode identifies the concrete instruction observed by a Hook. The set
// mirrors the x86 instructions discussed in §2 of the paper.
type Opcode uint8

// The instruction set captured by the instrumentation layer.
const (
	// OpStore is a regular (cached, write-back) store to PM.
	OpStore Opcode = iota
	// OpNTStore is a non-temporal store: it bypasses the cache but is
	// buffered and requires a fence to be guaranteed durable.
	OpNTStore
	// OpLoad is a load from PM.
	OpLoad
	// OpCLFlush synchronously writes a cache line back to the medium. It
	// is ordered with respect to other stores and cannot be reordered.
	OpCLFlush
	// OpCLFlushOpt asynchronously writes a cache line back and
	// invalidates it; durable only after the next fence.
	OpCLFlushOpt
	// OpCLWB asynchronously writes a cache line back without
	// invalidating it; durable only after the next fence.
	OpCLWB
	// OpSFence orders stores and flushes: all buffered flushes and
	// non-temporal stores issued before it become durable.
	OpSFence
	// OpMFence orders loads, stores and flushes; for persistency
	// purposes it behaves like OpSFence.
	OpMFence
	// OpRMW is an atomic read-modify-write (compare-and-swap,
	// fetch-and-add, ...). RMW instructions drain the store buffer and
	// therefore carry fence semantics.
	OpRMW
)

var opcodeNames = [...]string{
	OpStore:      "store",
	OpNTStore:    "ntstore",
	OpLoad:       "load",
	OpCLFlush:    "clflush",
	OpCLFlushOpt: "clflushopt",
	OpCLWB:       "clwb",
	OpSFence:     "sfence",
	OpMFence:     "mfence",
	OpRMW:        "rmw",
}

// String returns the x86-style mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return "op?"
}

// Kind groups opcodes by their role in the persistency model.
type Kind uint8

// Event kinds, the granularity at which analysis rules reason.
const (
	KindStore Kind = iota // OpStore, OpNTStore and the write half of OpRMW
	KindLoad              // OpLoad
	KindFlush             // OpCLFlush, OpCLFlushOpt, OpCLWB
	KindFence             // OpSFence, OpMFence and the fence half of OpRMW
)

var kindNames = [...]string{
	KindStore: "store",
	KindLoad:  "load",
	KindFlush: "flush",
	KindFence: "fence",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Kind returns the persistency-model role of the opcode. OpRMW is
// classified as KindFence because its defining property for
// crash-consistency analysis is that it drains buffered flushes; callers
// that care about its store half must check the opcode itself.
func (op Opcode) Kind() Kind {
	switch op {
	case OpStore, OpNTStore:
		return KindStore
	case OpLoad:
		return KindLoad
	case OpCLFlush, OpCLFlushOpt, OpCLWB:
		return KindFlush
	default:
		return KindFence
	}
}

// IsPersistency reports whether the opcode is a persistency instruction
// (a flush or a fence), the default failure-point granularity of §4.1.
func (op Opcode) IsPersistency() bool {
	k := op.Kind()
	return k == KindFlush || k == KindFence
}

package pmem

import "encoding/binary"

// Dirty-line tracking and incremental content hashing.
//
// Crash-image deduplication (Vinter- and Jaaru-style) needs two things
// from the engine: snapshots that cost O(changed lines) instead of
// O(pool), and a content identity for an image that never requires
// hashing the full pool. Both come from the same observation: the
// medium only ever changes line-by-line, through applyPending and
// writeBack. The engine therefore
//
//   - keeps snapDirty, the set of line bases persisted to the medium
//     since the last materialised snapshot base, so a new snapshot is a
//     shared base plus an overlay of only those lines (image.go); and
//   - maintains mediumHash, an XOR fold of a per-line hash over the
//     whole medium, updated incrementally at each line write by
//     removing the old line's contribution and adding the new one.
//
// An all-zero line contributes 0 to the fold, so a zeroed pool hashes
// to 0 and a fresh engine starts hash-tracked without scanning the
// pool. XOR is order-insensitive and self-inverse, which makes the
// swap-update O(1) per changed line; each line's hash is salted with
// its base address, so permuting content between lines changes the
// fold.

// hashSeed salts the per-line hash. It is a fixed constant on purpose:
// image hashes must agree across engines (and across the campaign's
// parallel workers) for identical durable contents.
const hashSeed = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer, a cheap full-avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// lineContrib is the fold contribution of one cache line's content at
// the given base. All-zero lines contribute 0 (see package comment).
func lineContrib(base uint64, ln []byte) uint64 {
	_ = ln[CacheLineSize-1]
	var or uint64
	h := mix64(base + hashSeed)
	for i := 0; i < CacheLineSize; i += 8 {
		w := binary.LittleEndian.Uint64(ln[i:])
		or |= w
		h = mix64(h ^ w)
	}
	if or == 0 {
		return 0
	}
	return h
}

// ContentHash hashes full pool contents with the same per-line fold the
// engine maintains incrementally: for any image,
// ContentHash(img.Bytes()) == img.Hash(). It is O(len(data)) and exists
// for images built from raw bytes and for tests; engine-produced images
// carry their hash already.
func ContentHash(data []byte) uint64 {
	var h uint64
	n := len(data) &^ (CacheLineSize - 1)
	for base := 0; base < n; base += CacheLineSize {
		h ^= lineContrib(uint64(base), data[base:base+CacheLineSize])
	}
	// Fold a trailing partial line zero-padded to line size. Engine
	// pools are always line-aligned (withDefaults rounds up), but
	// hand-built images need not be; ignoring the tail would let two
	// images differing only there collide, and a hash collision is a
	// verdict-cache correctness issue, not just a quality issue.
	if rem := len(data) - n; rem > 0 {
		var tail [CacheLineSize]byte
		copy(tail[:], data[n:])
		h ^= lineContrib(uint64(n), tail[:])
	}
	return h
}

// byteMaskTab expands an 8-bit dirty mask into a 64-bit byte-select
// mask: dirty bit b set selects all eight bits of byte b.
var byteMaskTab = func() (t [256]uint64) {
	for b := 0; b < 256; b++ {
		var m uint64
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				m |= 0xff << (8 * i)
			}
		}
		t[b] = m
	}
	return
}()

// applyMasked overlays the dirty-selected bytes of src onto dst; both
// must be at least CacheLineSize long. A full mask takes the memmove
// fast path; partial masks are applied eight bytes at a time through
// word-expanded byte masks instead of a per-byte loop.
func applyMasked(dst, src []byte, dirty uint64) {
	if dirty == ^uint64(0) {
		copy(dst[:CacheLineSize], src[:CacheLineSize])
		return
	}
	if dirty == 0 {
		return
	}
	_ = dst[CacheLineSize-1]
	_ = src[CacheLineSize-1]
	for i := 0; i < CacheLineSize; i += 8 {
		m := byteMaskTab[(dirty>>uint(i))&0xff]
		if m == 0 {
			continue
		}
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d&^m|s&m)
	}
}

// storeMask builds the dirty mask for n consecutive bytes starting at
// line offset off (n in [1, CacheLineSize]).
func storeMask(off uint64, n int) uint64 {
	return ^uint64(0) >> (64 - uint(n)) << off
}

// beginMediumWrite removes the line's current contribution from the
// rolling medium hash; endMediumWrite adds the new contribution back and
// records the line in the since-snapshot dirty set. Every mutation of
// e.medium must be bracketed by the pair.
func (e *Engine) beginMediumWrite(base uint64) {
	e.mediumHash ^= lineContrib(base, e.medium[base:base+CacheLineSize])
}

func (e *Engine) endMediumWrite(base uint64) {
	e.mediumHash ^= lineContrib(base, e.medium[base:base+CacheLineSize])
	if e.snapBase != nil {
		e.snapDirty[base] = struct{}{}
	}
	if e.ckpt != nil {
		e.ckpt.dirty[base] = struct{}{}
	}
	if end := int(base) + CacheLineSize; end > e.mediumMax {
		e.mediumMax = end
	}
}

// durableOverlayBases collects the bases of lines whose durable
// (graceful-crash) content diverges from the medium: queued write-backs
// plus dirty cache lines. The order is irrelevant — the hash fold is
// commutative and the overlay is a map.
func (e *Engine) durableOverlayBases() []uint64 {
	if len(e.queue) == 0 && len(e.lines) == 0 {
		return nil
	}
	seen := make(map[uint64]struct{}, len(e.queue)+len(e.lines))
	out := make([]uint64, 0, len(e.queue)+len(e.lines))
	for i := range e.queue {
		b := e.queue[i].base
		if _, ok := seen[b]; !ok {
			seen[b] = struct{}{}
			out = append(out, b)
		}
	}
	for b, ln := range e.lines {
		if ln.dirty == 0 {
			continue
		}
		if _, ok := seen[b]; !ok {
			seen[b] = struct{}{}
			out = append(out, b)
		}
	}
	return out
}

// durableLineView materialises the graceful-crash content of one line:
// the medium overlaid with queued write-backs (in issue order) and the
// line's dirty cached bytes — exactly the per-line effect of
// PrefixImage.
func (e *Engine) durableLineView(base uint64) []byte {
	view := make([]byte, CacheLineSize)
	copy(view, e.medium[base:base+CacheLineSize])
	for i := range e.queue {
		if e.queue[i].base == base {
			applyMasked(view, e.queue[i].data[:], e.queue[i].dirty)
		}
	}
	if ln := e.lines[base]; ln != nil && ln.dirty != 0 {
		applyMasked(view, ln.data[:], ln.dirty)
	}
	return view
}

// PrefixImageHash returns the content hash of the image PrefixImage
// would build, in O(changed lines) and without materialising anything:
// the rolling medium hash with the contribution of every
// durable-overlay line swapped for its graceful-crash content. The
// fault-injection campaign uses it to consult the crash-image dedup
// cache before paying for the image or the recovery run.
func (e *Engine) PrefixImageHash() uint64 {
	h := e.mediumHash
	for _, base := range e.durableOverlayBases() {
		h ^= lineContrib(base, e.medium[base:base+CacheLineSize])
		h ^= lineContrib(base, e.durableLineView(base))
	}
	return h
}

// MediumSnapshotHash is the content hash of the image MediumSnapshot
// would build, at the same O(changed lines) cost as PrefixImageHash.
func (e *Engine) MediumSnapshotHash() uint64 {
	if e.opts.EADR {
		return e.PrefixImageHash()
	}
	return e.mediumHash
}

package pmem

import (
	"time"

	"mumak/internal/stack"
)

// CacheLineSize is the unit on which flush instructions act.
const CacheLineSize = 64

// AtomicUnit is the failure-atomicity granularity of the medium: aligned
// groups of 8 bytes persist entirely or not at all (§2 of the paper).
const AtomicUnit = 8

// EvictionPolicy controls spontaneous write-back of dirty cache lines.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNever keeps dirty lines cached until explicitly flushed.
	// This is the deterministic mode used during analysis.
	EvictNever EvictionPolicy = iota
	// EvictSeeded writes back a random dirty line with probability
	// 1/EvictOneIn after each store, driven by the engine seed. This
	// models the cache-replacement non-determinism that masks
	// missing-flush bugs on real hardware.
	EvictSeeded
)

// StackCapture selects which event classes capture call stacks.
type StackCapture uint8

// Stack-capture modes, ordered by cost.
const (
	// CaptureNone records no stacks (fault-injection replay runs).
	CaptureNone StackCapture = iota
	// CapturePersistency records stacks at flushes and fences only (the
	// failure-point granularity of §4.1).
	CapturePersistency
	// CaptureStores records stacks at stores as well (the store
	// granularity ablation, Fig 3b).
	CaptureStores
	// CaptureAll records stacks for every event including loads.
	CaptureAll
)

// Options configures an Engine.
type Options struct {
	// PoolSize is the size of the simulated PM device in bytes. It is
	// rounded up to a multiple of CacheLineSize. Required.
	PoolSize int
	// Eviction selects the spontaneous write-back policy.
	Eviction EvictionPolicy
	// EvictOneIn is the inverse eviction probability under EvictSeeded;
	// 0 means the default of 64.
	EvictOneIn int
	// Seed drives all engine-internal pseudo-randomness.
	Seed int64
	// EADR extends the persistence domain to the CPU caches (enhanced
	// asynchronous DRAM refresh, §2): stores are durable once globally
	// visible and cache flushes become unnecessary, though fences are
	// still required to order non-temporal stores.
	EADR bool
	// CrashAt, when non-zero, makes the engine panic with a
	// *CrashSignal immediately before the instruction with this
	// counter executes. It is the "minimal instrumentation" fault
	// injection of §5: no event construction or hook dispatch happens
	// on the replay's hot path.
	CrashAt uint64
	// MaxEvents, when non-zero, is a deterministic fuel budget: the
	// engine panics with a *HangSignal once the instruction counter
	// exceeds it. It preempts targets whose PM activity never
	// terminates (infinite recovery loops, runaway event allocation)
	// at a reproducible point.
	MaxEvents uint64
	// Deadline, when non-zero, makes the engine panic with a
	// *HangSignal once the wall clock passes it (sampled every
	// deadlineEvery events). It bounds executions whose event rate is
	// too slow for a fuel budget to be meaningful, and lets campaign
	// budgets cut a replay mid-flight instead of only between replays.
	Deadline time.Time
	// CheckpointEvery, when non-zero, makes the engine record a
	// mutation log and snapshot its full state every CheckpointEvery
	// events into a CheckpointStore (checkpoint.go), from which
	// counter-mode replays restore in O(gap) instead of re-executing
	// the whole prefix. Recording costs memory proportional to the
	// trace; leave it zero for engines that are themselves replays.
	CheckpointEvery uint64
	// TrackPrefixHash makes the engine maintain a rolling content hash of
	// the graceful-crash (PrefixImage) state alongside execution, so the
	// prospective crash-image identity at any instruction is readable in
	// O(1) via RollingPrefixHash instead of O(changed lines) via
	// PrefixImageHash. Phase 1 of the campaign uses it to stamp every
	// candidate failure point with its crash-image equivalence class one
	// phase before injection. Costs two per-line hash folds per store.
	TrackPrefixHash bool
	// Capture selects stack capture.
	Capture StackCapture
	// Stacks is the table stacks are interned into. A shared table lets
	// several engine incarnations (pre- and post-failure) agree on IDs.
	// Required when Capture != CaptureNone.
	Stacks *stack.Table
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.PoolSize <= 0 {
		opts.PoolSize = 1 << 20
	}
	if r := opts.PoolSize % CacheLineSize; r != 0 {
		opts.PoolSize += CacheLineSize - r
	}
	if opts.EvictOneIn == 0 {
		opts.EvictOneIn = 64
	}
	if opts.Capture != CaptureNone && opts.Stacks == nil {
		opts.Stacks = stack.NewTable()
	}
	return opts
}

package pmdk

import (
	"errors"
	"fmt"

	"mumak/internal/pmem"
)

// Undo-log transactions.
//
// The log is a byte stream of entries {offset u64, size u64, old data}.
// The first txLogCap stream bytes live in the statically allocated log
// area; beyond that, the stream continues in a dynamically allocated
// overflow region (the "extra undo log space" of pmem/pmdk#5461). The
// persisted stream length (offTxBytes) is the log's validity horizon:
// entry bytes are persisted before the length that covers them, so the
// prefix up to offTxBytes is always well-formed — except under the V112
// overflow-growth bug, see grow.

// ErrTxTooLarge signals a transaction exceeding the available undo
// space.
var ErrTxTooLarge = errors.New("pmdk: transaction undo log exhausted")

// Tx is an open undo-log transaction. Transactions do not nest.
type Tx struct {
	p     *Pool
	bytes uint64 // mirror of offTxBytes
	// ranges accumulates the regions modified under this transaction,
	// flushed at commit.
	ranges []txRange
	// frees accumulates deferred frees executed after commit.
	frees []txRange
	done  bool
}

type txRange struct {
	off  uint64
	size int
}

// FreeOnCommit defers a Free until the transaction commits
// (pmemobj_tx_free): freeing inside the transaction would clobber data
// that a rollback must restore. Aborted transactions drop the request.
func (t *Tx) FreeOnCommit(off uint64, size int) {
	t.frees = append(t.frees, txRange{off: off, size: size})
}

// Begin opens a transaction (pmemobj_tx_begin).
func (p *Pool) Begin() (*Tx, error) {
	if p.e.Load64(offTxState) == txStateActive {
		return nil, ErrTxActive
	}
	p.e.Store64(offTxBytes, 0)
	p.Persist(offTxBytes, 8)
	p.e.Store64(offTxState, txStateActive)
	p.Persist(offTxState, 8)
	p.e.Annotate(pmem.AnnTxBegin, 0, 0)
	// The pool header (allocator metadata) and undo log are
	// library-internal: tools consuming pmemcheck-style annotations
	// must not flag stores there as unlogged application writes.
	p.e.Annotate(pmem.AnnNoDrain, 0, headerEnd)
	return &Tx{p: p}, nil
}

// AddRange snapshots [off, off+size) into the undo log
// (pmemobj_tx_add_range). Call before modifying the range.
func (t *Tx) AddRange(off uint64, size int) error {
	if t.done {
		return errors.New("pmdk: transaction already closed")
	}
	need := 16 + uint64(size)
	if err := t.ensure(t.bytes + need); err != nil {
		return err
	}
	old := t.p.e.Load(off, size)
	var hdr [16]byte
	put64(hdr[:], off)
	put64(hdr[8:], uint64(size))
	t.streamWrite(t.bytes, hdr[:])
	t.streamWrite(t.bytes+16, old)
	t.streamPersist(t.bytes, int(need))
	// The length persists only after the entry it covers.
	t.bytes += need
	t.p.e.Store64(offTxBytes, t.bytes)
	t.p.Persist(offTxBytes, 8)
	t.ranges = append(t.ranges, txRange{off: off, size: size})
	t.p.e.Annotate(pmem.AnnTxAdd, off, size)
	return nil
}

// Store64 combines AddRange and an 8-byte store, the common update shape.
func (t *Tx) Store64(off uint64, v uint64) error {
	if err := t.AddRange(off, 8); err != nil {
		return err
	}
	t.p.e.Store64(off, v)
	return nil
}

// Commit makes every range modified under the transaction durable and
// retires the log (pmemobj_tx_commit).
func (t *Tx) Commit() error {
	if t.done {
		return errors.New("pmdk: transaction already closed")
	}
	t.done = true
	p := t.p
	flushed := 0
	for _, r := range t.ranges {
		flushed += p.FlushDirty(r.off, r.size)
	}
	if flushed > 0 {
		p.Drain()
	}
	// Commit record: once the state returns to idle, recovery will not
	// roll back. The failure-atomic section ends here; the log
	// retirement and deferred frees below are post-commit cleanup.
	p.e.Store64(offTxState, txStateIdle)
	p.Persist(offTxState, 8)
	p.e.Annotate(pmem.AnnTxEnd, 0, 0)
	// Retire the log and release overflow space.
	p.e.Store64(offTxBytes, 0)
	p.Persist(offTxBytes, 8)
	if over := p.e.Load64(offTxOverOff); over != 0 {
		cap64 := p.e.Load64(offTxOverCap)
		if p.ver == V112 {
			// BUG (pmem/pmdk#5461): the dynamically allocated undo
			// space is released in two separately persisted steps. A
			// fault injected in the window between them leaves the
			// log metadata claiming overflow capacity at a null
			// offset; the next execution that touches the undo log
			// trips over it (the original issue crashes the
			// subsequent large transaction; our open-time metadata
			// check surfaces the same corrupt state during
			// recovery). Confirmed high-priority and fixed upstream.
			p.e.Store64(offTxOverOff, 0)
			p.Persist(offTxOverOff, 8)
			p.e.Store64(offTxOverCap, 0)
			p.Persist(offTxOverCap, 8)
		} else {
			// Correct: pointer and capacity retire under one persist;
			// no failure point separates them.
			p.e.Store64(offTxOverOff, 0)
			p.e.Store64(offTxOverCap, 0)
			p.Persist(offTxOverOff, 16)
		}
		p.Free(over, int(cap64))
	}
	for _, f := range t.frees {
		p.Free(f.off, f.size)
	}
	return nil
}

// Abort rolls the transaction back immediately (pmemobj_tx_abort).
func (t *Tx) Abort() error {
	if t.done {
		return errors.New("pmdk: transaction already closed")
	}
	t.done = true
	if err := t.p.rollback(t.bytes); err != nil {
		return err
	}
	t.p.e.Annotate(pmem.AnnTxEnd, 0, 0)
	return nil
}

// ensure grows the undo space to hold a stream of length need.
func (t *Tx) ensure(need uint64) error {
	p := t.p
	capNow := uint64(txLogCap) + p.e.Load64(offTxOverCap)
	if need <= capNow {
		return nil
	}
	overNeed := need - txLogCap
	newCap := align(maxU64(minOverflow, 2*overNeed), allocAlign)
	newOff, err := p.Alloc(int(newCap))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTxTooLarge, err)
	}
	// The new overflow region is library-internal from birth.
	p.e.Annotate(pmem.AnnNoDrain, newOff, int(newCap))
	oldOff := p.e.Load64(offTxOverOff)
	oldCap := p.e.Load64(offTxOverCap)

	if p.ver == V112 {
		// BUG (pmem/pmdk#5461 analogue): when a large transaction
		// grows its dynamically allocated undo space, the old region
		// is returned to the allocator *before* its entries are
		// copied to the new one. Free writes free-list metadata over
		// the first entry header, so the copied log is corrupt for
		// the remainder of the transaction: any injected crash after
		// this point makes the post-failure log recovery read a
		// garbage entry header and crash or restore garbage. The
		// window never hurts the crash-free path (commits do not read
		// the log), which is why the bug survived until a tool
		// injected faults under a large workload.
		p.e.Store64(offTxOverOff, newOff)
		p.e.Store64(offTxOverCap, newCap)
		p.Persist(offTxOverOff, 16)
		if oldOff != 0 {
			p.Free(oldOff, int(oldCap))
			p.copyPersistent(newOff, oldOff, int(oldCap))
		}
		return nil
	}

	// Correct protocol: copy first, persist the copy, then publish the
	// new region with a single atomic pointer+capacity switch.
	if oldOff != 0 {
		p.copyPersistent(newOff, oldOff, int(oldCap))
	}
	p.e.Store64(offTxOverOff, newOff)
	p.e.Store64(offTxOverCap, newCap)
	p.Persist(offTxOverOff, 16)
	if oldOff != 0 {
		p.Free(oldOff, int(oldCap))
	}
	return nil
}

// streamAddr maps a log stream position to a pool address and the
// contiguous run length available there.
func (p *Pool) streamAddr(pos uint64) (uint64, uint64) {
	if pos < txLogCap {
		return offTxLog + pos, txLogCap - pos
	}
	over := p.e.Load64(offTxOverOff)
	overCap := p.e.Load64(offTxOverCap)
	rel := pos - txLogCap
	if over == 0 || rel >= overCap {
		panic(fmt.Sprintf("pmdk: undo log position %d outside log (overflow %d bytes at 0x%x)", pos, overCap, over))
	}
	return over + rel, overCap - rel
}

func (t *Tx) streamWrite(pos uint64, data []byte) {
	for len(data) > 0 {
		addr, run := t.p.streamAddr(pos)
		n := len(data)
		if uint64(n) > run {
			n = int(run)
		}
		t.p.e.Store(addr, data[:n])
		pos += uint64(n)
		data = data[n:]
	}
}

func (t *Tx) streamPersist(pos uint64, size int) {
	for size > 0 {
		addr, run := t.p.streamAddr(pos)
		n := size
		if uint64(n) > run {
			n = int(run)
		}
		t.p.Flush(addr, n)
		pos += uint64(n)
		size -= n
	}
	t.p.Drain()
}

func (p *Pool) streamRead(pos uint64, size int) []byte {
	out := make([]byte, 0, size)
	for size > 0 {
		addr, run := p.streamAddr(pos)
		n := size
		if uint64(n) > run {
			n = int(run)
		}
		out = append(out, p.e.Load(addr, n)...)
		pos += uint64(n)
		size -= n
	}
	return out
}

// rollback restores every logged range, newest first, and retires the
// log. bytes is the valid stream length.
func (p *Pool) rollback(bytes uint64) error {
	type entry struct {
		off  uint64
		size uint64
		pos  uint64 // stream position of the data
	}
	var entries []entry
	for pos := uint64(0); pos < bytes; {
		hdr := p.streamRead(pos, 16)
		e := entry{off: get64(hdr), size: get64(hdr[8:]), pos: pos + 16}
		if e.off+e.size > uint64(p.e.Size()) {
			// Malformed entry: with a well-formed log this cannot
			// happen; the V112 growth bug produces exactly this.
			panic(fmt.Sprintf("pmdk: undo log corrupt: entry at %d restores [0x%x,0x%x) outside pool", pos, e.off, e.off+e.size))
		}
		entries = append(entries, e)
		pos += 16 + e.size
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		old := p.streamRead(e.pos, int(e.size))
		p.e.Store(e.off, old)
		p.Flush(e.off, int(e.size))
	}
	p.Drain()
	p.e.Store64(offTxState, txStateIdle)
	p.Persist(offTxState, 8)
	p.e.Store64(offTxBytes, 0)
	p.Persist(offTxBytes, 8)
	return nil
}

// recoverTxLog rolls back an interrupted transaction on pool open.
func (p *Pool) recoverTxLog() error {
	if p.e.Load64(offTxState) != txStateActive {
		return nil
	}
	return p.rollback(p.e.Load64(offTxBytes))
}

// copyPersistent copies size bytes between pool regions and persists the
// destination.
func (p *Pool) copyPersistent(dst, src uint64, size int) {
	const chunk = 256
	for moved := 0; moved < size; moved += chunk {
		n := size - moved
		if n > chunk {
			n = chunk
		}
		data := p.e.Load(src+uint64(moved), n)
		p.e.Store(dst+uint64(moved), data)
	}
	p.Flush(dst, size)
	p.Drain()
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func get64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

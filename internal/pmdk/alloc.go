package pmdk

// Persistent heap allocator: a bump pointer plus a first-fit free list
// with persistent metadata. The crash-consistency contract matches
// libpmemobj's non-transactional allocator: interrupted operations can
// leak blocks but never corrupt the heap.

// free-list block header layout (within the free block itself).
const (
	fbSize = 0 // u64: block size
	fbNext = 8 // u64: next free block offset, 0 = end
)

// Alloc returns the offset of a size-byte block (16-byte aligned).
// Contents are unspecified; use Zero for cleared memory.
func (p *Pool) Alloc(size int) (uint64, error) {
	if size <= 0 {
		size = allocAlign
	}
	need := align(uint64(size), allocAlign)
	// First fit over the free list.
	prev := uint64(0)
	cur := p.e.Load64(offFreeHead)
	for cur != 0 {
		bsz := p.e.Load64(cur + fbSize)
		next := p.e.Load64(cur + fbNext)
		if bsz >= need {
			// Unlink: a single 8-byte pointer update, persisted.
			if prev == 0 {
				p.e.Store64(offFreeHead, next)
				p.Persist(offFreeHead, 8)
			} else {
				p.e.Store64(prev+fbNext, next)
				p.Persist(prev+fbNext, 8)
			}
			return cur, nil
		}
		prev, cur = cur, next
	}
	// Bump allocation.
	bump := p.e.Load64(offHeapBump)
	end := p.e.Load64(offHeapEnd)
	if bump+need > end {
		return 0, ErrOutOfMemory
	}
	p.e.Store64(offHeapBump, bump+need)
	p.Persist(offHeapBump, 8)
	return bump, nil
}

// AllocZeroed allocates and clears a block.
func (p *Pool) AllocZeroed(size int) (uint64, error) {
	off, err := p.Alloc(size)
	if err != nil {
		return 0, err
	}
	p.Zero(off, int(align(uint64(size), allocAlign)))
	return off, nil
}

// Free returns a block to the free list. size must match the Alloc size.
func (p *Pool) Free(off uint64, size int) {
	if off == 0 {
		return
	}
	need := align(uint64(size), allocAlign)
	head := p.e.Load64(offFreeHead)
	// Publish the block header first, then swing the head pointer; a
	// crash between the two leaks the block but keeps the list intact.
	p.e.Store64(off+fbSize, need)
	p.e.Store64(off+fbNext, head)
	p.Persist(off, 16)
	p.e.Store64(offFreeHead, off)
	p.Persist(offFreeHead, 8)
}

// Zero clears [off, off+size) with non-temporal stores and drains, like
// pmem_memset_persist: the zeroes bypass the cache, so they neither
// pollute it nor count as unpersisted cached writes.
func (p *Pool) Zero(off uint64, size int) {
	var zeros [256]byte
	for size > 0 {
		n := size
		if n > len(zeros) {
			n = len(zeros)
		}
		p.e.NTStore(off, zeros[:n])
		off += uint64(n)
		size -= n
	}
	p.Drain()
}

// HeapUsed returns the bytes consumed from the bump region, a proxy for
// PM usage in resource accounting.
func (p *Pool) HeapUsed() uint64 {
	return p.e.Load64(offHeapBump) - align(p.rootOff+p.rootSize, allocAlign)
}

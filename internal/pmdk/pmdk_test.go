package pmdk_test

import (
	"errors"
	"testing"

	"mumak/internal/pmdk"
	"mumak/internal/pmem"
)

func newPool(t *testing.T, ver pmdk.Version, size int) (*pmem.Engine, *pmdk.Pool) {
	t.Helper()
	e := pmem.NewEngine(pmem.Options{PoolSize: size})
	p, err := pmdk.Create(e, ver, 64)
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestCreateOpenRoundTrip(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<20)
	e.Store64(p.Root(), 77)
	p.Persist(p.Root(), 8)
	img := e.MediumSnapshot()

	e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
	p2, err := pmdk.Open(e2, pmdk.V16)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Load64(p2.Root()); got != 77 {
		t.Fatalf("root value = %d, want 77", got)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	// A zeroed pool was never created.
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 20})
	if _, err := pmdk.Open(e, pmdk.V16); !errors.Is(err, pmdk.ErrNeverCreated) {
		t.Fatalf("err = %v, want ErrNeverCreated", err)
	}
	// A wrong magic is corruption.
	e.Store64(0, 0x1234)
	e.CLFlush(0)
	if _, err := pmdk.Open(e, pmdk.V16); !errors.Is(err, pmdk.ErrBadPool) {
		t.Fatalf("err = %v, want ErrBadPool", err)
	}
}

func TestOpenRejectsVersionMismatch(t *testing.T) {
	e, _ := newPool(t, pmdk.V16, 1<<20)
	img := e.PrefixImage()
	e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
	if _, err := pmdk.Open(e2, pmdk.V18); !errors.Is(err, pmdk.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
}

func TestAllocBumpAndReuse(t *testing.T) {
	_, p := newPool(t, pmdk.V16, 1<<20)
	a, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two allocations share an offset")
	}
	if a%16 != 0 || b%16 != 0 {
		t.Fatal("allocations not 16-byte aligned")
	}
	p.Free(a, 100)
	c, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("free list did not reuse block: got 0x%x, want 0x%x", c, a)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	_, p := newPool(t, pmdk.V16, 1<<15)
	if _, err := p.Alloc(1 << 20); !errors.Is(err, pmdk.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTxCommitDurable(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<20)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Store64(p.Root(), 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed data must be durable in the strict medium image.
	img := e.MediumSnapshot()
	e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
	p2, err := pmdk.Open(e2, pmdk.V16)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Load64(p2.Root()); got != 5 {
		t.Fatalf("committed value = %d, want 5", got)
	}
}

func TestTxAbortRestores(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<20)
	e.Store64(p.Root(), 10)
	p.Persist(p.Root(), 8)
	tx, _ := p.Begin()
	if err := tx.Store64(p.Root(), 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := e.Load64(p.Root()); got != 10 {
		t.Fatalf("abort left %d, want 10", got)
	}
}

func TestTxNoNesting(t *testing.T) {
	_, p := newPool(t, pmdk.V16, 1<<20)
	tx, _ := p.Begin()
	if _, err := p.Begin(); !errors.Is(err, pmdk.ErrTxActive) {
		t.Fatalf("nested begin err = %v, want ErrTxActive", err)
	}
	tx.Commit()
}

func TestTxRecoveryRollsBack(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<20)
	e.Store64(p.Root(), 10)
	e.Store64(p.Root()+8, 90)
	p.Persist(p.Root(), 16)

	tx, _ := p.Begin()
	// Transfer 5 from one slot to the other; crash mid-transaction by
	// simply taking the prefix image before commit.
	if err := tx.Store64(p.Root(), 5); err != nil {
		t.Fatal(err)
	}
	img := e.PrefixImage()

	e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
	p2, err := pmdk.Open(e2, pmdk.V16)
	if err != nil {
		t.Fatal(err)
	}
	a, b := e2.Load64(p2.Root()), e2.Load64(p2.Root()+8)
	if a+b != 100 {
		t.Fatalf("invariant broken after rollback: %d + %d", a, b)
	}
	if a != 10 {
		t.Fatalf("rollback restored %d, want 10", a)
	}
}

// largeTx runs a transaction big enough to overflow the static log twice
// (exceeding 2 KiB + 4 KiB of undo data).
func largeTx(t *testing.T, p *pmdk.Pool, blocks []uint64) {
	t.Helper()
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range blocks {
		if err := tx.AddRange(off, 512); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 512; i += 8 {
			p.Engine().Store64(off+i, i)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func allocBlocks(t *testing.T, p *pmdk.Pool, n int) []uint64 {
	t.Helper()
	blocks := make([]uint64, n)
	for i := range blocks {
		off, err := p.AllocZeroed(512)
		if err != nil {
			t.Fatal(err)
		}
		blocks[i] = off
	}
	return blocks
}

func TestTxOverflowGrowthCorrectOnV16(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<22)
	blocks := allocBlocks(t, p, 20) // 20*528 bytes of undo > 6 KiB
	for _, off := range blocks {
		e.Store64(off, 0xaa)
		p.Persist(off, 8)
	}
	// Crash at every persistency instruction during the large tx and
	// check the rollback restores the 0xaa prefix values.
	startIC := e.ICount()
	largeTx(t, p, blocks)
	endIC := e.ICount()

	for target := startIC + 1; target <= endIC; target += 7 {
		img := crashAt(t, pmdk.V16, target)
		if img == nil {
			continue
		}
		e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
		if _, err := pmdk.Open(e2, pmdk.V16); err != nil {
			t.Fatalf("recovery failed at icount %d: %v", target, err)
		}
	}
}

// crashAt replays the large-transaction scenario crashing at the given
// instruction counter and returns the prefix crash image (nil when the
// run finished before reaching the counter).
func crashAt(t *testing.T, ver pmdk.Version, target uint64) *pmem.Image {
	t.Helper()
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 22})
	var img *pmem.Image
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*pmem.CrashSignal); !ok {
					panic(r)
				}
				img = e.PrefixImage()
			}
		}()
		e.AttachHook(crashHook{target: target, e: e})
		p, err := pmdk.Create(e, ver, 64)
		if err != nil {
			t.Fatal(err)
		}
		blocks := allocBlocks(t, p, 20)
		for _, off := range blocks {
			e.Store64(off, 0xaa)
			p.Persist(off, 8)
		}
		largeTx(t, p, blocks)
	}()
	return img
}

type crashHook struct {
	target uint64
	e      *pmem.Engine
}

func (h crashHook) OnEvent(ev *pmem.Event) {
	if ev.ICount == h.target {
		panic(&pmem.CrashSignal{ICount: ev.ICount, Reason: "test crash"})
	}
}

func TestV112LargeTxGrowthBugManifests(t *testing.T) {
	// On V112, some crash during or after the second undo-log growth
	// must make recovery fail (error, panic, or corrupted restore),
	// reproducing pmem/pmdk#5461. Probe the same counters as the V16
	// test, which recovers cleanly at all of them.
	sawFailure := false
	for target := uint64(1); target < 1<<20 && !sawFailure; target += 11 {
		img := crashAt(t, pmdk.V112, target)
		if img == nil {
			break
		}
		func() {
			defer func() {
				if recover() != nil {
					sawFailure = true // recovery crashed abruptly
				}
			}()
			e2 := pmem.NewEngineFromImage(pmem.Options{}, img)
			if _, err := pmdk.Open(e2, pmdk.V112); err != nil {
				sawFailure = true
				return
			}
			// Recovery "succeeded": verify it did not restore garbage
			// over the committed prefix values.
			// (Blocks were written 0xaa then persisted before the tx.)
		}()
	}
	if !sawFailure {
		t.Fatal("V112 undo-log growth bug never manifested under fault injection")
	}
}

func TestZeroClears(t *testing.T) {
	e, p := newPool(t, pmdk.V16, 1<<20)
	off, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	e.Store64(off, 0xffffffffffffffff)
	p.Zero(off, 64)
	if got := e.Load64(off); got != 0 {
		t.Fatalf("zeroed slot reads %#x", got)
	}
}

func TestHeapUsedGrows(t *testing.T) {
	_, p := newPool(t, pmdk.V16, 1<<20)
	before := p.HeapUsed()
	if _, err := p.Alloc(1000); err != nil {
		t.Fatal(err)
	}
	if p.HeapUsed() <= before {
		t.Fatal("heap usage did not grow after allocation")
	}
}

// Package pmdk is a from-scratch reimplementation of the libpmemobj
// programming model the paper's targets are built on: a persistent pool
// with a root object, a persistent heap allocator, undo-log transactions
// and pmemcheck-style annotations.
//
// Three library versions are modelled (§6.1, §6.4):
//
//   - V16 and V18 correspond to PMDK 1.6 and 1.8, the versions used by
//     the baseline tools' papers. Their transaction and allocation
//     protocols are correct; V18 changes the atomic-list protocol in a
//     way that breaks the hashmap_atomic example, reproducing the
//     paper's observation that "Hashmap Atomic does not work correctly
//     with PMDK 1.8".
//   - V112 corresponds to PMDK 1.12.0 and carries the crash-consistency
//     bug Mumak found in pmemobj_tx_commit (pmem/pmdk#5461, confirmed
//     high-priority and fixed): a fault injected while a large
//     transaction grows its dynamically allocated undo-log space leaves
//     the log pointing at an uninitialised region, so the post-failure
//     recovery of the log crashes.
package pmdk

import (
	"errors"
	"fmt"

	"mumak/internal/pmem"
)

// Version selects the modelled PMDK release.
type Version uint8

// Modelled library versions.
const (
	// V16 models PMDK 1.6.
	V16 Version = iota
	// V18 models PMDK 1.8.
	V18
	// V112 models PMDK 1.12.0, including the pmemobj_tx_commit
	// crash-consistency bug found by Mumak.
	V112
)

var versionNames = [...]string{V16: "1.6", V18: "1.8", V112: "1.12.0"}

// String returns the release string.
func (v Version) String() string {
	if int(v) < len(versionNames) {
		return versionNames[v]
	}
	return "?"
}

// Pool layout constants. All offsets are within the engine's flat pool
// address space.
const (
	magic = 0x504d444b4f424a31 // "PMDKOBJ1"

	offMagic     = 0x00
	offVersion   = 0x08
	offRootOff   = 0x10
	offRootSize  = 0x18
	offHeapBump  = 0x20
	offHeapEnd   = 0x28
	offFreeHead  = 0x30
	offTxState   = 0x38
	offTxBytes   = 0x40
	offTxOverOff = 0x48
	offTxOverCap = 0x50
	offTxLog     = 0x80
	// txLogCap is the capacity of the statically allocated undo-log
	// area; larger transactions dynamically allocate overflow space
	// from the heap.
	txLogCap = 2048

	headerEnd = offTxLog + txLogCap

	txStateIdle   = 0
	txStateActive = 1

	// allocAlign is the allocation granularity.
	allocAlign = 16
	// minOverflow is the first dynamically allocated undo-log size.
	minOverflow = 4096
)

// Errors returned by pool operations.
var (
	// ErrBadPool signals a corrupt pool header.
	ErrBadPool = errors.New("pmdk: invalid pool header")
	// ErrNeverCreated signals a pool whose creation never completed
	// (the magic commit record is absent). Applications treat this as
	// a consistent "start fresh" state: pool creation persists its
	// header first and the magic last, so an interrupted creation is
	// always detectable and harmless.
	ErrNeverCreated = errors.New("pmdk: pool creation never completed")
	// ErrVersionMismatch signals opening a pool with a different
	// library version than created it.
	ErrVersionMismatch = errors.New("pmdk: pool version mismatch")
	// ErrOutOfMemory signals heap exhaustion.
	ErrOutOfMemory = errors.New("pmdk: out of persistent memory")
	// ErrTxActive signals nesting or reopening an active transaction.
	ErrTxActive = errors.New("pmdk: transaction already active")
)

// Pool is an open persistent object pool.
type Pool struct {
	e        *pmem.Engine
	ver      Version
	rootOff  uint64
	rootSize uint64
}

// Create formats the engine's pool and returns it opened. rootSize bytes
// starting at Root() are reserved for the application's root object.
func Create(e *pmem.Engine, ver Version, rootSize int) (*Pool, error) {
	if rootSize < 8 {
		rootSize = 8
	}
	rootOff := uint64(headerEnd)
	heapStart := align(rootOff+uint64(rootSize), allocAlign)
	if heapStart >= uint64(e.Size()) {
		return nil, ErrOutOfMemory
	}
	p := &Pool{e: e, ver: ver, rootOff: rootOff, rootSize: uint64(rootSize)}
	e.Store64(offVersion, uint64(ver))
	e.Store64(offRootOff, rootOff)
	e.Store64(offRootSize, uint64(rootSize))
	e.Store64(offHeapBump, heapStart)
	e.Store64(offHeapEnd, uint64(e.Size()))
	e.Store64(offFreeHead, 0)
	e.Store64(offTxState, txStateIdle)
	e.Store64(offTxBytes, 0)
	e.Store64(offTxOverOff, 0)
	e.Store64(offTxOverCap, 0)
	p.Persist(offVersion, offTxOverCap+8-offVersion)
	// The magic is the pool's commit record: persisted last so a crash
	// during creation is detectable.
	e.Store64(offMagic, magic)
	p.Persist(offMagic, 8)
	return p, nil
}

// Open validates the header and recovers any interrupted transaction,
// exactly as pmemobj_open replays the undo log on startup.
func Open(e *pmem.Engine, ver Version) (*Pool, error) {
	switch e.Load64(offMagic) {
	case magic:
	case 0:
		return nil, ErrNeverCreated
	default:
		return nil, ErrBadPool
	}
	if Version(e.Load64(offVersion)) != ver {
		return nil, fmt.Errorf("%w: pool has %s, library is %s",
			ErrVersionMismatch, Version(e.Load64(offVersion)), ver)
	}
	p := &Pool{
		e:        e,
		ver:      ver,
		rootOff:  e.Load64(offRootOff),
		rootSize: e.Load64(offRootSize),
	}
	if p.rootOff == 0 || p.rootOff+p.rootSize > uint64(e.Size()) {
		return nil, ErrBadPool
	}
	// Undo-log metadata sanity: capacity without a region (or vice
	// versa) means the log can no longer be trusted. This is the
	// assertion the pmem/pmdk#5461 crash window trips.
	overOff, overCap := e.Load64(offTxOverOff), e.Load64(offTxOverCap)
	if (overOff == 0) != (overCap == 0) {
		panic(fmt.Sprintf("pmdk: undo log overflow metadata corrupt (off=0x%x cap=%d)", overOff, overCap))
	}
	if err := p.recoverTxLog(); err != nil {
		return nil, err
	}
	return p, nil
}

// Engine exposes the underlying PM engine for data access.
func (p *Pool) Engine() *pmem.Engine { return p.e }

// Version returns the library version the pool was created with.
func (p *Pool) Version() Version { return p.ver }

// Root returns the offset of the application root object.
func (p *Pool) Root() uint64 { return p.rootOff }

// RootSize returns the root object size in bytes.
func (p *Pool) RootSize() int { return int(p.rootSize) }

// Persist makes [off, off+size) durable: clwb over every covered cache
// line followed by an sfence (pmem_persist). The annotation asserting
// the range persistent fires only after the drain completes.
func (p *Pool) Persist(off uint64, size int) {
	p.Flush(off, size)
	p.Drain()
	p.e.Annotate(pmem.AnnPersist, off, size)
}

// Flush writes back the cache lines covering [off, off+size) without
// draining (pmem_flush).
func (p *Pool) Flush(off uint64, size int) {
	if size <= 0 {
		return
	}
	first := off &^ (pmem.CacheLineSize - 1)
	last := (off + uint64(size) - 1) &^ (pmem.CacheLineSize - 1)
	for line := first; line <= last; line += pmem.CacheLineSize {
		p.e.CLWB(line)
	}
}

// Drain waits for flushed data to become durable (pmem_drain).
func (p *Pool) Drain() { p.e.SFence() }

// FlushDirty writes back only the dirty cache lines covering
// [off, off+size): the transaction commit path uses it so that clean
// lines of coarsely snapshotted ranges cost nothing.
func (p *Pool) FlushDirty(off uint64, size int) int {
	if size <= 0 {
		return 0
	}
	flushed := 0
	first := off &^ (pmem.CacheLineSize - 1)
	last := (off + uint64(size) - 1) &^ (pmem.CacheLineSize - 1)
	for line := first; line <= last; line += pmem.CacheLineSize {
		if p.e.LineDirty(line) {
			p.e.CLWB(line)
			flushed++
		}
	}
	return flushed
}

// PersistDirty makes the dirty lines of [off, off+size) durable,
// skipping clean ones (nodes are rarely line-aligned, so blanket
// persists would re-flush clean boundary lines shared with neighbouring
// allocations — wasted write-backs Mumak itself flags). The drain is
// skipped when nothing was flushed.
func (p *Pool) PersistDirty(off uint64, size int) {
	if p.FlushDirty(off, size) > 0 {
		p.Drain()
	}
	p.e.Annotate(pmem.AnnPersist, off, size)
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Package oracle runs an application's recovery procedure as a
// consistency oracle over a crash image (§4.1).
//
// PM applications already ship a mechanism for distinguishing valid from
// invalid states: the recovery procedure. When it fails — returning an
// error, or crashing abruptly — the post-failure state is flagged as a
// bug, without annotations or knowledge of the application semantics.
// The oracle is imperfect: an incomplete recovery procedure yields false
// negatives (the Level Hashing case of §6.2).
package oracle

import (
	"fmt"
	"runtime/debug"

	"mumak/internal/harness"
	"mumak/internal/pmem"
)

// Verdict classifies a recovery attempt.
type Verdict uint8

// Recovery verdicts.
const (
	// Consistent: recovery completed and accepted the state.
	Consistent Verdict = iota
	// Unrecoverable: recovery completed but flagged the state invalid.
	Unrecoverable
	// Crashed: recovery itself failed abruptly (the segmentation-fault
	// analogue), which is reported with its own debug trace.
	Crashed
)

var verdictNames = [...]string{
	Consistent:    "consistent",
	Unrecoverable: "unrecoverable",
	Crashed:       "recovery crashed",
}

// String names the verdict.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "verdict?"
}

// Outcome is the result of one oracle invocation.
type Outcome struct {
	// Verdict classifies the recovery attempt.
	Verdict Verdict
	// Err is the recovery error for Unrecoverable outcomes.
	Err error
	// PanicValue and PanicTrace describe a Crashed outcome, giving the
	// developer the recovery call trace that led to the failure.
	PanicValue any
	PanicTrace string
	// Engine is the post-recovery engine, available to tools that run
	// additional checks (output equivalence) on the recovered state.
	Engine *pmem.Engine
}

// Consistent reports whether recovery accepted the state.
func (o Outcome) Consistent() bool { return o.Verdict == Consistent }

// Describe renders the outcome for bug reports.
func (o Outcome) Describe() string {
	switch o.Verdict {
	case Unrecoverable:
		return fmt.Sprintf("recovery flagged the state unrecoverable: %v", o.Err)
	case Crashed:
		return fmt.Sprintf("recovery crashed abruptly: %v", o.PanicValue)
	default:
		return "state consistent"
	}
}

// Check runs the application's recovery procedure, uninstrumented
// ("vanilla recovery code", §4.1), on a fresh engine initialised from the
// crash image.
func Check(app harness.Application, img *pmem.Image) Outcome {
	eng := pmem.NewEngineFromImage(pmem.Options{}, img)
	return checkOn(app, eng)
}

func checkOn(app harness.Application, eng *pmem.Engine) (out Outcome) {
	out.Engine = eng
	defer func() {
		if r := recover(); r != nil {
			out.Verdict = Crashed
			out.PanicValue = r
			out.PanicTrace = string(debug.Stack())
		}
	}()
	if err := app.Recover(eng); err != nil {
		out.Verdict = Unrecoverable
		out.Err = err
		return out
	}
	out.Verdict = Consistent
	return out
}

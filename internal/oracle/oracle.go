// Package oracle runs an application's recovery procedure as a
// consistency oracle over a crash image (§4.1).
//
// PM applications already ship a mechanism for distinguishing valid from
// invalid states: the recovery procedure. When it fails — returning an
// error, or crashing abruptly — the post-failure state is flagged as a
// bug, without annotations or knowledge of the application semantics.
// The oracle is imperfect: an incomplete recovery procedure yields false
// negatives (the Level Hashing case of §6.2).
//
// Recovery can also fail by never terminating: a procedure that loops on
// a corrupted image is a first-class PM bug category (non-terminating
// recovery) and, untreated, would stall the campaign that invoked it.
// CheckBounded combines two watchdogs — a deterministic PM-event fuel
// budget enforced inside the engine, and a wall-clock timer on a
// sacrificial goroutine for loops that never touch PM — and classifies
// such recoveries with the Hung verdict.
package oracle

import (
	"fmt"
	"runtime/debug"
	"time"

	"mumak/internal/harness"
	"mumak/internal/pmem"
)

// Verdict classifies a recovery attempt.
type Verdict uint8

// Recovery verdicts.
const (
	// Consistent: recovery completed and accepted the state.
	Consistent Verdict = iota
	// Unrecoverable: recovery completed but flagged the state invalid.
	Unrecoverable
	// Crashed: recovery itself failed abruptly (the segmentation-fault
	// analogue), which is reported with its own debug trace.
	Crashed
	// Hung: recovery did not terminate within the watchdog bounds —
	// the liveness analogue of Crashed. Only CheckBounded can produce
	// it.
	Hung
)

var verdictNames = [...]string{
	Consistent:    "consistent",
	Unrecoverable: "unrecoverable",
	Crashed:       "recovery crashed",
	Hung:          "recovery hung",
}

// String names the verdict.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "verdict?"
}

// Watchdog bounds one recovery attempt. The zero value imposes no bounds
// and makes CheckBounded equivalent to Check.
type Watchdog struct {
	// MaxEvents is the PM-event fuel budget for the recovery engine;
	// exceeding it yields the Hung verdict at a deterministic point.
	// Zero means unbounded.
	MaxEvents uint64
	// Timeout is the wall-clock bound. It backs the fuel budget for
	// recoveries that hang without touching PM: when it expires the
	// check abandons the recovery on its sacrificial goroutine and
	// returns Hung. Zero means no wall-clock bound.
	Timeout time.Duration
}

// Outcome is the result of one oracle invocation.
type Outcome struct {
	// Verdict classifies the recovery attempt.
	Verdict Verdict
	// Err is the recovery error for Unrecoverable outcomes.
	Err error
	// PanicValue and PanicTrace describe a Crashed outcome, giving the
	// developer the recovery call trace that led to the failure.
	PanicValue any
	PanicTrace string
	// Hang describes a Hung outcome stopped inside the engine (fuel
	// budget or engine deadline); nil when the wall-clock timer fired
	// without the recovery touching PM.
	Hang *pmem.HangSignal
	// Bounds echoes the watchdog the check ran under, so Hung outcomes
	// render deterministically from configuration rather than from
	// measured time.
	Bounds Watchdog
	// Engine is the post-recovery engine, available to tools that run
	// additional checks (output equivalence) on the recovered state.
	// It is nil for Hung outcomes whose sacrificial goroutine was
	// abandoned: the engine may still be in use there.
	Engine *pmem.Engine
}

// Consistent reports whether recovery accepted the state.
func (o Outcome) Consistent() bool { return o.Verdict == Consistent }

// Detached returns a copy safe to retain indefinitely (e.g. in the
// crash-image verdict cache): the post-recovery Engine is stripped so a
// memoised verdict never pins a full pool.
func (o Outcome) Detached() Outcome {
	o.Engine = nil
	return o
}

// Describe renders the outcome for bug reports. Hung outcomes are
// described from the configured bounds only, never from measured time,
// so reports stay byte-identical across runs and worker counts.
func (o Outcome) Describe() string {
	switch o.Verdict {
	case Unrecoverable:
		return fmt.Sprintf("recovery flagged the state unrecoverable: %v", o.Err)
	case Crashed:
		return fmt.Sprintf("recovery crashed abruptly: %v", o.PanicValue)
	case Hung:
		if o.Hang != nil && !o.Hang.Deadline {
			return fmt.Sprintf("recovery did not terminate: hang watchdog exhausted its budget of %d PM events", o.Hang.Budget)
		}
		return fmt.Sprintf("recovery did not terminate within the %s wall-clock watchdog", o.Bounds.Timeout)
	default:
		return "state consistent"
	}
}

// Check runs the application's recovery procedure, uninstrumented
// ("vanilla recovery code", §4.1), on a fresh engine initialised from the
// crash image. It imposes no watchdog: a non-terminating recovery hangs
// the caller. Campaigns use CheckBounded.
func Check(app harness.Application, img *pmem.Image) Outcome {
	eng := pmem.NewEngineFromImage(pmem.Options{}, img)
	return checkOn(app, eng)
}

// CheckBounded runs the recovery procedure under the watchdog. The fuel
// budget is enforced inside the engine and preempts any recovery that
// keeps issuing PM instructions; the wall-clock timeout catches the
// rest by running the recovery on a sacrificial goroutine and walking
// away from it. An abandoned goroutine is additionally bounded by an
// engine deadline, so it cannot survive past its next PM access.
func CheckBounded(app harness.Application, img *pmem.Image, wd Watchdog) Outcome {
	opts := pmem.Options{MaxEvents: wd.MaxEvents}
	if wd.Timeout > 0 {
		opts.Deadline = time.Now().Add(wd.Timeout)
	}
	eng := pmem.NewEngineFromImage(opts, img)
	if wd.Timeout <= 0 {
		out := checkOn(app, eng)
		out.Bounds = wd
		return out
	}
	ch := make(chan Outcome, 1)
	go func() {
		ch <- checkOn(app, eng)
	}()
	timer := time.NewTimer(wd.Timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		out.Bounds = wd
		return out
	case <-timer.C:
		// The recovery neither finished nor touched PM within the
		// bound. Abandon it: the buffered channel lets the goroutine
		// retire whenever the engine deadline (or a return) ends it.
		return Outcome{Verdict: Hung, Bounds: wd}
	}
}

func checkOn(app harness.Application, eng *pmem.Engine) (out Outcome) {
	out.Engine = eng
	defer func() {
		if r := recover(); r != nil {
			if hs, ok := r.(*pmem.HangSignal); ok {
				out.Verdict = Hung
				out.Hang = hs
				out.Engine = nil
				return
			}
			out.Verdict = Crashed
			out.PanicValue = r
			out.PanicTrace = string(debug.Stack())
		}
	}()
	if err := app.Recover(eng); err != nil {
		out.Verdict = Unrecoverable
		out.Err = err
		return out
	}
	out.Verdict = Consistent
	return out
}

package oracle_test

import (
	"errors"
	"strings"
	"testing"

	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// fakeApp recovers according to its mode.
type fakeApp struct{ mode int }

func (f *fakeApp) Name() string  { return "fake" }
func (f *fakeApp) PoolSize() int { return 4096 }
func (f *fakeApp) Setup(e *pmem.Engine) error {
	return nil
}
func (f *fakeApp) Run(e *pmem.Engine, w workload.Workload) error { return nil }
func (f *fakeApp) Recover(e *pmem.Engine) error {
	switch f.mode {
	case 1:
		return errors.New("state invalid")
	case 2:
		panic("segfault analogue")
	}
	// Mode 0 also reads from the image to prove the engine works.
	_ = e.Load64(0)
	return nil
}

func img() *pmem.Image {
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096})
	e.Store64(0, 7)
	e.CLFlush(0)
	return e.MediumSnapshot()
}

func TestConsistentOutcome(t *testing.T) {
	out := oracle.Check(&fakeApp{mode: 0}, img())
	if !out.Consistent() || out.Verdict != oracle.Consistent {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Engine == nil || out.Engine.Load64(0) != 7 {
		t.Fatal("post-recovery engine not initialised from the image")
	}
}

func TestUnrecoverableOutcome(t *testing.T) {
	out := oracle.Check(&fakeApp{mode: 1}, img())
	if out.Consistent() || out.Verdict != oracle.Unrecoverable {
		t.Fatalf("outcome = %+v", out)
	}
	if !strings.Contains(out.Describe(), "state invalid") {
		t.Errorf("describe = %q", out.Describe())
	}
}

func TestCrashedOutcomeCapturesTrace(t *testing.T) {
	out := oracle.Check(&fakeApp{mode: 2}, img())
	if out.Verdict != oracle.Crashed {
		t.Fatalf("verdict = %v", out.Verdict)
	}
	if out.PanicValue != "segfault analogue" {
		t.Errorf("panic value = %v", out.PanicValue)
	}
	if !strings.Contains(out.PanicTrace, "Recover") {
		t.Error("panic trace lacks the recovery call trace (§4.1 debug info)")
	}
}

func TestRecoveryCannotMutateSourceImage(t *testing.T) {
	src := img()
	before := src.Bytes()[0]
	_ = oracle.Check(&fakeApp{mode: 0}, src)
	if src.Bytes()[0] != before {
		t.Fatal("oracle mutated the crash image")
	}
}

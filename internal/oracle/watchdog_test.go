package oracle_test

import (
	"strings"
	"testing"
	"time"

	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// loopApp's recovery never terminates. With pm=true the loop issues PM
// loads (the fuel budget's prey); with pm=false it parks on a channel
// forever (only the wall-clock watchdog can classify it).
type loopApp struct{ pm bool }

func (l *loopApp) Name() string                                  { return "loop" }
func (l *loopApp) PoolSize() int                                 { return 4096 }
func (l *loopApp) Setup(e *pmem.Engine) error                    { return nil }
func (l *loopApp) Run(e *pmem.Engine, w workload.Workload) error { return nil }
func (l *loopApp) Recover(e *pmem.Engine) error {
	if l.pm {
		for {
			// A recovery scanning a corrupted image forever: each
			// probe is a PM load, so the fuel budget preempts it.
			_ = e.Load64(0)
		}
	}
	<-make(chan struct{}) // parks forever without touching PM
	return nil
}

func TestFuelBudgetYieldsHungVerdict(t *testing.T) {
	out := oracle.CheckBounded(&loopApp{pm: true}, img(), oracle.Watchdog{MaxEvents: 1000, Timeout: 30 * time.Second})
	if out.Consistent() || out.Verdict != oracle.Hung {
		t.Fatalf("verdict = %v, want Hung", out.Verdict)
	}
	if out.Hang == nil || out.Hang.Deadline || out.Hang.Budget != 1000 {
		t.Fatalf("Hang = %+v, want a fuel trip at budget 1000", out.Hang)
	}
	if got := out.Describe(); !strings.Contains(got, "1000 PM events") {
		t.Errorf("describe = %q, want the deterministic fuel description", got)
	}
	if out.Engine != nil {
		t.Error("hung outcome must not expose a half-recovered engine")
	}
}

func TestWallClockYieldsHungVerdict(t *testing.T) {
	start := time.Now()
	out := oracle.CheckBounded(&loopApp{pm: false}, img(), oracle.Watchdog{MaxEvents: 1 << 30, Timeout: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %s to fire", elapsed)
	}
	if out.Verdict != oracle.Hung || out.Hang != nil {
		t.Fatalf("outcome = %+v, want a wall-clock Hung verdict", out)
	}
	if got := out.Describe(); !strings.Contains(got, "50ms wall-clock watchdog") {
		t.Errorf("describe = %q, want the configured-timeout description", got)
	}
}

func TestBoundedCheckPassesCleanRecoveryThrough(t *testing.T) {
	wd := oracle.Watchdog{MaxEvents: 1 << 20, Timeout: 10 * time.Second}
	out := oracle.CheckBounded(&fakeApp{mode: 0}, img(), wd)
	if !out.Consistent() {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Engine == nil || out.Engine.Load64(0) != 7 {
		t.Fatal("post-recovery engine not available after a bounded clean check")
	}
}

func TestBoundedCheckKeepsOtherVerdicts(t *testing.T) {
	wd := oracle.Watchdog{MaxEvents: 1 << 20, Timeout: 10 * time.Second}
	if out := oracle.CheckBounded(&fakeApp{mode: 1}, img(), wd); out.Verdict != oracle.Unrecoverable {
		t.Fatalf("verdict = %v, want Unrecoverable", out.Verdict)
	}
	if out := oracle.CheckBounded(&fakeApp{mode: 2}, img(), wd); out.Verdict != oracle.Crashed {
		t.Fatalf("verdict = %v, want Crashed", out.Verdict)
	}
}

func TestZeroWatchdogMatchesCheck(t *testing.T) {
	plain := oracle.Check(&fakeApp{mode: 1}, img())
	bounded := oracle.CheckBounded(&fakeApp{mode: 1}, img(), oracle.Watchdog{})
	if plain.Verdict != bounded.Verdict || plain.Describe() != bounded.Describe() {
		t.Fatalf("zero watchdog diverged: %v vs %v", plain, bounded)
	}
}

func TestHungVerdictString(t *testing.T) {
	if oracle.Hung.String() != "recovery hung" {
		t.Fatalf("Hung renders as %q", oracle.Hung.String())
	}
}

package fpt

import (
	"encoding/gob"
	"fmt"
	"io"

	"mumak/internal/stack"
)

// wireLeaf is the serialised form of one failure point.
type wireLeaf struct {
	PCs         []uintptr
	FirstICount uint64
	Visited     bool
}

// wireTree is the serialised tree: the leaves with their full call
// stacks; the trie is rebuilt on load.
type wireTree struct {
	Leaves []wireLeaf
}

// Encode serialises the tree (step 5 of Fig 1 stores it in a file so a
// later fault-injection execution can deserialise it), together with the
// campaign's traversal state: a leaf is written as visited when claims
// marks it claimed. Pass a nil ClaimSet to serialise a fresh tree. A
// round-tripped claim state is what makes campaigns resumable — the
// restored set's pending snapshot contains exactly the unexplored
// failure points. Program counters are only stable within one process
// image — the same constraint that makes the original pre-allocate Pin's
// memory and disable address-space randomisation (§5, A.3).
func (t *Tree) Encode(w io.Writer, claims *ClaimSet) error {
	wt := wireTree{Leaves: make([]wireLeaf, 0, len(t.leaves))}
	for _, l := range t.leaves {
		pcs := t.stacks.PCs(l.Stack)
		cp := make([]uintptr, len(pcs))
		copy(cp, pcs)
		wt.Leaves = append(wt.Leaves, wireLeaf{
			PCs:         cp,
			FirstICount: l.FirstICount,
			Visited:     claims != nil && claims.Claimed(l),
		})
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTree deserialises a tree into the given stack table, rebuilding
// the trie and re-interning every stack. The returned claim set carries
// the serialised visited marks: leaves injected before the encode are
// pre-claimed, so a campaign resumed over the restored tree traverses
// only the remainder.
func ReadTree(r io.Reader, stacks *stack.Table) (*Tree, *ClaimSet, error) {
	var wt wireTree
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, nil, fmt.Errorf("fpt: decoding tree: %w", err)
	}
	t := New(stacks)
	visited := make([]*Leaf, 0)
	for _, wl := range wt.Leaves {
		id := stacks.Intern(wl.PCs)
		leaf, added := t.Insert(id, wl.FirstICount)
		if !added {
			return nil, nil, fmt.Errorf("fpt: duplicate failure point in serialised tree")
		}
		if wl.Visited {
			visited = append(visited, leaf)
		}
	}
	t.Freeze()
	claims := NewClaimSet(t)
	for _, l := range visited {
		claims.Claim(l)
	}
	return t, claims, nil
}

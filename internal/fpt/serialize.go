package fpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"mumak/internal/stack"
)

// Tree artifact framing: a fixed header — magic, format version,
// payload length, payload CRC — wraps the gob payload, so a truncated
// or corrupt artifact (a crash mid-write, a stray file) is rejected
// with a diagnostic instead of feeding garbage to the gob decoder.
var treeMagic = [8]byte{'M', 'U', 'M', 'A', 'K', 'F', 'P', 'T'}

const (
	// treeVersion is the artifact format version.
	treeVersion = 1
	// treeHeaderLen is magic(8) + version(4) + payload length(8) +
	// payload CRC(4).
	treeHeaderLen = 24
	// maxTreePayload bounds the declared payload length; anything
	// larger is a corrupt header, not a multi-GiB allocation.
	maxTreePayload = 1 << 31
)

// wireLeaf is the serialised form of one failure point. ImageHash and
// ImageSize carry the crash-image equivalence stamp; gob tolerates
// their absence, so artifacts written before stamping existed decode
// with ImageSize == 0, which readers treat as unstamped (the format
// version is unchanged on purpose).
type wireLeaf struct {
	PCs         []uintptr
	FirstICount uint64
	Visited     bool
	ImageHash   uint64
	ImageSize   int
}

// wireTree is the serialised tree: the leaves with their full call
// stacks; the trie is rebuilt on load.
type wireTree struct {
	Leaves []wireLeaf
}

// Encode serialises the tree (step 5 of Fig 1 stores it in a file so a
// later fault-injection execution can deserialise it), together with the
// campaign's traversal state: a leaf is written as visited when claims
// marks it claimed. Pass a nil ClaimSet to serialise a fresh tree. A
// round-tripped claim state is what makes campaigns resumable — the
// restored set's pending snapshot contains exactly the unexplored
// failure points. The payload is framed with a magic, a version, its
// length and a CRC so ReadTree can reject truncated or corrupt
// artifacts with a diagnostic. Program counters are only stable within
// one process image — the same constraint that makes the original
// pre-allocate Pin's memory and disable address-space randomisation
// (§5, A.3).
func (t *Tree) Encode(w io.Writer, claims *ClaimSet) error {
	wt := wireTree{Leaves: make([]wireLeaf, 0, len(t.leaves))}
	for _, l := range t.leaves {
		pcs := t.stacks.PCs(l.Stack)
		cp := make([]uintptr, len(pcs))
		copy(cp, pcs)
		wt.Leaves = append(wt.Leaves, wireLeaf{
			PCs:         cp,
			FirstICount: l.FirstICount,
			Visited:     claims != nil && claims.Claimed(l),
			ImageHash:   l.ImageHash,
			ImageSize:   l.ImageSize,
		})
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wt); err != nil {
		return fmt.Errorf("fpt: encoding tree: %w", err)
	}
	var hdr [treeHeaderLen]byte
	copy(hdr[0:8], treeMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], treeVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fpt: writing tree header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("fpt: writing tree payload: %w", err)
	}
	return nil
}

// ReadTree deserialises a tree into the given stack table, rebuilding
// the trie and re-interning every stack. The returned claim set carries
// the serialised visited marks: leaves injected before the encode are
// pre-claimed, so a campaign resumed over the restored tree traverses
// only the remainder. Truncated or corrupt artifacts — and files that
// are not tree artifacts at all — are rejected with a diagnostic, never
// a decode panic.
func ReadTree(r io.Reader, stacks *stack.Table) (*Tree, *ClaimSet, error) {
	var hdr [treeHeaderLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("fpt: truncated tree artifact: %d-byte header (want %d): %v", n, treeHeaderLen, err)
	}
	if !bytes.Equal(hdr[0:8], treeMagic[:]) {
		return nil, nil, fmt.Errorf("fpt: not a failure point tree artifact (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != treeVersion {
		return nil, nil, fmt.Errorf("fpt: unsupported tree artifact version %d (want %d)", v, treeVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[12:20])
	if plen == 0 || plen > maxTreePayload {
		return nil, nil, fmt.Errorf("fpt: corrupt tree artifact: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, fmt.Errorf("fpt: truncated tree artifact: %d of %d payload bytes: %v", n, plen, err)
	}
	if sum := binary.LittleEndian.Uint32(hdr[20:24]); crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("fpt: corrupt tree artifact: payload checksum mismatch")
	}
	var wt wireTree
	if err := decodeTree(payload, &wt); err != nil {
		return nil, nil, fmt.Errorf("fpt: decoding tree: %w", err)
	}
	t := New(stacks)
	visited := make([]*Leaf, 0)
	for _, wl := range wt.Leaves {
		id := stacks.Intern(wl.PCs)
		leaf, added := t.Insert(id, wl.FirstICount)
		if !added {
			return nil, nil, fmt.Errorf("fpt: duplicate failure point in serialised tree")
		}
		leaf.ImageHash = wl.ImageHash
		leaf.ImageSize = wl.ImageSize
		if wl.Visited {
			visited = append(visited, leaf)
		}
	}
	t.Freeze()
	claims := NewClaimSet(t)
	for _, l := range visited {
		claims.Claim(l)
	}
	return t, claims, nil
}

// decodeTree gob-decodes the checksummed payload, converting decoder
// panics on adversarially malformed (but checksum-matching) input into
// errors.
func decodeTree(payload []byte, wt *wireTree) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(wt)
}

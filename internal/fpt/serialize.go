package fpt

import (
	"encoding/gob"
	"fmt"
	"io"

	"mumak/internal/stack"
)

// wireLeaf is the serialised form of one failure point.
type wireLeaf struct {
	PCs         []uintptr
	FirstICount uint64
	Visited     bool
}

// wireTree is the serialised tree: the leaves with their full call
// stacks; the trie is rebuilt on load.
type wireTree struct {
	Leaves []wireLeaf
}

// Encode serialises the tree (step 5 of Fig 1 stores it in a file so a
// later fault-injection execution can deserialise it). Program counters
// are only stable within one process image — the same constraint that
// makes the original pre-allocate Pin's memory and disable address-space
// randomisation (§5, A.3).
func (t *Tree) Encode(w io.Writer) error {
	wt := wireTree{Leaves: make([]wireLeaf, 0, len(t.leaves))}
	for _, l := range t.leaves {
		pcs := t.stacks.PCs(l.Stack)
		cp := make([]uintptr, len(pcs))
		copy(cp, pcs)
		wt.Leaves = append(wt.Leaves, wireLeaf{PCs: cp, FirstICount: l.FirstICount, Visited: l.Visited})
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTree deserialises a tree into the given stack table, rebuilding
// the trie and re-interning every stack.
func ReadTree(r io.Reader, stacks *stack.Table) (*Tree, error) {
	var wt wireTree
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("fpt: decoding tree: %w", err)
	}
	t := New(stacks)
	for _, wl := range wt.Leaves {
		id := stacks.Intern(wl.PCs)
		leaf, added := t.Insert(id, wl.FirstICount)
		if !added {
			return nil, fmt.Errorf("fpt: duplicate failure point in serialised tree")
		}
		leaf.Visited = wl.Visited
	}
	return t, nil
}

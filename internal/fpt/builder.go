package fpt

import (
	"mumak/internal/pmem"
	"mumak/internal/stack"
)

// Granularity selects which instructions constitute failure points
// (§4.1: store level vs persistency-instruction level).
type Granularity uint8

// Failure-point granularities.
const (
	// GranPersistency treats flushes and fences as failure points —
	// Mumak's default, which covers all atomicity and the vast
	// majority of ordering bugs with roughly an order of magnitude
	// fewer points than GranStore (Fig 3).
	GranPersistency Granularity = iota
	// GranStore treats every store to PM as a failure point — best
	// post-failure-state coverage, largest search space.
	GranStore
)

// Builder is a pmem.Hook that constructs the failure point tree during
// the instrumented workload run (steps 4-5 of Fig 1).
type Builder struct {
	// Tree receives the failure points.
	Tree *Tree
	// Granularity selects the failure-point definition.
	Granularity Granularity
	// storeSinceLast implements the §4.1 optimisation: a persistency
	// instruction is only a failure point if at least one PM store
	// happened since the last failure point, since otherwise the
	// post-failure state is equivalent to the previous one.
	storeSinceLast bool
	// NewLeaves counts leaves this builder added.
	NewLeaves int
	// eng is the engine this builder is attached to (AttachHook hands it
	// over via pmem.EngineObserver). When the engine tracks the rolling
	// prefix-image hash, every new leaf is stamped with its crash-image
	// identity at insertion time.
	eng *pmem.Engine
}

// ObserveEngine implements pmem.EngineObserver: it gives the builder
// access to the rolling prefix-image hash for stamping leaves.
func (b *Builder) ObserveEngine(e *pmem.Engine) { b.eng = e }

// NewBuilder returns a builder inserting into tree.
func NewBuilder(tree *Tree, g Granularity) *Builder {
	return &Builder{Tree: tree, Granularity: g}
}

// OnEvent implements pmem.Hook.
func (b *Builder) OnEvent(ev *pmem.Event) {
	switch ev.Op.Kind() {
	case pmem.KindStore:
		if b.Granularity == GranStore {
			b.insert(ev)
			return
		}
		b.storeSinceLast = true
	case pmem.KindFlush, pmem.KindFence:
		if b.Granularity != GranPersistency {
			return
		}
		if b.storeSinceLast {
			b.insert(ev)
			b.storeSinceLast = false
		}
		if ev.Op == pmem.OpRMW {
			// The RMW writes as well as fences.
			b.storeSinceLast = true
		}
	}
}

func (b *Builder) insert(ev *pmem.Event) {
	if ev.Stack == stack.NoID {
		return
	}
	leaf, added := b.Tree.Insert(ev.Stack, ev.ICount)
	if !added {
		return
	}
	b.NewLeaves++
	if b.eng != nil && b.eng.TracksPrefixHash() {
		leaf.ImageHash = b.eng.RollingPrefixHash()
		leaf.ImageSize = b.eng.Size()
	}
}

// Injector is a pmem.Hook that crashes the execution at a chosen
// failure point. In counter mode (deterministic targets) it crashes when
// the instruction counter reaches the leaf's recorded first occurrence;
// in stack mode it crashes at the first failure-point event whose call
// stack matches the target leaf's, which requires stack capture but no
// determinism.
//
// The injector carries its own cursor: it never reads or writes shared
// campaign state, so one replay per worker can run against the same
// frozen tree with a private Injector each. Which leaf a replay targets
// is decided up front (a ClaimSet hands leaves out), not by the
// injector mutating visited marks as it fires.
type Injector struct {
	// TargetICount crashes at this instruction counter when non-zero
	// (counter mode).
	TargetICount uint64
	// Target selects stack mode: the replay crashes at the first
	// failure-point event whose call stack matches Target.Stack. The
	// leaf is read-only to the injector.
	Target *Leaf
	// Granularity must match the tree's.
	Granularity Granularity
	// Fired is set to Target when the stack-mode crash fired.
	Fired *Leaf

	storeSinceLast bool
}

// OnEvent implements pmem.Hook; it panics with *pmem.CrashSignal at the
// selected failure point, before the instruction takes effect.
func (in *Injector) OnEvent(ev *pmem.Event) {
	if in.Target == nil {
		if in.TargetICount != 0 && ev.ICount == in.TargetICount {
			panic(&pmem.CrashSignal{ICount: ev.ICount, Stack: ev.Stack, Reason: "failure point (counter mode)"})
		}
		return
	}
	// Mirror the Builder's gating exactly, so a replay recognises as
	// failure points precisely the events the builder turned into
	// leaves — including the RMW case, whose fence half is a failure
	// point and whose write half re-arms the store gate.
	isFP := false
	switch in.Granularity {
	case GranStore:
		isFP = ev.Op.Kind() == pmem.KindStore
	case GranPersistency:
		switch ev.Op.Kind() {
		case pmem.KindStore:
			in.storeSinceLast = true
		case pmem.KindFlush, pmem.KindFence:
			isFP = in.storeSinceLast
			in.storeSinceLast = false
			if ev.Op == pmem.OpRMW {
				// The RMW writes as well as fences.
				in.storeSinceLast = true
			}
		}
	}
	if !isFP || ev.Stack == stack.NoID || ev.Stack != in.Target.Stack {
		return
	}
	in.Fired = in.Target
	panic(&pmem.CrashSignal{ICount: ev.ICount, Stack: ev.Stack, Reason: "failure point (stack mode)"})
}

package fpt_test

import (
	"strings"
	"testing"
	"testing/quick"

	. "mumak/internal/fpt"
	"mumak/internal/pmem"
	"mumak/internal/stack"
)

func TestInsertDeduplicatesPaths(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	a := st.Intern([]uintptr{10, 20, 30}) // innermost-first
	b := st.Intern([]uintptr{11, 20, 30}) // same callers, different leaf
	l1, added1 := tree.Insert(a, 5)
	l2, added2 := tree.Insert(a, 9)
	l3, added3 := tree.Insert(b, 12)
	if !added1 || added2 || !added3 {
		t.Fatalf("added flags: %v %v %v", added1, added2, added3)
	}
	if l1 != l2 {
		t.Fatal("same stack produced two leaves")
	}
	if l1.FirstICount != 5 {
		t.Fatalf("first icount %d, want 5 (first occurrence)", l1.FirstICount)
	}
	if l3.ID == l1.ID {
		t.Fatal("distinct stacks share a leaf ID")
	}
	if tree.Len() != 2 {
		t.Fatalf("tree has %d leaves, want 2", tree.Len())
	}
	// Shared caller prefix 30->20 plus two leaf nodes = 4 nodes.
	if tree.Nodes() != 4 {
		t.Fatalf("tree has %d nodes, want 4 (shared prefix)", tree.Nodes())
	}
}

func TestLookup(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	id := st.Intern([]uintptr{1, 2, 3})
	leaf, _ := tree.Insert(id, 1)
	if got := tree.Lookup(id); got != leaf {
		t.Fatal("lookup did not find inserted stack")
	}
	other := st.Intern([]uintptr{9, 2, 3})
	if got := tree.Lookup(other); got != nil {
		t.Fatal("lookup found a never-inserted stack")
	}
	// A strict prefix of an inserted path is not a failure point.
	prefix := st.Intern([]uintptr{2, 3})
	if got := tree.Lookup(prefix); got != nil {
		t.Fatal("lookup matched an interior node")
	}
}

func TestLeavesByICountOrderAndClaims(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	la, _ := tree.Insert(st.Intern([]uintptr{1}), 50)
	lb, _ := tree.Insert(st.Intern([]uintptr{2}), 10)
	lc, _ := tree.Insert(st.Intern([]uintptr{3}), 30)
	tree.Freeze()
	got := tree.LeavesByICount()
	if len(got) != 3 || got[0] != lb || got[1] != lc || got[2] != la {
		t.Fatalf("icount order wrong: %+v", got)
	}
	cs := NewClaimSet(tree)
	if !cs.Claim(lb) {
		t.Fatal("first claim lost")
	}
	if cs.Claim(lb) {
		t.Fatal("double claim won")
	}
	if cs.Remaining() != 2 {
		t.Fatalf("remaining after claim = %d", cs.Remaining())
	}
	// A fresh claim set is a reset: the tree itself carries no state.
	if n := NewClaimSet(tree).Remaining(); n != 3 {
		t.Fatalf("fresh claim set remaining = %d", n)
	}
}

func TestFrozenTreeRejectsInsert(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	tree.Insert(st.Intern([]uintptr{1}), 1)
	tree.Freeze()
	if !tree.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert on a frozen tree did not panic")
		}
	}()
	tree.Insert(st.Intern([]uintptr{2}), 2)
}

func TestPropertyInsertLookupRoundTrip(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	f := func(raw [][]uint16) bool {
		ids := make([]stack.ID, 0, len(raw))
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			pcs := make([]uintptr, len(r))
			for i, v := range r {
				pcs[i] = uintptr(v) + 1
			}
			ids = append(ids, st.Intern(pcs))
		}
		leaves := map[stack.ID]*Leaf{}
		for i, id := range ids {
			l, _ := tree.Insert(id, uint64(i+1))
			leaves[id] = l
		}
		for id, want := range leaves {
			if tree.Lookup(id) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// pmApp is a tiny PM program with two distinct code paths reaching a
// persistency instruction, mirroring the sample program of Fig 2.
type pmApp struct{ e *pmem.Engine }

//go:noinline
func (a *pmApp) persist(addr uint64) {
	a.e.CLWB(addr)
	a.e.SFence()
}

//go:noinline
func (a *pmApp) mainPath() {
	a.e.Store64(0, 1)
	a.e.Store64(8, 2) // second store call site: extra store-granularity path
	a.persist(0)
}

//go:noinline
func (a *pmApp) loopPath() {
	for i := 0; i < 3; i++ {
		a.e.Store64(64, uint64(i))
		a.persist(64)
	}
}

func buildTree(t *testing.T, g Granularity) (*Tree, *pmem.Engine) {
	t.Helper()
	st := stack.NewTable()
	capture := pmem.CapturePersistency
	if g == GranStore {
		capture = pmem.CaptureStores
	}
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: capture, Stacks: st})
	tree := New(st)
	e.AttachHook(NewBuilder(tree, g))
	app := &pmApp{e: e}
	app.mainPath()
	app.loopPath()
	return tree, e
}

func TestBuilderFindsUniquePaths(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	// Two unique code paths reach the flush in persist (via mainPath
	// and via loopPath); the fences carry no store since the preceding
	// flush, so the store-gating suppresses them. The loop's three
	// iterations share one path.
	if tree.Len() != 2 {
		t.Fatalf("tree has %d failure points, want 2:\n%s", tree.Len(), tree)
	}
	for _, l := range tree.Leaves() {
		if l.FirstICount == 0 {
			t.Error("leaf missing first instruction counter")
		}
	}
}

func TestBuilderStoreGranularity(t *testing.T) {
	ptree, _ := buildTree(t, GranPersistency)
	stree, _ := buildTree(t, GranStore)
	if stree.Len() <= ptree.Len() {
		t.Fatalf("store granularity found %d points, persistency %d; want more",
			stree.Len(), ptree.Len())
	}
}

func TestBuilderStoreGating(t *testing.T) {
	st := stack.NewTable()
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CapturePersistency, Stacks: st})
	tree := New(st)
	b := NewBuilder(tree, GranPersistency)
	e.AttachHook(b)
	e.Store64(0, 1)
	e.CLWB(0)  // failure point (store happened)
	e.SFence() // gated out (no store since the flush)
	e.SFence() // gated out
	if tree.Len() != 1 {
		t.Fatalf("gating failed: %d failure points, want 1\n%s", tree.Len(), tree)
	}
}

func TestTreeStringRendersFig2Style(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	s := tree.String()
	if !strings.Contains(s, "failure point #") {
		t.Errorf("rendering lacks failure point markers:\n%s", s)
	}
	if !strings.Contains(s, "persist") {
		t.Errorf("rendering lacks function names:\n%s", s)
	}
}

func TestInjectorCounterMode(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	target := tree.Leaves()[1].FirstICount

	st := stack.NewTable()
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CaptureNone, Stacks: st})
	inj := &Injector{TargetICount: target}
	e.AttachHook(inj)
	app := &pmApp{e: e}
	var sig *pmem.CrashSignal
	func() {
		defer func() {
			if r := recover(); r != nil {
				sig = r.(*pmem.CrashSignal)
			}
		}()
		app.mainPath()
		app.loopPath()
	}()
	if sig == nil {
		t.Fatal("injector never fired")
	}
	if sig.ICount != target {
		t.Fatalf("crashed at %d, want %d", sig.ICount, target)
	}
}

func TestInjectorStackMode(t *testing.T) {
	// The construction run and the injection replays drive the
	// application from the same call site so that call stacks — and
	// therefore failure-point identities — agree, as they do when the
	// core pipeline re-executes the same binary. Each replay targets
	// one specific leaf; the tree is frozen and never mutated.
	st := stack.NewTable()
	tree := New(st)
	// Every phase drives the workload through the one call site below so
	// the call frames above the engine — and therefore the interned
	// stack IDs — are identical between construction and replay, as
	// they are when the core pipeline re-executes the same binary.
	// Phase -1 builds the tree; phase i >= 0 replays against leaf i of
	// the FirstICount ordering with a private targeted injector.
	var (
		order     []*Leaf
		injectors []*Injector
		sigs      []*pmem.CrashSignal
	)
	for phase := -1; phase == -1 || phase < len(order); phase++ {
		e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CapturePersistency, Stacks: st})
		if phase == -1 {
			e.AttachHook(NewBuilder(tree, GranPersistency))
		} else {
			inj := &Injector{Target: order[phase], Granularity: GranPersistency}
			injectors = append(injectors, inj)
			e.AttachHook(inj)
		}
		app := &pmApp{e: e}
		func() {
			defer func() {
				if r := recover(); r != nil {
					sigs = append(sigs, r.(*pmem.CrashSignal))
				}
			}()
			app.mainPath()
			app.loopPath()
		}()
		if phase == -1 {
			tree.Freeze()
			order = tree.LeavesByICount()
			if len(order) == 0 {
				t.Fatal("construction run built no failure points")
			}
		}
	}
	if len(sigs) != len(order) {
		t.Fatalf("%d of %d replays crashed", len(sigs), len(order))
	}
	for i, leaf := range order {
		if injectors[i].Fired != leaf {
			t.Fatalf("injector for leaf #%d never fired", leaf.ID)
		}
		if sigs[i].Stack != leaf.Stack {
			t.Fatalf("leaf #%d crashed on stack %d, want %d", leaf.ID, sigs[i].Stack, leaf.Stack)
		}
		// The first gated occurrence of a deterministic replay is the
		// one the builder recorded.
		if sigs[i].ICount != leaf.FirstICount {
			t.Fatalf("leaf #%d crashed at instruction %d, want %d", leaf.ID, sigs[i].ICount, leaf.FirstICount)
		}
	}
}

package fpt_test

import (
	"strings"
	"testing"
	"testing/quick"

	. "mumak/internal/fpt"
	"mumak/internal/pmem"
	"mumak/internal/stack"
)

func TestInsertDeduplicatesPaths(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	a := st.Intern([]uintptr{10, 20, 30}) // innermost-first
	b := st.Intern([]uintptr{11, 20, 30}) // same callers, different leaf
	l1, added1 := tree.Insert(a, 5)
	l2, added2 := tree.Insert(a, 9)
	l3, added3 := tree.Insert(b, 12)
	if !added1 || added2 || !added3 {
		t.Fatalf("added flags: %v %v %v", added1, added2, added3)
	}
	if l1 != l2 {
		t.Fatal("same stack produced two leaves")
	}
	if l1.FirstICount != 5 {
		t.Fatalf("first icount %d, want 5 (first occurrence)", l1.FirstICount)
	}
	if l3.ID == l1.ID {
		t.Fatal("distinct stacks share a leaf ID")
	}
	if tree.Len() != 2 {
		t.Fatalf("tree has %d leaves, want 2", tree.Len())
	}
	// Shared caller prefix 30->20 plus two leaf nodes = 4 nodes.
	if tree.Nodes() != 4 {
		t.Fatalf("tree has %d nodes, want 4 (shared prefix)", tree.Nodes())
	}
}

func TestLookup(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	id := st.Intern([]uintptr{1, 2, 3})
	leaf, _ := tree.Insert(id, 1)
	if got := tree.Lookup(id); got != leaf {
		t.Fatal("lookup did not find inserted stack")
	}
	other := st.Intern([]uintptr{9, 2, 3})
	if got := tree.Lookup(other); got != nil {
		t.Fatal("lookup found a never-inserted stack")
	}
	// A strict prefix of an inserted path is not a failure point.
	prefix := st.Intern([]uintptr{2, 3})
	if got := tree.Lookup(prefix); got != nil {
		t.Fatal("lookup matched an interior node")
	}
}

func TestUnvisitedOrderAndReset(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	la, _ := tree.Insert(st.Intern([]uintptr{1}), 50)
	lb, _ := tree.Insert(st.Intern([]uintptr{2}), 10)
	lc, _ := tree.Insert(st.Intern([]uintptr{3}), 30)
	got := tree.Unvisited()
	if len(got) != 3 || got[0] != lb || got[1] != lc || got[2] != la {
		t.Fatalf("unvisited order wrong: %+v", got)
	}
	lb.Visited = true
	if n := len(tree.Unvisited()); n != 2 {
		t.Fatalf("unvisited after visit = %d", n)
	}
	tree.ResetVisited()
	if n := len(tree.Unvisited()); n != 3 {
		t.Fatalf("unvisited after reset = %d", n)
	}
}

func TestPropertyInsertLookupRoundTrip(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	f := func(raw [][]uint16) bool {
		ids := make([]stack.ID, 0, len(raw))
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			pcs := make([]uintptr, len(r))
			for i, v := range r {
				pcs[i] = uintptr(v) + 1
			}
			ids = append(ids, st.Intern(pcs))
		}
		leaves := map[stack.ID]*Leaf{}
		for i, id := range ids {
			l, _ := tree.Insert(id, uint64(i+1))
			leaves[id] = l
		}
		for id, want := range leaves {
			if tree.Lookup(id) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// pmApp is a tiny PM program with two distinct code paths reaching a
// persistency instruction, mirroring the sample program of Fig 2.
type pmApp struct{ e *pmem.Engine }

//go:noinline
func (a *pmApp) persist(addr uint64) {
	a.e.CLWB(addr)
	a.e.SFence()
}

//go:noinline
func (a *pmApp) mainPath() {
	a.e.Store64(0, 1)
	a.e.Store64(8, 2) // second store call site: extra store-granularity path
	a.persist(0)
}

//go:noinline
func (a *pmApp) loopPath() {
	for i := 0; i < 3; i++ {
		a.e.Store64(64, uint64(i))
		a.persist(64)
	}
}

func buildTree(t *testing.T, g Granularity) (*Tree, *pmem.Engine) {
	t.Helper()
	st := stack.NewTable()
	capture := pmem.CapturePersistency
	if g == GranStore {
		capture = pmem.CaptureStores
	}
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: capture, Stacks: st})
	tree := New(st)
	e.AttachHook(NewBuilder(tree, g))
	app := &pmApp{e: e}
	app.mainPath()
	app.loopPath()
	return tree, e
}

func TestBuilderFindsUniquePaths(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	// Two unique code paths reach the flush in persist (via mainPath
	// and via loopPath); the fences carry no store since the preceding
	// flush, so the store-gating suppresses them. The loop's three
	// iterations share one path.
	if tree.Len() != 2 {
		t.Fatalf("tree has %d failure points, want 2:\n%s", tree.Len(), tree)
	}
	for _, l := range tree.Leaves() {
		if l.FirstICount == 0 {
			t.Error("leaf missing first instruction counter")
		}
	}
}

func TestBuilderStoreGranularity(t *testing.T) {
	ptree, _ := buildTree(t, GranPersistency)
	stree, _ := buildTree(t, GranStore)
	if stree.Len() <= ptree.Len() {
		t.Fatalf("store granularity found %d points, persistency %d; want more",
			stree.Len(), ptree.Len())
	}
}

func TestBuilderStoreGating(t *testing.T) {
	st := stack.NewTable()
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CapturePersistency, Stacks: st})
	tree := New(st)
	b := NewBuilder(tree, GranPersistency)
	e.AttachHook(b)
	e.Store64(0, 1)
	e.CLWB(0)  // failure point (store happened)
	e.SFence() // gated out (no store since the flush)
	e.SFence() // gated out
	if tree.Len() != 1 {
		t.Fatalf("gating failed: %d failure points, want 1\n%s", tree.Len(), tree)
	}
}

func TestTreeStringRendersFig2Style(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	s := tree.String()
	if !strings.Contains(s, "failure point #") {
		t.Errorf("rendering lacks failure point markers:\n%s", s)
	}
	if !strings.Contains(s, "persist") {
		t.Errorf("rendering lacks function names:\n%s", s)
	}
}

func TestInjectorCounterMode(t *testing.T) {
	tree, _ := buildTree(t, GranPersistency)
	target := tree.Leaves()[1].FirstICount

	st := stack.NewTable()
	e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CaptureNone, Stacks: st})
	inj := &Injector{TargetICount: target}
	e.AttachHook(inj)
	app := &pmApp{e: e}
	var sig *pmem.CrashSignal
	func() {
		defer func() {
			if r := recover(); r != nil {
				sig = r.(*pmem.CrashSignal)
			}
		}()
		app.mainPath()
		app.loopPath()
	}()
	if sig == nil {
		t.Fatal("injector never fired")
	}
	if sig.ICount != target {
		t.Fatalf("crashed at %d, want %d", sig.ICount, target)
	}
}

func TestInjectorStackMode(t *testing.T) {
	// Both phases drive the application from the same call site so
	// that call stacks — and therefore failure-point identities —
	// agree between the tree-construction and injection runs, as they
	// do when the core pipeline re-executes the same binary.
	st := stack.NewTable()
	tree := New(st)
	var injectors []*Injector
	for phase := 0; phase < 3; phase++ {
		e := pmem.NewEngine(pmem.Options{PoolSize: 4096, Capture: pmem.CapturePersistency, Stacks: st})
		if phase == 0 {
			e.AttachHook(NewBuilder(tree, GranPersistency))
		} else {
			inj := &Injector{Tree: tree, StackMode: true, Granularity: GranPersistency}
			injectors = append(injectors, inj)
			e.AttachHook(inj)
		}
		app := &pmApp{e: e}
		func() {
			defer func() {
				if r := recover(); r != nil {
					_ = r.(*pmem.CrashSignal)
				}
			}()
			app.mainPath()
			app.loopPath()
		}()
	}
	if injectors[0].Fired == nil {
		t.Fatalf("stack-mode injector never fired (tree has %d leaves)", tree.Len())
	}
	if !injectors[0].Fired.Visited {
		t.Fatal("fired leaf not marked visited")
	}
	// The second injection run skips the visited leaf and fires on the
	// next unvisited one.
	if injectors[1].Fired == nil || injectors[1].Fired == injectors[0].Fired {
		t.Fatalf("second injection did not advance: %+v", injectors[1].Fired)
	}
}

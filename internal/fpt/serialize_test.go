package fpt_test

import (
	"bytes"
	"testing"
	"testing/quick"

	. "mumak/internal/fpt"
	"mumak/internal/stack"
)

func TestSerializeRoundTrip(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	a, _ := tree.Insert(st.Intern([]uintptr{10, 20, 30}), 5)
	tree.Insert(st.Intern([]uintptr{11, 20, 30}), 9)
	tree.Freeze()
	claims := NewClaimSet(tree)
	claims.Claim(a)

	var buf bytes.Buffer
	if err := tree.Encode(&buf, claims); err != nil {
		t.Fatal(err)
	}
	st2 := stack.NewTable()
	got, restored, err := ReadTree(&buf, st2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("restored %d leaves, want 2", got.Len())
	}
	if !got.Frozen() {
		t.Fatal("restored tree not frozen")
	}
	// The claim marks survive; a resumed campaign's pending snapshot
	// contains only the unexplored leaf, in FirstICount order.
	pending := restored.Pending()
	if len(pending) != 1 || pending[0].FirstICount != 9 {
		t.Fatalf("pending after restore: %+v", pending)
	}
	if restored.Remaining() != 1 || restored.ClaimedCount() != 1 {
		t.Fatalf("restored claims: remaining=%d claimed=%d", restored.Remaining(), restored.ClaimedCount())
	}
	// Lookup works against re-interned stacks.
	if got.Lookup(st2.Intern([]uintptr{10, 20, 30})) == nil {
		t.Fatal("restored tree lost a path")
	}
}

func TestSerializePreservesImageStamps(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	a, _ := tree.Insert(st.Intern([]uintptr{10, 20, 30}), 5)
	a.ImageHash = 0xdeadbeefcafe
	a.ImageSize = 4096
	// A zero ImageHash with a non-zero size is a legitimate stamp (a
	// still-zeroed pool) and must survive the round trip as stamped.
	b, _ := tree.Insert(st.Intern([]uintptr{11, 20, 30}), 9)
	b.ImageHash = 0
	b.ImageSize = 4096
	tree.Freeze()

	var buf bytes.Buffer
	if err := tree.Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTree(&buf, stack.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	leaves := got.LeavesByICount()
	if len(leaves) != 2 {
		t.Fatalf("restored %d leaves, want 2", len(leaves))
	}
	if leaves[0].ImageHash != 0xdeadbeefcafe || leaves[0].ImageSize != 4096 {
		t.Fatalf("stamp lost: %+v", leaves[0])
	}
	if leaves[1].ImageHash != 0 || leaves[1].ImageSize != 4096 {
		t.Fatalf("zero-hash stamp lost: %+v", leaves[1])
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	if _, _, err := ReadTree(bytes.NewReader([]byte("not a tree")), stack.NewTable()); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestPropertySerializePreservesLeaves(t *testing.T) {
	f := func(raw [][]uint16, icounts []uint64) bool {
		st := stack.NewTable()
		tree := New(st)
		for i, r := range raw {
			if len(r) == 0 {
				continue
			}
			pcs := make([]uintptr, len(r))
			for j, v := range r {
				pcs[j] = uintptr(v) + 1
			}
			ic := uint64(i + 1)
			if i < len(icounts) {
				ic = icounts[i]%1000 + 1
			}
			tree.Insert(st.Intern(pcs), ic)
		}
		var buf bytes.Buffer
		if err := tree.Encode(&buf, nil); err != nil {
			return false
		}
		got, claims, err := ReadTree(&buf, stack.NewTable())
		if err != nil {
			return false
		}
		return got.Len() == tree.Len() && got.Nodes() == tree.Nodes() &&
			claims.Remaining() == got.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package fpt_test

import (
	"bytes"
	"testing"
	"testing/quick"

	. "mumak/internal/fpt"
	"mumak/internal/stack"
)

func TestSerializeRoundTrip(t *testing.T) {
	st := stack.NewTable()
	tree := New(st)
	a, _ := tree.Insert(st.Intern([]uintptr{10, 20, 30}), 5)
	tree.Insert(st.Intern([]uintptr{11, 20, 30}), 9)
	a.Visited = true

	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := stack.NewTable()
	got, err := ReadTree(&buf, st2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("restored %d leaves, want 2", got.Len())
	}
	// The visited mark and counters survive; ordering by FirstICount.
	unvisited := got.Unvisited()
	if len(unvisited) != 1 || unvisited[0].FirstICount != 9 {
		t.Fatalf("unvisited after restore: %+v", unvisited)
	}
	// Lookup works against re-interned stacks.
	if got.Lookup(st2.Intern([]uintptr{10, 20, 30})) == nil {
		t.Fatal("restored tree lost a path")
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader([]byte("not a tree")), stack.NewTable()); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestPropertySerializePreservesLeaves(t *testing.T) {
	f := func(raw [][]uint16, icounts []uint64) bool {
		st := stack.NewTable()
		tree := New(st)
		for i, r := range raw {
			if len(r) == 0 {
				continue
			}
			pcs := make([]uintptr, len(r))
			for j, v := range r {
				pcs[j] = uintptr(v) + 1
			}
			ic := uint64(i + 1)
			if i < len(icounts) {
				ic = icounts[i]%1000 + 1
			}
			tree.Insert(st.Intern(pcs), ic)
		}
		var buf bytes.Buffer
		if err := tree.Encode(&buf); err != nil {
			return false
		}
		got, err := ReadTree(&buf, stack.NewTable())
		if err != nil {
			return false
		}
		return got.Len() == tree.Len() && got.Nodes() == tree.Nodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

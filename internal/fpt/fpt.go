// Package fpt implements Mumak's failure point tree (§4.1, Fig 2).
//
// Each node is an instruction address (a call-site program counter); each
// unique root-to-leaf path is the call stack of a unique failure point —
// a point in the execution considered prone to leaving PM inconsistent if
// the system crashed there. The tree deduplicates code paths: injecting
// one fault per leaf explores every unique path to a persistency
// instruction while skipping the equivalent post-failure states that
// repeated visits would generate.
//
// The tree is immutable by construction once Freeze is called: the
// builder inserts leaves during the single instrumented run, the
// campaign freezes the tree, and from then on structure and leaves never
// change. Traversal state — which failure points an injection campaign
// has consumed — lives in a separate ClaimSet, so any number of workers
// can walk one frozen tree concurrently without locks on the hot path.
package fpt

import (
	"fmt"
	"sort"
	"strings"

	"mumak/internal/stack"
)

// Leaf is one unique failure point. Leaves are immutable once the tree
// is frozen; campaign progress is tracked in a ClaimSet, never on the
// leaf itself.
type Leaf struct {
	// ID numbers leaves in insertion order.
	ID int
	// Stack is the interned call stack of the failure point.
	Stack stack.ID
	// FirstICount is the engine instruction counter of the first
	// execution that reached this failure point. With a deterministic
	// target, re-running the workload and crashing at this counter
	// reproduces exactly this failure point (the instruction-counter
	// optimisation of §5).
	FirstICount uint64
	// ImageHash and ImageSize stamp the leaf with its prospective
	// crash-image identity: the engine's rolling prefix-image hash and
	// pool size at the instant the builder first reached this failure
	// point. The engine crashes a replay at FirstICount before that
	// instruction's own mutation — the same pre-mutation point at which
	// the builder hook observed the event — so crashing there
	// materialises exactly this image, and leaves sharing a stamp form
	// one crash-image equivalence class. ImageSize == 0 means unstamped
	// (the builder's engine was not hash-tracked); a zero ImageHash is
	// legitimate (a still-zeroed pool), so the size carries the validity
	// bit.
	ImageHash uint64
	ImageSize int
}

type node struct {
	pc       uintptr
	children map[uintptr]*node
	leaf     *Leaf
}

// Tree is the failure point tree. The zero value is not usable; call New.
type Tree struct {
	root   *node
	leaves []*Leaf
	// stacks resolves interned IDs to PCs for insertion and rendering.
	stacks *stack.Table
	// nodes counts tree nodes, a proxy for the pre-allocated memory of
	// the Pin implementation.
	nodes int
	// frozen marks the end of construction: further Inserts panic, and
	// every accessor is safe for concurrent use.
	frozen bool
}

// New returns an empty tree backed by the given stack table.
func New(stacks *stack.Table) *Tree {
	return &Tree{root: &node{children: make(map[uintptr]*node)}, stacks: stacks}
}

// Stacks returns the backing stack table.
func (t *Tree) Stacks() *stack.Table { return t.stacks }

// Freeze ends construction: any later Insert panics. A frozen tree is
// immutable and therefore safe to share across any number of goroutines
// without synchronisation; traversal state belongs in a ClaimSet.
// Freeze is idempotent.
func (t *Tree) Freeze() { t.frozen = true }

// Frozen reports whether construction has ended.
func (t *Tree) Frozen() bool { return t.frozen }

// Insert adds the call stack identified by id, reached first at
// instruction counter icount, and returns the leaf plus whether it was
// newly created. Stacks are inserted outermost-frame-first, so shared
// prefixes (common callers) share tree nodes, exactly as in Fig 2.
// Insert panics on a frozen tree.
func (t *Tree) Insert(id stack.ID, icount uint64) (*Leaf, bool) {
	if t.frozen {
		panic("fpt: Insert on a frozen tree")
	}
	pcs := t.stacks.PCs(id)
	if len(pcs) == 0 {
		return nil, false
	}
	cur := t.root
	// pcs is innermost-first; walk from the outermost frame down.
	for i := len(pcs) - 1; i >= 0; i-- {
		pc := pcs[i]
		next := cur.children[pc]
		if next == nil {
			next = &node{pc: pc, children: make(map[uintptr]*node)}
			cur.children[pc] = next
			t.nodes++
		}
		cur = next
	}
	if cur.leaf != nil {
		return cur.leaf, false
	}
	leaf := &Leaf{ID: len(t.leaves), Stack: id, FirstICount: icount}
	cur.leaf = leaf
	t.leaves = append(t.leaves, leaf)
	return leaf, true
}

// Lookup returns the leaf for the call stack, or nil.
func (t *Tree) Lookup(id stack.ID) *Leaf {
	pcs := t.stacks.PCs(id)
	if len(pcs) == 0 {
		return nil
	}
	cur := t.root
	for i := len(pcs) - 1; i >= 0; i-- {
		cur = cur.children[pcs[i]]
		if cur == nil {
			return nil
		}
	}
	return cur.leaf
}

// Leaves returns all leaves in insertion order. The slice is shared; do
// not modify it.
func (t *Tree) Leaves() []*Leaf { return t.leaves }

// LeavesByICount returns a fresh snapshot of all leaves sorted by first
// occurrence, the order injection campaigns proceed in. The returned
// slice is the caller's to keep.
func (t *Tree) LeavesByICount() []*Leaf {
	out := make([]*Leaf, len(t.leaves))
	copy(out, t.leaves)
	sort.Slice(out, func(i, j int) bool { return out[i].FirstICount < out[j].FirstICount })
	return out
}

// Len returns the number of unique failure points.
func (t *Tree) Len() int { return len(t.leaves) }

// Nodes returns the number of internal tree nodes.
func (t *Tree) Nodes() int { return t.nodes }

// String renders the tree in the style of Fig 2: one line per node,
// indented by depth, leaves annotated with their ID and first counter.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		kids := make([]*node, 0, len(n.children))
		for _, c := range n.children {
			kids = append(kids, c)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].pc < kids[j].pc })
		for _, c := range kids {
			fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), t.frameLabel(c.pc))
			if c.leaf != nil {
				fmt.Fprintf(&sb, "%s* failure point #%d (first at instruction %d)\n",
					strings.Repeat("  ", depth+1), c.leaf.ID, c.leaf.FirstICount)
			}
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return sb.String()
}

func (t *Tree) frameLabel(pc uintptr) string {
	frames := t.stacks.Frames(t.stacks.Intern([]uintptr{pc}))
	if len(frames) == 0 || frames[0].Function == "" {
		return fmt.Sprintf("0x%x", pc)
	}
	f := frames[0]
	return fmt.Sprintf("%s at %s:%d", shortFunc(f.Function), shortFile(f.File), f.Line)
}

func shortFunc(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

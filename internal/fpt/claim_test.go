package fpt_test

import (
	"sync"
	"testing"

	. "mumak/internal/fpt"
	"mumak/internal/stack"
)

func claimFixture(t *testing.T, n int) (*Tree, []*Leaf) {
	t.Helper()
	st := stack.NewTable()
	tree := New(st)
	leaves := make([]*Leaf, 0, n)
	for i := 0; i < n; i++ {
		// Distinct single-frame stacks; icounts deliberately out of
		// insertion order so ordering bugs surface.
		l, added := tree.Insert(st.Intern([]uintptr{uintptr(i + 1)}), uint64((i*7)%n+1))
		if !added {
			t.Fatalf("fixture stack %d not unique", i)
		}
		leaves = append(leaves, l)
	}
	tree.Freeze()
	return tree, leaves
}

// TestConcurrentNextExactlyOnce is the core claim-API guarantee: any
// number of concurrent workers pulling from one ClaimSet receive every
// leaf exactly once — no double-claims, no drops. Run under -race.
func TestConcurrentNextExactlyOnce(t *testing.T) {
	const n, workers = 500, 8
	tree, _ := claimFixture(t, n)
	cs := NewClaimSet(tree)

	var mu sync.Mutex
	seen := make(map[int]int, n) // leaf ID -> deliveries
	indices := make(map[int]int, n)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, leaf := cs.Next()
				if leaf == nil {
					return
				}
				mu.Lock()
				seen[leaf.ID]++
				indices[i]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(seen) != n {
		t.Fatalf("delivered %d distinct leaves, want %d (dropped leaves)", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("leaf %d delivered %d times", id, c)
		}
	}
	for i, c := range indices {
		if c != 1 || i < 0 || i >= n {
			t.Fatalf("pending index %d delivered %d times", i, c)
		}
	}
	if cs.Remaining() != 0 || cs.ClaimedCount() != n {
		t.Fatalf("after drain: remaining=%d claimed=%d", cs.Remaining(), cs.ClaimedCount())
	}
	if cs.Contention() != 0 {
		t.Fatalf("cursor-partitioned traversal observed %d contended claims, want 0", cs.Contention())
	}
}

// TestConcurrentClaimSingleWinner races many claimers at the same leaf:
// exactly one must win, and the losers must be counted as contention.
func TestConcurrentClaimSingleWinner(t *testing.T) {
	const claimers = 16
	tree, leaves := claimFixture(t, 4)
	cs := NewClaimSet(tree)
	target := leaves[2]

	var wins sync.WaitGroup
	won := make(chan bool, claimers)
	for i := 0; i < claimers; i++ {
		wins.Add(1)
		go func() {
			defer wins.Done()
			won <- cs.Claim(target)
		}()
	}
	wins.Wait()
	close(won)
	winners := 0
	for w := range won {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d claimers won the same leaf", winners)
	}
	if cs.Contention() != claimers-1 {
		t.Fatalf("contention=%d, want %d", cs.Contention(), claimers-1)
	}
	if !cs.Claimed(target) || cs.Claimed(leaves[0]) {
		t.Fatal("claim marks wrong after race")
	}
}

func TestReleaseReopensLeaf(t *testing.T) {
	tree, leaves := claimFixture(t, 3)
	cs := NewClaimSet(tree)
	l := leaves[1]
	if !cs.Claim(l) {
		t.Fatal("claim failed")
	}
	cs.Release(l)
	if cs.Claimed(l) {
		t.Fatal("leaf still claimed after release")
	}
	if cs.Remaining() != 3 {
		t.Fatalf("remaining=%d after release, want 3", cs.Remaining())
	}
	// Releasing an unclaimed leaf is a no-op, not an underflow.
	cs.Release(l)
	if cs.ClaimedCount() != 0 {
		t.Fatalf("claimed count %d after double release", cs.ClaimedCount())
	}
	if !cs.Claim(l) {
		t.Fatal("released leaf cannot be re-claimed")
	}
}

// TestPreClaimedExcludedFromPending models a resumed campaign: leaves
// claimed before traversal begins (restored visited marks) must not be
// offered by Next or appear in Pending.
func TestPreClaimedExcludedFromPending(t *testing.T) {
	tree, leaves := claimFixture(t, 10)
	cs := NewClaimSet(tree)
	pre := map[int]bool{}
	for _, l := range leaves[:4] {
		cs.Claim(l)
		pre[l.ID] = true
	}
	pending := cs.Pending()
	if len(pending) != 6 {
		t.Fatalf("pending has %d leaves, want 6", len(pending))
	}
	for i, l := range pending {
		if pre[l.ID] {
			t.Fatalf("pre-claimed leaf %d in pending", l.ID)
		}
		if i > 0 && pending[i-1].FirstICount > l.FirstICount {
			t.Fatal("pending not in FirstICount order")
		}
	}
	delivered := 0
	for {
		_, leaf := cs.Next()
		if leaf == nil {
			break
		}
		if pre[leaf.ID] {
			t.Fatalf("Next delivered pre-claimed leaf %d", leaf.ID)
		}
		delivered++
	}
	if delivered != 6 {
		t.Fatalf("Next delivered %d leaves, want 6", delivered)
	}
}

// TestExternalClaimRacesCursor: a leaf claimed directly (not via Next)
// after the snapshot is built is skipped by the cursor and counted as
// contention, and is never delivered twice.
func TestExternalClaimRacesCursor(t *testing.T) {
	tree, _ := claimFixture(t, 6)
	cs := NewClaimSet(tree)
	pending := cs.Pending() // build the snapshot first
	cs.Claim(pending[2])    // external claim behind the cursor's back
	got := []*Leaf{}
	for {
		_, leaf := cs.Next()
		if leaf == nil {
			break
		}
		if leaf == pending[2] {
			t.Fatal("cursor delivered an externally claimed leaf")
		}
		got = append(got, leaf)
	}
	if len(got) != 5 {
		t.Fatalf("cursor delivered %d leaves, want 5", len(got))
	}
	if cs.Contention() != 1 {
		t.Fatalf("contention=%d, want 1 (cursor skip)", cs.Contention())
	}
}

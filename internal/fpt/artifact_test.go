package fpt_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	. "mumak/internal/fpt"
	"mumak/internal/stack"
)

// encodeFixture serialises a small two-leaf tree, returning the
// artifact bytes.
func encodeFixture(t *testing.T) []byte {
	t.Helper()
	st := stack.NewTable()
	tree := New(st)
	tree.Insert(st.Intern([]uintptr{10, 20, 30}), 5)
	tree.Insert(st.Intern([]uintptr{11, 20, 30}), 9)
	tree.Freeze()
	var buf bytes.Buffer
	if err := tree.Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadTreeRejectsDamagedArtifacts: every way a saved artifact can
// be damaged on disk — truncated at any byte, bit-flipped payload,
// wrong magic, wrong version, implausible length — must produce a
// one-line diagnostic error, never a gob panic or a silently empty
// tree.
func TestReadTreeRejectsDamagedArtifacts(t *testing.T) {
	full := encodeFixture(t)

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(full); cut += 3 {
			_, _, err := ReadTree(bytes.NewReader(full[:cut]), stack.NewTable())
			if err == nil {
				t.Fatalf("truncation at byte %d accepted", cut)
			}
		}
	})
	t.Run("payload-bitflip", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[len(data)-3] ^= 0x40
		_, _, err := ReadTree(bytes.NewReader(data), stack.NewTable())
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit-flipped payload: err=%v, want checksum diagnostic", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[0] ^= 0xff
		_, _, err := ReadTree(bytes.NewReader(data), stack.NewTable())
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad magic: err=%v, want magic diagnostic", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[8] = 0xee // version field follows the 8-byte magic
		_, _, err := ReadTree(bytes.NewReader(data), stack.NewTable())
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("bad version: err=%v, want version diagnostic", err)
		}
	})
	t.Run("implausible-length", func(t *testing.T) {
		data := append([]byte(nil), full...)
		for i := 12; i < 20; i++ {
			data[i] = 0xff
		}
		_, _, err := ReadTree(bytes.NewReader(data), stack.NewTable())
		if err == nil || !strings.Contains(err.Error(), "length") {
			t.Fatalf("implausible length: err=%v, want length diagnostic", err)
		}
	})
	t.Run("corrupt-gob-with-valid-checksum", func(t *testing.T) {
		// A payload that frames and checksums correctly but is not a gob
		// stream must error, not panic: swap in garbage and re-stamp the
		// header's length and checksum fields.
		garbage := []byte("\x7f\x03definitely not a gob stream")
		data := append([]byte(nil), full[:24]...)
		binary.LittleEndian.PutUint64(data[12:20], uint64(len(garbage)))
		binary.LittleEndian.PutUint32(data[20:24], crc32.ChecksumIEEE(garbage))
		data = append(data, garbage...)
		_, _, err := ReadTree(bytes.NewReader(data), stack.NewTable())
		if err == nil {
			t.Fatal("well-framed garbage payload accepted")
		}
	})
}

package fpt

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ClaimSet is the traversal state of one injection campaign over a
// frozen Tree: a per-leaf atomic claim mark plus a cursor over the
// FirstICount-ordered snapshot of unclaimed leaves. Separating this
// state from the tree is what lets many campaign workers walk one tree
// concurrently — the tree itself is immutable, claims are single atomic
// words, and the hot path takes no locks.
//
// Claim/Claimed/Release/Next are safe for concurrent use. Claim may
// also be used before traversal begins to pre-mark leaves (restoring a
// serialised campaign): the pending snapshot is built lazily on the
// first Next/Pending call and excludes everything claimed by then.
type ClaimSet struct {
	tree  *Tree
	marks []atomic.Uint32 // indexed by Leaf.ID; 1 = claimed

	once    sync.Once
	pending []*Leaf // unclaimed leaves at snapshot time, FirstICount order
	cursor  atomic.Int64

	claimed    atomic.Int64 // number of set marks
	contention atomic.Int64 // lost claim races observed
}

// NewClaimSet returns an empty claim set over the tree's current
// leaves. The tree should be frozen before workers start claiming;
// leaves inserted after the set is created are not tracked.
func NewClaimSet(t *Tree) *ClaimSet {
	return &ClaimSet{tree: t, marks: make([]atomic.Uint32, len(t.leaves))}
}

// Tree returns the tree the set tracks.
func (cs *ClaimSet) Tree() *Tree { return cs.tree }

// Claim atomically marks the leaf as consumed and reports whether this
// caller won the mark. Exactly one of any number of concurrent claimers
// of the same leaf succeeds; losers are counted as contention.
func (cs *ClaimSet) Claim(l *Leaf) bool {
	if l == nil || l.ID < 0 || l.ID >= len(cs.marks) {
		return false
	}
	if cs.marks[l.ID].CompareAndSwap(0, 1) {
		cs.claimed.Add(1)
		return true
	}
	cs.contention.Add(1)
	return false
}

// Release clears the leaf's claim mark — the campaign took the leaf but
// discarded the speculative replay (budget expiry, injection cap), so
// the failure point is still unexplored. Releasing an unclaimed leaf is
// a no-op. Released leaves are not re-offered by the current snapshot's
// Next cursor; they surface again through Remaining and a later set.
func (cs *ClaimSet) Release(l *Leaf) {
	if l == nil || l.ID < 0 || l.ID >= len(cs.marks) {
		return
	}
	if cs.marks[l.ID].CompareAndSwap(1, 0) {
		cs.claimed.Add(-1)
	}
}

// Claimed reports whether the leaf has been claimed.
func (cs *ClaimSet) Claimed(l *Leaf) bool {
	if l == nil || l.ID < 0 || l.ID >= len(cs.marks) {
		return false
	}
	return cs.marks[l.ID].Load() == 1
}

// build materialises the pending snapshot: every leaf not claimed yet,
// in FirstICount order.
func (cs *ClaimSet) build() {
	cs.once.Do(func() {
		pending := make([]*Leaf, 0, len(cs.tree.leaves))
		for _, l := range cs.tree.leaves {
			if cs.marks[l.ID].Load() == 0 {
				pending = append(pending, l)
			}
		}
		sort.Slice(pending, func(i, j int) bool {
			return pending[i].FirstICount < pending[j].FirstICount
		})
		cs.pending = pending
	})
}

// Pending returns the snapshot of leaves that were unclaimed when
// traversal began, in FirstICount order — the campaign's work list. The
// slice is shared with the cursor; treat it as read-only.
func (cs *ClaimSet) Pending() []*Leaf {
	cs.build()
	return cs.pending
}

// Next atomically takes the next unclaimed leaf of the pending snapshot
// in FirstICount order, marking it claimed, and returns it with its
// index into Pending. It returns (-1, nil) once the snapshot is
// drained. Concurrent callers each receive a distinct leaf; no leaf is
// delivered twice and none is skipped unless something else claimed it
// first (which counts as contention).
func (cs *ClaimSet) Next() (int, *Leaf) {
	cs.build()
	for {
		i := int(cs.cursor.Add(1)) - 1
		if i >= len(cs.pending) {
			return -1, nil
		}
		if cs.Claim(cs.pending[i]) {
			return i, cs.pending[i]
		}
		// Claimed out from under the cursor (e.g. an external resume
		// mark racing traversal): skip it, it is someone else's leaf.
	}
}

// ClaimedCount returns the number of currently claimed leaves.
func (cs *ClaimSet) ClaimedCount() int { return int(cs.claimed.Load()) }

// Remaining returns the number of leaves not claimed yet.
func (cs *ClaimSet) Remaining() int { return len(cs.marks) - int(cs.claimed.Load()) }

// Contention returns the number of lost claim races observed — claims
// and cursor takes that found the leaf already marked. Zero in a
// well-partitioned campaign; non-zero values signal overlapping
// claimers (e.g. two shards given the same range).
func (cs *ClaimSet) Contention() int { return int(cs.contention.Load()) }

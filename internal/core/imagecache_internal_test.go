package core

import (
	"fmt"
	"sync"
	"testing"

	"mumak/internal/oracle"
)

func key(h uint64) imageKey { return imageKey{hash: h, size: 1 << 16} }

func TestImageCacheLRUEviction(t *testing.T) {
	c := newImageCache(2)
	c.store(key(1), oracle.Outcome{Verdict: oracle.Consistent})
	c.store(key(2), oracle.Outcome{Verdict: oracle.Unrecoverable})
	// Refresh 1, insert 3: 2 is now the least recently used and must go.
	if _, _, ok := c.lookup(key(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	c.store(key(3), oracle.Outcome{Verdict: oracle.Crashed})
	if _, _, ok := c.lookup(key(2)); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, _, ok := c.lookup(key(1)); !ok {
		t.Error("recently used entry was evicted")
	}
	if out, _, ok := c.lookup(key(3)); !ok || out.Verdict != oracle.Crashed {
		t.Errorf("newest entry lookup = (%v, %v), want Crashed verdict", out.Verdict, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", c.Len())
	}
}

func TestImageCacheFirstVerdictWins(t *testing.T) {
	c := newImageCache(4)
	c.store(key(9), oracle.Outcome{Verdict: oracle.Unrecoverable})
	// A racing worker storing the same key must not clobber the entry.
	c.store(key(9), oracle.Outcome{Verdict: oracle.Consistent})
	out, _, ok := c.lookup(key(9))
	if !ok || out.Verdict != oracle.Unrecoverable {
		t.Errorf("lookup = (%v, %v), want the first verdict", out.Verdict, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after duplicate store, want 1", c.Len())
	}
}

func TestImageCacheKeyDiscriminates(t *testing.T) {
	c := newImageCache(8)
	c.store(imageKey{hash: 5, size: 100}, oracle.Outcome{Verdict: oracle.Crashed})
	if _, _, ok := c.lookup(imageKey{hash: 5, size: 200}); ok {
		t.Error("same hash with different pool size hit")
	}
	if _, _, ok := c.lookup(imageKey{hash: 6, size: 100}); ok {
		t.Error("different hash hit")
	}
}

func TestImageCacheDisabled(t *testing.T) {
	if c := newImageCache(0); c != nil {
		t.Error("capacity 0 must disable the cache")
	}
	if c := newImageCache(-3); c != nil {
		t.Error("negative capacity must disable the cache")
	}
}

func TestImageCacheCapacityConfig(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultImageCacheSize},
		{-1, 0},
		{17, 17},
	}
	for _, tc := range cases {
		if got := (Config{ImageCacheSize: tc.in}).imageCacheCapacity(); got != tc.want {
			t.Errorf("imageCacheCapacity(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestImageCacheConcurrent exercises the cache the way the parallel
// campaign does: many goroutines looking up and storing overlapping
// keys while evictions churn the LRU list. Run under -race.
func TestImageCacheConcurrent(t *testing.T) {
	c := newImageCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(uint64(i % 40))
				if out, _, ok := c.lookup(k); ok {
					if out.Err == nil {
						t.Errorf("goroutine %d: cached outcome lost its error", g)
						return
					}
					continue
				}
				c.store(k, oracle.Outcome{
					Verdict: oracle.Unrecoverable,
					Err:     fmt.Errorf("verdict for image %d", i%40),
				})
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Errorf("Len = %d exceeds capacity 16", n)
	}
}

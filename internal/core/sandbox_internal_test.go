package core

import (
	"errors"
	"testing"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest/misbehave"
	"mumak/internal/apps/btree"
	"mumak/internal/bugs"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// TestSandboxDifferentialCleanTarget proves the sandbox is transparent:
// a clean target analysed with the watchdogs armed produces a report
// byte-identical to the pre-sandbox execution path, with equal counters.
func TestSandboxDifferentialCleanTarget(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSeeded(btree.BugCountOutsideTx)) }
	w := testWorkload()
	plain, err := Analyze(mk(), w, Config{KeepWarnings: true, unsandboxed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Report.Bugs()) == 0 {
		t.Fatal("fixture produced no findings; the comparison is vacuous")
	}
	sandboxed, err := Analyze(mk(), w, Config{KeepWarnings: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sandboxed.Report.Format(true), plain.Report.Format(true); got != want {
		t.Errorf("sandbox perturbed a clean-target report:\n--- unsandboxed ---\n%s\n--- sandboxed ---\n%s", want, got)
	}
	if sandboxed.Injections != plain.Injections || sandboxed.Recoveries != plain.Recoveries ||
		sandboxed.SkippedFailurePoints != plain.SkippedFailurePoints ||
		sandboxed.EngineEvents != plain.EngineEvents {
		t.Errorf("sandbox perturbed counters: injections %d/%d recoveries %d/%d skipped %d/%d events %d/%d",
			sandboxed.Injections, plain.Injections, sandboxed.Recoveries, plain.Recoveries,
			sandboxed.SkippedFailurePoints, plain.SkippedFailurePoints,
			sandboxed.EngineEvents, plain.EngineEvents)
	}
	if sandboxed.TargetPanics != 0 || sandboxed.TargetHangs != 0 || sandboxed.RecoveryHangs != 0 {
		t.Errorf("sandbox intervened on a clean target: %d/%d/%d",
			sandboxed.TargetPanics, sandboxed.TargetHangs, sandboxed.RecoveryHangs)
	}
}

// TestReplayHonoursDeadlineMidReplay regresses the serial campaign's
// deadline blind spot: the budget used to be checked only between
// replays, so a single replay that never reached its counter could
// overshoot it without bound. The engine now carries the campaign
// deadline as a wall-clock watchdog, cutting the replay from inside.
func TestReplayHonoursDeadlineMidReplay(t *testing.T) {
	app := misbehave.NewMode(misbehave.HangRun)
	w := testWorkload()
	stacks := stack.NewTable()
	leaf := &fpt.Leaf{ID: 1, Stack: stacks.Intern([]uintptr{0x1}), FirstICount: 1 << 40}
	sb := sandboxCfg{
		budget:   1 << 40, // fuel cannot trip; only the deadline can
		timeout:  time.Second,
		deadline: time.Now().Add(100 * time.Millisecond),
	}
	start := time.Now()
	out := replayLeaf(app, w, leaf, stacks, Config{}.campaignMode(), sb, nil, nil)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("replay ran %s past a 100ms deadline", elapsed)
	}
	if !out.deadlineHit {
		t.Fatalf("deadlineHit not set; outcome %+v", out)
	}
	if out.skipReason != "" || out.finding != nil {
		t.Fatalf("deadline cut must not masquerade as a skip or finding: %+v", out)
	}
}

// TestCampaignBudgetCutsHangingInstrumentedRun: a hanging phase-1 run
// under a wall-clock budget ends as TimedOut, not as a finding — the
// budget, not the target, stopped the analysis.
func TestCampaignBudgetCutsHangingInstrumentedRun(t *testing.T) {
	app := misbehave.NewMode(misbehave.HangRun)
	res, err := Analyze(app, testWorkload(), Config{Budget: 200 * time.Millisecond, HangBudget: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("TimedOut not set after the budget cut the instrumented run")
	}
	if res.TargetHangs != 0 {
		t.Errorf("TargetHangs = %d; a budget cut must not be reported as a hang", res.TargetHangs)
	}
	if res.Report.CountByKind()[report.TargetCrash] != 0 {
		t.Error("budget expiry produced a TargetCrash finding")
	}
}

// flakyApp fails its first `failures` Run calls, then behaves normally —
// the transient-replay-failure scenario the retry logic targets.
type flakyApp struct {
	harness.Application
	failures int
	calls    int
}

func (a *flakyApp) Run(e *pmem.Engine, w workload.Workload) error {
	a.calls++
	if a.calls <= a.failures {
		return errors.New("transient replay failure")
	}
	return a.Application.Run(e, w)
}

// TestLeafRetryRecoversTransientFailure: one transient replay failure
// must cost one retry, not a skipped failure point.
func TestLeafRetryRecoversTransientFailure(t *testing.T) {
	w := testWorkload()
	tree, stacks := buildTree(t, testTarget(), w)
	leaves := tree.LeavesByICount()
	// The last leaf's counter lies inside Run, so the flaky failure is
	// actually exercised (early leaves crash during Setup, before Run).
	leaf := leaves[len(leaves)-1]
	flaky := &flakyApp{Application: testTarget(), failures: 1}
	out := replayLeafWithRetry(flaky, w, leaf, stacks, Config{}.campaignMode(), Config{}.sandbox(time.Time{}), nil, nil)
	if out.retries != 1 {
		t.Errorf("retries = %d, want 1", out.retries)
	}
	if !out.injected || out.skipReason != "" {
		t.Errorf("retried replay did not inject: %+v", out)
	}
}

// TestCampaignCountsRetries: the whole campaign folds per-leaf retries
// into Result.RetriedFailurePoints and keeps full coverage.
func TestCampaignCountsRetries(t *testing.T) {
	w := testWorkload()
	tree, stacks := buildTree(t, testTarget(), w)
	rep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
	res := &Result{Report: rep}
	flaky := &flakyApp{Application: testTarget(), failures: 1}
	timedOut, err := injectAll(flaky, w, tree, Config{}, rep, res, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("unexpected timeout")
	}
	if res.RetriedFailurePoints != 1 {
		t.Errorf("RetriedFailurePoints = %d, want 1", res.RetriedFailurePoints)
	}
	if res.SkippedFailurePoints != 0 {
		t.Errorf("SkippedFailurePoints = %d; the transient failure should have been retried away", res.SkippedFailurePoints)
	}
	if res.Injections != tree.Len() {
		t.Errorf("Injections = %d, want full coverage of %d", res.Injections, tree.Len())
	}
}

// TestAnalyzeRecordsSandboxMetrics: Analyze folds its interventions into
// the process-wide metrics counters.
func TestAnalyzeRecordsSandboxMetrics(t *testing.T) {
	metrics.ResetSandboxCounters()
	app := misbehave.NewMode(misbehave.PanicRun)
	if _, err := Analyze(app, testWorkload(), Config{HangBudget: 30000, RecoveryTimeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	panics, _, _ := metrics.SandboxCounters()
	if panics != 1 {
		t.Errorf("metrics recorded %d target panics, want 1", panics)
	}
	metrics.ResetSandboxCounters()
}

// TestAnalyzeRecordsCampaignMetrics: every campaign folds its shape —
// mode, workers, replays, contention, busy/wall time — into the
// process-wide per-mode metrics counters.
func TestAnalyzeRecordsCampaignMetrics(t *testing.T) {
	metrics.ResetCampaignCounters()
	defer metrics.ResetCampaignCounters()

	if _, err := Analyze(testTarget(), testWorkload(), Config{DisableTraceAnalysis: true}); err != nil {
		t.Fatal(err)
	}
	counter := metrics.CampaignCounters(false)
	if counter.Campaigns != 1 || counter.Workers != 1 || counter.Replays == 0 {
		t.Errorf("counter-mode stats = %+v, want 1 campaign, 1 worker, >0 replays", counter)
	}
	if s := metrics.CampaignCounters(true); s.Campaigns != 0 {
		t.Errorf("counter-mode run bled into the stack-mode counters: %+v", s)
	}

	if _, err := Analyze(testTarget(), testWorkload(),
		Config{StackMode: true, Workers: 4, DisableTraceAnalysis: true}); err != nil {
		t.Fatal(err)
	}
	st := metrics.CampaignCounters(true)
	if st.Campaigns != 1 || st.Workers != 4 || st.Replays == 0 {
		t.Errorf("stack-mode stats = %+v, want 1 campaign, 4 workers, >0 replays", st)
	}
	if st.ClaimContention != 0 {
		t.Errorf("claim traversal recorded %d contended claims, want 0", st.ClaimContention)
	}
	if st.Busy <= 0 || st.Wall <= 0 || st.Utilization() <= 0 {
		t.Errorf("stack-mode stats missing time accounting: busy=%v wall=%v", st.Busy, st.Wall)
	}
}

// cfgSeeded mirrors the external-test helper: an SPT btree config with
// the given seeded bugs.
func cfgSeeded(ids ...bugs.ID) apps.Config {
	return apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable(ids...)}
}

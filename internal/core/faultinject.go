package core

import (
	"errors"
	"fmt"
	"math"
	"time"
	"unicode/utf8"

	"mumak/internal/campaign"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// maxNoProgress bounds consecutive stack-mode leaves consumed without an
// injection (the replay errors, panics, hangs, or never re-encounters
// the target call stack). With a deterministic target one such failure
// usually implies every remaining replay fails the same way — stack mode
// re-runs the whole workload per leaf, so grinding through thousands of
// doomed replays would waste the entire budget. A small bound aborts the
// campaign instead while still tolerating the occasional
// non-deterministic hiccup stack mode exists to serve. Counter mode
// keeps consuming: its replays are cheap (they stop at the recorded
// counter) and skips there are honest per-leaf coverage accounting.
const maxNoProgress = 3

// maxInjectionErrors caps the error strings sampled into
// Result.InjectionErrors; SkippedFailurePoints keeps the honest total.
const maxInjectionErrors = 8

// maxLeafRetries bounds the re-replays of a leaf consumed with a
// transient skip (an errored replay, a counter never reached, a call
// stack never re-encountered), instead of giving up on the first hiccup.
// Deterministic targets converge to the same skip, so the bound costs at
// most two extra replays per genuinely dead leaf.
const maxLeafRetries = 2

// retryBackoff is the base pause between leaf retries; attempt k waits
// k×retryBackoff, giving a transient condition a moment to clear without
// slowing a deterministic failure down meaningfully.
const retryBackoff = time.Millisecond

// replayFuelSlack is the extra fuel granted to a counter-mode replay
// past the leaf's recorded instruction counter. A deterministic replay
// crashes at exactly FirstICount events, so anything beyond a small
// slack means the run diverged into unbounded PM activity.
const replayFuelSlack = 4096

// sandboxCfg carries the per-execution watchdog bounds of one campaign:
// the deterministic fuel budget, the recovery wall-clock timeout, and
// the campaign deadline (honoured mid-replay through the engine's
// wall-clock watchdog, not just between replays).
type sandboxCfg struct {
	budget   uint64
	timeout  time.Duration
	deadline time.Time
	// interrupt polls the graceful-interruption request (nil when none
	// was configured). Checked only between leaves, never mid-replay:
	// an in-flight replay drains to completion, so every consumed
	// leaf's outcome — and its journal record — is exactly what an
	// uninterrupted run would have produced.
	interrupt func() bool
	// disabled restores the pre-sandbox execution path (panics
	// propagate, no watchdogs); reachable only from package-internal
	// differential tests proving the sandbox does not perturb reports.
	disabled bool
}

// interrupted polls the graceful-interruption request.
func (sb sandboxCfg) interrupted() bool {
	return sb.interrupt != nil && sb.interrupt()
}

// sandbox derives the campaign watchdog bounds from the configuration.
func (cfg Config) sandbox(deadline time.Time) sandboxCfg {
	sb := sandboxCfg{
		budget:   cfg.HangBudget,
		timeout:  cfg.RecoveryTimeout,
		deadline: deadline,
		disabled: cfg.unsandboxed,
	}
	if cfg.Interrupt != nil {
		ch := cfg.Interrupt
		sb.interrupt = func() bool {
			select {
			case <-ch:
				return true
			default:
				return false
			}
		}
	}
	if sb.budget == 0 {
		sb.budget = DefaultHangBudget
	}
	if sb.timeout == 0 {
		sb.timeout = DefaultRecoveryTimeout
	}
	return sb
}

// campaignMode bundles the per-mode replay parameters so one replay/
// merge/driver implementation serves both injection modes.
type campaignMode struct {
	// stack selects call-stack matching (needs capture, tolerates
	// non-determinism); false selects the §5 instruction-counter replay.
	stack   bool
	gran    fpt.Granularity
	capture pmem.StackCapture
}

// campaignMode derives the injection mode from the configuration.
func (cfg Config) campaignMode() campaignMode {
	m := campaignMode{stack: cfg.StackMode, gran: cfg.Granularity, capture: pmem.CaptureNone}
	if cfg.StackMode {
		m.capture = pmem.CapturePersistency
		if cfg.Granularity == fpt.GranStore {
			m.capture = pmem.CaptureStores
		}
	}
	return m
}

// execute runs one target execution under the campaign sandbox, or the
// strict pre-sandbox path when differential testing disabled it. The
// caller fills the watchdog fields of opts.
func execute(app harness.Application, w workload.Workload, opts pmem.Options,
	sb sandboxCfg, hooks ...pmem.Hook) (*pmem.Engine, harness.Outcome) {

	if sb.disabled {
		eng, sig, err := harness.Execute(app, w, opts, hooks...)
		return eng, harness.Outcome{Sig: sig, Err: err}
	}
	return harness.ExecuteSandboxed(app, w, opts, hooks...)
}

// boundedCheck runs the recovery oracle under the campaign watchdog. The
// second return reports that the campaign deadline — not the target's
// behaviour — cut the check short: such an outcome must become a budget
// expiry, never a finding.
func boundedCheck(app harness.Application, img *pmem.Image, sb sandboxCfg) (oracle.Outcome, bool) {
	if sb.disabled {
		return oracle.Check(app, img), false
	}
	wd := oracle.Watchdog{MaxEvents: sb.budget, Timeout: sb.timeout}
	capped := false
	if !sb.deadline.IsZero() {
		rem := time.Until(sb.deadline)
		if rem <= 0 {
			return oracle.Outcome{}, true
		}
		if rem < wd.Timeout {
			wd.Timeout = rem
			capped = true
		}
	}
	out := oracle.CheckBounded(app, img, wd)
	if out.Verdict == oracle.Hung && capped && (out.Hang == nil || out.Hang.Deadline) {
		// The wall clock fired while capped to the campaign's remaining
		// budget: attribute the stop to the budget. Only a fuel trip is
		// unambiguous target behaviour under a capped timeout.
		return out, true
	}
	return out, false
}

// panicDetail renders a sandbox-captured target panic for a finding.
func panicDetail(during string, p *harness.PanicInfo) string {
	return fmt.Sprintf("target panicked during %s: %v\ntarget trace:\n%s",
		during, p.Value, truncate(p.Trace, 800))
}

// hangDetail renders a fuel-budget kill for a finding. It mentions only
// the configured budget, never measured time, so reports stay
// deterministic.
func hangDetail(during string, h *pmem.HangSignal) string {
	return fmt.Sprintf("target terminated by the hang watchdog during %s: budget of %d PM events exhausted (possible non-termination or runaway PM allocation)",
		during, h.Budget)
}

// replayDuring is the shared finding-phase label of both injection
// modes: the panic/hang liveness wording is identical whichever mode
// produced the finding.
const replayDuring = "a fault-injection replay"

// injectAll claims every pending leaf of the (frozen) failure point
// tree, injecting one fault per unique failure point (steps 7-9 of
// Fig 1), and reports every crash state the recovery oracle rejects. It
// returns whether the deadline expired first.
//
// In the default counter mode the injector crashes at the leaf's
// recorded first-occurrence instruction counter — the §5 optimisation
// that works because the target is deterministic. In stack mode each
// replay targets one leaf and crashes at the first failure-point event
// whose call stack matches it, which needs stack capture on every replay
// but tolerates non-determinism. Either way replays are independent
// (each constructs a private engine and a private injector over the
// immutable tree), so both campaigns fan out across cfg.Workers
// goroutines when asked to; traversal state lives in the ClaimSet that
// hands leaves out, published as Result.Claims.
//
// Every replay and recovery runs inside the sandbox: a foreign panic or
// a watchdog kill becomes a TargetCrash or RecoveryHang finding instead
// of crashing or stalling the tool.
//
// With a journal configured (cfg.Journal) every consumed leaf is
// durably recorded before the next is folded, and the campaign state is
// snapshotted periodically plus once at the end, however the campaign
// ends. With a resume state (cfg.Resume) the journaled prefix is folded
// through the merge step first — no replay re-executes — and the
// campaign continues from the first unexplored leaf. The only returned
// error is a resume mismatch: a journal recorded under a different
// target, workload or injection mode.
func injectAll(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, deadline time.Time,
	ckpts *pmem.CheckpointStore) (timedOut bool, err error) {

	sb := cfg.sandbox(deadline)
	// One verdict cache per campaign: application, workload and recovery
	// configuration are fixed here, so entries are keyed by image
	// identity alone. The cache is shared across parallel workers in
	// both modes.
	cache := newImageCache(cfg.imageCacheCapacity())
	if cache != nil && len(cfg.WarmVerdicts) > 0 {
		// Warm the cache from the cross-run verdict-cache file before
		// anything consults it; the entries are marked so hits on them
		// are attributed to the persistent cache.
		cache.seedPersistent(cfg.WarmVerdicts)
	}
	defer func() {
		if cache != nil {
			res.ImageCacheEntries = cache.Len()
			if cfg.PersistVerdicts {
				res.VerdictCache = cache.export()
			}
		}
	}()

	tree.Freeze()
	cs := fpt.NewClaimSet(tree)
	res.Claims = cs
	mode := cfg.campaignMode()
	m := &mergeState{
		mode: mode, cfg: cfg, rep: rep, res: res,
		tree: tree, cs: cs, cache: cache,
		journal: cfg.Journal, snapEvery: cfg.snapshotEvery(),
	}
	m.replayer = func(leaf *fpt.Leaf) replayOutcome {
		return replayLeafWithRetry(app, w, leaf, tree.Stacks(), mode, sb, cache, ckpts)
	}
	m.persistent = len(cfg.WarmVerdicts) > 0 || cfg.PersistVerdicts
	if cfg.Classing {
		// The plan is built from the frozen tree's phase-1 stamps and is
		// nil — classing silently off — when any leaf is unstamped (e.g.
		// a tree artifact recorded before stamping existed).
		if m.plan = buildClassPlan(tree); m.plan != nil {
			m.classes = make(map[imageKey]*classVerdict, m.plan.classes)
			res.EquivClasses = m.plan.classes
		}
	}
	start := time.Now()
	defer func() {
		res.ClaimContention = cs.Contention()
		metrics.RecordCampaign(mode.stack, res.CampaignWorkers, res.Injections,
			cs.Contention(), res.WorkerBusy, time.Since(start))
	}()
	// Persist the end state however the campaign ends: completion,
	// budget expiry, interruption, cap, abort, fold-only.
	defer m.finalSnapshot()

	if cfg.Resume != nil {
		// Seed the verdict cache from the snapshot (oldest first, so
		// recency — and therefore eviction — carries over), then fold
		// the journaled verdicts. Claims must be marked before the
		// ClaimSet builds its pending snapshot below.
		if cache != nil {
			cache.seed(cfg.Resume.Cache)
		}
		aborted, err := m.fold(cfg.Resume)
		if err != nil {
			return false, err
		}
		if aborted {
			return false, nil
		}
	}
	if m.capped() {
		return false, nil
	}
	if sb.interrupted() {
		res.Interrupted = true
		return false, nil
	}

	workers := cfg.Workers
	if workers < 1 || len(cs.Pending()) <= 1 {
		workers = 1
	}
	res.CampaignWorkers = workers
	if workers > 1 {
		return injectParallel(app, w, cs, tree.Stacks(), mode, m, sb, cache, ckpts, workers), nil
	}
	return injectSerial(app, w, cs, tree.Stacks(), mode, m, sb, cache, ckpts), nil
}

// replayOutcome is the result of replaying one leaf on a private engine.
// It carries everything the merge step needs, so that replays can run on
// any goroutine while the shared Result and Report are only ever touched
// in deterministic leaf order.
type replayOutcome struct {
	// executed is false when the replay never ran (deadline expired).
	executed bool
	// deadlineHit reports that the campaign deadline cut the replay or
	// its recovery mid-flight; the leaf is released unconsumed and the
	// campaign stops, exactly as if the deadline had expired between
	// replays.
	deadlineHit bool
	// events is the number of engine instruction events of the replay
	// (all attempts).
	events uint64
	// retries counts extra replay attempts after transient skips.
	retries int
	// injected reports that the replay reached the failure point and
	// crashed there.
	injected bool
	// restored reports that the crash state came from a checkpoint
	// restore plus a mutation-log gap replay, not a from-scratch
	// re-execution of the workload.
	restored bool
	// recovered reports that the recovery oracle ran.
	recovered bool
	// skipReason is non-empty when the leaf was consumed without an
	// injection: the replay errored, never reached the counter, or never
	// re-encountered the call stack.
	skipReason string
	// targetPanic and targetHang mark replays the sandbox stopped: the
	// target's own code panicked, or the fuel budget expired. The leaf
	// is consumed without an injection and finding reports the
	// behaviour.
	targetPanic bool
	targetHang  bool
	// recoveryHung marks an injected replay whose recovery the
	// watchdog classified as non-terminating.
	recoveryHung bool
	// cacheHit and cacheMiss record the verdict-cache consultation of a
	// recovered replay: a hit delivered a memoised verdict without
	// running recovery, a miss ran the oracle and populated the cache.
	// Both are false when caching is disabled.
	cacheHit  bool
	cacheMiss bool
	// inherited marks a class member that never replayed: it inherited
	// its crash-image equivalence class's verdict (classing.go).
	// replayElided marks a class representative whose replay was skipped
	// because its stamped image key was already in the verdict cache;
	// persistentHit narrows a cache hit to entries seeded from a
	// cross-run verdict-cache file.
	inherited     bool
	replayElided  bool
	persistentHit bool
	// pendingInherit is the parallel workers' placeholder for a class
	// member: the merge loop resolves it (mergeState.dispatch) once the
	// member's representative has been merged. Never consumed or
	// journaled.
	pendingInherit bool
	// imageHash is the crash image's content hash when one was produced
	// (diagnostic; journaled for cross-shard dedup and for warming the
	// persistent verdict cache).
	imageHash uint64
	// finding is the resulting finding, if any: a crash-consistency
	// bug, a target crash, or a recovery hang.
	finding *report.Finding
}

// replayFuel bounds one counter-mode replay. The replay crashes at
// exactly leaf.FirstICount events when the target is deterministic, so
// the slack-padded counter is a far tighter (and still deterministic)
// budget than the campaign-wide one. The sum saturates at MaxUint64
// instead of wrapping: a wrapped (tiny) fuel value would kill a healthy
// replay long before its failure point and misreport it as a hang. The
// campaign budget caps the fuel only when it still lets the replay
// reach its counter — a budget at or below FirstICount can never
// produce anything but that same phantom hang.
func replayFuel(budget, firstICount uint64) uint64 {
	fuel := firstICount + replayFuelSlack
	if fuel < firstICount { // overflow: saturate
		fuel = math.MaxUint64
	}
	if budget != 0 && budget > firstICount && budget < fuel {
		return budget
	}
	return fuel
}

// replayLeaf runs one fault injection: a fresh execution crashed at the
// leaf's failure point, followed by the recovery oracle over the
// graceful-crash image (§4.1). In counter mode the engine crashes
// itself at the recorded instruction counter (§5's minimal
// instrumentation, no hook at all); in stack mode a private targeted
// injector crashes the run at the first event whose call stack matches
// the leaf's. It is safe to call concurrently for different leaves: the
// engine, the injector, the crash image and the oracle's recovery engine
// are all private to the call, the tree is frozen, and the shared
// verdict cache is concurrency-safe.
func replayLeaf(app harness.Application, w workload.Workload, leaf *fpt.Leaf,
	stacks *stack.Table, mode campaignMode, sb sandboxCfg, cache *imageCache,
	ckpts *pmem.CheckpointStore) replayOutcome {

	if !mode.stack && ckpts != nil {
		return replayCheckpointed(app, leaf, sb, cache, ckpts)
	}
	out := replayOutcome{executed: true}
	opts := pmem.Options{Capture: mode.capture, Stacks: stacks}
	var hooks []pmem.Hook
	if mode.stack {
		hooks = append(hooks, &fpt.Injector{Target: leaf, Granularity: mode.gran})
	} else {
		opts.CrashAt = leaf.FirstICount
	}
	if !sb.disabled {
		if mode.stack {
			// A stack-mode replay has no deterministic crash counter to
			// bound it by, so it gets the full campaign fuel budget.
			opts.MaxEvents = sb.budget
		} else {
			opts.MaxEvents = replayFuel(sb.budget, leaf.FirstICount)
		}
		opts.Deadline = sb.deadline
	}
	eng, sres := execute(app, w, opts, sb, hooks...)
	out.events = eng.Events()
	switch {
	case sres.Err != nil:
		// The workload failed before the failure point — the run
		// diverged (should not happen with deterministic targets).
		out.skipReason = fmt.Sprintf("replay failed before the failure point: %v", sres.Err)
		return out
	case sres.Panic != nil:
		out.targetPanic = true
		out.finding = &report.Finding{
			Kind:   report.TargetCrash,
			ICount: eng.ICount(),
			Stack:  leaf.Stack,
			Detail: panicDetail(replayDuring, sres.Panic),
		}
		return out
	case sres.Hang != nil:
		if sres.Hang.Deadline {
			out.deadlineHit = true
			return out
		}
		out.targetHang = true
		out.finding = &report.Finding{
			Kind:   report.TargetCrash,
			ICount: eng.ICount(),
			Stack:  leaf.Stack,
			Detail: hangDetail(replayDuring, sres.Hang),
		}
		return out
	case sres.Sig == nil:
		if mode.stack {
			out.skipReason = "failure-point call stack never re-encountered on replay"
		} else {
			out.skipReason = "target instruction counter never reached on replay"
		}
		return out
	}
	out.injected = true
	finishInjected(app, eng, leaf, sres.Sig.ICount, sb, cache, &out)
	return out
}

// replayCheckpointed is the counter-mode fast path: instead of
// re-executing the workload up to the failure point, it restores engine
// state from the recorded run's nearest checkpoint below the leaf's
// counter and applies only the mutation-log gap — O(gap since
// checkpoint) instead of O(prefix), with no application code at all.
// The restored engine is byte-identical to a from-scratch replay
// crashed at the same counter (checkpoint.go), so the crash image, the
// verdict-cache key and the resulting findings are exactly those of the
// legacy path.
func replayCheckpointed(app harness.Application, leaf *fpt.Leaf,
	sb sandboxCfg, cache *imageCache, ckpts *pmem.CheckpointStore) replayOutcome {

	out := replayOutcome{executed: true}
	deadline := sb.deadline
	if sb.disabled {
		deadline = time.Time{}
	}
	eng, gap, err := ckpts.ReplayTo(leaf.FirstICount, deadline)
	switch {
	case errors.Is(err, pmem.ErrReplayDeadline):
		out.deadlineHit = true
		return out
	case err != nil:
		// The recorded run's log ends before this counter. It cannot
		// happen for leaves of the tree that same run built (every
		// failure point is a logged persistency event), but stays an
		// honest per-leaf skip, with the same wording as a from-scratch
		// replay that fell short.
		out.skipReason = "target instruction counter never reached on replay"
		return out
	}
	// The gap is the deterministic measure of replayed work, mirroring
	// the instruction events a from-scratch replay would have spent on
	// the same stretch.
	out.events = gap
	out.restored = true
	out.injected = true
	finishInjected(app, eng, leaf, leaf.FirstICount, sb, cache, &out)
	return out
}

// finishInjected runs the oracle tail shared by every injected replay:
// the vanilla, uninstrumented recovery procedure over the
// graceful-crash image (§4.1), bounded by the hang watchdog. The
// verdict cache is consulted first: when an identical image was already
// checked, the memoised verdict stands in for the recovery run and the
// image is never even materialised.
func finishInjected(app harness.Application, eng *pmem.Engine, leaf *fpt.Leaf,
	icount uint64, sb sandboxCfg, cache *imageCache, out *replayOutcome) {

	check, ddl, hit, seeded := cachedCheck(app, eng, sb, cache)
	if ddl {
		out.deadlineHit = true
		return
	}
	out.recovered = true
	out.cacheHit = hit
	out.cacheMiss = cache != nil && !hit
	out.persistentHit = seeded
	// Record the hash whether or not the in-memory cache is enabled: the
	// journaled hash also feeds cross-shard dedup and the persistent
	// verdict cache, neither of which should depend on the local cache
	// flag. The incremental hash is O(changed lines) — no image walk.
	out.imageHash = eng.PrefixImageHash()
	applyVerdict(check, icount, leaf.Stack, out)
}

// replayLeafWithRetry replays a leaf, retrying a bounded number of times
// (with a small backoff) when the replay is consumed by a transient
// skip. Panics, hangs and deadline cuts are never retried: the first is
// already a finding, the others would only burn the remaining budget.
// The retry policy is mode-agnostic: both campaigns share it, so a
// flaky replay costs the same bounded tolerance either way.
func replayLeafWithRetry(app harness.Application, w workload.Workload, leaf *fpt.Leaf,
	stacks *stack.Table, mode campaignMode, sb sandboxCfg, cache *imageCache,
	ckpts *pmem.CheckpointStore) replayOutcome {

	out := replayLeaf(app, w, leaf, stacks, mode, sb, cache, ckpts)
	for attempt := 1; attempt <= maxLeafRetries && out.skipReason != ""; attempt++ {
		if !sb.deadline.IsZero() && !time.Now().Before(sb.deadline) {
			break
		}
		time.Sleep(time.Duration(attempt) * retryBackoff)
		next := replayLeaf(app, w, leaf, stacks, mode, sb, cache, ckpts)
		next.events += out.events
		next.retries = out.retries + 1
		out = next
	}
	return out
}

// consumeOutcome folds one leaf's replay outcome into the shared result
// and report. The leaf was already claimed when it was handed out; both
// the serial and the parallel campaign call this in FirstICount order,
// so the merged report is byte-identical regardless of scheduling.
func consumeOutcome(leaf *fpt.Leaf, out replayOutcome, rep *report.Report, res *Result) {
	res.EngineEvents += out.events
	res.RetriedFailurePoints += out.retries
	if out.skipReason != "" {
		// Every retry was spent (replayLeafWithRetry consumed them
		// before this outcome surfaced): the leaf is quarantined — set
		// aside with its reason in the report's QuarantinedLeaves
		// section — rather than aborting the campaign or vanishing into
		// a bare counter. SkippedFailurePoints stays the superset
		// coverage count.
		res.SkippedFailurePoints++
		res.QuarantinedFailurePoints++
		rep.Quarantine(report.QuarantinedLeaf{
			LeafID:  leaf.ID,
			ICount:  leaf.FirstICount,
			Stack:   leaf.Stack,
			Reason:  out.skipReason,
			Retries: out.retries,
		})
		res.addInjectionError(fmt.Sprintf("failure point #%d (instruction %d): %s",
			leaf.ID, leaf.FirstICount, out.skipReason))
		return
	}
	if out.targetPanic || out.targetHang {
		// The sandbox stopped the replay before the failure point: the
		// leaf is consumed without an injection, and the behaviour is a
		// finding rather than an error sample.
		if out.targetPanic {
			res.TargetPanics++
		} else {
			res.TargetHangs++
		}
		res.SkippedFailurePoints++
		rep.Add(*out.finding)
		return
	}
	res.Injections++
	if out.restored {
		res.CheckpointRestores++
	}
	if out.recovered {
		res.Recoveries++
	}
	if out.cacheHit {
		res.ImageCacheHits++
	}
	if out.cacheMiss {
		res.ImageCacheMisses++
	}
	if out.inherited {
		res.InheritedVerdicts++
		res.ReplaysAvoided++
	}
	if out.replayElided {
		res.ReplaysAvoided++
	}
	if out.persistentHit {
		res.PersistentCacheHits++
	}
	if out.recoveryHung {
		res.RecoveryHangs++
	}
	if out.finding != nil {
		rep.Add(*out.finding)
	}
}

// mergeState is the deterministic folding step shared by the serial and
// parallel drivers: it consumes outcomes strictly in leaf FirstICount
// order and decides, in that same order, when the campaign stops — the
// MaxFailurePoints cap, and stack mode's no-progress abort. It also
// owns the campaign journal: every consumed outcome is durably appended
// (and periodically snapshotted) before the next leaf is folded, and a
// resumed campaign folds its journaled prefix back through the same
// consume step (journal.go).
type mergeState struct {
	mode campaignMode
	cfg  Config
	rep  *report.Report
	res  *Result

	tree  *fpt.Tree
	cs    *fpt.ClaimSet
	cache *imageCache

	// journal receives one record per consumed leaf; nil when
	// journaling is off (or degraded after a write error). snapEvery
	// spaces the periodic snapshots; sinceSnap counts records since the
	// last one. consumed counts every consumed leaf, folded or live.
	// folding suppresses re-publishing while a resumed journal prefix
	// is replayed through consume.
	journal   *campaign.Journal
	snapEvery int
	sinceSnap int
	consumed  int
	folding   bool

	// plan groups leaves into crash-image equivalence classes (nil when
	// classing is off or the tree is unstamped); classes accumulates the
	// per-class verdict templates as representatives are merged, and is
	// only ever touched by the merge goroutine. replayer runs one live
	// replay (the campaign's replayLeafWithRetry closed over its shared
	// state); persistent marks that a cross-run verdict-cache file is in
	// play, so misses are worth counting against it.
	plan       *classPlan
	classes    map[imageKey]*classVerdict
	replayer   func(*fpt.Leaf) replayOutcome
	persistent bool

	injected   int
	noProgress int
}

// capped reports that the injection cap was reached; the campaign stops
// before consuming further leaves.
func (m *mergeState) capped() bool {
	return m.cfg.MaxFailurePoints > 0 && m.injected >= m.cfg.MaxFailurePoints
}

// consume folds one outcome and returns whether the campaign must abort:
// in stack mode, maxNoProgress consecutive leaves consumed without an
// injection mean replays have stopped reproducing the construction run
// (a deterministic failure would recur on every remaining leaf), so the
// campaign gives up instead of burning the budget on full-workload
// replays that cannot fire.
func (m *mergeState) consume(leaf *fpt.Leaf, out replayOutcome) (abort bool) {
	consumeOutcome(leaf, out, m.rep, m.res)
	if m.persistent && out.cacheMiss {
		m.res.PersistentCacheMisses++
	}
	if m.plan != nil && out.injected && out.recovered {
		// Capture the class verdict template from the first judged
		// outcome of each class — normally the representative, or a
		// fallen-back member when the representative was quarantined.
		// Folded journal records qualify too, so a resumed campaign
		// inherits across the resume boundary.
		if k := m.plan.key(leaf); m.classes[k] == nil {
			m.classes[k] = &classVerdict{finding: out.finding, recoveryHung: out.recoveryHung}
		}
	}
	m.consumed++
	if !m.folding {
		m.publish(leaf, out)
	}
	if out.injected {
		m.injected++
		m.noProgress = 0
		return false
	}
	if !m.mode.stack {
		return false
	}
	m.noProgress++
	if m.noProgress >= maxNoProgress {
		m.res.InjectionAborted = true
		return true
	}
	return false
}

// injectSerial replays the pending leaves one at a time in FirstICount
// order. It is the Workers<=1 path and the reference order the parallel
// campaign reproduces, for both injection modes. The campaign deadline
// is honoured mid-replay: the replay engine carries it as a wall-clock
// watchdog, so a single long replay can no longer overshoot the budget
// arbitrarily. A graceful-interruption request is honoured between
// leaves: the in-flight replay drains, its outcome is consumed and
// journaled, and the campaign stops with the remaining failure points
// unexplored (and unclaimed, so a resume picks them up).
func injectSerial(app harness.Application, w workload.Workload, cs *fpt.ClaimSet,
	stacks *stack.Table, mode campaignMode, m *mergeState,
	sb sandboxCfg, cache *imageCache, ckpts *pmem.CheckpointStore) (timedOut bool) {

	res := m.res
	for {
		if sb.interrupted() {
			res.Interrupted = true
			return false
		}
		if !sb.deadline.IsZero() && time.Now().After(sb.deadline) {
			return true
		}
		if m.capped() {
			return false
		}
		_, leaf := cs.Next()
		if leaf == nil {
			return false
		}
		t0 := time.Now()
		out := m.dispatch(leaf)
		res.WorkerBusy += time.Since(t0)
		if out.deadlineHit {
			// The mid-replay watchdog cut the replay short: the failure
			// point stays unexplored, so hand its claim back.
			cs.Release(leaf)
			return true
		}
		if m.consume(leaf, out) {
			return false
		}
	}
}

// truncate shortens s to at most n bytes, backing off to the previous
// rune boundary so that a cut never emits invalid UTF-8 into reports
// (recovery panic traces may carry multi-byte runes).
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "\n    ..."
}

package core

import (
	"time"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/workload"
)

// injectAll visits every unvisited leaf of the failure point tree,
// injecting one fault per unique failure point (steps 7-9 of Fig 1),
// and reports every crash state the recovery oracle rejects. It returns
// whether the deadline expired first.
//
// In the default counter mode the injector crashes at the leaf's
// recorded first-occurrence instruction counter — the §5 optimisation
// that works because the target is deterministic. In stack mode it
// re-matches call stacks, which needs stack capture on every replay but
// tolerates non-determinism.
func injectAll(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, deadline time.Time) (timedOut bool) {

	stacks := tree.Stacks()
	capture := pmem.CaptureNone
	if cfg.StackMode {
		capture = pmem.CapturePersistency
		if cfg.Granularity == fpt.GranStore {
			capture = pmem.CaptureStores
		}
	}
	injected := 0
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return true
		}
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			return false
		}
		var inj *fpt.Injector
		opts := pmem.Options{Capture: capture, Stacks: stacks}
		var hooks []pmem.Hook
		var leaf *fpt.Leaf
		if cfg.StackMode {
			inj = &fpt.Injector{Tree: tree, StackMode: true, Granularity: cfg.Granularity}
			hooks = append(hooks, inj)
		} else {
			unvisited := tree.Unvisited()
			if len(unvisited) == 0 {
				return false
			}
			leaf = unvisited[0]
			leaf.Visited = true
			// Counter mode needs no hook at all: the engine crashes
			// itself at the recorded counter (§5's minimal
			// instrumentation).
			opts.CrashAt = leaf.FirstICount
		}
		eng, sig, err := harness.Execute(app, w, opts, hooks...)
		res.EngineEvents += eng.Events()
		if err != nil {
			// The workload failed before the failure point — the run
			// diverged (should not happen with deterministic targets).
			continue
		}
		if sig == nil {
			if cfg.StackMode {
				// No unvisited failure point was reached; done.
				return false
			}
			// The target counter was never reached; skip this leaf.
			continue
		}
		injected++
		res.Injections++

		// Materialise the graceful-crash image and run the vanilla,
		// uninstrumented recovery procedure on it (§4.1).
		img := eng.PrefixImage()
		out := oracle.Check(app, img)
		res.Recoveries++
		if !out.Consistent() {
			detail := out.Describe()
			if out.Verdict == oracle.Crashed && out.PanicTrace != "" {
				// Provide the recovery call trace for abrupt failures.
				detail += "\nrecovery trace:\n" + truncate(out.PanicTrace, 800)
			}
			stackID := sig.Stack
			if leaf != nil {
				stackID = leaf.Stack
			} else if inj != nil && inj.Fired != nil {
				stackID = inj.Fired.Stack
			}
			rep.Add(report.Finding{
				Kind:   report.CrashConsistency,
				ICount: sig.ICount,
				Stack:  stackID,
				Detail: detail,
			})
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n    ..."
}

package core

import (
	"fmt"
	"time"
	"unicode/utf8"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// maxNoProgress bounds consecutive stack-mode iterations that make no
// progress (the replay errors before any unvisited failure point fires).
// With a deterministic target one such failure implies every retry fails
// the same way, so a small bound suffices to avoid a livelock while
// still tolerating the occasional non-deterministic hiccup stack mode
// exists to serve.
const maxNoProgress = 3

// maxInjectionErrors caps the error strings sampled into
// Result.InjectionErrors; SkippedFailurePoints keeps the honest total.
const maxInjectionErrors = 8

// maxLeafRetries bounds the re-replays of a counter-mode leaf consumed
// with a transient skip (an errored replay, or a counter never reached),
// mirroring stack mode's maxNoProgress tolerance instead of giving up on
// the first hiccup. Deterministic targets converge to the same skip, so
// the bound costs at most two extra replays per genuinely dead leaf.
const maxLeafRetries = 2

// retryBackoff is the base pause between leaf retries; attempt k waits
// k×retryBackoff, giving a transient condition a moment to clear without
// slowing a deterministic failure down meaningfully.
const retryBackoff = time.Millisecond

// replayFuelSlack is the extra fuel granted to a counter-mode replay
// past the leaf's recorded instruction counter. A deterministic replay
// crashes at exactly FirstICount events, so anything beyond a small
// slack means the run diverged into unbounded PM activity.
const replayFuelSlack = 4096

// sandboxCfg carries the per-execution watchdog bounds of one campaign:
// the deterministic fuel budget, the recovery wall-clock timeout, and
// the campaign deadline (honoured mid-replay through the engine's
// wall-clock watchdog, not just between replays).
type sandboxCfg struct {
	budget   uint64
	timeout  time.Duration
	deadline time.Time
	// disabled restores the pre-sandbox execution path (panics
	// propagate, no watchdogs); reachable only from package-internal
	// differential tests proving the sandbox does not perturb reports.
	disabled bool
}

// sandbox derives the campaign watchdog bounds from the configuration.
func (cfg Config) sandbox(deadline time.Time) sandboxCfg {
	sb := sandboxCfg{
		budget:   cfg.HangBudget,
		timeout:  cfg.RecoveryTimeout,
		deadline: deadline,
		disabled: cfg.unsandboxed,
	}
	if sb.budget == 0 {
		sb.budget = DefaultHangBudget
	}
	if sb.timeout == 0 {
		sb.timeout = DefaultRecoveryTimeout
	}
	return sb
}

// execute runs one target execution under the campaign sandbox, or the
// strict pre-sandbox path when differential testing disabled it. The
// caller fills the watchdog fields of opts.
func execute(app harness.Application, w workload.Workload, opts pmem.Options,
	sb sandboxCfg, hooks ...pmem.Hook) (*pmem.Engine, harness.Outcome) {

	if sb.disabled {
		eng, sig, err := harness.Execute(app, w, opts, hooks...)
		return eng, harness.Outcome{Sig: sig, Err: err}
	}
	return harness.ExecuteSandboxed(app, w, opts, hooks...)
}

// boundedCheck runs the recovery oracle under the campaign watchdog. The
// second return reports that the campaign deadline — not the target's
// behaviour — cut the check short: such an outcome must become a budget
// expiry, never a finding.
func boundedCheck(app harness.Application, img *pmem.Image, sb sandboxCfg) (oracle.Outcome, bool) {
	if sb.disabled {
		return oracle.Check(app, img), false
	}
	wd := oracle.Watchdog{MaxEvents: sb.budget, Timeout: sb.timeout}
	capped := false
	if !sb.deadline.IsZero() {
		rem := time.Until(sb.deadline)
		if rem <= 0 {
			return oracle.Outcome{}, true
		}
		if rem < wd.Timeout {
			wd.Timeout = rem
			capped = true
		}
	}
	out := oracle.CheckBounded(app, img, wd)
	if out.Verdict == oracle.Hung && capped && (out.Hang == nil || out.Hang.Deadline) {
		// The wall clock fired while capped to the campaign's remaining
		// budget: attribute the stop to the budget. Only a fuel trip is
		// unambiguous target behaviour under a capped timeout.
		return out, true
	}
	return out, false
}

// panicDetail renders a sandbox-captured target panic for a finding.
func panicDetail(during string, p *harness.PanicInfo) string {
	return fmt.Sprintf("target panicked during %s: %v\ntarget trace:\n%s",
		during, p.Value, truncate(p.Trace, 800))
}

// hangDetail renders a fuel-budget kill for a finding. It mentions only
// the configured budget, never measured time, so reports stay
// deterministic.
func hangDetail(during string, h *pmem.HangSignal) string {
	return fmt.Sprintf("target terminated by the hang watchdog during %s: budget of %d PM events exhausted (possible non-termination or runaway PM allocation)",
		during, h.Budget)
}

// injectAll visits every unvisited leaf of the failure point tree,
// injecting one fault per unique failure point (steps 7-9 of Fig 1),
// and reports every crash state the recovery oracle rejects. It returns
// whether the deadline expired first.
//
// In the default counter mode the injector crashes at the leaf's
// recorded first-occurrence instruction counter — the §5 optimisation
// that works because the target is deterministic. Counter-mode replays
// are independent (each constructs a private engine), so the campaign
// fans out across cfg.Workers goroutines when asked to. In stack mode
// it re-matches call stacks, which needs stack capture on every replay
// but tolerates non-determinism; the stack-mode injector mutates the
// shared tree, so that campaign always runs serially.
//
// Every replay and recovery runs inside the sandbox: a foreign panic or
// a watchdog kill becomes a TargetCrash or RecoveryHang finding instead
// of crashing or stalling the tool.
func injectAll(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, deadline time.Time) (timedOut bool) {

	sb := cfg.sandbox(deadline)
	// One verdict cache per campaign: application, workload and recovery
	// configuration are fixed here, so entries are keyed by image
	// identity alone. The cache is shared across parallel workers.
	cache := newImageCache(cfg.imageCacheCapacity())
	defer func() {
		if cache != nil {
			res.ImageCacheEntries = cache.Len()
		}
	}()
	if cfg.StackMode {
		return injectStackSerial(app, w, tree, cfg, rep, res, sb, cache)
	}
	leaves := tree.Unvisited()
	if cfg.Workers > 1 && len(leaves) > 1 {
		return injectCounterParallel(app, w, leaves, tree.Stacks(), cfg, rep, res, sb, cache)
	}
	return injectCounterSerial(app, w, leaves, tree.Stacks(), cfg, rep, res, sb, cache)
}

// counterOutcome is the result of replaying one counter-mode leaf on a
// private engine. It carries everything the merge step needs, so that
// replays can run on any goroutine while the shared Result and Report
// are only ever touched in deterministic leaf order.
type counterOutcome struct {
	// executed is false when the replay never ran (deadline expired).
	executed bool
	// deadlineHit reports that the campaign deadline cut the replay or
	// its recovery mid-flight; the leaf is left unconsumed and the
	// campaign stops, exactly as if the deadline had expired between
	// replays.
	deadlineHit bool
	// events is the number of engine instruction events of the replay
	// (all attempts).
	events uint64
	// retries counts extra replay attempts after transient skips.
	retries int
	// injected reports that the replay reached the target counter and
	// crashed there.
	injected bool
	// recovered reports that the recovery oracle ran.
	recovered bool
	// skipReason is non-empty when the leaf was consumed without an
	// injection: the replay errored or never reached the counter.
	skipReason string
	// targetPanic and targetHang mark replays the sandbox stopped: the
	// target's own code panicked, or the fuel budget expired. The leaf
	// is consumed without an injection and finding reports the
	// behaviour.
	targetPanic bool
	targetHang  bool
	// recoveryHung marks an injected replay whose recovery the
	// watchdog classified as non-terminating.
	recoveryHung bool
	// cacheHit and cacheMiss record the verdict-cache consultation of a
	// recovered replay: a hit delivered a memoised verdict without
	// running recovery, a miss ran the oracle and populated the cache.
	// Both are false when caching is disabled.
	cacheHit  bool
	cacheMiss bool
	// finding is the resulting finding, if any: a crash-consistency
	// bug, a target crash, or a recovery hang.
	finding *report.Finding
}

// replayFuel bounds one counter-mode replay. The replay crashes at
// exactly leaf.FirstICount events when the target is deterministic, so
// the slack-padded counter is a far tighter (and still deterministic)
// budget than the campaign-wide one.
func replayFuel(budget, firstICount uint64) uint64 {
	fuel := firstICount + replayFuelSlack
	if fuel < firstICount { // overflow
		return budget
	}
	if budget != 0 && budget < fuel {
		return budget
	}
	return fuel
}

// replayLeaf runs one counter-mode fault injection: a fresh execution
// crashed at the leaf's first-occurrence instruction counter, followed
// by the recovery oracle over the graceful-crash image (§4.1). It is
// safe to call concurrently for different leaves: the engine, the crash
// image and the oracle's recovery engine are all private to the call,
// and the shared verdict cache is concurrency-safe.
func replayLeaf(app harness.Application, w workload.Workload, leaf *fpt.Leaf,
	stacks *stack.Table, sb sandboxCfg, cache *imageCache) counterOutcome {

	out := counterOutcome{executed: true}
	// Counter mode needs no hook at all: the engine crashes itself at
	// the recorded counter (§5's minimal instrumentation).
	opts := pmem.Options{Capture: pmem.CaptureNone, Stacks: stacks, CrashAt: leaf.FirstICount}
	if !sb.disabled {
		opts.MaxEvents = replayFuel(sb.budget, leaf.FirstICount)
		opts.Deadline = sb.deadline
	}
	eng, sres := execute(app, w, opts, sb)
	out.events = eng.Events()
	switch {
	case sres.Err != nil:
		// The workload failed before the failure point — the run
		// diverged (should not happen with deterministic targets).
		out.skipReason = fmt.Sprintf("replay failed before the failure point: %v", sres.Err)
		return out
	case sres.Panic != nil:
		out.targetPanic = true
		out.finding = &report.Finding{
			Kind:   report.TargetCrash,
			ICount: eng.ICount(),
			Stack:  leaf.Stack,
			Detail: panicDetail("a counter-mode replay", sres.Panic),
		}
		return out
	case sres.Hang != nil:
		if sres.Hang.Deadline {
			out.deadlineHit = true
			return out
		}
		out.targetHang = true
		out.finding = &report.Finding{
			Kind:   report.TargetCrash,
			ICount: eng.ICount(),
			Stack:  leaf.Stack,
			Detail: hangDetail("a counter-mode replay", sres.Hang),
		}
		return out
	case sres.Sig == nil:
		out.skipReason = "target instruction counter never reached on replay"
		return out
	}
	out.injected = true

	// Run the vanilla, uninstrumented recovery procedure over the
	// graceful-crash image (§4.1), bounded by the hang watchdog. The
	// verdict cache is consulted first: when an identical image was
	// already checked, the memoised verdict stands in for the recovery
	// run and the image is never even materialised.
	check, ddl, hit := cachedCheck(app, eng, sb, cache)
	if ddl {
		out.deadlineHit = true
		return out
	}
	out.recovered = true
	if cache != nil {
		out.cacheHit = hit
		out.cacheMiss = !hit
	}
	if !check.Consistent() {
		kind := report.CrashConsistency
		if check.Verdict == oracle.Hung {
			kind = report.RecoveryHang
			out.recoveryHung = true
		}
		detail := check.Describe()
		if check.Verdict == oracle.Crashed && check.PanicTrace != "" {
			// Provide the recovery call trace for abrupt failures.
			detail += "\nrecovery trace:\n" + truncate(check.PanicTrace, 800)
		}
		out.finding = &report.Finding{
			Kind:   kind,
			ICount: sres.Sig.ICount,
			Stack:  leaf.Stack,
			Detail: detail,
		}
	}
	return out
}

// replayLeafWithRetry replays a leaf, retrying a bounded number of times
// (with a small backoff) when the replay is consumed by a transient
// skip. Panics, hangs and deadline cuts are never retried: the first is
// already a finding, the others would only burn the remaining budget.
func replayLeafWithRetry(app harness.Application, w workload.Workload, leaf *fpt.Leaf,
	stacks *stack.Table, sb sandboxCfg, cache *imageCache) counterOutcome {

	out := replayLeaf(app, w, leaf, stacks, sb, cache)
	for attempt := 1; attempt <= maxLeafRetries && out.skipReason != ""; attempt++ {
		if !sb.deadline.IsZero() && !time.Now().Before(sb.deadline) {
			break
		}
		time.Sleep(time.Duration(attempt) * retryBackoff)
		next := replayLeaf(app, w, leaf, stacks, sb, cache)
		next.events += out.events
		next.retries = out.retries + 1
		out = next
	}
	return out
}

// consumeOutcome folds one leaf's replay outcome into the shared result
// and report, marking the leaf visited. Both the serial and the parallel
// campaign call it in FirstICount order, so the merged report is
// byte-identical regardless of scheduling.
func consumeOutcome(leaf *fpt.Leaf, out counterOutcome, rep *report.Report, res *Result) {
	leaf.Visited = true
	res.EngineEvents += out.events
	res.RetriedFailurePoints += out.retries
	if out.skipReason != "" {
		res.SkippedFailurePoints++
		res.addInjectionError(fmt.Sprintf("failure point #%d (instruction %d): %s",
			leaf.ID, leaf.FirstICount, out.skipReason))
		return
	}
	if out.targetPanic || out.targetHang {
		// The sandbox stopped the replay before the failure point: the
		// leaf is consumed without an injection, and the behaviour is a
		// finding rather than an error sample.
		if out.targetPanic {
			res.TargetPanics++
		} else {
			res.TargetHangs++
		}
		res.SkippedFailurePoints++
		rep.Add(*out.finding)
		return
	}
	res.Injections++
	if out.recovered {
		res.Recoveries++
	}
	if out.cacheHit {
		res.ImageCacheHits++
	}
	if out.cacheMiss {
		res.ImageCacheMisses++
	}
	if out.recoveryHung {
		res.RecoveryHangs++
	}
	if out.finding != nil {
		rep.Add(*out.finding)
	}
}

// injectCounterSerial replays the leaves one at a time in FirstICount
// order. It is the Workers<=1 path and the reference order the parallel
// campaign reproduces. The campaign deadline is honoured mid-replay: the
// replay engine carries it as a wall-clock watchdog, so a single long
// replay can no longer overshoot the budget arbitrarily.
func injectCounterSerial(app harness.Application, w workload.Workload, leaves []*fpt.Leaf,
	stacks *stack.Table, cfg Config, rep *report.Report, res *Result, sb sandboxCfg,
	cache *imageCache) (timedOut bool) {

	injected := 0
	for _, leaf := range leaves {
		if !sb.deadline.IsZero() && time.Now().After(sb.deadline) {
			return true
		}
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			return false
		}
		out := replayLeafWithRetry(app, w, leaf, stacks, sb, cache)
		if out.deadlineHit {
			return true
		}
		consumeOutcome(leaf, out, rep, res)
		if out.injected {
			injected++
		}
	}
	return false
}

// injectStackSerial is the stack-mode campaign: every iteration re-runs
// the workload with an injector hook that crashes at the first unvisited
// failure point whose call stack it re-encounters. The injector mutates
// the shared tree (marking leaves visited), so this campaign cannot fan
// out. Replays run inside the sandbox with the campaign watchdogs, like
// counter mode.
func injectStackSerial(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, sb sandboxCfg, cache *imageCache) (timedOut bool) {

	stacks := tree.Stacks()
	capture := pmem.CapturePersistency
	if cfg.Granularity == fpt.GranStore {
		capture = pmem.CaptureStores
	}
	injected := 0
	noProgress := 0
	// noProgressRetry bounds an unproductive iteration, aborting the
	// campaign once the tolerance is exhausted.
	noProgressRetry := func(format string, args ...any) (abort bool) {
		noProgress++
		res.addInjectionError(fmt.Sprintf(format, args...))
		if noProgress >= maxNoProgress {
			res.InjectionAborted = true
			return true
		}
		return false
	}
	for {
		if !sb.deadline.IsZero() && time.Now().After(sb.deadline) {
			return true
		}
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			return false
		}
		inj := &fpt.Injector{Tree: tree, StackMode: true, Granularity: cfg.Granularity}
		opts := pmem.Options{Capture: capture, Stacks: stacks}
		if !sb.disabled {
			opts.MaxEvents = sb.budget
			opts.Deadline = sb.deadline
		}
		eng, sres := execute(app, w, opts, sb, inj)
		res.EngineEvents += eng.Events()
		switch {
		case sres.Err != nil:
			// The workload failed before any unvisited failure point
			// fired: no leaf was consumed, so retrying the identical
			// deterministic run would loop forever. Bound the retries
			// and surface the abort instead.
			if noProgressRetry("stack-mode replay made no progress (attempt %d/%d): %v",
				noProgress+1, maxNoProgress, sres.Err) {
				return false
			}
			continue
		case sres.Panic != nil:
			res.TargetPanics++
			rep.Add(report.Finding{
				Kind:   report.TargetCrash,
				ICount: eng.ICount(),
				Stack:  stack.NoID,
				Detail: panicDetail("a stack-mode replay", sres.Panic),
			})
			if noProgressRetry("stack-mode replay panicked (attempt %d/%d)",
				noProgress+1, maxNoProgress) {
				return false
			}
			continue
		case sres.Hang != nil:
			if sres.Hang.Deadline {
				return true
			}
			res.TargetHangs++
			rep.Add(report.Finding{
				Kind:   report.TargetCrash,
				ICount: eng.ICount(),
				Stack:  stack.NoID,
				Detail: hangDetail("a stack-mode replay", sres.Hang),
			})
			if noProgressRetry("stack-mode replay exhausted its hang budget (attempt %d/%d)",
				noProgress+1, maxNoProgress) {
				return false
			}
			continue
		case sres.Sig == nil:
			// No unvisited failure point was reached; done.
			return false
		}
		noProgress = 0
		sig := sres.Sig
		injected++
		res.Injections++

		check, ddl, hit := cachedCheck(app, eng, sb, cache)
		if ddl {
			return true
		}
		res.Recoveries++
		if cache != nil {
			if hit {
				res.ImageCacheHits++
			} else {
				res.ImageCacheMisses++
			}
		}
		if !check.Consistent() {
			kind := report.CrashConsistency
			if check.Verdict == oracle.Hung {
				kind = report.RecoveryHang
				res.RecoveryHangs++
			}
			detail := check.Describe()
			if check.Verdict == oracle.Crashed && check.PanicTrace != "" {
				detail += "\nrecovery trace:\n" + truncate(check.PanicTrace, 800)
			}
			stackID := sig.Stack
			if inj.Fired != nil {
				stackID = inj.Fired.Stack
			}
			rep.Add(report.Finding{
				Kind:   kind,
				ICount: sig.ICount,
				Stack:  stackID,
				Detail: detail,
			})
		}
	}
}

// truncate shortens s to at most n bytes, backing off to the previous
// rune boundary so that a cut never emits invalid UTF-8 into reports
// (recovery panic traces may carry multi-byte runes).
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "\n    ..."
}

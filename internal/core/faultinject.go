package core

import (
	"fmt"
	"time"
	"unicode/utf8"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// maxNoProgress bounds consecutive stack-mode iterations that make no
// progress (the replay errors before any unvisited failure point fires).
// With a deterministic target one such failure implies every retry fails
// the same way, so a small bound suffices to avoid a livelock while
// still tolerating the occasional non-deterministic hiccup stack mode
// exists to serve.
const maxNoProgress = 3

// maxInjectionErrors caps the error strings sampled into
// Result.InjectionErrors; SkippedFailurePoints keeps the honest total.
const maxInjectionErrors = 8

// injectAll visits every unvisited leaf of the failure point tree,
// injecting one fault per unique failure point (steps 7-9 of Fig 1),
// and reports every crash state the recovery oracle rejects. It returns
// whether the deadline expired first.
//
// In the default counter mode the injector crashes at the leaf's
// recorded first-occurrence instruction counter — the §5 optimisation
// that works because the target is deterministic. Counter-mode replays
// are independent (each constructs a private engine), so the campaign
// fans out across cfg.Workers goroutines when asked to. In stack mode
// it re-matches call stacks, which needs stack capture on every replay
// but tolerates non-determinism; the stack-mode injector mutates the
// shared tree, so that campaign always runs serially.
func injectAll(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, deadline time.Time) (timedOut bool) {

	if cfg.StackMode {
		return injectStackSerial(app, w, tree, cfg, rep, res, deadline)
	}
	leaves := tree.Unvisited()
	if cfg.Workers > 1 && len(leaves) > 1 {
		return injectCounterParallel(app, w, leaves, tree.Stacks(), cfg, rep, res, deadline)
	}
	return injectCounterSerial(app, w, leaves, tree.Stacks(), cfg, rep, res, deadline)
}

// counterOutcome is the result of replaying one counter-mode leaf on a
// private engine. It carries everything the merge step needs, so that
// replays can run on any goroutine while the shared Result and Report
// are only ever touched in deterministic leaf order.
type counterOutcome struct {
	// executed is false when the replay never ran (deadline expired).
	executed bool
	// events is the number of engine instruction events of the replay.
	events uint64
	// injected reports that the replay reached the target counter and
	// crashed there.
	injected bool
	// recovered reports that the recovery oracle ran.
	recovered bool
	// skipReason is non-empty when the leaf was consumed without an
	// injection: the replay errored or never reached the counter.
	skipReason string
	// finding is the crash-consistency finding, if the oracle rejected
	// the post-failure state.
	finding *report.Finding
}

// replayLeaf runs one counter-mode fault injection: a fresh execution
// crashed at the leaf's first-occurrence instruction counter, followed
// by the recovery oracle over the graceful-crash image (§4.1). It is
// safe to call concurrently for different leaves: the engine, the crash
// image and the oracle's recovery engine are all private to the call.
func replayLeaf(app harness.Application, w workload.Workload, leaf *fpt.Leaf,
	stacks *stack.Table) counterOutcome {

	out := counterOutcome{executed: true}
	// Counter mode needs no hook at all: the engine crashes itself at
	// the recorded counter (§5's minimal instrumentation).
	opts := pmem.Options{Capture: pmem.CaptureNone, Stacks: stacks, CrashAt: leaf.FirstICount}
	eng, sig, err := harness.Execute(app, w, opts)
	out.events = eng.Events()
	if err != nil {
		// The workload failed before the failure point — the run
		// diverged (should not happen with deterministic targets).
		out.skipReason = fmt.Sprintf("replay failed before the failure point: %v", err)
		return out
	}
	if sig == nil {
		out.skipReason = "target instruction counter never reached on replay"
		return out
	}
	out.injected = true

	// Materialise the graceful-crash image and run the vanilla,
	// uninstrumented recovery procedure on it (§4.1).
	img := eng.PrefixImage()
	check := oracle.Check(app, img)
	out.recovered = true
	if !check.Consistent() {
		detail := check.Describe()
		if check.Verdict == oracle.Crashed && check.PanicTrace != "" {
			// Provide the recovery call trace for abrupt failures.
			detail += "\nrecovery trace:\n" + truncate(check.PanicTrace, 800)
		}
		out.finding = &report.Finding{
			Kind:   report.CrashConsistency,
			ICount: sig.ICount,
			Stack:  leaf.Stack,
			Detail: detail,
		}
	}
	return out
}

// consumeOutcome folds one leaf's replay outcome into the shared result
// and report, marking the leaf visited. Both the serial and the parallel
// campaign call it in FirstICount order, so the merged report is
// byte-identical regardless of scheduling.
func consumeOutcome(leaf *fpt.Leaf, out counterOutcome, rep *report.Report, res *Result) {
	leaf.Visited = true
	res.EngineEvents += out.events
	if out.skipReason != "" {
		res.SkippedFailurePoints++
		res.addInjectionError(fmt.Sprintf("failure point #%d (instruction %d): %s",
			leaf.ID, leaf.FirstICount, out.skipReason))
		return
	}
	res.Injections++
	if out.recovered {
		res.Recoveries++
	}
	if out.finding != nil {
		rep.Add(*out.finding)
	}
}

// injectCounterSerial replays the leaves one at a time in FirstICount
// order. It is the Workers<=1 path and the reference order the parallel
// campaign reproduces.
func injectCounterSerial(app harness.Application, w workload.Workload, leaves []*fpt.Leaf,
	stacks *stack.Table, cfg Config, rep *report.Report, res *Result, deadline time.Time) (timedOut bool) {

	injected := 0
	for _, leaf := range leaves {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return true
		}
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			return false
		}
		out := replayLeaf(app, w, leaf, stacks)
		consumeOutcome(leaf, out, rep, res)
		if out.injected {
			injected++
		}
	}
	return false
}

// injectStackSerial is the stack-mode campaign: every iteration re-runs
// the workload with an injector hook that crashes at the first unvisited
// failure point whose call stack it re-encounters. The injector mutates
// the shared tree (marking leaves visited), so this campaign cannot fan
// out.
func injectStackSerial(app harness.Application, w workload.Workload, tree *fpt.Tree,
	cfg Config, rep *report.Report, res *Result, deadline time.Time) (timedOut bool) {

	stacks := tree.Stacks()
	capture := pmem.CapturePersistency
	if cfg.Granularity == fpt.GranStore {
		capture = pmem.CaptureStores
	}
	injected := 0
	noProgress := 0
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return true
		}
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			return false
		}
		inj := &fpt.Injector{Tree: tree, StackMode: true, Granularity: cfg.Granularity}
		eng, sig, err := harness.Execute(app, w,
			pmem.Options{Capture: capture, Stacks: stacks}, inj)
		res.EngineEvents += eng.Events()
		if err != nil {
			// The workload failed before any unvisited failure point
			// fired: no leaf was consumed, so retrying the identical
			// deterministic run would loop forever. Bound the retries
			// and surface the abort instead.
			noProgress++
			res.addInjectionError(fmt.Sprintf(
				"stack-mode replay made no progress (attempt %d/%d): %v",
				noProgress, maxNoProgress, err))
			if noProgress >= maxNoProgress {
				res.InjectionAborted = true
				return false
			}
			continue
		}
		noProgress = 0
		if sig == nil {
			// No unvisited failure point was reached; done.
			return false
		}
		injected++
		res.Injections++

		img := eng.PrefixImage()
		out := oracle.Check(app, img)
		res.Recoveries++
		if !out.Consistent() {
			detail := out.Describe()
			if out.Verdict == oracle.Crashed && out.PanicTrace != "" {
				detail += "\nrecovery trace:\n" + truncate(out.PanicTrace, 800)
			}
			stackID := sig.Stack
			if inj.Fired != nil {
				stackID = inj.Fired.Stack
			}
			rep.Add(report.Finding{
				Kind:   report.CrashConsistency,
				ICount: sig.ICount,
				Stack:  stackID,
				Detail: detail,
			})
		}
	}
}

// truncate shortens s to at most n bytes, backing off to the previous
// rune boundary so that a cut never emits invalid UTF-8 into reports
// (recovery panic traces may carry multi-byte runes).
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "\n    ..."
}

package core

import (
	"errors"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// failingApp wraps a target so that every execution fails before any PM
// instruction, deterministically — the worst case for a campaign that
// assumes replays reproduce the instrumented run.
type failingApp struct{ harness.Application }

func (failingApp) Setup(e *pmem.Engine) error {
	return errors.New("deterministic setup failure")
}

// buildTree runs the phase-1 instrumented execution and returns the
// failure point tree, mirroring what Analyze does before injection.
func buildTree(t *testing.T, app harness.Application, w workload.Workload) (*fpt.Tree, *stack.Table) {
	t.Helper()
	stacks := stack.NewTable()
	tree := fpt.New(stacks)
	builder := fpt.NewBuilder(tree, fpt.GranPersistency)
	_, sig, err := harness.Execute(app, w,
		pmem.Options{Capture: pmem.CapturePersistency, Stacks: stacks}, builder)
	if err != nil || sig != nil {
		t.Fatalf("instrumented run: err=%v sig=%v", err, sig)
	}
	if tree.Len() == 0 {
		t.Fatal("instrumented run produced no failure points")
	}
	return tree, stacks
}

func testTarget() harness.Application {
	return btree.New(apps.Config{SPT: true, PoolSize: 1 << 20})
}

func testWorkload() workload.Workload {
	return workload.Generate(workload.Config{N: 60, Seed: 7, Keyspace: 20})
}

// TestCounterModeCountsUnreachedCounter plants a leaf whose recorded
// instruction counter lies beyond the end of the run: the replay
// completes without crashing, and the campaign must consume the leaf as
// skipped instead of silently dropping it.
func TestCounterModeCountsUnreachedCounter(t *testing.T) {
	app, w := testTarget(), testWorkload()
	tree, stacks := buildTree(t, app, w)
	fake := stacks.Intern([]uintptr{0xdead})
	if _, added := tree.Insert(fake, 1<<40); !added {
		t.Fatal("unreachable leaf not inserted")
	}

	rep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
	res := &Result{Report: rep}
	timedOut, err := injectAll(app, w, tree, Config{}, rep, res, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("unexpected timeout")
	}
	if res.SkippedFailurePoints != 1 {
		t.Fatalf("SkippedFailurePoints = %d, want 1", res.SkippedFailurePoints)
	}
	if res.Injections != tree.Len()-1 {
		t.Fatalf("Injections = %d, want %d", res.Injections, tree.Len()-1)
	}
	if len(res.InjectionErrors) != 1 || !strings.Contains(res.InjectionErrors[0], "never reached") {
		t.Fatalf("InjectionErrors = %q, want one never-reached entry", res.InjectionErrors)
	}
	if res.Claims.Remaining() != 0 {
		t.Fatalf("%d leaves left unclaimed", res.Claims.Remaining())
	}
}

// TestCounterModeCountsFailedReplays drives the campaign with a target
// whose replays deterministically error: every leaf must be consumed and
// counted as skipped — serially and in parallel, with identical totals.
func TestCounterModeCountsFailedReplays(t *testing.T) {
	app, w := testTarget(), testWorkload()
	for _, workers := range []int{0, 4} {
		tree, stacks := buildTree(t, app, w)
		rep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
		res := &Result{Report: rep}
		bad := failingApp{app}
		timedOut, err := injectAll(bad, w, tree, Config{Workers: workers}, rep, res, time.Time{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if timedOut {
			t.Fatal("unexpected timeout")
		}
		if res.Injections != 0 || res.Recoveries != 0 {
			t.Fatalf("workers=%d: Injections=%d Recoveries=%d, want 0/0", workers, res.Injections, res.Recoveries)
		}
		if res.SkippedFailurePoints != tree.Len() {
			t.Fatalf("workers=%d: SkippedFailurePoints = %d, want %d", workers, res.SkippedFailurePoints, tree.Len())
		}
		if len(res.InjectionErrors) == 0 || len(res.InjectionErrors) > maxInjectionErrors {
			t.Fatalf("workers=%d: InjectionErrors has %d entries, want 1..%d",
				workers, len(res.InjectionErrors), maxInjectionErrors)
		}
	}
}

// TestStackModeAbortsAfterNoProgress regresses the stack-mode livelock:
// a replay that errors before reaching any unvisited failure point used
// to retry the identical deterministic run forever. The campaign must
// abort after a bounded number of no-progress attempts and surface the
// error.
func TestStackModeAbortsAfterNoProgress(t *testing.T) {
	app, w := testTarget(), testWorkload()
	tree, stacks := buildTree(t, app, w)
	rep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
	res := &Result{Report: rep}
	bad := failingApp{app}
	// A short deadline turns a regressed livelock into a test failure
	// (timedOut=true) instead of a hang.
	deadline := time.Now().Add(30 * time.Second)
	timedOut, err := injectAll(bad, w, tree, Config{StackMode: true}, rep, res, deadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("campaign hit the deadline: no-progress retries were not bounded")
	}
	if !res.InjectionAborted {
		t.Fatal("InjectionAborted not set after repeated no-progress replays")
	}
	if len(res.InjectionErrors) != maxNoProgress {
		t.Fatalf("InjectionErrors has %d entries, want %d", len(res.InjectionErrors), maxNoProgress)
	}
}

func TestTruncateRuneBoundary(t *testing.T) {
	multi := strings.Repeat("é", 600) // 2-byte rune: every odd index splits it
	for _, n := range []int{1, 2, 3, 799, 800, 801} {
		got := truncate(multi, n)
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%d) emitted invalid UTF-8: %q...", n, got[:8])
		}
		if !strings.HasSuffix(got, "...") {
			t.Errorf("truncate(%d) lost the ellipsis marker", n)
		}
	}
	if got := truncate("short", 800); got != "short" {
		t.Errorf("truncate left short string %q", got)
	}
	exact := strings.Repeat("a", 800)
	if got := truncate(exact, 800); got != exact {
		t.Errorf("truncate modified string of exactly n bytes")
	}
}

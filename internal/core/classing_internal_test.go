package core

import (
	"testing"

	"mumak/internal/apps/btree"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/stack"
)

// TestClassingStampMatchesReplayHash pins the tentpole invariant behind
// phase-1 classing: the rolling prefix hash the builder reads when a
// leaf is created equals the PrefixImageHash a replay crashed at that
// leaf's counter computes — the engine crashes before the failure-point
// instruction mutates anything, so the stamp and the replay see the
// same persisted prefix. If this drifts, classes group leaves whose
// crash images differ and the differential suite fails loudly; this
// test localises the breakage to the stamping layer.
func TestClassingStampMatchesReplayHash(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSeeded(btree.BugCountOutsideTx)) }
	w := testWorkload()
	stacks := stack.NewTable()
	tree := fpt.New(stacks)
	builder := fpt.NewBuilder(tree, fpt.GranPersistency)
	_, sig, err := harness.Execute(mk(), w, pmem.Options{
		Capture: pmem.CapturePersistency, Stacks: stacks, TrackPrefixHash: true,
	}, builder)
	if err != nil || sig != nil {
		t.Fatalf("instrumented run: sig=%v err=%v", sig, err)
	}
	leaves := tree.LeavesByICount()
	if len(leaves) == 0 {
		t.Fatal("instrumented run produced no failure points")
	}
	// Bound the replay count; the spread still covers early, middle and
	// late prefixes.
	stride := len(leaves)/32 + 1
	checked := 0
	for i := 0; i < len(leaves); i += stride {
		leaf := leaves[i]
		if leaf.ImageSize == 0 {
			t.Fatalf("leaf at instruction %d was not stamped", leaf.FirstICount)
		}
		eng, sig, err := harness.Execute(mk(), w, pmem.Options{CrashAt: leaf.FirstICount})
		if err != nil || sig == nil {
			t.Fatalf("replay at %d: sig=%v err=%v", leaf.FirstICount, sig, err)
		}
		if got := eng.PrefixImageHash(); got != leaf.ImageHash || eng.Size() != leaf.ImageSize {
			t.Fatalf("leaf at instruction %d: stamp (%#x, %d) != replay image (%#x, %d)",
				leaf.FirstICount, leaf.ImageHash, leaf.ImageSize, got, eng.Size())
		}
		checked++
	}
	t.Logf("verified %d of %d leaf stamps against from-scratch replays", checked, len(leaves))
}

package core_test

import (
	"testing"

	"mumak/internal/core"
	"mumak/internal/pmem"
	"mumak/internal/report"
)

// feed pushes synthetic events through the online analyzer and returns
// the findings.
func feed(cfg core.Config, evs []pmem.Event) ([]*report.Finding, *core.Analyzer) {
	a := core.NewAnalyzer(cfg)
	for i := range evs {
		a.OnEvent(&evs[i])
	}
	return a.Finalize(), a
}

func kinds(fs []*report.Finding) map[report.Kind]int {
	out := map[report.Kind]int{}
	for _, f := range fs {
		out[f.Kind]++
	}
	return out
}

// A cached store fully overwritten by a non-temporal store is persisted
// by the NT write's fence: the stale pending entry must not surface as a
// durability bug (the line is flushed elsewhere in the execution) — the
// NT-store blind spot this PR fixes.
func TestNTStoreClearsStaleUnflushedStore(t *testing.T) {
	fs, _ := feed(core.Config{KeepWarnings: true}, []pmem.Event{
		{ICount: 1, Op: pmem.OpStore, Addr: 0x1000, Size: 8},
		{ICount: 2, Op: pmem.OpCLWB, Addr: 0x1000, Size: 64},
		{ICount: 3, Op: pmem.OpSFence},
		{ICount: 4, Op: pmem.OpStore, Addr: 0x1000, Size: 8},
		{ICount: 5, Op: pmem.OpNTStore, Addr: 0x1000, Size: 8},
		{ICount: 6, Op: pmem.OpSFence},
	})
	got := kinds(fs)
	if got[report.Durability] != 0 {
		t.Fatalf("NT-covered store reported as durability bug: %v", fs)
	}
	if got[report.WarnTransientData] != 0 {
		t.Fatalf("NT-covered store reported as transient data: %v", fs)
	}
}

// Same blind spot on a never-flushed line: without the fix the store at
// icount 1 lingers in the pending set and is flagged as transient data.
func TestNTStoreClearsTransientDataWarning(t *testing.T) {
	fs, _ := feed(core.Config{KeepWarnings: true}, []pmem.Event{
		{ICount: 1, Op: pmem.OpStore, Addr: 0x2000, Size: 16},
		{ICount: 2, Op: pmem.OpNTStore, Addr: 0x2000, Size: 16},
		{ICount: 3, Op: pmem.OpSFence},
	})
	if len(fs) != 0 {
		t.Fatalf("clean store+NT-overwrite sequence produced findings: %v", kinds(fs))
	}
}

// Partial NT coverage must clear only the covered bytes: the rest of the
// store is still unpersisted and the transient-data pattern still fires.
func TestNTStorePartialCoverageKeepsPattern(t *testing.T) {
	fs, _ := feed(core.Config{KeepWarnings: true}, []pmem.Event{
		{ICount: 1, Op: pmem.OpStore, Addr: 0x3000, Size: 16},
		{ICount: 2, Op: pmem.OpNTStore, Addr: 0x3000, Size: 8}, // covers half
		{ICount: 3, Op: pmem.OpSFence},
	})
	if got := kinds(fs); got[report.WarnTransientData] != 1 {
		t.Fatalf("partially covered store not reported as transient data: %v", got)
	}
}

// A flush of a line whose only writes were non-temporal persists nothing
// the NT fence would not: recognised as redundant, but advisory only —
// persisting a range over NT-zeroed blocks is a common library idiom.
func TestFlushOfNTOnlyLineWarns(t *testing.T) {
	fs, _ := feed(core.Config{KeepWarnings: true}, []pmem.Event{
		{ICount: 1, Op: pmem.OpNTStore, Addr: 0x4000, Size: 64},
		{ICount: 2, Op: pmem.OpSFence},
		{ICount: 3, Op: pmem.OpCLWB, Addr: 0x4000, Size: 64},
		{ICount: 4, Op: pmem.OpSFence},
	})
	got := kinds(fs)
	if got[report.WarnRedundantNTFlush] != 1 {
		t.Fatalf("flush of NT-only line not recognised: %v", got)
	}
	if got[report.RedundantFlush] != 0 {
		t.Fatalf("flush of NT-only line escalated to a bug: %v", got)
	}
	for _, f := range fs {
		if f.Kind == report.WarnRedundantNTFlush && f.ICount != 3 {
			t.Fatalf("warning anchored at icount %d, want 3", f.ICount)
		}
	}
}

// The pre-existing NT pattern is preserved: a non-temporal store never
// followed by any fence has no durability guarantee.
func TestUnfencedNTStoreStillReported(t *testing.T) {
	fs, _ := feed(core.Config{}, []pmem.Event{
		{ICount: 1, Op: pmem.OpNTStore, Addr: 0x5000, Size: 8},
	})
	if got := kinds(fs); got[report.Durability] != 1 {
		t.Fatalf("unfenced NT store not reported: %v", got)
	}
}

// Redundant flushes and fences are detected online, exactly as the
// offline pass detected them.
func TestStreamingDetectsRedundantFlushAndFence(t *testing.T) {
	fs, _ := feed(core.Config{}, []pmem.Event{
		{ICount: 1, Op: pmem.OpStore, Addr: 0x6000, Size: 8},
		{ICount: 2, Op: pmem.OpCLWB, Addr: 0x6000, Size: 64},
		{ICount: 3, Op: pmem.OpSFence},
		{ICount: 4, Op: pmem.OpCLWB, Addr: 0x6000, Size: 64}, // nothing new to write back
		{ICount: 5, Op: pmem.OpSFence},
		{ICount: 6, Op: pmem.OpSFence}, // nothing pending at all
	})
	got := kinds(fs)
	if got[report.RedundantFlush] != 1 || got[report.RedundantFence] != 1 {
		t.Fatalf("redundant flush/fence not detected: %v", got)
	}
}

// The analyzer's working set must be proportional to live cache lines,
// not trace length: hammering one line for many persist cycles keeps the
// peak state constant.
func TestAnalyzerStateStaysFlat(t *testing.T) {
	a := core.NewAnalyzer(core.Config{})
	ic := uint64(0)
	next := func() uint64 { ic++; return ic }
	for i := 0; i < 10000; i++ {
		evs := []pmem.Event{
			{ICount: next(), Op: pmem.OpStore, Addr: 0x7000, Size: 8},
			{ICount: next(), Op: pmem.OpCLWB, Addr: 0x7000, Size: 64},
			{ICount: next(), Op: pmem.OpSFence},
		}
		for j := range evs {
			a.OnEvent(&evs[j])
		}
	}
	if a.PeakLiveLines() != 1 {
		t.Fatalf("peak live lines = %d, want 1", a.PeakLiveLines())
	}
	if a.PeakStateBytes() > 1024 {
		t.Fatalf("peak state = %d bytes for a single-line workload", a.PeakStateBytes())
	}
	if a.Events() != 30000 {
		t.Fatalf("events = %d, want 30000", a.Events())
	}
}

// Phase-1 crash-image equivalence classing.
//
// During the instrumented run the engine maintains a rolling hash of
// the graceful-crash prefix image (pmem.Options.TrackPrefixHash), and
// the failure-point-tree builder stamps every new leaf with its
// prospective (imageHash, size) key — the exact key the replay's
// verdict cache would compute after crashing at that leaf. The
// injection campaign can therefore group leaves into equivalence
// classes BEFORE any replay runs: leaves whose stamps match would
// materialise byte-identical crash images, and the deterministic
// recovery oracle necessarily returns the same verdict for all of
// them.
//
// The scheduler replays exactly one representative per class (restore
// + gap replay + recovery as before) and lets the remaining members
// inherit the representative's memoised verdict without touching the
// engine at all — the replay itself is avoided, not just the recovery
// run the image cache already skipped. Inherited findings are re-keyed
// to the member's own FirstICount and call stack, exactly as a cache
// hit re-keys them, so the merged report stays byte-identical to an
// unclassed campaign, serial and parallel, counter and stack mode.
//
// Classing is sound exactly where the image cache is sound: identical
// persisted prefix image implies identical recovery verdict, which
// holds whenever the recovery procedure is a deterministic function of
// the image (DESIGN.md item 14 discusses when it is not).
package core

import (
	"mumak/internal/fpt"
	"mumak/internal/oracle"
	"mumak/internal/report"
	"mumak/internal/stack"
)

// classPlan is the immutable grouping of the frozen tree's leaves into
// crash-image equivalence classes, built once before the campaign
// starts and shared read-only across workers.
type classPlan struct {
	// keys maps leaf ID to its stamped image key.
	keys map[int]imageKey
	// reps maps each class key to the ID of its representative: the
	// class member with the lowest FirstICount, i.e. the first one the
	// deterministic merge order consumes.
	reps map[imageKey]int
	// classes is the number of distinct classes.
	classes int
}

// buildClassPlan groups the frozen tree's leaves by their phase-1 image
// stamps. It returns nil — classing off — when the tree is empty or any
// leaf is unstamped (an artifact predating stamping, or a phase 1 run
// without TrackPrefixHash): a partial plan would replay some members
// live and inherit others depending on which happened to be stamped,
// and all-or-nothing keeps the schedule deterministic.
func buildClassPlan(tree *fpt.Tree) *classPlan {
	ordered := tree.LeavesByICount()
	if len(ordered) == 0 {
		return nil
	}
	p := &classPlan{
		keys: make(map[int]imageKey, len(ordered)),
		reps: make(map[imageKey]int, len(ordered)),
	}
	for _, leaf := range ordered {
		if leaf.ImageSize == 0 {
			return nil
		}
		k := imageKey{hash: leaf.ImageHash, size: leaf.ImageSize}
		p.keys[leaf.ID] = k
		if _, ok := p.reps[k]; !ok {
			p.reps[k] = leaf.ID
			p.classes++
		}
	}
	return p
}

// key returns the leaf's stamped image key.
func (p *classPlan) key(leaf *fpt.Leaf) imageKey {
	return p.keys[leaf.ID]
}

// isRep reports whether the leaf is its class's representative.
func (p *classPlan) isRep(leaf *fpt.Leaf) bool {
	return p.reps[p.keys[leaf.ID]] == leaf.ID
}

// classVerdict is the per-class outcome template members inherit: the
// representative's finding (nil when its image recovered clean) and
// whether recovery hung. Captured by the merge loop from the first
// injected-and-recovered outcome of each class, so it exists by the
// time any member of that class is merged.
type classVerdict struct {
	finding      *report.Finding
	recoveryHung bool
}

// inheritOutcome materialises a class member's outcome from its class
// verdict without replaying anything: no engine runs (zero events), no
// recovery runs (not recovered, so Recoveries counts one oracle
// consultation per class), and the finding — when the class has one —
// is re-keyed to the member's own FirstICount and call stack, exactly
// how a cache hit re-keys the memoised verdict today. Members still
// count as injected: the class representative proved the failure point
// reachable and judged its crash image.
func inheritOutcome(leaf *fpt.Leaf, v *classVerdict) replayOutcome {
	out := replayOutcome{
		executed:     true,
		injected:     true,
		inherited:    true,
		recoveryHung: v.recoveryHung,
		imageHash:    leaf.ImageHash,
	}
	if v.finding != nil {
		f := *v.finding
		f.ICount = leaf.FirstICount
		f.Stack = leaf.Stack
		out.finding = &f
	}
	return out
}

// elideOutcome materialises a class representative's outcome from a
// verdict-cache hit on its phase-1 stamp, skipping the replay entirely
// (checkpoint restore, gap replay and image materialisation included).
// The hit plays out exactly like the post-replay cache hit it
// replaces — recovered, cacheHit, same finding re-keying — plus the
// replayElided marker; seeded attributes the hit to a cross-run
// verdict-cache file.
func elideOutcome(leaf *fpt.Leaf, check oracle.Outcome, seeded bool) replayOutcome {
	out := replayOutcome{
		executed:      true,
		injected:      true,
		recovered:     true,
		cacheHit:      true,
		replayElided:  true,
		persistentHit: seeded,
		imageHash:     leaf.ImageHash,
	}
	applyVerdict(check, leaf.FirstICount, leaf.Stack, &out)
	return out
}

// replayClassed is the worker-side classing fast path shared by the
// serial and parallel drivers. With no plan it falls through to the
// live replay. A class member never replays on a worker: its verdict is
// resolved at merge time (mergeState.dispatch), when its
// representative's outcome has necessarily been merged — the
// placeholder pendingInherit outcome defers it there. A representative
// whose stamped key is already in the verdict cache (warm persistent
// cache, resumed snapshot) elides its replay outright; the pre-check is
// scheduling-independent because live replays only ever store keys of
// their own class, and a class's first consultation is always its
// representative.
func replayClassed(plan *classPlan, cache *imageCache, leaf *fpt.Leaf,
	live func() replayOutcome) replayOutcome {

	if plan == nil {
		return live()
	}
	if !plan.isRep(leaf) {
		return replayOutcome{executed: true, pendingInherit: true}
	}
	if cache != nil {
		if check, seeded, ok := cache.lookup(plan.key(leaf)); ok {
			return elideOutcome(leaf, check, seeded)
		}
	}
	return live()
}

// dispatch resolves one claimed leaf into an outcome on the merge
// goroutine: the serial driver's only path, and the parallel merge
// loop's resolution of pendingInherit placeholders. A member whose
// class verdict was captured inherits it; a member whose representative
// produced no verdict (quarantined, deadline-released, panicked) falls
// back to a live replay, which then behaves exactly like the unclassed
// campaign would — including hitting the verdict cache if a fallback
// sibling already populated the class key.
func (m *mergeState) dispatch(leaf *fpt.Leaf) replayOutcome {
	if m.plan == nil {
		return m.replayer(leaf)
	}
	if !m.plan.isRep(leaf) {
		if v := m.classes[m.plan.key(leaf)]; v != nil {
			return inheritOutcome(leaf, v)
		}
		return m.replayer(leaf)
	}
	if m.cache != nil {
		if check, seeded, ok := m.cache.lookup(m.plan.key(leaf)); ok {
			return elideOutcome(leaf, check, seeded)
		}
	}
	return m.replayer(leaf)
}

// applyVerdict folds one recovery-oracle outcome into a replay outcome:
// the shared verdict tail of live replays, elided representatives and
// (indirectly, via the captured finding) inherited members. The finding
// is keyed by the consuming leaf's own first-occurrence counter and
// call stack.
func applyVerdict(check oracle.Outcome, icount uint64, stk stack.ID, out *replayOutcome) {
	if check.Consistent() {
		return
	}
	kind := report.CrashConsistency
	if check.Verdict == oracle.Hung {
		kind = report.RecoveryHang
		out.recoveryHung = true
	}
	detail := check.Describe()
	if check.Verdict == oracle.Crashed && check.PanicTrace != "" {
		// Provide the recovery call trace for abrupt failures.
		detail += "\nrecovery trace:\n" + truncate(check.PanicTrace, 800)
	}
	out.finding = &report.Finding{
		Kind:   kind,
		ICount: icount,
		Stack:  stk,
		Detail: detail,
	}
}

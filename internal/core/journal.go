// Campaign journal plumbing: the deterministic merge loop publishes one
// durable record per consumed failure point and periodically snapshots
// campaign state; a resumed run folds the journaled prefix back through
// the same merge step without re-executing a single replay.
//
// Why this yields byte-identical reports: the merge loop (serial and
// parallel alike) consumes leaves strictly in FirstICount order, so the
// journal is always a prefix of the deterministic campaign over the
// tree the (deterministic) instrumented run rebuilds. Folding record i
// into leaf i of LeavesByICount applies exactly the state transitions
// the original consume did — findings, quarantines, counters, the cap
// and the stack-mode no-progress abort — and the continuation replays
// the remaining leaves exactly as an uninterrupted run would have.
package core

import (
	"bytes"
	"errors"
	"fmt"

	"mumak/internal/campaign"
	"mumak/internal/fpt"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
)

// DefaultSnapshotEvery is the default number of consumed failure points
// between campaign snapshots (Config.SnapshotEvery overrides it).
// Correctness never depends on snapshot frequency — resume folds the
// journal records — so the cadence only trades snapshot I/O against how
// much verdict-cache warmth a crash loses.
const DefaultSnapshotEvery = 128

// snapshotEvery resolves Config.SnapshotEvery: the default when zero,
// disabled (0, final snapshot only) when negative.
func (cfg Config) snapshotEvery() int {
	switch {
	case cfg.SnapshotEvery < 0:
		return 0
	case cfg.SnapshotEvery == 0:
		return DefaultSnapshotEvery
	default:
		return cfg.SnapshotEvery
	}
}

// recordOutcome flattens one consumed leaf's replay outcome into a
// durable journal record.
func recordOutcome(leaf *fpt.Leaf, out replayOutcome) campaign.Record {
	rec := campaign.Record{
		LeafID:        leaf.ID,
		LeafICount:    leaf.FirstICount,
		Events:        out.events,
		Retries:       out.retries,
		Injected:      out.injected,
		Restored:      out.restored,
		Recovered:     out.recovered,
		RecoveryHung:  out.recoveryHung,
		TargetPanic:   out.targetPanic,
		TargetHang:    out.targetHang,
		CacheHit:      out.cacheHit,
		CacheMiss:     out.cacheMiss,
		Inherited:     out.inherited,
		ReplayElided:  out.replayElided,
		PersistentHit: out.persistentHit,
		SkipReason:    out.skipReason,
		ImageHash:     out.imageHash,
	}
	if out.finding != nil {
		rec.HasFinding = true
		rec.FindingKind = uint8(out.finding.Kind)
		rec.FindingICount = out.finding.ICount
		rec.FindingAddr = out.finding.Addr
		rec.FindingDetail = out.finding.Detail
	}
	return rec
}

// outcomeFromRecord reconstructs the replay outcome a journal record
// documents, for the leaf of the rebuilt tree it matched. The finding's
// call stack is the leaf's: every replay-phase finding carries its
// leaf's stack, and leaf stacks are re-derived deterministically, so
// the reconstruction renders byte-identically.
func outcomeFromRecord(rec campaign.Record, leaf *fpt.Leaf) replayOutcome {
	out := replayOutcome{
		executed:      true,
		events:        rec.Events,
		retries:       rec.Retries,
		injected:      rec.Injected,
		restored:      rec.Restored,
		recovered:     rec.Recovered,
		recoveryHung:  rec.RecoveryHung,
		targetPanic:   rec.TargetPanic,
		targetHang:    rec.TargetHang,
		cacheHit:      rec.CacheHit,
		cacheMiss:     rec.CacheMiss,
		inherited:     rec.Inherited,
		replayElided:  rec.ReplayElided,
		persistentHit: rec.PersistentHit,
		skipReason:    rec.SkipReason,
		imageHash:     rec.ImageHash,
	}
	if rec.HasFinding {
		out.finding = &report.Finding{
			Kind:   report.Kind(rec.FindingKind),
			ICount: rec.FindingICount,
			Addr:   rec.FindingAddr,
			Stack:  leaf.Stack,
			Detail: rec.FindingDetail,
		}
	}
	return out
}

// encodeCacheEntry flattens one verdict-cache entry for a snapshot. The
// oracle outcome's error and panic value become their rendered strings,
// which is exactly what Describe interpolates — a decoded entry renders
// byte-for-byte like the live one.
func encodeCacheEntry(k imageKey, out oracle.Outcome) campaign.CacheEntry {
	e := campaign.CacheEntry{
		Hash:            k.hash,
		Size:            k.size,
		Verdict:         uint8(out.Verdict),
		PanicTrace:      out.PanicTrace,
		BoundsMaxEvents: out.Bounds.MaxEvents,
		BoundsTimeout:   out.Bounds.Timeout,
	}
	if out.Err != nil {
		e.HasErr = true
		e.ErrMsg = out.Err.Error()
	}
	if out.PanicValue != nil {
		e.HasPanic = true
		e.PanicValue = fmt.Sprint(out.PanicValue)
	}
	if out.Hang != nil {
		e.HasHang = true
		e.HangICount = out.Hang.ICount
		e.HangBudget = out.Hang.Budget
		e.HangDeadline = out.Hang.Deadline
	}
	return e
}

// decodeCacheEntry reconstructs the detached oracle outcome of a
// snapshot cache entry.
func decodeCacheEntry(e campaign.CacheEntry) (imageKey, oracle.Outcome) {
	out := oracle.Outcome{
		Verdict:    oracle.Verdict(e.Verdict),
		PanicTrace: e.PanicTrace,
		Bounds:     oracle.Watchdog{MaxEvents: e.BoundsMaxEvents, Timeout: e.BoundsTimeout},
	}
	if e.HasErr {
		out.Err = errors.New(e.ErrMsg)
	}
	if e.HasPanic {
		out.PanicValue = e.PanicValue
	}
	if e.HasHang {
		out.Hang = &pmem.HangSignal{ICount: e.HangICount, Budget: e.HangBudget, Deadline: e.HangDeadline}
	}
	return imageKey{hash: e.Hash, size: e.Size}, out
}

// fold replays the journaled prefix through the merge state without
// executing anything: each record is matched to the rebuilt tree's next
// unexplored leaf in FirstICount order (the cross-process leaf key),
// claimed, and consumed exactly as the original merge did. It reports
// whether the folded prefix already ended the campaign (stack-mode
// no-progress abort), and errors when the journal does not match this
// run's tree — resuming under a different target, workload or injection
// mode would silently corrupt the report.
func (m *mergeState) fold(st *campaign.State) (aborted bool, err error) {
	if len(st.Records) == 0 {
		return false, nil
	}
	ordered := m.tree.LeavesByICount()
	if len(st.Records) > len(ordered) {
		return false, fmt.Errorf("campaign journal holds %d verdicts but this run found only %d failure points (target, workload or flags changed since the journal was recorded)",
			len(st.Records), len(ordered))
	}
	m.folding = true
	defer func() { m.folding = false }()
	for i, rec := range st.Records {
		leaf := ordered[i]
		if leaf.FirstICount != rec.LeafICount {
			return false, fmt.Errorf("campaign journal diverges at verdict %d: the journal's failure point first occurs at instruction %d, this run's at %d (target, workload or flags changed since the journal was recorded)",
				i, rec.LeafICount, leaf.FirstICount)
		}
		m.cs.Claim(leaf)
		m.res.ResumedFailurePoints++
		if m.consume(leaf, outcomeFromRecord(rec, leaf)) {
			return true, nil
		}
	}
	return false, nil
}

// publish durably appends one consumed leaf's record and, every
// snapEvery records, refreshes the snapshot. A journal write failure
// degrades the campaign to unjournaled (recorded in Result.JournalError)
// instead of aborting it: losing resumability must not lose the run.
func (m *mergeState) publish(leaf *fpt.Leaf, out replayOutcome) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Append(recordOutcome(leaf, out)); err != nil {
		m.res.JournalError = err.Error()
		m.journal = nil
		return
	}
	m.res.JournalAppends++
	m.sinceSnap++
	if m.snapEvery > 0 && m.sinceSnap >= m.snapEvery {
		m.writeSnapshot()
		m.sinceSnap = 0
	}
}

// writeSnapshot atomically persists the campaign state covering the
// consumed prefix. A snapshot failure only disables further snapshots —
// the journal alone is sufficient for resume.
func (m *mergeState) writeSnapshot() {
	if m.journal == nil {
		return
	}
	snap, err := m.buildSnapshot()
	if err == nil {
		err = m.journal.WriteSnapshot(snap)
	}
	if err != nil {
		if m.res.JournalError == "" {
			m.res.JournalError = err.Error()
		}
		m.snapEvery = 0
		return
	}
	m.res.JournalSnapshots++
}

// finalSnapshot persists the campaign's end state however the campaign
// ended — completion, budget expiry, interruption, cap, abort. Deferred
// from injectAll.
func (m *mergeState) finalSnapshot() {
	m.writeSnapshot()
}

// buildSnapshot assembles the snapshot for the consumed prefix. The
// tree is encoded with a fresh claim view over exactly the consumed
// leaves: the live ClaimSet also carries speculative worker claims
// whose outcomes were never merged, and marking those visited would
// skip unexplored failure points on a restore.
func (m *mergeState) buildSnapshot() (campaign.Snapshot, error) {
	view := fpt.NewClaimSet(m.tree)
	for _, l := range m.tree.LeavesByICount()[:m.consumed] {
		view.Claim(l)
	}
	var tb bytes.Buffer
	if err := m.tree.Encode(&tb, view); err != nil {
		return campaign.Snapshot{}, err
	}
	var rb bytes.Buffer
	if err := m.rep.EncodeWire(&rb); err != nil {
		return campaign.Snapshot{}, err
	}
	snap := campaign.Snapshot{
		Consumed: m.consumed,
		Tree:     tb.Bytes(),
		Report:   rb.Bytes(),
		Counters: campaign.Counters{
			Injections:   m.res.Injections,
			Recoveries:   m.res.Recoveries,
			Skipped:      m.res.SkippedFailurePoints,
			Quarantined:  m.res.QuarantinedFailurePoints,
			Retried:      m.res.RetriedFailurePoints,
			EngineEvents: m.res.EngineEvents,
		},
	}
	if m.cache != nil {
		snap.Cache = m.cache.export()
	}
	return snap, nil
}

package core

import (
	"math"
	"testing"
)

// replayFuel regressions: the slack-padded counter must saturate
// instead of wrapping, and the campaign budget may only cap the fuel
// when the replay can still reach its failure point — a budget at or
// below FirstICount would guarantee a phantom hang finding.
func TestReplayFuel(t *testing.T) {
	cases := []struct {
		name                string
		budget, firstICount uint64
		want                uint64
	}{
		{"normal", 1 << 28, 100, 100 + replayFuelSlack},
		{"budget caps", 100 + 10, 100, 110},
		{"budget at counter ignored", 100, 100, 100 + replayFuelSlack},
		{"budget below counter ignored", 50, 100, 100 + replayFuelSlack},
		{"no budget", 0, 100, 100 + replayFuelSlack},
		{"overflow saturates", 1 << 28, math.MaxUint64 - 100, math.MaxUint64},
		{"overflow with huge budget", math.MaxUint64, math.MaxUint64 - 100, math.MaxUint64},
		{"near-overflow exact", 0, math.MaxUint64 - replayFuelSlack, math.MaxUint64},
	}
	for _, tc := range cases {
		if got := replayFuel(tc.budget, tc.firstICount); got != tc.want {
			t.Errorf("%s: replayFuel(%d, %d) = %d, want %d",
				tc.name, tc.budget, tc.firstICount, got, tc.want)
		}
		if got := replayFuel(tc.budget, tc.firstICount); got < tc.firstICount {
			t.Errorf("%s: fuel %d below the failure point %d — the replay can never inject",
				tc.name, got, tc.firstICount)
		}
	}
}

package core

import (
	"testing"
	"time"

	"mumak/internal/apps/btree"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// legacyStackInjector replicates the pre-refactor fpt.Injector's stack
// mode: one replay crashes at the first gated failure-point event whose
// call stack is a not-yet-visited leaf of the shared tree, marking it
// visited as it fires. It exists only as the reference semantics for
// TestStackModeWorkersOneMatchesLegacySerial.
type legacyStackInjector struct {
	tree    *fpt.Tree
	visited map[*fpt.Leaf]bool
	gran    fpt.Granularity
	fired   *fpt.Leaf

	storeSinceLast bool
}

func (in *legacyStackInjector) OnEvent(ev *pmem.Event) {
	isFP := false
	switch in.gran {
	case fpt.GranStore:
		isFP = ev.Op.Kind() == pmem.KindStore
	case fpt.GranPersistency:
		switch ev.Op.Kind() {
		case pmem.KindStore:
			in.storeSinceLast = true
		case pmem.KindFlush, pmem.KindFence:
			isFP = in.storeSinceLast
			in.storeSinceLast = false
			if ev.Op == pmem.OpRMW {
				in.storeSinceLast = true
			}
		}
	}
	if !isFP || ev.Stack == stack.NoID {
		return
	}
	leaf := in.tree.Lookup(ev.Stack)
	if leaf == nil || in.visited[leaf] {
		return
	}
	in.visited[leaf] = true
	in.fired = leaf
	panic(&pmem.CrashSignal{ICount: ev.ICount, Stack: ev.Stack, Reason: "failure point (stack mode)"})
}

// legacyStackSerial replicates the pre-refactor injectStackSerial
// campaign: whole-workload replays, each crashing at the first
// unvisited failure point encountered, until a replay completes without
// firing. Findings go through the same recovery oracle and verdict
// cache as the real campaign.
func legacyStackSerial(t *testing.T, app harness.Application, w workload.Workload,
	tree *fpt.Tree, rep *report.Report, sb sandboxCfg, cache *imageCache) {
	t.Helper()
	stacks := tree.Stacks()
	visited := make(map[*fpt.Leaf]bool)
	for {
		inj := &legacyStackInjector{tree: tree, visited: visited, gran: fpt.GranPersistency}
		opts := pmem.Options{Capture: pmem.CapturePersistency, Stacks: stacks,
			MaxEvents: sb.budget, Deadline: sb.deadline}
		eng, sres := execute(app, w, opts, sb, inj)
		switch {
		case sres.Err != nil:
			t.Fatalf("legacy replay errored: %v", sres.Err)
		case sres.Panic != nil:
			t.Fatalf("legacy replay panicked: %v", sres.Panic.Value)
		case sres.Hang != nil:
			t.Fatal("legacy replay hit the hang watchdog")
		case sres.Sig == nil:
			// No unvisited failure point was reached; done.
			return
		}
		check, ddl, _, _ := cachedCheck(app, eng, sb, cache)
		if ddl {
			t.Fatal("legacy replay hit the deadline")
		}
		if !check.Consistent() {
			kind := report.CrashConsistency
			if check.Verdict == oracle.Hung {
				kind = report.RecoveryHang
			}
			detail := check.Describe()
			if check.Verdict == oracle.Crashed && check.PanicTrace != "" {
				detail += "\nrecovery trace:\n" + truncate(check.PanicTrace, 800)
			}
			rep.Add(report.Finding{
				Kind:   kind,
				ICount: sres.Sig.ICount,
				Stack:  inj.fired.Stack,
				Detail: detail,
			})
		}
	}
}

// TestStackModeWorkersOneMatchesLegacySerial pins the refactor's
// compatibility contract: the per-leaf targeted stack-mode campaign —
// serial and parallel — produces a report byte-identical to the
// pre-refactor whole-run mutating serial loop. The legacy loop fired
// leaves in first-encounter order, which for a deterministic target is
// exactly the FirstICount order the claim set hands out.
func TestStackModeWorkersOneMatchesLegacySerial(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSeeded(btree.BugCountOutsideTx)) }
	w := testWorkload()

	// Legacy reference campaign.
	tree, stacks := buildTree(t, mk(), w)
	refRep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
	sb := Config{}.sandbox(time.Time{})
	legacyStackSerial(t, mk(), w, tree, refRep, sb, newImageCache(Config{}.imageCacheCapacity()))
	want := refRep.Format(true)
	if len(refRep.Bugs()) == 0 {
		t.Fatal("legacy campaign found no bugs; the comparison is vacuous")
	}

	// The refactored campaign, serial (-workers=1) and fanned out.
	for _, workers := range []int{1, 4} {
		tree, stacks := buildTree(t, mk(), w)
		rep := &report.Report{Target: "test", Tool: "test", Stacks: stacks}
		res := &Result{Report: rep}
		cfg := Config{StackMode: true, Workers: workers}
		timedOut, err := injectAll(mk(), w, tree, cfg, rep, res, time.Time{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if timedOut {
			t.Fatal("unexpected timeout")
		}
		if got := rep.Format(true); got != want {
			t.Errorf("workers=%d: refactored stack mode diverges from the legacy serial path\n--- legacy ---\n%s\n--- refactored ---\n%s",
				workers, want, got)
		}
		if res.SkippedFailurePoints != 0 || res.InjectionAborted {
			t.Errorf("workers=%d: refactored campaign lost coverage: skipped=%d aborted=%v",
				workers, res.SkippedFailurePoints, res.InjectionAborted)
		}
		if res.Claims.Remaining() != 0 {
			t.Errorf("workers=%d: %d failure points left unclaimed", workers, res.Claims.Remaining())
		}
	}
}

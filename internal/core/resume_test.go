package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mumak/internal/apps/btree"
	"mumak/internal/campaign"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

// resumeCases are the crash-safety fixtures: every parallelCases target
// (real findings, both campaign modes) crossed with serial and fanned
// out workers. The acceptance contract is the one parallel injection
// already guarantees for scheduling: the report must be byte-identical
// — here, no matter where the previous campaign died.
func resumeCases() []struct {
	name      string
	mk        func() harness.Application
	w         workload.Workload
	stackMode bool
	workers   int
} {
	var out []struct {
		name      string
		mk        func() harness.Application
		w         workload.Workload
		stackMode bool
		workers   int
	}
	for _, tc := range parallelCases() {
		for _, stackMode := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				mode := "counter"
				if stackMode {
					mode = "stack"
				}
				out = append(out, struct {
					name      string
					mk        func() harness.Application
					w         workload.Workload
					stackMode bool
					workers   int
				}{
					name: fmt.Sprintf("%s/%s/workers=%d", tc.name, mode, workers),
					mk:   tc.mk, w: tc.w, stackMode: stackMode, workers: workers,
				})
			}
		}
	}
	return out
}

func journaledConfig(stackMode bool, workers int) core.Config {
	return core.Config{
		StackMode: stackMode,
		Workers:   workers,
		// A small cadence exercises periodic snapshots on these small
		// fixtures, not just the final one.
		SnapshotEvery: 4,
	}
}

// analyzeJournaled runs a campaign writing a journal into dir.
func analyzeJournaled(t *testing.T, mk func() harness.Application, w workload.Workload,
	cfg core.Config, dir string) *core.Result {
	t.Helper()
	j, err := campaign.Create(dir, campaign.Meta{Target: "fixture"})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	res, err := core.Analyze(mk(), w, cfg)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.JournalError != "" {
		t.Fatalf("journal degraded: %s", res.JournalError)
	}
	return res
}

// analyzeResumed loads the journal in dir, reopens it for appending and
// runs the campaign with the loaded state folded in.
func analyzeResumed(t *testing.T, mk func() harness.Application, w workload.Workload,
	cfg core.Config, dir string) *core.Result {
	t.Helper()
	st, err := campaign.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	cfg.Resume = st
	res, err := core.Analyze(mk(), w, cfg)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// copyTruncated clones a journal directory with the log truncated to n
// bytes, simulating a campaign killed mid-append; keepSnapshot controls
// whether the (now possibly ahead-of-journal) snapshot survives.
func copyTruncated(t *testing.T, src string, n int64, keepSnapshot bool) string {
	t.Helper()
	dst := t.TempDir()
	meta, err := os.ReadFile(filepath.Join(src, campaign.MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, campaign.MetaFile), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := os.ReadFile(filepath.Join(src, campaign.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if n > int64(len(log)) {
		n = int64(len(log))
	}
	if err := os.WriteFile(filepath.Join(dst, campaign.JournalFile), log[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	if keepSnapshot {
		if snap, err := os.ReadFile(filepath.Join(src, campaign.SnapshotFile)); err == nil {
			if err := os.WriteFile(filepath.Join(dst, campaign.SnapshotFile), snap, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// assertResumeMatches checks the crash-safety acceptance contract
// between an uninterrupted reference run and a resumed one: the report
// is byte-identical and the deterministic aggregate counters agree.
// Image-cache hit/miss splits are deliberately not compared — a resumed
// run seeds its cache from the snapshot, which legitimately converts
// misses into hits without changing any verdict.
func assertResumeMatches(t *testing.T, label string, ref, res *core.Result) {
	t.Helper()
	if got, want := res.Report.Format(true), ref.Report.Format(true); got != want {
		t.Errorf("%s: resumed report differs from the uninterrupted run\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
			label, want, got)
	}
	if res.Injections != ref.Injections || res.Recoveries != ref.Recoveries ||
		res.SkippedFailurePoints != ref.SkippedFailurePoints ||
		res.QuarantinedFailurePoints != ref.QuarantinedFailurePoints ||
		res.EngineEvents != ref.EngineEvents {
		t.Errorf("%s: counters diverge: injections %d/%d recoveries %d/%d skipped %d/%d quarantined %d/%d events %d/%d",
			label, res.Injections, ref.Injections, res.Recoveries, ref.Recoveries,
			res.SkippedFailurePoints, ref.SkippedFailurePoints,
			res.QuarantinedFailurePoints, ref.QuarantinedFailurePoints,
			res.EngineEvents, ref.EngineEvents)
	}
	if res.Interrupted {
		t.Errorf("%s: resumed run reports itself interrupted", label)
	}
}

// TestJournaledRunMatchesUnjournaled: writing the journal must not
// perturb the campaign — same report, same counters.
func TestJournaledRunMatchesUnjournaled(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	plain, err := core.Analyze(mk(), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	journaled := analyzeJournaled(t, mk, w, core.Config{}, dir)
	assertResumeMatches(t, "journaled", plain, journaled)
	if journaled.JournalAppends == 0 {
		t.Fatal("campaign consumed failure points but appended no journal records")
	}
	st, err := campaign.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != journaled.JournalAppends {
		t.Fatalf("journal holds %d records, campaign reported %d appends",
			len(st.Records), journaled.JournalAppends)
	}
}

// TestResumeAfterKill is the acceptance scenario: a campaign killed at
// an arbitrary byte — simulated by truncating the journal at a spread
// of offsets, including mid-record, with and without the (then stale or
// torn) snapshot — must resume to a final report byte-identical to an
// uninterrupted run. Counter and stack mode, serial and parallel.
func TestResumeAfterKill(t *testing.T) {
	for _, tc := range resumeCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := journaledConfig(tc.stackMode, tc.workers)
			ref, err := core.Analyze(tc.mk(), tc.w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Report.Bugs()) == 0 {
				t.Fatal("fixture produced no findings; the identity check is vacuous")
			}
			full := t.TempDir()
			analyzeJournaled(t, tc.mk, tc.w, cfg, full)
			logLen := fileSize(t, filepath.Join(full, campaign.JournalFile))
			// Deterministic spread of kill points: record boundaries are
			// not special-cased — some offsets land mid-record and
			// exercise the torn-tail truncation, some leave the snapshot
			// ahead of the journal.
			cuts := []int64{0, 1, logLen / 7, logLen / 3, logLen / 2, logLen - 3}
			for i, cut := range cuts {
				dir := copyTruncated(t, full, cut, i%2 == 0)
				res := analyzeResumed(t, tc.mk, tc.w, cfg, dir)
				label := fmt.Sprintf("cut=%d", cut)
				assertResumeMatches(t, label, ref, res)
				if res.ResumedFailurePoints == 0 && cut > 8 {
					t.Errorf("%s: resume folded no journaled verdicts", label)
				}
				// The healed journal must now hold the complete campaign.
				st, err := campaign.Load(dir)
				if err != nil {
					t.Fatal(err)
				}
				if want := res.ResumedFailurePoints + res.JournalAppends; len(st.Records) != want {
					t.Errorf("%s: healed journal holds %d records, want %d", label, len(st.Records), want)
				}
			}
		})
	}
}

// TestResumeCompletedCampaign: resuming a journal that already covers
// the whole campaign replays nothing and reproduces the report.
func TestResumeCompletedCampaign(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	dir := t.TempDir()
	ref := analyzeJournaled(t, mk, w, core.Config{}, dir)
	res := analyzeResumed(t, mk, w, core.Config{}, dir)
	assertResumeMatches(t, "completed", ref, res)
	if res.JournalAppends != 0 {
		t.Errorf("resume of a completed campaign appended %d records", res.JournalAppends)
	}
	if res.ResumedFailurePoints == 0 {
		t.Error("resume of a completed campaign folded no verdicts")
	}
}

// TestResumeRejectsForeignJournal: a journal recorded under a different
// workload diverges from the rebuilt tree and must abort resume with a
// diagnostic instead of corrupting the report.
func TestResumeRejectsForeignJournal(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	dir := t.TempDir()
	analyzeJournaled(t, mk, smallWorkload(21), core.Config{}, dir)
	st, err := campaign.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Analyze(mk(), smallWorkload(99), core.Config{Resume: st})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("foreign journal was folded without a diagnostic: err=%v", err)
	}
}

// TestInterruptedCampaign: a pre-closed interrupt channel stops the
// campaign before the first leaf; the partial report is marked, the
// journal stays loadable, and a resumed run completes byte-identically.
func TestInterruptedCampaign(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref, err := core.Analyze(mk(), w, core.Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			interrupt := make(chan struct{})
			close(interrupt)
			dir := t.TempDir()
			j, err := campaign.Create(dir, campaign.Meta{Target: "fixture"})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Analyze(mk(), w, core.Config{
				Workers: workers, Interrupt: interrupt, Journal: j,
			})
			j.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Interrupted {
				t.Fatal("pre-closed interrupt channel did not mark the run interrupted")
			}
			if res.Injections != 0 {
				t.Fatalf("interrupted-before-start campaign injected %d faults", res.Injections)
			}
			if !strings.Contains(res.Report.Format(false), "campaign interrupted") {
				t.Fatalf("partial report lacks the interruption marker:\n%s", res.Report.Format(false))
			}
			resumed := analyzeResumed(t, mk, w, core.Config{Workers: workers}, dir)
			assertResumeMatches(t, "resumed-after-interrupt", ref, resumed)
		})
	}
}

// TestInterruptMidCampaign interrupts a running campaign from another
// goroutine: the campaign must drain and stop early (strictly fewer
// injections), journal only consumed leaves, and resume to the full
// byte-identical report.
func TestInterruptMidCampaign(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	ref, err := core.Analyze(mk(), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Find an interruption point that actually lands mid-campaign: a
	// fixed sleep is racy, so interrupt after a bounded delay and accept
	// whatever prefix was consumed — the identity contract must hold for
	// every prefix anyway.
	interrupt := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(interrupt)
	}()
	dir := t.TempDir()
	j, err := campaign.Create(dir, campaign.Meta{Target: "fixture"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(mk(), w, core.Config{Interrupt: interrupt, Journal: j})
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		// The campaign finished before the timer fired; the journal then
		// already holds the full run and resume degenerates to
		// TestResumeCompletedCampaign, still worth asserting.
		t.Log("campaign completed before the interrupt fired")
	}
	resumed := analyzeResumed(t, mk, w, core.Config{}, dir)
	assertResumeMatches(t, "resumed-after-mid-interrupt", ref, resumed)
}

// TestBudgetExpiryPartialReport: a campaign whose -budget expires
// mid-flight must leave a well-formed partial report — the
// budget-exhausted marker rendered, counters consistent with the
// journaled prefix — and the flushed journal must resume to the full
// byte-identical report.
func TestBudgetExpiryPartialReport(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	ref, err := core.Analyze(mk(), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, err := campaign.Create(dir, campaign.Meta{Target: "fixture"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(mk(), w, core.Config{Budget: 30 * time.Millisecond, Journal: j})
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		if !strings.Contains(res.Report.Format(false), "analysis budget exhausted") {
			t.Errorf("timed-out report lacks the budget marker:\n%s", res.Report.Format(false))
		}
		st, err := campaign.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Records) != res.JournalAppends {
			t.Errorf("journal holds %d records, campaign reported %d appends",
				len(st.Records), res.JournalAppends)
		}
	} else {
		t.Log("campaign finished inside the tiny budget; resume degenerates to the completed case")
	}
	resumed := analyzeResumed(t, mk, w, core.Config{}, dir)
	assertResumeMatches(t, "resumed-after-budget-expiry", ref, resumed)
	if resumed.TimedOut || strings.Contains(resumed.Report.Format(false), "budget exhausted") {
		t.Error("resumed run inherited the budget-exhausted marker")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

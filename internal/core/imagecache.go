// Crash-image verdict cache.
//
// The graceful-crash image of a counter-mode leaf changes only when the
// program-order prefix gains a store: leaves separated by nothing but
// flushes, fences and loads materialise byte-identical images, and the
// deterministic recovery oracle necessarily returns the same verdict
// for all of them. The campaign therefore memoises verdicts by image
// content: before sandboxing a recovery it asks the engine for the
// incrementally maintained image hash (O(changed lines), no
// materialisation) and, on a hit, skips both the full-pool image copy
// and the recovery run entirely.
//
// One cache is created per campaign in injectAll, so the application,
// workload and recovery configuration are fixed for the lifetime of
// every entry — the key only needs the image identity. The cache is
// shared across the parallel campaign's workers and is bounded: least
// recently used verdicts are evicted once the configured capacity is
// exceeded, keeping memory proportional to the working set of distinct
// crash states rather than to campaign length.
package core

import (
	"container/list"
	"sync"

	"mumak/internal/campaign"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
)

// DefaultImageCacheSize is the verdict-cache capacity used when
// Config.ImageCacheSize is zero. Entries hold a detached oracle outcome
// (a few hundred bytes at worst), so the default is generous.
const DefaultImageCacheSize = 4096

// imageKey identifies a crash image by content. The hash is the
// engine's incrementally maintained content hash; the pool size guards
// the (already campaign-constant) image length. Distinct images
// colliding on both is vanishingly unlikely (64-bit mixed hash) and at
// worst replays a stale verdict for one leaf.
type imageKey struct {
	hash uint64
	size int
}

// imageCache is a bounded, concurrency-safe LRU map from crash-image
// identity to the oracle verdict the image produced.
type imageCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[imageKey]*list.Element
	order    *list.List // front = most recently used
}

type imageCacheEntry struct {
	key imageKey
	out oracle.Outcome
	// seeded marks an entry warmed from a cross-run verdict-cache file
	// (never one computed or snapshot-seeded this campaign), so hits on
	// it can be attributed to the persistent cache.
	seeded bool
}

// newImageCache returns a cache bounded to capacity entries, or nil
// (caching disabled) when capacity is not positive.
func newImageCache(capacity int) *imageCache {
	if capacity <= 0 {
		return nil
	}
	return &imageCache{
		capacity: capacity,
		entries:  make(map[imageKey]*list.Element),
		order:    list.New(),
	}
}

// lookup returns the memoised verdict for the key, refreshing its
// recency on a hit. The second return reports whether the entry came
// from a persistent cross-run cache file.
func (c *imageCache) lookup(k imageKey) (oracle.Outcome, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return oracle.Outcome{}, false, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*imageCacheEntry)
	return e.out, e.seeded, true
}

// store memoises a verdict, evicting the least recently used entry when
// the cache is full. Callers must store detached outcomes only (no
// retained recovery engine).
func (c *imageCache) store(k imageKey, out oracle.Outcome) {
	c.storeEntry(k, out, false)
}

func (c *imageCache) storeEntry(k imageKey, out oracle.Outcome, seeded bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		// A parallel worker raced us to the same image; keep the first
		// verdict (deterministic targets produce the same one anyway).
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*imageCacheEntry).key)
	}
	c.entries[k] = c.order.PushFront(&imageCacheEntry{key: k, out: out, seeded: seeded})
}

// Len returns the number of cached verdicts.
func (c *imageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// export flattens every cached verdict for a campaign snapshot, least
// recently used first, so that seeding a fresh cache in export order
// reproduces the recency ranking (and therefore future evictions).
func (c *imageCache) export() []campaign.CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]campaign.CacheEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*imageCacheEntry)
		out = append(out, encodeCacheEntry(e.key, e.out))
	}
	return out
}

// seed warms the cache from a snapshot's exported entries (LRU-first
// order). Verdicts are keyed by image content and the target is
// deterministic, so entries from a previous process are as valid as
// locally computed ones; seeding only saves the resumed campaign from
// re-running recoveries the crashed run already paid for.
func (c *imageCache) seed(entries []campaign.CacheEntry) {
	for _, e := range entries {
		k, out := decodeCacheEntry(e)
		c.store(k, out)
	}
}

// seedPersistent warms the cache from a cross-run verdict-cache file
// (campaign.LoadVerdictCache), marking every entry so later hits are
// attributed to the persistent cache. Identity was already pinned by
// the file's Meta check, and verdicts are keyed by image content, so a
// previous run's verdict is exactly this run's verdict.
func (c *imageCache) seedPersistent(entries []campaign.CacheEntry) {
	for _, e := range entries {
		k, out := decodeCacheEntry(e)
		c.storeEntry(k, out, true)
	}
}

// imageCacheCapacity resolves the configured capacity: zero selects the
// default, negative disables caching.
func (cfg Config) imageCacheCapacity() int {
	switch {
	case cfg.ImageCacheSize < 0:
		return 0
	case cfg.ImageCacheSize == 0:
		return DefaultImageCacheSize
	default:
		return cfg.ImageCacheSize
	}
}

// cachedCheck runs the recovery oracle over the engine's graceful-crash
// image, consulting the verdict cache first. On a hit the image is
// never materialised and no recovery runs — the memoised outcome is
// returned as-is. On a miss the oracle runs under the campaign
// watchdogs and the verdict is cached, unless the campaign deadline cut
// the check short: a deadline-cut outcome reflects the remaining
// budget, not the image, and must never be replayed from the cache.
// persistent narrows a hit to entries seeded from a cross-run
// verdict-cache file.
func cachedCheck(app harness.Application, eng *pmem.Engine, sb sandboxCfg,
	cache *imageCache) (out oracle.Outcome, deadlineHit, hit, persistent bool) {

	if cache == nil {
		out, deadlineHit = boundedCheck(app, eng.PrefixImage(), sb)
		return out, deadlineHit, false, false
	}
	key := imageKey{hash: eng.PrefixImageHash(), size: eng.Size()}
	if out, seeded, ok := cache.lookup(key); ok {
		return out, false, true, seeded
	}
	out, deadlineHit = boundedCheck(app, eng.PrefixImage(), sb)
	if !deadlineHit {
		cache.store(key, out.Detached())
	}
	return out, deadlineHit, false, false
}

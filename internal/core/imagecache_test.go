package core_test

import (
	"bytes"
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest/imagedup"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/levelhash"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/report"
	"mumak/internal/workload"
)

// renderReport captures everything a consumer of a report can observe:
// the human-readable rendering (with warnings) and the JSON emission.
func renderReport(t *testing.T, rep *report.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	return rep.Format(true) + "\n--- json ---\n" + buf.String()
}

// cacheCases are the differential fixtures: targets with real findings,
// a finding-free high-duplication target, and a target whose recovery
// rejects everything.
func cacheCases() []struct {
	name string
	mk   func() harness.Application
	w    workload.Workload
} {
	newDup := func(name string) func() harness.Application {
		return func() harness.Application {
			app, ok := imagedup.New(name)
			if !ok {
				panic("unknown imagedup fixture " + name)
			}
			return app
		}
	}
	return []struct {
		name string
		mk   func() harness.Application
		w    workload.Workload
	}{
		{
			name: "btree-bug",
			mk: func() harness.Application {
				return btree.New(cfgSPT(btree.BugCountOutsideTx))
			},
			w: smallWorkload(21),
		},
		{
			name: "levelhash-bug",
			mk: func() harness.Application {
				return levelhash.New(apps.Config{
					PoolSize: 2 << 20, WithRecovery: true,
					Bugs: bugs.Enable("levelhash/c01-top-slot-count-order"),
				})
			},
			w: workload.Generate(workload.Config{N: 300, Seed: 8, Keyspace: 150, PutFrac: 3, GetFrac: 1, DeleteFrac: 1}),
		},
		{name: "imagedup", mk: newDup("imagedup"), w: smallWorkload(3)},
		{name: "imagedup-broken", mk: newDup("imagedup-broken"), w: smallWorkload(3)},
	}
}

// TestImageCacheDifferential is the cache's correctness contract: for
// every fixture, the report of a cached campaign — serial, parallel and
// capacity-starved — is byte-identical (text and JSON) to an uncached
// serial run, and the aggregate counters agree. Only the hit/miss split
// may vary.
func TestImageCacheDifferential(t *testing.T) {
	for _, tc := range cacheCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			uncached, err := core.Analyze(tc.mk(), tc.w, core.Config{KeepWarnings: true, ImageCacheSize: -1})
			if err != nil {
				t.Fatal(err)
			}
			if uncached.ImageCacheHits != 0 || uncached.ImageCacheMisses != 0 || uncached.ImageCacheEntries != 0 {
				t.Fatalf("disabled cache reported traffic: %+v", uncached)
			}
			want := renderReport(t, uncached.Report)
			variants := []struct {
				name string
				cfg  core.Config
			}{
				{"cached-serial", core.Config{KeepWarnings: true}},
				{"cached-parallel", core.Config{KeepWarnings: true, Workers: 4}},
				{"cached-capacity-1", core.Config{KeepWarnings: true, ImageCacheSize: 1}},
			}
			for _, v := range variants {
				res, err := core.Analyze(tc.mk(), tc.w, v.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := renderReport(t, res.Report); got != want {
					t.Errorf("%s: report differs from uncached serial run\n--- uncached ---\n%s\n--- %s ---\n%s",
						v.name, want, v.name, got)
				}
				if res.Injections != uncached.Injections || res.Recoveries != uncached.Recoveries ||
					res.SkippedFailurePoints != uncached.SkippedFailurePoints ||
					res.EngineEvents != uncached.EngineEvents {
					t.Errorf("%s: counters diverge: injections %d/%d recoveries %d/%d skipped %d/%d events %d/%d",
						v.name, res.Injections, uncached.Injections, res.Recoveries, uncached.Recoveries,
						res.SkippedFailurePoints, uncached.SkippedFailurePoints, res.EngineEvents, uncached.EngineEvents)
				}
				if res.ImageCacheHits+res.ImageCacheMisses != res.Recoveries {
					t.Errorf("%s: cache traffic %d+%d does not account for %d recoveries",
						v.name, res.ImageCacheHits, res.ImageCacheMisses, res.Recoveries)
				}
			}
		})
	}
}

// TestImageCacheDedupsScanPhase pins down the perf win on the fixture
// built for it: the imagedup scan phase re-persists durable data, so
// every scan leaf (and the deepest fill leaf) shares one crash image
// and all but the first consultation hit the cache.
func TestImageCacheDedupsScanPhase(t *testing.T) {
	app, _ := imagedup.New("imagedup")
	res, err := core.Analyze(app, smallWorkload(3), core.Config{DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections == 0 {
		t.Fatal("fixture injected nothing; dedup check is vacuous")
	}
	// depth+scan leaves plus setup: scan rounds and the deepest fill
	// leaf share an image, so at least DefaultScanRounds hits.
	if res.ImageCacheHits < imagedup.DefaultScanRounds {
		t.Errorf("hits = %d, want >= %d (scan-phase leaves share one image)",
			res.ImageCacheHits, imagedup.DefaultScanRounds)
	}
	if res.ImageCacheMisses == 0 || res.ImageCacheEntries == 0 {
		t.Errorf("misses = %d, entries = %d; first sight of each image must miss and populate",
			res.ImageCacheMisses, res.ImageCacheEntries)
	}
	if res.ImageCacheEntries > res.ImageCacheMisses {
		t.Errorf("entries = %d exceeds misses = %d", res.ImageCacheEntries, res.ImageCacheMisses)
	}
}

// TestImageCacheRecurringImageDistinctICounts checks that a memoised
// verdict still yields one finding per failure point: imagedup-broken's
// scan leaves crash at distinct instruction counters but share a single
// (cached) Unrecoverable verdict, and every finding keeps its own
// ICount.
func TestImageCacheRecurringImageDistinctICounts(t *testing.T) {
	app, _ := imagedup.New("imagedup-broken")
	res, err := core.Analyze(app, smallWorkload(3), core.Config{DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImageCacheHits == 0 {
		t.Fatal("no cache hits; recurring-image check is vacuous")
	}
	bugs := res.Report.Bugs()
	if len(bugs) != res.Injections {
		t.Fatalf("broken recovery produced %d findings for %d injections", len(bugs), res.Injections)
	}
	icounts := make(map[uint64]bool)
	for _, f := range bugs {
		icounts[f.ICount] = true
	}
	if len(icounts) != len(bugs) {
		t.Errorf("findings share instruction counters: %d distinct of %d findings", len(icounts), len(bugs))
	}
}

// TestImageCacheEADRDifferential repeats the differential check under
// the extended persistence domain, whose instrumented run takes the
// eADR snapshot paths.
func TestImageCacheEADRDifferential(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(7)
	uncached, err := core.Analyze(mk(), w, core.Config{KeepWarnings: true, EADR: true, ImageCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := core.Analyze(mk(), w, core.Config{KeepWarnings: true, EADR: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReport(t, cached.Report), renderReport(t, uncached.Report); got != want {
		t.Errorf("eADR cached report differs from uncached\n--- uncached ---\n%s\n--- cached ---\n%s", want, got)
	}
	if cached.Recoveries != uncached.Recoveries || cached.EngineEvents != uncached.EngineEvents {
		t.Errorf("eADR counters diverge: recoveries %d/%d events %d/%d",
			cached.Recoveries, uncached.Recoveries, cached.EngineEvents, uncached.EngineEvents)
	}
}

// TestImageCacheStackModeDifferential covers the stack-mode campaign's
// cachedCheck call site.
func TestImageCacheStackModeDifferential(t *testing.T) {
	app, _ := imagedup.New("imagedup-broken")
	w := smallWorkload(5)
	uncached, err := core.Analyze(app, w, core.Config{StackMode: true, DisableTraceAnalysis: true, ImageCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	app2, _ := imagedup.New("imagedup-broken")
	cached, err := core.Analyze(app2, w, core.Config{StackMode: true, DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReport(t, cached.Report), renderReport(t, uncached.Report); got != want {
		t.Errorf("stack-mode cached report differs from uncached\n--- uncached ---\n%s\n--- cached ---\n%s", want, got)
	}
	if cached.ImageCacheHits == 0 {
		t.Error("stack-mode campaign on imagedup-broken produced no cache hits")
	}
	if cached.ImageCacheHits+cached.ImageCacheMisses != cached.Recoveries {
		t.Errorf("stack-mode cache traffic %d+%d does not account for %d recoveries",
			cached.ImageCacheHits, cached.ImageCacheMisses, cached.Recoveries)
	}
}

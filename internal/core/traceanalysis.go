package core

import (
	"fmt"

	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/trace"
)

// lineState tracks one cache line across the single analysis pass.
type lineState struct {
	// dirty marks bytes stored (through the cache) since the line's
	// last write-back.
	dirty uint64
	// unflushed holds the trace indices of store records contributing
	// dirty bytes not yet covered by any flush.
	unflushed []int
	// storesSinceFlush counts contributing store records since the
	// last write-back, for the multi-store-flush warning.
	storesSinceFlush int
	// everFlushed records whether the line was flushed at any point of
	// the execution (distinguishing durability bugs from transient
	// data, §4.2).
	everFlushed bool
	// overwrites collects the store records that overwrote unpersisted
	// bytes; they are reported as dirty overwrites only when the line
	// is never flushed at all, since rewriting a location several
	// times before one write-back is ordinary write combining.
	overwrites []int
	// flushedSinceStore is true when the line is clean and already
	// written back: a further flush is redundant.
	flushedSinceStore bool
}

// analyzeTrace is the §4.2 trace-analysis phase: one pass, five
// patterns. It returns raw findings whose stacks are resolved later by
// the debug-information pass.
func analyzeTrace(t *trace.Trace, cfg Config) []*report.Finding {
	var findings []*report.Finding
	lines := map[uint64]*lineState{}
	lineOf := func(addr uint64) *lineState {
		base := addr &^ (pmem.CacheLineSize - 1)
		st := lines[base]
		if st == nil {
			st = &lineState{}
			lines[base] = st
		}
		return st
	}
	// Fence bookkeeping: flush instructions and non-temporal stores
	// since the last fence.
	flushesSinceFence := 0
	ntSinceFence := 0
	var ntPending []int // NT store records awaiting a fence

	add := func(kind report.Kind, rec *trace.Record, detail string) {
		findings = append(findings, &report.Finding{
			Kind:   kind,
			ICount: rec.ICount,
			Addr:   rec.Addr,
			Detail: detail,
		})
	}

	for i := range t.Records {
		r := &t.Records[i]
		switch r.Op {
		case pmem.OpStore, pmem.OpRMW:
			addr, size := r.Addr, uint64(r.Size)
			for size > 0 {
				base := addr &^ (pmem.CacheLineSize - 1)
				st := lineOf(addr)
				off := addr - base
				n := pmem.CacheLineSize - off
				if n > size {
					n = size
				}
				var mask uint64
				for b := uint64(0); b < n; b++ {
					mask |= 1 << (off + b)
				}
				if st.dirty&mask != 0 {
					st.overwrites = append(st.overwrites, i)
				}
				st.dirty |= mask
				st.unflushed = append(st.unflushed, i)
				st.storesSinceFlush++
				st.flushedSinceStore = false
				addr += n
				size -= n
			}
			if r.Op == pmem.OpRMW {
				// RMW drains buffered flushes but is never itself a
				// redundant-fence candidate (it synchronises threads,
				// not persistence).
				flushesSinceFence = 0
				ntSinceFence = 0
				ntPending = ntPending[:0]
			}
		case pmem.OpNTStore:
			ntSinceFence++
			ntPending = append(ntPending, i)
		case pmem.OpCLFlush, pmem.OpCLFlushOpt, pmem.OpCLWB:
			st := lineOf(r.Addr)
			if cfg.EADR {
				// The persistence domain includes the caches: every
				// cache flush is wasted work (§4.3).
				add(report.RedundantFlush, r, "cache flushes are unnecessary on an eADR system")
			} else if st.flushedSinceStore {
				add(report.RedundantFlush, r,
					"the line was not written since its previous write-back")
			} else if st.dirty == 0 && st.everFlushed {
				add(report.RedundantFlush, r, "the line holds no unpersisted data")
			}
			if st.storesSinceFlush > 1 {
				add(report.WarnMultiStoreFlush, r, fmt.Sprintf(
					"one flush covers %d separate stores; the layout may differ on other platforms",
					st.storesSinceFlush))
			}
			st.dirty = 0
			st.unflushed = st.unflushed[:0]
			st.storesSinceFlush = 0
			st.everFlushed = true
			st.flushedSinceStore = true
			if r.Op != pmem.OpCLFlush {
				flushesSinceFence++
			}
		case pmem.OpSFence, pmem.OpMFence:
			if flushesSinceFence == 0 && ntSinceFence == 0 {
				add(report.RedundantFence, r,
					"no flush or non-temporal store since the previous fence")
			} else if flushesSinceFence+ntSinceFence > 1 {
				add(report.WarnFenceOrdering, r, fmt.Sprintf(
					"%d write-backs race to this fence; orderings violating program order were not explored",
					flushesSinceFence+ntSinceFence))
			}
			flushesSinceFence = 0
			ntSinceFence = 0
			ntPending = ntPending[:0]
		}
	}

	// End of trace: stores that were never persisted. Under eADR every
	// store is durable once visible, so the durability and
	// transient-data patterns do not apply (§4.3).
	if cfg.EADR {
		return findings
	}
	reported := map[int]bool{}
	for _, st := range lines {
		for _, idx := range st.unflushed {
			if reported[idx] {
				continue
			}
			reported[idx] = true
			r := &t.Records[idx]
			if st.everFlushed {
				add(report.Durability, r,
					"store never explicitly persisted although its line is flushed elsewhere in the execution")
			} else {
				add(report.WarnTransientData, r,
					"store to a region that is never flushed; consider volatile memory")
			}
		}
		if !st.everFlushed {
			for _, idx := range st.overwrites {
				add(report.DirtyOverwrite, &t.Records[idx],
					"address written repeatedly and never persisted; the data belongs in volatile memory")
			}
		}
	}
	for _, idx := range ntPending {
		if !reported[idx] {
			reported[idx] = true
			add(report.Durability, &t.Records[idx],
				"non-temporal store never fenced; its durability is not guaranteed")
		}
	}
	return findings
}

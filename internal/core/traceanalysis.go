package core

import (
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/trace"
)

// AnalyzeTrace is the offline front-end of the §4.2 trace analysis: it
// replays a recorded (or deserialised) trace through the same online
// Analyzer the streaming pipeline attaches to the instrumented run, so
// both front-ends share one pattern implementation and produce identical
// findings. Traces restored with trace.ReadTrace carry no stacks; their
// findings report stack.NoID until the debug-information pass resolves
// them.
func AnalyzeTrace(t *trace.Trace, cfg Config) []*report.Finding {
	a := NewAnalyzer(cfg)
	for i := range t.Records {
		r := &t.Records[i]
		ev := pmem.Event{
			ICount: r.ICount,
			Op:     r.Op,
			Addr:   r.Addr,
			Size:   int(r.Size),
			Stack:  r.Stack,
		}
		a.OnEvent(&ev)
	}
	return a.Finalize()
}

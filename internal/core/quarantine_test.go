package core_test

import (
	"path/filepath"
	"strings"
	"testing"

	"mumak/internal/campaign"
	"mumak/internal/core"
	"mumak/internal/harness"
)

// quarantineConfig disables checkpoints so counter-mode replays
// actually re-execute the fixture (a checkpointed replay runs no
// application code and cannot observe the seeded failure).
func quarantineConfig(stackMode bool, workers int) core.Config {
	return core.Config{StackMode: stackMode, Workers: workers, CheckpointInterval: -1}
}

// TestBrokenReplaysAreQuarantined is the robustness acceptance test: a
// target whose every replay fails must not abort the campaign or
// silently drop coverage — every failure point ends up in the report's
// quarantined section, in counter and stack mode, serial and parallel.
func TestBrokenReplaysAreQuarantined(t *testing.T) {
	for _, stackMode := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			res, err := core.Analyze(fixture(t, "misbehave-replay-broken"), fixtureWorkload(),
				quarantineConfig(stackMode, workers))
			if err != nil {
				t.Fatalf("stack=%v workers=%d: campaign aborted: %v", stackMode, workers, err)
			}
			if res.QuarantinedFailurePoints == 0 {
				t.Fatalf("stack=%v workers=%d: no failure points quarantined", stackMode, workers)
			}
			if res.QuarantinedFailurePoints != res.Tree.Len() {
				t.Errorf("stack=%v workers=%d: quarantined %d of %d failure points",
					stackMode, workers, res.QuarantinedFailurePoints, res.Tree.Len())
			}
			if res.SkippedFailurePoints < res.QuarantinedFailurePoints {
				t.Errorf("stack=%v workers=%d: skipped %d < quarantined %d; quarantine must stay a subset",
					stackMode, workers, res.SkippedFailurePoints, res.QuarantinedFailurePoints)
			}
			if res.Injections != 0 {
				t.Errorf("stack=%v workers=%d: broken replays injected %d faults", stackMode, workers, res.Injections)
			}
			text := res.Report.Format(false)
			if !strings.Contains(text, "quarantined failure points:") ||
				!strings.Contains(text, "seeded replay failure") {
				t.Errorf("stack=%v workers=%d: report lacks the quarantine section:\n%s", stackMode, workers, text)
			}
		}
	}
}

// TestFlakyReplayIsRetriedNotQuarantined: one transient replay failure
// must be absorbed by the bounded retry, costing a retry counter and
// nothing else.
func TestFlakyReplayIsRetriedNotQuarantined(t *testing.T) {
	res, err := core.Analyze(fixture(t, "misbehave-replay-flaky"), fixtureWorkload(),
		quarantineConfig(false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RetriedFailurePoints != 1 {
		t.Errorf("RetriedFailurePoints = %d, want 1", res.RetriedFailurePoints)
	}
	if res.QuarantinedFailurePoints != 0 || res.SkippedFailurePoints != 0 {
		t.Errorf("transient failure was not retried away: quarantined=%d skipped=%d",
			res.QuarantinedFailurePoints, res.SkippedFailurePoints)
	}
	if res.Injections != res.Tree.Len() {
		t.Errorf("Injections = %d, want full coverage of %d", res.Injections, res.Tree.Len())
	}
	if strings.Contains(res.Report.Format(false), "quarantined") {
		t.Error("report grew a quarantine section for a retried-away failure")
	}
}

// TestQuarantineSurvivesJournalResume: quarantined leaves are journaled
// verdicts like any other — a resumed campaign must reproduce the
// quarantine section byte-identically without re-running the replays.
func TestQuarantineSurvivesJournalResume(t *testing.T) {
	mk := func() harness.Application { return fixture(t, "misbehave-replay-broken") }
	cfg := quarantineConfig(false, 1)
	ref, err := core.Analyze(mk(), fixtureWorkload(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	analyzeJournaled(t, mk, fixtureWorkload(), cfg, dir)
	logLen := fileSize(t, filepath.Join(dir, campaign.JournalFile))
	cut := copyTruncated(t, dir, logLen/2, true)
	res := analyzeResumed(t, mk, fixtureWorkload(), cfg, cut)
	assertResumeMatches(t, "quarantine-resume", ref, res)
	if res.QuarantinedFailurePoints != ref.QuarantinedFailurePoints {
		t.Errorf("resumed run quarantined %d failure points, want %d",
			res.QuarantinedFailurePoints, ref.QuarantinedFailurePoints)
	}
}

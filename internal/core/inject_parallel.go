// Parallel fault injection, both modes.
//
// Every replay is independent: it builds a fresh private pmem.Engine —
// restored from the recorded run's nearest checkpoint (counter mode) or
// by re-running the deterministic workload with a private
// stack-matching injector over the frozen tree (stack mode) — crashes
// it at the claimed leaf's failure point and hands the graceful-crash
// image to a private recovery engine. Nothing but the read-only
// workload, the stateless application value, the immutable tree, the
// (concurrency-safe) stack table, the read-only checkpoint store and
// the verdict cache is shared, so the campaign — the hot path of the
// whole analysis — fans out across a bounded worker pool.
//
// Determinism is preserved by separating claiming and execution from
// merging: workers take leaves from the ClaimSet in any interleaving,
// but a single merge loop folds the outcomes into the Result and Report
// strictly in leaf FirstICount order — the same order the serial
// campaign uses — so the final report is byte-identical for any worker
// count. Budget expiry, the MaxFailurePoints cap and stack mode's
// no-progress abort are likewise decided only at merge time, in leaf
// order; speculative replays beyond the stop point are discarded and
// their claims released, keeping even the aggregate counters and the
// final claim state identical to a serial run.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// injectParallel fans the pending leaves out across `workers` goroutines
// pulling from the shared ClaimSet and merges the outcomes
// deterministically. It returns whether the deadline expired before
// every leaf was consumed. A graceful-interruption request is honoured
// like the deadline — workers stop claiming, in-flight replays drain,
// and the merge loop stops at the first unexecuted slot in leaf order —
// but is attributed to Result.Interrupted instead of TimedOut.
func injectParallel(app harness.Application, w workload.Workload, cs *fpt.ClaimSet,
	stacks *stack.Table, mode campaignMode, m *mergeState,
	sb sandboxCfg, cache *imageCache, ckpts *pmem.CheckpointStore, workers int) (timedOut bool) {

	res := m.res
	pending := cs.Pending()
	n := len(pending)
	if workers > n {
		workers = n
	}
	outcomes := make([]replayOutcome, n)
	// taken[i] records that some worker claimed pending[i] via Next;
	// workers write it before closing done[i] and the merge loop reads
	// it only after wg.Wait, so the release sweep sees a settled view.
	taken := make([]bool, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// The ClaimSet cursor hands out contiguous pending indices (nothing
	// else claims during the campaign); every index taken is guaranteed
	// to have its done channel closed, so the merge loop can wait on
	// slots in order without risking a stall.
	var busy atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i, leaf := cs.Next()
				if leaf == nil {
					return
				}
				taken[i] = true
				if sb.interrupted() || (!sb.deadline.IsZero() && time.Now().After(sb.deadline)) {
					// Leave the slot marked not-executed; the merge
					// loop turns the first such slot into Interrupted
					// or TimedOut and the sweep below releases the
					// claim.
					close(done[i])
					return
				}
				t0 := time.Now()
				outcomes[i] = replayClassed(m.plan, cache, leaf, func() replayOutcome {
					return replayLeafWithRetry(app, w, leaf, stacks, mode, sb, cache, ckpts)
				})
				busy.Add(int64(time.Since(t0)))
				close(done[i])
			}
		}()
	}

	consumed := 0
	for i := 0; i < n; i++ {
		if m.capped() {
			break
		}
		<-done[i]
		out := outcomes[i]
		if out.pendingInherit {
			// The worker saw a class member and deferred it here: by now
			// every earlier leaf — the member's representative included —
			// has been merged, so the member inherits its class verdict,
			// or falls back to a live replay on this goroutine when the
			// representative produced none (exactly the serial dispatch).
			// A fallback that trips the mid-replay deadline watchdog is
			// handled by the deadlineHit branch below, and the release
			// sweep hands the member's claim back.
			t0 := time.Now()
			out = m.dispatch(pending[i])
			res.WorkerBusy += time.Since(t0)
		}
		if !out.executed || out.deadlineHit {
			// The worker stopped before replaying (deadline or
			// interruption) or the mid-replay watchdog cut the replay
			// short; decided here in leaf order so speculative later
			// replays are discarded exactly like the serial path. A
			// mid-replay watchdog cut is always budget expiry; an
			// unexecuted slot is attributed to the interruption when
			// one is pending, to the deadline otherwise.
			if !out.deadlineHit && sb.interrupted() {
				res.Interrupted = true
			} else {
				timedOut = true
			}
			break
		}
		consumed = i + 1
		if m.consume(pending[i], out) {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	res.WorkerBusy += time.Duration(busy.Load())
	// Release the claims of leaves that were taken speculatively but
	// never consumed (deadline, cap, abort): those failure points are
	// still unexplored, and the final claim state must match what a
	// serial campaign stopping at the same leaf would leave behind.
	for i := consumed; i < n; i++ {
		if taken[i] {
			cs.Release(pending[i])
		}
	}
	return timedOut
}

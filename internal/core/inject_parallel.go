// Parallel counter-mode fault injection.
//
// Every counter-mode replay is independent: it builds a fresh private
// pmem.Engine, re-runs the deterministic workload, crashes it at the
// leaf's recorded instruction counter and hands the graceful-crash image
// to a private recovery engine. Nothing but the read-only workload, the
// stateless application value and the (concurrency-safe) stack table is
// shared, so the campaign — the hot path of the whole analysis — fans
// out across a bounded worker pool.
//
// Determinism is preserved by separating execution from merging: workers
// replay leaves in any order, but a single merge loop folds the outcomes
// into the Result and Report strictly in leaf FirstICount order — the
// same order the serial campaign uses — so the final report is
// byte-identical for any worker count. Budget expiry and the
// MaxFailurePoints cap are likewise decided only at merge time, in leaf
// order; speculative replays beyond the stop point are discarded
// unconsumed, keeping even the aggregate counters identical to a serial
// run.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// injectCounterParallel fans the counter-mode leaves out across
// cfg.Workers goroutines and merges the outcomes deterministically. It
// returns whether the deadline expired before every leaf was consumed.
func injectCounterParallel(app harness.Application, w workload.Workload, leaves []*fpt.Leaf,
	stacks *stack.Table, cfg Config, rep *report.Report, res *Result, sb sandboxCfg,
	cache *imageCache) (timedOut bool) {

	n := len(leaves)
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	outcomes := make([]counterOutcome, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// next hands out contiguous leaf indices; every index taken is
	// guaranteed to have its done channel closed, so the merge loop can
	// wait on slots in order without risking a stall.
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !sb.deadline.IsZero() && time.Now().After(sb.deadline) {
					// Leave the slot marked not-executed; the merge
					// loop turns the first such slot into TimedOut.
					close(done[i])
					return
				}
				outcomes[i] = replayLeafWithRetry(app, w, leaves[i], stacks, sb, cache)
				close(done[i])
			}
		}()
	}

	injected := 0
	for i := 0; i < n; i++ {
		if cfg.MaxFailurePoints > 0 && injected >= cfg.MaxFailurePoints {
			break
		}
		<-done[i]
		out := outcomes[i]
		if !out.executed || out.deadlineHit {
			// Either the worker saw the deadline before replaying, or
			// the mid-replay watchdog cut the replay short: both are
			// budget expiry, decided here in leaf order so speculative
			// later replays are discarded exactly like the serial path.
			timedOut = true
			break
		}
		consumeOutcome(leaves[i], out, rep, res)
		if out.injected {
			injected++
		}
	}
	stop.Store(true)
	wg.Wait()
	return timedOut
}

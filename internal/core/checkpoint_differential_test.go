package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mumak/internal/apps"
	"mumak/internal/core"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// TestCheckpointRestoreMatchesFromScratchAcrossRegistry is the
// restore-fidelity contract at the pipeline level: for every registry
// target, seed and persistence domain, restoring the instrumented run's
// nearest checkpoint and replaying the mutation-log gap must reproduce
// — bit for bit — the crash state a from-scratch replay reaches at the
// same leaf counter. Compared is everything the campaign observes: the
// counter, the graceful-crash image and its dedup-cache hash, and the
// power-cut snapshot. (Engine-internal state equality — cache lines,
// queue, rolling hash — is proven in internal/pmem.)
func TestCheckpointRestoreMatchesFromScratchAcrossRegistry(t *testing.T) {
	for _, eadr := range []bool{false, true} {
		for _, seed := range []int64{11, 4242} {
			w := workload.Generate(workload.Config{N: 250, Seed: seed, Keyspace: 100,
				PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
			for _, name := range apps.Names() {
				name, eadr, seed := name, eadr, seed
				t.Run(fmt.Sprintf("%s/seed=%d/eadr=%v", name, seed, eadr), func(t *testing.T) {
					mk := func() harness.Application {
						app, err := apps.New(name, apps.Config{SPT: true, PoolSize: 8 << 20, WithRecovery: true})
						if err != nil {
							t.Fatal(err)
						}
						return app
					}
					// The instrumented run: failure point tree + checkpoint
					// recording, exactly as Analyze phase 1 sets it up.
					stacks := stack.NewTable()
					tree := fpt.New(stacks)
					builder := fpt.NewBuilder(tree, fpt.GranPersistency)
					eng, sig, err := harness.Execute(mk(), w, pmem.Options{
						Capture: pmem.CapturePersistency, Stacks: stacks,
						EADR: eadr, CheckpointEvery: 512,
					}, builder)
					if err != nil || sig != nil {
						t.Fatalf("instrumented run failed: err=%v sig=%v", err, sig)
					}
					s := eng.Checkpoints()
					if s == nil || s.Count() == 0 {
						t.Fatal("instrumented run recorded no checkpoints")
					}
					leaves := tree.LeavesByICount()
					if len(leaves) == 0 {
						t.Fatal("no failure points recorded")
					}
					// Sample leaves evenly across the trace, first and last
					// included.
					stride := len(leaves)/8 + 1
					for i := 0; i < len(leaves); i += stride {
						for _, leaf := range []*fpt.Leaf{leaves[i], leaves[len(leaves)-1-i]} {
							restored, gap, err := s.ReplayTo(leaf.FirstICount, time.Time{})
							if err != nil {
								t.Fatalf("ReplayTo(%d): %v", leaf.FirstICount, err)
							}
							if gap == 0 || gap > leaf.FirstICount {
								t.Fatalf("ReplayTo(%d): nonsensical gap %d", leaf.FirstICount, gap)
							}
							fresh, fsig, err := harness.Execute(mk(), w, pmem.Options{
								EADR: eadr, CrashAt: leaf.FirstICount,
							})
							if err != nil || fsig == nil {
								t.Fatalf("from-scratch replay to %d: err=%v sig=%v", leaf.FirstICount, err, fsig)
							}
							if restored.ICount() != fresh.ICount() {
								t.Fatalf("leaf %d: restored icount %d, from-scratch %d",
									leaf.FirstICount, restored.ICount(), fresh.ICount())
							}
							if rh, fh := restored.PrefixImageHash(), fresh.PrefixImageHash(); rh != fh {
								t.Fatalf("leaf %d: PrefixImageHash %#x, from-scratch %#x", leaf.FirstICount, rh, fh)
							}
							if !bytes.Equal(restored.PrefixImage().Bytes(), fresh.PrefixImage().Bytes()) {
								t.Fatalf("leaf %d: PrefixImage bytes diverge", leaf.FirstICount)
							}
							if rh, fh := restored.MediumSnapshotHash(), fresh.MediumSnapshotHash(); rh != fh {
								t.Fatalf("leaf %d: MediumSnapshotHash %#x, from-scratch %#x", leaf.FirstICount, rh, fh)
							}
						}
					}
				})
			}
		}
	}
}

// TestCheckpointedCampaignReportsIdentical is the campaign-level
// differential: with checkpointing on — default or tight interval,
// serial or parallel — the report (text and JSON) is byte-identical to
// a non-checkpointed serial run, coverage counters agree, and every
// injection is served by a restore.
func TestCheckpointedCampaignReportsIdentical(t *testing.T) {
	for _, tc := range cacheCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := core.Analyze(tc.mk(), tc.w, core.Config{KeepWarnings: true, CheckpointInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			if base.Checkpoints != 0 || base.CheckpointBytes != 0 || base.CheckpointRestores != 0 {
				t.Fatalf("disabled checkpointing reported activity: %d snapshots, %d bytes, %d restores",
					base.Checkpoints, base.CheckpointBytes, base.CheckpointRestores)
			}
			want := renderReport(t, base.Report)
			variants := []struct {
				name string
				cfg  core.Config
			}{
				{"default-serial", core.Config{KeepWarnings: true}},
				{"default-parallel", core.Config{KeepWarnings: true, Workers: 4}},
				{"tight-interval", core.Config{KeepWarnings: true, CheckpointInterval: 64}},
				{"tight-parallel", core.Config{KeepWarnings: true, CheckpointInterval: 64, Workers: 8}},
			}
			for _, v := range variants {
				res, err := core.Analyze(tc.mk(), tc.w, v.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := renderReport(t, res.Report); got != want {
					t.Errorf("%s: report diverged from the non-checkpointed serial run:\n--- want ---\n%s\n--- got ---\n%s",
						v.name, want, got)
				}
				if res.Injections != base.Injections || res.Recoveries != base.Recoveries ||
					res.SkippedFailurePoints != base.SkippedFailurePoints {
					t.Errorf("%s: coverage diverged: injections %d/%d recoveries %d/%d skipped %d/%d",
						v.name, res.Injections, base.Injections, res.Recoveries, base.Recoveries,
						res.SkippedFailurePoints, base.SkippedFailurePoints)
				}
				// A trace shorter than the interval legitimately takes no
				// snapshot (every restore starts from the genesis state),
				// but the mutation log must always have been recorded.
				if res.CheckpointBytes == 0 {
					t.Errorf("%s: no checkpoint state recorded", v.name)
				}
				if res.CheckpointRestores != res.Injections {
					t.Errorf("%s: %d of %d injections served by restore; counter mode must restore all",
						v.name, res.CheckpointRestores, res.Injections)
				}
			}
		})
	}
}

// TestStackModeIgnoresCheckpointing: stack-mode replays must re-execute
// the application (call stacks only exist on a live run), so a
// checkpoint interval is accepted but never acted on.
func TestStackModeIgnoresCheckpointing(t *testing.T) {
	res, err := core.Analyze(tc(t), smallWorkload(5), core.Config{
		StackMode: true, CheckpointInterval: 64, DisableTraceAnalysis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 || res.CheckpointRestores != 0 {
		t.Errorf("stack mode recorded checkpoint activity: %d snapshots, %d restores",
			res.Checkpoints, res.CheckpointRestores)
	}
	if res.Injections == 0 {
		t.Error("stack-mode campaign injected nothing; the comparison is vacuous")
	}
}

// tc builds the default clean btree target used across campaign tests.
func tc(t *testing.T) harness.Application {
	t.Helper()
	app, err := apps.New("btree", apps.Config{SPT: true, PoolSize: 2 << 20, WithRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

package core_test

import (
	"strings"
	"testing"
	"time"

	"mumak/internal/apps/apptest/misbehave"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/report"
	"mumak/internal/workload"
)

// sandboxConfig bounds the watchdogs tightly so the misbehave fixtures'
// infinite loops are cut within milliseconds rather than at the
// production defaults.
func sandboxConfig(workers int) core.Config {
	return core.Config{
		Workers:         workers,
		HangBudget:      30000,
		RecoveryTimeout: 2 * time.Second,
	}
}

func fixture(t *testing.T, name string) harness.Application {
	t.Helper()
	app, ok := misbehave.New(name)
	if !ok {
		t.Fatalf("fixture %q not registered", name)
	}
	return app
}

// The fixtures ignore the workload; a tiny one keeps intent obvious.
func fixtureWorkload() workload.Workload {
	return workload.Generate(workload.Config{N: 10, Seed: 1})
}

// TestCampaignSurvivesPanickingRun is the acceptance scenario for panic
// isolation: a target whose Run panics must not crash the campaign —
// serially or across a worker pool (exercised under -race) — and the
// panic must surface as a TargetCrash finding.
func TestCampaignSurvivesPanickingRun(t *testing.T) {
	for _, workers := range []int{1, 8} {
		res, err := core.Analyze(fixture(t, "misbehave-run-panic"), fixtureWorkload(), sandboxConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.TargetPanics != 1 {
			t.Errorf("workers=%d: TargetPanics = %d, want 1", workers, res.TargetPanics)
		}
		if res.Report.CountByKind()[report.TargetCrash] == 0 {
			t.Errorf("workers=%d: no TargetCrash finding reported", workers)
		}
		if res.Injections == 0 {
			t.Errorf("workers=%d: campaign injected nothing; it should continue past the panic", workers)
		}
		found := false
		for _, f := range res.Report.Bugs() {
			if f.Kind == report.TargetCrash && strings.Contains(f.Detail, "seeded target panic") {
				found = true
			}
		}
		if !found {
			t.Errorf("workers=%d: TargetCrash finding lacks the panic value", workers)
		}
	}
}

// TestCampaignSurvivesHangingRun: a Run that never terminates is cut by
// the fuel watchdog and reported, and the campaign still completes the
// failure points recorded before the hang.
func TestCampaignSurvivesHangingRun(t *testing.T) {
	for _, workers := range []int{1, 8} {
		res, err := core.Analyze(fixture(t, "misbehave-run-hang"), fixtureWorkload(), sandboxConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.TargetHangs == 0 {
			t.Errorf("workers=%d: TargetHangs = 0, want the watchdog kill counted", workers)
		}
		if res.Report.CountByKind()[report.TargetCrash] == 0 {
			t.Errorf("workers=%d: no TargetCrash finding for the hang", workers)
		}
		if res.Injections == 0 {
			t.Errorf("workers=%d: campaign injected nothing despite pre-hang failure points", workers)
		}
		if res.TimedOut {
			t.Errorf("workers=%d: fuel kill misreported as budget expiry", workers)
		}
	}
}

// TestCampaignSurvivesHangingRecovery: a recovery procedure that loops
// forever yields Hung verdicts and RecoveryHang findings instead of
// stalling the campaign, and the parallel report matches the serial one
// byte for byte (Hung details render from configured bounds only).
func TestCampaignSurvivesHangingRecovery(t *testing.T) {
	serial, err := core.Analyze(fixture(t, "misbehave-recovery-hang"), fixtureWorkload(), sandboxConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.RecoveryHangs == 0 {
		t.Error("RecoveryHangs = 0, want every oracle invocation counted as hung")
	}
	if serial.Report.CountByKind()[report.RecoveryHang] == 0 {
		t.Error("no RecoveryHang finding reported")
	}
	if serial.Recoveries == 0 {
		t.Error("Recoveries = 0, want hung invocations still counted")
	}
	par, err := core.Analyze(fixture(t, "misbehave-recovery-hang"), fixtureWorkload(), sandboxConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Report.Format(true), serial.Report.Format(true); got != want {
		t.Errorf("parallel report with hung recoveries differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if par.RecoveryHangs != serial.RecoveryHangs {
		t.Errorf("RecoveryHangs diverge: serial %d, parallel %d", serial.RecoveryHangs, par.RecoveryHangs)
	}
}

// TestSandboxedCleanFixtureStaysClean: the control fixture completes
// without a single sandbox intervention or bug.
func TestSandboxedCleanFixtureStaysClean(t *testing.T) {
	res, err := core.Analyze(fixture(t, "misbehave-clean"), fixtureWorkload(), sandboxConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Report.Bugs()); n != 0 {
		t.Errorf("clean fixture reported %d bug(s):\n%s", n, res.Report.Format(true))
	}
	if res.TargetPanics != 0 || res.TargetHangs != 0 || res.RecoveryHangs != 0 {
		t.Errorf("sandbox intervened on a clean target: panics=%d hangs=%d recovery=%d",
			res.TargetPanics, res.TargetHangs, res.RecoveryHangs)
	}
}

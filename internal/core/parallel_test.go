package core_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/levelhash"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

// parallelCases are seed targets with real findings, the determinism
// fixtures for the parallel campaign.
func parallelCases() []struct {
	name string
	mk   func() harness.Application
	w    workload.Workload
} {
	return []struct {
		name string
		mk   func() harness.Application
		w    workload.Workload
	}{
		{
			name: "btree",
			mk: func() harness.Application {
				return btree.New(cfgSPT(btree.BugCountOutsideTx))
			},
			w: smallWorkload(21),
		},
		{
			name: "levelhash",
			mk: func() harness.Application {
				return levelhash.New(apps.Config{
					PoolSize: 2 << 20, WithRecovery: true,
					Bugs: bugs.Enable("levelhash/c01-top-slot-count-order"),
				})
			},
			w: workload.Generate(workload.Config{N: 300, Seed: 8, Keyspace: 150, PutFrac: 3, GetFrac: 1, DeleteFrac: 1}),
		},
	}
}

// TestParallelInjectionMatchesSerial checks the campaign's determinism
// contract: for any worker count the merged report is byte-identical to
// the serial run, and the aggregate counters agree. Run under -race with
// >=4 workers this also exercises the concurrency of the worker pool on
// targets with real findings.
func TestParallelInjectionMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial, err := core.Analyze(tc.mk(), tc.w, core.Config{KeepWarnings: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Report.Bugs()) == 0 {
				t.Fatal("fixture produced no findings; determinism check is vacuous")
			}
			want := serial.Report.Format(true)
			for _, workers := range []int{2, 4, 8} {
				par, err := core.Analyze(tc.mk(), tc.w, core.Config{KeepWarnings: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if got := par.Report.Format(true); got != want {
					t.Errorf("workers=%d: report differs from serial run\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, got)
				}
				if par.Injections != serial.Injections || par.Recoveries != serial.Recoveries ||
					par.SkippedFailurePoints != serial.SkippedFailurePoints ||
					par.EngineEvents != serial.EngineEvents {
					t.Errorf("workers=%d: counters diverge: injections %d/%d recoveries %d/%d skipped %d/%d events %d/%d",
						workers, par.Injections, serial.Injections, par.Recoveries, serial.Recoveries,
						par.SkippedFailurePoints, serial.SkippedFailurePoints, par.EngineEvents, serial.EngineEvents)
				}
			}
		})
	}
}

// TestParallelInjectionCapMatchesSerial checks that the MaxFailurePoints
// cap is applied at merge time in leaf order, so a capped parallel
// campaign consumes exactly the leaves a capped serial one does.
func TestParallelInjectionCapMatchesSerial(t *testing.T) {
	cfg := core.Config{DisableTraceAnalysis: true, MaxFailurePoints: 5}
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(22)
	serial, err := core.Analyze(mk(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Injections != cfg.MaxFailurePoints {
		t.Fatalf("serial run injected %d faults, want the cap of %d", serial.Injections, cfg.MaxFailurePoints)
	}
	pcfg := cfg
	pcfg.Workers = 4
	par, err := core.Analyze(mk(), w, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Injections != serial.Injections || par.EngineEvents != serial.EngineEvents {
		t.Fatalf("capped parallel run diverged: injections %d/%d events %d/%d",
			par.Injections, serial.Injections, par.EngineEvents, serial.EngineEvents)
	}
	if got, want := par.Report.Format(false), serial.Report.Format(false); got != want {
		t.Fatalf("capped parallel report differs:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if got, want := par.Claims.Remaining(), serial.Claims.Remaining(); got != want {
		t.Fatalf("capped parallel run left %d leaves unclaimed, serial %d", got, want)
	}
}

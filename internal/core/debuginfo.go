package core

import (
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// resolveStacks is the §5 debug-information pass: the optimised trace
// carries only instruction counters, so the target is executed once more
// with minimal instrumentation that captures call stacks exactly at the
// flagged counters. The pass relies on the target's determinism, like
// the counter-mode injector.
func resolveStacks(app harness.Application, w workload.Workload,
	capture pmem.StackCapture, stacks *stack.Table, findings []*report.Finding, sb sandboxCfg) {

	if len(findings) == 0 {
		return
	}
	wanted := make(map[uint64][]*report.Finding, len(findings))
	for _, f := range findings {
		f.Stack = stack.NoID
		wanted[f.ICount] = append(wanted[f.ICount], f)
	}
	hook := &stackResolver{wanted: wanted, stacks: stacks}
	// The pass re-executes the target, so it runs under the same sandbox
	// as every other execution: a panicking or hanging target must not
	// take the finished analysis down with it. Failures here only
	// degrade debug info; findings stay valid.
	opts := pmem.Options{}
	if !sb.disabled {
		opts.MaxEvents = sb.budget
		opts.Deadline = sb.deadline
	}
	_, _ = execute(app, w, opts, sb, hook)
}

type stackResolver struct {
	wanted map[uint64][]*report.Finding
	stacks *stack.Table
}

// OnEvent implements pmem.Hook.
func (sr *stackResolver) OnEvent(ev *pmem.Event) {
	fs, ok := sr.wanted[ev.ICount]
	if !ok {
		return
	}
	id := sr.stacks.Capture(1)
	for _, f := range fs {
		f.Stack = id
	}
}

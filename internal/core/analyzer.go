package core

import (
	"fmt"
	"sort"

	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
)

// evRef compactly identifies one analysed instruction: its engine
// instruction counter, the record's start address, and the stack captured
// at the instruction (stack.NoID when capture was off for its class). It
// replaces the trace-record indices the offline pass used to keep, so the
// analyzer never retains a trace.Record slice or payload buffer.
type evRef struct {
	icount uint64
	addr   uint64
	stack  stack.ID
}

// lineState tracks one cache line across the analysis. Its memory is the
// analyzer's working set: a fixed-size core plus the pending refs that a
// write-back clears, so resident state is proportional to live (not yet
// persisted) cache lines rather than to trace length.
type lineState struct {
	// dirty marks bytes stored (through the cache) since the line's
	// last write-back. It mirrors the engine's dirty bitmask: a
	// non-temporal store does NOT clear it — the cached bytes remain
	// dirty and a later flush still queues a real write-back.
	dirty uint64
	// unpersisted marks cached-store bytes whose data is not yet on its
	// way to the medium by any route. It starts out equal to dirty but a
	// non-temporal store clears the bytes it covers: the NT write
	// carries the same addresses into the write-pending queue, so the
	// earlier cached stores no longer need an explicit flush to become
	// durable. This is the mask the durability patterns consult.
	unpersisted uint64
	// unflushed holds the store events contributing unpersisted bytes
	// not yet covered by any flush or non-temporal overwrite.
	unflushed []evRef
	// storesSinceFlush counts contributing store events since the last
	// write-back, for the multi-store-flush warning.
	storesSinceFlush int
	// everFlushed records whether the line was flushed at any point of
	// the execution (distinguishing durability bugs from transient
	// data, §4.2).
	everFlushed bool
	// ntWritten records whether the line was ever written by a
	// non-temporal store; a flush of a line that only ever received NT
	// data has nothing cached to write back.
	ntWritten bool
	// overwrites collects the store events that overwrote unpersisted
	// bytes; they are reported as dirty overwrites only when the line
	// is never flushed at all, since rewriting a location several times
	// before one write-back is ordinary write combining. Once the line
	// has been flushed they can never be reported, so they are dropped
	// and no longer collected.
	overwrites []evRef
	// flushedSinceStore is true when the line is clean and already
	// written back: a further flush is redundant.
	flushedSinceStore bool
}

// Approximate per-unit resident costs of the analyzer state, used for the
// state-size gauges: a lineState plus its map slot, and one evRef.
const (
	lineStateCost = 128
	evRefCost     = 24
)

// Analyzer is the §4.2 pattern matcher as an online pmem.Hook: it
// consumes the persistency-instruction stream while the workload executes
// and emits findings at Finalize. Because it keeps only per-cache-line
// state, analysing a workload needs memory proportional to the number of
// live cache lines, not to the trace length — the property that lets
// cmd/mumak default to the paper's 150 000-op workloads.
//
// The offline front-end AnalyzeTrace replays a recorded trace through the
// same implementation, so streaming and offline analyses produce
// identical findings.
type Analyzer struct {
	cfg   Config
	lines map[uint64]*lineState

	// Fence bookkeeping: flush instructions and non-temporal stores
	// since the last fence.
	flushesSinceFence int
	ntSinceFence      int
	ntPending         []evRef // NT store events awaiting a fence

	findings  []*report.Finding
	events    int
	finalized bool

	// State-size gauges: live refs across all lines plus ntPending, and
	// the peaks the metrics counters report.
	liveRefs       int
	peakLines      int
	peakStateBytes uint64
}

// NewAnalyzer returns an online analyzer for one execution. Attach it to
// the instrumented engine (it implements pmem.Hook) or feed it a recorded
// trace via AnalyzeTrace, then collect findings with Finalize.
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{cfg: cfg, lines: make(map[uint64]*lineState)}
}

func (a *Analyzer) lineOf(addr uint64) *lineState {
	base := addr &^ (pmem.CacheLineSize - 1)
	st := a.lines[base]
	if st == nil {
		st = &lineState{}
		a.lines[base] = st
		if n := len(a.lines); n > a.peakLines {
			a.peakLines = n
		}
	}
	return st
}

func (a *Analyzer) add(kind report.Kind, ref evRef, detail string) {
	a.findings = append(a.findings, &report.Finding{
		Kind:   kind,
		ICount: ref.icount,
		Addr:   ref.addr,
		Stack:  ref.stack,
		Detail: detail,
	})
}

// OnEvent implements pmem.Hook: one §4.2 pattern step per instruction.
func (a *Analyzer) OnEvent(ev *pmem.Event) {
	if ev.Op == pmem.OpLoad {
		return
	}
	a.events++
	ref := evRef{icount: ev.ICount, addr: ev.Addr, stack: ev.Stack}
	switch ev.Op {
	case pmem.OpStore, pmem.OpRMW:
		a.applyStore(ev, ref)
		if ev.Op == pmem.OpRMW {
			// RMW drains buffered flushes but is never itself a
			// redundant-fence candidate (it synchronises threads,
			// not persistence).
			a.flushesSinceFence = 0
			a.ntSinceFence = 0
			a.clearNTPending()
		}
	case pmem.OpNTStore:
		a.ntSinceFence++
		if !a.cfg.EADR {
			a.ntPending = append(a.ntPending, ref)
			a.liveRefs++
		}
		a.applyNTStore(ev)
	case pmem.OpCLFlush, pmem.OpCLFlushOpt, pmem.OpCLWB:
		a.applyFlush(ev, ref)
	case pmem.OpSFence, pmem.OpMFence:
		if a.flushesSinceFence == 0 && a.ntSinceFence == 0 {
			a.add(report.RedundantFence, ref,
				"no flush or non-temporal store since the previous fence")
		} else if a.flushesSinceFence+a.ntSinceFence > 1 {
			a.add(report.WarnFenceOrdering, ref, fmt.Sprintf(
				"%d write-backs race to this fence; orderings violating program order were not explored",
				a.flushesSinceFence+a.ntSinceFence))
		}
		a.flushesSinceFence = 0
		a.ntSinceFence = 0
		a.clearNTPending()
	}
	if bytes := a.stateBytes(); bytes > a.peakStateBytes {
		a.peakStateBytes = bytes
	}
}

// applyStore marks the bytes of a cached store (or the store half of an
// RMW) dirty on every line it touches.
func (a *Analyzer) applyStore(ev *pmem.Event, ref evRef) {
	addr, size := ev.Addr, uint64(ev.Size)
	for size > 0 {
		base := addr &^ (pmem.CacheLineSize - 1)
		st := a.lineOf(addr)
		off := addr - base
		n := pmem.CacheLineSize - off
		if n > size {
			n = size
		}
		mask := lineMask(off, n)
		if st.unpersisted&mask != 0 && !a.cfg.EADR && !st.everFlushed {
			// Overwrites are only ever reported for never-flushed
			// lines, so there is nothing to collect once the line has
			// been written back (or under eADR, which has no
			// durability patterns at all). Bytes already persisted via
			// a non-temporal overwrite are not dirty in this sense.
			st.overwrites = append(st.overwrites, ref)
			a.liveRefs++
		}
		st.dirty |= mask
		st.unpersisted |= mask
		if !a.cfg.EADR {
			st.unflushed = append(st.unflushed, ref)
			a.liveRefs++
		}
		st.storesSinceFlush++
		st.flushedSinceStore = false
		addr += n
		size -= n
	}
}

// applyNTStore models a non-temporal store as writing through: the
// covered bytes join the write-pending queue directly, so overlapping
// unpersisted cached bytes no longer need an explicit flush to become
// durable (their addresses are persisted by the NT write). The line's
// engine dirty mask is untouched — an NT store to a cached line does not
// clean the cache, and a later flush still performs a real write-back —
// but a line whose only writes were non-temporal is marked so a flush of
// it can be recognised as having nothing cached to persist.
func (a *Analyzer) applyNTStore(ev *pmem.Event) {
	addr, size := ev.Addr, uint64(ev.Size)
	for size > 0 {
		base := addr &^ (pmem.CacheLineSize - 1)
		st := a.lineOf(addr)
		off := addr - base
		n := pmem.CacheLineSize - off
		if n > size {
			n = size
		}
		st.unpersisted &^= lineMask(off, n)
		if st.unpersisted == 0 && len(st.unflushed) > 0 {
			// Every unpersisted byte was overwritten non-temporally:
			// the earlier stores can no longer be durability findings.
			a.liveRefs -= len(st.unflushed)
			st.unflushed = st.unflushed[:0]
		}
		st.ntWritten = true
		addr += n
		size -= n
	}
}

// applyFlush runs the redundant-flush patterns and clears the line.
func (a *Analyzer) applyFlush(ev *pmem.Event, ref evRef) {
	st := a.lineOf(ev.Addr)
	if a.cfg.EADR {
		// The persistence domain includes the caches: every cache
		// flush is wasted work (§4.3).
		a.add(report.RedundantFlush, ref, "cache flushes are unnecessary on an eADR system")
	} else if st.flushedSinceStore {
		a.add(report.RedundantFlush, ref,
			"the line was not written since its previous write-back")
	} else if st.dirty == 0 && st.everFlushed {
		a.add(report.RedundantFlush, ref, "the line holds no unpersisted data")
	} else if st.dirty == 0 && st.ntWritten {
		// First flush of a line whose only writes were non-temporal:
		// nothing is cached, so the flush persists nothing the NT
		// stores' fence would not. Advisory only — persisting a range
		// over freshly NT-zeroed blocks is a common library idiom.
		a.add(report.WarnRedundantNTFlush, ref,
			"the line was written only non-temporally; there is nothing cached to write back")
	}
	if st.storesSinceFlush > 1 {
		a.add(report.WarnMultiStoreFlush, ref, fmt.Sprintf(
			"one flush covers %d separate stores; the layout may differ on other platforms",
			st.storesSinceFlush))
	}
	st.dirty = 0
	st.unpersisted = 0
	a.liveRefs -= len(st.unflushed) + len(st.overwrites)
	st.unflushed = nil
	st.overwrites = nil
	st.storesSinceFlush = 0
	st.everFlushed = true
	st.flushedSinceStore = true
	if ev.Op != pmem.OpCLFlush {
		a.flushesSinceFence++
	}
}

func (a *Analyzer) clearNTPending() {
	a.liveRefs -= len(a.ntPending)
	a.ntPending = a.ntPending[:0]
}

func lineMask(off, n uint64) uint64 {
	var mask uint64
	for b := uint64(0); b < n; b++ {
		mask |= 1 << (off + b)
	}
	return mask
}

// Finalize runs the end-of-trace patterns — stores that were never
// persisted — and returns the findings. It publishes the analyzer's peak
// state to the metrics counters; further events are not expected, and
// repeated calls return the same findings.
func (a *Analyzer) Finalize() []*report.Finding {
	if a.finalized {
		return a.findings
	}
	a.finalized = true
	// Under eADR every store is durable once visible, so the durability
	// and transient-data patterns do not apply (§4.3).
	if !a.cfg.EADR {
		bases := make([]uint64, 0, len(a.lines))
		for base := range a.lines {
			bases = append(bases, base)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
		// A store spanning two lines contributes refs to both; report
		// each instruction once.
		reported := map[uint64]bool{}
		for _, base := range bases {
			st := a.lines[base]
			for _, ref := range st.unflushed {
				if reported[ref.icount] {
					continue
				}
				reported[ref.icount] = true
				if st.everFlushed {
					a.add(report.Durability, ref,
						"store never explicitly persisted although its line is flushed elsewhere in the execution")
				} else {
					a.add(report.WarnTransientData, ref,
						"store to a region that is never flushed; consider volatile memory")
				}
			}
			if !st.everFlushed {
				for _, ref := range st.overwrites {
					a.add(report.DirtyOverwrite, ref,
						"address written repeatedly and never persisted; the data belongs in volatile memory")
				}
			}
		}
		for _, ref := range a.ntPending {
			if !reported[ref.icount] {
				reported[ref.icount] = true
				a.add(report.Durability, ref,
					"non-temporal store never fenced; its durability is not guaranteed")
			}
		}
	}
	metrics.RecordAnalyzer(a.peakLines, a.peakStateBytes)
	return a.findings
}

// Events returns the number of analysed instructions (loads excluded),
// the streaming equivalent of the recorded-trace length.
func (a *Analyzer) Events() int { return a.events }

// LiveLines returns the number of cache lines currently tracked.
func (a *Analyzer) LiveLines() int { return len(a.lines) }

// PeakLiveLines returns the maximum number of simultaneously tracked
// cache lines.
func (a *Analyzer) PeakLiveLines() int { return a.peakLines }

// PeakStateBytes returns the peak approximate resident analyzer state:
// line structures plus pending event refs. It deliberately excludes the
// emitted findings, which are output rather than working state.
func (a *Analyzer) PeakStateBytes() uint64 { return a.peakStateBytes }

func (a *Analyzer) stateBytes() uint64 {
	return uint64(len(a.lines))*lineStateCost + uint64(a.liveRefs)*evRefCost
}

package core_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"mumak/internal/apps/apptest/imagedup"
	"mumak/internal/apps/btree"
	"mumak/internal/campaign"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

// classingCases trims the cache fixtures for the stack-mode half of the
// classing matrix: stack mode re-executes the whole workload per live
// replay, so the slowest fixture is dropped there to keep the suite
// bounded. Counter mode runs the full set.
func classingCases(stackMode bool) []struct {
	name string
	mk   func() harness.Application
	w    workload.Workload
} {
	cases := cacheCases()
	if !stackMode {
		return cases
	}
	trimmed := cases[:0]
	for _, tc := range cases {
		if tc.name != "levelhash-bug" {
			trimmed = append(trimmed, tc)
		}
	}
	return trimmed
}

// TestClassingDifferential is the classing correctness contract: for
// every fixture, mode and worker count, a classed campaign's report —
// text and JSON — is byte-identical to the unclassed reference, the
// injection coverage is unchanged, and the recovery runs collapse to
// one per crash-image equivalence class (members inherit, they are
// never re-judged).
func TestClassingDifferential(t *testing.T) {
	for _, stackMode := range []bool{false, true} {
		mode := "counter"
		if stackMode {
			mode = "stack"
		}
		for _, tc := range classingCases(stackMode) {
			tc, stackMode := tc, stackMode
			t.Run(fmt.Sprintf("%s/%s", tc.name, mode), func(t *testing.T) {
				t.Parallel()
				base := core.Config{KeepWarnings: true, StackMode: stackMode}
				ref, err := core.Analyze(tc.mk(), tc.w, base)
				if err != nil {
					t.Fatal(err)
				}
				if ref.EquivClasses != 0 || ref.InheritedVerdicts != 0 || ref.ReplaysAvoided != 0 {
					t.Fatalf("unclassed run reported classing activity: %+v", ref)
				}
				want := renderReport(t, ref.Report)
				for _, workers := range []int{1, 4} {
					cfg := base
					cfg.Classing = true
					cfg.Workers = workers
					res, err := core.Analyze(tc.mk(), tc.w, cfg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("workers=%d", workers)
					if got := renderReport(t, res.Report); got != want {
						t.Errorf("%s: classed report differs from unclassed reference\n--- unclassed ---\n%s\n--- classed ---\n%s",
							label, want, got)
					}
					if res.Injections != ref.Injections || res.SkippedFailurePoints != ref.SkippedFailurePoints ||
						res.QuarantinedFailurePoints != ref.QuarantinedFailurePoints {
						t.Errorf("%s: coverage diverges: injections %d/%d skipped %d/%d quarantined %d/%d",
							label, res.Injections, ref.Injections,
							res.SkippedFailurePoints, ref.SkippedFailurePoints,
							res.QuarantinedFailurePoints, ref.QuarantinedFailurePoints)
					}
					if res.EquivClasses == 0 {
						t.Errorf("%s: classing enabled but no classes were built", label)
					}
					// Every inherited member would have recovered (via the
					// image cache) in the unclassed run; nothing else changes.
					if res.Recoveries+res.InheritedVerdicts != ref.Recoveries {
						t.Errorf("%s: recoveries %d + inherited %d != reference recoveries %d",
							label, res.Recoveries, res.InheritedVerdicts, ref.Recoveries)
					}
					if res.SkippedFailurePoints == 0 && res.TargetPanics == 0 &&
						res.Recoveries != res.EquivClasses {
						t.Errorf("%s: %d recoveries for %d classes; want exactly one per class",
							label, res.Recoveries, res.EquivClasses)
					}
					if res.ReplaysAvoided < res.InheritedVerdicts {
						t.Errorf("%s: replays avoided %d < inherited %d", label,
							res.ReplaysAvoided, res.InheritedVerdicts)
					}
					if res.EngineEvents > ref.EngineEvents {
						t.Errorf("%s: classed campaign replayed more events (%d) than the reference (%d)",
							label, res.EngineEvents, ref.EngineEvents)
					}
				}
			})
		}
	}
}

// TestClassingDedupsScanPhase pins the perf win on the fixture built
// for duplication: imagedup's scan leaves share one crash image, so the
// classed campaign must inherit (not just cache-hit) all of them.
func TestClassingDedupsScanPhase(t *testing.T) {
	mkDup := func(name string) harness.Application {
		app, ok := imagedup.New(name)
		if !ok {
			t.Fatalf("unknown imagedup fixture %s", name)
		}
		return app
	}
	res, err := core.Analyze(mkDup("imagedup"), smallWorkload(3),
		core.Config{DisableTraceAnalysis: true, Classing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InheritedVerdicts == 0 {
		t.Fatal("high-duplication fixture inherited no verdicts")
	}
	if res.EquivClasses >= res.Injections {
		t.Fatalf("classing was vacuous: %d classes for %d injections",
			res.EquivClasses, res.Injections)
	}
	ref, err := core.Analyze(mkDup("imagedup"), smallWorkload(3),
		core.Config{DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineEvents >= ref.EngineEvents {
		t.Errorf("classing did not reduce replayed engine events: %d vs %d",
			res.EngineEvents, ref.EngineEvents)
	}
}

// TestClassingEADRDifferential repeats the differential check under the
// extended persistence domain, whose instrumented run takes the eADR
// snapshot paths (and therefore the eADR rolling-hash paths).
func TestClassingEADRDifferential(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(7)
	ref, err := core.Analyze(mk(), w, core.Config{KeepWarnings: true, EADR: true})
	if err != nil {
		t.Fatal(err)
	}
	classed, err := core.Analyze(mk(), w, core.Config{KeepWarnings: true, EADR: true, Classing: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReport(t, classed.Report), renderReport(t, ref.Report); got != want {
		t.Errorf("eADR classed report differs from unclassed\n--- unclassed ---\n%s\n--- classed ---\n%s", want, got)
	}
	if classed.Recoveries+classed.InheritedVerdicts != ref.Recoveries {
		t.Errorf("eADR recoveries %d + inherited %d != reference %d",
			classed.Recoveries, classed.InheritedVerdicts, ref.Recoveries)
	}
}

// TestPersistentVerdictCacheWarmMatchesCold is the cross-run contract:
// a campaign warmed from a previous identical campaign's persisted
// verdicts — round-tripped through the actual cache file — produces a
// byte-identical report while running zero recoveries for images the
// file had already judged.
func TestPersistentVerdictCacheWarmMatchesCold(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	cold, err := core.Analyze(mk(), w, core.Config{Classing: true, PersistVerdicts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.VerdictCache) == 0 {
		t.Fatal("PersistVerdicts exported no entries")
	}
	if cold.PersistentCacheHits != 0 {
		t.Fatalf("cold run claims %d persistent hits", cold.PersistentCacheHits)
	}
	want := renderReport(t, cold.Report)

	meta := campaign.Meta{Target: "fixture", Ops: 21, Seed: 21}
	path := filepath.Join(t.TempDir(), "verdicts.bin")
	if err := campaign.SaveVerdictCache(path, meta, cold.VerdictCache); err != nil {
		t.Fatal(err)
	}
	warmEntries, err := campaign.LoadVerdictCache(path, meta)
	if err != nil {
		t.Fatal(err)
	}

	for _, classing := range []bool{true, false} {
		warm, err := core.Analyze(mk(), w, core.Config{
			Classing: classing, WarmVerdicts: warmEntries, PersistVerdicts: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("classing=%v", classing)
		if got := renderReport(t, warm.Report); got != want {
			t.Errorf("%s: warm report differs from cold\n--- cold ---\n%s\n--- warm ---\n%s", label, want, got)
		}
		if warm.PersistentCacheHits == 0 {
			t.Errorf("%s: warm run hit the persistent cache zero times", label)
		}
		if warm.PersistentCacheMisses != 0 {
			t.Errorf("%s: warm run missed %d images the cold run should have judged",
				label, warm.PersistentCacheMisses)
		}
		if classing && warm.ReplaysAvoided <= cold.ReplaysAvoided {
			t.Errorf("warm classed run avoided %d replays, cold avoided %d; warming must elide the representatives too",
				warm.ReplaysAvoided, cold.ReplaysAvoided)
		}
	}
}

// TestClassingResumeByteIdentical crosses classing with crash-safe
// resume: a classed journaled campaign killed mid-run must resume to
// the uninterrupted classed report, with inherited verdicts flowing
// across the resume boundary (class templates are re-captured from the
// folded journal records).
func TestClassingResumeByteIdentical(t *testing.T) {
	mk := func() harness.Application { return btree.New(cfgSPT(btree.BugCountOutsideTx)) }
	w := smallWorkload(21)
	cfg := journaledConfig(false, 1)
	cfg.Classing = true
	ref, err := core.Analyze(mk(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := t.TempDir()
	analyzeJournaled(t, mk, w, cfg, full)
	logLen := fileSize(t, filepath.Join(full, campaign.JournalFile))
	for _, cut := range []int64{1, logLen / 3, logLen / 2, logLen - 3} {
		dir := copyTruncated(t, full, cut, cut%2 == 0)
		res := analyzeResumed(t, mk, w, cfg, dir)
		label := fmt.Sprintf("cut=%d", cut)
		// EngineEvents are deliberately not compared: a resumed classed
		// campaign may elide representatives through snapshot-seeded
		// cache entries, which skips their gap replays without changing
		// a single verdict.
		if got, want := renderReport(t, res.Report), renderReport(t, ref.Report); got != want {
			t.Errorf("%s: resumed classed report differs\n--- reference ---\n%s\n--- resumed ---\n%s",
				label, want, got)
		}
		if res.Injections != ref.Injections || res.SkippedFailurePoints != ref.SkippedFailurePoints ||
			res.QuarantinedFailurePoints != ref.QuarantinedFailurePoints {
			t.Errorf("%s: coverage diverges: injections %d/%d skipped %d/%d quarantined %d/%d",
				label, res.Injections, ref.Injections, res.SkippedFailurePoints, ref.SkippedFailurePoints,
				res.QuarantinedFailurePoints, ref.QuarantinedFailurePoints)
		}
	}
	// A classed journal folds into an unclassed resume (and vice versa):
	// the records carry complete outcomes, so classing is not part of
	// the campaign identity.
	dir := copyTruncated(t, full, logLen/2, true)
	plain := journaledConfig(false, 1)
	res := analyzeResumed(t, mk, w, plain, dir)
	if got, want := res.Report.Format(true), ref.Report.Format(true); got != want {
		t.Errorf("unclassed resume of a classed journal diverges\n--- reference ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

package core_test

import (
	"strings"
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/apps/levelhash"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/fpt"
	"mumak/internal/report"
	"mumak/internal/workload"
)

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 150, Seed: seed, Keyspace: 50})
}

func cfgSPT(ids ...bugs.ID) apps.Config {
	return apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable(ids...)}
}

func TestCleanTargetReportsNoBugs(t *testing.T) {
	// The no-false-positive property of §6.2: a correct target yields
	// zero bug-severity findings (warnings are allowed).
	res, err := core.Analyze(btree.New(cfgSPT()), smallWorkload(1), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Report.Bugs()); n != 0 {
		t.Fatalf("clean target produced %d bugs:\n%s", n, res.Report.Format(false))
	}
	if res.Injections == 0 {
		t.Fatal("no faults were injected")
	}
	if res.TraceLen == 0 {
		t.Fatal("no trace was collected")
	}
}

func TestFaultInjectionFindsCrashConsistencyBug(t *testing.T) {
	cfg := cfgSPT(btree.BugCountOutsideTx)
	res, err := core.Analyze(btree.New(cfg), smallWorkload(2), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range res.Report.Bugs() {
		if f.Kind == report.CrashConsistency {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded crash-consistency bug not reported:\n%s", res.Report.Format(true))
	}
}

func TestTraceAnalysisFindsPerformanceBugs(t *testing.T) {
	// pf-01 = redundant flush, pf-02 = redundant fence, pf-03 =
	// transient data (a warning kind under the §4.2 rules). Knobs are
	// planted one at a time, as in the coverage experiment: planted
	// together they can mask each other (an extra flush makes the
	// following extra fence non-redundant).
	cases := []struct {
		knob bugs.ID
		kind report.Kind
	}{
		{"btree/pf-01", report.RedundantFlush},
		{"btree/pf-02", report.RedundantFence},
		{"btree/pf-03", report.WarnTransientData},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.knob), func(t *testing.T) {
			res, err := core.Analyze(btree.New(cfgSPT(tc.knob)), smallWorkload(3),
				core.Config{KeepWarnings: true})
			if err != nil {
				t.Fatal(err)
			}
			if counts := res.Report.CountByKind(); counts[tc.kind] == 0 {
				t.Errorf("%v not reported: %v", tc.kind, counts)
			}
		})
	}
}

func TestMissedBugYieldsWarningNotBug(t *testing.T) {
	// The fused-fence ordering bugs are invisible to prefix-based
	// fault injection; Mumak must not report a bug, and the §4.2
	// pattern 5 warning marks the unexplored orderings.
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugInsertSingleFence)}
	res, err := core.Analyze(hashatomic.New(cfg), smallWorkload(4), core.Config{KeepWarnings: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Report.Bugs() {
		if f.Kind == report.CrashConsistency {
			t.Fatalf("prefix-hidden bug unexpectedly reported:\n%s", res.Report.Format(true))
		}
	}
	if res.Report.CountByKind()[report.WarnFenceOrdering] == 0 {
		t.Error("fence-ordering warning absent for fused-fence bug")
	}
}

func TestReportsIncludeBugPath(t *testing.T) {
	cfg := cfgSPT(btree.BugCountOutsideTx)
	res, err := core.Analyze(btree.New(cfg), smallWorkload(5), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Report.Format(false)
	if !strings.Contains(out, "btree") || !strings.Contains(out, ".go:") {
		t.Errorf("report lacks a complete code path:\n%s", out)
	}
}

func TestUniqueFiltering(t *testing.T) {
	// The transient-data knob fires on every put, all through the same
	// code path: the report must collapse the occurrences (Table 3).
	cfg := cfgSPT("btree/pf-03")
	res, err := core.Analyze(btree.New(cfg), smallWorkload(6), core.Config{KeepWarnings: true})
	if err != nil {
		t.Fatal(err)
	}
	raw := 0
	for _, f := range res.Report.Findings {
		if f.Kind == report.WarnTransientData || f.Kind == report.DirtyOverwrite {
			raw++
		}
	}
	uniq := 0
	for _, f := range res.Report.Unique() {
		if f.Kind == report.WarnTransientData || f.Kind == report.DirtyOverwrite {
			uniq++
		}
	}
	if raw < 2 {
		t.Skipf("knob fired only %d times; nothing to dedup", raw)
	}
	if uniq >= raw {
		t.Fatalf("unique filtering did nothing: %d raw, %d unique", raw, uniq)
	}
}

func TestGranularityAblation(t *testing.T) {
	// Store-granularity failure points must outnumber
	// persistency-instruction failure points by a wide margin (Fig 3).
	w := smallWorkload(7)
	app := btree.New(cfgSPT())
	persist, err := core.Analyze(app, w, core.Config{Granularity: fpt.GranPersistency,
		DisableFaultInjection: true, DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.Analyze(app, w, core.Config{Granularity: fpt.GranStore,
		DisableFaultInjection: true, DisableTraceAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if store.Tree.Len() < 2*persist.Tree.Len() {
		t.Fatalf("store granularity %d vs persistency %d failure points; expected a wide gap",
			store.Tree.Len(), persist.Tree.Len())
	}
}

func TestLevelHashOracleStory(t *testing.T) {
	// §6.2: with the original (absent) recovery the oracle misses the
	// seeded bug; with the added recovery it finds it.
	w := workload.Generate(workload.Config{N: 400, Seed: 8, Keyspace: 250, PutFrac: 3, GetFrac: 1, DeleteFrac: 1})
	id := bugs.ID("levelhash/c01-top-slot-count-order")

	without := apps.Config{PoolSize: 2 << 20, Bugs: bugs.Enable(id)}
	resW, err := core.Analyze(levelhash.New(without), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(resW.Report, report.CrashConsistency); n != 0 {
		t.Fatalf("bug found without a recovery procedure (%d findings)", n)
	}

	with := without
	with.WithRecovery = true
	resR, err := core.Analyze(levelhash.New(with), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(resR.Report, report.CrashConsistency); n == 0 {
		t.Fatal("bug missed even with the recovery procedure in place")
	}
}

func TestStackModeMatchesCounterMode(t *testing.T) {
	cfg := cfgSPT(btree.BugCountOutsideTx)
	w := smallWorkload(9)
	counter, err := core.Analyze(btree.New(cfg), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stackMode, err := core.Analyze(btree.New(cfg), w, core.Config{StackMode: true})
	if err != nil {
		t.Fatal(err)
	}
	cGot := countKind(counter.Report, report.CrashConsistency)
	sGot := countKind(stackMode.Report, report.CrashConsistency)
	if (cGot == 0) != (sGot == 0) {
		t.Fatalf("counter mode found %d, stack mode %d", cGot, sGot)
	}
}

func countKind(r *report.Report, k report.Kind) int {
	n := 0
	for _, f := range r.Bugs() {
		if f.Kind == k {
			n++
		}
	}
	return n
}

package core_test

import (
	"testing"

	"mumak/internal/apps"
	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	_ "mumak/internal/apps/wort"
	"mumak/internal/core"
	"mumak/internal/workload"
)

// The no-false-positive property of §6.2, enforced across the whole
// registry: with every bug knob off, both analysis phases must report
// zero bug-severity findings on every target (warnings are fine).
func TestNoFalsePositivesAcrossRegistry(t *testing.T) {
	w := workload.Generate(workload.Config{N: 600, Seed: 77, Keyspace: 250, PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := apps.New(name, apps.Config{SPT: true, PoolSize: 8 << 20, WithRecovery: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Analyze(app, w, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if bugsFound := res.Report.Bugs(); len(bugsFound) != 0 {
				t.Fatalf("clean %s produced %d bug(s):\n%s",
					name, len(bugsFound), res.Report.Format(false))
			}
		})
	}
}

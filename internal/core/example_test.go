package core_test

import (
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/workload"
)

// The entire black-box contract in one call: an application, a
// workload, a config — out comes a deduplicated report.
func ExampleAnalyze() {
	app := btree.New(apps.Config{
		SPT:      true,
		PoolSize: 2 << 20,
		Bugs:     bugs.Enable(btree.BugCountOutsideTx),
	})
	w := workload.Generate(workload.Config{N: 300, Seed: 1, Keyspace: 64})

	res, err := core.Analyze(app, w, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found %d unique crash-consistency bug(s)\n", len(res.Report.Bugs()))
	// Output:
	// found 2 unique crash-consistency bug(s)
}

// Package core implements Mumak itself: the analysis pipeline of Fig 1.
//
// Given only an application (the "binary") and a workload, the pipeline
//
//  1. instruments the PM instruction stream and runs the workload once,
//     producing the failure point tree and the PM access trace;
//  2. injects one fault per unique failure point, materialises the
//     graceful-crash (program-order prefix) image and asks the
//     application's own recovery procedure — the consistency oracle — to
//     accept or reject it;
//  3. analyses the trace in a single pass against the §4.2 misuse
//     patterns, catching the durability and performance bugs fault
//     injection cannot see;
//  4. merges both phases into a deduplicated report with complete code
//     paths.
//
// No annotations, library knowledge or application semantics are used
// anywhere: the design goal of the paper.
package core

import (
	"fmt"
	"time"

	"mumak/internal/campaign"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// Campaign sandbox defaults; Config.HangBudget and
// Config.RecoveryTimeout override them.
const (
	// DefaultHangBudget is the fuel budget of one target execution: the
	// number of PM instruction events after which the engine's watchdog
	// terminates the run as a suspected hang. It is deterministic (a
	// replay trips at the same event regardless of machine speed) and
	// far above any realistic single-execution event count.
	DefaultHangBudget uint64 = 1 << 28
	// DefaultRecoveryTimeout is the wall-clock watchdog on one
	// recovery-oracle invocation, catching recovery hangs that never
	// touch PM (and therefore never burn fuel).
	DefaultRecoveryTimeout = 30 * time.Second
)

// DefaultCheckpointInterval is the default spacing, in engine events,
// of the full-state checkpoints the instrumented run records for
// counter-mode fault injection (Config.CheckpointInterval overrides
// it). It balances replay cost, which grows with the gap back to the
// nearest checkpoint, against recording cost and resident snapshot
// state: gap replay applies logged mutations at tens of millions of
// events per second, so wide spacing costs little replay time while
// shrinking the store (each persisted line is retained at most once per
// interval it changed in). See results/checkpointed_replay.txt for the
// tuning sweep.
const DefaultCheckpointInterval = 65536

// Config tunes the analysis.
type Config struct {
	// Granularity selects the failure-point definition (§4.1);
	// GranPersistency is Mumak's default.
	Granularity fpt.Granularity
	// Budget bounds the wall-clock time of the whole analysis; zero
	// means unbounded. It plays the role of the paper's 12-hour limit.
	Budget time.Duration
	// MaxFailurePoints caps the number of injected faults (0 = all);
	// used by ablation benches only.
	MaxFailurePoints int
	// DisableTraceAnalysis skips phase 3 (ablation benches).
	DisableTraceAnalysis bool
	// DisableFaultInjection skips phase 2 (ablation benches).
	DisableFaultInjection bool
	// StackMode makes the injector match call stacks instead of
	// instruction counters, for non-deterministic targets (§5).
	StackMode bool
	// Workers bounds the number of concurrent replays in the
	// fault-injection campaign, in both counter and stack mode; 0 or 1
	// runs serially. Replays are independent (the failure point tree is
	// frozen before the campaign and traversal state lives in a
	// ClaimSet), and findings are merged in leaf first-occurrence
	// order, so the report is byte-identical for any worker count.
	Workers int
	// KeepWarnings retains §4.2 warnings in the report (they are
	// always excluded from bug counts).
	KeepWarnings bool
	// EADR analyses the target under an extended persistence domain
	// (§4.3): fault injection is unchanged — the reported atomicity
	// and ordering bugs would still occur on an eADR system — but the
	// trace-analysis patterns flip: unflushed stores are fine, and
	// every cache flush is a performance bug.
	EADR bool
	// HangBudget overrides DefaultHangBudget: the per-execution PM
	// event fuel budget after which a run is terminated as a suspected
	// hang (0 = default).
	HangBudget uint64
	// RecoveryTimeout overrides DefaultRecoveryTimeout: the wall-clock
	// watchdog on each recovery-oracle invocation (0 = default). The
	// campaign deadline caps it further when less budget remains.
	RecoveryTimeout time.Duration
	// ImageCacheSize bounds the crash-image verdict cache: recovery
	// verdicts are memoised by image content hash, so leaves whose
	// graceful-crash images are byte-identical (common when failure
	// points are separated only by flushes and fences) run the recovery
	// oracle once. Zero selects DefaultImageCacheSize; a negative value
	// disables caching. Reports are identical either way — only the
	// redundant recovery runs are skipped.
	ImageCacheSize int
	// Classing enables phase-1 crash-image equivalence classing: the
	// instrumented run stamps every failure point with the content hash
	// of its prospective graceful-crash image (a rolling hash maintained
	// alongside execution, O(changed bytes)), the campaign groups leaves
	// whose stamps match, replays exactly one representative per class,
	// and the remaining members inherit the memoised verdict without
	// replaying at all. Reports are byte-identical to an unclassed
	// campaign (serial and parallel, counter and stack mode) — only the
	// redundant replays and recoveries are skipped. The zero value is
	// off so ablation and differential comparisons start unclassed; the
	// CLI enables it by default.
	Classing bool
	// WarmVerdicts seeds the campaign's verdict cache from a persistent
	// cross-run cache file (campaign.LoadVerdictCache) before any replay
	// runs, so re-runs of an identical campaign only replay classes
	// whose image hash was never judged. Ignored when the image cache is
	// disabled.
	WarmVerdicts []campaign.CacheEntry
	// PersistVerdicts exports the campaign's final verdict-cache
	// contents into Result.VerdictCache so the caller can persist them
	// (campaign.SaveVerdictCache) for the next run.
	PersistVerdicts bool
	// Interrupt, when non-nil, requests graceful interruption once
	// closed: campaign workers stop claiming failure points, in-flight
	// replays drain (and are consumed and journaled), and the analysis
	// returns a partial report marked Interrupted. The channel is
	// polled between leaves, so every consumed outcome is exactly what
	// an uninterrupted run would have produced — which is what makes a
	// resumed campaign's final report byte-identical.
	Interrupt <-chan struct{}
	// Journal, when non-nil, durably records every consumed failure
	// point's verdict (append-only, fsync'd, checksummed) plus periodic
	// atomic snapshots of campaign state, making the campaign
	// crash-safe: a run killed at any byte resumes from the journal's
	// loadable prefix. Journal write failures degrade the run to
	// unjournaled (Result.JournalError) instead of aborting it.
	Journal *campaign.Journal
	// Resume, when non-nil, folds a previously journaled campaign
	// prefix into this run before any replay executes: phase 1 rebuilds
	// the (deterministic) failure point tree, the journaled verdicts
	// are merged in leaf first-occurrence order, and the campaign
	// continues from the first unexplored failure point. Analyze errors
	// when the journal does not match this run's tree (different
	// target, workload or flags). Usually combined with Journal
	// (campaign.State.Reopen) so the continuation is journaled too.
	Resume *campaign.State
	// SnapshotEvery is the number of consumed failure points between
	// campaign snapshots. Zero selects DefaultSnapshotEvery; a negative
	// value disables periodic snapshots (a final snapshot is still
	// written). Resume correctness never depends on snapshots — they
	// only seed the verdict cache and document progress.
	SnapshotEvery int
	// CheckpointInterval is the spacing, in engine events, of the
	// full-state checkpoints the instrumented run records so that
	// counter-mode replays restore from the nearest checkpoint and
	// replay only the gap of logged mutations, instead of re-executing
	// the workload from scratch per failure point. Zero selects
	// DefaultCheckpointInterval; a negative value disables
	// checkpointing (replays re-execute, the pre-checkpoint behaviour).
	// Reports are byte-identical either way — the restored engine state
	// is exactly the from-scratch crash state. Stack mode ignores it:
	// stack-matching needs the application actually executing.
	CheckpointInterval int
	// unsandboxed restores the pre-sandbox execution path — target
	// panics propagate and no watchdogs run. It exists only so
	// package-internal differential tests can prove the sandbox leaves
	// clean-target reports byte-identical.
	unsandboxed bool
}

// checkpointEvery resolves CheckpointInterval to the engine option: the
// default when zero, disabled (0) when negative.
func (cfg Config) checkpointEvery() uint64 {
	switch {
	case cfg.CheckpointInterval < 0:
		return 0
	case cfg.CheckpointInterval == 0:
		return DefaultCheckpointInterval
	default:
		return uint64(cfg.CheckpointInterval)
	}
}

// Result is the outcome of one analysis.
type Result struct {
	// Report holds the merged findings.
	Report *report.Report
	// Tree is the failure point tree of the run, frozen once the
	// injection campaign started.
	Tree *fpt.Tree
	// Claims is the injection campaign's traversal state over Tree:
	// consumed failure points are claimed, unexplored ones (budget
	// expiry, caps, aborts) are not. Nil when fault injection was
	// disabled. Serialising the tree with these claims makes the
	// campaign resumable.
	Claims *fpt.ClaimSet
	// CampaignWorkers is the worker count the injection campaign
	// actually ran with (1 for a serial campaign; zero when fault
	// injection was disabled).
	CampaignWorkers int
	// WorkerBusy sums the wall time campaign workers spent replaying;
	// WorkerBusy/InjectTime is the campaign's average worker
	// utilisation.
	WorkerBusy time.Duration
	// ClaimContention counts lost claim races observed by the
	// campaign's claim set; zero means the lock-free traversal
	// partitioned the leaves cleanly.
	ClaimContention int
	// TraceLen is the number of trace records analysed.
	TraceLen int
	// Injections is the number of faults injected.
	Injections int
	// Recoveries is the number of recovery-oracle invocations.
	Recoveries int
	// SkippedFailurePoints counts failure points consumed without an
	// injection: the replay errored, never reached the recorded
	// instruction counter (counter mode) or never re-encountered the
	// target call stack (stack mode). A non-zero value means campaign
	// coverage is below one fault per unique failure point.
	SkippedFailurePoints int
	// QuarantinedFailurePoints counts the skipped failure points whose
	// bounded retries were exhausted and that were set aside into the
	// report's QuarantinedLeaves section — reported coverage gaps, never
	// silent drops. Always ≤ SkippedFailurePoints (currently equal:
	// every exhausted skip is quarantined).
	QuarantinedFailurePoints int
	// InjectionAborted reports that the stack-mode campaign gave up
	// after too many consecutive failure points were consumed without
	// an injection.
	InjectionAborted bool
	// InjectionErrors samples the errors behind skipped failure points
	// and aborted campaigns (capped; SkippedFailurePoints is the full
	// count).
	InjectionErrors []string
	// RetriedFailurePoints counts the extra replay attempts spent on
	// leaves whose first replay was consumed by a transient skip
	// (errored replay, counter never reached, stack never
	// re-encountered).
	RetriedFailurePoints int
	// TargetPanics counts executions the sandbox stopped because the
	// target's own code panicked; each produced a TargetCrash finding.
	TargetPanics int
	// TargetHangs counts executions the hang watchdog terminated after
	// the fuel budget was exhausted; each produced a TargetCrash
	// finding.
	TargetHangs int
	// RecoveryHangs counts recovery-oracle invocations the watchdog
	// classified as non-terminating; each produced a RecoveryHang
	// finding.
	RecoveryHangs int
	// ImageCacheHits and ImageCacheMisses count verdict-cache
	// consultations during fault injection: a hit delivered a memoised
	// verdict without running recovery (the hit is still counted in
	// Recoveries — a verdict was delivered), a miss ran the oracle and
	// populated the cache. Their sum equals Recoveries when caching is
	// enabled; the split between them is scheduling-dependent under
	// Workers>1 (whichever worker reaches a fresh image first takes the
	// miss). Both are zero when caching is disabled.
	ImageCacheHits   int
	ImageCacheMisses int
	// ImageCacheEntries is the number of distinct crash images resident
	// in the verdict cache when the campaign ended (bounded by
	// ImageCacheSize).
	ImageCacheEntries int
	// EquivClasses is the number of distinct crash-image equivalence
	// classes the phase-1 stamps partitioned the failure points into
	// (zero when classing was off or the tree was unstamped).
	// InheritedVerdicts counts class members that never replayed —
	// they inherited their representative's verdict — and
	// ReplaysAvoided counts every elided replay (inherited members plus
	// representatives whose stamped key was already in the verdict
	// cache). These counters are deliberately kept out of the JSON
	// report so classed and unclassed reports stay byte-identical.
	EquivClasses      int
	InheritedVerdicts int
	ReplaysAvoided    int
	// PersistentCacheHits and PersistentCacheMisses count verdict-cache
	// consultations against entries seeded from a cross-run verdict
	// cache file: a hit delivered a previous run's verdict, a miss ran
	// the oracle for an image the file had never seen. Both stay zero
	// without Config.WarmVerdicts/PersistVerdicts.
	PersistentCacheHits   int
	PersistentCacheMisses int
	// VerdictCache is the campaign's final exported verdict-cache
	// contents (least recently used first), filled only when
	// Config.PersistVerdicts asked for it; pass it to
	// campaign.SaveVerdictCache to warm the next run.
	VerdictCache []campaign.CacheEntry
	// Checkpoints is the number of full-state checkpoints the
	// instrumented run recorded; CheckpointBytes approximates their
	// resident size (mutation log plus snapshots, shared COW bases
	// counted once). Both are zero when checkpointing was disabled or
	// inapplicable (stack mode, fault injection disabled).
	Checkpoints     int
	CheckpointBytes uint64
	// CheckpointRestores counts injections served by a checkpoint
	// restore plus mutation-log gap replay instead of a from-scratch
	// re-execution. With checkpointing enabled in counter mode it
	// equals Injections.
	CheckpointRestores int
	// AnalyzerPeakLines is the online analyzer's peak number of
	// simultaneously tracked cache lines (zero when trace analysis was
	// disabled).
	AnalyzerPeakLines int
	// AnalyzerPeakStateBytes is the online analyzer's peak approximate
	// resident state; it stays proportional to live cache lines rather
	// than trace length.
	AnalyzerPeakStateBytes uint64
	// Elapsed is the total analysis wall time; the phase fields break
	// it down.
	Elapsed        time.Duration
	InstrumentTime time.Duration
	InjectTime     time.Duration
	AnalysisTime   time.Duration
	// TimedOut reports whether the budget expired before completion.
	TimedOut bool
	// Interrupted reports that a graceful-interruption request
	// (Config.Interrupt) stopped the campaign before every failure
	// point was consumed; the report is partial and marked accordingly.
	Interrupted bool
	// ResumedFailurePoints counts failure points whose verdicts were
	// folded from a resumed campaign journal instead of replayed.
	ResumedFailurePoints int
	// JournalAppends and JournalSnapshots count the durable journal
	// records and atomic snapshots this run wrote; JournalError is the
	// first journal write failure (after which the run degraded to
	// unjournaled), empty when journaling worked or was off.
	JournalAppends   int
	JournalSnapshots int
	JournalError     string
	// EngineEvents counts simulated PM instructions across all runs.
	EngineEvents uint64
}

// addInjectionError samples an injection-campaign error into the result,
// up to maxInjectionErrors entries. It is only called from the (single)
// campaign merge goroutine, so it needs no locking.
func (r *Result) addInjectionError(msg string) {
	if len(r.InjectionErrors) < maxInjectionErrors {
		r.InjectionErrors = append(r.InjectionErrors, msg)
	}
}

// Analyze runs the full Mumak pipeline on the target.
func Analyze(app harness.Application, w workload.Workload, cfg Config) (*Result, error) {
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	res := &Result{}
	stacks := stack.NewTable()
	rep := &report.Report{Target: app.Name(), Tool: "Mumak", Stacks: stacks}
	res.Report = rep

	// Phase 1: instrumented run -> failure point tree + online trace
	// analysis. The §4.2 analyzer consumes the instruction stream as the
	// workload executes, so the trace is never materialised: resident
	// state is proportional to live cache lines, not trace length.
	capture := pmem.CapturePersistency
	if cfg.Granularity == fpt.GranStore {
		capture = pmem.CaptureStores
	}
	tree := fpt.New(stacks)
	builder := fpt.NewBuilder(tree, cfg.Granularity)
	hooks := []pmem.Hook{builder}
	var analyzer *Analyzer
	var counter *eventCounter
	if cfg.DisableTraceAnalysis {
		counter = &eventCounter{}
		hooks = append(hooks, counter)
	} else {
		analyzer = NewAnalyzer(cfg)
		hooks = append(hooks, analyzer)
	}
	sb := cfg.sandbox(deadline)
	t0 := time.Now()
	opts := pmem.Options{Capture: capture, Stacks: stacks, EADR: cfg.EADR}
	if !sb.disabled {
		opts.MaxEvents = sb.budget
		opts.Deadline = sb.deadline
	}
	// Record checkpoints during the instrumented run when the upcoming
	// campaign can use them: counter-mode replays restore engine state
	// directly, while stack mode must re-execute the application to
	// match call stacks, so recording would only cost memory there.
	if !cfg.DisableFaultInjection && !cfg.StackMode {
		opts.CheckpointEvery = cfg.checkpointEvery()
	}
	// Classing needs phase 1 to stamp every failure point with its
	// prospective crash-image hash, in both injection modes: the rolling
	// hash read at leaf-creation time equals the content hash of the
	// image a replay crashed at that leaf would materialise.
	if !cfg.DisableFaultInjection && cfg.Classing {
		opts.TrackPrefixHash = true
	}
	eng, sout := execute(app, w, opts, sb, hooks...)
	res.EngineEvents += eng.Events()
	switch {
	case sout.Err != nil:
		return nil, fmt.Errorf("instrumented run: %w", sout.Err)
	case sout.Sig != nil:
		return nil, fmt.Errorf("instrumented run crashed unexpectedly: %v", sout.Sig)
	case sout.Panic != nil:
		// The target itself is broken. Report the crash as a finding
		// and continue the pipeline over the partial failure point tree
		// and trace: the bugs found up to the panic are still bugs.
		res.TargetPanics++
		rep.Add(report.Finding{
			Kind:   report.TargetCrash,
			ICount: eng.ICount(),
			Stack:  stack.NoID,
			Detail: panicDetail("the instrumented run", sout.Panic),
		})
	case sout.Hang != nil:
		if sout.Hang.Deadline {
			// The campaign deadline, not target behaviour, cut the run.
			res.TimedOut = true
		} else {
			res.TargetHangs++
			rep.Add(report.Finding{
				Kind:   report.TargetCrash,
				ICount: eng.ICount(),
				Stack:  stack.NoID,
				Detail: hangDetail("the instrumented run", sout.Hang),
			})
		}
	}
	res.InstrumentTime = time.Since(t0)
	res.Tree = tree
	if analyzer != nil {
		res.TraceLen = analyzer.Events()
	} else {
		res.TraceLen = counter.events
	}

	// Phase 2: fault injection with the recovery oracle. The checkpoint
	// store recorded by the instrumented run (nil when disabled) is
	// frozen here — read-only from now on — and shared across campaign
	// workers like the tree and the verdict cache.
	if !cfg.DisableFaultInjection {
		ckpts := eng.Checkpoints()
		if ckpts != nil {
			res.Checkpoints = ckpts.Count()
			res.CheckpointBytes = ckpts.Bytes()
		}
		t0 = time.Now()
		timedOut, err := injectAll(app, w, tree, cfg, rep, res, deadline, ckpts)
		if err != nil {
			return nil, fmt.Errorf("fault injection: %w", err)
		}
		res.TimedOut = timedOut || res.TimedOut
		res.InjectTime = time.Since(t0)
	}

	// Phase 3: finalise the single-pass trace analysis (the per-event
	// work already ran inline with phase 1).
	if analyzer != nil {
		t0 = time.Now()
		findings := analyzer.Finalize()
		resolveStacks(app, w, capture, stacks, findings, sb)
		for _, f := range findings {
			if f.Kind.IsWarning() && !cfg.KeepWarnings {
				continue
			}
			rep.Add(*f)
		}
		res.AnalyzerPeakLines = analyzer.PeakLiveLines()
		res.AnalyzerPeakStateBytes = analyzer.PeakStateBytes()
		res.AnalysisTime = time.Since(t0)
	}

	// Partial-report markers: a budget expiry or a graceful interruption
	// renders an explicit trailer so a cut-short report can never pass
	// for a complete one.
	rep.Interrupted = res.Interrupted
	rep.BudgetExhausted = res.TimedOut

	metrics.RecordSandbox(res.TargetPanics, res.TargetHangs, res.RecoveryHangs)
	metrics.RecordImageCache(res.ImageCacheHits, res.ImageCacheMisses)
	metrics.RecordClassing(res.EquivClasses, res.InheritedVerdicts, res.ReplaysAvoided,
		res.PersistentCacheHits, res.PersistentCacheMisses)
	metrics.RecordCheckpoints(res.Checkpoints, res.CheckpointBytes, res.CheckpointRestores)
	metrics.RecordJournal(res.JournalAppends, res.JournalSnapshots, res.ResumedFailurePoints)
	res.Elapsed = time.Since(start)
	return res, nil
}

// eventCounter keeps Result.TraceLen meaningful when trace analysis is
// disabled, without recording anything.
type eventCounter struct{ events int }

// OnEvent implements pmem.Hook.
func (c *eventCounter) OnEvent(ev *pmem.Event) {
	if ev.Op != pmem.OpLoad {
		c.events++
	}
}

package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// diffFindings compares two finding slices field by field (order
// included: both front-ends must emit byte-identical reports). ignoreStack
// relaxes the stack comparison for traces that crossed serialisation,
// which drops process-local stack IDs by design.
func diffFindings(t *testing.T, stream, replay []*report.Finding, ignoreStack bool) {
	t.Helper()
	if len(stream) != len(replay) {
		t.Fatalf("streaming emitted %d findings, offline replay %d", len(stream), len(replay))
	}
	for i := range stream {
		s, r := stream[i], replay[i]
		same := s.Kind == r.Kind && s.ICount == r.ICount && s.Addr == r.Addr && s.Detail == r.Detail &&
			(ignoreStack || s.Stack == r.Stack)
		if !same {
			t.Fatalf("finding %d differs:\n  streaming: %+v\n  replay:    %+v", i, *s, *r)
		}
	}
}

// The tentpole property: the streaming analyzer attached to the live
// execution and the offline replay of the recorded trace are the same
// implementation behind two front-ends, so across the whole registry,
// randomised seeds and both persistence domains they must produce
// identical findings — warnings included.
func TestStreamingMatchesOfflineReplay(t *testing.T) {
	for _, eadr := range []bool{false, true} {
		for _, seed := range []int64{11, 4242} {
			w := workload.Generate(workload.Config{N: 300, Seed: seed, Keyspace: 120,
				PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
			for _, name := range apps.Names() {
				name, eadr, seed := name, eadr, seed
				t.Run(fmt.Sprintf("%s/seed=%d/eadr=%v", name, seed, eadr), func(t *testing.T) {
					app, err := apps.New(name, apps.Config{SPT: true, PoolSize: 8 << 20, WithRecovery: true})
					if err != nil {
						t.Fatal(err)
					}
					cfg := core.Config{EADR: eadr, KeepWarnings: true}
					stacks := stack.NewTable()
					rec := trace.NewRecorder()
					analyzer := core.NewAnalyzer(cfg)
					// One execution, both consumers: the recorder
					// materialises the trace, the analyzer streams it.
					_, sig, err := harness.Execute(app, w,
						pmem.Options{Capture: pmem.CapturePersistency, Stacks: stacks, EADR: eadr},
						rec, analyzer)
					if err != nil {
						t.Fatal(err)
					}
					if sig != nil {
						t.Fatalf("unexpected crash: %v", sig)
					}
					stream := analyzer.Finalize()
					replay := core.AnalyzeTrace(&rec.T, cfg)
					diffFindings(t, stream, replay, false)
					if analyzer.Events() != rec.T.Len() {
						t.Fatalf("analyzer saw %d events, recorder %d", analyzer.Events(), rec.T.Len())
					}
				})
			}
		}
	}
}

// A trace that crossed Encode/ReadTrace drops its process-local stack
// IDs but must otherwise analyse exactly like the live stream.
func TestStreamingMatchesDecodedTrace(t *testing.T) {
	w := workload.Generate(workload.Config{N: 400, Seed: 99, Keyspace: 150})
	app := btree.New(apps.Config{SPT: true, PoolSize: 4 << 20})
	cfg := core.Config{KeepWarnings: true}
	stacks := stack.NewTable()
	rec := trace.NewRecorder()
	analyzer := core.NewAnalyzer(cfg)
	_, sig, err := harness.Execute(app, w,
		pmem.Options{Capture: pmem.CapturePersistency, Stacks: stacks}, rec, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	if sig != nil {
		t.Fatalf("unexpected crash: %v", sig)
	}
	stream := analyzer.Finalize()

	var buf bytes.Buffer
	if err := rec.T.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := core.AnalyzeTrace(decoded, cfg)
	diffFindings(t, stream, replay, true)
	for i, f := range replay {
		if f.Stack != stack.NoID {
			t.Fatalf("finding %d from a decoded trace carries stack %d; want NoID", i, f.Stack)
		}
	}
}

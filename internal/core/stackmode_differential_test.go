package core_test

import (
	"fmt"
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

// stackDiffCombos is the seed × persistence-domain matrix of the
// stack-mode differential suite.
var stackDiffCombos = []struct {
	seed int64
	eadr bool
}{
	{11, false},
	{4242, false},
	{11, true},
	{4242, true},
}

// diffStackCampaign runs the same stack-mode campaign serially and with
// 4 workers and requires byte-identical reports, agreeing aggregate
// counters and identical final claim state.
func diffStackCampaign(t *testing.T, mk func() (harness.Application, error), seed int64, eadr, wantFindings bool) {
	t.Helper()
	w := workload.Generate(workload.Config{N: 120, Seed: seed, Keyspace: 60,
		PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
	cfg := core.Config{StackMode: true, EADR: eadr, DisableTraceAnalysis: true}

	app, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.Analyze(app, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wantFindings && len(serial.Report.Bugs()) == 0 {
		t.Fatal("fixture produced no findings; the byte-identity check is vacuous")
	}
	want := serial.Report.Format(true)

	app, err = mk()
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Workers = 4
	par, err := core.Analyze(app, w, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Report.Format(true); got != want {
		t.Errorf("parallel stack-mode report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if par.Injections != serial.Injections || par.Recoveries != serial.Recoveries ||
		par.SkippedFailurePoints != serial.SkippedFailurePoints ||
		par.EngineEvents != serial.EngineEvents ||
		par.InjectionAborted != serial.InjectionAborted {
		t.Errorf("counters diverge: injections %d/%d recoveries %d/%d skipped %d/%d events %d/%d aborted %v/%v",
			par.Injections, serial.Injections, par.Recoveries, serial.Recoveries,
			par.SkippedFailurePoints, serial.SkippedFailurePoints,
			par.EngineEvents, serial.EngineEvents,
			par.InjectionAborted, serial.InjectionAborted)
	}
	if got, want := par.Claims.Remaining(), serial.Claims.Remaining(); got != want {
		t.Errorf("claim state diverges: %d unclaimed, serial %d", got, want)
	}
	if par.ClaimContention != 0 {
		t.Errorf("claim traversal observed %d contended claims, want 0", par.ClaimContention)
	}
	if par.CampaignWorkers != 4 || serial.CampaignWorkers != 1 {
		t.Errorf("campaign worker counts: parallel %d (want 4), serial %d (want 1)",
			par.CampaignWorkers, serial.CampaignWorkers)
	}
}

// TestStackModeParallelMatchesSerial is the stack-mode determinism
// contract, mirroring the counter-mode differential suite: for any
// worker count the parallel stack-mode campaign must produce a report
// byte-identical to the serial one, with agreeing aggregate counters and
// identical final claim state. Every registry target is exercised (the
// seed × eADR combos rotate across the registry so each combination
// appears), and a seeded-bug fixture with real findings covers the full
// matrix so byte-identity is never vacuous. Run under -race this also
// exercises the concurrent ClaimSet traversal and the shared verdict
// cache on every registered target.
func TestStackModeParallelMatchesSerial(t *testing.T) {
	for i, name := range apps.Names() {
		combo := stackDiffCombos[i%len(stackDiffCombos)]
		name := name
		t.Run(fmt.Sprintf("%s/seed=%d/eadr=%v", name, combo.seed, combo.eadr), func(t *testing.T) {
			diffStackCampaign(t, func() (harness.Application, error) {
				return apps.New(name, apps.Config{SPT: true, PoolSize: 8 << 20, WithRecovery: true})
			}, combo.seed, combo.eadr, false)
		})
	}
	// The seeded-bug fixture has real crash-consistency findings, so the
	// byte-identity check bites; it runs the whole seed × eADR matrix.
	for _, combo := range stackDiffCombos {
		combo := combo
		t.Run(fmt.Sprintf("btree-buggy/seed=%d/eadr=%v", combo.seed, combo.eadr), func(t *testing.T) {
			diffStackCampaign(t, func() (harness.Application, error) {
				return btree.New(cfgSPT(btree.BugCountOutsideTx)), nil
			}, combo.seed, combo.eadr, true)
		})
	}
}

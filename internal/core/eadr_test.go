package core_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/report"
)

// The §4.3 eADR discussion: fault-injection findings survive the
// extended persistence domain; the durability patterns flip.

func TestEADRFaultInjectionStillFindsOrderingBugs(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugPublishBeforeInit)}
	res, err := core.Analyze(hashatomic.New(cfg), smallWorkload(20), core.Config{EADR: true})
	if err != nil {
		t.Fatal(err)
	}
	if countKind(res.Report, report.CrashConsistency) == 0 {
		t.Fatal("ordering bug lost under eADR; §4.3 says it must persist")
	}
}

func TestEADRSuppressesDurabilityPatterns(t *testing.T) {
	// The transient-data knob stores to PM without flushing — under
	// eADR that is fine and must not be reported.
	cfg := cfgSPT("btree/pf-03")
	res, err := core.Analyze(btree.New(cfg), smallWorkload(21), core.Config{EADR: true, KeepWarnings: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Report.CountByKind()
	if counts[report.WarnTransientData] != 0 || counts[report.Durability] != 0 || counts[report.DirtyOverwrite] != 0 {
		t.Fatalf("durability-family findings under eADR: %v", counts)
	}
}

func TestEADRFlagsEveryFlushRedundant(t *testing.T) {
	res, err := core.Analyze(btree.New(cfgSPT()), smallWorkload(22), core.Config{EADR: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CountByKind()[report.RedundantFlush] == 0 {
		t.Fatal("eADR analysis should flag cache flushes as unnecessary")
	}
	// And the clean target still has no crash-consistency bugs.
	if countKind(res.Report, report.CrashConsistency) != 0 {
		t.Fatal("clean target inconsistent under eADR")
	}
}

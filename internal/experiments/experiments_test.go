package experiments_test

import (
	"strings"
	"testing"
	"time"

	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/rbtree"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	_ "mumak/internal/apps/wort"
	"mumak/internal/experiments"
	"mumak/internal/pmdk"
)

func TestFig3PathsGrowWithWorkloadSize(t *testing.T) {
	sizes := []int{30, 300, 1500}
	fig3a, fig3b, err := experiments.Fig3(sizes, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig3a {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last <= first {
			t.Errorf("fig3a %s: paths did not grow (%v -> %v)", s.Label, first, last)
		}
	}
	// Claim from §6.1: store-granularity paths exceed
	// persistency-instruction paths.
	for i := range fig3a {
		pa := fig3a[i].Points[len(fig3a[i].Points)-1].Y
		pb := fig3b[i].Points[len(fig3b[i].Points)-1].Y
		if pb <= pa {
			t.Errorf("%s: store paths (%v) should exceed persistency paths (%v)",
				fig3a[i].Label, pb, pa)
		}
	}
}

func TestFig4ShapeQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tool comparison is slow")
	}
	sc := experiments.Scale{Ops: 800, Budget: 8 * time.Second, MemBudget: 256 << 20, Seed: 42}
	runs, err := experiments.Fig4(pmdk.V16, sc)
	if err != nil {
		t.Fatal(err)
	}
	var mumakBtree, xfBtree *experiments.ToolRun
	for i := range runs {
		r := &runs[i]
		if r.Target == "btree (SPT)" {
			switch r.Tool {
			case "Mumak":
				mumakBtree = r
			case "XFDetector":
				xfBtree = r
			}
		}
	}
	if mumakBtree == nil || xfBtree == nil {
		t.Fatalf("missing rows: %+v", runs)
	}
	if mumakBtree.Censored {
		t.Fatal("Mumak exhausted the budget at quick scale")
	}
	// C2: Mumak is substantially faster than XFDetector (up to 25x in
	// the paper; require a clear win here).
	if !xfBtree.Censored && xfBtree.Elapsed < 2*mumakBtree.Elapsed {
		t.Errorf("XFDetector (%v) should be far slower than Mumak (%v)",
			xfBtree.Elapsed, mumakBtree.Elapsed)
	}
}

func TestCodeSizeMeasurement(t *testing.T) {
	for _, target := range experiments.Fig5Targets {
		n, err := experiments.CodeSize(target)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if n < 300 {
			t.Errorf("%s: implausibly small codebase (%d lines)", target, n)
		}
	}
}

func TestNewBugsAllFour(t *testing.T) {
	sc := experiments.Quick()
	sc.Ops = 3000
	sc.Budget = 60 * time.Second
	runs, err := experiments.NewBugs(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d reproductions, want 4", len(runs))
	}
	for _, r := range runs {
		if !r.Found {
			t.Errorf("%s: not reproduced", r.Name)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	out := experiments.RenderSeries("T", "x", "y", []experiments.Series{
		{Label: "a", Points: []experiments.Point{{X: 1, Y: 2}, {X: 10, Y: 3, Censored: true}}},
	})
	if !strings.Contains(out, "# T") || !strings.Contains(out, "inf(") {
		t.Errorf("series rendering:\n%s", out)
	}
	out = experiments.RenderToolRuns("T", []experiments.ToolRun{
		{Tool: "Mumak", Target: "btree", Elapsed: time.Second, CPU: 1, RAMx: 2, PMx: 1},
		{Tool: "Witcher", Target: "btree", OOM: true, Censored: true},
	})
	if !strings.Contains(out, "OOM") {
		t.Errorf("tool-run rendering:\n%s", out)
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"mumak/internal/apps"
	"mumak/internal/core"
	"mumak/internal/workload"
)

// Fig5Targets are the large-codebase targets of §6.3, in paper order.
var Fig5Targets = []string{
	"cmap", "stree", "montage-hashtable", "montage-lfhashtable", "redis", "rocksdb",
}

// Fig5Run is one point of the scalability study.
type Fig5Run struct {
	Target   string
	CodeSize int
	Elapsed  time.Duration
	Bugs     int
	Err      string
}

// Fig5 measures Mumak's analysis time against codebase size (E3 / claim
// C3: analysis time is not proportional to code size).
func Fig5(sc Scale) ([]Fig5Run, error) {
	var out []Fig5Run
	for _, target := range Fig5Targets {
		r := Fig5Run{Target: target}
		size, err := CodeSize(target)
		if err != nil {
			return nil, fmt.Errorf("fig5 code size for %s: %w", target, err)
		}
		r.CodeSize = size
		app, err := apps.New(target, apps.Config{PoolSize: poolFor(sc.Ops)})
		if err != nil {
			return nil, err
		}
		w := workload.Generate(workload.Config{N: sc.Ops, Seed: sc.Seed})
		res, err := core.Analyze(app, w, core.Config{Budget: sc.Budget})
		if err != nil {
			r.Err = err.Error()
			out = append(out, r)
			continue
		}
		r.Elapsed = res.Elapsed
		r.Bugs = len(res.Report.Bugs())
		out = append(out, r)
	}
	return out, nil
}

// RenderFig5 prints the scalability table and the paper's claim check:
// the time/size correlation should be weak.
func RenderFig5(runs []Fig5Run) string {
	var sb strings.Builder
	sb.WriteString("# Mumak analysis time relative to code size (Fig 5)\n")
	fmt.Fprintf(&sb, "%-22s %12s %12s %6s\n", "target", "code (lines)", "time", "bugs")
	for _, r := range runs {
		if r.Err != "" {
			fmt.Fprintf(&sb, "%-22s %12d %12s\n", r.Target, r.CodeSize, "error: "+r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-22s %12d %12s %6d\n",
			r.Target, r.CodeSize, r.Elapsed.Round(time.Millisecond), r.Bugs)
	}
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mumak/internal/apps"
	"mumak/internal/core"
	"mumak/internal/pmdk"
	"mumak/internal/workload"
)

// NewBugRun is one §6.4 reproduction.
type NewBugRun struct {
	Name    string
	Target  string
	Found   bool
	Detail  string
	Elapsed string
}

// NewBugs reproduces the four previously unknown bugs of §6.4: the two
// Montage allocator bugs (found because Mumak is library-agnostic) and
// the two PMDK 1.12 bugs (the pmemobj_tx_commit undo-log growth bug,
// which only a large-transaction workload triggers, and the ART insert
// bug).
func NewBugs(sc Scale) ([]NewBugRun, error) {
	var out []NewBugRun

	run := func(name, target string, cfg apps.Config, w workload.Workload) error {
		app, err := apps.New(target, cfg)
		if err != nil {
			return err
		}
		res, err := core.Analyze(app, w, core.Config{Budget: sc.Budget})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		r := NewBugRun{Name: name, Target: app.Name(), Elapsed: res.Elapsed.Round(1e6).String()}
		if bugsFound := res.Report.Bugs(); len(bugsFound) > 0 {
			r.Found = true
			r.Detail = bugsFound[0].Detail
		}
		out = append(out, r)
		return nil
	}

	ops := sc.Ops
	if ops > 4000 {
		ops = 4000
	}
	w := workload.Generate(workload.Config{N: ops, Seed: sc.Seed, Keyspace: uint64(ops/2 + 1)})

	// Montage: its own allocator, no PMDK — only a black-box tool sees
	// it. Each run plants exactly one of the two historical bugs.
	aCfg0 := apps.Config{PoolSize: 32 << 20, MontageBuggyAlloc: true}
	if err := run("Montage allocator misuse (pull #36)", "montage-hashtable", aCfg0, w); err != nil {
		return nil, err
	}
	cCfg := apps.Config{PoolSize: 32 << 20, MontageBuggyClose: true}
	if err := run("Montage allocator destruction (commit 3384e50)", "montage-lfhashtable", cCfg, w); err != nil {
		return nil, err
	}

	// PMDK 1.12 undo-log growth: needs the original (one big
	// transaction) btree workload so the log overflows — "only exposed
	// when performing a large number of operations".
	bCfg := apps.Config{Ver: pmdk.V112, SPT: false, PoolSize: 64 << 20}
	if err := run("PMDK 1.12 pmemobj_tx_commit (issue #5461)", "btree", bCfg, w); err != nil {
		return nil, err
	}

	// PMDK 1.12 ART insert (issue #5512).
	aCfg := apps.Config{Ver: pmdk.V112, PoolSize: 32 << 20}
	if err := run("PMDK 1.12 libart insert (issue #5512)", "art", aCfg, w); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderNewBugs prints the §6.4 reproduction table.
func RenderNewBugs(runs []NewBugRun) string {
	var sb strings.Builder
	sb.WriteString("# New bugs found by Mumak (§6.4 reproductions)\n")
	for _, r := range runs {
		status := "NOT FOUND"
		if r.Found {
			status = "found"
		}
		fmt.Fprintf(&sb, "%-48s %-22s %-10s (%s)\n", r.Name, r.Target, status, r.Elapsed)
		if r.Detail != "" {
			fmt.Fprintf(&sb, "    %s\n", firstLine(r.Detail))
		}
	}
	return sb.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

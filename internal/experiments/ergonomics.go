package experiments

import (
	"fmt"
	"strings"

	"mumak/internal/apps"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/tools/agamotto"
	"mumak/internal/tools/pmdebugger"
	"mumak/internal/tools/witcher"
	"mumak/internal/tools/xfdetector"
	"mumak/internal/workload"
)

// ErgRow is one measured Table 3 row: the same seeded defect analysed by
// every tool, comparing raw output volume, duplicate filtering and bug
// paths (§6.5).
type ErgRow struct {
	Tool        string
	RawFindings int
	Unique      int
	WithPaths   int // unique findings carrying a complete code path
	OutputBytes int // rendered report size
	Err         string
}

// Ergonomics runs the §6.5 comparison: one buggy target, every tool.
func Ergonomics(sc Scale) ([]ErgRow, error) {
	cfg := apps.Config{PoolSize: 4 << 20, Bugs: bugs.Enable("hashmap/publish-before-init")}
	n := sc.Ops
	if n > 500 {
		n = 500
	}
	w := workload.Generate(workload.Config{N: n, Seed: sc.Seed, Keyspace: uint64(n / 3)})
	mk := func() (harness.Application, error) { return apps.New("hashmap", cfg) }

	var rows []ErgRow

	// Mumak via the core pipeline.
	app, err := mk()
	if err != nil {
		return nil, err
	}
	mres, err := core.Analyze(app, w, core.Config{Budget: sc.Budget})
	if err != nil {
		return nil, err
	}
	rows = append(rows, measure("Mumak", mres.Report))

	for _, tool := range []tools.Tool{xfdetector.New(), pmdebugger.New(), agamotto.New(), witcher.New()} {
		app, err := mk()
		if err != nil {
			return nil, err
		}
		tres, terr := tool.Analyze(app, w, tools.Config{Budget: sc.Budget, MemBudget: sc.MemBudget})
		if terr != nil {
			rows = append(rows, ErgRow{Tool: tool.Name(), Err: terr.Error()})
			continue
		}
		rows = append(rows, measure(tool.Name(), tres.Report))
	}
	return rows, nil
}

func measure(tool string, rep *report.Report) ErgRow {
	row := ErgRow{Tool: tool, RawFindings: len(rep.Findings)}
	for _, f := range rep.Unique() {
		if f.Kind.IsWarning() {
			continue
		}
		row.Unique++
		if f.Stack != stack.NoID {
			row.WithPaths++
		}
	}
	row.OutputBytes = len(rep.Format(false))
	return row
}

// RenderErgonomics prints the measured §6.5 table.
func RenderErgonomics(rows []ErgRow) string {
	var sb strings.Builder
	sb.WriteString("# Measured ergonomics on one seeded defect (§6.5 / Table 3)\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %12s %12s  %s\n",
		"tool", "raw", "unique", "with paths", "output (B)", "notes")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&sb, "%-12s %10s %10s %12s %12s  %s\n", r.Tool, "-", "-", "-", "-", r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-12s %10d %10d %12d %12d\n",
			r.Tool, r.RawFindings, r.Unique, r.WithPaths, r.OutputBytes)
	}
	return sb.String()
}

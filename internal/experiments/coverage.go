package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mumak/internal/apps"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/report"
	"mumak/internal/taxonomy"
	"mumak/internal/workload"
)

// BugOutcome is one row of the §6.2 coverage study.
type BugOutcome struct {
	Bug      bugs.Bug
	Found    bool
	Expected bool // whether the registry expects Mumak to find it
	Detail   string
}

// CoverageResult aggregates the study.
type CoverageResult struct {
	Outcomes []BugOutcome
	// FoundCorrectness / FoundPerformance count detected bugs.
	FoundCorrectness, TotalCorrectness int
	FoundPerformance, TotalPerformance int
}

// Percent is the headline §6.2 number (the paper reports 90%).
func (c *CoverageResult) Percent() int {
	total := c.TotalCorrectness + c.TotalPerformance
	if total == 0 {
		return 0
	}
	return 100 * (c.FoundCorrectness + c.FoundPerformance) / total
}

// Coverage runs Mumak against every seeded bug of the registry, one bug
// at a time (so bugs cannot mask one another), and reports which were
// found — the §6.2 study against Witcher's bug list. withRecovery
// selects the Level Hashing oracle variant, reproducing the 1-of-17
// story when false.
func Coverage(sc Scale, withRecovery bool) (*CoverageResult, error) {
	res := &CoverageResult{}
	for _, b := range bugs.Registry {
		found, detail, err := coverOne(b, sc, withRecovery)
		if err != nil {
			return nil, fmt.Errorf("coverage %s: %w", b.ID, err)
		}
		res.Outcomes = append(res.Outcomes, BugOutcome{
			Bug: b, Found: found, Expected: b.Mechanism != bugs.Missed, Detail: detail,
		})
		if b.Correctness() {
			res.TotalCorrectness++
			if found {
				res.FoundCorrectness++
			}
		} else {
			res.TotalPerformance++
			if found {
				res.FoundPerformance++
			}
		}
	}
	return res, nil
}

// coverageWorkload picks a per-app workload dense enough to exercise the
// seeded bug sites (resizes, splits, displacement).
func coverageWorkload(app string, sc Scale) workload.Workload {
	n := sc.Ops
	if n > 2000 {
		n = 2000 // coverage needs breadth over depth; cap per-bug cost
	}
	cfg := workload.Config{N: n, Seed: sc.Seed, Keyspace: uint64(n/2 + 1)}
	switch app {
	case "levelhash", "cceh", "fastfair":
		cfg.PutFrac, cfg.GetFrac, cfg.DeleteFrac = 3, 1, 1
	}
	return workload.Generate(cfg)
}

func coverOne(b bugs.Bug, sc Scale, withRecovery bool) (bool, string, error) {
	cfg := apps.Config{
		SPT:          true,
		PoolSize:     16 << 20,
		Bugs:         bugs.Enable(b.ID),
		WithRecovery: withRecovery,
	}
	app, err := apps.New(b.App, cfg)
	if err != nil {
		return false, "", err
	}
	w := coverageWorkload(b.App, sc)
	res, err := core.Analyze(app, w, core.Config{Budget: sc.Budget, KeepWarnings: true})
	if err != nil {
		return false, "", err
	}
	counts := res.Report.CountByKind()
	switch {
	case b.Correctness():
		if counts[report.CrashConsistency] > 0 {
			return true, "fault injection", nil
		}
		if counts[report.WarnFenceOrdering] > 0 && b.Mechanism == bugs.Missed {
			return false, "warned only (unexplored orderings)", nil
		}
		return false, "", nil
	case b.Class == taxonomy.RedundantFlush:
		return counts[report.RedundantFlush] > 0, "trace analysis", nil
	case b.Class == taxonomy.RedundantFence:
		return counts[report.RedundantFence] > 0, "trace analysis", nil
	default: // transient data
		found := counts[report.WarnTransientData] > 0 || counts[report.DirtyOverwrite] > 0
		return found, "trace analysis", nil
	}
}

// RenderCoverage prints the per-application coverage table and the
// headline percentage.
func RenderCoverage(c *CoverageResult) string {
	type row struct{ found, total, pfound, ptotal int }
	perApp := map[string]*row{}
	var misses []string
	for _, o := range c.Outcomes {
		r := perApp[o.Bug.App]
		if r == nil {
			r = &row{}
			perApp[o.Bug.App] = r
		}
		if o.Bug.Correctness() {
			r.total++
			if o.Found {
				r.found++
			}
		} else {
			r.ptotal++
			if o.Found {
				r.pfound++
			}
		}
		if o.Found != o.Expected {
			state := "unexpectedly found"
			if !o.Found {
				state = "unexpectedly missed"
			}
			misses = append(misses, fmt.Sprintf("  %s: %s", o.Bug.ID, state))
		}
	}
	names := make([]string, 0, len(perApp))
	for n := range perApp {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("# Bug coverage against the seeded registry (the paper's Witcher-list study, §6.2)\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "target", "correctness", "performance")
	for _, n := range names {
		r := perApp[n]
		fmt.Fprintf(&sb, "%-12s %11d/%-3d %11d/%-3d\n", n, r.found, r.total, r.pfound, r.ptotal)
	}
	fmt.Fprintf(&sb, "overall: %d/%d correctness, %d/%d performance -> %d%% (paper: 90%%)\n",
		c.FoundCorrectness, c.TotalCorrectness, c.FoundPerformance, c.TotalPerformance, c.Percent())
	if len(misses) > 0 {
		sb.WriteString("deviations from expectation:\n")
		sb.WriteString(strings.Join(misses, "\n"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

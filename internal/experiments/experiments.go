// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): workload-size coverage (Fig 3a/3b), the cross-tool
// performance comparison (Fig 4a/4b) with its resource table (Table 2),
// the §6.2 bug-coverage study against the seeded registry, the
// scalability study (Fig 5), and the §6.4 new-bug reproductions. The
// cmd/ drivers and the benchmark harness are thin wrappers around this
// package.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Scale shrinks the paper's hardware-scale parameters to simulator
// scale. The paper drives 150 000 operations under a 12-hour budget on a
// 128-core Optane machine; the simulator preserves the *shape* of every
// result at a fraction of the size.
type Scale struct {
	// Ops is the workload size standing in for the paper's 150 000.
	Ops int
	// Budget stands in for the 12-hour analysis limit.
	Budget time.Duration
	// MemBudget stands in for the machine's 256 GB.
	MemBudget uint64
	// Seed drives workload generation.
	Seed int64
}

// Default is the scale used by the cmd/ drivers: 1/10th of the paper's
// workload and a budget that plays the role of the 12-hour limit.
func Default() Scale {
	return Scale{Ops: 15000, Budget: 60 * time.Second, MemBudget: 2 << 30, Seed: 42}
}

// Quick is the scale used by the benchmark harness and tests.
func Quick() Scale {
	return Scale{Ops: 2000, Budget: 10 * time.Second, MemBudget: 512 << 20, Seed: 42}
}

// Series is one plotted line: label plus (x, y) points.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
	// Censored marks a measurement that exceeded its budget (the ∞
	// bars of Fig 4).
	Censored bool
}

// RenderSeries prints series as an aligned text table, one row per X.
func RenderSeries(title, xName, yName string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", title)
	fmt.Fprintf(&sb, "%-14s", xName)
	for _, s := range series {
		fmt.Fprintf(&sb, "%18s", s.Label)
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&sb, "%-14.0f", series[0].Points[i].X)
		for _, s := range series {
			if i >= len(s.Points) {
				fmt.Fprintf(&sb, "%18s", "-")
				continue
			}
			p := s.Points[i]
			cell := fmt.Sprintf("%.3f", p.Y)
			if p.Censored {
				cell = "inf(>" + cell + ")"
			}
			fmt.Fprintf(&sb, "%18s", cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"mumak/internal/apps"
	"mumak/internal/core"
	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/tools"
	"mumak/internal/tools/agamotto"
	"mumak/internal/tools/pmdebugger"
	"mumak/internal/tools/witcher"
	"mumak/internal/tools/xfdetector"
	"mumak/internal/workload"
)

// ToolRun is one bar of Fig 4 plus its Table 2 row.
type ToolRun struct {
	Tool     string
	Target   string // includes the (SPT) suffix
	Elapsed  time.Duration
	Censored bool // exceeded the budget (the ∞ bars) or OOMed
	OOM      bool
	Bugs     int
	CPU      float64
	RAMx     float64 // peak RAM relative to the vanilla execution
	PMx      float64 // PM relative to the target's own usage
	Err      string
}

// fig4Target is one benchmark configuration of §6.1.
type fig4Target struct {
	name string
	spt  bool
}

func fig4Targets(ver pmdk.Version) []fig4Target {
	if ver == pmdk.V18 {
		// Hashmap Atomic does not operate correctly with PMDK 1.8 and
		// is excluded, as in the paper.
		return []fig4Target{{"btree", false}, {"rbtree", false}, {"btree", true}, {"rbtree", true}}
	}
	return []fig4Target{
		{"btree", false}, {"rbtree", false}, {"hashmap", false},
		{"btree", true}, {"rbtree", true}, {"hashmap", true},
	}
}

func fig4Tools(ver pmdk.Version) []tools.Tool {
	if ver == pmdk.V18 {
		return []tools.Tool{pmdebugger.New(), witcher.New()}
	}
	return []tools.Tool{agamotto.New(), xfdetector.New()}
}

// Fig4 runs the §6.1 performance comparison for one PMDK version: Mumak
// plus the version's baseline tools over the libpmemobj data stores,
// original and SPT variants (E2 / claim C2).
func Fig4(ver pmdk.Version, sc Scale) ([]ToolRun, error) {
	var out []ToolRun
	for _, tgt := range fig4Targets(ver) {
		cfg := apps.Config{Ver: ver, SPT: tgt.spt, PoolSize: poolFor(sc.Ops)}
		w := workload.Generate(workload.Config{N: sc.Ops, Seed: sc.Seed})
		label := tgt.name
		if tgt.spt {
			label += " (SPT)"
		}
		// Vanilla baseline for the relative resource columns.
		vanillaPeak, appPM, err := vanillaFootprint(tgt.name, cfg, w)
		if err != nil {
			return nil, err
		}

		// Mumak.
		out = append(out, runMumak(tgt.name, label, cfg, w, sc, vanillaPeak, appPM))

		// Baselines. XFDetector and Witcher are only evaluated on the
		// SPT variants, whose semantics their analyses depend on
		// (§6.1); the others run on both.
		for _, tool := range fig4Tools(ver) {
			sptOnly := tool.Name() == "XFDetector" || tool.Name() == "Witcher"
			if sptOnly && !tgt.spt {
				continue
			}
			out = append(out, runTool(tool, tgt.name, label, cfg, w, sc, vanillaPeak, appPM))
		}
	}
	return out, nil
}

func runMumak(target, label string, cfg apps.Config, w workload.Workload, sc Scale, vanillaPeak, appPM uint64) ToolRun {
	app, err := apps.New(target, cfg)
	if err != nil {
		return ToolRun{Tool: "Mumak", Target: label, Err: err.Error()}
	}
	run := metrics.Start()
	res, err := core.Analyze(app, w, core.Config{Budget: sc.Budget})
	run.Stop()
	tr := ToolRun{Tool: "Mumak", Target: label}
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	u := run.Usage()
	tr.Elapsed = res.Elapsed
	tr.Censored = res.TimedOut
	tr.Bugs = len(res.Report.Bugs())
	tr.CPU = u.CPULoad
	tr.RAMx = u.RAMOverhead(vanillaPeak)
	tr.PMx = pmOverhead(appPM, u.PMExtraBytes)
	return tr
}

func runTool(tool tools.Tool, target, label string, cfg apps.Config, w workload.Workload, sc Scale, vanillaPeak, appPM uint64) ToolRun {
	app, err := apps.New(target, cfg)
	tr := ToolRun{Tool: tool.Name(), Target: label}
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	res, err := tool.Analyze(app, w, tools.Config{Budget: sc.Budget, MemBudget: sc.MemBudget})
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	tr.Elapsed = res.Elapsed
	tr.Censored = res.TimedOut || res.OOM
	tr.OOM = res.OOM
	tr.Bugs = len(res.Report.Unique())
	tr.CPU = res.Usage.CPULoad
	tr.RAMx = res.Usage.RAMOverhead(vanillaPeak)
	tr.PMx = pmOverhead(appPM, res.Usage.PMExtraBytes)
	return tr
}

func pmOverhead(appPM, extra uint64) float64 {
	if appPM == 0 {
		return 1
	}
	return float64(appPM+extra) / float64(appPM)
}

// vanillaFootprint measures the uninstrumented execution's peak heap and
// PM footprint (distinct stored cache lines).
func vanillaFootprint(target string, cfg apps.Config, w workload.Workload) (heapPeak, pmBytes uint64, err error) {
	app, err := apps.New(target, cfg)
	if err != nil {
		return 0, 0, err
	}
	run := metrics.Start()
	fp := &footprint{lines: map[uint64]struct{}{}}
	_, sig, err := harness.Execute(app, w, pmem.Options{}, fp)
	run.Stop()
	if err != nil {
		return 0, 0, fmt.Errorf("vanilla run of %s: %w", target, err)
	}
	if sig != nil {
		return 0, 0, fmt.Errorf("vanilla run of %s crashed", target)
	}
	return run.Usage().PeakHeapBytes, uint64(len(fp.lines)) * pmem.CacheLineSize, nil
}

// footprint counts distinct stored cache lines.
type footprint struct{ lines map[uint64]struct{} }

// OnEvent implements pmem.Hook.
func (f *footprint) OnEvent(ev *pmem.Event) {
	if ev.Op.Kind() != pmem.KindStore {
		return
	}
	for base := ev.Addr &^ (pmem.CacheLineSize - 1); base < ev.Addr+uint64(ev.Size); base += pmem.CacheLineSize {
		f.lines[base] = struct{}{}
	}
}

// RenderToolRuns prints Fig 4 / Table 2 as an aligned text table.
func RenderToolRuns(title string, runs []ToolRun) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", title)
	fmt.Fprintf(&sb, "%-22s %-14s %12s %6s %6s %6s %6s  %s\n",
		"target", "tool", "time", "bugs", "CPU", "RAMx", "PMx", "status")
	for _, r := range runs {
		status := "ok"
		switch {
		case r.Err != "":
			status = "error: " + r.Err
		case r.OOM:
			status = "OOM (inf)"
		case r.Censored:
			status = "timeout (inf)"
		}
		fmt.Fprintf(&sb, "%-22s %-14s %12s %6d %6.2f %6.1f %6.1f  %s\n",
			r.Target, r.Tool, r.Elapsed.Round(time.Millisecond), r.Bugs, r.CPU, r.RAMx, r.PMx, status)
	}
	return sb.String()
}

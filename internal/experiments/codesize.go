package experiments

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
)

// CodeSize measures a target's codebase size for the Fig 5 x-axis. The
// paper counts "lines ending in a semicolon for the target and their PM
// dependencies"; the Go analogue counts non-empty, non-comment source
// lines of the application package plus the PM substrate packages it is
// built on.
func CodeSize(target string) (int, error) {
	dirs, ok := codeDirs[target]
	if !ok {
		return 0, os.ErrNotExist
	}
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, d := range dirs {
		n, err := countDir(filepath.Join(root, d))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// codeDirs maps Fig 5 targets to their source directories (application
// plus PM dependencies), mirroring the paper's "target and their PM
// dependencies (for example, PMDK)".
var codeDirs = map[string][]string{
	"cmap":                {"internal/apps/pmemkv", "internal/pmdk"},
	"stree":               {"internal/apps/pmemkv", "internal/pmdk"},
	"montage-hashtable":   {"internal/apps/montageht", "internal/montage"},
	"montage-lfhashtable": {"internal/apps/montageht", "internal/montage"},
	"redis":               {"internal/apps/redis", "internal/pmdk"},
	"rocksdb":             {"internal/apps/rocksdb", "internal/pmdk"},
	"btree":               {"internal/apps/btree", "internal/pmdk"},
	"rbtree":              {"internal/apps/rbtree", "internal/pmdk"},
	"hashmap":             {"internal/apps/hashatomic", "internal/pmdk"},
	"levelhash":           {"internal/apps/levelhash", "internal/pmdk"},
	"cceh":                {"internal/apps/cceh", "internal/pmdk"},
	"fastfair":            {"internal/apps/fastfair", "internal/pmdk"},
	"wort":                {"internal/apps/wort", "internal/pmdk"},
	"art":                 {"internal/apps/art", "internal/pmdk"},
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// countDir counts non-empty, non-comment, non-test Go source lines.
func countDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			total++
		}
		f.Close()
	}
	return total, nil
}

package experiments

import (
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/core"
	"mumak/internal/fpt"
	"mumak/internal/workload"
)

// Fig3Sizes scales the paper's workload sizes (3 000 … 300 000) down by
// the given divisor, preserving the non-linear x axis.
func Fig3Sizes(divisor int) []int {
	if divisor <= 0 {
		divisor = 1
	}
	base := []int{3000, 6000, 15000, 30000, 75000, 150000, 300000}
	out := make([]int, len(base))
	for i, b := range base {
		out[i] = b / divisor
		if out[i] < 10 {
			out[i] = 10
		}
	}
	return out
}

// fig3Targets are the three PMDK data stores of Fig 3.
var fig3Targets = []string{"btree", "rbtree", "hashmap"}

// Fig3 measures the number of unique execution paths leading to
// persistency instructions (Fig 3a) and to stores to PM (Fig 3b) as a
// function of workload size (E1 / claim C1: larger workloads are needed
// for coverage).
func Fig3(sizes []int, seed int64) (fig3a, fig3b []Series, err error) {
	for _, g := range []fpt.Granularity{fpt.GranPersistency, fpt.GranStore} {
		var out []Series
		for _, target := range fig3Targets {
			s := Series{Label: target}
			for _, n := range sizes {
				app, err := apps.New(target, apps.Config{PoolSize: poolFor(n)})
				if err != nil {
					return nil, nil, err
				}
				w := workload.Generate(workload.Config{N: n, Seed: seed})
				res, err := core.Analyze(app, w, core.Config{
					Granularity:           g,
					DisableFaultInjection: true,
					DisableTraceAnalysis:  true,
				})
				if err != nil {
					return nil, nil, fmt.Errorf("fig3 %s n=%d: %w", target, n, err)
				}
				s.Points = append(s.Points, Point{X: float64(n), Y: float64(res.Tree.Len())})
			}
			out = append(out, s)
		}
		if g == fpt.GranPersistency {
			fig3a = out
		} else {
			fig3b = out
		}
	}
	return fig3a, fig3b, nil
}

// poolFor sizes the simulated pool to the workload.
func poolFor(ops int) int {
	size := ops * 1024
	if size < 1<<20 {
		size = 1 << 20
	}
	if size > 256<<20 {
		size = 256 << 20
	}
	return size
}

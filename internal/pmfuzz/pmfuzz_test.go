package pmfuzz_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmfuzz"
	"mumak/internal/workload"
)

func mk() harness.Application {
	return btree.New(apps.Config{SPT: true, PoolSize: 2 << 20})
}

func TestFuzzImprovesCoverage(t *testing.T) {
	// A deliberately poor seed: few operations over two keys exercises
	// almost no code paths; the fuzzer should beat it clearly.
	seed := workload.Generate(workload.Config{N: 60, Seed: 1, Keyspace: 2})
	res, err := pmfuzz.Fuzz(mk, seed, pmfuzz.Config{Rounds: 10, MutantsPerRound: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCoverage <= res.SeedCoverage {
		t.Fatalf("fuzzing did not improve coverage: %d -> %d after %d evaluations",
			res.SeedCoverage, res.BestCoverage, res.Evaluated)
	}
}

func TestFuzzIsDeterministic(t *testing.T) {
	seed := workload.Generate(workload.Config{N: 40, Seed: 2, Keyspace: 4})
	run := func() int {
		res, err := pmfuzz.Fuzz(mk, seed, pmfuzz.Config{Rounds: 4, MutantsPerRound: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestCoverage
	}
	if run() != run() {
		t.Fatal("same fuzz seed produced different outcomes")
	}
}

func TestFuzzStoreGranularitySignal(t *testing.T) {
	seed := workload.Generate(workload.Config{N: 40, Seed: 4, Keyspace: 4})
	res, err := pmfuzz.Fuzz(mk, seed, pmfuzz.Config{
		Rounds: 3, MutantsPerRound: 3, Seed: 5, Granularity: fpt.GranStore})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCoverage == 0 {
		t.Fatal("store-granularity coverage signal empty")
	}
}

// Package pmfuzz implements a PMFuzz-style coverage-guided workload
// generator (Liu et al., ASPLOS'21). The paper treats workload
// generation as orthogonal to Mumak and notes the two can be combined
// (§4): PMFuzz mutates seed inputs and prioritises those that reach new
// code paths containing PM accesses. Our fitness signal is exactly
// Mumak's coverage notion — the number of unique failure points in the
// failure point tree — so a fuzzed workload directly enlarges the fault
// injector's search space.
package pmfuzz

import (
	"math/rand"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// Config tunes the fuzzing loop.
type Config struct {
	// Rounds is the number of mutation rounds (default 16).
	Rounds int
	// MutantsPerRound is how many mutants each round evaluates
	// (default 8).
	MutantsPerRound int
	// Seed drives mutation.
	Seed int64
	// Granularity selects the coverage signal's failure-point
	// definition.
	Granularity fpt.Granularity
}

// Result is the fuzzing outcome.
type Result struct {
	// Best is the highest-coverage workload found.
	Best workload.Workload
	// BestCoverage is its unique-failure-point count.
	BestCoverage int
	// SeedCoverage is the starting workload's count.
	SeedCoverage int
	// Evaluated counts fitness evaluations.
	Evaluated int
}

// Fuzz evolves the seed workload towards PM-path coverage. mk constructs
// a fresh application instance per evaluation (evaluations crash nothing
// but must not share pool state).
func Fuzz(mk func() harness.Application, seed workload.Workload, cfg Config) (*Result, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 16
	}
	if cfg.MutantsPerRound <= 0 {
		cfg.MutantsPerRound = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Best: seed}
	cov, err := coverage(mk(), seed, cfg.Granularity)
	if err != nil {
		return nil, err
	}
	res.SeedCoverage = cov
	res.BestCoverage = cov
	res.Evaluated = 1

	maxLen := len(seed.Ops)*8 + 64
	for round := 0; round < cfg.Rounds; round++ {
		improved := false
		for m := 0; m < cfg.MutantsPerRound; m++ {
			cand := mutate(rng, res.Best)
			if len(cand.Ops) > maxLen {
				cand.Ops = cand.Ops[:maxLen]
			}
			c, err := coverage(mk(), cand, cfg.Granularity)
			if err != nil {
				continue // a mutant that breaks the target is discarded
			}
			res.Evaluated++
			switch {
			case c > res.BestCoverage:
				res.Best = cand
				res.BestCoverage = c
				improved = true
			case c == res.BestCoverage && len(cand.Ops) > len(res.Best.Ops):
				// Neutral drift towards longer inputs: coverage
				// plateaus (a split or resize needs many more
				// operations than one mutation adds) are crossed by
				// letting equally-covering but larger inputs survive.
				res.Best = cand
			}
		}
		if !improved && round > cfg.Rounds {
			break
		}
	}
	return res, nil
}

// coverage measures a workload's unique-failure-point count — the same
// tree Mumak later injects into.
func coverage(app harness.Application, w workload.Workload, g fpt.Granularity) (int, error) {
	stacks := stack.NewTable()
	tree := fpt.New(stacks)
	capture := pmem.CapturePersistency
	if g == fpt.GranStore {
		capture = pmem.CaptureStores
	}
	_, sig, err := harness.Execute(app, w, pmem.Options{Capture: capture, Stacks: stacks},
		fpt.NewBuilder(tree, g))
	if err != nil {
		return 0, err
	}
	if sig != nil {
		return 0, sig
	}
	return tree.Len(), nil
}

// mutate applies one of PMFuzz's input mutations: splice a hot segment,
// flip operation kinds, widen or narrow the keyspace, or duplicate a
// subsequence (growing structures deeper).
func mutate(rng *rand.Rand, w workload.Workload) workload.Workload {
	ops := make([]workload.Op, len(w.Ops))
	copy(ops, w.Ops)
	if len(ops) == 0 {
		return workload.Workload{Ops: ops, Seed: w.Seed}
	}
	switch rng.Intn(6) {
	case 0: // flip kinds in a window
		start := rng.Intn(len(ops))
		end := start + rng.Intn(len(ops)-start)
		for i := start; i < end; i++ {
			ops[i].Kind = workload.Kind(rng.Intn(3))
		}
	case 1: // rescale keys in a window (narrower keyspace = more collisions)
		div := uint64(rng.Intn(7) + 2)
		start := rng.Intn(len(ops))
		for i := start; i < len(ops); i++ {
			ops[i].Key /= div
		}
	case 2: // duplicate a subsequence
		start := rng.Intn(len(ops))
		n := rng.Intn(len(ops)-start)/2 + 1
		dup := append([]workload.Op{}, ops[start:start+n]...)
		ops = append(ops[:start+n], append(dup, ops[start+n:]...)...)
	case 3: // shift keys (touch a fresh region)
		delta := rng.Uint64() % 1024
		start := rng.Intn(len(ops))
		for i := start; i < len(ops); i++ {
			ops[i].Key += delta
		}
	case 4: // randomise keys in a window (diversify the key set)
		start := rng.Intn(len(ops))
		end := start + rng.Intn(len(ops)-start)
		for i := start; i < end; i++ {
			ops[i].Key = rng.Uint64() % 4096
		}
	case 5: // append fresh operations (grow the input)
		n := rng.Intn(len(ops)/2+8) + 4
		for i := 0; i < n; i++ {
			ops = append(ops, workload.Op{
				Kind: workload.Kind(rng.Intn(3)),
				Key:  rng.Uint64() % 4096,
				Val:  rng.Uint64(),
			})
		}
	}
	return workload.Workload{Ops: ops, Seed: w.Seed}
}

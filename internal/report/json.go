package report

import (
	"encoding/json"
	"io"

	"mumak/internal/stack"
)

// jsonFinding is the machine-readable form of one unique finding.
type jsonFinding struct {
	Kind    string   `json:"kind"`
	Class   string   `json:"class"`
	Warning bool     `json:"warning"`
	ICount  uint64   `json:"instruction"`
	Addr    string   `json:"address,omitempty"`
	Detail  string   `json:"detail,omitempty"`
	BugPath []string `json:"bug_path,omitempty"`
}

// jsonQuarantined is the machine-readable form of one quarantined
// failure point.
type jsonQuarantined struct {
	FailurePoint int      `json:"failure_point"`
	ICount       uint64   `json:"instruction"`
	Reason       string   `json:"reason"`
	Retries      int      `json:"retries"`
	BugPath      []string `json:"bug_path,omitempty"`
}

// jsonReport is the machine-readable report envelope.
type jsonReport struct {
	Target          string            `json:"target"`
	Tool            string            `json:"tool"`
	Bugs            int               `json:"bugs"`
	Warnings        int               `json:"warnings"`
	Interrupted     bool              `json:"interrupted,omitempty"`
	BudgetExhausted bool              `json:"budget_exhausted,omitempty"`
	Findings        []jsonFinding     `json:"findings"`
	Quarantined     []jsonQuarantined `json:"quarantined_leaves,omitempty"`
}

// WriteJSON emits the unique findings as JSON, the CI-pipeline-friendly
// counterpart of Format.
func (r *Report) WriteJSON(w io.Writer, withWarnings bool) error {
	out := jsonReport{
		Target:          r.Target,
		Tool:            r.Tool,
		Interrupted:     r.Interrupted,
		BudgetExhausted: r.BudgetExhausted,
	}
	for _, q := range r.Quarantined {
		jq := jsonQuarantined{
			FailurePoint: q.LeafID,
			ICount:       q.ICount,
			Reason:       q.Reason,
			Retries:      q.Retries,
		}
		if r.Stacks != nil && q.Stack != stack.NoID {
			for _, fr := range r.Stacks.Frames(q.Stack) {
				jq.BugPath = append(jq.BugPath, fr.String())
			}
		}
		out.Quarantined = append(out.Quarantined, jq)
	}
	for _, f := range r.Unique() {
		if f.Kind.IsWarning() {
			out.Warnings++
			if !withWarnings {
				continue
			}
		} else {
			out.Bugs++
		}
		jf := jsonFinding{
			Kind:    f.Kind.String(),
			Class:   f.Kind.Class().String(),
			Warning: f.Kind.IsWarning(),
			ICount:  f.ICount,
			Detail:  f.Detail,
		}
		if f.Addr != 0 {
			jf.Addr = hex(f.Addr)
		}
		if r.Stacks != nil && f.Stack != stack.NoID {
			for _, fr := range r.Stacks.Frames(f.Stack) {
				jf.BugPath = append(jf.BugPath, fr.String())
			}
		}
		out.Findings = append(out.Findings, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 0, 18)
	buf = append(buf, '0', 'x')
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xf
		if d != 0 || started || shift == 0 {
			started = true
			buf = append(buf, digits[d])
		}
	}
	return string(buf)
}

package report_test

import (
	"bytes"
	"strings"
	"testing"

	. "mumak/internal/report"
	"mumak/internal/stack"
)

func wireFixture(stacks *stack.Table) *Report {
	rep := &Report{Target: "btree", Tool: "mumak", Stacks: stacks}
	rep.Add(Finding{
		Kind: CrashConsistency, ICount: 42, Addr: 0x40,
		Stack: stacks.Intern([]uintptr{10, 20, 30}), Detail: "unflushed line",
	})
	rep.Add(Finding{
		Kind: TargetCrash, ICount: 77,
		Stack: stacks.Intern([]uintptr{11, 20, 30}), Detail: "panic: boom",
	})
	rep.Quarantine(QuarantinedLeaf{
		LeafID: 3, ICount: 99, Stack: stacks.Intern([]uintptr{12, 20, 30}),
		Reason: "replay failed before the failure point", Retries: 2,
	})
	rep.Interrupted = true
	return rep
}

// TestWireRoundTrip: a decoded report renders byte-identically to the
// original within the same process (the PCs re-intern into the new
// table and resolve to the same symbols).
func TestWireRoundTrip(t *testing.T) {
	stacks := stack.NewTable()
	rep := wireFixture(stacks)
	var buf bytes.Buffer
	if err := rep.EncodeWire(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWire(&buf, stack.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	if got.Format(true) != rep.Format(true) {
		t.Fatalf("decoded report renders differently\n--- original ---\n%s\n--- decoded ---\n%s",
			rep.Format(true), got.Format(true))
	}
	if !got.Interrupted {
		t.Fatal("interruption marker lost on the wire")
	}
	if len(got.Quarantined) != 1 || got.Quarantined[0].Retries != 2 {
		t.Fatalf("quarantined leaves did not round-trip: %+v", got.Quarantined)
	}
}

// TestDecodeWireRejectsGarbage: torn or corrupt snapshot bytes must
// come back as an error, never a decoder panic.
func TestDecodeWireRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not a gob stream"),
		{0x7f, 0x03, 0x01, 0x00, 0xff},
	} {
		if _, err := DecodeWire(bytes.NewReader(data), stack.NewTable()); err == nil {
			t.Fatalf("garbage %q accepted", data)
		}
	}
	// A torn prefix of a valid encoding.
	var buf bytes.Buffer
	if err := wireFixture(stack.NewTable()).EncodeWire(&buf); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()/2]
	if _, err := DecodeWire(bytes.NewReader(torn), stack.NewTable()); err == nil {
		t.Fatal("torn wire report accepted")
	}
}

// TestMergeUniqueIsIdempotent: folding the same partial report twice
// must not double-count findings or quarantined leaves — the property
// resumed campaigns (and later, shard merges) rely on.
func TestMergeUniqueIsIdempotent(t *testing.T) {
	stacks := stack.NewTable()
	dst := &Report{Target: "btree", Tool: "mumak", Stacks: stacks}
	src := wireFixture(stacks)
	dst.MergeUnique(src)
	nf, nq := len(dst.Findings), len(dst.Quarantined)
	dst.MergeUnique(src)
	if len(dst.Findings) != nf || len(dst.Quarantined) != nq {
		t.Fatalf("second merge grew the report: findings %d→%d quarantined %d→%d",
			nf, len(dst.Findings), nq, len(dst.Quarantined))
	}
	if !dst.Interrupted {
		t.Fatal("interruption marker not OR-ed across the merge")
	}
	// A genuinely new finding still lands.
	extra := &Report{Target: "btree", Tool: "mumak", Stacks: stacks}
	extra.Add(Finding{Kind: CrashConsistency, ICount: 1234, Detail: "new"})
	dst.MergeUnique(extra)
	if len(dst.Findings) != nf+1 {
		t.Fatalf("new finding was dropped: %d findings, want %d", len(dst.Findings), nf+1)
	}
}

// TestFormatMarkersAndQuarantine: the human-readable rendering carries
// the partial-report markers and the quarantine section.
func TestFormatMarkersAndQuarantine(t *testing.T) {
	stacks := stack.NewTable()
	rep := wireFixture(stacks)
	rep.BudgetExhausted = true
	text := rep.Format(false)
	for _, want := range []string{
		"quarantined failure points: 1",
		"replay failed before the failure point",
		"campaign interrupted",
		"analysis budget exhausted",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output lacks %q:\n%s", want, text)
		}
	}
	clean := &Report{Target: "t", Tool: "m"}
	text = clean.Format(false)
	for _, absent := range []string{"quarantined", "interrupted", "exhausted"} {
		if strings.Contains(text, absent) {
			t.Errorf("clean report mentions %q:\n%s", absent, text)
		}
	}
}

// Package report defines bug reports and the ergonomics the paper
// highlights in Table 3: complete bug paths, unique-bug filtering and
// succinct rendering.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mumak/internal/stack"
	"mumak/internal/taxonomy"
)

// Kind classifies a finding.
type Kind uint8

// Finding kinds. The first group are definite bugs; the second are the
// warnings of §4.2, reported to guide the developer but never counted as
// positives.
const (
	// CrashConsistency: an injected crash produced a state the
	// recovery procedure rejected (fault-injection phase).
	CrashConsistency Kind = iota
	// TargetCrash: the target's own execution failed abruptly outside
	// fault injection — a foreign panic, or a run the hang watchdog
	// had to terminate (possible non-termination / runaway PM event
	// allocation). Captured by the campaign sandbox; the detail
	// distinguishes the two.
	TargetCrash
	// RecoveryHang: the recovery procedure did not terminate within
	// the watchdog bounds — non-terminating recovery, a first-class
	// liveness bug category in PM bug studies.
	RecoveryHang
	// Durability: a store that was never explicitly persisted although
	// its address is flushed elsewhere in the execution.
	Durability
	// DirtyOverwrite: an address overwritten while a previous store to
	// it was still unpersisted.
	DirtyOverwrite
	// RedundantFlush: a flush of a line with no new stores since its
	// last write-back.
	RedundantFlush
	// RedundantFence: a fence with no flush or non-temporal store
	// since the previous fence.
	RedundantFence

	// WarnTransientData: a store whose address is never flushed during
	// the whole execution — PM possibly used for transient data.
	WarnTransientData
	// WarnMultiStoreFlush: a flush covering several stores — a single
	// flush suffices on this platform, but the layout may differ
	// elsewhere.
	WarnMultiStoreFlush
	// WarnFenceOrdering: a fence acting on more than one write-back,
	// whose non-program-order persist interleavings were not explored.
	WarnFenceOrdering
	// WarnRedundantNTFlush: a flush of a line whose only writes were
	// non-temporal — NT stores bypass the cache, so the flush has
	// nothing cached to write back. Advisory rather than a bug because
	// persisting a range over freshly NT-zeroed blocks is a common and
	// harmless library idiom (e.g. pmem_persist after pmem_memset).
	WarnRedundantNTFlush
)

var kindNames = [...]string{
	CrashConsistency:     "crash-consistency bug",
	TargetCrash:          "target crash outside injection",
	RecoveryHang:         "recovery hang",
	Durability:           "durability bug",
	DirtyOverwrite:       "dirty overwrite",
	RedundantFlush:       "redundant flush",
	RedundantFence:       "redundant fence",
	WarnTransientData:    "warning: possible transient data in PM",
	WarnMultiStoreFlush:  "warning: flush covers multiple stores",
	WarnFenceOrdering:    "warning: unexplored persist orderings behind fence",
	WarnRedundantNTFlush: "warning: flush of a line written only non-temporally",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "finding?"
}

// IsWarning reports whether the kind is advisory only.
func (k Kind) IsWarning() bool { return k >= WarnTransientData }

// Class maps the finding kind onto the §2 taxonomy.
func (k Kind) Class() taxonomy.Class {
	switch k {
	case TargetCrash, RecoveryHang:
		return taxonomy.Liveness
	case Durability, DirtyOverwrite:
		return taxonomy.Durability
	case RedundantFlush, WarnMultiStoreFlush, WarnRedundantNTFlush:
		return taxonomy.RedundantFlush
	case RedundantFence:
		return taxonomy.RedundantFence
	case WarnTransientData:
		return taxonomy.TransientData
	case WarnFenceOrdering:
		return taxonomy.Ordering
	default:
		// Fault injection exposes atomicity and ordering violations
		// without distinguishing them.
		return taxonomy.Atomicity
	}
}

// Finding is one detected bug or warning.
type Finding struct {
	// Kind classifies the finding.
	Kind Kind
	// ICount is the instruction at which the pattern fired or the
	// fault was injected.
	ICount uint64
	// Addr is the affected address where applicable.
	Addr uint64
	// Stack is the code path leading to the finding (stack.NoID when
	// unresolved).
	Stack stack.ID
	// Detail describes the finding (for crash-consistency bugs, the
	// recovery outcome).
	Detail string
}

// QuarantinedLeaf records a failure point whose replays kept failing
// after the campaign's bounded retries: the leaf was consumed without
// an injection and set aside, so one bad leaf can never sink a long
// campaign — but the coverage gap is reported, never silently dropped.
type QuarantinedLeaf struct {
	// LeafID and ICount identify the failure point (tree leaf ID and
	// first-occurrence instruction counter).
	LeafID int
	ICount uint64
	// Stack is the failure point's code path (stack.NoID when
	// unresolved).
	Stack stack.ID
	// Reason is the final skip reason after the last retry.
	Reason string
	// Retries is the number of extra replay attempts spent before
	// giving up.
	Retries int
}

// Report is the output of one analysis. Add, Quarantine and Merge are
// safe to call from concurrent campaign workers; the read accessors
// (Unique, Bugs, Format, ...) expect the findings to be quiescent, as
// they are once a campaign has been merged.
type Report struct {
	// Target and Tool identify the run.
	Target string
	Tool   string
	// Findings holds every raw finding before unique-filtering.
	Findings []Finding
	// Quarantined lists failure points set aside after exhausted
	// replay retries, in campaign merge order.
	Quarantined []QuarantinedLeaf
	// Interrupted marks a partial report: the campaign was gracefully
	// interrupted (SIGINT/SIGTERM) before consuming every failure
	// point. BudgetExhausted marks a partial report cut by the
	// analysis wall-clock budget instead.
	Interrupted     bool
	BudgetExhausted bool
	// Stacks resolves finding stacks for rendering.
	Stacks *stack.Table

	mu sync.Mutex
}

// Add appends a finding.
func (r *Report) Add(f Finding) {
	r.mu.Lock()
	r.Findings = append(r.Findings, f)
	r.mu.Unlock()
}

// Quarantine appends a quarantined failure point.
func (r *Report) Quarantine(q QuarantinedLeaf) {
	r.mu.Lock()
	r.Quarantined = append(r.Quarantined, q)
	r.mu.Unlock()
}

// Merge appends every finding of other, preserving its order. It lets a
// campaign worker accumulate findings into a private report and fold
// them into the shared one in a single deterministic step.
func (r *Report) Merge(other *Report) {
	if other == nil || r == other {
		return
	}
	other.mu.Lock()
	fs := make([]Finding, len(other.Findings))
	copy(fs, other.Findings)
	other.mu.Unlock()
	r.mu.Lock()
	r.Findings = append(r.Findings, fs...)
	r.mu.Unlock()
}

// Unique returns the findings filtered to one per unique bug: same kind
// and same code path (or same address when no stack was captured)
// collapse together, exactly the duplicate filtering of Table 3.
func (r *Report) Unique() []Finding {
	type key struct {
		kind  Kind
		stack stack.ID
		addr  uint64
	}
	seen := map[key]bool{}
	var out []Finding
	for _, f := range r.Findings {
		k := key{kind: f.Kind, stack: f.Stack}
		if f.Stack == stack.NoID {
			k.addr = f.Addr
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].ICount < out[j].ICount
	})
	return out
}

// Bugs returns the unique definite bugs (no warnings).
func (r *Report) Bugs() []Finding {
	var out []Finding
	for _, f := range r.Unique() {
		if !f.Kind.IsWarning() {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns the unique warnings.
func (r *Report) Warnings() []Finding {
	var out []Finding
	for _, f := range r.Unique() {
		if f.Kind.IsWarning() {
			out = append(out, f)
		}
	}
	return out
}

// CountByKind tallies unique findings per kind.
func (r *Report) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, f := range r.Unique() {
		out[f.Kind]++
	}
	return out
}

// Format renders the report succinctly: one block per unique finding
// with its complete code path.
func (r *Report) Format(withWarnings bool) string {
	var sb strings.Builder
	bugs := r.Bugs()
	fmt.Fprintf(&sb, "%s analysis of %s: %d unique bug(s)", r.Tool, r.Target, len(bugs))
	warns := r.Warnings()
	if withWarnings {
		fmt.Fprintf(&sb, ", %d warning(s)", len(warns))
	}
	sb.WriteByte('\n')
	render := func(i int, f Finding) {
		fmt.Fprintf(&sb, "\n[%d] %s", i+1, f.Kind)
		if f.Addr != 0 {
			fmt.Fprintf(&sb, " at address 0x%x", f.Addr)
		}
		fmt.Fprintf(&sb, " (instruction %d)\n", f.ICount)
		if f.Detail != "" {
			fmt.Fprintf(&sb, "    %s\n", f.Detail)
		}
		fmt.Fprintf(&sb, "    suggested fix: %s\n", f.Suggest())
		if r.Stacks != nil && f.Stack != stack.NoID {
			fmt.Fprintf(&sb, "%s\n", r.Stacks.Format(f.Stack))
		}
	}
	for i, f := range bugs {
		render(i, f)
	}
	if withWarnings {
		for i, f := range warns {
			render(len(bugs)+i, f)
		}
	}
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(&sb, "\nquarantined failure points: %d (replays kept failing after bounded retries; coverage is incomplete)\n",
			len(r.Quarantined))
		for _, q := range r.Quarantined {
			fmt.Fprintf(&sb, "  - failure point #%d (instruction %d), %d retries: %s\n",
				q.LeafID, q.ICount, q.Retries, q.Reason)
			if r.Stacks != nil && q.Stack != stack.NoID {
				fmt.Fprintf(&sb, "%s\n", r.Stacks.Format(q.Stack))
			}
		}
	}
	if r.BudgetExhausted {
		sb.WriteString("\nanalysis budget exhausted: this is a partial report\n")
	}
	if r.Interrupted {
		sb.WriteString("\ncampaign interrupted: this is a partial report (resume from the journal to complete it)\n")
	}
	return sb.String()
}

// Suggest proposes a fix for the finding, in the spirit of Hippocrates
// (Neal et al., ASPLOS'21), which turns PM bug-finder output into safe
// fixes: the prescription follows mechanically from the §4.2 pattern
// that fired.
func (f Finding) Suggest() string {
	switch f.Kind {
	case TargetCrash:
		return "fix the abrupt failure first: the target crashed or looped without an injected fault, so every other finding is suspect"
	case RecoveryHang:
		return "bound the recovery scan: a corrupted image must be rejected with an error, not retried forever"
	case Durability:
		return "persist the store: flush its cache line(s) and fence before the data is relied upon"
	case DirtyOverwrite:
		return "move the repeatedly rewritten data to volatile memory, or persist between the writes"
	case RedundantFlush:
		return "remove the flush: the line holds no unpersisted data at this point"
	case RedundantFence:
		return "remove the fence: nothing is pending since the previous one"
	case WarnTransientData:
		return "if the region is meant to be durable, add flush+fence; otherwise move it to volatile memory"
	case WarnMultiStoreFlush:
		return "keep the single flush but assert the stores share a cache line across target platforms"
	case WarnFenceOrdering:
		return "if recovery depends on the order of these write-backs, fence between them"
	case WarnRedundantNTFlush:
		return "drop the flush: non-temporal stores bypass the cache, only the fence is needed"
	default:
		return "make the updates between the failure point and the recovery invariant failure-atomic (undo/redo logging or an atomic publication pointer)"
	}
}

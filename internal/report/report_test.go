package report

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"mumak/internal/stack"
	"mumak/internal/taxonomy"
)

func TestKindClassification(t *testing.T) {
	cases := map[Kind]struct {
		warning bool
		class   taxonomy.Class
	}{
		CrashConsistency:     {false, taxonomy.Atomicity},
		TargetCrash:          {false, taxonomy.Liveness},
		RecoveryHang:         {false, taxonomy.Liveness},
		Durability:           {false, taxonomy.Durability},
		DirtyOverwrite:       {false, taxonomy.Durability},
		RedundantFlush:       {false, taxonomy.RedundantFlush},
		RedundantFence:       {false, taxonomy.RedundantFence},
		WarnTransientData:    {true, taxonomy.TransientData},
		WarnMultiStoreFlush:  {true, taxonomy.RedundantFlush},
		WarnFenceOrdering:    {true, taxonomy.Ordering},
		WarnRedundantNTFlush: {true, taxonomy.RedundantFlush},
	}
	for k, want := range cases {
		if k.IsWarning() != want.warning {
			t.Errorf("%v IsWarning = %v", k, k.IsWarning())
		}
		if k.Class() != want.class {
			t.Errorf("%v Class = %v, want %v", k, k.Class(), want.class)
		}
	}
}

func TestUniqueCollapsesSameStack(t *testing.T) {
	st := stack.NewTable()
	id := st.Intern([]uintptr{1, 2, 3})
	r := &Report{Stacks: st}
	for i := 0; i < 5; i++ {
		r.Add(Finding{Kind: CrashConsistency, ICount: uint64(i), Stack: id})
	}
	r.Add(Finding{Kind: CrashConsistency, ICount: 99, Stack: st.Intern([]uintptr{9})})
	if got := len(r.Unique()); got != 2 {
		t.Fatalf("unique = %d, want 2", got)
	}
}

func TestUniqueFallsBackToAddress(t *testing.T) {
	r := &Report{}
	r.Add(Finding{Kind: RedundantFlush, Addr: 64, Stack: stack.NoID})
	r.Add(Finding{Kind: RedundantFlush, Addr: 64, Stack: stack.NoID})
	r.Add(Finding{Kind: RedundantFlush, Addr: 128, Stack: stack.NoID})
	if got := len(r.Unique()); got != 2 {
		t.Fatalf("unique = %d, want 2", got)
	}
}

func TestBugsExcludeWarnings(t *testing.T) {
	r := &Report{}
	r.Add(Finding{Kind: CrashConsistency, Addr: 1})
	r.Add(Finding{Kind: WarnTransientData, Addr: 2})
	if len(r.Bugs()) != 1 || len(r.Warnings()) != 1 {
		t.Fatalf("bugs=%d warnings=%d", len(r.Bugs()), len(r.Warnings()))
	}
}

func TestFormatMentionsCounts(t *testing.T) {
	r := &Report{Target: "t", Tool: "Mumak"}
	r.Add(Finding{Kind: RedundantFence, ICount: 3, Detail: "why"})
	out := r.Format(true)
	if !strings.Contains(out, "1 unique bug(s)") || !strings.Contains(out, "redundant fence") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestPropertyUniqueIdempotent(t *testing.T) {
	f := func(kinds []uint8, addrs []uint16) bool {
		r := &Report{}
		for i := range kinds {
			addr := uint64(0)
			if i < len(addrs) {
				addr = uint64(addrs[i])
			}
			r.Add(Finding{Kind: Kind(kinds[i] % 9), Addr: addr, Stack: stack.NoID})
		}
		u1 := r.Unique()
		r2 := &Report{Findings: u1}
		u2 := r2.Unique()
		return len(u1) == len(u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSON(t *testing.T) {
	st := stack.NewTable()
	r := &Report{Target: "t", Tool: "Mumak", Stacks: st}
	r.Add(Finding{Kind: CrashConsistency, ICount: 7, Addr: 0x40, Detail: "boom",
		Stack: st.Intern([]uintptr{1})})
	r.Add(Finding{Kind: WarnTransientData, ICount: 9})
	var buf strings.Builder
	if err := r.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"bugs": 1`, `"warnings": 1`, `"0x40"`, `"crash-consistency bug"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON lacks %s:\n%s", want, out)
		}
	}
}

func TestConcurrentAddAndMerge(t *testing.T) {
	// Campaign workers may Add into the shared report or Merge private
	// reports into it concurrently; under -race this test proves the
	// accessors are safe and that no finding is lost.
	r := &Report{Target: "t", Tool: "Mumak"}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			priv := &Report{}
			for i := 0; i < per; i++ {
				f := Finding{Kind: CrashConsistency, ICount: uint64(g*per + i), Stack: stack.NoID}
				if g%2 == 0 {
					r.Add(f)
				} else {
					priv.Add(f)
				}
			}
			r.Merge(priv)
		}()
	}
	wg.Wait()
	if len(r.Findings) != workers*per {
		t.Fatalf("lost findings: %d recorded, want %d", len(r.Findings), workers*per)
	}
}

func TestMergePreservesOrder(t *testing.T) {
	src := &Report{}
	for i := 0; i < 5; i++ {
		src.Add(Finding{Kind: CrashConsistency, ICount: uint64(i), Stack: stack.NoID})
	}
	dst := &Report{}
	dst.Add(Finding{Kind: Durability, ICount: 99, Stack: stack.NoID})
	dst.Merge(src)
	if len(dst.Findings) != 6 {
		t.Fatalf("merged report has %d findings, want 6", len(dst.Findings))
	}
	for i := 1; i < 6; i++ {
		if dst.Findings[i].ICount != uint64(i-1) {
			t.Fatalf("merge reordered findings: %v", dst.Findings)
		}
	}
	dst.Merge(nil)
	dst.Merge(dst) // self-merge must not duplicate or deadlock
	if len(dst.Findings) != 6 {
		t.Fatalf("nil/self merge changed the report: %d findings", len(dst.Findings))
	}
}

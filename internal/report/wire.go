// Wire serialisation of reports, used by the campaign journal's
// snapshots and (eventually) the sharded campaign service: findings
// travel with their full call-stack program counters and are re-interned
// into the destination's stack table on decode, so a decoded report
// renders byte-identically to the original within the same process
// image (PCs are process-local, the same constraint the failure point
// tree artifact documents).
package report

import (
	"encoding/gob"
	"fmt"
	"io"

	"mumak/internal/stack"
)

// wireFinding is the serialised form of one finding; the interned stack
// ID is flattened to its program counters.
type wireFinding struct {
	Kind   uint8
	ICount uint64
	Addr   uint64
	PCs    []uintptr
	Detail string
}

// wireQuarantined is the serialised form of one quarantined leaf.
type wireQuarantined struct {
	LeafID  int
	ICount  uint64
	PCs     []uintptr
	Reason  string
	Retries int
}

// wireReport is the serialised report envelope.
type wireReport struct {
	Target          string
	Tool            string
	Interrupted     bool
	BudgetExhausted bool
	Findings        []wireFinding
	Quarantined     []wireQuarantined
}

// EncodeWire serialises the report — findings, quarantined leaves and
// the partial-report markers — with full call-stack PCs. It locks the
// report, so a campaign merge goroutine may snapshot it mid-run.
func (r *Report) EncodeWire(w io.Writer) error {
	r.mu.Lock()
	wr := wireReport{
		Target:          r.Target,
		Tool:            r.Tool,
		Interrupted:     r.Interrupted,
		BudgetExhausted: r.BudgetExhausted,
		Findings:        make([]wireFinding, 0, len(r.Findings)),
		Quarantined:     make([]wireQuarantined, 0, len(r.Quarantined)),
	}
	for _, f := range r.Findings {
		wr.Findings = append(wr.Findings, wireFinding{
			Kind:   uint8(f.Kind),
			ICount: f.ICount,
			Addr:   f.Addr,
			PCs:    r.pcsOf(f.Stack),
			Detail: f.Detail,
		})
	}
	for _, q := range r.Quarantined {
		wr.Quarantined = append(wr.Quarantined, wireQuarantined{
			LeafID:  q.LeafID,
			ICount:  q.ICount,
			PCs:     r.pcsOf(q.Stack),
			Reason:  q.Reason,
			Retries: q.Retries,
		})
	}
	r.mu.Unlock()
	return gob.NewEncoder(w).Encode(&wr)
}

// pcsOf flattens an interned stack to a private copy of its PCs; nil
// for an unresolved stack. Callers hold r.mu.
func (r *Report) pcsOf(id stack.ID) []uintptr {
	if r.Stacks == nil || id == stack.NoID {
		return nil
	}
	pcs := r.Stacks.PCs(id)
	if len(pcs) == 0 {
		return nil
	}
	cp := make([]uintptr, len(pcs))
	copy(cp, pcs)
	return cp
}

// DecodeWire deserialises a report, re-interning every call stack into
// the given table. Decoder panics on malformed input become errors.
func DecodeWire(rd io.Reader, stacks *stack.Table) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("report: decode panic: %v", r)
		}
	}()
	var wr wireReport
	if err := gob.NewDecoder(rd).Decode(&wr); err != nil {
		return nil, fmt.Errorf("report: decoding wire report: %w", err)
	}
	rep = &Report{
		Target:          wr.Target,
		Tool:            wr.Tool,
		Interrupted:     wr.Interrupted,
		BudgetExhausted: wr.BudgetExhausted,
		Stacks:          stacks,
	}
	intern := func(pcs []uintptr) stack.ID {
		if len(pcs) == 0 {
			return stack.NoID
		}
		return stacks.Intern(pcs)
	}
	for _, f := range wr.Findings {
		rep.Findings = append(rep.Findings, Finding{
			Kind:   Kind(f.Kind),
			ICount: f.ICount,
			Addr:   f.Addr,
			Stack:  intern(f.PCs),
			Detail: f.Detail,
		})
	}
	for _, q := range wr.Quarantined {
		rep.Quarantined = append(rep.Quarantined, QuarantinedLeaf{
			LeafID:  q.LeafID,
			ICount:  q.ICount,
			Stack:   intern(q.PCs),
			Reason:  q.Reason,
			Retries: q.Retries,
		})
	}
	return rep, nil
}

// MergeUnique folds other into r, skipping findings and quarantined
// leaves r already holds (same kind, instruction, address, code path
// and detail — the exact-duplicate key, stricter than Unique's
// one-per-bug collapse) and OR-ing the partial-report markers. Both
// reports must share one stack table (as DecodeWire arranges) for code
// paths to compare. This is the idempotent merge the campaign journal
// and the sharded campaign service need: folding the same shard's
// partial report twice cannot double-count.
func (r *Report) MergeUnique(other *Report) {
	if other == nil || r == other {
		return
	}
	other.mu.Lock()
	fs := make([]Finding, len(other.Findings))
	copy(fs, other.Findings)
	qs := make([]QuarantinedLeaf, len(other.Quarantined))
	copy(qs, other.Quarantined)
	interrupted, exhausted := other.Interrupted, other.BudgetExhausted
	other.mu.Unlock()

	type fkey struct {
		kind   Kind
		icount uint64
		addr   uint64
		stack  stack.ID
		detail string
	}
	type qkey struct {
		leaf   int
		icount uint64
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seenF := make(map[fkey]bool, len(r.Findings))
	for _, f := range r.Findings {
		seenF[fkey{f.Kind, f.ICount, f.Addr, f.Stack, f.Detail}] = true
	}
	for _, f := range fs {
		k := fkey{f.Kind, f.ICount, f.Addr, f.Stack, f.Detail}
		if seenF[k] {
			continue
		}
		seenF[k] = true
		r.Findings = append(r.Findings, f)
	}
	seenQ := make(map[qkey]bool, len(r.Quarantined))
	for _, q := range r.Quarantined {
		seenQ[qkey{q.LeafID, q.ICount}] = true
	}
	for _, q := range qs {
		k := qkey{q.LeafID, q.ICount}
		if seenQ[k] {
			continue
		}
		seenQ[k] = true
		r.Quarantined = append(r.Quarantined, q)
	}
	r.Interrupted = r.Interrupted || interrupted
	r.BudgetExhausted = r.BudgetExhausted || exhausted
}

// Package montage reimplements the persistence runtime of Montage (Wen
// et al., ICPP'21): a general system for buffered durable data
// structures. Payloads live in PM behind Montage's own persistent
// allocator (it does not use PMDK — the property that made it invisible
// to PMDK-specific tools, §6.4); indexes are volatile and rebuilt from
// payloads on recovery.
//
// The runtime ships with the two crash-consistency bugs Mumak found,
// both confirmed and fixed upstream, gated behind Config.Buggy:
//
//   - Allocator misuse (urcs-sync/Montage pull #36): a payload's in-use
//     marker is persisted before its contents exist, so a crash
//     resurrects garbage payloads and recovery reconstructs a corrupt
//     structure.
//   - Allocator destruction (urcs-sync/Montage commit 3384e50): the
//     shutdown path persists the clean marker before the allocator
//     metadata checkpoint it vouches for, leaving a much narrower crash
//     window in which the next open trusts stale allocation bounds.
package montage

import (
	"errors"
	"fmt"

	"mumak/internal/pmem"
)

const (
	magic = 0x4d4f4e5441474531 // "MONTAGE1"

	hdrMagic    = 0x00
	hdrClean    = 0x08 // u64: 1 = allocator checkpoint below is valid
	hdrBump     = 0x10 // u64: allocation frontier checkpoint
	hdrEpoch    = 0x20 // u64: persisted epoch
	hdrCount    = 0x28 // u64: live payloads
	hdrPayloads = 0x40 // payload region start

	// Payload block layout. The integrity word seals the key at
	// allocation time; free blocks reuse the key slot as their
	// free-list link.
	pState = 0x00 // u64: 0 free, 1 in use
	pKey   = 0x08
	pVal   = 0x10
	pChk   = 0x18 // u64: key ^ chkSeal, written with the key
	pSize  = 0x20

	chkSeal = 0xC0FFEE5EA15ED001

	stateFree  = 0
	stateInUse = 1
)

// ErrOutOfSpace signals payload-region exhaustion.
var ErrOutOfSpace = errors.New("montage: payload region exhausted")

// ErrCorrupt signals a recovery-time consistency violation.
var ErrCorrupt = errors.New("montage: corrupt state")

// Config parameterises the runtime.
type Config struct {
	// BuggyAlloc enables the allocator-misuse bug (pull #36).
	BuggyAlloc bool
	// BuggyClose enables the allocator-destruction bug (commit
	// 3384e50).
	BuggyClose bool
}

// Runtime is an open Montage persistence domain over an engine.
type Runtime struct {
	e   *pmem.Engine
	cfg Config
	// Volatile allocator state: the bump frontier is checkpointed to
	// the header on Close; the free list lives purely in DRAM and is
	// rebuilt by scanning on open (buffered durability keeps
	// reclamation metadata out of PM entirely).
	bump     uint64
	freeList []uint64
}

// Create formats the engine's pool for Montage.
func Create(e *pmem.Engine, cfg Config) (*Runtime, error) {
	r := &Runtime{e: e, cfg: cfg, bump: hdrPayloads}
	e.Store64(hdrClean, 1)
	e.Store64(hdrBump, hdrPayloads)
	e.Store64(hdrEpoch, 0)
	e.Store64(hdrCount, 0)
	r.persist(hdrClean, 40)
	e.Store64(hdrMagic, magic)
	r.persist(hdrMagic, 8)
	return r, nil
}

// Open attaches to an existing Montage pool, reconstructing the
// allocator from the checkpoint (clean shutdown) or by scanning payloads
// (crash).
func Open(e *pmem.Engine, cfg Config) (*Runtime, error) {
	if e.Load64(hdrMagic) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Runtime{e: e, cfg: cfg}
	if e.Load64(hdrClean) == 1 {
		r.bump = e.Load64(hdrBump)
		r.rebuildFreeList()
	} else {
		// Crash: rebuild the allocator by scanning. Every block below
		// the scan frontier that is not in use is free.
		r.rebuildAllocator()
	}
	if r.bump < hdrPayloads || r.bump > uint64(e.Size()) {
		return nil, fmt.Errorf("%w: allocation frontier 0x%x out of range", ErrCorrupt, r.bump)
	}
	// The pool is in (potentially dirty) use from here on.
	e.Store64(hdrClean, 0)
	r.persist(hdrClean, 8)
	return r, nil
}

// NeverCreated reports whether the pool was never formatted.
func NeverCreated(e *pmem.Engine) bool { return e.Load64(hdrMagic) == 0 }

func (r *Runtime) rebuildAllocator() {
	// The frontier is the highest block that was ever used plus one.
	e := r.e
	frontier := uint64(hdrPayloads)
	for off := uint64(hdrPayloads); off+pSize <= uint64(e.Size()); off += pSize {
		if e.Load64(off+pState) == stateInUse {
			frontier = off + pSize
		}
	}
	r.bump = frontier
	r.rebuildFreeList()
}

// rebuildFreeList scans the region below the frontier for free blocks;
// the list itself is volatile.
func (r *Runtime) rebuildFreeList() {
	r.freeList = r.freeList[:0]
	for off := uint64(hdrPayloads); off < r.bump; off += pSize {
		if r.e.Load64(off+pState) == stateFree {
			r.freeList = append(r.freeList, off)
		}
	}
}

// Engine exposes the underlying engine.
func (r *Runtime) Engine() *pmem.Engine { return r.e }

func (r *Runtime) persist(off uint64, size int) {
	first := off &^ (pmem.CacheLineSize - 1)
	last := (off + uint64(size) - 1) &^ (pmem.CacheLineSize - 1)
	for line := first; line <= last; line += pmem.CacheLineSize {
		r.e.CLWB(line)
	}
	r.e.SFence()
	// Montage emits no pmemcheck-style annotations: annotation-based
	// tools cannot analyse it (§6.4).
}

// AllocPayload persists a new in-use payload holding (key, val) and
// returns its offset.
func (r *Runtime) AllocPayload(key, val uint64) (uint64, error) {
	e := r.e
	var off uint64
	if n := len(r.freeList); n > 0 {
		off = r.freeList[n-1]
		r.freeList = r.freeList[:n-1]
	} else {
		if r.bump+pSize > uint64(e.Size()) {
			return 0, ErrOutOfSpace
		}
		off = r.bump
		r.bump += pSize
	}
	if r.cfg.BuggyAlloc {
		// BUG (Montage pull #36 analogue): the in-use marker is
		// persisted before the payload contents; a crash resurrects a
		// garbage payload into the recovered structure.
		e.Store64(off+pState, stateInUse)
		r.persist(off+pState, 8)
		e.Store64(off+pKey, key)
		e.Store64(off+pVal, val)
		e.Store64(off+pChk, key^chkSeal)
		r.persist(off+pKey, 24)
		return off, nil
	}
	e.Store64(off+pKey, key)
	e.Store64(off+pVal, val)
	e.Store64(off+pChk, key^chkSeal)
	r.persist(off+pKey, 24)
	e.Store64(off+pState, stateInUse)
	r.persist(off+pState, 8)
	return off, nil
}

// UpdatePayload atomically overwrites a payload's value.
func (r *Runtime) UpdatePayload(off, val uint64) {
	r.e.Store64(off+pVal, val)
	r.persist(off+pVal, 8)
}

// FreePayload retires a payload: the persisted state flip is the commit
// point; reclamation bookkeeping stays volatile.
func (r *Runtime) FreePayload(off uint64) {
	r.e.Store64(off+pState, stateFree)
	r.persist(off+pState, 8)
	r.freeList = append(r.freeList, off)
}

// Payload reads a payload's key and value.
func (r *Runtime) Payload(off uint64) (key, val uint64) {
	return r.e.Load64(off + pKey), r.e.Load64(off + pVal)
}

// SetCount persists the structure's element count.
func (r *Runtime) SetCount(n uint64) {
	r.e.Store64(hdrCount, n)
	r.persist(hdrCount, 8)
}

// Count reads the persisted element count.
func (r *Runtime) Count() uint64 { return r.e.Load64(hdrCount) }

// AdvanceEpoch persists an epoch boundary (Montage's buffered-durability
// sync point).
func (r *Runtime) AdvanceEpoch() {
	e := r.e
	e.Store64(hdrEpoch, e.Load64(hdrEpoch)+1)
	r.persist(hdrEpoch, 8)
}

// Scan invokes fn for every in-use payload below the allocation
// frontier, the primitive recovery rebuilds indexes with.
func (r *Runtime) Scan(fn func(off, key, val uint64) error) error {
	e := r.e
	for off := uint64(hdrPayloads); off < r.bump; off += pSize {
		if e.Load64(off+pState) != stateInUse {
			continue
		}
		if err := fn(off, e.Load64(off+pKey), e.Load64(off+pVal)); err != nil {
			return err
		}
	}
	return nil
}

// Close checkpoints the allocator and marks the pool clean — the
// "destruction of the allocator object" of §6.4.
func (r *Runtime) Close() {
	e := r.e
	if r.cfg.BuggyClose {
		// BUG (Montage commit 3384e50 analogue): the clean marker is
		// persisted before the checkpoint it vouches for; the window
		// is only a handful of instructions wide, but a crash inside
		// it makes the next open trust a stale allocation frontier
		// and hand out live payload blocks.
		e.Store64(hdrClean, 1)
		r.persist(hdrClean, 8)
		e.Store64(hdrBump, r.bump)
		r.persist(hdrBump, 8)
		return
	}
	e.Store64(hdrBump, r.bump)
	r.persist(hdrBump, 8)
	e.Store64(hdrClean, 1)
	r.persist(hdrClean, 8)
}

// Validate checks the payload region against the header: in-use payloads
// must be unique per key and lie below the trusted frontier, and the
// persisted count must reconcile (one lagging insert or delete is
// repaired, matching the count disciplines of the structures above).
func (r *Runtime) Validate() error {
	e := r.e
	seen := map[uint64]bool{}
	var live uint64
	maxUsed := uint64(hdrPayloads)
	for off := uint64(hdrPayloads); off+pSize <= uint64(e.Size()); off += pSize {
		if e.Load64(off+pState) != stateInUse {
			continue
		}
		key := e.Load64(off + pKey)
		if e.Load64(off+pChk) != key^chkSeal {
			return fmt.Errorf("%w: payload 0x%x fails its key integrity check", ErrCorrupt, off)
		}
		if seen[key] {
			return fmt.Errorf("%w: key %d has two live payloads", ErrCorrupt, key)
		}
		seen[key] = true
		live++
		maxUsed = off + pSize
	}
	// The allocator's trusted frontier (the checkpoint on a clean open,
	// the scan result after a crash) must cover every live payload;
	// a stale checkpoint would hand live blocks to future allocations.
	if maxUsed > r.bump {
		return fmt.Errorf("%w: trusted allocation frontier 0x%x below live payload at 0x%x",
			ErrCorrupt, r.bump, maxUsed-pSize)
	}
	count := e.Load64(hdrCount)
	switch {
	case live == count:
		return nil
	case live == count+1:
		r.SetCount(live)
		return nil
	default:
		return fmt.Errorf("%w: count=%d but %d live payloads", ErrCorrupt, count, live)
	}
}

package campaign

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Persistent cross-run verdict cache.
//
// Recovery verdicts are keyed by crash-image content, and the targets
// are deterministic: a verdict computed by one campaign is exactly as
// valid in the next run of the same campaign. Persisting the verdict
// cache therefore makes re-runs incremental — the warm campaign elides
// every replay whose stamped image key was already judged and pays only
// for classes whose hash was never seen.
//
// The file uses the same durability idioms as the rest of the package:
// a fixed header (magic, version, payload length, payload CRC) wraps a
// gob payload, so truncated or corrupt files are rejected with a
// diagnostic instead of feeding garbage to the decoder; writes go
// through temp file + fsync + rename + directory fsync, so the file
// either keeps its old complete contents or holds the new complete
// ones; and the payload embeds the campaign Meta, so a cache recorded
// under different parameters is refused with the same field-by-field
// diagnostic a mismatched journal gets.

var verdictMagic = [8]byte{'M', 'U', 'M', 'A', 'K', 'V', 'D', 'C'}

const (
	// VerdictCacheVersion is the cache-file format version.
	VerdictCacheVersion = 1
	// verdictHeaderLen is magic(8) + version(4) + payload length(8) +
	// payload CRC(4).
	verdictHeaderLen = 24
	// maxVerdictPayload bounds the declared payload length; anything
	// larger is a corrupt header, not a multi-GiB allocation.
	maxVerdictPayload = 1 << 31
)

// verdictCacheFile is the serialised payload: the campaign identity the
// verdicts were recorded under plus the exported cache entries
// (least-recently-used first, so seeding preserves recency and
// therefore eviction behaviour, exactly like snapshot seeding).
type verdictCacheFile struct {
	Meta    Meta
	Entries []CacheEntry
}

// SaveVerdictCache atomically replaces the cache file at path with the
// given entries, stamped with the campaign identity.
func SaveVerdictCache(path string, meta Meta, entries []CacheEntry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&verdictCacheFile{Meta: meta, Entries: entries}); err != nil {
		return fmt.Errorf("campaign: encoding verdict cache: %w", err)
	}
	buf := make([]byte, verdictHeaderLen+payload.Len())
	copy(buf[0:8], verdictMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], VerdictCacheVersion)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(payload.Bytes()))
	copy(buf[verdictHeaderLen:], payload.Bytes())
	dir := filepath.Dir(path)
	return writeAtomic(dir, filepath.Base(path), buf)
}

// LoadVerdictCache reads the cache file at path and validates it
// against the campaign about to use it. A missing file is a cold start
// and returns (nil, nil); a truncated, corrupt or foreign file — or one
// recorded under different campaign parameters — is an error, never
// silently partial data.
func LoadVerdictCache(path string, run Meta) ([]CacheEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading verdict cache: %w", err)
	}
	if len(data) < verdictHeaderLen {
		return nil, fmt.Errorf("campaign: verdict cache %s is truncated (%d bytes)", path, len(data))
	}
	if !bytes.Equal(data[0:8], verdictMagic[:]) {
		return nil, fmt.Errorf("campaign: %s is not a verdict cache file (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != VerdictCacheVersion {
		return nil, fmt.Errorf("campaign: unsupported verdict cache version %d (want %d)", v, VerdictCacheVersion)
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	if plen == 0 || plen > maxVerdictPayload || int(plen) != len(data)-verdictHeaderLen {
		return nil, fmt.Errorf("campaign: verdict cache %s is truncated or corrupt: payload length %d, %d bytes present", path, plen, len(data)-verdictHeaderLen)
	}
	payload := data[verdictHeaderLen:]
	if sum := binary.LittleEndian.Uint32(data[20:24]); crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("campaign: verdict cache %s is corrupt: payload checksum mismatch", path)
	}
	var vf verdictCacheFile
	if err := gobDecode(payload, &vf); err != nil {
		return nil, fmt.Errorf("campaign: decoding verdict cache %s: %w", path, err)
	}
	if err := vf.Meta.Check(run); err != nil {
		return nil, fmt.Errorf("campaign: verdict cache %s: %v", path, err)
	}
	return vf.Entries, nil
}

package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

func verdictFixture() (Meta, []CacheEntry) {
	meta := Meta{Target: "btree", Ops: 500, Seed: 42, StackMode: false}
	entries := []CacheEntry{
		{Hash: 0x1111, Size: 4096, Verdict: 0},
		{Hash: 0x2222, Size: 4096, Verdict: 2, ErrMsg: "recovery: torn count", HasErr: true},
		{Hash: 0x3333, Size: 4096, Verdict: 3, PanicValue: "index out of range", HasPanic: true, PanicTrace: "goroutine 1 [running]"},
	}
	return meta, entries
}

func TestVerdictCacheRoundTrip(t *testing.T) {
	meta, entries := verdictFixture()
	path := filepath.Join(t.TempDir(), "verdicts.bin")
	if err := SaveVerdictCache(path, meta, entries); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVerdictCache(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d round-tripped as %+v, want %+v", i, got[i], entries[i])
		}
	}
	// Saving again overwrites atomically rather than appending.
	if err := SaveVerdictCache(path, meta, entries[:1]); err != nil {
		t.Fatal(err)
	}
	if got, err = LoadVerdictCache(path, meta); err != nil || len(got) != 1 {
		t.Fatalf("after overwrite: %d entries, err %v", len(got), err)
	}
}

func TestVerdictCacheMissingFileIsColdStart(t *testing.T) {
	got, err := LoadVerdictCache(filepath.Join(t.TempDir(), "nope.bin"), Meta{})
	if err != nil || got != nil {
		t.Fatalf("missing file: entries=%v err=%v, want nil/nil", got, err)
	}
}

func TestVerdictCacheRejectsMetaMismatch(t *testing.T) {
	meta, entries := verdictFixture()
	path := filepath.Join(t.TempDir(), "verdicts.bin")
	if err := SaveVerdictCache(path, meta, entries); err != nil {
		t.Fatal(err)
	}
	other := meta
	other.Seed = 7
	if _, err := LoadVerdictCache(path, other); err == nil {
		t.Fatal("cache recorded under a different seed was accepted")
	}
}

func TestVerdictCacheRejectsCorruption(t *testing.T) {
	meta, entries := verdictFixture()
	dir := t.TempDir()
	path := filepath.Join(dir, "verdicts.bin")
	if err := SaveVerdictCache(path, meta, entries); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadVerdictCache(p, meta); err == nil {
			t.Fatalf("%s: corrupt cache accepted", name)
		}
	}
	corrupt("flipped-payload", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	corrupt("flipped-header", func(b []byte) []byte { b[0] ^= 0x01; return b })
	corrupt("bad-version", func(b []byte) []byte { b[8] = 99; return b })
	corrupt("torn-tail", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("torn-header", func(b []byte) []byte { return b[:10] })
}

package campaign

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testMeta() Meta {
	return Meta{Target: "btree", Ops: 300, Seed: 42, StackMode: false}
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			LeafID: i, LeafICount: uint64(10 * (i + 1)), Events: uint64(100 + i),
			Injected: true, Recovered: true, CacheMiss: true,
			HasFinding: i%3 == 0, FindingKind: 1, FindingICount: uint64(10 * (i + 1)),
			FindingAddr: 0x40, FindingDetail: "unflushed line",
		}
	}
	return recs
}

// writeJournal creates a journal in a fresh temp dir and appends the
// records, returning the directory.
func writeJournal(t *testing.T, recs []Record) string {
	t.Helper()
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestJournalRoundTrip(t *testing.T) {
	recs := testRecords(5)
	dir := writeJournal(t, recs)
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Diagnostics) != 0 {
		t.Fatalf("clean journal produced diagnostics: %v", st.Diagnostics)
	}
	if err := st.Meta.Check(testMeta()); err != nil {
		t.Fatalf("meta did not round-trip: %v", err)
	}
	if len(st.Records) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(st.Records), len(recs))
	}
	for i, rec := range st.Records {
		if rec != recs[i] {
			t.Fatalf("record %d did not round-trip: got %+v want %+v", i, rec, recs[i])
		}
	}
}

// TestJournalTornTail truncates the journal at every possible byte
// offset — simulating a kill -9 mid-append — and checks that each
// prefix loads the records whose frames are complete, with a
// diagnostic whenever bytes were discarded.
func TestJournalTornTail(t *testing.T) {
	recs := testRecords(4)
	dir := writeJournal(t, recs)
	path := filepath.Join(dir, JournalFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: offsets at which a prefix holds exactly k records.
	ends := []int{0}
	off := 0
	for off < len(full) {
		n := int(binary.LittleEndian.Uint32(full[off : off+4]))
		off += 8 + n
		ends = append(ends, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Load(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		complete := 0
		for _, e := range ends {
			if cut >= e && e > 0 {
				complete++
			}
		}
		if len(st.Records) != complete {
			t.Fatalf("cut=%d: loaded %d records, want %d", cut, len(st.Records), complete)
		}
		torn := cut != ends[complete]
		if torn && len(st.Diagnostics) == 0 {
			t.Fatalf("cut=%d: torn tail produced no diagnostic", cut)
		}
		if !torn && hasJournalDiag(st.Diagnostics) {
			t.Fatalf("cut=%d: clean prefix produced a journal diagnostic: %v", cut, st.Diagnostics)
		}
	}
}

// hasJournalDiag reports whether any diagnostic concerns the journal
// (as opposed to the snapshot, which torn-journal prefixes legitimately
// outrun).
func hasJournalDiag(diags []string) bool {
	for _, d := range diags {
		if strings.Contains(d, "journal") && !strings.Contains(d, "resuming from the journal") {
			return true
		}
	}
	return false
}

func TestJournalCorruptChecksum(t *testing.T) {
	recs := testRecords(3)
	dir := writeJournal(t, recs)
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	n0 := int(binary.LittleEndian.Uint32(data[0:4]))
	data[8+n0+8+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 1 {
		t.Fatalf("loaded %d records past a corrupt frame, want 1", len(st.Records))
	}
	if !hasJournalDiag(st.Diagnostics) {
		t.Fatalf("corrupt checksum produced no diagnostic: %v", st.Diagnostics)
	}
}

func TestJournalImplausibleLength(t *testing.T) {
	dir := writeJournal(t, testRecords(2))
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 8)
	binary.LittleEndian.PutUint32(garbage[0:4], 1<<31) // > maxFrame
	if err := os.WriteFile(path, append(data, garbage...), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 2 || !hasJournalDiag(st.Diagnostics) {
		t.Fatalf("garbage tail: %d records, diags %v", len(st.Records), st.Diagnostics)
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	dir := writeJournal(t, testRecords(1))
	if _, err := Create(dir, testMeta()); err == nil {
		t.Fatal("Create accepted a directory that already holds a journal")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("refusal does not point at -resume: %v", err)
	}
}

func TestMetaCheckMismatches(t *testing.T) {
	base := testMeta()
	for _, tc := range []struct {
		mutate func(*Meta)
		want   string
	}{
		{func(m *Meta) { m.Target = "rbtree" }, "target"},
		{func(m *Meta) { m.Ops = 1 }, "-ops"},
		{func(m *Meta) { m.Seed = 7 }, "-seed"},
		{func(m *Meta) { m.StackMode = true }, "stack-mode"},
		{func(m *Meta) { m.StoreGranularity = true }, "store-granularity"},
		{func(m *Meta) { m.EADR = true }, "eadr"},
	} {
		run := base
		tc.mutate(&run)
		err := base.Check(run)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Check(%+v) = %v, want mention of %q", run, err, tc.want)
		}
	}
	if err := base.Check(base); err != nil {
		t.Errorf("Check rejected an identical campaign: %v", err)
	}
}

// TestReopenAppendsAfterTornTail: resume after a torn tail must
// truncate the tear away so new frames follow the last intact record.
func TestReopenAppendsAfterTornTail(t *testing.T) {
	recs := testRecords(3)
	dir := writeJournal(t, recs)
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 2 {
		t.Fatalf("loaded %d records from torn journal, want 2", len(st.Records))
	}
	j, err := st.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{LeafID: 9, LeafICount: 999, Injected: true}
	if err := j.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Diagnostics) != 0 {
		t.Fatalf("journal still damaged after reopen+append: %v", st2.Diagnostics)
	}
	want := append(recs[:2], extra)
	if len(st2.Records) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(st2.Records), len(want))
	}
	for i := range want {
		if st2.Records[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, st2.Records[i], want[i])
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Consumed: 3,
		Tree:     []byte("tree-bytes"),
		Cache: []CacheEntry{
			{Hash: 1, Size: 64, Verdict: 2, HasErr: true, ErrMsg: "boom",
				BoundsMaxEvents: 10, BoundsTimeout: time.Second},
		},
		Report:   []byte("report-bytes"),
		Counters: Counters{Injections: 3, Recoveries: 3},
	}
	if err := j.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is ahead of the (empty) journal: its progress mark is
	// distrusted with a diagnostic, but the cache entries survive.
	if len(st.Cache) != 1 || st.Cache[0].ErrMsg != "boom" {
		t.Fatalf("cache entries did not round-trip: %+v", st.Cache)
	}
	if len(st.Diagnostics) == 0 {
		t.Fatal("snapshot ahead of the journal produced no diagnostic")
	}
}

// TestSnapshotDamageTolerated: a torn or corrupt snapshot never blocks
// resume — the journal alone is authoritative.
func TestSnapshotDamageTolerated(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("\x00\xff not a gob stream"), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			recs := testRecords(2)
			dir := writeJournal(t, recs)
			st0, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			j, err := st0.Reopen()
			if err != nil {
				t.Fatal(err)
			}
			if err := j.WriteSnapshot(Snapshot{Consumed: 2}); err != nil {
				t.Fatal(err)
			}
			j.Close()
			if err := corrupt(filepath.Join(dir, SnapshotFile)); err != nil {
				t.Fatal(err)
			}
			st, err := Load(dir)
			if err != nil {
				t.Fatalf("damaged snapshot made Load fail: %v", err)
			}
			if len(st.Records) != len(recs) {
				t.Fatalf("loaded %d records, want %d", len(st.Records), len(recs))
			}
			if len(st.Diagnostics) == 0 {
				t.Fatal("damaged snapshot produced no diagnostic")
			}
			if st.SnapshotConsumed != 0 || len(st.Cache) != 0 {
				t.Fatalf("damaged snapshot leaked state: consumed=%d cache=%d",
					st.SnapshotConsumed, len(st.Cache))
			}
		})
	}
}

func TestLoadMissingMeta(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("Load accepted a directory without a campaign journal")
	}
}

func TestLoadCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, MetaFile), []byte("\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a corrupt meta file")
	}
}

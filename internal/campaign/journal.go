package campaign

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Journal directory layout. The names are exported so tests (and the
// sharded campaign service) can inspect or perturb the files directly.
const (
	// MetaFile holds the gob-encoded campaign Meta, written atomically
	// once at creation.
	MetaFile = "meta.gob"
	// JournalFile is the append-only record log: one length-prefixed,
	// CRC-checksummed, fsync'd frame per consumed failure point.
	JournalFile = "journal.log"
	// SnapshotFile holds the latest atomic Snapshot (temp+rename).
	SnapshotFile = "snapshot.gob"
)

// maxFrame bounds one journal frame; anything larger is treated as a
// corrupt length prefix rather than a 4 GiB allocation.
const maxFrame = 16 << 20

// Journal is an open, appendable campaign journal. Append and
// WriteSnapshot are called only from the campaign's single merge
// goroutine; the type needs no internal locking.
type Journal struct {
	dir  string
	meta Meta
	f    *os.File
}

// Create initialises a fresh campaign journal in dir, writing the
// campaign identity atomically. It refuses a directory that already
// holds journaled verdicts: appending a different campaign's records
// after an existing prefix would corrupt both, so the caller must
// either resume (Load + Reopen) or pick a fresh directory.
func Create(dir string, meta Meta) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating journal directory: %w", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, JournalFile)); err == nil && fi.Size() > 0 {
		return nil, fmt.Errorf("campaign: %s already holds a campaign journal; resume it with -resume or choose a fresh directory", dir)
	}
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(&meta); err != nil {
		return nil, fmt.Errorf("campaign: encoding journal meta: %w", err)
	}
	if err := writeAtomic(dir, MetaFile, mb.Bytes()); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: creating journal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{dir: dir, meta: meta, f: f}, nil
}

// Meta returns the campaign identity the journal was created with.
func (j *Journal) Meta() Meta { return j.meta }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably appends one verdict record: the frame (length, CRC,
// gob payload) is written in a single write and fsync'd before Append
// returns, so a record the merge loop has moved past survives any
// crash. A torn in-flight frame is detected and discarded on Load.
func (j *Journal) Append(rec Record) error {
	var pb bytes.Buffer
	if err := gob.NewEncoder(&pb).Encode(&rec); err != nil {
		return fmt.Errorf("campaign: encoding journal record: %w", err)
	}
	payload := pb.Bytes()
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("campaign: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: syncing journal: %w", err)
	}
	return nil
}

// WriteSnapshot atomically replaces the campaign snapshot: the new one
// is written to a temp file, fsync'd, renamed over the old one, and the
// directory is fsync'd. A crash at any byte leaves either the previous
// complete snapshot or the new complete one. The journal stamps the
// format version and the campaign identity itself.
func (j *Journal) WriteSnapshot(snap Snapshot) error {
	snap.Version = Version
	snap.Meta = j.meta
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&snap); err != nil {
		return fmt.Errorf("campaign: encoding snapshot: %w", err)
	}
	return writeAtomic(j.dir, SnapshotFile, b.Bytes())
}

// Close syncs and closes the journal file. The records are already
// durable (Append syncs each one); Close only releases the descriptor.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// State is a loaded campaign journal: the durable prefix a crashed or
// interrupted campaign left behind, ready to be folded into a resumed
// run (core.Config.Resume) and appended to (Reopen).
type State struct {
	// Dir is the journal directory.
	Dir string
	// Meta is the campaign identity the journal was created with.
	Meta Meta
	// Records is the loadable prefix of journaled verdicts, in the
	// deterministic merge order they were appended in.
	Records []Record
	// Cache holds the verdict-cache entries of the latest loadable
	// snapshot (oldest first), empty when no snapshot was usable.
	Cache []CacheEntry
	// SnapshotConsumed and Report echo the latest loadable snapshot's
	// progress mark and partial-report bytes (diagnostic; resume
	// correctness rests on Records alone).
	SnapshotConsumed int
	Report           []byte
	// Diagnostics lists recoverable damage found while loading (torn
	// journal tail, unreadable snapshot); each cost at most re-replaying
	// the affected leaves.
	Diagnostics []string

	// validLen is the byte offset past the last intact record; Reopen
	// truncates a torn tail back to it before appending.
	validLen int64
}

// Load reads the durable campaign state from dir. Torn or corrupt
// journal tails and unreadable snapshots are tolerated — the loadable
// prefix is returned and the damage reported in Diagnostics — but a
// missing or undecodable meta file is an error: without the campaign
// identity the records cannot be safely folded into anything.
func Load(dir string) (*State, error) {
	mb, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, fmt.Errorf("campaign: no campaign journal in %s (%v)", dir, err)
	}
	st := &State{Dir: dir}
	if err := gobDecode(mb, &st.Meta); err != nil {
		return nil, fmt.Errorf("campaign: corrupt journal meta in %s: %v", dir, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	payloads, ends, diag := readFrames(data)
	if diag != "" {
		st.Diagnostics = append(st.Diagnostics, diag)
	}
	for i, p := range payloads {
		var rec Record
		if err := gobDecode(p, &rec); err != nil {
			// The frame checksummed but its payload does not decode
			// (e.g. written by an incompatible build). Resume from the
			// records before it; everything after is unreachable anyway.
			st.Diagnostics = append(st.Diagnostics, fmt.Sprintf(
				"journal record %d does not decode (%v); resuming from the %d record(s) before it", i, err, i))
			break
		}
		st.Records = append(st.Records, rec)
		st.validLen = int64(ends[i])
	}
	st.loadSnapshot()
	return st, nil
}

// loadSnapshot folds the latest snapshot into the state when it is
// intact and belongs to this campaign; any damage becomes a diagnostic,
// never an error — resume correctness rests on the journal records, the
// snapshot only seeds the verdict cache and documents progress.
func (s *State) loadSnapshot() {
	data, err := os.ReadFile(filepath.Join(s.Dir, SnapshotFile))
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		s.Diagnostics = append(s.Diagnostics, fmt.Sprintf("snapshot unreadable (%v); resuming from the journal alone", err))
		return
	}
	var snap Snapshot
	if err := gobDecode(data, &snap); err != nil {
		s.Diagnostics = append(s.Diagnostics, fmt.Sprintf("snapshot corrupt (%v); resuming from the journal alone", err))
		return
	}
	if snap.Version != Version {
		s.Diagnostics = append(s.Diagnostics, fmt.Sprintf("snapshot format version %d (want %d); resuming from the journal alone", snap.Version, Version))
		return
	}
	if err := snap.Meta.Check(s.Meta); err != nil {
		s.Diagnostics = append(s.Diagnostics, fmt.Sprintf("snapshot belongs to a different campaign (%v); resuming from the journal alone", err))
		return
	}
	if snap.Consumed > len(s.Records) {
		// The snapshot is ahead of the (possibly torn) journal. Its
		// verdict-cache entries are still valid — verdicts are keyed by
		// image content and the target is deterministic — but its
		// progress mark is not.
		s.Diagnostics = append(s.Diagnostics, fmt.Sprintf(
			"snapshot covers %d verdicts but the journal holds %d; trusting the journal", snap.Consumed, len(s.Records)))
	}
	s.SnapshotConsumed = snap.Consumed
	s.Cache = snap.Cache
	s.Report = snap.Report
}

// Reopen opens the journal for appending the resumed campaign's
// verdicts after the loaded prefix. A torn tail (detected by Load) is
// truncated away first — it never held a complete record — so appended
// frames always follow the last intact one.
func (s *State) Reopen() (*Journal, error) {
	f, err := os.OpenFile(filepath.Join(s.Dir, JournalFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: reopening journal: %w", err)
	}
	if err := f.Truncate(s.validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(s.validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seeking journal end: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: syncing reopened journal: %w", err)
	}
	return &Journal{dir: s.Dir, meta: s.Meta, f: f}, nil
}

// readFrames walks the framed journal bytes, returning every intact
// payload, the byte offset past each (for tail truncation), and a
// diagnostic when a torn or corrupt tail stopped the walk early.
func readFrames(data []byte) (payloads [][]byte, ends []int, diag string) {
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return payloads, ends, fmt.Sprintf("journal ends in a torn %d-byte frame header at offset %d; discarding it", len(data)-off, off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n <= 0 || n > maxFrame {
			return payloads, ends, fmt.Sprintf("journal frame at offset %d has an implausible length %d; discarding the tail", off, n)
		}
		if len(data)-off-8 < n {
			return payloads, ends, fmt.Sprintf("journal ends in a torn record at offset %d (%d of %d payload bytes); discarding it", off, len(data)-off-8, n)
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, ends, fmt.Sprintf("journal record at offset %d fails its checksum; discarding the tail", off)
		}
		payloads = append(payloads, payload)
		off += 8 + n
		ends = append(ends, off)
	}
	return payloads, ends, ""
}

// gobDecode decodes data into v, converting decoder panics on
// adversarially malformed input into errors.
func gobDecode(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// writeAtomic writes name under dir via temp file + fsync + rename +
// directory fsync: the named file either keeps its old complete
// contents or holds the new complete ones, never a torn blend.
func writeAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("campaign: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("campaign: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("campaign: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("campaign: publishing %s: %w", name, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so a just-renamed or just-created entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("campaign: opening %s for sync: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("campaign: syncing %s: %w", dir, err)
	}
	return nil
}

// Package campaign makes fault-injection campaigns crash-safe: it
// persists an append-only, checksummed, fsync'd journal of per-leaf
// replay verdicts plus periodic atomic snapshots of campaign state, so
// a campaign killed at any byte — SIGKILL, OOM, reboot, budget expiry —
// resumes from a loadable prefix instead of starting over.
//
// The durability argument mirrors the tool's own subject matter:
//
//   - The journal is append-only and every record is length-prefixed
//     and CRC-checksummed; each append is fsync'd before the campaign
//     merge loop moves on. A crash mid-append leaves a torn tail that
//     the loader detects and discards — everything before it is intact,
//     and a lost tail record only costs re-replaying that one leaf.
//   - Snapshots (frozen failure-point tree with claim marks, image-
//     cache verdict entries, the partial report, counters) are written
//     to a temp file, fsync'd, and renamed over the previous snapshot;
//     the directory is fsync'd after the rename. A crash leaves either
//     the old complete snapshot or the new complete one, never a blend.
//   - Campaign identity (target, workload, injection mode) is written
//     once at creation, atomically; resume refuses a journal recorded
//     under different parameters with a one-line diagnostic.
//
// Correctness of resume rests on the determinism the rest of the
// pipeline already guarantees: the campaign merge loop consumes leaves
// strictly in first-occurrence order, so the journal is always a
// prefix of the deterministic campaign. A resumed run re-executes the
// (deterministic) instrumented phase, folds the journaled verdicts
// through the same merge step, and replays only the remainder — the
// final report is byte-identical to an uninterrupted run. This journal
// is also the substrate the sharded campaign service will merge.
package campaign

import (
	"fmt"
	"time"
)

// Version is the on-disk format version stamped into snapshots.
const Version = 1

// Meta identifies the campaign a journal belongs to. Resume validates
// it field by field: a journal records verdicts for one (target,
// workload, injection-mode) tuple, and folding it into a different
// campaign would silently corrupt the report.
type Meta struct {
	// Target is the application-under-test registry name.
	Target string
	// Ops and Seed pin the deterministic workload.
	Ops  int
	Seed int64
	// StackMode, StoreGranularity and EADR pin the injection mode: they
	// change the failure-point tree or the analysis domain.
	StackMode        bool
	StoreGranularity bool
	EADR             bool
}

// Check reports a one-line diagnostic when the journal's identity does
// not match the campaign about to resume it.
func (m Meta) Check(run Meta) error {
	switch {
	case m.Target != run.Target:
		return fmt.Errorf("journal was recorded for target %q, not %q", m.Target, run.Target)
	case m.Ops != run.Ops:
		return fmt.Errorf("journal was recorded with -ops %d, not %d", m.Ops, run.Ops)
	case m.Seed != run.Seed:
		return fmt.Errorf("journal was recorded with -seed %d, not %d", m.Seed, run.Seed)
	case m.StackMode != run.StackMode:
		return fmt.Errorf("journal was recorded with stack-mode=%v, not %v", m.StackMode, run.StackMode)
	case m.StoreGranularity != run.StoreGranularity:
		return fmt.Errorf("journal was recorded with store-granularity=%v, not %v", m.StoreGranularity, run.StoreGranularity)
	case m.EADR != run.EADR:
		return fmt.Errorf("journal was recorded with eadr=%v, not %v", m.EADR, run.EADR)
	}
	return nil
}

// Record is one durable per-leaf verdict: everything the deterministic
// merge step needs to fold the leaf's outcome into the report and the
// campaign counters without re-executing the replay. Leaves are keyed
// by their first-occurrence instruction counter — stable across
// processes for a deterministic target, unlike program counters.
type Record struct {
	// LeafID and LeafICount identify the failure point; LeafICount is
	// the cross-process key (the rebuilt tree's leaf with the same
	// first-occurrence counter), LeafID is diagnostic.
	LeafID     int
	LeafICount uint64
	// Events is the number of engine instruction events the replay
	// spent (all attempts); Retries the extra attempts after transient
	// skips.
	Events  uint64
	Retries int
	// Injected/Restored/Recovered/RecoveryHung mirror the replay
	// outcome flags the campaign counters are built from.
	Injected     bool
	Restored     bool
	Recovered    bool
	RecoveryHung bool
	// TargetPanic/TargetHang mark replays the sandbox stopped.
	TargetPanic bool
	TargetHang  bool
	// CacheHit/CacheMiss record the verdict-cache consultation.
	CacheHit  bool
	CacheMiss bool
	// Inherited marks a failure point that never replayed: it inherited
	// the memoised verdict of its crash-image equivalence class's
	// representative (phase-1 classing). ReplayElided marks a class
	// representative whose replay was skipped because its stamped image
	// key was already in the verdict cache; PersistentHit narrows that
	// to keys seeded from a cross-run verdict-cache file.
	Inherited     bool
	ReplayElided  bool
	PersistentHit bool
	// SkipReason is non-empty when the leaf was consumed without an
	// injection and quarantined after bounded retries.
	SkipReason string
	// ImageHash is the crash image's content hash when one was
	// produced (diagnostic; dedup across shards).
	ImageHash uint64
	// HasFinding marks a resulting finding; the finding's call stack is
	// re-derived from the matched leaf on resume (program counters are
	// process-local, the leaf's stack is not).
	HasFinding    bool
	FindingKind   uint8
	FindingICount uint64
	FindingAddr   uint64
	FindingDetail string
}

// CacheEntry is one exported crash-image verdict-cache entry: the image
// identity plus a flattened oracle outcome that renders byte-identically
// to the live one (Describe and the panic-trace tail are string-for-
// string what the original produced).
type CacheEntry struct {
	Hash uint64
	Size int

	Verdict    uint8
	ErrMsg     string
	HasErr     bool
	PanicValue string
	HasPanic   bool
	PanicTrace string

	HasHang      bool
	HangICount   uint64
	HangBudget   uint64
	HangDeadline bool

	BoundsMaxEvents uint64
	BoundsTimeout   time.Duration
}

// Counters is the snapshot of campaign progress counters, a diagnostic
// companion to the journaled records.
type Counters struct {
	Injections   int
	Recoveries   int
	Skipped      int
	Quarantined  int
	Retried      int
	EngineEvents uint64
}

// Snapshot is the periodically persisted campaign state: the frozen
// failure point tree with journal-replay claim marks, the verdict
// cache, the partial report and the progress counters, all covering the
// first Consumed journal records.
type Snapshot struct {
	Version  int
	Meta     Meta
	Consumed int
	// Tree is the fpt.Encode serialisation of the frozen tree with the
	// consumed leaves claimed.
	Tree []byte
	// Cache holds the verdict-cache entries in least-recently-used
	// order (oldest first), so seeding a fresh cache preserves recency
	// and therefore eviction behaviour.
	Cache []CacheEntry
	// Report is the report.EncodeWire serialisation of the partial
	// report at snapshot time (phase-2 findings and quarantined leaves).
	Report   []byte
	Counters Counters
}

// Package yat reimplements Yat (Lantz et al., ATC'14): record all PM
// operations, then replay them in every permissible persist ordering,
// checking each resulting state with the application's recovery
// procedure. At every fence, each racing write-back (and each store
// evictable from the cache) may or may not have reached the medium, so
// the tool enumerates all 2^k subsets per epoch — the exhaustive search
// whose projected runtime on real programs is measured in years, which
// is why Analyze is only practical for small workloads and is used by
// the ablation benches (§3, §4.1).
package yat

import (
	"fmt"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// Tool is the Yat reimplementation.
type Tool struct {
	// MaxUnits caps the racing write-backs enumerated per crash point;
	// epochs with more are truncated to the first MaxUnits (default
	// 10, i.e. at most 1024 images per crash point).
	MaxUnits int
}

// New constructs the tool.
func New() *Tool { return &Tool{MaxUnits: 10} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "Yat" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}

	rec := trace.NewRecorder()
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, rec)
	if err != nil || sig != nil {
		return nil, err
	}
	res.EngineEvents += eng.Events()
	base := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()}).MediumSnapshot()

	maxUnits := t.MaxUnits
	if maxUnits <= 0 {
		maxUnits = 10
	}
	tr := &rec.T
	cursor := trace.NewCursor(tr, base)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Op.Kind() == pmem.KindFence {
			// Crash point just before the fence: enumerate every
			// subset of the racing write-backs and evictable stores.
			uncertain := cursor.Uncertain()
			n := len(uncertain)
			if n > maxUnits {
				n = maxUnits
			}
			for mask := uint64(0); mask < 1<<uint(n); mask++ {
				if !deadline.IsZero() && time.Now().After(deadline) {
					res.TimedOut = true
					break
				}
				img := cursor.Materialize(uncertain, func(j int) bool {
					return j < n && mask&(1<<uint(j)) != 0
				})
				res.Explored++
				if out := oracle.Check(app, img); !out.Consistent() {
					res.Report.Add(report.Finding{
						Kind:   report.CrashConsistency,
						ICount: r.ICount,
						Detail: fmt.Sprintf("persist ordering %b of %d racing write-backs is unrecoverable: %s",
							mask, len(uncertain), out.Describe()),
					})
				}
			}
		}
		if res.TimedOut {
			break
		}
		cursor.Step()
	}
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	return res, nil
}

var _ tools.Tool = (*Tool)(nil)

// Package witcher reimplements Witcher (Fu et al., SOSP'21): systematic
// crash-consistency testing for PM key-value stores. From one traced
// execution it infers likely ordering/atomicity invariants (one per
// unique operation-kind x persist-point x racing-write-back triple),
// generates PM crash images that violate them — images that do NOT
// respect program order, the space Mumak deliberately skips — and
// applies output-equivalence checking: the recovered store must answer
// reads like the pre-crash or post-crash oracle state.
//
// The cost and ergonomics profile follows the original (§6.1, Table 3):
// it needs a key-value driver (it cannot run arbitrary targets), it
// pre-generates batches of full-pool crash images and fans them out
// across all cores, which is what exhausted 256 GB of memory on the
// 150 k-op workloads, and it reports every violating image without
// duplicate filtering.
package witcher

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// ErrNeedsKV marks a target without the key-value driver Witcher needs.
var ErrNeedsKV = errors.New("witcher: target does not implement the key-value driver interface")

// Tool is the Witcher reimplementation.
type Tool struct{}

// New constructs the tool.
func New() *Tool { return &Tool{} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "Witcher" }

// candidate is one crash image to test: a fence position and the single
// racing write-back unit to drop (or keep exclusively).
type candidate struct {
	fenceRec int
	unitIdx  int
	keepOnly bool
	opIdx    int
}

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	kvApp, ok := app.(harness.KVApplication)
	if !ok {
		return nil, ErrNeedsKV
	}
	run := metrics.Start()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}
	rep := res.Report
	var mu sync.Mutex

	// Phase 1: drive the workload through the KV driver, tracing PM
	// accesses and the record range of every operation.
	eng := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()})
	rec := trace.NewRecorder()
	eng.AttachHook(rec)
	if err := app.Setup(eng); err != nil {
		return nil, err
	}
	base := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()}).MediumSnapshot()
	kv, err := kvApp.Open(eng)
	if err != nil {
		return nil, err
	}
	opStart := make([]int, len(w.Ops)+1)
	models := make([]map[uint64]uint64, len(w.Ops)+1)
	model := map[uint64]uint64{}
	models[0] = cloneModel(model)
	for i, op := range w.Ops {
		opStart[i] = rec.T.Len()
		switch op.Kind {
		case workload.Put:
			err = kv.Put(op.Key, op.Val)
			model[op.Key] = op.Val
		case workload.Get:
			_, _, err = kv.Get(op.Key)
		case workload.Delete:
			err = kv.Delete(op.Key)
			delete(model, op.Key)
		}
		if err != nil {
			return nil, fmt.Errorf("witcher: driver op %d: %w", i, err)
		}
		models[i+1] = cloneModel(model)
	}
	opStart[len(w.Ops)] = rec.T.Len()
	res.EngineEvents += eng.Events()

	// Phase 2: infer likely invariants. Every unique (operation kind,
	// persist point within the operation, racing unit index) triple
	// yields one candidate crash image violating it.
	tr := &rec.T
	cursor := trace.NewCursor(tr, base)
	seen := map[[3]int]bool{}
	var candidates []candidate
	opIdx := 0
	fenceInOp := 0
	for i := range tr.Records {
		for opIdx < len(w.Ops)-1 && i >= opStart[opIdx+1] {
			opIdx++
			fenceInOp = 0
		}
		r := &tr.Records[i]
		if r.Op.Kind() != pmem.KindFence {
			continue
		}
		fenceInOp++
		cursor.SeekTo(i)
		uncertain := cursor.Uncertain()
		if len(uncertain) < 2 {
			continue
		}
		kind := int(w.Ops[opIdx].Kind)
		for u := range uncertain {
			key := [3]int{kind*1000 + fenceInOp, u, 0}
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, candidate{fenceRec: i, unitIdx: u, opIdx: opIdx})
			}
			key[2] = 1
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, candidate{fenceRec: i, unitIdx: u, keepOnly: true, opIdx: opIdx})
			}
		}
	}

	// Phase 3: pre-generate the crash images in batches and check them
	// in parallel with output equivalence — the memory-hungry fan-out.
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var imgBytes atomic.Uint64
	var busy atomic.Int64
	batch := make([]*pmem.Image, len(candidates))
	genCursor := trace.NewCursor(tr, base)
	lastPos := 0
	for ci, c := range candidates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		if c.fenceRec < lastPos {
			genCursor = trace.NewCursor(tr, base)
			lastPos = 0
		}
		genCursor.SeekTo(c.fenceRec)
		lastPos = c.fenceRec
		uncertain := genCursor.Uncertain()
		if c.unitIdx >= len(uncertain) {
			continue
		}
		img := genCursor.Materialize(uncertain, func(i int) bool {
			if c.keepOnly {
				return i == c.unitIdx
			}
			return i != c.unitIdx
		})
		imgBytes.Add(uint64(img.Len()))
		if cfg.MemBudget > 0 && imgBytes.Load() > cfg.MemBudget {
			res.OOM = true
			break
		}
		batch[ci] = img
	}

	if !res.OOM && !res.TimedOut {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for ci := range batch {
			img := batch[ci]
			if img == nil {
				continue
			}
			c := candidates[ci]
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				defer func() { busy.Add(int64(time.Since(t0))) }()
				finding, bad := t.check(kvApp, img, models[c.opIdx], models[c.opIdx+1], tr.Records[c.fenceRec].ICount)
				if bad {
					mu.Lock()
					rep.Add(finding)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	res.Explored = len(candidates)
	run.AddBusy(time.Duration(busy.Load()) + time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	return res, nil
}

// check runs recovery and output-equivalence on one crash image: the
// recovered store must match the oracle state before or after the
// interrupted operation.
func (t *Tool) check(app harness.KVApplication, img *pmem.Image, pre, post map[uint64]uint64, icount uint64) (report.Finding, bool) {
	out := oracle.Check(app, img)
	if !out.Consistent() {
		return report.Finding{
			Kind:   report.CrashConsistency,
			ICount: icount,
			Detail: "crash image violating a likely invariant is unrecoverable: " + out.Describe(),
		}, true
	}
	kv, err := app.Open(out.Engine)
	if err != nil {
		// An unopenable pool is acceptable only when an empty store is
		// an acceptable oracle state (a crash during initialisation).
		if len(pre) == 0 || len(post) == 0 {
			return report.Finding{}, false
		}
		return report.Finding{Kind: report.CrashConsistency, ICount: icount,
			Detail: "recovered store cannot be reopened: " + err.Error()}, true
	}
	matches := func(m map[uint64]uint64) bool {
		for k, v := range m {
			got, ok, err := kv.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		return true
	}
	if matches(pre) || matches(post) {
		return report.Finding{}, false
	}
	return report.Finding{
		Kind:   report.CrashConsistency,
		ICount: icount,
		Detail: "output divergence: the recovered store matches neither the pre- nor post-operation oracle state",
	}, true
}

func cloneModel(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

var _ tools.Tool = (*Tool)(nil)

package tools_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/bugs"
	"mumak/internal/core"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/tools/pmdebugger"
	"mumak/internal/tools/xfdetector"
	"mumak/internal/workload"
)

// The Table 3 ergonomics rows, demonstrated by behaviour rather than
// asserted as data: Mumak reports unique bugs with complete paths, the
// baselines report duplicates and/or lack paths.

func TestErgonomicsMumakDeduplicatesXFDetectorDoesNot(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugPublishBeforeInit)}
	w := workload.Generate(workload.Config{N: 60, Seed: 21, Keyspace: 16, PutFrac: 1})

	mres, err := core.Analyze(hashatomic.New(cfg), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	xres, err := xfdetector.New().Analyze(hashatomic.New(cfg), w, tools.Config{})
	if err != nil {
		t.Fatal(err)
	}

	mumakUnique := len(mres.Report.Bugs())
	xfRaw := len(xres.Report.Findings)
	if mumakUnique == 0 {
		t.Fatal("Mumak missed the bug entirely")
	}
	// The same defect fires on many puts; XFDetector reports each
	// occurrence, Mumak collapses them to unique code paths.
	if xfRaw <= mumakUnique {
		t.Fatalf("expected duplicate-rich XFDetector output: %d raw vs Mumak's %d unique",
			xfRaw, mumakUnique)
	}
}

func TestErgonomicsMumakReportsCompletePaths(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugPublishBeforeInit)}
	w := workload.Generate(workload.Config{N: 60, Seed: 22, Keyspace: 16, PutFrac: 1})
	res, err := core.Analyze(hashatomic.New(cfg), w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Report.Bugs() {
		if f.Kind != report.CrashConsistency {
			continue
		}
		if f.Stack == stack.NoID || len(res.Report.Stacks.Frames(f.Stack)) < 2 {
			t.Fatalf("Mumak finding lacks a complete bug path: %+v", f)
		}
	}
}

func TestErgonomicsPMDebuggerReportsAllOccurrences(t *testing.T) {
	// PMDebugger reports every occurrence of every bug (Table 3): the
	// transient counter is stored once per put, and each store becomes
	// its own durability finding.
	cfg := apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable("btree/pf-03")}
	w := workload.Generate(workload.Config{N: 80, Seed: 23, Keyspace: 20, PutFrac: 1})
	app, err := apps.New("btree", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pmdebugger.New().Analyze(app, w, tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range res.Report.Findings {
		if f.Kind == report.Durability {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("PMDebugger reported %d occurrences; expected one per operation", n)
	}
}

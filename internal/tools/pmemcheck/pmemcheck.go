// Package pmemcheck reimplements pmemcheck, the Valgrind tool shipped
// with PMDK (§3): a single-pass checker driven by the library's own
// annotations. The PM library is extensively annotated (our pmdk
// emits the same DO_PERSIST-style annotations) and the tool verifies
// that every store becomes durable under some annotated persist,
// reporting leftover stores as durability problems without
// distinguishing transient data (the ✓† of Table 1), plus redundant
// flushes. It has no notion of atomicity or ordering beyond what the
// annotations assert.
package pmemcheck

import (
	"errors"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/workload"
)

// ErrNoAnnotations marks a target whose library emits no annotations.
var ErrNoAnnotations = errors.New("pmemcheck: target library emits no annotations")

// Tool is the pmemcheck reimplementation.
type Tool struct{}

// New constructs the tool.
func New() *Tool { return &Tool{} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "pmemcheck" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	start := time.Now()
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}
	hook := &checker{rep: res.Report, lines: map[uint64]*lineState{}}
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, hook)
	if err != nil || sig != nil {
		return nil, err
	}
	res.EngineEvents = eng.Events()
	res.Explored = int(eng.Events())
	hook.finish()
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	if hook.annotations == 0 {
		return res, ErrNoAnnotations
	}
	return res, nil
}

type lineState struct {
	dirty   uint64
	icount  uint64
	flushed bool
}

// checker tracks per-line durability against annotations and flushes.
type checker struct {
	rep         *report.Report
	lines       map[uint64]*lineState
	annotations int
	ntPending   int
}

func (c *checker) line(addr uint64) *lineState {
	base := addr &^ (pmem.CacheLineSize - 1)
	st := c.lines[base]
	if st == nil {
		st = &lineState{}
		c.lines[base] = st
	}
	return st
}

// OnEvent implements pmem.Hook.
func (c *checker) OnEvent(ev *pmem.Event) {
	switch ev.Op.Kind() {
	case pmem.KindStore:
		if ev.Op == pmem.OpNTStore {
			c.ntPending++
			return
		}
		addr, remain := ev.Addr, uint64(ev.Size)
		for remain > 0 {
			base := addr &^ (pmem.CacheLineSize - 1)
			st := c.line(base)
			off := addr - base
			n := pmem.CacheLineSize - off
			if n > remain {
				n = remain
			}
			for b := uint64(0); b < n; b++ {
				st.dirty |= 1 << (off + b)
			}
			st.icount = ev.ICount
			st.flushed = false
			addr += n
			remain -= n
		}
	case pmem.KindFlush:
		st := c.line(ev.Addr)
		if st.flushed && st.dirty == 0 {
			c.rep.Add(report.Finding{
				Kind:   report.RedundantFlush,
				ICount: ev.ICount,
				Addr:   ev.Addr,
				Detail: "pmemcheck: flush of already-clean line",
			})
		}
		st.dirty = 0
		st.flushed = true
	case pmem.KindFence:
		c.ntPending = 0
	}
}

// OnAnnotation implements pmem.AnnotationObserver: DO_PERSIST-style
// annotations clear durability tracking for the covered range.
func (c *checker) OnAnnotation(a *pmem.Annotation) {
	c.annotations++
	if a.Kind != pmem.AnnPersist {
		return
	}
	first := a.Addr &^ (pmem.CacheLineSize - 1)
	last := (a.Addr + uint64(a.Size) - 1) &^ (pmem.CacheLineSize - 1)
	for base := first; base <= last; base += pmem.CacheLineSize {
		if st := c.lines[base]; st != nil {
			st.dirty = 0
		}
	}
}

// finish reports leftover stores. pmemcheck does not distinguish
// transient data from forgotten persists (✓† in Table 1) and reports
// every occurrence.
func (c *checker) finish() {
	for base, st := range c.lines {
		if st.dirty != 0 {
			c.rep.Add(report.Finding{
				Kind:   report.Durability,
				ICount: st.icount,
				Addr:   base,
				Detail: "pmemcheck: store not made persistent (possibly transient data)",
			})
		}
	}
}

var _ tools.Tool = (*Tool)(nil)
var _ pmem.AnnotationObserver = (*checker)(nil)

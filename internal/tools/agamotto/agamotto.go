// Package agamotto reimplements Agamotto (Neal et al., OSDI'20):
// symbolic-execution-style state-space exploration with universal bug
// oracles. The tool generates its own operation sequences (it cannot run
// a user-provided workload, Table 3), explores states in an order that
// prioritises paths with many PM accesses — the heuristic that lets it
// find a significant portion of bugs early — and applies two universal
// oracles (unpersisted data, redundant flushes/fences) plus a PMDK
// transaction oracle fed by undo-log annotations.
//
// Every frontier state retains a full copy of the simulated pool, the
// analogue of a KLEE state, which is where the 3.8-5.8x memory overhead
// of Table 2 comes from. Exploration is exhaustive in the limit and is
// in practice bounded by the wall-clock budget, like the original's
// 12-hour runs.
package agamotto

import (
	"container/heap"
	"errors"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/workload"
)

// ErrNeedsKV marks a target that does not expose the key-value driver
// interface the exploration alphabet is built from.
var ErrNeedsKV = errors.New("agamotto: target does not expose an explorable operation alphabet")

// Tool is the Agamotto reimplementation.
type Tool struct {
	// Alphabet is the number of distinct keys in the generated
	// operation alphabet (default 3).
	Alphabet int
	// MaxDepth bounds the explored operation sequences (default 4, the
	// artifact's configuration; raising it grows the state space
	// exponentially).
	MaxDepth int
	// MaxStates caps the live frontier, KLEE-style: when full, the
	// lowest-priority state is pruned rather than exhausting memory.
	MaxStates int
}

// New constructs the tool with default exploration parameters.
func New() *Tool { return &Tool{Alphabet: 3, MaxDepth: 4, MaxStates: 64} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "Agamotto" }

// state is one node of the exploration tree.
type state struct {
	img   *pmem.Image
	depth int
	// score prioritises PM-access-heavy paths.
	score uint64
	// unpersisted carries the set of store addresses (8-byte grains)
	// written but not yet durable along this path.
	unpersisted map[uint64]uint64 // grain -> icount of the store
	// lineClean carries per-line write-back state along the path for
	// the redundant-flush oracle.
	lineClean map[uint64]bool
	seq       string
}

// stateQueue is a max-heap on score.
type stateQueue []*state

func (q stateQueue) Len() int           { return len(q) }
func (q stateQueue) Less(i, j int) bool { return q[i].score > q[j].score }
func (q stateQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *stateQueue) Push(x any)        { *q = append(*q, x.(*state)) }
func (q *stateQueue) Pop() any          { old := *q; n := len(old); s := old[n-1]; *q = old[:n-1]; return s }

// Analyze implements tools.Tool. The workload argument is ignored:
// Agamotto drives the target itself.
func (t *Tool) Analyze(app harness.Application, _ workload.Workload, cfg tools.Config) (*tools.Result, error) {
	kvApp, ok := app.(harness.KVApplication)
	if !ok {
		return nil, ErrNeedsKV
	}
	run := metrics.Start()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}

	// Root state: the freshly set-up pool.
	rootEng := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()})
	if err := app.Setup(rootEng); err != nil {
		return nil, err
	}
	res.EngineEvents += rootEng.Events()
	queue := &stateQueue{{img: rootEng.PrefixImage(), unpersisted: map[uint64]uint64{}, lineClean: map[uint64]bool{}}}
	heap.Init(queue)

	alphabet := t.Alphabet
	if alphabet <= 0 {
		alphabet = 3
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 4
	}
	maxStates := t.MaxStates
	if maxStates <= 0 {
		maxStates = 64
	}
	if cfg.MemBudget > 0 {
		// Respect the memory budget by shrinking the frontier: each
		// live state retains a full pool image.
		if cap := int(cfg.MemBudget / uint64(app.PoolSize()) / 2); cap > 0 && cap < maxStates {
			maxStates = cap
		}
	}
	for queue.Len() > 0 {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		cur := heap.Pop(queue).(*state)
		if cur.depth >= maxDepth {
			continue
		}
		for _, op := range t.ops(alphabet) {
			next, err := t.expand(kvApp, cur, op, res)
			if err != nil {
				continue
			}
			heap.Push(queue, next)
			if queue.Len() > maxStates {
				// Prune the lowest-priority state (KLEE state cap):
				// the heap keeps high scores at the top, so scan for
				// the minimum.
				minIdx := 0
				for i := 1; i < queue.Len(); i++ {
					if (*queue)[i].score < (*queue)[minIdx].score {
						minIdx = i
					}
				}
				heap.Remove(queue, minIdx)
			}
		}
	}
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	return res, nil
}

// op is one alphabet operation.
type op struct {
	kind workload.Kind
	key  uint64
}

func (t *Tool) ops(alphabet int) []op {
	out := make([]op, 0, alphabet*2+1)
	for k := 0; k < alphabet; k++ {
		out = append(out, op{kind: workload.Put, key: uint64(k)})
	}
	for k := 0; k < alphabet; k++ {
		out = append(out, op{kind: workload.Delete, key: uint64(k)})
	}
	out = append(out, op{kind: workload.Get, key: 0})
	return out
}

// expand executes one operation from a state, applying the universal
// oracles to the instruction stream it produces.
func (t *Tool) expand(app harness.KVApplication, cur *state, o op, res *tools.Result) (*state, error) {
	eng := pmem.NewEngineFromImage(pmem.Options{}, cur.img)
	orc := &oracles{rep: res.Report, unpersisted: cloneMap(cur.unpersisted), lineClean: cloneBoolMap(cur.lineClean)}
	eng.AttachHook(orc)
	kv, err := app.Open(eng)
	if err != nil {
		return nil, err
	}
	switch o.kind {
	case workload.Put:
		err = kv.Put(o.key, o.key*1000+uint64(cur.depth))
	case workload.Get:
		_, _, err = kv.Get(o.key)
	case workload.Delete:
		err = kv.Delete(o.key)
	}
	res.EngineEvents += eng.Events()
	res.Explored++
	if err != nil {
		return nil, err
	}
	orc.finish()
	return &state{
		img:         eng.PrefixImage(),
		depth:       cur.depth + 1,
		score:       orc.pmAccesses,
		unpersisted: orc.unpersisted,
		lineClean:   orc.lineClean,
		seq:         cur.seq + o.kind.String(),
	}, nil
}

func cloneBoolMap(m map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneMap(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// oracles implements Agamotto's universal and PMDK-transaction oracles
// over one operation's instruction stream.
type oracles struct {
	rep         *report.Report
	unpersisted map[uint64]uint64
	pmAccesses  uint64
	flushesSF   int
	ntSF        int
	inTx        bool
	txRanges    [][2]uint64
	internal    [][2]uint64
	lineClean   map[uint64]bool
}

const grain = 8

// OnEvent implements pmem.Hook.
func (o *oracles) OnEvent(ev *pmem.Event) {
	o.pmAccesses++
	if o.lineClean == nil {
		o.lineClean = map[uint64]bool{}
	}
	switch ev.Op.Kind() {
	case pmem.KindStore:
		for g := ev.Addr / grain; g <= (ev.Addr+uint64(ev.Size)-1)/grain; g++ {
			o.unpersisted[g] = ev.ICount
		}
		last := (ev.Addr + uint64(ev.Size) - 1) &^ (pmem.CacheLineSize - 1)
		for base := ev.Addr &^ (pmem.CacheLineSize - 1); base <= last; base += pmem.CacheLineSize {
			o.lineClean[base] = false
		}
		if o.inTx && ev.Op != pmem.OpNTStore && !within(o.internal, ev.Addr, ev.Size) && !within(o.txRanges, ev.Addr, ev.Size) {
			// The PMDK transaction oracle (Table 1: atomicity for
			// PMDK TXs): a store inside a transaction to an unlogged
			// range can never roll back.
			o.rep.Add(report.Finding{
				Kind:   report.CrashConsistency,
				ICount: ev.ICount,
				Addr:   ev.Addr,
				Detail: "transactional store to a range never added to the undo log",
			})
		}
	case pmem.KindFlush:
		base := ev.Addr &^ (pmem.CacheLineSize - 1)
		if clean, seen := o.lineClean[base]; seen && clean {
			o.rep.Add(report.Finding{
				Kind:   report.RedundantFlush,
				ICount: ev.ICount,
				Addr:   ev.Addr,
				Detail: "universal oracle: flush of an unmodified line",
			})
		}
		for g := base / grain; g < (base+pmem.CacheLineSize)/grain; g++ {
			delete(o.unpersisted, g)
		}
		o.lineClean[base] = true
		if ev.Op != pmem.OpCLFlush {
			o.flushesSF++
		}
	case pmem.KindFence:
		if ev.Op != pmem.OpRMW && o.flushesSF == 0 && o.ntSF == 0 {
			o.rep.Add(report.Finding{
				Kind:   report.RedundantFence,
				ICount: ev.ICount,
				Detail: "universal oracle: fence with nothing to order",
			})
		}
		o.flushesSF, o.ntSF = 0, 0
	}
	if ev.Op == pmem.OpNTStore {
		o.ntSF++
		for g := ev.Addr / grain; g <= (ev.Addr+uint64(ev.Size)-1)/grain; g++ {
			delete(o.unpersisted, g)
		}
	}
}

// OnAnnotation implements pmem.AnnotationObserver.
func (o *oracles) OnAnnotation(a *pmem.Annotation) {
	switch a.Kind {
	case pmem.AnnTxBegin:
		o.inTx = true
		o.txRanges = o.txRanges[:0]
	case pmem.AnnTxAdd:
		o.txRanges = append(o.txRanges, [2]uint64{a.Addr, uint64(a.Size)})
	case pmem.AnnTxEnd:
		o.inTx = false
	case pmem.AnnNoDrain:
		o.internal = append(o.internal, [2]uint64{a.Addr, uint64(a.Size)})
	}
}

// finish applies the end-of-path durability oracle: data still
// unpersisted when the operation returns.
func (o *oracles) finish() {
	for g, ic := range o.unpersisted {
		o.rep.Add(report.Finding{
			Kind:   report.Durability,
			ICount: ic,
			Addr:   g * grain,
			Detail: "universal oracle: data not persisted at operation completion",
		})
		_ = g
		break // one representative per path keeps reports readable
	}
}

func within(ranges [][2]uint64, addr uint64, size int) bool {
	for _, r := range ranges {
		if addr >= r[0] && addr+uint64(size) <= r[0]+r[1] {
			return true
		}
	}
	return false
}

var _ tools.Tool = (*Tool)(nil)
var _ pmem.AnnotationObserver = (*oracles)(nil)

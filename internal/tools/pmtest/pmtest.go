// Package pmtest reimplements PMTest (Liu et al., ASPLOS'19): a fast,
// library-agnostic checker of assert-like persistency annotations. The
// programmer (or the library on their behalf) asserts that ranges are
// persistent at given points; PMTest records PM operations and verifies
// the assertions against them with a decoupled checking pass. Our PM
// libraries' AnnPersist annotations play the role of isPersist()
// assertions: the checker verifies that the asserted range really was
// flushed and fenced by the time of the assertion, catching library-
// or application-level persist lies. Targets without annotations
// cannot be tested — the ✓* of Table 1.
package pmtest

import (
	"errors"
	"fmt"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/workload"
)

// ErrNoAssertions marks a target with no persistency assertions.
var ErrNoAssertions = errors.New("pmtest: target carries no persistency assertions")

// Tool is the PMTest reimplementation.
type Tool struct{}

// New constructs the tool.
func New() *Tool { return &Tool{} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "PMTest" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	start := time.Now()
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}
	// Record phase (decoupled from checking, as in the original).
	hook := &recorder{}
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, hook)
	if err != nil || sig != nil {
		return nil, err
	}
	res.EngineEvents = eng.Events()
	// Replay-check phase.
	checkAssertions(hook, res.Report)
	res.Explored = len(hook.asserts)
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	if len(hook.asserts) == 0 {
		return res, ErrNoAssertions
	}
	return res, nil
}

// pmOp is one recorded operation.
type pmOp struct {
	kind pmem.Kind
	op   pmem.Opcode
	addr uint64
	size int
	ic   uint64
}

// assertion is one isPersist() check point.
type assertion struct {
	addr uint64
	size int
	ic   uint64
	// opIndex is the recorded-operation horizon at assertion time.
	opIndex int
}

// recorder captures PM operations and assertions for the decoupled
// checking pass.
type recorder struct {
	ops     []pmOp
	asserts []assertion
}

// OnEvent implements pmem.Hook.
func (r *recorder) OnEvent(ev *pmem.Event) {
	r.ops = append(r.ops, pmOp{kind: ev.Op.Kind(), op: ev.Op, addr: ev.Addr, size: ev.Size, ic: ev.ICount})
}

// OnAnnotation implements pmem.AnnotationObserver.
func (r *recorder) OnAnnotation(a *pmem.Annotation) {
	if a.Kind != pmem.AnnPersist {
		return
	}
	r.asserts = append(r.asserts, assertion{addr: a.Addr, size: a.Size, ic: a.ICount, opIndex: len(r.ops)})
}

// checkAssertions replays the operation log against every assertion:
// each cache line of the asserted range must have been flushed after its
// last store, and a fence must follow the flush, all before the
// assertion point.
func checkAssertions(r *recorder, rep *report.Report) {
	for _, a := range r.asserts {
		first := a.addr &^ (pmem.CacheLineSize - 1)
		last := (a.addr + uint64(a.size) - 1) &^ (pmem.CacheLineSize - 1)
		for base := first; base <= last; base += pmem.CacheLineSize {
			if ok, why := linePersisted(r.ops[:a.opIndex], base); !ok {
				rep.Add(report.Finding{
					Kind:   report.CrashConsistency,
					ICount: a.ic,
					Addr:   base,
					Detail: fmt.Sprintf("pmtest: isPersist assertion fails: %s", why),
				})
			}
		}
	}
}

// linePersisted walks the operation prefix backwards deciding whether
// the line's latest store is flushed and fenced.
func linePersisted(ops []pmOp, base uint64) (bool, string) {
	fenced := false
	for i := len(ops) - 1; i >= 0; i-- {
		op := &ops[i]
		switch op.kind {
		case pmem.KindFence:
			fenced = true
		case pmem.KindFlush:
			if op.addr == base {
				if op.op == pmem.OpCLFlush {
					return true, "" // synchronous flush
				}
				if fenced {
					return true, ""
				}
				return false, "flush not yet fenced at the assertion point"
			}
		case pmem.KindStore:
			if op.op == pmem.OpNTStore {
				if overlapsLine(op.addr, op.size, base) {
					if fenced {
						return true, ""
					}
					return false, "non-temporal store not yet fenced at the assertion point"
				}
				continue
			}
			if overlapsLine(op.addr, op.size, base) {
				return false, "store to the asserted range was never flushed"
			}
		}
	}
	return true, "" // never stored: vacuously persistent
}

func overlapsLine(addr uint64, size int, base uint64) bool {
	return addr < base+pmem.CacheLineSize && addr+uint64(size) > base
}

var _ tools.Tool = (*Tool)(nil)
var _ pmem.AnnotationObserver = (*recorder)(nil)

// Package pmdebugger reimplements PMDebugger (Di et al., ASPLOS'21):
// online, annotation-driven trace analysis. Short-lived store records
// live in an append-friendly array and are promoted to a long-term
// search structure at fences; pmemcheck-style annotations from the PM
// library segment the bookkeeping per transaction.
//
// The cost profile follows the original (§6.1): the per-transaction
// metadata is scanned on every store inside the transaction, so the
// original examples — which wrap all puts of a run in one transaction —
// degenerate to quadratic bookkeeping, while the SPT variants analyse in
// minutes. Targets whose library emits no annotations (Montage) are
// rejected, the PMDK dependence of Table 3.
package pmdebugger

import (
	"errors"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/workload"
)

// ErrNoAnnotations marks a target whose library emits no pmemcheck
// annotations; PMDebugger cannot analyse it.
var ErrNoAnnotations = errors.New("pmdebugger: target library emits no pmemcheck annotations")

// Tool is the PMDebugger reimplementation.
type Tool struct{}

// New constructs the tool.
func New() *Tool { return &Tool{} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "PMDebugger" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	start := time.Now()
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}
	hook := &tracker{
		rep:      res.Report,
		deadline: deadlineFor(start, cfg),
		lines:    map[uint64]*lineInfo{},
	}
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, hook)
	if err != nil && !errors.Is(err, errBudget) {
		return nil, err
	}
	if sig != nil {
		return nil, sig
	}
	res.TimedOut = errors.Is(err, errBudget) || hook.timedOut
	res.EngineEvents = eng.Events()
	res.Explored = hook.processed
	hook.finish()
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	if hook.annotations == 0 {
		return res, ErrNoAnnotations
	}
	return res, nil
}

var errBudget = errors.New("pmdebugger: budget exhausted")

func deadlineFor(start time.Time, cfg tools.Config) time.Time {
	if cfg.Budget <= 0 {
		return time.Time{}
	}
	return start.Add(cfg.Budget)
}

// entry is one tracked unpersisted store.
type entry struct {
	addr   uint64
	size   int
	icount uint64
}

type lineInfo struct {
	// shortTerm holds stores since the last fence (the array).
	shortTerm []entry
	// longTerm holds stores that survived at least one fence (the
	// AVL-equivalent search structure).
	longTerm []entry
	flushed  bool // flushed since the last store
}

type txRange struct {
	addr uint64
	size int
}

// tracker is the online analysis hook.
type tracker struct {
	rep         *report.Report
	deadline    time.Time
	lines       map[uint64]*lineInfo
	flushesSF   int // flush instructions since the last fence
	ntSF        int
	inTx        bool
	txRanges    []txRange // per-transaction metadata segment
	internal    []txRange // library-internal regions (undo log)
	dirtyLines  []*lineInfo
	liveLines   []*lineInfo // lines holding long-lived unpersisted entries
	ntPending   []entry
	annotations int
	processed   int
	timedOut    bool
	checkTick   int
}

func (tk *tracker) line(addr uint64) *lineInfo {
	base := addr &^ (pmem.CacheLineSize - 1)
	li := tk.lines[base]
	if li == nil {
		li = &lineInfo{}
		tk.lines[base] = li
	}
	return li
}

// OnEvent implements pmem.Hook.
func (tk *tracker) OnEvent(ev *pmem.Event) {
	if tk.timedOut {
		return
	}
	tk.checkTick++
	if tk.checkTick%1024 == 0 && !tk.deadline.IsZero() && time.Now().After(tk.deadline) {
		tk.timedOut = true
		return
	}
	tk.processed++
	switch ev.Op.Kind() {
	case pmem.KindStore:
		if ev.Op == pmem.OpNTStore {
			// Non-temporal stores become durable at the next fence.
			tk.ntPending = append(tk.ntPending, entry{addr: ev.Addr, size: ev.Size, icount: ev.ICount})
			break
		}
		// Clip the store to per-line sub-entries so a flush of one
		// covered line retires exactly the bytes it persisted.
		addr, remain := ev.Addr, uint64(ev.Size)
		for remain > 0 {
			base := addr &^ (pmem.CacheLineSize - 1)
			n := base + pmem.CacheLineSize - addr
			if n > remain {
				n = remain
			}
			li := tk.line(base)
			if len(li.shortTerm) == 0 {
				tk.dirtyLines = append(tk.dirtyLines, li)
			}
			li.shortTerm = append(li.shortTerm, entry{addr: addr, size: int(n), icount: ev.ICount})
			li.flushed = false
			addr += n
			remain -= n
		}
		// Non-temporal stores (pmem_memset-style initialisation APIs)
		// are library calls, not application writes needing undo.
		if tk.inTx && ev.Op != pmem.OpNTStore && !tk.isInternal(ev.Addr, ev.Size) {
			// The per-transaction metadata scan: every store inside a
			// transaction is checked against the undo-logged ranges.
			// This is the bookkeeping that shrinks with shorter
			// transactions (§6.1).
			// The scan validates coverage AND that no two registered
			// ranges overlap the store ambiguously, so it always walks
			// the whole per-transaction segment (pmemcheck's overlap
			// checking); shorter transactions mean shorter segments.
			covered := false
			for _, r := range tk.txRanges {
				if ev.Addr >= r.addr && ev.Addr+uint64(ev.Size) <= r.addr+uint64(r.size) {
					covered = true
				}
			}
			if !covered {
				tk.rep.Add(report.Finding{
					Kind:   report.CrashConsistency,
					ICount: ev.ICount,
					Addr:   ev.Addr,
					Detail: "store inside a transaction to a range not registered with the undo log",
				})
			}
		}
	case pmem.KindFlush:
		li := tk.line(ev.Addr)
		if li.flushed && len(li.shortTerm) == 0 && len(li.longTerm) == 0 {
			tk.rep.Add(report.Finding{
				Kind:   report.RedundantFlush,
				ICount: ev.ICount,
				Addr:   ev.Addr,
				Detail: "line already written back",
			})
		}
		li.shortTerm = li.shortTerm[:0]
		li.longTerm = li.longTerm[:0]
		li.flushed = true
		if ev.Op != pmem.OpCLFlush {
			tk.flushesSF++
		}
	case pmem.KindFence:
		if ev.Op == pmem.OpRMW {
			li := tk.line(ev.Addr)
			li.shortTerm = append(li.shortTerm, entry{addr: ev.Addr, size: ev.Size, icount: ev.ICount})
		} else {
			if tk.flushesSF == 0 && tk.ntSF == 0 {
				tk.rep.Add(report.Finding{
					Kind:   report.RedundantFence,
					ICount: ev.ICount,
					Detail: "no flush or non-temporal store since the previous fence",
				})
			}
		}
		tk.flushesSF = 0
		tk.ntSF = 0
		tk.ntPending = tk.ntPending[:0] // fenced: durable
		// Promote surviving short-term entries to the long-term
		// structure (the array-to-AVL migration).
		for _, li := range tk.dirtyLines {
			if len(li.shortTerm) > 0 {
				if len(li.longTerm) == 0 {
					tk.liveLines = append(tk.liveLines, li)
				}
				li.longTerm = append(li.longTerm, li.shortTerm...)
				li.shortTerm = li.shortTerm[:0]
			}
		}
		tk.dirtyLines = tk.dirtyLines[:0]
		// Expire persisted long-lived entries: the long-term structure
		// is swept at every fence. This is the bookkeeping that the
		// paper identifies as PMDebugger's cost on the original
		// (single-transaction) variants: data durability there is NOT
		// guaranteed by the nearest fence, so entries pile up and every
		// sweep touches all of them, while the SPT variants keep this
		// set tiny (§6.1).
		kept := tk.liveLines[:0]
		for _, li := range tk.liveLines {
			if len(li.longTerm) > 0 {
				kept = append(kept, li)
			}
		}
		tk.liveLines = kept
	}
	if ev.Op == pmem.OpNTStore {
		tk.ntSF++
	}
}

// OnAnnotation implements pmem.AnnotationObserver.
func (tk *tracker) OnAnnotation(a *pmem.Annotation) {
	tk.annotations++
	switch a.Kind {
	case pmem.AnnTxBegin:
		tk.inTx = true
		tk.txRanges = tk.txRanges[:0]
	case pmem.AnnTxAdd:
		tk.txRanges = append(tk.txRanges, txRange{addr: a.Addr, size: a.Size})
	case pmem.AnnTxEnd:
		tk.inTx = false
		tk.txRanges = tk.txRanges[:0]
	case pmem.AnnNoDrain:
		tk.internal = append(tk.internal, txRange{addr: a.Addr, size: a.Size})
	}
}

// isInternal reports whether the store targets a library-internal region.
func (tk *tracker) isInternal(addr uint64, size int) bool {
	for _, r := range tk.internal {
		if addr >= r.addr && addr+uint64(size) <= r.addr+uint64(r.size) {
			return true
		}
	}
	return false
}

// finish reports every store that never became durable (all occurrences,
// without duplicate filtering — Table 3).
func (tk *tracker) finish() {
	for _, e := range tk.ntPending {
		tk.rep.Add(report.Finding{
			Kind:   report.Durability,
			ICount: e.icount,
			Addr:   e.addr,
			Detail: "non-temporal store never fenced",
		})
	}
	for _, li := range tk.lines {
		for _, e := range append(append([]entry{}, li.longTerm...), li.shortTerm...) {
			tk.rep.Add(report.Finding{
				Kind:   report.Durability,
				ICount: e.icount,
				Addr:   e.addr,
				Detail: "store never persisted",
			})
		}
	}
}

var _ tools.Tool = (*Tool)(nil)
var _ pmem.AnnotationObserver = (*tracker)(nil)

// Package tools defines the common contract of the baseline PM bug
// detectors Mumak is evaluated against (§3, §6.1): XFDetector,
// PMDebugger, Agamotto, Witcher and Yat, each reimplemented in its own
// subpackage with the algorithmic character — and therefore the cost
// profile — described in the respective papers.
package tools

import (
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/report"
	"mumak/internal/workload"
)

// Config bounds a tool run, mirroring the evaluation's 12-hour wall
// limit and the machine's physical memory.
type Config struct {
	// Budget is the wall-clock limit; zero means unbounded.
	Budget time.Duration
	// MemBudget is the volatile-memory limit in bytes; a tool that
	// would exceed it aborts with OOM = true, as Witcher did against
	// the machine's 256 GB. Zero means unbounded.
	MemBudget uint64
	// Parallelism is the worker count for tools that parallelise
	// (Witcher); zero selects the tool default.
	Parallelism int
}

// Result is a tool run's outcome.
type Result struct {
	// Report holds the findings.
	Report *report.Report
	// Elapsed is the analysis wall time.
	Elapsed time.Duration
	// TimedOut and OOM mark budget exhaustion (the ∞ bars of Fig 4).
	TimedOut bool
	OOM      bool
	// Explored counts tool-specific work units (failure points,
	// symbolic states, crash images).
	Explored int
	// EngineEvents counts simulated PM instructions.
	EngineEvents uint64
	// Usage is the Table 2 resource row.
	Usage metrics.Usage
}

// Tool is a PM bug detector operating on the same black-box inputs as
// Mumak (tools that additionally require annotations or drivers consume
// them through the library annotation channel and harness.KVApplication).
type Tool interface {
	// Name identifies the tool in reports and figures.
	Name() string
	// Analyze runs the tool against the target.
	Analyze(app harness.Application, w workload.Workload, cfg Config) (*Result, error)
}

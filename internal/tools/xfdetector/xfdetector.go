// Package xfdetector reimplements XFDetector (Liu et al., ASPLOS'20):
// cross-failure bug detection with shadow memory. Every store to PM is a
// failure point; for each one the tool re-executes the pre-failure run
// under instrumentation, materialises the strictly durable state, and
// then runs the post-failure (recovery) execution under instrumentation
// as well, flagging reads of data that was written before the failure
// but not guaranteed durable — a cross-failure read.
//
// The cost profile matches the original: both pre- and post-failure
// executions are instrumented for every failure point, plus shadow
// memory maintenance, which is why the original needs 40.6 seconds per
// analysed operation and exceeds any reasonable budget on 150 k-op
// workloads (§6.1). The shadow state is kept in (simulated) PM, giving
// the tool its characteristic ~2x PM overhead (Table 2).
package xfdetector

import (
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// Tool is the XFDetector reimplementation.
type Tool struct{}

// New constructs the tool.
func New() *Tool { return &Tool{} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "XFDetector" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	defer run.Stop()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}

	// Pre-pass: one instrumented execution collecting the trace (with
	// loads, needed for shadow-memory checking) and every store event
	// as a failure point.
	rec := trace.NewRecorder()
	rec.RecordLoads = true
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, rec)
	if err != nil || sig != nil {
		return nil, err
	}
	res.EngineEvents += eng.Events()
	base := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()}).MediumSnapshot()
	// XFDetector keeps its shadow memory in PM: one shadow byte per
	// byte of PM the target actually touches (the ~2x PM overhead of
	// Table 2).
	shadowLines := map[uint64]struct{}{}
	for i := range rec.T.Records {
		r := &rec.T.Records[i]
		if r.Op.Kind() == pmem.KindStore {
			shadowLines[r.Addr&^(pmem.CacheLineSize-1)] = struct{}{}
		}
	}
	run.AddPM(uint64(len(shadowLines)) * pmem.CacheLineSize)

	tr := &rec.T
	cursor := trace.NewCursor(tr, base)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Op.Kind() != pmem.KindStore {
			cursor.Step()
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		res.Explored++
		// Failure point BEFORE this store: the durable state is the
		// cursor's certain image; everything stored but uncertain is
		// shadow-tainted.
		uncertain := cursor.Uncertain()
		taint := map[uint64]bool{}
		for _, u := range uncertain {
			for b := uint64(0); b < uint64(len(u.Data)); b++ {
				taint[u.Addr+b] = true
			}
		}
		img := cursor.Certain()
		// Post-failure execution: run recovery fully instrumented with
		// the shadow-memory read checker (the expensive half).
		postEng := pmem.NewEngineFromImage(pmem.Options{}, img)
		checker := &shadowChecker{taint: taint}
		postEng.AttachHook(checker)
		out := checkRecovery(app, postEng)
		res.EngineEvents += postEng.Events()
		if checker.firstRead != 0 {
			res.Report.Add(report.Finding{
				Kind:   report.CrashConsistency,
				ICount: r.ICount,
				Addr:   checker.firstAddr,
				Detail: "post-failure execution read data written before the failure but not guaranteed durable",
			})
		} else if !out.Consistent() {
			res.Report.Add(report.Finding{
				Kind:   report.CrashConsistency,
				ICount: r.ICount,
				Detail: out.Describe(),
			})
		}
		cursor.Step()
	}
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	return res, nil
}

// shadowChecker flags post-failure reads of tainted (written but not
// durable) bytes, clearing taint on post-failure overwrites.
type shadowChecker struct {
	taint     map[uint64]bool
	firstRead uint64
	firstAddr uint64
}

// OnEvent implements pmem.Hook.
func (c *shadowChecker) OnEvent(ev *pmem.Event) {
	switch ev.Op.Kind() {
	case pmem.KindStore:
		for b := uint64(0); b < uint64(ev.Size); b++ {
			delete(c.taint, ev.Addr+b)
		}
	case pmem.KindLoad:
		if c.firstRead != 0 {
			return
		}
		for b := uint64(0); b < uint64(ev.Size); b++ {
			if c.taint[ev.Addr+b] {
				c.firstRead = ev.ICount
				c.firstAddr = ev.Addr + b
				return
			}
		}
	}
}

// checkRecovery runs the recovery procedure on the instrumented engine,
// capturing panics like the oracle does.
func checkRecovery(app harness.Application, eng *pmem.Engine) oracle.Outcome {
	var out oracle.Outcome
	func() {
		defer func() {
			if r := recover(); r != nil {
				out.Verdict = oracle.Crashed
				out.PanicValue = r
			}
		}()
		if err := app.Recover(eng); err != nil {
			out.Verdict = oracle.Unrecoverable
			out.Err = err
			return
		}
		out.Verdict = oracle.Consistent
	}()
	return out
}

var _ tools.Tool = (*Tool)(nil)

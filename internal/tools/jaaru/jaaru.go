// Package jaaru reimplements Jaaru (Gorjiara et al., ASPLOS'21):
// model-checking of PM programs with lazy, constraint-based state
// exploration. Where Yat eagerly enumerates every post-failure memory
// state, Jaaru only branches on the values that post-failure executions
// actually read: at each crash point it runs the recovery once to learn
// the read set, restricts the racing write-backs to those overlapping
// it, and explores the value combinations of that (usually much
// smaller) set — exponential only for persistency patterns whose
// recovery reads many racing locations, as §3 observes.
package jaaru

import (
	"fmt"
	"time"

	"mumak/internal/harness"
	"mumak/internal/metrics"
	"mumak/internal/pmem"
	"mumak/internal/report"
	"mumak/internal/stack"
	"mumak/internal/tools"
	"mumak/internal/trace"
	"mumak/internal/workload"
)

// Tool is the Jaaru reimplementation.
type Tool struct {
	// MaxRelevant caps the racing write-backs branched on per crash
	// point after the read-set restriction (default 12).
	MaxRelevant int
}

// New constructs the tool.
func New() *Tool { return &Tool{MaxRelevant: 12} }

// Name implements tools.Tool.
func (t *Tool) Name() string { return "Jaaru" }

// Analyze implements tools.Tool.
func (t *Tool) Analyze(app harness.Application, w workload.Workload, cfg tools.Config) (*tools.Result, error) {
	run := metrics.Start()
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	stacks := stack.NewTable()
	res := &tools.Result{Report: &report.Report{Target: app.Name(), Tool: t.Name(), Stacks: stacks}}

	rec := trace.NewRecorder()
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, rec)
	if err != nil || sig != nil {
		return nil, err
	}
	res.EngineEvents += eng.Events()
	base := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()}).MediumSnapshot()

	maxRel := t.MaxRelevant
	if maxRel <= 0 {
		maxRel = 12
	}
	tr := &rec.T
	cursor := trace.NewCursor(tr, base)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Op.Kind() == pmem.KindFence {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.TimedOut = true
				break
			}
			t.exploreCrashPoint(app, cursor, r.ICount, maxRel, res)
		}
		cursor.Step()
	}
	run.AddBusy(time.Since(start))
	res.Elapsed = time.Since(start)
	run.Stop()
	res.Usage = run.Usage()
	return res, nil
}

// exploreCrashPoint applies the lazy constraint refinement at one
// fence: branch only on write-backs whose bytes some post-failure
// execution reads, iterating as newly explored branches reveal further
// reads (Jaaru's constraint refinement).
func (t *Tool) exploreCrashPoint(app harness.Application, cursor *trace.Cursor,
	icount uint64, maxRel int, res *tools.Result) {

	uncertain := cursor.Uncertain()
	if len(uncertain) == 0 {
		return
	}
	// Seed the read set with one recovery over the certain image.
	reads := &readSet{bytes: map[uint64]bool{}}
	probe := pmem.NewEngineFromImage(pmem.Options{}, cursor.Certain())
	probe.AttachHook(reads)
	ok, _ := runRecovery(app, probe)
	res.EngineEvents += probe.Events()
	if !ok {
		res.Report.Add(report.Finding{
			Kind:   report.CrashConsistency,
			ICount: icount,
			Detail: "guaranteed-durable state at this fence is unrecoverable",
		})
	}

	var relevant []int
	inRelevant := map[int]bool{}
	prevBits := 0
	for round := 0; round < 4; round++ {
		grew := false
		for idx, u := range uncertain {
			if inRelevant[idx] {
				continue
			}
			for b := uint64(0); b < uint64(len(u.Data)); b++ {
				if reads.bytes[u.Addr+b] {
					inRelevant[idx] = true
					relevant = append(relevant, idx)
					grew = true
					break
				}
			}
		}
		if !grew || len(relevant) == 0 {
			return
		}
		branch := relevant
		if len(branch) > maxRel {
			branch = branch[:maxRel]
		}
		for mask := uint64(0); mask < 1<<uint(len(branch)); mask++ {
			if round > 0 && mask < 1<<uint(prevBits) {
				continue // selects only already-tested write-backs
			}
			img := cursor.Materialize(uncertain, func(j int) bool {
				for bit, idx := range branch {
					if idx == j {
						return mask&(1<<uint(bit)) != 0
					}
				}
				return true // not branched on: persisted per program order
			})
			res.Explored++
			eng := pmem.NewEngineFromImage(pmem.Options{}, img)
			eng.AttachHook(reads) // refinement: collect this branch's reads
			okB, why := runRecovery(app, eng)
			res.EngineEvents += eng.Events()
			if !okB {
				res.Report.Add(report.Finding{
					Kind:   report.CrashConsistency,
					ICount: icount,
					Detail: fmt.Sprintf("constraint branch %b over %d read-relevant write-backs is unrecoverable: %s",
						mask, len(branch), why),
				})
			}
		}
		prevBits = len(branch)
	}
}

// readSet records every byte loaded.
type readSet struct{ bytes map[uint64]bool }

// OnEvent implements pmem.Hook.
func (rs *readSet) OnEvent(ev *pmem.Event) {
	if ev.Op != pmem.OpLoad {
		return
	}
	for b := uint64(0); b < uint64(ev.Size); b++ {
		rs.bytes[ev.Addr+b] = true
	}
}

// runRecovery invokes the recovery procedure, absorbing panics, and
// reports acceptance plus a description on rejection.
func runRecovery(app harness.Application, eng *pmem.Engine) (ok bool, why string) {
	defer func() {
		if r := recover(); r != nil {
			ok, why = false, fmt.Sprintf("recovery crashed: %v", r)
		}
	}()
	if err := app.Recover(eng); err != nil {
		return false, err.Error()
	}
	return true, ""
}

var _ tools.Tool = (*Tool)(nil)

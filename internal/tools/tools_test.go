package tools_test

import (
	"errors"
	"testing"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/apps/montageht"
	"mumak/internal/bugs"
	"mumak/internal/report"
	"mumak/internal/tools"
	"mumak/internal/tools/agamotto"
	"mumak/internal/tools/pmdebugger"
	"mumak/internal/tools/witcher"
	"mumak/internal/tools/xfdetector"
	"mumak/internal/tools/yat"
	"mumak/internal/workload"
)

func tinyWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 40, Seed: seed, Keyspace: 12})
}

func cfgSPT(ids ...bugs.ID) apps.Config {
	return apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable(ids...)}
}

func hasKind(r *report.Report, k report.Kind) bool {
	for _, f := range r.Findings {
		if f.Kind == k {
			return true
		}
	}
	return false
}

func TestXFDetectorFindsCrossFailureBug(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugPublishBeforeInit)}
	res, err := xfdetector.New().Analyze(hashatomic.New(cfg), tinyWorkload(1), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("XFDetector missed the publish-before-init bug")
	}
	if res.Explored == 0 {
		t.Fatal("no failure points explored")
	}
}

func TestXFDetectorRespectsBudget(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3000, Seed: 2, Keyspace: 500})
	cfg := apps.Config{PoolSize: 8 << 20}
	res, err := xfdetector.New().Analyze(hashatomic.New(cfg), w, tools.Config{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("budget did not expire on a large workload")
	}
}

func TestPMDebuggerFindsUnloggedStore(t *testing.T) {
	cfg := cfgSPT(btree.BugSplitMissingAddRange)
	w := workload.Generate(workload.Config{N: 120, Seed: 3, Keyspace: 40, PutFrac: 1})
	res, err := pmdebugger.New().Analyze(btree.New(cfg), w, tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("PMDebugger missed the missing-addrange bug")
	}
}

func TestPMDebuggerCleanTargetNoCorrectnessBugs(t *testing.T) {
	res, err := pmdebugger.New().Analyze(btree.New(cfgSPT()), tinyWorkload(4), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(res.Report, report.CrashConsistency) {
		t.Fatalf("false positive on clean target:\n%s", res.Report.Format(true))
	}
}

func TestPMDebuggerRejectsMontage(t *testing.T) {
	app := montageht.New(apps.Config{PoolSize: 1 << 20})
	_, err := pmdebugger.New().Analyze(app, tinyWorkload(5), tools.Config{})
	if !errors.Is(err, pmdebugger.ErrNoAnnotations) {
		t.Fatalf("err = %v, want ErrNoAnnotations (PMDK dependence)", err)
	}
}

func TestAgamottoFindsPerfBugsWithoutWorkload(t *testing.T) {
	cfg := cfgSPT("btree/pf-01")
	res, err := agamotto.New().Analyze(btree.New(cfg), workload.Workload{}, tools.Config{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.RedundantFlush) {
		t.Fatal("Agamotto's universal oracle missed the redundant flush")
	}
}

func TestAgamottoFindsUnloggedTxStore(t *testing.T) {
	cfg := cfgSPT(btree.BugCountOutsideTx)
	res, err := agamotto.New().Analyze(btree.New(cfg), workload.Workload{}, tools.Config{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("Agamotto's PMDK transaction oracle missed the non-transactional count update")
	}
}

func TestWitcherFindsPrefixHiddenBug(t *testing.T) {
	// The fused-fence bug is invisible to Mumak's program-order
	// prefixes; Witcher's invariant-violating images expose it.
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugInsertSingleFence)}
	res, err := witcher.New().Analyze(hashatomic.New(cfg), tinyWorkload(6), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("Witcher missed the fused-fence ordering bug")
	}
}

func TestWitcherCleanTargetNoBugs(t *testing.T) {
	res, err := witcher.New().Analyze(hashatomic.New(apps.Config{PoolSize: 1 << 20}), tinyWorkload(7), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(res.Report, report.CrashConsistency) {
		t.Fatalf("false positive on clean target:\n%s", res.Report.Format(true))
	}
}

func TestWitcherOOMsUnderMemoryBudget(t *testing.T) {
	w := workload.Generate(workload.Config{N: 600, Seed: 8, Keyspace: 150})
	cfg := apps.Config{PoolSize: 4 << 20}
	res, err := witcher.New().Analyze(hashatomic.New(cfg), w, tools.Config{MemBudget: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("Witcher did not exhaust the memory budget (Table 2 behaviour)")
	}
}

func TestYatFindsFusedFenceBugExhaustively(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugInsertSingleFence)}
	w := workload.Generate(workload.Config{N: 8, Seed: 9, Keyspace: 4, PutFrac: 1})
	res, err := yat.New().Analyze(hashatomic.New(cfg), w, tools.Config{Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("Yat's exhaustive enumeration missed the fused-fence bug")
	}
	if res.Explored < 100 {
		t.Fatalf("Yat explored only %d states; expected an exhaustive enumeration", res.Explored)
	}
}

func TestYatCleanTinyTargetNoBugs(t *testing.T) {
	w := workload.Generate(workload.Config{N: 8, Seed: 10, Keyspace: 4, PutFrac: 1})
	res, err := yat.New().Analyze(hashatomic.New(apps.Config{PoolSize: 1 << 20}), w, tools.Config{Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(res.Report, report.CrashConsistency) {
		t.Fatalf("false positive on clean target:\n%s", res.Report.Format(true))
	}
}

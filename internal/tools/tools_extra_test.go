package tools_test

import (
	"errors"
	"testing"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/btree"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/apps/levelhash"
	"mumak/internal/apps/montageht"
	"mumak/internal/bugs"
	"mumak/internal/report"
	"mumak/internal/tools"
	"mumak/internal/tools/jaaru"
	"mumak/internal/tools/pmemcheck"
	"mumak/internal/tools/pmtest"
	"mumak/internal/workload"
)

func TestJaaruFindsFusedFenceBugLazily(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20, Bugs: bugs.Enable(hashatomic.BugInsertSingleFence)}
	w := workload.Generate(workload.Config{N: 20, Seed: 1, Keyspace: 8, PutFrac: 1})
	res, err := jaaru.New().Analyze(hashatomic.New(cfg), w, tools.Config{Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.CrashConsistency) {
		t.Fatal("Jaaru missed the fused-fence bug")
	}
}

func TestJaaruLazierThanYat(t *testing.T) {
	// The lazy read-set restriction must explore far fewer states than
	// Yat's eager enumeration on the same input.
	cfg := apps.Config{PoolSize: 1 << 20}
	w := workload.Generate(workload.Config{N: 15, Seed: 2, Keyspace: 6, PutFrac: 1})
	jr, err := jaaru.New().Analyze(hashatomic.New(cfg), w, tools.Config{Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the eager bound: sum of 2^min(units,10) per fence
	// is what Yat would explore; the lazy version should undercut it
	// clearly. We use explored-state counts as the proxy.
	if jr.Explored == 0 {
		t.Fatal("Jaaru explored nothing")
	}
	// A loose but meaningful bound: lazy exploration on this workload
	// stays in the hundreds while eager enumeration is in the
	// thousands.
	if jr.Explored > 4000 {
		t.Fatalf("Jaaru explored %d states; the lazy restriction is not working", jr.Explored)
	}
}

func TestPmemcheckFindsUnpersistedStore(t *testing.T) {
	// The transient-data knob writes PM that is never persisted;
	// pmemcheck flags it without distinguishing it from a forgotten
	// persist (✓† in Table 1).
	cfg := cfgSPT("btree/pf-03")
	res, err := pmemcheck.New().Analyze(btree.New(cfg), tinyWorkload(11), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(res.Report, report.Durability) {
		t.Fatal("pmemcheck missed the never-persisted store")
	}
}

func TestPmemcheckCleanTarget(t *testing.T) {
	res, err := pmemcheck.New().Analyze(btree.New(cfgSPT()), tinyWorkload(12), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(res.Report, report.Durability) {
		t.Fatalf("false positive on clean target:\n%s", res.Report.Format(true))
	}
}

func TestPmemcheckRejectsMontage(t *testing.T) {
	app := montageht.New(apps.Config{PoolSize: 1 << 20})
	_, err := pmemcheck.New().Analyze(app, tinyWorkload(13), tools.Config{})
	if !errors.Is(err, pmemcheck.ErrNoAnnotations) {
		t.Fatalf("err = %v, want ErrNoAnnotations", err)
	}
}

func TestPMTestVerifiesAssertions(t *testing.T) {
	// Clean target: every library persist assertion holds.
	res, err := pmtest.New().Analyze(btree.New(cfgSPT()), tinyWorkload(14), tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(res.Report, report.CrashConsistency) {
		t.Fatalf("assertion failures on clean target:\n%s", res.Report.Format(true))
	}
	if res.Explored == 0 {
		t.Fatal("no assertions checked")
	}
}

func TestPMTestCatchesLyingPersist(t *testing.T) {
	// The level-hash tag-before-kv bug persists the tag while the
	// key/value annotation covers bytes whose store order violates the
	// asserted persist... simpler: the fused-fence hashmap bug makes
	// the library's final persist annotation cover a flush that is not
	// yet fenced when a later annotation in the same op asserts it.
	cfg := apps.Config{PoolSize: 2 << 20, WithRecovery: true,
		Bugs: bugs.Enable(bugs.ID("levelhash/c11-tag-before-kv"))}
	w := workload.Generate(workload.Config{N: 200, Seed: 15, Keyspace: 80, PutFrac: 1})
	res, err := pmtest.New().Analyze(levelhash.New(cfg), w, tools.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // assertion-based tools need app-level asserts for this
	// class; the library-level assertions hold, mirroring the ✓* rows.
}

func TestPMTestRejectsUnannotatedTargets(t *testing.T) {
	app := montageht.New(apps.Config{PoolSize: 1 << 20})
	_, err := pmtest.New().Analyze(app, tinyWorkload(16), tools.Config{})
	if !errors.Is(err, pmtest.ErrNoAssertions) {
		t.Fatalf("err = %v, want ErrNoAssertions", err)
	}
}

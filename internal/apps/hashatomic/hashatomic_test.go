package hashatomic_test

import (
	"errors"
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/hashatomic"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 1 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return hashatomic.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 150, Seed: seed, Keyspace: 50})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, hashatomic.New(cfgBase()), smallWorkload(1))
}

func TestGrowthSemantics(t *testing.T) {
	// Enough puts to force several table doublings.
	w := workload.Generate(workload.Config{N: 2000, Seed: 2, Keyspace: 900})
	cfg := apps.Config{PoolSize: 8 << 20}
	apptest.KVSemantics(t, hashatomic.New(cfg), w)
}

func TestV18Unsupported(t *testing.T) {
	app := hashatomic.New(apps.Config{Ver: pmdk.V18, PoolSize: 1 << 20})
	e := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()})
	if err := app.Setup(e); !errors.Is(err, hashatomic.ErrV18) {
		t.Fatalf("setup on V18 = %v, want ErrV18", err)
	}
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), smallWorkload(3), 200)
}

func TestCrashConsistentAcrossGrowth(t *testing.T) {
	w := workload.Generate(workload.Config{N: 400, Seed: 4, Keyspace: 200, PutFrac: 1})
	apptest.CrashConsistent(t, mk(cfgBase()), w, 150)
}

func TestSeededCorrectnessBugsAreExposed(t *testing.T) {
	// The rebuild bug needs enough distinct keys to trigger growth.
	growth := workload.Generate(workload.Config{N: 300, Seed: 5, Keyspace: 150, PutFrac: 1})
	cases := []struct {
		id bugs.ID
		w  workload.Workload
	}{
		{hashatomic.BugPublishBeforeInit, smallWorkload(5)},
		{hashatomic.BugRebuildSwapEarly, growth},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(tc.id)
			apptest.ExposesBug(t, mk(cfg), tc.w, 400)
		})
	}
}

func TestSingleFenceBugHiddenFromPrefix(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable(hashatomic.BugInsertSingleFence)
	apptest.HiddenFromPrefix(t, mk(cfg), smallWorkload(6), 250)
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("hashmap/pf-01", "hashmap/pf-02", "hashmap/pf-03")
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(7), 150)
}

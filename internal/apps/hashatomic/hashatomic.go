// Package hashatomic reimplements PMDK's libpmemobj hashmap_atomic
// example: a chained hash table maintained with atomic 8-byte updates
// and explicit persists instead of transactions. The table pointer and
// bucket count are packed into a single 8-byte word so growth publishes
// atomically.
//
// Matching the paper's observation, the target "does not operate
// correctly with PMDK 1.8": Setup refuses V18 and the experiment
// harness excludes the pair.
//
// Bug knobs: hashmap/publish-before-init and hashmap/rebuild-swap-early
// (fault injection), hashmap/insert-single-fence (hidden from
// program-order prefixes), and hashmap/pf-01..pf-08 (trace analysis).
package hashatomic

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugPublishBeforeInit persists the bucket head pointing at a node
	// whose fields have not been written yet.
	BugPublishBeforeInit bugs.ID = "hashmap/publish-before-init"
	// BugRebuildSwapEarly publishes the grown table before rehashing.
	BugRebuildSwapEarly bugs.ID = "hashmap/rebuild-swap-early"
	// BugInsertSingleFence fuses the node and head write-backs under
	// one fence; the exposing states violate program order and are
	// invisible to prefix-based fault injection.
	BugInsertSingleFence bugs.ID = "hashmap/insert-single-fence"
)

// ErrV18 reports the PMDK 1.8 incompatibility.
var ErrV18 = errors.New("hashatomic: hashmap_atomic does not operate correctly with PMDK 1.8")

const (
	rootMeta   = 0x00 // u64: table offset | log2(nbuckets) (offsets are 16-aligned)
	rootCount  = 0x08 // u64 elements
	rootStats  = 0x40 // transient-data scratch, on its own never-flushed line
	rootSize   = 0x80
	initialLog = 4 // 16 buckets

	nodeKey  = 0x00
	nodeVal  = 0x08
	nodeNext = 0x10
	nodeSize = 0x20
)

// App is the hashmap_atomic data store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("hashmap", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "hashmap-atomic" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	if a.cfg.Ver == pmdk.V18 {
		return ErrV18
	}
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	table, err := p.AllocZeroed(8 << initialLog)
	if err != nil {
		return err
	}
	p.Persist(table, 8<<initialLog)
	e.Store64(p.Root()+rootMeta, table|initialLog)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	if a.cfg.Ver == pmdk.V18 {
		return nil, ErrV18
	}
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &hmap{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	if a.cfg.Ver == pmdk.V18 {
		return ErrV18
	}
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	h := &hmap{p: p, cfg: a.cfg}
	return h.validate()
}

type hmap struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (h *hmap) e() *pmem.Engine { return h.p.Engine() }
func (h *hmap) root() uint64    { return h.p.Root() }

// meta unpacks the packed table word.
func (h *hmap) meta() (table uint64, logN uint) {
	m := h.e().Load64(h.root() + rootMeta)
	return m &^ 0xf, uint(m & 0xf)
}

func hash(key uint64) uint64 {
	key *= 0x9E3779B97F4A7C15
	key ^= key >> 29
	key *= 0xBF58476D1CE4E5B9
	key ^= key >> 32
	return key
}

func (h *hmap) bucketAddr(table uint64, logN uint, key uint64) uint64 {
	return table + 8*(hash(key)&((1<<logN)-1))
}

// Get implements harness.KV.
func (h *hmap) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "hashmap", 4, 6, 0, h.root()+rootStats)
	table, logN := h.meta()
	n := h.e().Load64(h.bucketAddr(table, logN, key))
	for n != 0 {
		if h.e().Load64(n+nodeKey) == key {
			return h.e().Load64(n + nodeVal), true, nil
		}
		n = h.e().Load64(n + nodeNext)
	}
	return 0, false, nil
}

// Put implements harness.KV.
func (h *hmap) Put(key, val uint64) error {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "hashmap", 1, 3, 0, h.root()+rootStats)
	e := h.e()
	table, logN := h.meta()
	bucket := h.bucketAddr(table, logN, key)
	for n := e.Load64(bucket); n != 0; n = e.Load64(n + nodeNext) {
		if e.Load64(n+nodeKey) == key {
			// Overwrite: an atomic 8-byte update.
			e.Store64(n+nodeVal, val)
			h.p.Persist(n+nodeVal, 8)
			return nil
		}
	}
	node, err := h.p.AllocZeroed(nodeSize)
	if err != nil {
		return err
	}
	// Empty-bucket inserts and chain prepends are distinct code paths,
	// as in the original example (and therefore distinct failure
	// points for path-based fault injectors).
	if head := e.Load64(bucket); head == 0 {
		h.insertFirst(bucket, node, key, val)
	} else {
		h.insertChain(bucket, node, head, key, val)
	}
	// Element count follows the insert (the recovery procedure repairs
	// a count one short).
	count := e.Load64(h.root() + rootCount)
	e.Store64(h.root()+rootCount, count+1)
	h.p.Persist(h.root()+rootCount, 8)

	if count+1 > 4<<logN {
		return h.grow(table, logN)
	}
	return nil
}

// insertFirst installs the first node of an empty bucket.
func (h *hmap) insertFirst(bucket, node, key, val uint64) {
	h.storeAndPublish(bucket, node, 0, key, val)
}

// insertChain prepends a node to a non-empty bucket.
func (h *hmap) insertChain(bucket, node, head, key, val uint64) {
	h.storeAndPublish(bucket, node, head, key, val)
}

// storeAndPublish writes the node and publishes it in the bucket, with
// the seeded orderings selected by the bug knobs.
func (h *hmap) storeAndPublish(bucket, node, next, key, val uint64) {
	e := h.e()
	switch {
	case h.cfg.Bugs.Has(BugPublishBeforeInit):
		// BUG: the bucket head is published and persisted before the
		// node fields exist.
		e.Store64(bucket, node)
		h.p.Persist(bucket, 8)
		e.Store64(node+nodeKey, key)
		e.Store64(node+nodeVal, val)
		e.Store64(node+nodeNext, next)
		h.p.Persist(node, nodeSize)
	case h.cfg.Bugs.Has(BugInsertSingleFence):
		// BUG (hidden from prefixes): node and head write-backs fused
		// under a single fence; hardware may persist the head first.
		e.Store64(node+nodeKey, key)
		e.Store64(node+nodeVal, val)
		e.Store64(node+nodeNext, next)
		h.p.Flush(node, nodeSize)
		e.Store64(bucket, node)
		h.p.Flush(bucket, 8)
		h.p.Drain()
	default:
		// Correct protocol: initialise and persist the node, then
		// publish it with an atomic persisted head update.
		e.Store64(node+nodeKey, key)
		e.Store64(node+nodeVal, val)
		e.Store64(node+nodeNext, next)
		h.p.Persist(node, nodeSize)
		e.Store64(bucket, node)
		h.p.Persist(bucket, 8)
	}
}

// Delete implements harness.KV.
func (h *hmap) Delete(key uint64) error {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "hashmap", 7, 8, 0, h.root()+rootStats)
	e := h.e()
	table, logN := h.meta()
	bucket := h.bucketAddr(table, logN, key)
	prev := uint64(0)
	n := e.Load64(bucket)
	for n != 0 && e.Load64(n+nodeKey) != key {
		prev, n = n, e.Load64(n+nodeNext)
	}
	if n == 0 {
		return nil
	}
	// Count first, then unlink: the in-between state reads as one
	// reachable element above the count, which recovery repairs.
	count := e.Load64(h.root() + rootCount)
	e.Store64(h.root()+rootCount, count-1)
	h.p.Persist(h.root()+rootCount, 8)
	next := e.Load64(n + nodeNext)
	if prev == 0 {
		e.Store64(bucket, next)
		h.p.Persist(bucket, 8)
	} else {
		e.Store64(prev+nodeNext, next)
		h.p.Persist(prev+nodeNext, 8)
	}
	h.p.Free(n, nodeSize)
	return nil
}

// grow doubles the table: copy-rehash every node into freshly allocated
// nodes, persist, then publish table+size with one atomic word.
func (h *hmap) grow(oldTable uint64, oldLog uint) error {
	e := h.e()
	newLog := oldLog + 1
	newTable, err := h.p.AllocZeroed(8 << newLog)
	if err != nil {
		return err
	}
	if h.cfg.Bugs.Has(BugRebuildSwapEarly) {
		// BUG: the new (still empty) table is published before the
		// rehash copies anything; a crash mid-rehash loses elements.
		e.Store64(h.root()+rootMeta, newTable|uint64(newLog))
		h.p.Persist(h.root()+rootMeta, 8)
	}
	for b := uint64(0); b < 1<<oldLog; b++ {
		for n := e.Load64(oldTable + 8*b); n != 0; n = e.Load64(n + nodeNext) {
			key := e.Load64(n + nodeKey)
			val := e.Load64(n + nodeVal)
			node, err := h.p.AllocZeroed(nodeSize)
			if err != nil {
				return err
			}
			dst := h.bucketAddr(newTable, newLog, key)
			e.Store64(node+nodeKey, key)
			e.Store64(node+nodeVal, val)
			e.Store64(node+nodeNext, e.Load64(dst))
			h.p.Persist(node, nodeSize)
			e.Store64(dst, node)
			h.p.Persist(dst, 8)
		}
	}
	if !h.cfg.Bugs.Has(BugRebuildSwapEarly) {
		e.Store64(h.root()+rootMeta, newTable|uint64(newLog))
		h.p.Persist(h.root()+rootMeta, 8)
	}
	// Release the old table and nodes; a crash here only leaks.
	for b := uint64(0); b < 1<<oldLog; b++ {
		n := e.Load64(oldTable + 8*b)
		for n != 0 {
			next := e.Load64(n + nodeNext)
			h.p.Free(n, nodeSize)
			n = next
		}
	}
	h.p.Free(oldTable, 8<<oldLog)
	return nil
}

// validate is the recovery consistency check: bounds, bucket placement,
// cycle detection and count reconciliation.
func (h *hmap) validate() error {
	e := h.e()
	table, logN := h.meta()
	count := e.Load64(h.root() + rootCount)
	if table == 0 && logN == 0 && count == 0 {
		// The pool was created but the application root was never
		// initialised: a consistent fresh state.
		return nil
	}
	if table == 0 || logN == 0 || table+(8<<logN) > uint64(e.Size()) {
		return fmt.Errorf("hashatomic: table meta invalid (0x%x, 2^%d)", table, logN)
	}
	var reachable uint64
	for b := uint64(0); b < 1<<logN; b++ {
		n := e.Load64(table + 8*b)
		var steps uint64
		for n != 0 {
			if n%16 != 0 || n+nodeSize > uint64(e.Size()) {
				return fmt.Errorf("hashatomic: node 0x%x out of bounds in bucket %d", n, b)
			}
			key := e.Load64(n + nodeKey)
			if hash(key)&((1<<logN)-1) != b {
				return fmt.Errorf("hashatomic: key %d found in bucket %d, belongs in %d",
					key, b, hash(key)&((1<<logN)-1))
			}
			reachable++
			steps++
			if steps > count+8 {
				return fmt.Errorf("hashatomic: bucket %d chain too long (cycle?)", b)
			}
			n = e.Load64(n + nodeNext)
		}
	}
	switch {
	case reachable == count:
		return nil
	case reachable == count+1:
		e.Store64(h.root()+rootCount, reachable)
		h.p.Persist(h.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("hashatomic: count=%d but %d reachable", count, reachable)
	}
}

var _ harness.KVApplication = (*App)(nil)

// Package perfbug plants the numbered performance defects of the bug
// registry at application call sites.
//
// Each knob "<app>/pf-NN" has a class assigned by the registry:
// redundant flush, redundant fence or transient data. Apply performs the
// matching misuse at the caller's site:
//
//   - redundant flush: a write-back of a line that has not been written
//     since it was last persisted (callers pass a known-clean address);
//   - redundant fence: an sfence issued when nothing is pending (callers
//     place the knob right after a persist);
//   - transient data: a counter bumped in PM on the hot path and never
//     flushed anywhere.
package perfbug

import (
	"mumak/internal/bugs"
	"mumak/internal/pmem"
	"mumak/internal/taxonomy"
)

// Apply plants the defect for knob id when enabled in set. clean must be
// the address of a persisted-and-unmodified line; scratch must be a PM
// slot reserved for the transient counter (never flushed by the app).
func Apply(e *pmem.Engine, set bugs.Set, id bugs.ID, clean, scratch uint64) {
	if !set.Has(id) {
		return
	}
	b, ok := bugs.Lookup(id)
	if !ok {
		return
	}
	switch b.Class {
	case taxonomy.RedundantFlush:
		e.CLWB(clean)
	case taxonomy.RedundantFence:
		e.SFence()
	case taxonomy.TransientData:
		e.Store64(scratch, e.Load64(scratch)+1)
	}
}

// ApplyN plants knobs "<app>/pf-<from>" through "<app>/pf-<to>"
// (inclusive) at this site.
func ApplyN(e *pmem.Engine, set bugs.Set, app string, from, to int, clean, scratch uint64) {
	for i := from; i <= to; i++ {
		Apply(e, set, NumberedID(app, i), clean, scratch)
	}
}

// NumberedID builds the registry ID of the i-th performance knob.
func NumberedID(app string, i int) bugs.ID {
	return bugs.ID(numbered(app, i))
}

func numbered(app string, i int) string {
	d1 := byte('0' + i/10)
	d2 := byte('0' + i%10)
	return app + "/pf-" + string([]byte{d1, d2})
}

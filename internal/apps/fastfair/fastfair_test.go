package fastfair_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/fastfair"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 4 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return fastfair.New(cfg) }
}

func denseWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 300, Seed: seed, Keyspace: 120, PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, fastfair.New(cfgBase()), denseWorkload(1))
}

func TestSemanticsManySplits(t *testing.T) {
	w := workload.Generate(workload.Config{N: 5000, Seed: 2, Keyspace: 2000})
	cfg := cfgBase()
	cfg.PoolSize = 16 << 20
	apptest.KVSemantics(t, fastfair.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), denseWorkload(3), 0)
}

func TestShiftLostKeyExposed(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable(fastfair.BugShiftLostKey)
	apptest.ExposesBug(t, mk(cfg), denseWorkload(4), 0)
}

func TestFusedFenceBugsHiddenFromPrefix(t *testing.T) {
	for _, id := range []bugs.ID{
		fastfair.BugShiftSingleFence,
		fastfair.BugSiblingSingleFence,
		fastfair.BugSplitFusedFence,
	} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.HiddenFromPrefix(t, mk(cfg), denseWorkload(5), 0)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("fastfair/pf-01", "fastfair/pf-02", "fastfair/pf-03")
	apptest.CrashConsistent(t, mk(cfg), denseWorkload(6), 0)
}

// Package fastfair reimplements FAST&FAIR (Hwang et al., FAST'18): a
// persistent B+-tree that tolerates transient inconsistency instead of
// logging. FAST shifts node entries with 8-byte atomic stores, persisting
// each step, so a crash leaves only sorted arrays with adjacent
// duplicates that readers (and recovery) resolve by taking the rightmost
// copy. FAIR splits link nodes through sibling pointers before the
// parent learns about them, so lookups hop right when a key exceeds a
// node's range.
//
// Keys are stored as key+1 so the zero key marks an empty slot; the
// element count lives in the root object under the insert-then-count
// discipline recovery knows how to repair.
//
// Bug knobs: fastfair/shift-lost-key (fault injection),
// fastfair/shift-single-fence, fastfair/sibling-single-fence and
// fastfair/split-fused-fence (hidden from program-order prefixes), and
// fastfair/pf-01..pf-14 (trace analysis).
package fastfair

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugShiftLostKey shifts left-to-right, overwriting entries before
	// copying them; an injected crash mid-shift loses keys.
	BugShiftLostKey bugs.ID = "fastfair/shift-lost-key"
	// BugShiftSingleFence fuses the per-step shift persists into one
	// trailing fence (hidden from prefixes).
	BugShiftSingleFence bugs.ID = "fastfair/shift-single-fence"
	// BugSiblingSingleFence fuses new-node population and the sibling
	// link under one fence (hidden from prefixes).
	BugSiblingSingleFence bugs.ID = "fastfair/sibling-single-fence"
	// BugSplitFusedFence fuses the sibling link and the source
	// truncation under one fence (hidden from prefixes).
	BugSplitFusedFence bugs.ID = "fastfair/split-fused-fence"
)

const (
	maxKeys = 16
	half    = maxKeys / 2

	nodeLeaf    = 0x00 // u64: 1 = leaf
	nodeSibling = 0x08 // u64: right sibling
	nodeHigh    = 0x10 // u64: high key (exclusive upper bound), 0 = +inf
	nodeKeys    = 0x18 // 16 * u64, key+1 encoding, 0 = empty
	nodeVals    = 0x98 // 17 * u64: values (leaf) or children (internal)
	nodeSize    = 0x120

	rootTree  = 0x00
	rootCount = 0x08
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
)

// App is the FAST&FAIR tree.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("fastfair", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "fastfair" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	leaf, err := t.newNode(true)
	if err != nil {
		return err
	}
	e.Store64(p.Root()+rootTree, leaf)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &tree{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	return t.validate()
}

type tree struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (t *tree) e() *pmem.Engine { return t.p.Engine() }
func (t *tree) root() uint64    { return t.p.Root() }

func (t *tree) newNode(leaf bool) (uint64, error) {
	off, err := t.p.AllocZeroed(nodeSize)
	if err != nil {
		return 0, err
	}
	if leaf {
		t.e().Store64(off+nodeLeaf, 1)
	}
	t.p.PersistDirty(off, nodeSize)
	return off, nil
}

func (t *tree) isLeaf(n uint64) bool       { return t.e().Load64(n+nodeLeaf) == 1 }
func (t *tree) sibling(n uint64) uint64    { return t.e().Load64(n + nodeSibling) }
func (t *tree) high(n uint64) uint64       { return t.e().Load64(n + nodeHigh) }
func (t *tree) key(n uint64, i int) uint64 { return t.e().Load64(n + nodeKeys + 8*uint64(i)) }
func (t *tree) val(n uint64, i int) uint64 { return t.e().Load64(n + nodeVals + 8*uint64(i)) }

func (t *tree) setKey(n uint64, i int, v uint64) { t.e().Store64(n+nodeKeys+8*uint64(i), v) }
func (t *tree) setVal(n uint64, i int, v uint64) { t.e().Store64(n+nodeVals+8*uint64(i), v) }

func (t *tree) persistKey(n uint64, i int) { t.p.Persist(n+nodeKeys+8*uint64(i), 8) }
func (t *tree) persistVal(n uint64, i int) { t.p.Persist(n+nodeVals+8*uint64(i), 8) }

// occupancy counts the dense prefix of non-empty key slots.
func (t *tree) occupancy(n uint64) int {
	for i := 0; i < maxKeys; i++ {
		if t.key(n, i) == 0 {
			return i
		}
	}
	return maxKeys
}

// findRight locates key (already +1 encoded) taking the rightmost
// duplicate; returns the index or -1.
func (t *tree) findRight(n uint64, ikey uint64) int {
	idx := -1
	for i := 0; i < maxKeys; i++ {
		k := t.key(n, i)
		if k == 0 || k > ikey {
			break
		}
		if k == ikey {
			idx = i
		}
	}
	return idx
}

// descend walks to the node responsible for ikey, hopping right via
// sibling pointers whenever the key is at or above a node's high key —
// the B-link-style FAIR rule that keeps the tree navigable while a split
// is only published through the sibling chain. The path of internal
// nodes is returned for splits.
func (t *tree) descend(ikey uint64) (leaf uint64, path []uint64) {
	n := t.e().Load64(t.root() + rootTree)
	for {
		for {
			h := t.high(n)
			sib := t.sibling(n)
			if h != 0 && ikey >= h && sib != 0 {
				n = sib
				continue
			}
			break
		}
		if t.isLeaf(n) {
			return n, path
		}
		path = append(path, n)
		occ := t.occupancy(n)
		i := 0
		for i < occ && ikey >= t.key(n, i) {
			i++
		}
		n = t.val(n, i)
	}
}

// Get implements harness.KV.
func (t *tree) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "fastfair", 4, 7, 0, t.root()+rootStats)
	ikey := key + 1
	leaf, _ := t.descend(ikey)
	if i := t.findRight(leaf, ikey); i >= 0 {
		return t.val(leaf, i), true, nil
	}
	return 0, false, nil
}

// shiftRight opens slot pos in node n (occupancy occ) using the FAST
// protocol: value then key per step, each persisted, right-to-left.
func (t *tree) shiftRight(n uint64, pos, occ int) {
	fused := t.cfg.Bugs.Has(BugShiftSingleFence)
	if t.cfg.Bugs.Has(BugShiftLostKey) {
		// BUG: left-to-right copying overwrites entries before they
		// are saved; a crash mid-way has already lost them.
		for j := pos; j < occ; j++ {
			t.setVal(n, j+1, t.val(n, j))
			t.persistVal(n, j+1)
			t.setKey(n, j+1, t.key(n, j))
			t.persistKey(n, j+1)
		}
		return
	}
	for j := occ - 1; j >= pos; j-- {
		t.setVal(n, j+1, t.val(n, j))
		if !fused {
			t.persistVal(n, j+1)
		}
		t.setKey(n, j+1, t.key(n, j))
		if !fused {
			t.persistKey(n, j+1)
		}
	}
	if fused {
		// BUG (hidden from prefixes): one fence covers the whole
		// shift; hardware may persist a later step before an earlier
		// one, losing an entry.
		t.p.Persist(n+nodeKeys, (maxKeys+maxKeys+1)*8)
	}
}

// insertAt writes an entry into slot pos (value before key, persisted).
func (t *tree) insertAt(n uint64, pos int, ikey, val uint64) {
	t.setVal(n, pos, val)
	t.persistVal(n, pos)
	t.setKey(n, pos, ikey)
	t.persistKey(n, pos)
}

// Put implements harness.KV.
func (t *tree) Put(key, val uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "fastfair", 1, 3, 0, t.root()+rootStats)
	ikey := key + 1
	for {
		leaf, path := t.descend(ikey)
		if i := t.findRight(leaf, ikey); i >= 0 {
			// Overwrite: one atomic persisted store.
			t.setVal(leaf, i, val)
			t.persistVal(leaf, i)
			return nil
		}
		occ := t.occupancy(leaf)
		if occ < maxKeys {
			pos := 0
			for pos < occ && t.key(leaf, pos) < ikey {
				pos++
			}
			t.shiftRight(leaf, pos, occ)
			t.insertAt(leaf, pos, ikey, val)
			cnt := t.root() + rootCount
			t.e().Store64(cnt, t.e().Load64(cnt)+1)
			t.p.Persist(cnt, 8)
			return nil
		}
		if err := t.split(leaf, path); err != nil {
			return err
		}
	}
}

// split divides full node n, B-link style: the new right node is fully
// built (including its high key), published through the sibling chain,
// then n's high key and truncation shrink its range, and finally the
// parent learns the separator.
func (t *tree) split(n uint64, path []uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "fastfair", 11, 14, 0, t.root()+rootStats)
	e := t.e()
	right, err := t.newNode(t.isLeaf(n))
	if err != nil {
		return err
	}
	sepKey := t.key(n, half) // first key of the upper half / moved separator

	if t.isLeaf(n) {
		for j := half; j < maxKeys; j++ {
			t.setKey(right, j-half, t.key(n, j))
			t.setVal(right, j-half, t.val(n, j))
		}
	} else {
		// The separator moves up: right keeps keys above it and the
		// children from half+1 onwards.
		for j := half + 1; j < maxKeys; j++ {
			t.setKey(right, j-half-1, t.key(n, j))
		}
		for j := half + 1; j <= maxKeys; j++ {
			t.setVal(right, j-half-1, t.val(n, j))
		}
	}
	e.Store64(right+nodeSibling, t.sibling(n))
	e.Store64(right+nodeHigh, t.high(n))

	fusedSib := t.cfg.Bugs.Has(BugSiblingSingleFence)
	fusedTrunc := t.cfg.Bugs.Has(BugSplitFusedFence)
	if fusedSib {
		// BUG (hidden from prefixes): the new node's contents and the
		// sibling link that publishes it share one fence.
		t.p.FlushDirty(right, nodeSize)
		e.Store64(n+nodeSibling, right)
		t.p.Flush(n+nodeSibling, 8)
		t.p.Drain()
	} else {
		t.p.PersistDirty(right, nodeSize)
		e.Store64(n+nodeSibling, right)
		t.p.Persist(n+nodeSibling, 8)
	}
	// Shrink n's range: keys at or above sepKey now live to the right.
	e.Store64(n+nodeHigh, sepKey)
	t.p.Persist(n+nodeHigh, 8)

	// Truncate the source from the top down so every intermediate
	// state keeps a dense sorted prefix.
	for j := maxKeys - 1; j >= half; j-- {
		t.setKey(n, j, 0)
		if !fusedTrunc {
			t.persistKey(n, j)
		} else {
			t.p.Flush(n+nodeKeys+8*uint64(j), 8)
		}
	}
	if fusedTrunc {
		// BUG (hidden from prefixes): the truncation races the high
		// key and sibling publication under the same fence on real
		// hardware.
		t.p.Drain()
	}

	// Insert the separator into the parent (or grow a new root).
	if len(path) == 0 {
		newRoot, err := t.newNode(false)
		if err != nil {
			return err
		}
		t.setKey(newRoot, 0, sepKey)
		t.setVal(newRoot, 0, n)
		t.setVal(newRoot, 1, right)
		t.p.PersistDirty(newRoot, nodeSize)
		e.Store64(t.root()+rootTree, newRoot)
		t.p.Persist(t.root()+rootTree, 8)
		return nil
	}
	parent := path[len(path)-1]
	if t.occupancy(parent) == maxKeys {
		// Split the parent first; the sibling chain keeps the tree
		// navigable, and the fresh descent finds the new parent.
		if err := t.split(parent, path[:len(path)-1]); err != nil {
			return err
		}
		_, npath := t.descend(sepKey)
		if len(npath) == 0 {
			return fmt.Errorf("fastfair: lost parent during cascading split")
		}
		parent = npath[len(npath)-1]
	}
	occ := t.occupancy(parent)
	pos := 0
	for pos < occ && t.key(parent, pos) < sepKey {
		pos++
	}
	// Shift keys and children right of the insertion point (FAST).
	for j := occ - 1; j >= pos; j-- {
		t.setVal(parent, j+2, t.val(parent, j+1))
		t.persistVal(parent, j+2)
		t.setKey(parent, j+1, t.key(parent, j))
		t.persistKey(parent, j+1)
	}
	t.setVal(parent, pos+1, right)
	t.persistVal(parent, pos+1)
	t.setKey(parent, pos, sepKey)
	t.persistKey(parent, pos)
	return nil
}

// Delete implements harness.KV: count-first, then a left shift that
// keeps intermediate states sorted-with-duplicates.
func (t *tree) Delete(key uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "fastfair", 8, 10, 0, t.root()+rootStats)
	ikey := key + 1
	leaf, _ := t.descend(ikey)
	pos := t.findRight(leaf, ikey)
	if pos < 0 {
		return nil
	}
	cnt := t.root() + rootCount
	t.e().Store64(cnt, t.e().Load64(cnt)-1)
	t.p.Persist(cnt, 8)
	occ := t.occupancy(leaf)
	for j := pos; j < occ-1; j++ {
		t.setVal(leaf, j, t.val(leaf, j+1))
		t.persistVal(leaf, j)
		t.setKey(leaf, j, t.key(leaf, j+1))
		t.persistKey(leaf, j)
	}
	t.setKey(leaf, occ-1, 0)
	t.persistKey(leaf, occ-1)
	return nil
}

// validate is the recovery consistency check: every node is in bounds,
// keys form dense sorted prefixes, leaves respect their high keys, the
// distinct key set collected over the sibling chain reconciles with the
// persisted counter (duplicates from interrupted shifts, displacements
// or splits are tolerated, as the FAST/FAIR protocols guarantee), and
// every chained key is reachable by a hopping descent.
func (t *tree) validate() error {
	e := t.e()
	rootNode := e.Load64(t.root() + rootTree)
	count := e.Load64(t.root() + rootCount)
	if rootNode == 0 {
		if count != 0 {
			return fmt.Errorf("fastfair: no tree but count=%d", count)
		}
		return nil
	}
	size := uint64(e.Size())
	checkNode := func(n uint64) error {
		if n%16 != 0 || n+nodeSize > size {
			return fmt.Errorf("fastfair: node 0x%x out of bounds", n)
		}
		prev := uint64(0)
		hole := false
		h := t.high(n)
		for i := 0; i < maxKeys; i++ {
			k := t.key(n, i)
			if k == 0 {
				hole = true
				continue
			}
			if hole {
				return fmt.Errorf("fastfair: node 0x%x has a hole before slot %d", n, i)
			}
			if k < prev {
				return fmt.Errorf("fastfair: node 0x%x unsorted at slot %d", n, i)
			}
			if h != 0 && k >= h && t.sibling(n) == 0 {
				return fmt.Errorf("fastfair: node 0x%x holds key beyond its high key with no sibling", n)
			}
			prev = k
		}
		return nil
	}
	// Find the leftmost leaf, checking internal nodes on the way.
	n := rootNode
	steps := 0
	for {
		if err := checkNode(n); err != nil {
			return err
		}
		if t.isLeaf(n) {
			break
		}
		if steps++; steps > 64 {
			return fmt.Errorf("fastfair: descent too deep (cycle?)")
		}
		n = t.val(n, 0)
	}
	// Walk the leaf chain collecting the distinct key set.
	keys := map[uint64]bool{}
	hops := 0
	for n != 0 {
		if err := checkNode(n); err != nil {
			return err
		}
		if hops++; hops > 1<<20 {
			return fmt.Errorf("fastfair: leaf chain cycle")
		}
		for i := 0; i < maxKeys; i++ {
			if k := t.key(n, i); k != 0 {
				keys[k] = true
			}
		}
		n = t.sibling(n)
	}
	// Every chained key must be reachable by a hopping descent.
	for k := range keys {
		leaf, _ := t.descend(k)
		if t.findRight(leaf, k) < 0 {
			return fmt.Errorf("fastfair: key %d in the chain but unreachable by descent", k-1)
		}
	}
	distinct := uint64(len(keys))
	switch {
	case distinct == count:
		return nil
	case distinct == count+1:
		e.Store64(t.root()+rootCount, distinct)
		t.p.Persist(t.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("fastfair: count=%d but %d distinct keys reachable", count, distinct)
	}
}

var _ harness.KVApplication = (*App)(nil)

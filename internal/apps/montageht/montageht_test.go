package montageht_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/montageht"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 2 << 20} }

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 250, Seed: seed, Keyspace: 100})
}

func TestKVSemanticsHashtable(t *testing.T) {
	apptest.KVSemantics(t, montageht.New(cfgBase()), smallWorkload(1))
}

func TestKVSemanticsLfHashtable(t *testing.T) {
	apptest.KVSemantics(t, montageht.NewLockFree(cfgBase()), smallWorkload(2))
}

func TestCrashConsistentFixedMontage(t *testing.T) {
	for _, mk := range []func() harness.Application{
		func() harness.Application { return montageht.New(cfgBase()) },
		func() harness.Application { return montageht.NewLockFree(cfgBase()) },
	} {
		apptest.CrashConsistent(t, mk, smallWorkload(3), 0)
	}
}

func TestBuggyMontageExposed(t *testing.T) {
	// Both §6.4 Montage bugs are active under MontageBuggy; fault
	// injection must expose at least one inconsistent crash state.
	cfg := cfgBase()
	cfg.MontageBuggy = true
	mk := func() harness.Application { return montageht.New(cfg) }
	apptest.ExposesBug(t, mk, smallWorkload(4), 0)
}

func TestBuggyMontageExposedLockFree(t *testing.T) {
	cfg := cfgBase()
	cfg.MontageBuggy = true
	mk := func() harness.Application { return montageht.NewLockFree(cfg) }
	apptest.ExposesBug(t, mk, smallWorkload(5), 0)
}

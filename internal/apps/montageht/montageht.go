// Package montageht provides the two Montage hashtable targets of the
// scalability and new-bug evaluations (§6.3, §6.4): Hashtable (plain
// stores) and LfHashtable (lock-free flavour publishing payloads through
// RMW instructions). Both keep their index volatile and rebuild it from
// Montage payloads on recovery, exactly the buffered-durability design
// that makes Montage independent of PMDK.
package montageht

import (
	"mumak/internal/apps"
	"mumak/internal/harness"
	"mumak/internal/montage"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// App is a Montage hashtable target.
type App struct {
	cfg      apps.Config
	lockFree bool
}

// New constructs the lock-based Hashtable.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

// NewLockFree constructs LfHashtable.
func NewLockFree(cfg apps.Config) *App { return &App{cfg: cfg, lockFree: true} }

func init() {
	apps.Register("montage-hashtable", func(cfg apps.Config) harness.Application { return New(cfg) })
	apps.Register("montage-lfhashtable", func(cfg apps.Config) harness.Application { return NewLockFree(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string {
	if a.lockFree {
		return "montage-lfhashtable"
	}
	return "montage-hashtable"
}

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

func (a *App) rtConfig() montage.Config {
	return montage.Config{
		BuggyAlloc: a.cfg.MontageBuggy || a.cfg.MontageBuggyAlloc,
		BuggyClose: a.cfg.MontageBuggy || a.cfg.MontageBuggyClose,
	}
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	_, err := montage.Create(e, a.rtConfig())
	return err
}

// Open implements harness.KVApplication: attach to the pool and rebuild
// the volatile index from payloads.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	rt, err := montage.Open(e, a.rtConfig())
	if err != nil {
		return nil, err
	}
	h := &table{rt: rt, app: a, index: make(map[uint64]uint64)}
	if err := rt.Scan(func(off, key, _ uint64) error {
		h.index[key] = off
		return nil
	}); err != nil {
		return nil, err
	}
	return h, nil
}

// Run implements harness.Application. The run ends with the allocator
// shutdown (Close), whose crash window is the second §6.4 Montage bug.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	h := kv.(*table)
	if err := harness.RunKV(h, w); err != nil {
		return err
	}
	h.rt.Close()
	return nil
}

// Recover implements harness.Application: reopen and validate the
// payload region against the allocator checkpoint and count.
func (a *App) Recover(e *pmem.Engine) error {
	if montage.NeverCreated(e) {
		return nil
	}
	rt, err := montage.Open(e, a.rtConfig())
	if err != nil {
		return err
	}
	return rt.Validate()
}

type table struct {
	rt    *montage.Runtime
	app   *App
	index map[uint64]uint64 // volatile: key -> payload offset
	ops   int
}

// Get implements harness.KV.
func (t *table) Get(key uint64) (uint64, bool, error) {
	off, ok := t.index[key]
	if !ok {
		return 0, false, nil
	}
	_, val := t.rt.Payload(off)
	return val, true, nil
}

// Put implements harness.KV.
func (t *table) Put(key, val uint64) error {
	t.tick()
	if off, ok := t.index[key]; ok {
		t.rt.UpdatePayload(off, val)
		return nil
	}
	off, err := t.rt.AllocPayload(key, val)
	if err != nil {
		return err
	}
	if t.app.lockFree {
		// The lock-free flavour publishes through a CAS on the payload
		// state word, giving the run an RMW-heavy instruction mix.
		t.rt.Engine().CAS64(0x38, 0, 0) // epoch-guard check, fence semantics
	}
	t.index[key] = off
	t.rt.SetCount(uint64(len(t.index)))
	return nil
}

// Delete implements harness.KV.
func (t *table) Delete(key uint64) error {
	t.tick()
	off, ok := t.index[key]
	if !ok {
		return nil
	}
	// Count first: the in-between state has one extra live payload,
	// which recovery repairs.
	delete(t.index, key)
	t.rt.SetCount(uint64(len(t.index)))
	t.rt.FreePayload(off)
	return nil
}

// tick advances the Montage epoch periodically (buffered durability).
func (t *table) tick() {
	t.ops++
	if t.ops%64 == 0 {
		t.rt.AdvanceEpoch()
	}
}

var _ harness.KVApplication = (*App)(nil)

package rbtree_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/rbtree"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{SPT: true, PoolSize: 1 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return rbtree.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 120, Seed: seed, Keyspace: 40})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, rbtree.New(cfgBase()), smallWorkload(1))
}

func TestDeepSemantics(t *testing.T) {
	w := workload.Generate(workload.Config{N: 4000, Seed: 9, Keyspace: 2000})
	cfg := apps.Config{SPT: true, PoolSize: 4 << 20}
	apptest.KVSemantics(t, rbtree.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), smallWorkload(2), 160)
}

func TestCrashConsistentBatchMode(t *testing.T) {
	cfg := apps.Config{PoolSize: 1 << 20}
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(3), 120)
}

func TestSeededCorrectnessBugsAreExposed(t *testing.T) {
	for _, id := range []bugs.ID{
		rbtree.BugRotateMissingAddRange,
		rbtree.BugCountOutsideTx,
	} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.ExposesBug(t, mk(cfg), smallWorkload(4), 400)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("rbtree/pf-01", "rbtree/pf-02", "rbtree/pf-03")
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(5), 120)
}

// Package rbtree reimplements PMDK's libpmemobj rbtree example data
// store: a persistent red-black tree whose mutations run inside undo-log
// transactions. Deletion splices without rebalancing (black-height is
// not preserved), as several persistent red-black variants do; the
// recovery validation checks ordering, colour constraints, parent links
// and the element count.
//
// Bug knobs: two seeded correctness defects (fault injection) and eight
// numbered performance defects (rbtree/pf-01..pf-08, trace analysis).
package rbtree

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugRotateMissingAddRange omits the undo-log registration of the
	// pointer writes performed by rotations.
	BugRotateMissingAddRange bugs.ID = "rbtree/rotate-missing-addrange"
	// BugCountOutsideTx maintains the element count with a
	// non-transactional persisted store.
	BugCountOutsideTx bugs.ID = "rbtree/count-outside-tx"
)

const (
	red   = 1
	black = 0

	nodeKey    = 0x00
	nodeVal    = 0x08
	nodeColor  = 0x10
	nodeLeft   = 0x18
	nodeRight  = 0x20
	nodeParent = 0x28
	nodeSize   = 0x30

	rootTree  = 0x00
	rootCount = 0x08
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
)

// App is the rbtree data store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("rbtree", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string {
	if a.cfg.SPT {
		return "rbtree-spt"
	}
	return "rbtree"
}

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	e.Store64(p.Root()+rootTree, 0)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &tree{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application (batch transaction unless SPT).
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	t := kv.(*tree)
	if !a.cfg.SPT {
		tx, err := t.p.Begin()
		if err != nil {
			return err
		}
		t.batch = tx
		defer func() { t.batch = nil }()
		if err := harness.RunKV(t, w); err != nil {
			return err
		}
		return tx.Commit()
	}
	return harness.RunKV(t, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	return t.validate()
}

type tree struct {
	p     *pmdk.Pool
	cfg   apps.Config
	batch *pmdk.Tx
}

func (t *tree) e() *pmem.Engine { return t.p.Engine() }
func (t *tree) root() uint64    { return t.p.Root() }

func (t *tree) update(f func(tx *pmdk.Tx) error) error {
	if t.batch != nil {
		return f(t.batch)
	}
	tx, err := t.p.Begin()
	if err != nil {
		return err
	}
	if err := f(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (t *tree) key(n uint64) uint64    { return t.e().Load64(n + nodeKey) }
func (t *tree) val(n uint64) uint64    { return t.e().Load64(n + nodeVal) }
func (t *tree) color(n uint64) uint64  { return t.e().Load64(n + nodeColor) }
func (t *tree) left(n uint64) uint64   { return t.e().Load64(n + nodeLeft) }
func (t *tree) right(n uint64) uint64  { return t.e().Load64(n + nodeRight) }
func (t *tree) parent(n uint64) uint64 { return t.e().Load64(n + nodeParent) }

// addNode registers a node with the undo log. Under the rotation bug the
// developer "persisted instead of logging": rotation writes skip the
// undo log and are made durable directly, so a crash that rolls the
// transaction back leaves the rotated pointers in place — the classic
// pmem_persist-where-tx_add_range-was-needed mistake.
func (t *tree) addNode(tx *pmdk.Tx, n uint64, rotation bool) error {
	if rotation && t.cfg.Bugs.Has(BugRotateMissingAddRange) {
		// BUG: flush the node as-is instead of snapshotting it. The
		// persist also creates a failure point inside the rotation
		// window itself.
		t.p.Persist(n, nodeSize)
		return nil
	}
	return tx.AddRange(n, nodeSize)
}

// Get implements harness.KV.
func (t *tree) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "rbtree", 4, 6, 0, t.root()+rootStats)
	n := t.e().Load64(t.root() + rootTree)
	for n != 0 {
		switch k := t.key(n); {
		case key == k:
			return t.val(n), true, nil
		case key < k:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	return 0, false, nil
}

// Put implements harness.KV.
func (t *tree) Put(key, val uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "rbtree", 1, 3, 0, t.root()+rootStats)
	return t.update(func(tx *pmdk.Tx) error {
		// Standard BST descent.
		var parent uint64
		n := t.e().Load64(t.root() + rootTree)
		for n != 0 {
			k := t.key(n)
			if key == k {
				return tx.Store64(n+nodeVal, val) // overwrite
			}
			parent = n
			if key < k {
				n = t.left(n)
			} else {
				n = t.right(n)
			}
		}
		node, err := t.p.AllocZeroed(nodeSize)
		if err != nil {
			return err
		}
		if err := tx.AddRange(node, nodeSize); err != nil {
			return err
		}
		e := t.e()
		e.Store64(node+nodeKey, key)
		e.Store64(node+nodeVal, val)
		e.Store64(node+nodeColor, red)
		e.Store64(node+nodeParent, parent)
		if parent == 0 {
			if err := tx.Store64(t.root()+rootTree, node); err != nil {
				return err
			}
		} else {
			side := uint64(nodeRight)
			if key < t.key(parent) {
				side = nodeLeft
			}
			if err := tx.Store64(parent+side, node); err != nil {
				return err
			}
		}
		if err := t.fixInsert(tx, node); err != nil {
			return err
		}
		return t.bumpCount(tx, 1)
	})
}

func (t *tree) bumpCount(tx *pmdk.Tx, delta uint64) error {
	addr := t.root() + rootCount
	cur := t.e().Load64(addr)
	if t.cfg.Bugs.Has(BugCountOutsideTx) {
		// BUG: non-transactional persisted count update.
		t.e().Store64(addr, cur+delta)
		t.p.Persist(addr, 8)
		return nil
	}
	return tx.Store64(addr, cur+delta)
}

// fixInsert restores the red-black constraints after inserting node n.
func (t *tree) fixInsert(tx *pmdk.Tx, n uint64) error {
	e := t.e()
	for {
		p := t.parent(n)
		if p == 0 {
			if err := t.addNode(tx, n, false); err != nil {
				return err
			}
			e.Store64(n+nodeColor, black)
			return nil
		}
		if t.color(p) == black {
			return nil
		}
		g := t.parent(p)
		if g == 0 {
			if err := t.addNode(tx, p, false); err != nil {
				return err
			}
			e.Store64(p+nodeColor, black)
			return nil
		}
		var uncle uint64
		if t.left(g) == p {
			uncle = t.right(g)
		} else {
			uncle = t.left(g)
		}
		if uncle != 0 && t.color(uncle) == red {
			for _, m := range []uint64{p, uncle, g} {
				if err := t.addNode(tx, m, false); err != nil {
					return err
				}
			}
			e.Store64(p+nodeColor, black)
			e.Store64(uncle+nodeColor, black)
			e.Store64(g+nodeColor, red)
			n = g
			continue
		}
		// Rotation cases.
		if t.left(g) == p {
			if t.right(p) == n {
				if err := t.rotateLeft(tx, p); err != nil {
					return err
				}
				n, p = p, n
			}
			if err := t.rotateRight(tx, g); err != nil {
				return err
			}
		} else {
			if t.left(p) == n {
				if err := t.rotateRight(tx, p); err != nil {
					return err
				}
				n, p = p, n
			}
			if err := t.rotateLeft(tx, g); err != nil {
				return err
			}
		}
		if err := t.addNode(tx, p, true); err != nil {
			return err
		}
		if err := t.addNode(tx, g, true); err != nil {
			return err
		}
		e.Store64(p+nodeColor, black)
		e.Store64(g+nodeColor, red)
		return nil
	}
}

// replaceChild points the parent link of old at new.
func (t *tree) replaceChild(tx *pmdk.Tx, parent, old, new uint64, rotation bool) error {
	if parent == 0 {
		if rotation && t.cfg.Bugs.Has(BugRotateMissingAddRange) {
			t.e().Store64(t.root()+rootTree, new)
			return nil
		}
		return tx.Store64(t.root()+rootTree, new)
	}
	side := uint64(nodeRight)
	if t.left(parent) == old {
		side = nodeLeft
	}
	if err := t.addNode(tx, parent, rotation); err != nil {
		return err
	}
	t.e().Store64(parent+side, new)
	return nil
}

func (t *tree) rotateLeft(tx *pmdk.Tx, x uint64) error {
	e := t.e()
	y := t.right(x)
	for _, m := range []uint64{x, y} {
		if err := t.addNode(tx, m, true); err != nil {
			return err
		}
	}
	p := t.parent(x)
	yl := t.left(y)
	e.Store64(x+nodeRight, yl)
	if yl != 0 {
		if err := t.addNode(tx, yl, true); err != nil {
			return err
		}
		e.Store64(yl+nodeParent, x)
	}
	if err := t.replaceChild(tx, p, x, y, true); err != nil {
		return err
	}
	e.Store64(y+nodeParent, p)
	e.Store64(y+nodeLeft, x)
	e.Store64(x+nodeParent, y)
	return nil
}

func (t *tree) rotateRight(tx *pmdk.Tx, x uint64) error {
	e := t.e()
	y := t.left(x)
	for _, m := range []uint64{x, y} {
		if err := t.addNode(tx, m, true); err != nil {
			return err
		}
	}
	p := t.parent(x)
	yr := t.right(y)
	e.Store64(x+nodeLeft, yr)
	if yr != 0 {
		if err := t.addNode(tx, yr, true); err != nil {
			return err
		}
		e.Store64(yr+nodeParent, x)
	}
	if err := t.replaceChild(tx, p, x, y, true); err != nil {
		return err
	}
	e.Store64(y+nodeParent, p)
	e.Store64(y+nodeRight, x)
	e.Store64(x+nodeParent, y)
	return nil
}

// Delete implements harness.KV: BST splice without rebalancing; spliced
// children are painted black to preserve the no-red-red invariant.
func (t *tree) Delete(key uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "rbtree", 7, 8, 0, t.root()+rootStats)
	return t.update(func(tx *pmdk.Tx) error {
		e := t.e()
		n := e.Load64(t.root() + rootTree)
		for n != 0 && t.key(n) != key {
			if key < t.key(n) {
				n = t.left(n)
			} else {
				n = t.right(n)
			}
		}
		if n == 0 {
			return nil
		}
		// Two children: swap in the successor's key/value, then splice
		// the successor.
		if t.left(n) != 0 && t.right(n) != 0 {
			s := t.right(n)
			for t.left(s) != 0 {
				s = t.left(s)
			}
			if err := t.addNode(tx, n, false); err != nil {
				return err
			}
			e.Store64(n+nodeKey, t.key(s))
			e.Store64(n+nodeVal, t.val(s))
			n = s
		}
		child := t.left(n)
		if child == 0 {
			child = t.right(n)
		}
		if err := t.replaceChild(tx, t.parent(n), n, child, false); err != nil {
			return err
		}
		if child != 0 {
			if err := t.addNode(tx, child, false); err != nil {
				return err
			}
			e.Store64(child+nodeParent, t.parent(n))
			e.Store64(child+nodeColor, black)
		}
		tx.FreeOnCommit(n, nodeSize)
		addr := t.root() + rootCount
		cur := e.Load64(addr)
		if t.cfg.Bugs.Has(BugCountOutsideTx) {
			e.Store64(addr, cur-1)
			t.p.Persist(addr, 8)
			return nil
		}
		return tx.Store64(addr, cur-1)
	})
}

// validate checks order, colours, parent links, bounds and count.
func (t *tree) validate() error {
	rootOff := t.e().Load64(t.root() + rootTree)
	count := t.e().Load64(t.root() + rootCount)
	if rootOff == 0 {
		if count != 0 {
			return fmt.Errorf("rbtree: empty tree but count=%d", count)
		}
		return nil
	}
	if t.color(rootOff) != black {
		return fmt.Errorf("rbtree: red root")
	}
	var reachable uint64
	var walk func(n, parent uint64, lo, hi uint64, haveLo, haveHi bool) error
	walk = func(n, parent, lo, hi uint64, haveLo, haveHi bool) error {
		if n == 0 {
			return nil
		}
		if n%16 != 0 || n+nodeSize > uint64(t.e().Size()) {
			return fmt.Errorf("rbtree: node offset 0x%x out of bounds", n)
		}
		reachable++
		if reachable > count+8 {
			return fmt.Errorf("rbtree: more nodes reachable than count %d permits (cycle?)", count)
		}
		if t.parent(n) != parent {
			return fmt.Errorf("rbtree: node 0x%x parent link broken", n)
		}
		k := t.key(n)
		if haveLo && k <= lo {
			return fmt.Errorf("rbtree: order violation at key %d", k)
		}
		if haveHi && k >= hi {
			return fmt.Errorf("rbtree: order violation at key %d", k)
		}
		if t.color(n) == red {
			if l := t.left(n); l != 0 && t.color(l) == red {
				return fmt.Errorf("rbtree: red-red violation below key %d", k)
			}
			if r := t.right(n); r != 0 && t.color(r) == red {
				return fmt.Errorf("rbtree: red-red violation below key %d", k)
			}
		}
		if err := walk(t.left(n), n, lo, k, haveLo, true); err != nil {
			return err
		}
		return walk(t.right(n), n, k, hi, true, haveHi)
	}
	if err := walk(rootOff, 0, 0, 0, false, false); err != nil {
		return err
	}
	switch {
	case reachable == count:
		return nil
	case reachable == count+1:
		t.e().Store64(t.root()+rootCount, reachable)
		t.p.Persist(t.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("rbtree: count=%d but %d nodes reachable", count, reachable)
	}
}

var _ harness.KVApplication = (*App)(nil)

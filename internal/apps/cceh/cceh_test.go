package cceh_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/cceh"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 4 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return cceh.New(cfg) }
}

// denseWorkload triggers several segment splits and at least one
// directory doubling (initial capacity: 4 segments x 16 slots).
func denseWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 400, Seed: seed, Keyspace: 200, PutFrac: 2, GetFrac: 1, DeleteFrac: 1})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, cceh.New(cfgBase()), denseWorkload(1))
}

func TestSemanticsManySplits(t *testing.T) {
	w := workload.Generate(workload.Config{N: 4000, Seed: 2, Keyspace: 1600})
	cfg := cfgBase()
	cfg.PoolSize = 16 << 20
	apptest.KVSemantics(t, cceh.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), denseWorkload(3), 300)
}

func TestFaultInjectionBugsExposed(t *testing.T) {
	for _, id := range []bugs.ID{cceh.BugDirPublishEarly, cceh.BugSplitMoveOrder} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.ExposesBug(t, mk(cfg), denseWorkload(4), 350)
		})
	}
}

func TestFusedFenceBugsHiddenFromPrefix(t *testing.T) {
	for _, id := range []bugs.ID{
		cceh.BugSplitSingleFence,
		cceh.BugDirDoubleFused,
		cceh.BugClearFusedFence,
	} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.HiddenFromPrefix(t, mk(cfg), denseWorkload(5), 300)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("cceh/pf-01", "cceh/pf-02", "cceh/pf-03")
	apptest.CrashConsistent(t, mk(cfg), denseWorkload(6), 200)
}

// Package cceh reimplements CCEH (Nam et al., FAST'19): cacheline-
// conscious extendible hashing for PM. A directory of 2^G entries maps
// hash prefixes to segments with local depths; full segments split,
// doubling the directory when the local depth reaches the global depth.
// Stale slots left in the split source are lazily ignored: an item
// counts only when the directory entry for its hash prefix points at
// the segment holding it.
//
// Bug knobs: cceh/dir-publish-early and cceh/split-move-order (fault
// injection), cceh/split-single-fence, cceh/dir-double-fused and
// cceh/clear-fused-fence (hidden from program-order prefixes), and
// cceh/pf-01..pf-12 (trace analysis).
package cceh

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugDirPublishEarly updates directory entries to the new segment
	// before its contents exist.
	BugDirPublishEarly bugs.ID = "cceh/dir-publish-early"
	// BugSplitMoveOrder clears the source slots before the directory
	// points at the copies.
	BugSplitMoveOrder bugs.ID = "cceh/split-move-order"
	// BugSplitSingleFence fuses segment population and directory
	// publication under one fence (hidden from prefixes).
	BugSplitSingleFence bugs.ID = "cceh/split-single-fence"
	// BugDirDoubleFused fuses new-directory contents and the metadata
	// switch under one fence (hidden from prefixes).
	BugDirDoubleFused bugs.ID = "cceh/dir-double-fused"
	// BugClearFusedFence fuses the directory republication and the
	// stale-slot clearing under one fence (hidden from prefixes).
	BugClearFusedFence bugs.ID = "cceh/clear-fused-fence"
)

const (
	slotsPerSeg = 16
	probeLen    = 8

	slotTag  = 0x00
	slotKey  = 0x08
	slotVal  = 0x10
	slotSize = 0x18

	segDepth = 0x00 // u64 local depth
	segSlots = 0x10
	segSize  = segSlots + slotsPerSeg*slotSize

	rootMeta  = 0x00 // u64: dir offset | global depth (dir is 16-aligned)
	rootCount = 0x08
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
	initialG  = 2 // 4 directory entries
)

// App is the CCEH store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("cceh", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "cceh" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	c := &cceh{p: p, cfg: a.cfg}
	dir, err := p.AllocZeroed(8 << initialG)
	if err != nil {
		return err
	}
	for i := uint64(0); i < 1<<initialG; i++ {
		seg, err := c.newSegment(initialG)
		if err != nil {
			return err
		}
		e.Store64(dir+8*i, seg)
	}
	p.Persist(dir, 8<<initialG)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root()+rootCount, 8)
	e.Store64(p.Root()+rootMeta, dir|initialG)
	p.Persist(p.Root()+rootMeta, 8)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &cceh{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	c := &cceh{p: p, cfg: a.cfg}
	return c.validate()
}

type cceh struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (c *cceh) e() *pmem.Engine { return c.p.Engine() }
func (c *cceh) root() uint64    { return c.p.Root() }

func (c *cceh) meta() (dir uint64, g uint) {
	m := c.e().Load64(c.root() + rootMeta)
	return m &^ 0xf, uint(m & 0xf)
}

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	key *= 0xC4CEB9FE1A85EC53
	key ^= key >> 33
	return key
}

// prefix returns the directory index of key under global depth g.
func prefix(key uint64, g uint) uint64 { return hash(key) >> (64 - g) }

// homeSlot returns the preferred slot index within a segment.
func homeSlot(key uint64) uint64 { return hash(key) & (slotsPerSeg - 1) }

func (c *cceh) newSegment(depth uint) (uint64, error) {
	seg, err := c.p.AllocZeroed(segSize)
	if err != nil {
		return 0, err
	}
	c.e().Store64(seg+segDepth, uint64(depth))
	c.p.PersistDirty(seg, segSize)
	return seg, nil
}

func (c *cceh) segFor(key uint64) (seg uint64, dir uint64, g uint) {
	dir, g = c.meta()
	seg = c.e().Load64(dir + 8*prefix(key, g))
	return seg, dir, g
}

// find returns the slot address holding key within seg, or 0.
func (c *cceh) find(seg, key uint64) uint64 {
	home := homeSlot(key)
	for i := uint64(0); i < probeLen; i++ {
		slot := seg + segSlots + ((home+i)&(slotsPerSeg-1))*slotSize
		if c.e().Load64(slot+slotTag) == 1 && c.e().Load64(slot+slotKey) == key {
			return slot
		}
	}
	return 0
}

// Get implements harness.KV.
func (c *cceh) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(c.e(), c.cfg.Bugs, "cceh", 4, 6, 0, c.root()+rootStats)
	seg, _, _ := c.segFor(key)
	if slot := c.find(seg, key); slot != 0 {
		return c.e().Load64(slot + slotVal), true, nil
	}
	return 0, false, nil
}

// Put implements harness.KV.
func (c *cceh) Put(key, val uint64) error {
	perfbug.ApplyN(c.e(), c.cfg.Bugs, "cceh", 1, 3, 0, c.root()+rootStats)
	for {
		seg, dir, g := c.segFor(key)
		if slot := c.find(seg, key); slot != 0 {
			c.e().Store64(slot+slotVal, val)
			c.p.Persist(slot+slotVal, 8)
			return nil
		}
		home := homeSlot(key)
		for i := uint64(0); i < probeLen; i++ {
			slot := seg + segSlots + ((home+i)&(slotsPerSeg-1))*slotSize
			if c.e().Load64(slot+slotTag) != 0 {
				continue
			}
			// Correct slot-write order: key/value first, tag last,
			// count after the item exists.
			c.e().Store64(slot+slotKey, key)
			c.e().Store64(slot+slotVal, val)
			c.p.Persist(slot+slotKey, 16)
			c.e().Store64(slot+slotTag, 1)
			c.p.Persist(slot+slotTag, 8)
			cnt := c.root() + rootCount
			c.e().Store64(cnt, c.e().Load64(cnt)+1)
			c.p.Persist(cnt, 8)
			return nil
		}
		if err := c.split(seg, dir, g, key); err != nil {
			return err
		}
	}
}

// Delete implements harness.KV.
func (c *cceh) Delete(key uint64) error {
	perfbug.ApplyN(c.e(), c.cfg.Bugs, "cceh", 7, 9, 0, c.root()+rootStats)
	seg, _, _ := c.segFor(key)
	slot := c.find(seg, key)
	if slot == 0 {
		return nil
	}
	cnt := c.root() + rootCount
	c.e().Store64(cnt, c.e().Load64(cnt)-1)
	c.p.Persist(cnt, 8)
	c.e().Store64(slot+slotTag, 0)
	c.p.Persist(slot+slotTag, 8)
	return nil
}

// split divides the segment owning key, doubling the directory first
// when the local depth has reached the global depth.
func (c *cceh) split(seg, dir uint64, g uint, key uint64) error {
	perfbug.ApplyN(c.e(), c.cfg.Bugs, "cceh", 10, 12, 0, c.root()+rootStats)
	e := c.e()
	depth := uint(e.Load64(seg + segDepth))
	if depth == g {
		var err error
		dir, g, err = c.doubleDirectory(dir, g)
		if err != nil {
			return err
		}
	}
	// New segment receives the items whose next prefix bit is 1.
	newSeg, err := c.p.AllocZeroed(segSize)
	if err != nil {
		return err
	}
	e.Store64(newSeg+segDepth, uint64(depth+1))

	publish := func() {
		// Point the 1-half of the old segment's directory entries at
		// the new segment.
		first := ^uint64(0)
		for i := uint64(0); i < 1<<g; i++ {
			if e.Load64(dir+8*i) == seg {
				if first == ^uint64(0) {
					first = i
				}
				// Entries in the upper half of the old segment's
				// 2^(g-depth) aligned group move.
				groupSize := uint64(1) << (g - depth)
				if i-first >= groupSize/2 {
					e.Store64(dir+8*i, newSeg)
					c.p.Flush(dir+8*i, 8)
				}
			}
		}
	}
	copyItems := func() {
		for s := uint64(0); s < slotsPerSeg; s++ {
			slot := seg + segSlots + s*slotSize
			if e.Load64(slot+slotTag) != 1 {
				continue
			}
			k := e.Load64(slot + slotKey)
			if (hash(k)>>(64-depth-1))&1 == 0 {
				continue
			}
			home := homeSlot(k)
			for i := uint64(0); i < probeLen; i++ {
				dst := newSeg + segSlots + ((home+i)&(slotsPerSeg-1))*slotSize
				if e.Load64(dst+slotTag) != 0 {
					continue
				}
				e.Store64(dst+slotKey, k)
				e.Store64(dst+slotVal, e.Load64(slot+slotVal))
				e.Store64(dst+slotTag, 1)
				break
			}
		}
		c.p.FlushDirty(newSeg, segSize)
	}
	clearStale := func() {
		for s := uint64(0); s < slotsPerSeg; s++ {
			slot := seg + segSlots + s*slotSize
			if e.Load64(slot+slotTag) != 1 {
				continue
			}
			k := e.Load64(slot + slotKey)
			if (hash(k)>>(64-depth-1))&1 == 1 {
				e.Store64(slot+slotTag, 0)
				c.p.Flush(slot+slotTag, 8)
			}
		}
	}

	switch {
	case c.cfg.Bugs.Has(BugDirPublishEarly):
		// BUG: the directory points at the new segment before its
		// contents exist.
		publish()
		c.p.Drain()
		copyItems()
		c.p.Drain()
	case c.cfg.Bugs.Has(BugSplitMoveOrder):
		// BUG: the source slots are cleared before the directory
		// points at the copies.
		copyItems()
		c.p.Drain()
		clearStale()
		c.p.Drain()
		publish()
		c.p.Drain()
	case c.cfg.Bugs.Has(BugSplitSingleFence):
		// BUG (hidden from prefixes): population and publication share
		// one fence; hardware may persist the directory first.
		copyItems()
		publish()
		c.p.Drain()
		clearStale()
		c.p.Drain()
	case c.cfg.Bugs.Has(BugClearFusedFence):
		// BUG (hidden from prefixes): publication and stale-clearing
		// share one fence; hardware may clear before publishing.
		copyItems()
		c.p.Drain()
		publish()
		clearStale()
		c.p.Drain()
	default:
		// Correct protocol: populate, fence, publish, fence, clear
		// stale source slots, fence.
		copyItems()
		c.p.Drain()
		publish()
		c.p.Drain()
		clearStale()
		c.p.Drain()
	}
	// Bump the surviving segment's local depth last; it only guides
	// future splits.
	e.Store64(seg+segDepth, uint64(depth+1))
	c.p.Persist(seg+segDepth, 8)
	return nil
}

// doubleDirectory doubles the directory and publishes the new one with
// an atomic metadata switch.
func (c *cceh) doubleDirectory(dir uint64, g uint) (uint64, uint, error) {
	e := c.e()
	newG := g + 1
	newDir, err := c.p.AllocZeroed(8 << newG)
	if err != nil {
		return 0, 0, err
	}
	for i := uint64(0); i < 1<<g; i++ {
		seg := e.Load64(dir + 8*i)
		e.Store64(newDir+8*(2*i), seg)
		e.Store64(newDir+8*(2*i+1), seg)
	}
	if c.cfg.Bugs.Has(BugDirDoubleFused) {
		// BUG (hidden from prefixes): directory contents and the
		// metadata switch share one fence.
		c.p.Flush(newDir, 8<<newG)
		e.Store64(c.root()+rootMeta, newDir|uint64(newG))
		c.p.Flush(c.root()+rootMeta, 8)
		c.p.Drain()
	} else {
		c.p.Persist(newDir, 8<<newG)
		e.Store64(c.root()+rootMeta, newDir|uint64(newG))
		c.p.Persist(c.root()+rootMeta, 8)
	}
	c.p.Free(dir, 8<<g)
	return newDir, newG, nil
}

// validate is the recovery consistency check: directory and segment
// bounds, probe-window placement, and the owned-item count (stale split
// leftovers — slots whose directory entry points elsewhere — are
// ignored, as the lookup path ignores them too).
func (c *cceh) validate() error {
	e := c.e()
	dir, g := c.meta()
	count := e.Load64(c.root() + rootCount)
	if dir == 0 && count == 0 {
		return nil // root never initialised
	}
	size := uint64(e.Size())
	if dir == 0 || g == 0 || g > 30 || dir+(8<<g) > size {
		return fmt.Errorf("cceh: directory metadata invalid (0x%x, depth %d)", dir, g)
	}
	segs := map[uint64][]uint64{} // segment -> dir indices
	for i := uint64(0); i < 1<<g; i++ {
		seg := e.Load64(dir + 8*i)
		if seg == 0 || seg%16 != 0 || seg+segSize > size {
			return fmt.Errorf("cceh: directory entry %d invalid (0x%x)", i, seg)
		}
		segs[seg] = append(segs[seg], i)
	}
	var owned uint64
	for seg, indices := range segs {
		depth := e.Load64(seg + segDepth)
		if depth > uint64(g) {
			return fmt.Errorf("cceh: segment 0x%x local depth %d exceeds global %d", seg, depth, g)
		}
		for s := uint64(0); s < slotsPerSeg; s++ {
			slot := seg + segSlots + s*slotSize
			if e.Load64(slot+slotTag) != 1 {
				continue
			}
			k := e.Load64(slot + slotKey)
			if e.Load64(dir+8*prefix(k, g)) != seg {
				continue // stale split leftover, ignored by lookups
			}
			// The slot must lie within the probe window of the key's
			// home slot.
			home := homeSlot(k)
			dist := (s - home) & (slotsPerSeg - 1)
			if dist >= probeLen {
				return fmt.Errorf("cceh: key %d outside its probe window in segment 0x%x", k, seg)
			}
			owned++
		}
		_ = indices
	}
	switch {
	case owned == count:
		return nil
	case owned == count+1:
		e.Store64(c.root()+rootCount, owned)
		c.p.Persist(c.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("cceh: count=%d but %d items owned", count, owned)
	}
}

var _ harness.KVApplication = (*App)(nil)

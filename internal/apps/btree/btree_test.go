package btree_test

import (
	"testing"

	"mumak/internal/pmem"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/btree"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return btree.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 120, Seed: seed, Keyspace: 40})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, btree.New(apps.Config{SPT: true, PoolSize: 1 << 20}), smallWorkload(1))
}

func TestKVSemanticsBatchTx(t *testing.T) {
	// Batch mode keeps one transaction open during the run; semantics
	// must match regardless.
	app := btree.New(apps.Config{PoolSize: 1 << 20})
	w := smallWorkload(6)
	eng, sig, err := harness.Execute(app, w, pmem.Options{})
	if err != nil || sig != nil {
		t.Fatalf("run: err=%v sig=%v", err, sig)
	}
	kv, err := app.Open(eng)
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	for _, op := range w.Ops {
		switch op.Kind {
		case workload.Put:
			model[op.Key] = op.Val
		case workload.Delete:
			delete(model, op.Key)
		}
	}
	for k, v := range model {
		got, ok, err := kv.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("get(%d) = (%d,%v,%v), want %d", k, got, ok, err, v)
		}
	}
}

func TestDeepTreeSemantics(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3000, Seed: 7, Keyspace: 1500})
	apptest.KVSemantics(t, btree.New(apps.Config{SPT: true, PoolSize: 1 << 20}), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(apps.Config{SPT: true, PoolSize: 1 << 20}), smallWorkload(2), 160)
}

func TestCrashConsistentBatchMode(t *testing.T) {
	apptest.CrashConsistent(t, mk(apps.Config{PoolSize: 1 << 20}), smallWorkload(3), 120)
}

func TestSeededCorrectnessBugsAreExposed(t *testing.T) {
	for _, id := range []bugs.ID{
		btree.BugSplitMissingAddRange,
		btree.BugRootPublishOutsideTx,
		btree.BugCountOutsideTx,
	} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable(id)}
			apptest.ExposesBug(t, mk(cfg), smallWorkload(4), 400)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	// Performance defects never create inconsistent states; every
	// crash point must still recover.
	cfg := apps.Config{SPT: true, PoolSize: 1 << 20, Bugs: bugs.Enable(
		"btree/pf-01", "btree/pf-02", "btree/pf-03", "btree/pf-10")}
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(5), 120)
}

// Package btree reimplements PMDK's libpmemobj btree example data store:
// a persistent B-tree of order 8 whose mutations run inside undo-log
// transactions. It is one of the three primary performance-benchmark
// targets (§6.1).
//
// Bug knobs (see internal/bugs): three seeded correctness defects
// detectable by fault injection, and ten numbered performance defects (btree/pf-01..pf-10)
// detectable by trace analysis.
package btree

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugSplitMissingAddRange omits the undo-log registration of the
	// parent's child-shift during a node split: an injected crash
	// rolls the transaction back but leaves the parent half-updated.
	BugSplitMissingAddRange bugs.ID = "btree/split-missing-addrange"
	// BugRootPublishOutsideTx publishes the new root pointer with a
	// direct persisted store before the split transaction commits.
	BugRootPublishOutsideTx bugs.ID = "btree/root-publish-outside-tx"
	// BugCountOutsideTx maintains the element count with a
	// non-transactional persisted store.
	BugCountOutsideTx bugs.ID = "btree/count-outside-tx"
)

const (
	order   = 8 // children per node
	maxKeys = order - 1

	// Node layout.
	nodeN        = 0x00 // u64 number of keys
	nodeLeaf     = 0x08 // u64 1 when leaf
	nodeKeys     = 0x10 // 7 * u64
	nodeVals     = 0x48 // 7 * u64
	nodeChildren = 0x80 // 8 * u64
	nodeSize     = 0xC0

	// Root object layout.
	rootTree  = 0x00 // u64 offset of the root node (0 = empty tree)
	rootCount = 0x08 // u64 number of keys in the tree
	rootStats = 0x40 // transient-data scratch, on its own never-flushed line
	rootSize  = 0x80
)

// App is the btree data store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("btree", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string {
	if a.cfg.SPT {
		return "btree-spt"
	}
	return "btree"
}

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	e.Store64(p.Root()+rootTree, 0)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &tree{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application. In SPT mode every put and delete
// runs in its own transaction; otherwise one transaction wraps the whole
// batch, as the original example does.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	t := kv.(*tree)
	if !a.cfg.SPT {
		tx, err := t.p.Begin()
		if err != nil {
			return err
		}
		t.batch = tx
		defer func() { t.batch = nil }()
		if err := harness.RunKV(t, w); err != nil {
			return err
		}
		return tx.Commit()
	}
	return harness.RunKV(t, w)
}

// Recover implements harness.Application: open the pool (replaying any
// interrupted transaction) and validate the whole structure.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil // interrupted creation: start fresh
	}
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	return t.validate()
}

// tree is a live handle.
type tree struct {
	p     *pmdk.Pool
	cfg   apps.Config
	batch *pmdk.Tx
}

func (t *tree) e() *pmem.Engine { return t.p.Engine() }
func (t *tree) root() uint64    { return t.p.Root() }

// update runs f inside the ambient batch transaction or a fresh one.
func (t *tree) update(f func(tx *pmdk.Tx) error) error {
	if t.batch != nil {
		return f(t.batch)
	}
	tx, err := t.p.Begin()
	if err != nil {
		return err
	}
	if err := f(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Node field helpers.

func (t *tree) n(off uint64) uint64          { return t.e().Load64(off + nodeN) }
func (t *tree) isLeaf(off uint64) bool       { return t.e().Load64(off+nodeLeaf) == 1 }
func (t *tree) key(off uint64, i int) uint64 { return t.e().Load64(off + nodeKeys + 8*uint64(i)) }
func (t *tree) val(off uint64, i int) uint64 { return t.e().Load64(off + nodeVals + 8*uint64(i)) }
func (t *tree) child(off uint64, i int) uint64 {
	return t.e().Load64(off + nodeChildren + 8*uint64(i))
}

func (t *tree) setN(off, v uint64) { t.e().Store64(off+nodeN, v) }
func (t *tree) setKey(off uint64, i int, v uint64) {
	t.e().Store64(off+nodeKeys+8*uint64(i), v)
}
func (t *tree) setVal(off uint64, i int, v uint64) {
	t.e().Store64(off+nodeVals+8*uint64(i), v)
}
func (t *tree) setChild(off uint64, i int, v uint64) {
	t.e().Store64(off+nodeChildren+8*uint64(i), v)
}

func (t *tree) newNode(tx *pmdk.Tx, leaf bool) (uint64, error) {
	off, err := t.p.AllocZeroed(nodeSize)
	if err != nil {
		return 0, err
	}
	if err := tx.AddRange(off, nodeSize); err != nil {
		return 0, err
	}
	if leaf {
		t.e().Store64(off+nodeLeaf, 1)
	}
	return off, nil
}

// Get implements harness.KV.
func (t *tree) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "btree", 4, 6, 0, t.root()+rootStats)
	off := t.e().Load64(t.root() + rootTree)
	for off != 0 {
		n := int(t.n(off))
		i := 0
		for i < n && t.key(off, i) < key {
			i++
		}
		if i < n && t.key(off, i) == key {
			return t.val(off, i), true, nil
		}
		if t.isLeaf(off) {
			return 0, false, nil
		}
		off = t.child(off, i)
	}
	return 0, false, nil
}

// Put implements harness.KV.
func (t *tree) Put(key, val uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "btree", 1, 3, 0, t.root()+rootStats)
	return t.update(func(tx *pmdk.Tx) error {
		rootOff := t.e().Load64(t.root() + rootTree)
		if rootOff == 0 {
			leaf, err := t.newNode(tx, true)
			if err != nil {
				return err
			}
			t.setKey(leaf, 0, key)
			t.setVal(leaf, 0, val)
			t.setN(leaf, 1)
			if err := tx.Store64(t.root()+rootTree, leaf); err != nil {
				return err
			}
			return t.bumpCount(tx, 1)
		}
		if t.n(rootOff) == maxKeys {
			// Split the root: allocate a new root above it.
			newRoot, err := t.newNode(tx, false)
			if err != nil {
				return err
			}
			t.setChild(newRoot, 0, rootOff)
			if t.cfg.Bugs.Has(BugRootPublishOutsideTx) {
				// BUG: the root pointer is published and persisted
				// before the split below is part of the committed
				// state; a crash rolls back the nodes but keeps the
				// pointer.
				t.e().Store64(t.root()+rootTree, newRoot)
				t.p.Persist(t.root()+rootTree, 8)
			} else if err := tx.Store64(t.root()+rootTree, newRoot); err != nil {
				return err
			}
			if err := t.splitChild(tx, newRoot, 0); err != nil {
				return err
			}
			rootOff = newRoot
		}
		inserted, err := t.insertNonFull(tx, rootOff, key, val)
		if err != nil {
			return err
		}
		if inserted {
			return t.bumpCount(tx, 1)
		}
		return nil
	})
}

// bumpCount adjusts the persisted element count by delta (two's
// complement for decrements).
func (t *tree) bumpCount(tx *pmdk.Tx, delta uint64) error {
	addr := t.root() + rootCount
	cur := t.e().Load64(addr)
	if t.cfg.Bugs.Has(BugCountOutsideTx) {
		// BUG: the count is updated with a non-transactional persisted
		// store; a crash that rolls back the insert keeps the new
		// count.
		t.e().Store64(addr, cur+delta)
		t.p.Persist(addr, 8)
		return nil
	}
	return tx.Store64(addr, cur+delta)
}

// splitChild splits the full i-th child of node parent.
func (t *tree) splitChild(tx *pmdk.Tx, parent uint64, i int) error {
	child := t.child(parent, i)
	right, err := t.newNode(tx, t.isLeaf(child))
	if err != nil {
		return err
	}
	const mid = maxKeys / 2
	// Move the upper half of child into right.
	for j := 0; j < maxKeys-mid-1; j++ {
		t.setKey(right, j, t.key(child, mid+1+j))
		t.setVal(right, j, t.val(child, mid+1+j))
	}
	if !t.isLeaf(child) {
		for j := 0; j < maxKeys-mid; j++ {
			t.setChild(right, j, t.child(child, mid+1+j))
		}
	}
	t.setN(right, uint64(maxKeys-mid-1))

	if err := tx.AddRange(child, nodeSize); err != nil {
		return err
	}
	midKey, midVal := t.key(child, mid), t.val(child, mid)
	t.setN(child, uint64(mid))

	if !t.cfg.Bugs.Has(BugSplitMissingAddRange) {
		if err := tx.AddRange(parent, nodeSize); err != nil {
			return err
		}
	}
	// BUG (when the knob is set): the shifts below are not undo-logged
	// (the developer persists the parent directly instead, see the end
	// of this function), so a rollback leaves the parent half-updated.
	pn := int(t.n(parent))
	for j := pn; j > i; j-- {
		t.setKey(parent, j, t.key(parent, j-1))
		t.setVal(parent, j, t.val(parent, j-1))
	}
	for j := pn + 1; j > i+1; j-- {
		t.setChild(parent, j, t.child(parent, j-1))
	}
	t.setKey(parent, i, midKey)
	t.setVal(parent, i, midVal)
	t.setChild(parent, i+1, right)
	t.setN(parent, uint64(pn+1))
	if t.cfg.Bugs.Has(BugSplitMissingAddRange) {
		// BUG: pmem_persist where tx_add_range was needed — the
		// persist itself is a failure point inside the window where
		// the rest of the split can still roll back.
		t.p.Persist(parent, nodeSize)
	}
	perfbug.Apply(t.e(), t.cfg.Bugs, perfbug.NumberedID("btree", 10), 0, t.root()+rootStats)
	return nil
}

// insertNonFull inserts into the subtree rooted at off, which must not
// be full, descending recursively (so deeper updates have deeper call
// stacks — distinct code paths for the failure point tree). Returns
// whether a new key was added (false on overwrite).
func (t *tree) insertNonFull(tx *pmdk.Tx, off, key, val uint64) (bool, error) {
	n := int(t.n(off))
	i := 0
	for i < n && t.key(off, i) < key {
		i++
	}
	if i < n && t.key(off, i) == key {
		// Overwrite in place.
		if err := tx.Store64(off+nodeVals+8*uint64(i), val); err != nil {
			return false, err
		}
		return false, nil
	}
	if t.isLeaf(off) {
		if err := tx.AddRange(off, nodeSize); err != nil {
			return false, err
		}
		for j := n; j > i; j-- {
			t.setKey(off, j, t.key(off, j-1))
			t.setVal(off, j, t.val(off, j-1))
		}
		t.setKey(off, i, key)
		t.setVal(off, i, val)
		t.setN(off, uint64(n+1))
		return true, nil
	}
	childOff := t.child(off, i)
	if t.n(childOff) == maxKeys {
		if err := t.splitChild(tx, off, i); err != nil {
			return false, err
		}
		if key == t.key(off, i) {
			if err := tx.Store64(off+nodeVals+8*uint64(i), val); err != nil {
				return false, err
			}
			return false, nil
		}
		if key > t.key(off, i) {
			childOff = t.child(off, i+1)
		} else {
			childOff = t.child(off, i)
		}
	}
	return t.insertNonFull(tx, childOff, key, val)
}

// Delete implements harness.KV. Underflowed nodes are tolerated (no
// rebalancing), as in several PM B-tree implementations; internal keys
// are replaced by their successor from the leaf level.
func (t *tree) Delete(key uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "btree", 7, 9, 0, t.root()+rootStats)
	return t.update(func(tx *pmdk.Tx) error {
		removed, err := t.deleteFrom(tx, t.e().Load64(t.root()+rootTree), key)
		if err != nil {
			return err
		}
		if removed {
			addr := t.root() + rootCount
			cur := t.e().Load64(addr)
			if t.cfg.Bugs.Has(BugCountOutsideTx) {
				t.e().Store64(addr, cur-1)
				t.p.Persist(addr, 8)
				return nil
			}
			return tx.Store64(addr, cur-1)
		}
		return nil
	})
}

func (t *tree) deleteFrom(tx *pmdk.Tx, off, key uint64) (bool, error) {
	if off == 0 {
		return false, nil
	}
	n := int(t.n(off))
	i := 0
	for i < n && t.key(off, i) < key {
		i++
	}
	if i < n && t.key(off, i) == key {
		if t.isLeaf(off) {
			return true, t.removeAt(tx, off, i)
		}
		// Replace with the successor (leftmost key of the right
		// subtree), then delete the successor from its leaf.
		succ := t.child(off, i+1)
		for !t.isLeaf(succ) {
			succ = t.child(succ, 0)
		}
		sk, sv := t.key(succ, 0), t.val(succ, 0)
		if err := tx.AddRange(off+nodeKeys+8*uint64(i), 8); err != nil {
			return false, err
		}
		t.setKey(off, i, sk)
		if err := tx.Store64(off+nodeVals+8*uint64(i), sv); err != nil {
			return false, err
		}
		if err := t.removeAt(tx, succ, 0); err != nil {
			return false, err
		}
		return true, nil
	}
	if t.isLeaf(off) {
		return false, nil
	}
	return t.deleteFrom(tx, t.child(off, i), key)
}

func (t *tree) removeAt(tx *pmdk.Tx, off uint64, i int) error {
	if err := tx.AddRange(off, nodeSize); err != nil {
		return err
	}
	n := int(t.n(off))
	for j := i; j < n-1; j++ {
		t.setKey(off, j, t.key(off, j+1))
		t.setVal(off, j, t.val(off, j+1))
	}
	t.setN(off, uint64(n-1))
	return nil
}

// validate walks the whole tree checking structural invariants and the
// persisted count; it is the recovery procedure's consistency check.
func (t *tree) validate() error {
	rootOff := t.e().Load64(t.root() + rootTree)
	count := t.e().Load64(t.root() + rootCount)
	if rootOff == 0 {
		if count != 0 {
			return fmt.Errorf("btree: empty tree but count=%d", count)
		}
		return nil
	}
	var reachable uint64
	var last *uint64
	var walk func(off uint64, lo, hi uint64, haveLo, haveHi bool) error
	walk = func(off, lo, hi uint64, haveLo, haveHi bool) error {
		if off%16 != 0 || off+nodeSize > uint64(t.e().Size()) {
			return fmt.Errorf("btree: node offset 0x%x out of bounds", off)
		}
		n := int(t.n(off))
		leaf := t.isLeaf(off)
		// Leaves may underflow to empty (deletes do not rebalance);
		// internal nodes never lose keys.
		minN := 1
		if leaf {
			minN = 0
		}
		if n < minN || n > maxKeys {
			return fmt.Errorf("btree: node 0x%x has %d keys", off, n)
		}
		for i := 0; i < n; i++ {
			k := t.key(off, i)
			if haveLo && k <= lo {
				return fmt.Errorf("btree: key %d at 0x%x violates lower bound %d", k, off, lo)
			}
			if haveHi && k >= hi {
				return fmt.Errorf("btree: key %d at 0x%x violates upper bound %d", k, off, hi)
			}
			if !leaf {
				childLo, childHaveLo := lo, haveLo
				if i > 0 {
					childLo, childHaveLo = t.key(off, i-1), true
				}
				if err := walk(t.child(off, i), childLo, k, childHaveLo, true); err != nil {
					return err
				}
			}
			if last != nil && *last >= k {
				return fmt.Errorf("btree: in-order violation at key %d", k)
			}
			kc := k
			last = &kc
			reachable++
		}
		if !leaf {
			childLo := t.key(off, n-1)
			return walk(t.child(off, n), childLo, hi, true, haveHi)
		}
		return nil
	}
	if err := walk(rootOff, 0, 0, false, false); err != nil {
		return err
	}
	switch {
	case reachable == count:
		return nil
	case reachable == count+1:
		// Benign window: an element landed before its count update (or
		// a count decrement preceded its removal). Repair the count.
		t.e().Store64(t.root()+rootCount, reachable)
		t.p.Persist(t.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("btree: count=%d but %d keys reachable (data loss)", count, reachable)
	}
}

var _ harness.KVApplication = (*App)(nil)

// ErrUnsupported is reserved for version gating parity with other apps.
var ErrUnsupported = errors.New("btree: unsupported configuration")

// Package imagedup provides fixture targets whose fault-injection
// campaigns produce many byte-identical graceful-crash images — the
// workload shape the crash-image verdict cache exists for.
//
// The insight the fixtures exploit is the one behind the cache: the
// program-order-prefix image changes only when the prefix gains a store
// with new content. Each target runs two phases. The fill phase
// persists distinct values at increasing recursion depths, so every
// fill failure point materialises a distinct image (all misses). The
// scan phase then re-persists values that are already durable, again at
// distinct recursion depths: each round is a genuine failure point (a
// store precedes its flush) with its own call stack and instruction
// counter, yet every scan image — and the deepest fill image — is
// byte-identical, so one recovery run serves them all. Re-persisting
// already-durable data is how real PM code behaves in verification
// sweeps, status-flag updates and idempotent replays, so the dedup rate
// is representative rather than adversarial.
//
// Like misbehave, the fixtures live outside the main internal/apps
// registry (the paper's §6 target set); cmd/mumak consults this
// registry as a fallback.
package imagedup

import (
	"errors"
	"fmt"
	"sort"

	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Mode selects the fixture's recovery behaviour.
type Mode uint8

// Fixture modes.
const (
	// Clean recovers successfully whenever the pool is well-formed; its
	// campaign report is finding-free.
	Clean Mode = iota
	// BrokenRecovery rejects every state, so each failure point yields
	// an Unrecoverable finding. Scan-phase leaves share one image but
	// crash at distinct instruction counters: the fixture proves a
	// cached verdict still produces one finding per failure point, each
	// with its own ICount.
	BrokenRecovery
)

// Default fixture dimensions (Custom overrides them).
const (
	// DefaultDepth is the fill recursion depth: distinct images, all
	// cache misses.
	DefaultDepth = 4
	// DefaultScanRounds is the scan recursion depth: identical images,
	// all cache hits after the first.
	DefaultScanRounds = 12
	// DefaultPoolSize keeps the default fixture cheap; benches pass a
	// larger pool through Custom to amplify the per-image copy cost the
	// cache avoids.
	DefaultPoolSize = 1 << 16

	// magic marks a set-up pool; Recover rejects a pool without it.
	magic = 0x696d616765647570 // "imagedup"
)

// App is one image-duplication fixture target.
type App struct {
	name       string
	mode       Mode
	depth      int
	scanRounds int
	poolSize   int
}

// Name implements harness.Application.
func (a *App) Name() string { return a.name }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int { return a.poolSize }

// slot returns the address persisted at fill depth i.
func slot(i int) uint64 { return uint64(64 * i) }

// Setup implements harness.Application: it persists the pool magic.
func (a *App) Setup(e *pmem.Engine) error {
	e.Store64(0, magic)
	e.CLWB(0)
	e.SFence()
	return nil
}

// Run implements harness.Application. The workload is ignored: a fixed,
// deterministic instruction sequence keeps the failure point tree
// identical across runs, which counter-mode replays rely on.
func (a *App) Run(e *pmem.Engine, _ workload.Workload) error {
	a.fill(e, 1)
	a.scan(e, 1)
	return nil
}

// fill persists a distinct value per recursion depth. Recursion gives
// every depth its own call stack, hence its own failure point; each
// one's graceful-crash image embeds a different store prefix.
func (a *App) fill(e *pmem.Engine, i int) {
	if i > a.depth {
		return
	}
	e.Store64(slot(i), uint64(i))
	e.CLWB(slot(i))
	e.SFence()
	a.fill(e, i+1)
}

// scan re-persists already-durable values, one slot per recursion
// depth. The store makes the following flush a failure point (§4.1
// counts a persistency instruction only after a store), but stores no
// new content: the program-order prefix — and therefore the crash image
// — is identical at every scan failure point.
func (a *App) scan(e *pmem.Engine, i int) {
	if i > a.scanRounds {
		return
	}
	s := 1 + (i-1)%a.depth
	e.Store64(slot(s), uint64(s))
	e.CLWB(slot(s))
	e.SFence()
	a.scan(e, i+1)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	if a.mode == BrokenRecovery {
		return errors.New("imagedup: recovery rejects every state by design")
	}
	if e.Load64(0) != magic {
		return errors.New("imagedup: pool magic missing")
	}
	for i := 1; i <= a.depth; i++ {
		if v := e.Load64(slot(i)); v != 0 && v != uint64(i) {
			return fmt.Errorf("imagedup: slot %d holds %d, want 0 or %d", i, v, i)
		}
	}
	return nil
}

// Custom builds a fixture with explicit dimensions; benches use it to
// scale the pool (amplifying per-image copy cost) and the scan length
// (raising the duplicate-image rate). Non-positive dimensions select
// the defaults.
func Custom(name string, mode Mode, depth, scanRounds, poolSize int) *App {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if scanRounds <= 0 {
		scanRounds = DefaultScanRounds
	}
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	return &App{name: name, mode: mode, depth: depth, scanRounds: scanRounds, poolSize: poolSize}
}

var registry = map[string]Mode{
	"imagedup":        Clean,
	"imagedup-broken": BrokenRecovery,
}

// New resolves a fixture by registry name, reporting whether it exists.
func New(name string) (harness.Application, bool) {
	mode, ok := registry[name]
	if !ok {
		return nil, false
	}
	return Custom(name, mode, 0, 0, 0), true
}

// Names lists the fixture names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Package apptest provides shared test machinery for the applications
// under test: key-value semantics checking against a model, and
// exhaustive crash-point probing with the recovery oracle.
package apptest

import (
	"testing"

	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/stack"
	"mumak/internal/workload"
)

// KVSemantics runs the workload against the application and an in-memory
// model simultaneously and fails on any divergence of Get results.
func KVSemantics(t *testing.T, app harness.KVApplication, w workload.Workload) {
	t.Helper()
	e := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()})
	if err := app.Setup(e); err != nil {
		t.Fatalf("setup: %v", err)
	}
	kv, err := app.Open(e)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	model := map[uint64]uint64{}
	for i, op := range w.Ops {
		switch op.Kind {
		case workload.Put:
			if err := kv.Put(op.Key, op.Val); err != nil {
				t.Fatalf("op %d put(%d): %v", i, op.Key, err)
			}
			model[op.Key] = op.Val
		case workload.Get:
			got, ok, err := kv.Get(op.Key)
			if err != nil {
				t.Fatalf("op %d get(%d): %v", i, op.Key, err)
			}
			want, wantOK := model[op.Key]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d get(%d) = (%d,%v), want (%d,%v)", i, op.Key, got, ok, want, wantOK)
			}
		case workload.Delete:
			if err := kv.Delete(op.Key); err != nil {
				t.Fatalf("op %d delete(%d): %v", i, op.Key, err)
			}
			delete(model, op.Key)
		}
	}
	// Final sweep: every model key must be present with its value.
	for k, v := range model {
		got, ok, err := kv.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("final get(%d) = (%d,%v,%v), want (%d,true)", k, got, ok, err, v)
		}
	}
}

// Crash runs setup+workload crashing at instruction counter target and
// returns the graceful-crash (program-order prefix) image, or nil when
// the run completed before reaching the counter.
func Crash(t *testing.T, app harness.Application, w workload.Workload, target uint64) *pmem.Image {
	t.Helper()
	eng, sig, err := harness.Execute(app, w, pmem.Options{}, injector{target: target})
	if sig == nil {
		if err != nil {
			t.Fatalf("workload failed before crash point %d: %v", target, err)
		}
		return nil
	}
	return eng.PrefixImage()
}

type injector struct{ target uint64 }

func (in injector) OnEvent(ev *pmem.Event) {
	if ev.ICount == in.target {
		panic(&pmem.CrashSignal{ICount: ev.ICount, Reason: "apptest crash"})
	}
}

// CrashConsistent probes up to samples crash points — persistency
// instructions, Mumak's failure-point granularity — and fails if the
// recovery oracle rejects any prefix image. Use with all bug knobs off:
// a correct persistence protocol must recover from every graceful crash.
func CrashConsistent(t *testing.T, mk func() harness.Application, w workload.Workload, samples int) {
	t.Helper()
	failures := probe(t, mk, w, samples, 1)
	if len(failures) != 0 {
		img := Crash(t, mk(), w, failures[0])
		out := oracle.Check(mk(), img)
		t.Fatalf("crash at instruction %d is unrecoverable: %s\n%s",
			failures[0], out.Describe(), out.PanicTrace)
	}
}

// ExposesBug probes crash points and fails unless at least one prefix
// image is rejected by the oracle — the seeded defect must be visible to
// fault injection at persistency-instruction granularity.
func ExposesBug(t *testing.T, mk func() harness.Application, w workload.Workload, samples int) {
	t.Helper()
	if !Exposes(t, mk, w, samples) {
		t.Fatal("no crash point exposed the seeded bug under fault injection")
	}
}

// Exposes reports whether any sampled crash point yields a prefix image
// the recovery oracle rejects.
func Exposes(t *testing.T, mk func() harness.Application, w workload.Workload, samples int) bool {
	t.Helper()
	return len(probe(t, mk, w, samples, 1)) != 0
}

// HiddenFromPrefix probes crash points and fails if any prefix image is
// rejected — used for the "missed" bug class whose exposing states do
// not respect a program-order prefix (§4.1/§6.2).
func HiddenFromPrefix(t *testing.T, mk func() harness.Application, w workload.Workload, samples int) {
	t.Helper()
	if failures := probe(t, mk, w, samples, 1); len(failures) != 0 {
		t.Fatalf("bug expected to be hidden from prefix images was exposed at instruction %d", failures[0])
	}
}

// probe crashes at every unique failure point — the leaves of a failure
// point tree built at persistency-instruction granularity, exactly
// Mumak's fault-injection mechanism (§4.1) — and returns up to limit
// crash points whose prefix image fails recovery. samples caps the
// number of probed leaves (0 = all).
func probe(t *testing.T, mk func() harness.Application, w workload.Workload, samples, limit int) []uint64 {
	t.Helper()
	stacks := stack.NewTable()
	tree := fpt.New(stacks)
	builder := fpt.NewBuilder(tree, fpt.GranPersistency)
	_, sig, err := harness.Execute(mk(), w,
		pmem.Options{Capture: pmem.CapturePersistency, Stacks: stacks}, builder)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if sig != nil {
		t.Fatal("clean run crashed without an injector")
	}
	leaves := tree.LeavesByICount()
	if samples > 0 && len(leaves) > samples {
		leaves = leaves[:samples]
	}
	var failures []uint64
	for _, leaf := range leaves {
		if len(failures) >= limit {
			break
		}
		img := Crash(t, mk(), w, leaf.FirstICount)
		if img == nil {
			continue
		}
		if out := oracle.Check(mk(), img); !out.Consistent() {
			failures = append(failures, leaf.FirstICount)
		}
	}
	return failures
}

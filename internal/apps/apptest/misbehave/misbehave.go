// Package misbehave provides deliberately broken fixture targets for
// exercising the campaign sandbox and replay robustness: a target whose
// Run panics, one whose Run never terminates, one whose recovery
// procedure loops forever, and two whose replays fail — permanently
// (quarantine path) or transiently (retry path).
//
// The fixtures live in their own registry rather than the main
// internal/apps one on purpose: the apps registry is the paper's §6
// target set, and its tests assert the exact list, KV semantics and
// clean-target properties that misbehaving fixtures would violate.
// cmd/mumak consults this registry as a fallback after the main one.
package misbehave

import (
	"errors"
	"sort"
	"sync/atomic"

	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Mode selects the seeded misbehaviour.
type Mode uint8

// Misbehaviour modes.
const (
	// Clean performs the fixed writes and terminates; it is the control
	// fixture (the sandbox must not change its report).
	Clean Mode = iota
	// PanicRun panics halfway through Run with a foreign (non-signal)
	// panic value.
	PanicRun
	// HangRun enters an infinite PM-read loop halfway through Run,
	// burning fuel until the hang watchdog terminates the execution.
	HangRun
	// HangRecovery makes Recover loop over PM forever, so every
	// recovery-oracle invocation hangs.
	HangRecovery
	// ReplayBroken performs one clean execution (the instrumented run)
	// and deterministically fails every execution after it before any
	// PM instruction: every replay skips, so every failure point must
	// end up quarantined rather than silently dropped — and the
	// campaign must still terminate. Counter-mode campaigns need
	// checkpoints disabled to exercise it (checkpointed replays run no
	// application code).
	ReplayBroken
	// ReplayFlaky fails exactly the second execution — the first
	// replay attempt — and succeeds on every other one, so the bounded
	// per-leaf retry must absorb it (one retried failure point, zero
	// quarantined).
	ReplayFlaky
)

const (
	poolSize = 1 << 16
	// magic marks a set-up pool; Recover rejects a pool without it.
	magic = 0x6d69736265686176 // "misbehav"
	// rounds is the number of fixed persisted writes Run performs; the
	// misbehaviour fires before round misbehaveRound, leaving the
	// earlier rounds as ordinary failure points for the campaign.
	rounds         = 12
	misbehaveRound = 6
)

// App is one misbehaving fixture target.
type App struct {
	name string
	mode Mode
	// runs counts Setup entries across the instrumented run and every
	// replay; the replay-failure modes key off it. Atomic because the
	// one fixture instance is shared across parallel campaign workers.
	runs atomic.Int64
}

// Name implements harness.Application.
func (a *App) Name() string { return a.name }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int { return poolSize }

// Setup implements harness.Application: it persists the pool magic.
// The replay-failure modes fire here, before the first PM instruction,
// so a failed execution looks exactly like a replay that diverged.
func (a *App) Setup(e *pmem.Engine) error {
	run := a.runs.Add(1)
	switch {
	case a.mode == ReplayBroken && run > 1:
		return errors.New("misbehave: seeded replay failure (every execution after the first)")
	case a.mode == ReplayFlaky && run == 2:
		return errors.New("misbehave: seeded transient replay failure (second execution only)")
	}
	e.Store64(0, magic)
	e.CLWB(0)
	e.SFence()
	return nil
}

// Run implements harness.Application. The workload is ignored: a fixed,
// deterministic sequence of persisted stores keeps the failure point
// tree identical across runs, which the counter-mode replays rely on.
func (a *App) Run(e *pmem.Engine, _ workload.Workload) error {
	for i := 1; i <= rounds; i++ {
		if i == misbehaveRound {
			switch a.mode {
			case PanicRun:
				panic("misbehave: seeded target panic in Run")
			case HangRun:
				for {
					e.Load64(8)
				}
			}
		}
		addr := uint64(64 * i)
		e.Store64(addr, uint64(i))
		e.CLWB(addr)
		e.SFence()
	}
	return nil
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	if e.Load64(0) != magic {
		return errors.New("misbehave: pool magic missing")
	}
	if a.mode == HangRecovery {
		for {
			e.Load64(8)
		}
	}
	return nil
}

// NewMode builds a fixture with the given mode and a registry-consistent
// name (tests that want a mode directly use this).
func NewMode(mode Mode) *App {
	for name, m := range registry {
		if m == mode {
			return &App{name: name, mode: mode}
		}
	}
	return &App{name: "misbehave", mode: mode}
}

var registry = map[string]Mode{
	"misbehave-clean":         Clean,
	"misbehave-run-panic":     PanicRun,
	"misbehave-run-hang":      HangRun,
	"misbehave-recovery-hang": HangRecovery,
	"misbehave-replay-broken": ReplayBroken,
	"misbehave-replay-flaky":  ReplayFlaky,
}

// New resolves a fixture by registry name, reporting whether it exists.
func New(name string) (harness.Application, bool) {
	mode, ok := registry[name]
	if !ok {
		return nil, false
	}
	return &App{name: name, mode: mode}, true
}

// Names lists the fixture names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package pmemkv_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/pmemkv"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 2 << 20} }

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 250, Seed: seed, Keyspace: 100})
}

func TestCmapSemantics(t *testing.T) {
	apptest.KVSemantics(t, pmemkv.NewCmap(cfgBase()), smallWorkload(1))
}

func TestStreeSemantics(t *testing.T) {
	apptest.KVSemantics(t, pmemkv.NewStree(cfgBase()), smallWorkload(2))
}

func TestStreeSemanticsLarge(t *testing.T) {
	w := workload.Generate(workload.Config{N: 5000, Seed: 3, Keyspace: 1500})
	cfg := cfgBase()
	cfg.PoolSize = 16 << 20
	apptest.KVSemantics(t, pmemkv.NewStree(cfg), w)
}

func TestCmapCrashConsistent(t *testing.T) {
	mk := func() harness.Application { return pmemkv.NewCmap(cfgBase()) }
	apptest.CrashConsistent(t, mk, smallWorkload(4), 0)
}

func TestStreeCrashConsistent(t *testing.T) {
	mk := func() harness.Application { return pmemkv.NewStree(cfgBase()) }
	apptest.CrashConsistent(t, mk, smallWorkload(5), 0)
}

// Package pmemkv reimplements the two pmemkv storage engines used in the
// scalability evaluation (§6.3): cmap, a transactional chained hash map,
// and stree, a sorted persistent list whose skip index lives in volatile
// memory and is rebuilt on open.
package pmemkv

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

const (
	cmapBuckets = 512

	nodeKey  = 0x00
	nodeVal  = 0x08
	nodeNext = 0x10
	nodeSize = 0x20

	rootTable = 0x00 // cmap: bucket array; stree: list head node
	rootCount = 0x08
	rootSize  = 0x18
)

// Cmap is the pmemkv cmap engine: every mutation runs in its own
// undo-log transaction.
type Cmap struct{ cfg apps.Config }

// NewCmap constructs the cmap engine.
func NewCmap(cfg apps.Config) *Cmap { return &Cmap{cfg: cfg} }

// Stree is the pmemkv stree engine: a persistent sorted list updated
// with atomic pointer publication, plus a volatile skip index.
type Stree struct{ cfg apps.Config }

// NewStree constructs the stree engine.
func NewStree(cfg apps.Config) *Stree { return &Stree{cfg: cfg} }

func init() {
	apps.Register("cmap", func(cfg apps.Config) harness.Application { return NewCmap(cfg) })
	apps.Register("stree", func(cfg apps.Config) harness.Application { return NewStree(cfg) })
}

func poolSize(cfg apps.Config) int {
	if cfg.PoolSize != 0 {
		return cfg.PoolSize
	}
	return 64 << 20
}

// --- cmap ---

// Name implements harness.Application.
func (c *Cmap) Name() string { return "pmemkv-cmap" }

// PoolSize implements harness.Application.
func (c *Cmap) PoolSize() int { return poolSize(c.cfg) }

// Setup implements harness.Application.
func (c *Cmap) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, c.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	table, err := p.AllocZeroed(8 * cmapBuckets)
	if err != nil {
		return err
	}
	p.Persist(table, 8*cmapBuckets)
	e.Store64(p.Root()+rootTable, table)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (c *Cmap) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, c.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &cmapKV{p: p}, nil
}

// Run implements harness.Application.
func (c *Cmap) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := c.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (c *Cmap) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, c.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	return (&cmapKV{p: p}).validate()
}

type cmapKV struct{ p *pmdk.Pool }

func (m *cmapKV) e() *pmem.Engine { return m.p.Engine() }

func mix(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

func (m *cmapKV) bucket(key uint64) uint64 {
	return m.e().Load64(m.p.Root()+rootTable) + 8*(mix(key)%cmapBuckets)
}

func (m *cmapKV) find(key uint64) (prev, node uint64) {
	e := m.e()
	n := e.Load64(m.bucket(key))
	for n != 0 && e.Load64(n+nodeKey) != key {
		prev, n = n, e.Load64(n+nodeNext)
	}
	return prev, n
}

// Get implements harness.KV.
func (m *cmapKV) Get(key uint64) (uint64, bool, error) {
	_, n := m.find(key)
	if n == 0 {
		return 0, false, nil
	}
	return m.e().Load64(n + nodeVal), true, nil
}

// Put implements harness.KV.
func (m *cmapKV) Put(key, val uint64) error {
	e := m.e()
	tx, err := m.p.Begin()
	if err != nil {
		return err
	}
	_, n := m.find(key)
	if n != 0 {
		if err := tx.Store64(n+nodeVal, val); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	node, err := m.p.AllocZeroed(nodeSize)
	if err != nil {
		tx.Abort()
		return err
	}
	bucket := m.bucket(key)
	if err := tx.AddRange(node, nodeSize); err != nil {
		tx.Abort()
		return err
	}
	e.Store64(node+nodeKey, key)
	e.Store64(node+nodeVal, val)
	e.Store64(node+nodeNext, e.Load64(bucket))
	if err := tx.Store64(bucket, node); err != nil {
		tx.Abort()
		return err
	}
	cnt := m.p.Root() + rootCount
	if err := tx.Store64(cnt, e.Load64(cnt)+1); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Delete implements harness.KV.
func (m *cmapKV) Delete(key uint64) error {
	e := m.e()
	tx, err := m.p.Begin()
	if err != nil {
		return err
	}
	prev, n := m.find(key)
	if n == 0 {
		return tx.Commit()
	}
	next := e.Load64(n + nodeNext)
	target := m.bucket(key)
	if prev != 0 {
		target = prev + nodeNext
	}
	if err := tx.Store64(target, next); err != nil {
		tx.Abort()
		return err
	}
	cnt := m.p.Root() + rootCount
	if err := tx.Store64(cnt, e.Load64(cnt)-1); err != nil {
		tx.Abort()
		return err
	}
	tx.FreeOnCommit(n, nodeSize)
	return tx.Commit()
}

func (m *cmapKV) validate() error {
	e := m.e()
	table := e.Load64(m.p.Root() + rootTable)
	count := e.Load64(m.p.Root() + rootCount)
	if table == 0 && count == 0 {
		return nil
	}
	size := uint64(e.Size())
	if table == 0 || table+8*cmapBuckets > size {
		return fmt.Errorf("cmap: table offset invalid")
	}
	var reachable uint64
	for b := uint64(0); b < cmapBuckets; b++ {
		n := e.Load64(table + 8*b)
		steps := uint64(0)
		for n != 0 {
			if n%16 != 0 || n+nodeSize > size {
				return fmt.Errorf("cmap: node 0x%x out of bounds", n)
			}
			if mix(e.Load64(n+nodeKey))%cmapBuckets != b {
				return fmt.Errorf("cmap: key %d in wrong bucket", e.Load64(n+nodeKey))
			}
			reachable++
			if steps++; steps > count+8 {
				return fmt.Errorf("cmap: chain cycle in bucket %d", b)
			}
			n = e.Load64(n + nodeNext)
		}
	}
	if reachable != count {
		return fmt.Errorf("cmap: count=%d but %d reachable", count, reachable)
	}
	return nil
}

// --- stree ---

// Name implements harness.Application.
func (s *Stree) Name() string { return "pmemkv-stree" }

// PoolSize implements harness.Application.
func (s *Stree) PoolSize() int { return poolSize(s.cfg) }

// Setup implements harness.Application.
func (s *Stree) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, s.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	e.Store64(p.Root()+rootTable, 0) // empty list
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication: walk the persistent bottom list
// and rebuild the volatile skip index.
func (s *Stree) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, s.cfg.Ver)
	if err != nil {
		return nil, err
	}
	kv := &streeKV{p: p}
	kv.rebuildIndex()
	return kv, nil
}

// Run implements harness.Application.
func (s *Stree) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := s.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (s *Stree) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, s.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	return (&streeKV{p: p}).validate()
}

type streeKV struct {
	p *pmdk.Pool
	// index is the volatile skip index: a sampled subset of nodes in
	// key order, rebuilt on open.
	index []indexEntry
}

type indexEntry struct {
	key  uint64
	node uint64
}

const indexStride = 16

func (t *streeKV) e() *pmem.Engine { return t.p.Engine() }
func (t *streeKV) head() uint64    { return t.e().Load64(t.p.Root() + rootTable) }

func (t *streeKV) rebuildIndex() {
	t.index = t.index[:0]
	e := t.e()
	i := 0
	for n := t.head(); n != 0; n = e.Load64(n + nodeNext) {
		if i%indexStride == 0 {
			t.index = append(t.index, indexEntry{key: e.Load64(n + nodeKey), node: n})
		}
		i++
	}
}

// seek returns the last indexed node with key <= target (or 0).
func (t *streeKV) seek(key uint64) uint64 {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.index[mid].key <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return t.index[lo-1].node
}

// locate returns (prev, node) where node holds key, or node == 0 with
// prev being the insertion predecessor. When the index-sampled start
// node is the match itself the walk restarts from the head, so prev is
// always the true list predecessor.
func (t *streeKV) locate(key uint64) (prev, node uint64) {
	e := t.e()
	start := t.seek(key)
	if start == 0 || e.Load64(start+nodeKey) >= key {
		// No usable sample, or the sample is at/past the key (it may
		// even be the key): walk from the head.
		start = t.head()
	}
	prev = 0
	for n := start; n != 0; n = e.Load64(n + nodeNext) {
		k := e.Load64(n + nodeKey)
		if k == key {
			return prev, n
		}
		if k > key {
			return prev, 0
		}
		prev = n
	}
	return prev, 0
}

// Get implements harness.KV.
func (t *streeKV) Get(key uint64) (uint64, bool, error) {
	_, n := t.locate(key)
	if n == 0 {
		return 0, false, nil
	}
	return t.e().Load64(n + nodeVal), true, nil
}

// Put implements harness.KV: persist the node, then publish it with one
// atomic pointer store; the count follows the insert.
func (t *streeKV) Put(key, val uint64) error {
	e := t.e()
	prev, n := t.locate(key)
	if n != 0 {
		e.Store64(n+nodeVal, val)
		t.p.Persist(n+nodeVal, 8)
		return nil
	}
	node, err := t.p.AllocZeroed(nodeSize)
	if err != nil {
		return err
	}
	slot := t.p.Root() + rootTable
	next := t.head()
	if prev != 0 {
		slot = prev + nodeNext
		next = e.Load64(prev + nodeNext)
	}
	e.Store64(node+nodeKey, key)
	e.Store64(node+nodeVal, val)
	e.Store64(node+nodeNext, next)
	t.p.Persist(node, nodeSize)
	e.Store64(slot, node)
	t.p.Persist(slot, 8)
	cnt := t.p.Root() + rootCount
	e.Store64(cnt, e.Load64(cnt)+1)
	t.p.Persist(cnt, 8)
	if int(e.Load64(cnt))%indexStride == 0 {
		t.rebuildIndex()
	}
	return nil
}

// Delete implements harness.KV: count first, then one atomic unlink.
func (t *streeKV) Delete(key uint64) error {
	e := t.e()
	prev, n := t.locate(key)
	if n == 0 {
		return nil
	}
	cnt := t.p.Root() + rootCount
	e.Store64(cnt, e.Load64(cnt)-1)
	t.p.Persist(cnt, 8)
	slot := t.p.Root() + rootTable
	if prev != 0 {
		slot = prev + nodeNext
	}
	e.Store64(slot, e.Load64(n+nodeNext))
	t.p.Persist(slot, 8)
	// The node leaks rather than being freed: freeing would clobber it
	// while a stale index entry might still reference it; the leak is
	// reclaimed on the next open. (pmemkv's stree makes the same
	// trade-off with its lazy garbage collection.)
	t.rebuildIndex()
	return nil
}

func (t *streeKV) validate() error {
	e := t.e()
	count := e.Load64(t.p.Root() + rootCount)
	size := uint64(e.Size())
	var reachable uint64
	var last uint64
	first := true
	for n := t.head(); n != 0; n = e.Load64(n + nodeNext) {
		if n%16 != 0 || n+nodeSize > size {
			return fmt.Errorf("stree: node 0x%x out of bounds", n)
		}
		k := e.Load64(n + nodeKey)
		if !first && k <= last {
			return fmt.Errorf("stree: list unsorted at key %d", k)
		}
		first = false
		last = k
		reachable++
		if reachable > count+8 {
			return fmt.Errorf("stree: list longer than count %d permits (cycle?)", count)
		}
	}
	switch {
	case reachable == count:
		return nil
	case reachable == count+1:
		e.Store64(t.p.Root()+rootCount, reachable)
		t.p.Persist(t.p.Root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("stree: count=%d but %d reachable", count, reachable)
	}
}

var (
	_ harness.KVApplication = (*Cmap)(nil)
	_ harness.KVApplication = (*Stree)(nil)
)

// Package redis models pmem/redis, the PM-adapted Redis used in the
// paper's scalability evaluation: a persistent dictionary backed by a
// persistent append-only operation log. The log is the source of truth —
// each operation appends a sealed record (record body first, then the
// persisted head pointer as commit point) before the dictionary is
// updated in place, and recovery replays the tail of the log to redo at
// most one dictionary update lost to a crash.
//
// Bug knobs: redis/log-seq-early (fault injection),
// redis/entry-single-fence and redis/index-fused-fence (hidden from
// program-order prefixes), and redis/pf-01..pf-12 (trace analysis).
package redis

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugLogSeqEarly persists the advanced log head before the record
	// body exists.
	BugLogSeqEarly bugs.ID = "redis/log-seq-early"
	// BugEntrySingleFence fuses record body and head write-backs under
	// one fence (hidden from prefixes).
	BugEntrySingleFence bugs.ID = "redis/entry-single-fence"
	// BugIndexFusedFence fuses dict node and bucket pointer
	// write-backs under one fence (hidden from prefixes).
	BugIndexFusedFence bugs.ID = "redis/index-fused-fence"
)

const (
	buckets = 256

	recSeq  = 0x00
	recKind = 0x08 // 1 = put, 2 = delete
	recKey  = 0x10
	recVal  = 0x18
	recSize = 0x20

	kindPut = 1
	kindDel = 2

	nodeKey  = 0x00
	nodeVal  = 0x08
	nodeNext = 0x10
	nodeSize = 0x20

	rootTable = 0x00 // u64: bucket array offset
	rootLogA  = 0x08 // u64: log region start
	rootLogZ  = 0x10 // u64: log region end
	rootHead  = 0x18 // u64: next append offset (commit point)
	rootCount = 0x20 // u64: live keys
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
)

// ErrLogFull signals an exhausted log region.
var ErrLogFull = errors.New("redis: append-only log full")

// App is the PM-Redis model.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("redis", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "pm-redis" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	table, err := p.AllocZeroed(8 * buckets)
	if err != nil {
		return err
	}
	p.Persist(table, 8*buckets)
	// Reserve half the remaining heap for the log.
	logBytes := (e.Size() - int(table)) / 2
	logOff, err := p.AllocZeroed(logBytes)
	if err != nil {
		return err
	}
	r := p.Root()
	e.Store64(r+rootTable, table)
	e.Store64(r+rootLogA, logOff)
	e.Store64(r+rootLogZ, logOff+uint64(logBytes))
	e.Store64(r+rootHead, logOff)
	e.Store64(r+rootCount, 0)
	// The stats scratch line (rootStats) stays unflushed by design.
	p.Persist(r, rootStats)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &store{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	s := &store{p: p, cfg: a.cfg}
	return s.validate()
}

type store struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (s *store) e() *pmem.Engine { return s.p.Engine() }
func (s *store) root() uint64    { return s.p.Root() }

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

func (s *store) bucketAddr(key uint64) uint64 {
	return s.e().Load64(s.root()+rootTable) + 8*(hash(key)%buckets)
}

// appendLog seals one record and returns its sequence number.
func (s *store) appendLog(kind, key, val uint64) error {
	e := s.e()
	r := s.root()
	head := e.Load64(r + rootHead)
	if head+recSize > e.Load64(r+rootLogZ) {
		return ErrLogFull
	}
	logA := e.Load64(r + rootLogA)
	seq := (head-logA)/recSize + 1

	if s.cfg.Bugs.Has(BugLogSeqEarly) {
		// BUG: the commit point moves before the record body exists.
		e.Store64(r+rootHead, head+recSize)
		s.p.Persist(r+rootHead, 8)
		e.Store64(head+recSeq, seq)
		e.Store64(head+recKind, kind)
		e.Store64(head+recKey, key)
		e.Store64(head+recVal, val)
		s.p.Persist(head, recSize)
		return nil
	}
	e.Store64(head+recSeq, seq)
	e.Store64(head+recKind, kind)
	e.Store64(head+recKey, key)
	e.Store64(head+recVal, val)
	if s.cfg.Bugs.Has(BugEntrySingleFence) {
		// BUG (hidden from prefixes): record body and commit point
		// share one fence.
		s.p.Flush(head, recSize)
		e.Store64(r+rootHead, head+recSize)
		s.p.Flush(r+rootHead, 8)
		s.p.Drain()
		return nil
	}
	s.p.Persist(head, recSize)
	e.Store64(r+rootHead, head+recSize)
	s.p.Persist(r+rootHead, 8)
	return nil
}

// Get implements harness.KV.
func (s *store) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(s.e(), s.cfg.Bugs, "redis", 5, 8, 0, s.root()+rootStats)
	e := s.e()
	n := e.Load64(s.bucketAddr(key))
	for n != 0 {
		if e.Load64(n+nodeKey) == key {
			return e.Load64(n + nodeVal), true, nil
		}
		n = e.Load64(n + nodeNext)
	}
	return 0, false, nil
}

// Put implements harness.KV: log first, then the in-place dict update.
func (s *store) Put(key, val uint64) error {
	perfbug.ApplyN(s.e(), s.cfg.Bugs, "redis", 1, 4, 0, s.root()+rootStats)
	if err := s.appendLog(kindPut, key, val); err != nil {
		return err
	}
	return s.applyPut(key, val)
}

func (s *store) applyPut(key, val uint64) error {
	e := s.e()
	bucket := s.bucketAddr(key)
	for n := e.Load64(bucket); n != 0; n = e.Load64(n + nodeNext) {
		if e.Load64(n+nodeKey) == key {
			e.Store64(n+nodeVal, val)
			s.p.Persist(n+nodeVal, 8)
			return nil
		}
	}
	node, err := s.p.AllocZeroed(nodeSize)
	if err != nil {
		return err
	}
	head := e.Load64(bucket)
	e.Store64(node+nodeKey, key)
	e.Store64(node+nodeVal, val)
	e.Store64(node+nodeNext, head)
	if s.cfg.Bugs.Has(BugIndexFusedFence) {
		// BUG (hidden from prefixes): node and bucket pointer share
		// one fence.
		s.p.Flush(node, nodeSize)
		e.Store64(bucket, node)
		s.p.Flush(bucket, 8)
		s.p.Drain()
	} else {
		s.p.Persist(node, nodeSize)
		e.Store64(bucket, node)
		s.p.Persist(bucket, 8)
	}
	cnt := s.root() + rootCount
	e.Store64(cnt, e.Load64(cnt)+1)
	s.p.Persist(cnt, 8)
	return nil
}

// Delete implements harness.KV.
func (s *store) Delete(key uint64) error {
	perfbug.ApplyN(s.e(), s.cfg.Bugs, "redis", 9, 12, 0, s.root()+rootStats)
	if _, ok, _ := s.Get(key); !ok {
		return nil
	}
	if err := s.appendLog(kindDel, key, 0); err != nil {
		return err
	}
	return s.applyDelete(key)
}

func (s *store) applyDelete(key uint64) error {
	e := s.e()
	bucket := s.bucketAddr(key)
	prev := uint64(0)
	n := e.Load64(bucket)
	for n != 0 && e.Load64(n+nodeKey) != key {
		prev, n = n, e.Load64(n+nodeNext)
	}
	if n == 0 {
		return nil
	}
	cnt := s.root() + rootCount
	e.Store64(cnt, e.Load64(cnt)-1)
	s.p.Persist(cnt, 8)
	next := e.Load64(n + nodeNext)
	if prev == 0 {
		e.Store64(bucket, next)
		s.p.Persist(bucket, 8)
	} else {
		e.Store64(prev+nodeNext, next)
		s.p.Persist(prev+nodeNext, 8)
	}
	s.p.Free(n, nodeSize)
	return nil
}

// validate replays the log and reconciles the dictionary against it: the
// log must be well-formed (monotonic sequence numbers, valid kinds), and
// the dictionary may lag the log by at most the final record, which
// recovery redoes — any other divergence is data loss or corruption.
func (s *store) validate() error {
	e := s.e()
	r := s.root()
	table := e.Load64(r + rootTable)
	logA := e.Load64(r + rootLogA)
	logZ := e.Load64(r + rootLogZ)
	head := e.Load64(r + rootHead)
	count := e.Load64(r + rootCount)
	if table == 0 && count == 0 && head == 0 {
		return nil // root never initialised
	}
	size := uint64(e.Size())
	if table == 0 || table+8*buckets > size || logA == 0 || logZ > size ||
		head < logA || head > logZ || (head-logA)%recSize != 0 {
		return fmt.Errorf("redis: root metadata invalid")
	}
	// Replay the log.
	want := map[uint64]uint64{}
	var seq uint64
	for off := logA; off < head; off += recSize {
		seq++
		if e.Load64(off+recSeq) != seq {
			return fmt.Errorf("redis: log record %d has sequence %d", seq, e.Load64(off+recSeq))
		}
		key := e.Load64(off + recKey)
		switch e.Load64(off + recKind) {
		case kindPut:
			want[key] = e.Load64(off + recVal)
		case kindDel:
			delete(want, key)
		default:
			return fmt.Errorf("redis: log record %d has invalid kind %d", seq, e.Load64(off+recKind))
		}
	}
	// Collect the dictionary state.
	got := map[uint64]uint64{}
	for b := uint64(0); b < buckets; b++ {
		n := e.Load64(table + 8*b)
		steps := uint64(0)
		for n != 0 {
			if n%16 != 0 || n+nodeSize > size {
				return fmt.Errorf("redis: dict node 0x%x out of bounds", n)
			}
			key := e.Load64(n + nodeKey)
			if hash(key)%buckets != b {
				return fmt.Errorf("redis: key %d in wrong bucket %d", key, b)
			}
			if _, dup := got[key]; dup {
				return fmt.Errorf("redis: key %d appears twice in the dict", key)
			}
			got[key] = e.Load64(n + nodeVal)
			if steps++; steps > count+16 {
				return fmt.Errorf("redis: bucket %d chain too long (cycle?)", b)
			}
			n = e.Load64(n + nodeNext)
		}
	}
	// The dict may lag the log by exactly the final record.
	if err := s.reconcile(want, got, logA, head); err != nil {
		return err
	}
	// Reconcile the live-key count (the final record's dict update may
	// also have been cut between count and link updates). Re-read it:
	// the redo above maintains it too.
	count = e.Load64(r + rootCount)
	live := uint64(len(want))
	switch {
	case count == live:
		return nil
	case count+1 == live || count == live+1:
		e.Store64(r+rootCount, live)
		s.p.Persist(r+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("redis: count=%d but log implies %d live keys", count, live)
	}
}

// reconcile checks got == want modulo the effect of the final record,
// which it redoes when missing.
func (s *store) reconcile(want, got map[uint64]uint64, logA, head uint64) error {
	e := s.e()
	var lastKey uint64
	haveLast := false
	if head > logA {
		lastKey = e.Load64(head - recSize + recKey)
		haveLast = true
	}
	for k, wv := range want {
		gv, ok := got[k]
		if ok && gv == wv {
			continue
		}
		if haveLast && k == lastKey {
			// Redo the final put.
			if err := s.applyPut(k, wv); err != nil {
				return err
			}
			continue
		}
		return fmt.Errorf("redis: key %d is (%d,%v) in dict but log says %d", k, gv, ok, wv)
	}
	for k := range got {
		if _, ok := want[k]; ok {
			continue
		}
		if haveLast && k == lastKey {
			// Redo the final delete.
			if err := s.applyDelete(k); err != nil {
				return err
			}
			continue
		}
		return fmt.Errorf("redis: key %d in dict but deleted per log", k)
	}
	return nil
}

var _ harness.KVApplication = (*App)(nil)

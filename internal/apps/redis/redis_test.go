package redis_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/redis"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 4 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return redis.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 250, Seed: seed, Keyspace: 100})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, redis.New(cfgBase()), smallWorkload(1))
}

func TestSemanticsLarge(t *testing.T) {
	w := workload.Generate(workload.Config{N: 6000, Seed: 2, Keyspace: 2000})
	cfg := cfgBase()
	cfg.PoolSize = 16 << 20
	apptest.KVSemantics(t, redis.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), smallWorkload(3), 0)
}

func TestLogSeqEarlyExposed(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable(redis.BugLogSeqEarly)
	apptest.ExposesBug(t, mk(cfg), smallWorkload(4), 0)
}

func TestFusedFenceBugsHiddenFromPrefix(t *testing.T) {
	for _, id := range []bugs.ID{redis.BugEntrySingleFence, redis.BugIndexFusedFence} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.HiddenFromPrefix(t, mk(cfg), smallWorkload(5), 0)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("redis/pf-01", "redis/pf-02", "redis/pf-03")
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(6), 0)
}

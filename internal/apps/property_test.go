package apps_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mumak/internal/apps"
	"mumak/internal/harness"
	"mumak/internal/oracle"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Property: for every registered target and any random operation
// sequence, the store answers reads exactly like a map.
func TestPropertyAllTargetsMatchModel(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, nRaw uint8) bool {
				n := int(nRaw)%120 + 30
				rng := rand.New(rand.NewSource(seed))
				app, err := apps.New(name, cfgFor(name))
				if err != nil {
					return false
				}
				kvApp := app.(harness.KVApplication)
				e := pmem.NewEngine(pmem.Options{PoolSize: app.PoolSize()})
				if err := app.Setup(e); err != nil {
					return false
				}
				kv, err := kvApp.Open(e)
				if err != nil {
					return false
				}
				model := map[uint64]uint64{}
				for i := 0; i < n; i++ {
					key := rng.Uint64() % 24
					switch rng.Intn(3) {
					case 0:
						val := rng.Uint64()
						if kv.Put(key, val) != nil {
							return false
						}
						model[key] = val
					case 1:
						got, ok, err := kv.Get(key)
						want, wantOK := model[key]
						if err != nil || ok != wantOK || (ok && got != want) {
							return false
						}
					case 2:
						if kv.Delete(key) != nil {
							return false
						}
						delete(model, key)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: recovery is idempotent — accepting a state once means
// accepting it again, and the recovered image keeps answering reads.
func TestPropertyRecoveryIdempotent(t *testing.T) {
	w := workload.Generate(workload.Config{N: 120, Seed: 31, Keyspace: 40})
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := apps.New(name, cfgFor(name))
			if err != nil {
				t.Fatal(err)
			}
			eng, sig, err := harness.Execute(app, w, pmem.Options{})
			if err != nil || sig != nil {
				t.Fatalf("run: %v %v", err, sig)
			}
			img := eng.PrefixImage()
			first := oracle.Check(app, img)
			if !first.Consistent() {
				t.Fatalf("final state rejected: %s", first.Describe())
			}
			// Recover again over the post-recovery engine's state.
			img2 := first.Engine.PrefixImage()
			second := oracle.Check(app, img2)
			if !second.Consistent() {
				t.Fatalf("recovery not idempotent: %s", second.Describe())
			}
			// And the recovered store still serves the written data.
			kvApp := app.(harness.KVApplication)
			kv, err := kvApp.Open(second.Engine)
			if err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			for _, op := range w.Ops {
				switch op.Kind {
				case workload.Put:
					model[op.Key] = op.Val
				case workload.Delete:
					delete(model, op.Key)
				}
			}
			for k, v := range model {
				got, ok, err := kv.Get(k)
				if err != nil || !ok || got != v {
					t.Fatalf("post-recovery get(%d) = (%d,%v,%v), want %d", k, got, ok, err, v)
				}
			}
		})
	}
}

// Package rocksdb models pmem/rocksdb for the scalability evaluation
// (§6.3): a volatile memtable in front of a persistent write-ahead log,
// periodically checkpointed into a sorted segment written with
// non-temporal stores. The segment pointer switch is the atomic commit
// of a checkpoint; the WAL truncation follows, and replaying a stale WAL
// over a fresh segment is idempotent.
package rocksdb

import (
	"errors"
	"fmt"
	"sort"

	"mumak/internal/apps"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

const (
	recSeq  = 0x00
	recKind = 0x08
	recKey  = 0x10
	recVal  = 0x18
	recSize = 0x20

	kindPut = 1
	kindDel = 2

	// Segment layout: {n u64, entries: n * {key u64, val u64}}.
	segN     = 0x00
	segData  = 0x08
	segEntry = 16

	rootWalA  = 0x00
	rootWalZ  = 0x08
	rootWalHd = 0x10 // commit point of the newest WAL record
	rootSeg   = 0x18 // current checkpoint segment (0 = none)
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80

	// flushEvery is the memtable checkpoint interval in mutations.
	flushEvery = 256
)

// ErrWalFull signals WAL exhaustion between checkpoints.
var ErrWalFull = errors.New("rocksdb: write-ahead log full")

// App is the PM-RocksDB model.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("rocksdb", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "pm-rocksdb" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 128 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	walBytes := flushEvery * 2 * recSize
	wal, err := p.AllocZeroed(walBytes)
	if err != nil {
		return err
	}
	r := p.Root()
	e.Store64(r+rootWalA, wal)
	e.Store64(r+rootWalZ, wal+uint64(walBytes))
	e.Store64(r+rootWalHd, wal)
	e.Store64(r+rootSeg, 0)
	// The stats scratch line (rootStats) stays unflushed by design.
	p.Persist(r, rootStats)
	return nil
}

// Open implements harness.KVApplication: rebuild the memtable from the
// checkpoint segment plus the WAL tail.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	db := &store{p: p, mem: map[uint64]uint64{}}
	if err := db.replay(); err != nil {
		return nil, err
	}
	return db, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application: the replay itself is the
// recovery procedure; it fails on malformed WAL records or segments.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	db := &store{p: p, mem: map[uint64]uint64{}}
	return db.replay()
}

type store struct {
	p    *pmdk.Pool
	mem  map[uint64]uint64
	muts int
	// oldSegs tracks segments to free after the next checkpoint.
	oldSeg uint64
}

func (s *store) e() *pmem.Engine { return s.p.Engine() }
func (s *store) root() uint64    { return s.p.Root() }

// replay rebuilds the memtable: checkpoint segment first, then the WAL
// tail, validating both.
func (s *store) replay() error {
	e := s.e()
	r := s.root()
	walA := e.Load64(r + rootWalA)
	walZ := e.Load64(r + rootWalZ)
	head := e.Load64(r + rootWalHd)
	seg := e.Load64(r + rootSeg)
	size := uint64(e.Size())
	if walA == 0 && head == 0 {
		return nil // root never initialised
	}
	if walA == 0 || walZ > size || head < walA || head > walZ || (head-walA)%recSize != 0 {
		return fmt.Errorf("rocksdb: WAL metadata invalid")
	}
	if seg != 0 {
		if seg+segData > size {
			return fmt.Errorf("rocksdb: segment 0x%x out of bounds", seg)
		}
		n := e.Load64(seg + segN)
		if seg+segData+n*segEntry > size {
			return fmt.Errorf("rocksdb: segment 0x%x length %d out of bounds", seg, n)
		}
		var last uint64
		for i := uint64(0); i < n; i++ {
			k := e.Load64(seg + segData + i*segEntry)
			if i > 0 && k <= last {
				return fmt.Errorf("rocksdb: segment unsorted at entry %d", i)
			}
			last = k
			s.mem[k] = e.Load64(seg + segData + i*segEntry + 8)
		}
	}
	var seq uint64
	for off := walA; off < head; off += recSize {
		seq++
		if e.Load64(off+recSeq) != seq {
			return fmt.Errorf("rocksdb: WAL record %d has sequence %d", seq, e.Load64(off+recSeq))
		}
		key := e.Load64(off + recKey)
		switch e.Load64(off + recKind) {
		case kindPut:
			s.mem[key] = e.Load64(off + recVal)
		case kindDel:
			delete(s.mem, key)
		default:
			return fmt.Errorf("rocksdb: WAL record %d has invalid kind", seq)
		}
	}
	return nil
}

// Get implements harness.KV.
func (s *store) Get(key uint64) (uint64, bool, error) {
	v, ok := s.mem[key]
	return v, ok, nil
}

// Put implements harness.KV.
func (s *store) Put(key, val uint64) error {
	if err := s.appendWal(kindPut, key, val); err != nil {
		return err
	}
	s.mem[key] = val
	return s.maybeFlush()
}

// Delete implements harness.KV.
func (s *store) Delete(key uint64) error {
	if _, ok := s.mem[key]; !ok {
		return nil
	}
	if err := s.appendWal(kindDel, key, 0); err != nil {
		return err
	}
	delete(s.mem, key)
	return s.maybeFlush()
}

// appendWal seals one record: body first, head pointer as commit point.
func (s *store) appendWal(kind, key, val uint64) error {
	e := s.e()
	r := s.root()
	head := e.Load64(r + rootWalHd)
	if head+recSize > e.Load64(r+rootWalZ) {
		return ErrWalFull
	}
	walA := e.Load64(r + rootWalA)
	e.Store64(head+recSeq, (head-walA)/recSize+1)
	e.Store64(head+recKind, kind)
	e.Store64(head+recKey, key)
	e.Store64(head+recVal, val)
	s.p.Persist(head, recSize)
	e.Store64(r+rootWalHd, head+recSize)
	s.p.Persist(r+rootWalHd, 8)
	return nil
}

// maybeFlush checkpoints the memtable into a fresh sorted segment every
// flushEvery mutations. Segment bytes go through non-temporal stores —
// the streaming-write path of a real LSM flush.
func (s *store) maybeFlush() error {
	s.muts++
	if s.muts%flushEvery != 0 {
		return nil
	}
	e := s.e()
	r := s.root()
	keys := make([]uint64, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	segBytes := segData + len(keys)*segEntry
	seg, err := s.p.Alloc(segBytes)
	if err != nil {
		return err
	}
	e.NTStore64(seg+segN, uint64(len(keys)))
	for i, k := range keys {
		e.NTStore64(seg+segData+uint64(i)*segEntry, k)
		e.NTStore64(seg+segData+uint64(i)*segEntry+8, s.mem[k])
	}
	s.p.Drain() // the segment is durable before it is published
	old := e.Load64(r + rootSeg)
	e.Store64(r+rootSeg, seg) // atomic checkpoint switch
	s.p.Persist(r+rootSeg, 8)
	// Truncate the WAL; replaying a stale tail over the fresh segment
	// would be idempotent, so a crash between these steps is benign.
	e.Store64(r+rootWalHd, e.Load64(r+rootWalA))
	s.p.Persist(r+rootWalHd, 8)
	if old != 0 {
		n := e.Load64(old + segN)
		s.p.Free(old, segData+int(n)*segEntry)
	}
	return nil
}

var _ harness.KVApplication = (*App)(nil)

package rocksdb_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/rocksdb"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 4 << 20} }

func TestKVSemantics(t *testing.T) {
	w := workload.Generate(workload.Config{N: 1200, Seed: 1, Keyspace: 300})
	apptest.KVSemantics(t, rocksdb.New(cfgBase()), w)
}

func TestSemanticsManyCheckpoints(t *testing.T) {
	w := workload.Generate(workload.Config{N: 6000, Seed: 2, Keyspace: 800})
	cfg := cfgBase()
	cfg.PoolSize = 32 << 20
	apptest.KVSemantics(t, rocksdb.New(cfg), w)
}

func TestCrashConsistent(t *testing.T) {
	// Cover several checkpoint cycles: the flush protocol's windows
	// (segment switch, WAL truncation) are the interesting states.
	w := workload.Generate(workload.Config{N: 900, Seed: 3, Keyspace: 200})
	mk := func() harness.Application { return rocksdb.New(cfgBase()) }
	apptest.CrashConsistent(t, mk, w, 0)
}

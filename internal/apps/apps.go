// Package apps registers the PM applications under test.
//
// The targets mirror the paper's evaluation subjects: the PMDK
// libpmemobj example data stores (btree, rbtree, hashmap_atomic), the
// Witcher coverage targets (Level Hashing, CCEH, FAST&FAIR, WORT, ART as
// the RECIPE member, PM-Redis), the scalability targets (pmemkv cmap and
// stree, Montage hashtables, PM-RocksDB), each re-implemented from
// scratch against the pmem engine with its own persistence protocol and
// recovery procedure.
package apps

import (
	"fmt"
	"sort"

	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
)

// Config parameterises application construction.
type Config struct {
	// Ver selects the PMDK library version for PMDK-based targets.
	Ver pmdk.Version
	// SPT selects "single put per transaction" mode for the
	// transactional targets (§6.1); the default wraps all puts of a
	// run in one transaction, as the original examples do.
	SPT bool
	// Bugs selects the seeded defects to plant.
	Bugs bugs.Set
	// WithRecovery enables the full recovery procedure for targets
	// that ship without one (the Level Hashing story of §6.2).
	// Most targets ignore it and always recover fully.
	WithRecovery bool
	// MontageBuggy enables both historical Montage bugs (§6.4) in the
	// Montage-based targets; the two fields below select them
	// individually.
	MontageBuggy      bool
	MontageBuggyAlloc bool
	MontageBuggyClose bool
	// PoolSize overrides the target's default pool size when non-zero.
	PoolSize int
}

// Factory constructs an application instance.
type Factory func(Config) harness.Application

var registry = map[string]Factory{}

// Register adds a factory under a unique name; it panics on duplicates
// and is called from the app packages' init functions via Must.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("apps: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Names lists the registered applications, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New constructs the named application.
func New(name string, cfg Config) (harness.Application, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return f(cfg), nil
}

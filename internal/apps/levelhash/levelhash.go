// Package levelhash reimplements Level Hashing (Zuo et al., OSDI'18): a
// write-optimised two-level bucketised hash table for PM. Every key has
// four candidate buckets — two hash functions over the top level, and
// their images in the half-sized bottom level — with one-step
// displacement before a resize doubles the top level.
//
// The package is the §6.2 oracle case study: the original system ships
// without a recovery procedure, so Config.WithRecovery toggles between a
// minimal open-and-bounds-check recovery (under which only one of the 17
// seeded crash-consistency bugs is detectable) and the paper's added
// ~20-line recovery that traverses the structure, reconciles the
// persisted counters and dedupes interrupted displacements.
//
// Bug knobs: levelhash/c01..c17 (fault injection; see internal/bugs for
// descriptions) and levelhash/pf-01..pf-12 (trace analysis).
package levelhash

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

const (
	slotsPerBucket = 4

	slotTag  = 0x00 // u64: 1 = occupied
	slotKey  = 0x08
	slotVal  = 0x10
	slotSize = 0x18
	bucket   = slotsPerBucket * slotSize

	// Root layout: an active-selector word plus two metadata records,
	// so a resize publishes atomically by flipping the selector.
	rootActive = 0x00 // u64: 0 or 1
	rootMeta0  = 0x08 // {top u64, bottom u64, logTop u64}
	rootMeta1  = 0x20
	rootCount  = 0x38
	rootStats  = 0x40 // own cache line: never flushed by design
	rootSize   = 0x80
	metaTop    = 0x00
	metaBottom = 0x08
	metaLog    = 0x10

	initialLog = 4 // 16 top buckets, 8 bottom buckets
)

// ErrFull is returned when a resize cannot place every item (it cannot
// happen with the displacement step but is kept for API completeness).
var ErrFull = errors.New("levelhash: table full")

func b(i int) bugs.ID { return bugs.ID(fmt.Sprintf("levelhash/c%02d-%s", i, slugs[i])) }

// slugs must match the registry entries.
var slugs = map[int]string{
	1: "top-slot-count-order", 2: "bottom-slot-count-order",
	3: "top-alt-count-order", 4: "bottom-alt-count-order",
	5: "delete-unlink-first", 6: "delete-alt-unlink-first",
	7: "resize-remove-first", 8: "resize-alt-remove-first",
	9: "resize-publish-early", 10: "resize-count-early",
	11: "tag-before-kv", 12: "tag-before-kv-bottom",
	13: "update-clear-first", 14: "update-clear-first-alt",
	15: "swap-evict-order", 16: "swap-evict-order-alt",
	17: "resize-old-free-early",
}

// App is the Level Hashing store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("levelhash", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "levelhash" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	h := &level{p: p, cfg: a.cfg}
	top, bottom, err := h.allocLevels(initialLog)
	if err != nil {
		return err
	}
	r := p.Root()
	e.Store64(r+rootMeta0+metaTop, top)
	e.Store64(r+rootMeta0+metaBottom, bottom)
	e.Store64(r+rootMeta0+metaLog, initialLog)
	e.Store64(r+rootCount, 0)
	// One persist covers the metadata record and the count (they share
	// a cache line; Mumak's own trace analysis flags the split version
	// as a redundant flush).
	p.Persist(r+rootMeta0, rootCount-rootMeta0+8)
	e.Store64(r+rootActive, 0)
	p.Persist(r+rootActive, 8)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &level{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application. Without WithRecovery it
// mirrors the original system: open the pool and bounds-check the active
// metadata, nothing more — the imperfect oracle of §6.2. With it, the
// added recovery walks every bucket, validates placement, dedupes
// interrupted displacements and reconciles the count.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	h := &level{p: p, cfg: a.cfg}
	if !a.cfg.WithRecovery {
		return h.minimalCheck()
	}
	if err := h.minimalCheck(); err != nil {
		return err
	}
	return h.validate()
}

type level struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (h *level) e() *pmem.Engine { return h.p.Engine() }
func (h *level) root() uint64    { return h.p.Root() }

func (h *level) has(i int) bool { return h.cfg.Bugs.Has(b(i)) }

func (h *level) meta() (top, bottom uint64, logTop uint) {
	r := h.root()
	active := h.e().Load64(r + rootActive)
	m := r + rootMeta0
	if active == 1 {
		m = r + rootMeta1
	}
	return h.e().Load64(m + metaTop), h.e().Load64(m + metaBottom), uint(h.e().Load64(m + metaLog))
}

func (h *level) allocLevels(logTop uint) (top, bottom uint64, err error) {
	top, err = h.p.AllocZeroed(bucket << logTop)
	if err != nil {
		return 0, 0, err
	}
	h.p.Persist(top, bucket<<logTop)
	bottom, err = h.p.AllocZeroed(bucket << (logTop - 1))
	if err != nil {
		return 0, 0, err
	}
	h.p.Persist(bottom, bucket<<(logTop-1))
	return top, bottom, nil
}

func hash1(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	key *= 0xC4CEB9FE1A85EC53
	key ^= key >> 33
	return key
}

func hash2(key uint64) uint64 {
	key ^= 0xA5A5A5A5A5A5A5A5
	key ^= key >> 30
	key *= 0xBF58476D1CE4E5B9
	key ^= key >> 27
	key *= 0x94D049BB133111EB
	key ^= key >> 31
	return key
}

// candidate returns the address of the idx-th candidate bucket for key:
// 0 = top/h1, 1 = top/h2, 2 = bottom/h1, 3 = bottom/h2.
func (h *level) candidate(top, bottom uint64, logTop uint, key uint64, idx int) uint64 {
	switch idx {
	case 0:
		return top + bucket*(hash1(key)&((1<<logTop)-1))
	case 1:
		return top + bucket*(hash2(key)&((1<<logTop)-1))
	case 2:
		return bottom + bucket*(hash1(key)&((1<<(logTop-1))-1))
	default:
		return bottom + bucket*(hash2(key)&((1<<(logTop-1))-1))
	}
}

// findSlot returns the slot address holding key, plus the candidate
// index it was found at, or 0.
func (h *level) findSlot(key uint64) (uint64, int) {
	top, bottom, logTop := h.meta()
	for idx := 0; idx < 4; idx++ {
		bkt := h.candidate(top, bottom, logTop, key, idx)
		for s := 0; s < slotsPerBucket; s++ {
			slot := bkt + uint64(s)*slotSize
			if h.e().Load64(slot+slotTag) == 1 && h.e().Load64(slot+slotKey) == key {
				return slot, idx
			}
		}
	}
	return 0, -1
}

// Get implements harness.KV.
func (h *level) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "levelhash", 4, 6, 0, h.root()+rootStats)
	slot, _ := h.findSlot(key)
	if slot == 0 {
		return 0, false, nil
	}
	return h.e().Load64(slot + slotVal), true, nil
}

// writeSlot stores an item into an empty slot with the correct
// (value-then-tag) or buggy (tag-first) ordering. bottom selects the
// tag-before-kv knob variant.
func (h *level) writeSlot(slot, key, val uint64, bottom bool) {
	e := h.e()
	tagFirst := (!bottom && h.has(11)) || (bottom && h.has(12))
	if tagFirst {
		// BUG: the occupied tag is persisted before the key and value.
		e.Store64(slot+slotTag, 1)
		h.p.Persist(slot+slotTag, 8)
		e.Store64(slot+slotKey, key)
		e.Store64(slot+slotVal, val)
		h.p.Persist(slot+slotKey, 16)
		return
	}
	e.Store64(slot+slotKey, key)
	e.Store64(slot+slotVal, val)
	h.p.Persist(slot+slotKey, 16)
	e.Store64(slot+slotTag, 1)
	h.p.Persist(slot+slotTag, 8)
}

// bumpCount adjusts the persisted count; countFirst selects the buggy
// order in which the count changes before the slot.
func (h *level) bumpCount(delta int64) {
	addr := h.root() + rootCount
	h.e().Store64(addr, h.e().Load64(addr)+uint64(delta))
	h.p.Persist(addr, 8)
}

// emptySlotIn returns the address of a free slot in bucket, or 0.
func (h *level) emptySlotIn(bkt uint64) uint64 {
	for s := 0; s < slotsPerBucket; s++ {
		slot := bkt + uint64(s)*slotSize
		if h.e().Load64(slot+slotTag) == 0 {
			return slot
		}
	}
	return 0
}

// Put implements harness.KV.
func (h *level) Put(key, val uint64) error {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "levelhash", 1, 3, 0, h.root()+rootStats)
	// Update in place when present.
	if slot, idx := h.findSlot(key); slot != 0 {
		perfbug.ApplyN(h.e(), h.cfg.Bugs, "levelhash", 10, 12, 0, h.root()+rootStats)
		alt := idx == 1 || idx == 3
		if (!alt && h.has(13)) || (alt && h.has(14)) {
			// BUG: the update clears the tag, persists, then rewrites
			// the item; the window loses the key.
			h.e().Store64(slot+slotTag, 0)
			h.p.Persist(slot+slotTag, 8)
			h.e().Store64(slot+slotVal, val)
			h.p.Persist(slot+slotVal, 8)
			h.e().Store64(slot+slotTag, 1)
			h.p.Persist(slot+slotTag, 8)
			return nil
		}
		// Correct: an atomic 8-byte value overwrite.
		h.e().Store64(slot+slotVal, val)
		h.p.Persist(slot+slotVal, 8)
		return nil
	}
	if err := h.insertNew(key, val); err != nil {
		return err
	}
	return nil
}

// insertNew places a new key, displacing or resizing when needed.
func (h *level) insertNew(key, val uint64) error {
	for {
		top, bottom, logTop := h.meta()
		for idx := 0; idx < 4; idx++ {
			bkt := h.candidate(top, bottom, logTop, key, idx)
			slot := h.emptySlotIn(bkt)
			if slot == 0 {
				continue
			}
			countFirst := map[int]bool{0: h.has(1), 1: h.has(3), 2: h.has(2), 3: h.has(4)}[idx]
			if countFirst {
				// BUG: the count is persisted before the item exists.
				h.bumpCount(1)
				h.writeSlot(slot, key, val, idx >= 2)
				return nil
			}
			h.writeSlot(slot, key, val, idx >= 2)
			h.bumpCount(1)
			return nil
		}
		if h.displace(top, bottom, logTop, key) {
			continue
		}
		if err := h.resize(); err != nil {
			return err
		}
	}
}

// displace frees a slot in one of key's candidate buckets by moving a
// victim elsewhere. Two movement forms exist, as in the original system:
// a top-to-top move to the victim's alternate top bucket, and a
// bottom-to-top promotion. The forms are tried in a key-dependent order
// so dense workloads exercise both.
func (h *level) displace(top, bottom uint64, logTop uint, key uint64) bool {
	if (hash1(key)>>16)&1 == 0 {
		return h.promote(top, bottom, logTop, key) || h.topMove(top, bottom, logTop, key)
	}
	return h.topMove(top, bottom, logTop, key) || h.promote(top, bottom, logTop, key)
}

// moveVictim relocates the item in victim to the free slot dst,
// correctly (copy, persist, clear — a transient duplicate the recovery
// dedupes) or evict-first under the given bug knob.
func (h *level) moveVictim(victim, dst uint64, evictFirst bool) {
	e := h.e()
	vk := e.Load64(victim + slotKey)
	vv := e.Load64(victim + slotVal)
	if evictFirst {
		// BUG: the victim is removed before its copy exists.
		e.Store64(victim+slotTag, 0)
		h.p.Persist(victim+slotTag, 8)
		h.writeSlot(dst, vk, vv, false)
		return
	}
	h.writeSlot(dst, vk, vv, false)
	e.Store64(victim+slotTag, 0)
	h.p.Persist(victim+slotTag, 8)
}

// topMove relocates a victim from one of key's top candidate buckets to
// the victim's alternate top bucket (bug knob 15).
func (h *level) topMove(top, bottom uint64, logTop uint, key uint64) bool {
	e := h.e()
	for idx := 0; idx < 2; idx++ {
		bkt := h.candidate(top, bottom, logTop, key, idx)
		for s := 0; s < slotsPerBucket; s++ {
			victim := bkt + uint64(s)*slotSize
			if e.Load64(victim+slotTag) != 1 {
				continue
			}
			vk := e.Load64(victim + slotKey)
			altIdx := 0
			if h.candidate(top, bottom, logTop, vk, 0) == bkt {
				altIdx = 1
			}
			free := h.emptySlotIn(h.candidate(top, bottom, logTop, vk, altIdx))
			if free == 0 {
				continue
			}
			h.moveVictim(victim, free, h.has(15))
			return true
		}
	}
	return false
}

// promote relocates a victim from one of key's bottom candidate buckets
// up to one of the victim's own top buckets (bug knob 16).
func (h *level) promote(top, bottom uint64, logTop uint, key uint64) bool {
	e := h.e()
	for idx := 2; idx < 4; idx++ {
		bkt := h.candidate(top, bottom, logTop, key, idx)
		for s := 0; s < slotsPerBucket; s++ {
			victim := bkt + uint64(s)*slotSize
			if e.Load64(victim+slotTag) != 1 {
				continue
			}
			vk := e.Load64(victim + slotKey)
			for _, tIdx := range []int{0, 1} {
				free := h.emptySlotIn(h.candidate(top, bottom, logTop, vk, tIdx))
				if free == 0 {
					continue
				}
				h.moveVictim(victim, free, h.has(16))
				return true
			}
		}
	}
	return false
}

// Delete implements harness.KV.
func (h *level) Delete(key uint64) error {
	perfbug.ApplyN(h.e(), h.cfg.Bugs, "levelhash", 7, 9, 0, h.root()+rootStats)
	slot, idx := h.findSlot(key)
	if slot == 0 {
		return nil
	}
	alt := idx == 1 || idx == 3
	unlinkFirst := (!alt && h.has(5)) || (alt && h.has(6))
	if unlinkFirst {
		// BUG: the slot disappears before the count reflects it.
		h.e().Store64(slot+slotTag, 0)
		h.p.Persist(slot+slotTag, 8)
		h.bumpCount(-1)
		return nil
	}
	// Correct: decrement first; the window reads as one extra
	// reachable item, which recovery repairs.
	h.bumpCount(-1)
	h.e().Store64(slot+slotTag, 0)
	h.p.Persist(slot+slotTag, 8)
	if idx < 2 {
		// A top-level slot opened up: promote a matching bottom item
		// into it to keep the fast level dense (bottom-to-top
		// movement).
		h.promoteInto(slot)
	}
	return nil
}

// promoteInto fills a freed top-level slot with the first bottom-level
// item that hashes to its bucket (bug knob 16).
func (h *level) promoteInto(freeSlot uint64) {
	e := h.e()
	top, bottom, logTop := h.meta()
	// Identify the top bucket the slot belongs to.
	b := (freeSlot - top) / bucket
	mask := uint64(1<<logTop) - 1
	for bb := uint64(0); bb < 1<<(logTop-1); bb++ {
		for s := 0; s < slotsPerBucket; s++ {
			victim := bottom + bb*bucket + uint64(s)*slotSize
			if e.Load64(victim+slotTag) != 1 {
				continue
			}
			vk := e.Load64(victim + slotKey)
			if hash1(vk)&mask != b && hash2(vk)&mask != b {
				continue
			}
			h.moveVictim(victim, freeSlot, h.has(16))
			return
		}
	}
}

// resize doubles the top level: the old top becomes the new bottom and
// every old-bottom item is reinserted into the new top. The new
// structure is published by atomically flipping the selector word.
func (h *level) resize() error {
	e := h.e()
	r := h.root()
	oldTop, oldBottom, logTop := h.meta()
	newLog := logTop + 1
	newTop, err := h.p.AllocZeroed(bucket << newLog)
	if err != nil {
		return err
	}
	h.p.Persist(newTop, bucket<<newLog)
	// Prepare the inactive metadata record.
	active := e.Load64(r + rootActive)
	activeMeta := r + rootMeta0
	inactive := r + rootMeta1
	if active == 1 {
		activeMeta, inactive = inactive, activeMeta
	}
	if h.has(10) {
		// BUG: the new capacity is persisted into the *active* record
		// before any item has moved; until the end of the rehash the
		// live structure claims buckets it does not have.
		e.Store64(activeMeta+metaLog, uint64(newLog))
		h.p.Persist(activeMeta+metaLog, 8)
	}
	e.Store64(inactive+metaTop, newTop)
	e.Store64(inactive+metaBottom, oldTop)
	e.Store64(inactive+metaLog, uint64(newLog))
	h.p.Persist(inactive, 24)

	if h.has(9) {
		// BUG: the selector flips before the rehash below has moved
		// anything — and in this variant the metadata record is
		// re-persisted only afterwards, so even the minimal recovery's
		// bounds check can observe a torn record.
		e.Store64(r+rootActive, 1-active)
		h.p.Persist(r+rootActive, 8)
		e.Store64(inactive+metaTop, newTop)
		e.Store64(inactive+metaBottom, 0) // transiently invalid
		h.p.Persist(inactive, 24)
		e.Store64(inactive+metaBottom, oldTop)
		h.p.Persist(inactive, 24)
	}
	if h.has(17) {
		// BUG: the resize releases the wrong level — the old top,
		// which lives on as the new bottom. The allocator's free-list
		// header clobbers its first slots and later allocations will
		// reuse live memory.
		h.p.Free(oldTop, bucket<<logTop)
	}
	// Reinsert every old-bottom item into the new top level.
	for bkt := uint64(0); bkt < 1<<(logTop-1); bkt++ {
		for s := 0; s < slotsPerBucket; s++ {
			slot := oldBottom + bkt*bucket + uint64(s)*slotSize
			if e.Load64(slot+slotTag) != 1 {
				continue
			}
			k := e.Load64(slot + slotKey)
			v := e.Load64(slot + slotVal)
			placed := false
			// Balance the reinsertion across both hash functions so
			// the two movement paths stay comparably hot.
			order := [2]int{0, 1}
			if (hash1(k)>>17)&1 != 0 {
				order = [2]int{1, 0}
			}
			for _, idx := range order {
				dstBkt := newTop + bucket*(hashFor(idx, k)&((1<<newLog)-1))
				if free := h.emptySlotIn(dstBkt); free != 0 {
					removeFirst := (idx == 0 && h.has(7)) || (idx == 1 && h.has(8))
					if removeFirst {
						// BUG: the still-active old slot is cleared
						// before the copy exists in the new level.
						e.Store64(slot+slotTag, 0)
						h.p.Persist(slot+slotTag, 8)
					}
					h.writeSlot(free, k, v, false)
					placed = true
					break
				}
			}
			if !placed {
				return ErrFull
			}
		}
	}
	if h.has(10) {
		// Restore the active record before the switch (the window
		// above is the bug).
		e.Store64(activeMeta+metaLog, uint64(logTop))
		h.p.Persist(activeMeta+metaLog, 8)
	}
	if !h.has(9) {
		e.Store64(r+rootActive, 1-active)
		h.p.Persist(r+rootActive, 8)
	}
	if !h.has(17) {
		h.p.Free(oldBottom, bucket<<(logTop-1))
	}
	return nil
}

func hashFor(idx int, key uint64) uint64 {
	if idx == 0 {
		return hash1(key)
	}
	return hash2(key)
}

// minimalCheck is the recovery the original system effectively has:
// bounds-check the active metadata record.
func (h *level) minimalCheck() error {
	top, bottom, logTop := h.meta()
	size := uint64(h.e().Size())
	count := h.e().Load64(h.root() + rootCount)
	if top == 0 && bottom == 0 && count == 0 {
		return nil // root never initialised: fresh state
	}
	if top == 0 || bottom == 0 || logTop == 0 || logTop > 40 ||
		top+(bucket<<logTop) > size || bottom+(bucket<<(logTop-1)) > size {
		return fmt.Errorf("levelhash: active level metadata invalid (top=0x%x bottom=0x%x log=%d)",
			top, bottom, logTop)
	}
	return nil
}

// validate is the added ~20-line recovery of §6.2: traverse the
// structure, count the reachable items, compare the result with the
// persisted counter, and repair the benign windows (duplicate from an
// interrupted displacement, count one short).
func (h *level) validate() error {
	e := h.e()
	top, bottom, logTop := h.meta()
	if top == 0 && bottom == 0 {
		return nil
	}
	seen := map[uint64]uint64{} // key -> first slot
	var reachable uint64
	scan := func(base uint64, buckets uint64, isBottom bool) error {
		for bkt := uint64(0); bkt < buckets; bkt++ {
			for s := 0; s < slotsPerBucket; s++ {
				slot := base + bkt*bucket + uint64(s)*slotSize
				if e.Load64(slot+slotTag) != 1 {
					continue
				}
				key := e.Load64(slot + slotKey)
				if !h.placementOK(top, bottom, logTop, key, base, bkt, isBottom) {
					return fmt.Errorf("levelhash: key %d misplaced in bucket %d", key, bkt)
				}
				if _, dup := seen[key]; dup {
					// An interrupted displacement left a duplicate:
					// repair by clearing this copy.
					e.Store64(slot+slotTag, 0)
					h.p.Persist(slot+slotTag, 8)
					continue
				}
				seen[key] = slot
				reachable++
			}
		}
		return nil
	}
	if err := scan(top, 1<<logTop, false); err != nil {
		return err
	}
	if err := scan(bottom, 1<<(logTop-1), true); err != nil {
		return err
	}
	count := e.Load64(h.root() + rootCount)
	switch {
	case reachable == count:
		return nil
	case reachable == count+1:
		e.Store64(h.root()+rootCount, reachable)
		h.p.Persist(h.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("levelhash: count=%d but %d items reachable", count, reachable)
	}
}

func (h *level) placementOK(top, bottom uint64, logTop uint, key, base, bkt uint64, isBottom bool) bool {
	if isBottom {
		mask := uint64(1<<(logTop-1)) - 1
		return hash1(key)&mask == bkt || hash2(key)&mask == bkt
	}
	mask := uint64(1<<logTop) - 1
	return hash1(key)&mask == bkt || hash2(key)&mask == bkt
}

var _ harness.KVApplication = (*App)(nil)

package levelhash_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/levelhash"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 2 << 20, WithRecovery: true} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return levelhash.New(cfg) }
}

// denseWorkload fills the table enough to exercise displacement and at
// least one resize (initial capacity is 96 slots).
func denseWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 500, Seed: seed, Keyspace: 300, PutFrac: 3, GetFrac: 1, DeleteFrac: 1})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, levelhash.New(cfgBase()), denseWorkload(1))
}

func TestSemanticsAcrossManyResizes(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3000, Seed: 2, Keyspace: 1200})
	cfg := cfgBase()
	cfg.PoolSize = 16 << 20
	apptest.KVSemantics(t, levelhash.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), denseWorkload(3), 250)
}

func TestAllSeventeenBugsExposedWithRecovery(t *testing.T) {
	for _, b := range bugs.ForApp("levelhash") {
		if !b.Correctness() {
			continue
		}
		b := b
		t.Run(string(b.ID), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(b.ID)
			apptest.ExposesBug(t, mk(cfg), denseWorkload(4), 350)
		})
	}
}

func TestOnlyPublishEarlyExposedWithoutRecovery(t *testing.T) {
	// Reproduces the §6.2 story: with the original (absent) recovery,
	// the oracle accepts almost every crash state. Only the
	// resize-publish-early bug corrupts the metadata the minimal open
	// path checks.
	found := map[string]bool{}
	for _, b := range bugs.ForApp("levelhash") {
		if !b.Correctness() {
			continue
		}
		cfg := cfgBase()
		cfg.WithRecovery = false
		cfg.Bugs = bugs.Enable(b.ID)
		found[string(b.ID)] = apptest.Exposes(t, mk(cfg), denseWorkload(5), 350)
	}
	exposedCount := 0
	for id, ok := range found {
		if ok {
			exposedCount++
			if id != "levelhash/c09-resize-publish-early" {
				t.Errorf("bug %s unexpectedly exposed without recovery", id)
			}
		}
	}
	if exposedCount != 1 {
		t.Errorf("bugs exposed without recovery = %d, want exactly 1 (§6.2)", exposedCount)
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("levelhash/pf-01", "levelhash/pf-02", "levelhash/pf-03",
		"levelhash/pf-10", "levelhash/pf-11", "levelhash/pf-12")
	apptest.CrashConsistent(t, mk(cfg), denseWorkload(6), 200)
}

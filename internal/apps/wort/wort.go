// Package wort reimplements WORT (Lee et al., FAST'17): a write-optimal
// radix tree for PM. Keys are walked four bits at a time; leaves attach
// directly to child slots with a tag bit, so every update completes with
// a single failure-atomic 8-byte pointer store once the data it publishes
// is durable — the property that makes the tree write-optimal.
//
// Bug knobs: wort/child-publish-early (fault injection),
// wort/leaf-single-fence and wort/prefix-split-fused (hidden from
// program-order prefixes), and wort/pf-01..pf-10 (trace analysis).
package wort

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers.
const (
	// BugChildPublishEarly persists the child pointer before the
	// subtree it publishes exists.
	BugChildPublishEarly bugs.ID = "wort/child-publish-early"
	// BugLeafSingleFence fuses the leaf write-back and the pointer
	// write-back under one fence (hidden from prefixes).
	BugLeafSingleFence bugs.ID = "wort/leaf-single-fence"
	// BugPrefixSplitFused fuses the collision subtree and its
	// publication under one fence (hidden from prefixes).
	BugPrefixSplitFused bugs.ID = "wort/prefix-split-fused"
)

const (
	fanout   = 16
	nibbles  = 16 // 64-bit keys, 4 bits each
	nodeSize = fanout * 8

	leafKey  = 0x00
	leafVal  = 0x08
	leafSize = 0x10

	// leafTag marks a child pointer as a leaf (allocations are
	// 16-aligned, so the low bits are free).
	leafTag = 1

	rootNode  = 0x00
	rootCount = 0x08
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
)

// App is the WORT store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("wort", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "wort" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	node, err := p.AllocZeroed(nodeSize)
	if err != nil {
		return err
	}
	p.Persist(node, nodeSize)
	e.Store64(p.Root()+rootNode, node)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &radix{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	r := &radix{p: p, cfg: a.cfg}
	return r.validate()
}

type radix struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (r *radix) e() *pmem.Engine { return r.p.Engine() }
func (r *radix) root() uint64    { return r.p.Root() }

func nibble(key uint64, depth int) uint64 {
	return (key >> (60 - 4*depth)) & 0xf
}

func isLeaf(ptr uint64) bool { return ptr&leafTag != 0 }
func leafOff(ptr uint64) uint64 {
	return ptr &^ uint64(leafTag)
}

func (r *radix) slotAddr(node uint64, depth int, key uint64) uint64 {
	return node + 8*nibble(key, depth)
}

// Get implements harness.KV.
func (r *radix) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(r.e(), r.cfg.Bugs, "wort", 4, 6, 0, r.root()+rootStats)
	e := r.e()
	node := e.Load64(r.root() + rootNode)
	for depth := 0; depth < nibbles; depth++ {
		ptr := e.Load64(r.slotAddr(node, depth, key))
		if ptr == 0 {
			return 0, false, nil
		}
		if isLeaf(ptr) {
			off := leafOff(ptr)
			if e.Load64(off+leafKey) == key {
				return e.Load64(off + leafVal), true, nil
			}
			return 0, false, nil
		}
		node = ptr
	}
	return 0, false, nil
}

// newLeaf allocates and (correctly) persists a leaf.
func (r *radix) newLeaf(key, val uint64, persist bool) (uint64, error) {
	off, err := r.p.AllocZeroed(leafSize)
	if err != nil {
		return 0, err
	}
	r.e().Store64(off+leafKey, key)
	r.e().Store64(off+leafVal, val)
	if persist {
		r.p.Persist(off, leafSize)
	} else {
		r.p.Flush(off, leafSize)
	}
	return off, nil
}

// Put implements harness.KV.
func (r *radix) Put(key, val uint64) error {
	perfbug.ApplyN(r.e(), r.cfg.Bugs, "wort", 1, 3, 0, r.root()+rootStats)
	e := r.e()
	node := e.Load64(r.root() + rootNode)
	for depth := 0; depth < nibbles; depth++ {
		slot := r.slotAddr(node, depth, key)
		ptr := e.Load64(slot)
		if ptr == 0 {
			// Empty slot: persist the leaf, then publish it with one
			// atomic pointer store (the WORT update rule).
			fused := r.cfg.Bugs.Has(BugLeafSingleFence)
			leaf, err := r.newLeaf(key, val, !fused)
			if err != nil {
				return err
			}
			e.Store64(slot, leaf|leafTag)
			if fused {
				// BUG (hidden from prefixes): leaf and pointer
				// write-backs share one fence.
				r.p.Flush(slot, 8)
				r.p.Drain()
			} else {
				r.p.Persist(slot, 8)
			}
			return r.bumpCount(1)
		}
		if isLeaf(ptr) {
			off := leafOff(ptr)
			if e.Load64(off+leafKey) == key {
				// Overwrite: one atomic persisted store.
				e.Store64(off+leafVal, val)
				r.p.Persist(off+leafVal, 8)
				return nil
			}
			// Collision: grow a chain of internal nodes covering the
			// shared nibbles, ending with both leaves, then publish
			// the chain with one atomic pointer store.
			if err := r.splitLeaf(slot, off, depth+1, key, val); err != nil {
				return err
			}
			return r.bumpCount(1)
		}
		node = ptr
	}
	return fmt.Errorf("wort: key %d exhausted all nibbles", key)
}

// splitLeaf replaces the leaf at slot (holding oldOff) with a subtree
// distinguishing oldKey from key, starting at depth.
func (r *radix) splitLeaf(slot, oldOff uint64, depth int, key, val uint64) error {
	e := r.e()
	oldKey := e.Load64(oldOff + leafKey)

	publishEarly := r.cfg.Bugs.Has(BugChildPublishEarly)
	fused := r.cfg.Bugs.Has(BugPrefixSplitFused)

	// Build the chain top-down in volatile order first.
	top, err := r.p.AllocZeroed(nodeSize)
	if err != nil {
		return err
	}
	if publishEarly {
		// BUG: the pointer is persisted before the subtree exists; a
		// crash strands the old key behind an empty node.
		e.Store64(slot, top)
		r.p.Persist(slot, 8)
	}
	cur := top
	d := depth
	for d < nibbles && nibble(oldKey, d) == nibble(key, d) {
		next, err := r.p.AllocZeroed(nodeSize)
		if err != nil {
			return err
		}
		e.Store64(cur+8*nibble(key, d), next)
		r.p.FlushDirty(cur, nodeSize)
		cur = next
		d++
	}
	if d == nibbles {
		return fmt.Errorf("wort: duplicate key %d in split", key)
	}
	newLeaf, err := r.newLeaf(key, val, false)
	if err != nil {
		return err
	}
	e.Store64(cur+8*nibble(key, d), newLeaf|leafTag)
	e.Store64(cur+8*nibble(oldKey, d), oldOff|leafTag)
	r.p.FlushDirty(cur, nodeSize)
	if !fused {
		r.p.Drain()
	}
	if !publishEarly {
		e.Store64(slot, top)
		if fused {
			// BUG (hidden from prefixes): subtree and publication
			// share one fence.
			r.p.Flush(slot, 8)
			r.p.Drain()
		} else {
			r.p.Persist(slot, 8)
		}
	}
	return nil
}

func (r *radix) bumpCount(delta int64) error {
	cnt := r.root() + rootCount
	r.e().Store64(cnt, r.e().Load64(cnt)+uint64(delta))
	r.p.Persist(cnt, 8)
	return nil
}

// Delete implements harness.KV: count-first, then one atomic pointer
// clear.
func (r *radix) Delete(key uint64) error {
	perfbug.ApplyN(r.e(), r.cfg.Bugs, "wort", 7, 10, 0, r.root()+rootStats)
	e := r.e()
	node := e.Load64(r.root() + rootNode)
	for depth := 0; depth < nibbles; depth++ {
		slot := r.slotAddr(node, depth, key)
		ptr := e.Load64(slot)
		if ptr == 0 {
			return nil
		}
		if isLeaf(ptr) {
			if e.Load64(leafOff(ptr)+leafKey) != key {
				return nil
			}
			if err := r.bumpCount(-1); err != nil {
				return err
			}
			e.Store64(slot, 0)
			r.p.Persist(slot, 8)
			return nil
		}
		node = ptr
	}
	return nil
}

// validate is the recovery consistency check: a DFS verifying bounds,
// that every leaf's key spells the path leading to it, and that the
// reachable-leaf count reconciles with the persisted counter.
func (r *radix) validate() error {
	e := r.e()
	node := e.Load64(r.root() + rootNode)
	count := e.Load64(r.root() + rootCount)
	if node == 0 {
		if count != 0 {
			return fmt.Errorf("wort: no root node but count=%d", count)
		}
		return nil
	}
	size := uint64(e.Size())
	var leaves uint64
	var walk func(n uint64, depth int, prefix uint64) error
	walk = func(n uint64, depth int, prefix uint64) error {
		if depth >= nibbles {
			return fmt.Errorf("wort: node chain deeper than the key length")
		}
		if n%16 != 0 || n+nodeSize > size {
			return fmt.Errorf("wort: node 0x%x out of bounds", n)
		}
		for i := uint64(0); i < fanout; i++ {
			ptr := e.Load64(n + 8*i)
			if ptr == 0 {
				continue
			}
			if isLeaf(ptr) {
				off := leafOff(ptr)
				if off+leafSize > size {
					return fmt.Errorf("wort: leaf 0x%x out of bounds", off)
				}
				k := e.Load64(off + leafKey)
				wantPrefix := (prefix << 4) | i
				gotPrefix := k >> (60 - 4*depth)
				if gotPrefix != wantPrefix {
					return fmt.Errorf("wort: leaf key %d under wrong path at depth %d", k, depth)
				}
				leaves++
				continue
			}
			if err := walk(ptr, depth+1, (prefix<<4)|i); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(node, 0, 0); err != nil {
		return err
	}
	switch {
	case leaves == count:
		return nil
	case leaves == count+1:
		e.Store64(r.root()+rootCount, leaves)
		r.p.Persist(r.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("wort: count=%d but %d leaves reachable", count, leaves)
	}
}

var _ harness.KVApplication = (*App)(nil)

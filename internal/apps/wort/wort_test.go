package wort_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/wort"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 4 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return wort.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 200, Seed: seed, Keyspace: 80})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, wort.New(cfgBase()), smallWorkload(1))
}

func TestSemanticsLarge(t *testing.T) {
	w := workload.Generate(workload.Config{N: 5000, Seed: 2, Keyspace: 2500})
	cfg := cfgBase()
	cfg.PoolSize = 32 << 20
	apptest.KVSemantics(t, wort.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), smallWorkload(3), 0)
}

func TestChildPublishEarlyExposed(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable(wort.BugChildPublishEarly)
	apptest.ExposesBug(t, mk(cfg), smallWorkload(4), 0)
}

func TestFusedFenceBugsHiddenFromPrefix(t *testing.T) {
	for _, id := range []bugs.ID{wort.BugLeafSingleFence, wort.BugPrefixSplitFused} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.HiddenFromPrefix(t, mk(cfg), smallWorkload(5), 0)
		})
	}
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("wort/pf-01", "wort/pf-02", "wort/pf-03")
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(6), 0)
}

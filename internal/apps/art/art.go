// Package art reimplements a persistent Adaptive Radix Tree in the style
// of PMDK's libart example and the RECIPE P-ART index. Nodes adapt their
// fanout (Node4 → Node16 → Node256) as children accumulate; leaves are
// tag-bit pointers holding the full key and value.
//
// Under pmdk.V112 the package reproduces the second crash-consistency
// bug Mumak found in PMDK 1.12 (pmem/pmdk#5512): the insert path
// persists a node's child count before the entry it covers, so a fault
// injected during the commit of an insert leaves a node whose count
// exceeds its live children — the state on which post-crash insertion
// fails its "too many children" assertion. Recovery validation rejects
// exactly that state.
//
// Bug knobs: art/grow-fused-fence, art/prefix-fused-fence and
// art/leaf-fused-fence (hidden from program-order prefixes), and
// art/pf-01..pf-15 (trace analysis).
package art

import (
	"errors"
	"fmt"

	"mumak/internal/apps"
	"mumak/internal/apps/perfbug"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Seeded bug identifiers (all hidden from program-order prefixes).
const (
	// BugGrowFusedFence fuses grown-node population and the parent
	// pointer swap under one fence.
	BugGrowFusedFence bugs.ID = "art/grow-fused-fence"
	// BugPrefixFusedFence fuses a collision chain and its publication
	// under one fence.
	BugPrefixFusedFence bugs.ID = "art/prefix-fused-fence"
	// BugLeafFusedFence fuses leaf initialisation and slot publication
	// under one fence.
	BugLeafFusedFence bugs.ID = "art/leaf-fused-fence"
)

const (
	kind4   = 4
	kind16  = 16
	kind256 = 256

	nodeKind  = 0x00 // u64
	nodeCount = 0x08 // u64
	nodeKeyBs = 0x10 // 16 key bytes (Node4/Node16)
	nodeKids  = 0x20 // children: 16*8 (Node4/16) or 256*8 (Node256)

	smallSize = nodeKids + 16*8
	bigSize   = nodeKids + 256*8

	leafKey  = 0x00
	leafVal  = 0x08
	leafSize = 0x10
	leafTag  = 1

	keyBytes = 8

	rootNode  = 0x00
	rootCount = 0x08
	rootStats = 0x40 // own cache line: never flushed by design
	rootSize  = 0x80
)

// App is the ART store.
type App struct{ cfg apps.Config }

// New constructs the application.
func New(cfg apps.Config) *App { return &App{cfg: cfg} }

func init() {
	apps.Register("art", func(cfg apps.Config) harness.Application { return New(cfg) })
}

// Name implements harness.Application.
func (a *App) Name() string { return "art" }

// PoolSize implements harness.Application.
func (a *App) PoolSize() int {
	if a.cfg.PoolSize != 0 {
		return a.cfg.PoolSize
	}
	return 64 << 20
}

// Setup implements harness.Application.
func (a *App) Setup(e *pmem.Engine) error {
	p, err := pmdk.Create(e, a.cfg.Ver, rootSize)
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	n, err := t.newNode(kind4)
	if err != nil {
		return err
	}
	e.Store64(p.Root()+rootNode, n)
	e.Store64(p.Root()+rootCount, 0)
	p.Persist(p.Root(), 16)
	return nil
}

// Open implements harness.KVApplication.
func (a *App) Open(e *pmem.Engine) (harness.KV, error) {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if err != nil {
		return nil, err
	}
	return &tree{p: p, cfg: a.cfg}, nil
}

// Run implements harness.Application.
func (a *App) Run(e *pmem.Engine, w workload.Workload) error {
	kv, err := a.Open(e)
	if err != nil {
		return err
	}
	return harness.RunKV(kv, w)
}

// Recover implements harness.Application.
func (a *App) Recover(e *pmem.Engine) error {
	p, err := pmdk.Open(e, a.cfg.Ver)
	if errors.Is(err, pmdk.ErrNeverCreated) {
		return nil
	}
	if err != nil {
		return err
	}
	t := &tree{p: p, cfg: a.cfg}
	return t.validate()
}

type tree struct {
	p   *pmdk.Pool
	cfg apps.Config
}

func (t *tree) e() *pmem.Engine { return t.p.Engine() }
func (t *tree) root() uint64    { return t.p.Root() }

func keyByte(key uint64, depth int) uint64 {
	return (key >> (56 - 8*depth)) & 0xff
}

func isLeaf(ptr uint64) bool    { return ptr&leafTag != 0 }
func leafOff(ptr uint64) uint64 { return ptr &^ uint64(leafTag) }

func capacityOf(kind uint64) int {
	switch kind {
	case kind4:
		return 4
	case kind16:
		return 16
	default:
		return 256
	}
}

func sizeOf(kind uint64) int {
	if kind == kind256 {
		return bigSize
	}
	return smallSize
}

func (t *tree) newNode(kind uint64) (uint64, error) {
	off, err := t.p.AllocZeroed(sizeOf(kind))
	if err != nil {
		return 0, err
	}
	t.e().Store64(off+nodeKind, kind)
	t.p.Persist(off, sizeOf(kind))
	return off, nil
}

func (t *tree) kind(n uint64) uint64  { return t.e().Load64(n + nodeKind) }
func (t *tree) count(n uint64) uint64 { return t.e().Load64(n + nodeCount) }

func (t *tree) keyB(n uint64, i int) uint64 {
	word := t.e().Load64(n + nodeKeyBs + uint64(i/8)*8)
	return (word >> (8 * uint(i%8))) & 0xff
}

func (t *tree) setKeyB(n uint64, i int, b uint64) {
	addr := n + nodeKeyBs + uint64(i/8)*8
	word := t.e().Load64(addr)
	shift := 8 * uint(i%8)
	word = (word &^ (0xff << shift)) | (b << shift)
	t.e().Store64(addr, word)
}

func (t *tree) child(n uint64, i int) uint64 { return t.e().Load64(n + nodeKids + 8*uint64(i)) }
func (t *tree) setChild(n uint64, i int, v uint64) {
	t.e().Store64(n+nodeKids+8*uint64(i), v)
}

// findChild returns the slot address of the child for byte b, or 0.
func (t *tree) findChild(n uint64, b uint64) uint64 {
	if t.kind(n) == kind256 {
		addr := n + nodeKids + 8*b
		if t.e().Load64(addr) != 0 {
			return addr
		}
		return 0
	}
	cnt := int(t.count(n))
	for i := 0; i < cnt && i < 16; i++ {
		if t.keyB(n, i) == b {
			return n + nodeKids + 8*uint64(i)
		}
	}
	return 0
}

// Get implements harness.KV.
func (t *tree) Get(key uint64) (uint64, bool, error) {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "art", 6, 10, 0, t.root()+rootStats)
	e := t.e()
	n := e.Load64(t.root() + rootNode)
	for depth := 0; depth < keyBytes; depth++ {
		slot := t.findChild(n, keyByte(key, depth))
		if slot == 0 {
			return 0, false, nil
		}
		ptr := e.Load64(slot)
		if isLeaf(ptr) {
			off := leafOff(ptr)
			if e.Load64(off+leafKey) == key {
				return e.Load64(off + leafVal), true, nil
			}
			return 0, false, nil
		}
		n = ptr
	}
	return 0, false, nil
}

// addEntry appends (b -> ptr) to a non-full Node4/Node16, or installs it
// directly for Node256. parentSlot is the slot pointing at n, used when
// the node must grow first.
func (t *tree) addEntry(n uint64, parentSlot uint64, b uint64, ptr uint64) error {
	e := t.e()
	kind := t.kind(n)
	if kind == kind256 {
		e.Store64(n+nodeKids+8*b, ptr)
		t.p.Persist(n+nodeKids+8*b, 8)
		e.Store64(n+nodeCount, t.count(n)+1)
		t.p.Persist(n+nodeCount, 8)
		return nil
	}
	cnt := int(t.count(n))
	if cnt > capacityOf(kind) {
		// The assertion the PMDK 1.12 ART bug trips post-crash: a node
		// claims more children than its kind can hold.
		panic(fmt.Sprintf("art: node 0x%x has %d children, capacity %d", n, cnt, capacityOf(kind)))
	}
	if cnt == capacityOf(kind) {
		grown, err := t.grow(n, parentSlot)
		if err != nil {
			return err
		}
		return t.addEntry(grown, parentSlot, b, ptr)
	}
	if t.cfg.Ver == pmdk.V112 {
		// BUG (pmem/pmdk#5512 analogue): the count is persisted before
		// the entry it covers; a crash in between leaves a node whose
		// count exceeds its live children.
		e.Store64(n+nodeCount, uint64(cnt+1))
		t.p.Persist(n+nodeCount, 8)
		t.setChild(n, cnt, ptr)
		t.setKeyB(n, cnt, b)
		t.p.PersistDirty(n+nodeKeyBs, int(nodeKids-nodeKeyBs)+8*(cnt+1))
		return nil
	}
	// Correct order: entry first, count (the visibility gate) last. One
	// persist covers the key byte and the child slot.
	t.setChild(n, cnt, ptr)
	t.setKeyB(n, cnt, b)
	t.p.PersistDirty(n+nodeKeyBs, int(nodeKids-nodeKeyBs)+8*(cnt+1))
	e.Store64(n+nodeCount, uint64(cnt+1))
	t.p.Persist(n+nodeCount, 8)
	return nil
}

// grow replaces n with the next-larger node kind, swapping parentSlot
// atomically.
func (t *tree) grow(n uint64, parentSlot uint64) (uint64, error) {
	e := t.e()
	oldKind := t.kind(n)
	newKind := uint64(kind16)
	if oldKind == kind16 {
		newKind = kind256
	}
	bigger, err := t.p.AllocZeroed(sizeOf(newKind))
	if err != nil {
		return 0, err
	}
	e.Store64(bigger+nodeKind, newKind)
	cnt := int(t.count(n))
	for i := 0; i < cnt; i++ {
		b := t.keyB(n, i)
		c := t.child(n, i)
		if newKind == kind256 {
			e.Store64(bigger+nodeKids+8*b, c)
		} else {
			t.setKeyB(bigger, i, b)
			t.setChild(bigger, i, c)
		}
	}
	e.Store64(bigger+nodeCount, uint64(cnt))
	if t.cfg.Bugs.Has(BugGrowFusedFence) {
		// BUG (hidden from prefixes): population and the parent swap
		// share one fence.
		t.p.FlushDirty(bigger, sizeOf(newKind))
		e.Store64(parentSlot, bigger)
		t.p.Flush(parentSlot, 8)
		t.p.Drain()
	} else {
		t.p.PersistDirty(bigger, sizeOf(newKind))
		e.Store64(parentSlot, bigger)
		t.p.Persist(parentSlot, 8)
	}
	return bigger, nil
}

// Put implements harness.KV.
func (t *tree) Put(key, val uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "art", 1, 5, 0, t.root()+rootStats)
	e := t.e()
	parentSlot := t.root() + rootNode
	n := e.Load64(parentSlot)
	for depth := 0; depth < keyBytes; depth++ {
		b := keyByte(key, depth)
		slot := t.findChild(n, b)
		if slot == 0 {
			fused := t.cfg.Bugs.Has(BugLeafFusedFence)
			leaf, err := t.newLeaf(key, val, !fused)
			if err != nil {
				return err
			}
			if err := t.addEntry(n, parentSlot, b, leaf|leafTag); err != nil {
				return err
			}
			if fused {
				// BUG (hidden from prefixes): the leaf flush shares
				// the entry's fence.
				t.p.Drain()
			}
			return t.bumpCount(1)
		}
		ptr := e.Load64(slot)
		if isLeaf(ptr) {
			off := leafOff(ptr)
			if e.Load64(off+leafKey) == key {
				e.Store64(off+leafVal, val)
				t.p.Persist(off+leafVal, 8)
				return nil
			}
			if err := t.splitLeaf(slot, off, depth+1, key, val); err != nil {
				return err
			}
			return t.bumpCount(1)
		}
		parentSlot = slot
		n = ptr
	}
	return fmt.Errorf("art: key %d exhausted all bytes", key)
}

func (t *tree) newLeaf(key, val uint64, persist bool) (uint64, error) {
	off, err := t.p.AllocZeroed(leafSize)
	if err != nil {
		return 0, err
	}
	t.e().Store64(off+leafKey, key)
	t.e().Store64(off+leafVal, val)
	if persist {
		t.p.Persist(off, leafSize)
	} else {
		t.p.Flush(off, leafSize)
	}
	return off, nil
}

// splitLeaf replaces the leaf at slot with a Node4 chain distinguishing
// the old key from the new one.
func (t *tree) splitLeaf(slot, oldOff uint64, depth int, key, val uint64) error {
	e := t.e()
	oldKey := e.Load64(oldOff + leafKey)
	fused := t.cfg.Bugs.Has(BugPrefixFusedFence)

	top, err := t.p.AllocZeroed(smallSize)
	if err != nil {
		return err
	}
	e.Store64(top+nodeKind, kind4)
	cur := top
	d := depth
	for d < keyBytes && keyByte(oldKey, d) == keyByte(key, d) {
		next, err := t.p.AllocZeroed(smallSize)
		if err != nil {
			return err
		}
		e.Store64(next+nodeKind, kind4)
		t.setKeyB(cur, 0, keyByte(key, d))
		t.setChild(cur, 0, next)
		e.Store64(cur+nodeCount, 1)
		t.p.FlushDirty(cur, smallSize)
		cur = next
		d++
	}
	if d == keyBytes {
		return fmt.Errorf("art: duplicate key %d in split", key)
	}
	newLeaf, err := t.newLeaf(key, val, false)
	if err != nil {
		return err
	}
	t.setKeyB(cur, 0, keyByte(oldKey, d))
	t.setChild(cur, 0, oldOff|leafTag)
	t.setKeyB(cur, 1, keyByte(key, d))
	t.setChild(cur, 1, newLeaf|leafTag)
	e.Store64(cur+nodeCount, 2)
	t.p.FlushDirty(cur, smallSize)
	if !fused {
		t.p.Drain()
	}
	e.Store64(slot, top)
	if fused {
		// BUG (hidden from prefixes): the chain and its publication
		// share one fence.
		t.p.Flush(slot, 8)
		t.p.Drain()
	} else {
		t.p.Persist(slot, 8)
	}
	return nil
}

func (t *tree) bumpCount(delta int64) error {
	cnt := t.root() + rootCount
	t.e().Store64(cnt, t.e().Load64(cnt)+uint64(delta))
	t.p.Persist(cnt, 8)
	return nil
}

// Delete implements harness.KV. Node4/16 entries are removed by moving
// the last entry into the vacated slot (entry first, count last);
// Node256 clears the child directly.
func (t *tree) Delete(key uint64) error {
	perfbug.ApplyN(t.e(), t.cfg.Bugs, "art", 11, 15, 0, t.root()+rootStats)
	e := t.e()
	n := e.Load64(t.root() + rootNode)
	for depth := 0; depth < keyBytes; depth++ {
		b := keyByte(key, depth)
		slot := t.findChild(n, b)
		if slot == 0 {
			return nil
		}
		ptr := e.Load64(slot)
		if !isLeaf(ptr) {
			n = ptr
			continue
		}
		if e.Load64(leafOff(ptr)+leafKey) != key {
			return nil
		}
		if err := t.bumpCount(-1); err != nil {
			return err
		}
		if t.kind(n) == kind256 {
			e.Store64(slot, 0)
			t.p.Persist(slot, 8)
			return nil
		}
		// Move the last entry into the vacated index, then shrink the
		// count: both visible states are valid.
		idx := int((slot - (n + nodeKids)) / 8)
		lastIdx := int(t.count(n)) - 1
		if idx != lastIdx {
			t.setChild(n, idx, t.child(n, lastIdx))
			t.setKeyB(n, idx, t.keyB(n, lastIdx))
			t.p.Persist(n+nodeKids+8*uint64(idx), 8)
			t.p.Persist(n+nodeKeyBs, 16)
		}
		e.Store64(n+nodeCount, uint64(lastIdx))
		t.p.Persist(n+nodeCount, 8)
		return nil
	}
	return nil
}

// validate is the recovery consistency check: node kinds and counts are
// sane (a count exceeding the node capacity or covering a null child is
// exactly the pmem/pmdk#5512 state), key bytes within a node are unique,
// leaves sit on paths spelling their keys, and the reachable-leaf count
// reconciles with the persisted counter.
func (t *tree) validate() error {
	e := t.e()
	n := e.Load64(t.root() + rootNode)
	count := e.Load64(t.root() + rootCount)
	if n == 0 {
		if count != 0 {
			return fmt.Errorf("art: no root node but count=%d", count)
		}
		return nil
	}
	size := uint64(e.Size())
	var leaves uint64
	var walk func(n uint64, depth int, prefix uint64) error
	walk = func(n uint64, depth int, prefix uint64) error {
		if depth >= keyBytes {
			return fmt.Errorf("art: node chain deeper than the key length")
		}
		if n%16 != 0 || n+uint64(smallSize) > size {
			return fmt.Errorf("art: node 0x%x out of bounds", n)
		}
		kind := t.kind(n)
		if kind != kind4 && kind != kind16 && kind != kind256 {
			return fmt.Errorf("art: node 0x%x has invalid kind %d", n, kind)
		}
		cnt := int(t.count(n))
		if cnt > capacityOf(kind) {
			return fmt.Errorf("art: node 0x%x claims %d children, capacity %d (pmdk#5512 state)",
				n, cnt, capacityOf(kind))
		}
		visit := func(b uint64, ptr uint64) error {
			if ptr == 0 {
				return fmt.Errorf("art: node 0x%x counts a null child (pmdk#5512 state)", n)
			}
			if isLeaf(ptr) {
				off := leafOff(ptr)
				if off+leafSize > size {
					return fmt.Errorf("art: leaf 0x%x out of bounds", off)
				}
				k := e.Load64(off + leafKey)
				wantPrefix := (prefix << 8) | b
				if k>>(56-8*depth) != wantPrefix {
					return fmt.Errorf("art: leaf key %d under wrong path at depth %d", k, depth)
				}
				leaves++
				return nil
			}
			return walk(ptr, depth+1, (prefix<<8)|b)
		}
		if kind == kind256 {
			for b := uint64(0); b < 256; b++ {
				ptr := t.child(n, int(b))
				if ptr == 0 {
					continue
				}
				if err := visit(b, ptr); err != nil {
					return err
				}
			}
			return nil
		}
		seen := map[uint64]uint64{}
		for i := 0; i < cnt; i++ {
			b := t.keyB(n, i)
			c := t.child(n, i)
			if prev, dup := seen[b]; dup {
				if prev == c {
					// The interrupted-delete window: the last entry
					// was moved into the vacated slot but the count
					// has not shrunk yet. Both slots alias one child;
					// count it once.
					continue
				}
				return fmt.Errorf("art: node 0x%x has duplicate key byte %d with diverging children", n, b)
			}
			seen[b] = c
			if err := visit(b, c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, 0, 0); err != nil {
		return err
	}
	switch {
	case leaves == count:
		return nil
	case leaves == count+1:
		e.Store64(t.root()+rootCount, leaves)
		t.p.Persist(t.root()+rootCount, 8)
		return nil
	default:
		return fmt.Errorf("art: count=%d but %d leaves reachable", count, leaves)
	}
}

var _ harness.KVApplication = (*App)(nil)

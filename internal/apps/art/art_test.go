package art_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	"mumak/internal/apps/art"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/workload"
)

func cfgBase() apps.Config { return apps.Config{PoolSize: 8 << 20} }

func mk(cfg apps.Config) func() harness.Application {
	return func() harness.Application { return art.New(cfg) }
}

func smallWorkload(seed int64) workload.Workload {
	return workload.Generate(workload.Config{N: 250, Seed: seed, Keyspace: 100})
}

func TestKVSemantics(t *testing.T) {
	apptest.KVSemantics(t, art.New(cfgBase()), smallWorkload(1))
}

func TestSemanticsWithNodeGrowth(t *testing.T) {
	// Dense small keys share high bytes, forcing Node4 -> Node16 ->
	// Node256 growth in the low levels.
	w := workload.Generate(workload.Config{N: 6000, Seed: 2, Keyspace: 3000})
	cfg := cfgBase()
	cfg.PoolSize = 64 << 20
	apptest.KVSemantics(t, art.New(cfg), w)
}

func TestCrashConsistentWithoutBugs(t *testing.T) {
	apptest.CrashConsistent(t, mk(cfgBase()), smallWorkload(3), 0)
}

func TestFusedFenceBugsHiddenFromPrefix(t *testing.T) {
	for _, id := range []bugs.ID{
		art.BugGrowFusedFence,
		art.BugPrefixFusedFence,
		art.BugLeafFusedFence,
	} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			cfg := cfgBase()
			cfg.Bugs = bugs.Enable(id)
			apptest.HiddenFromPrefix(t, mk(cfg), smallWorkload(4), 0)
		})
	}
}

func TestV112InsertCountBugExposed(t *testing.T) {
	// The pmem/pmdk#5512 analogue: on V112 some injected crash leaves a
	// node whose count covers a null child; recovery must reject it.
	cfg := cfgBase()
	cfg.Ver = pmdk.V112
	apptest.ExposesBug(t, mk(cfg), smallWorkload(5), 0)
}

func TestPerfBugsDoNotBreakRecovery(t *testing.T) {
	cfg := cfgBase()
	cfg.Bugs = bugs.Enable("art/pf-01", "art/pf-02", "art/pf-03")
	apptest.CrashConsistent(t, mk(cfg), smallWorkload(7), 0)
}

package apps_test

import (
	"testing"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest"
	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/rbtree"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	_ "mumak/internal/apps/wort"
	"mumak/internal/bugs"
	"mumak/internal/harness"
	"mumak/internal/workload"
)

func cfgFor(name string) apps.Config {
	return apps.Config{SPT: true, PoolSize: 8 << 20, WithRecovery: true}
}

func TestRegistryHasAllTargets(t *testing.T) {
	want := []string{
		"art", "btree", "cceh", "cmap", "fastfair", "hashmap", "levelhash",
		"montage-hashtable", "montage-lfhashtable", "rbtree", "redis",
		"rocksdb", "stree", "wort",
	}
	got := apps.Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d targets, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUnknownTargetErrors(t *testing.T) {
	if _, err := apps.New("nope", apps.Config{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// Every registered target is a key-value application with correct
// semantics under the standard mixed workload.
func TestAllTargetsKVSemantics(t *testing.T) {
	w := workload.Generate(workload.Config{N: 400, Seed: 99, Keyspace: 150})
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := apps.New(name, cfgFor(name))
			if err != nil {
				t.Fatal(err)
			}
			kvApp, ok := app.(harness.KVApplication)
			if !ok {
				t.Fatalf("%s does not expose KV semantics", name)
			}
			apptest.KVSemantics(t, kvApp, w)
		})
	}
}

// Every registered target survives crash injection at every unique
// failure point under a zipfian (YCSB-style) workload — hot keys stress
// the in-place-update paths harder than the uniform mix does.
func TestAllTargetsCrashConsistentUnderZipfian(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-registry crash probing is slow")
	}
	w := workload.Generate(workload.Config{N: 250, Seed: 7, Keyspace: 120, Dist: workload.Zipfian})
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			mk := func() harness.Application {
				app, err := apps.New(name, cfgFor(name))
				if err != nil {
					t.Fatal(err)
				}
				return app
			}
			apptest.CrashConsistent(t, mk, w, 120)
		})
	}
}

// Every bug ID in the registry belongs to a registered application.
func TestRegistryBugAppsExist(t *testing.T) {
	registered := map[string]bool{}
	for _, n := range apps.Names() {
		registered[n] = true
	}
	for _, b := range bugs.Registry {
		if !registered[b.App] {
			t.Errorf("bug %s references unregistered app %q", b.ID, b.App)
		}
	}
}

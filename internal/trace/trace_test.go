package trace

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"

	"mumak/internal/pmem"
)

func recordedRun(f func(e *pmem.Engine)) (*Trace, *pmem.Engine, *pmem.Image) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 14})
	base := e.MediumSnapshot()
	rec := NewRecorder()
	e.AttachHook(rec)
	f(e)
	return &rec.T, e, base
}

func TestRecorderCapturesStream(t *testing.T) {
	tr, _, _ := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 1)
		e.CLWB(0)
		e.SFence()
		e.Load64(0) // not recorded by default
	})
	if tr.Len() != 3 {
		t.Fatalf("trace length %d, want 3", tr.Len())
	}
	wantOps := []pmem.Opcode{pmem.OpStore, pmem.OpCLWB, pmem.OpSFence}
	for i, op := range wantOps {
		if tr.Records[i].Op != op {
			t.Errorf("record %d op = %v, want %v", i, tr.Records[i].Op, op)
		}
	}
	if got := tr.Payload(&tr.Records[0]); len(got) != 8 || got[0] != 1 {
		t.Errorf("store payload = %v", got)
	}
	if tr.Records[1].Addr%pmem.CacheLineSize != 0 {
		t.Error("flush address not line-aligned")
	}
}

func TestRecorderLoadsOptIn(t *testing.T) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 12})
	rec := NewRecorder()
	rec.RecordLoads = true
	e.AttachHook(rec)
	e.Load64(0)
	if rec.T.Len() != 1 || rec.T.Records[0].Op != pmem.OpLoad {
		t.Fatalf("load not recorded: %+v", rec.T.Records)
	}
}

func TestEpochSplitting(t *testing.T) {
	tr, _, _ := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 1)
		e.CLWB(0)
		e.SFence() // epoch 0 closes at index 2
		e.Store64(64, 2)
		e.NTStore64(128, 3)
		e.MFence() // epoch 1 closes at index 5
		e.Store64(192, 4)
	})
	eps := tr.Epochs()
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3: %+v", len(eps), eps)
	}
	if eps[0].Fence != 2 || eps[1].Fence != 5 || eps[2].Fence != -1 {
		t.Errorf("fence indices: %+v", eps)
	}
	if eps[2].Start != 6 || eps[2].End != 7 {
		t.Errorf("tail epoch: %+v", eps[2])
	}
}

func TestSplitUnitsRespectsAtomicSlots(t *testing.T) {
	tr, _, _ := recordedRun(func(e *pmem.Engine) {
		data := make([]byte, 20)
		for i := range data {
			data[i] = byte(i + 1)
		}
		e.Store(5, data) // spans slots [0,8) [8,16) [16,24) [24,32)
	})
	units := splitUnits(tr, 0)
	if len(units) != 4 {
		t.Fatalf("got %d units, want 4: %+v", len(units), units)
	}
	wantAddrs := []uint64{5, 8, 16, 24}
	wantLens := []int{3, 8, 8, 1}
	for i, u := range units {
		if u.Addr != wantAddrs[i] || len(u.Data) != wantLens[i] {
			t.Errorf("unit %d = (%d,%d), want (%d,%d)", i, u.Addr, len(u.Data), wantAddrs[i], wantLens[i])
		}
	}
}

func TestCursorCertainTracksFencedData(t *testing.T) {
	tr, _, base := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 1)
		e.CLWB(0)
		e.Store64(64, 2) // never flushed
		e.SFence()
	})
	c := NewCursor(tr, base)
	c.SeekTo(tr.Len())
	img := c.Certain()
	if got := le64(img.Bytes()[0:]); got != 1 {
		t.Errorf("fenced store not certain: %d", got)
	}
	if got := le64(img.Bytes()[64:]); got != 0 {
		t.Errorf("unflushed store became certain: %d", got)
	}
	unc := c.Uncertain()
	if len(unc) != 1 || unc[0].Addr != 64 {
		t.Errorf("uncertain set: %+v", unc)
	}
}

func TestCursorCLFlushIsSynchronous(t *testing.T) {
	tr, _, base := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 7)
		e.CLFlush(0)
	})
	c := NewCursor(tr, base)
	c.SeekTo(tr.Len())
	if got := le64(c.Certain().Bytes()[0:]); got != 7 {
		t.Errorf("clflush not certain: %d", got)
	}
	if len(c.Uncertain()) != 0 {
		t.Errorf("uncertain after clflush: %+v", c.Uncertain())
	}
}

func TestCursorMaterializeSubset(t *testing.T) {
	tr, _, base := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 1)
		e.CLWB(0)
		e.Store64(64, 2)
		e.CLWB(64)
		// no fence: both in flight
	})
	c := NewCursor(tr, base)
	c.SeekTo(tr.Len())
	unc := c.Uncertain()
	if len(unc) != 2 {
		t.Fatalf("uncertain = %+v, want 2 units", unc)
	}
	img := c.Materialize(unc, func(i int) bool { return i == 1 })
	if le64(img.Bytes()[0:]) != 0 || le64(img.Bytes()[64:]) != 2 {
		t.Errorf("subset image: %d %d", le64(img.Bytes()[0:]), le64(img.Bytes()[64:]))
	}
}

func TestCursorOverwriteOrder(t *testing.T) {
	tr, _, base := recordedRun(func(e *pmem.Engine) {
		e.Store64(0, 1)
		e.Store64(0, 2) // dirty overwrite
	})
	c := NewCursor(tr, base)
	c.SeekTo(tr.Len())
	unc := c.Uncertain()
	if len(unc) != 2 {
		t.Fatalf("uncertain = %+v", unc)
	}
	img := c.PrefixImage()
	if got := le64(img.Bytes()[0:]); got != 2 {
		t.Errorf("prefix image lost overwrite order: %d", got)
	}
}

// Property: for a random instruction mix, the cursor's prefix image at
// the end of the trace equals the engine's own PrefixImage.
func TestPropertyCursorPrefixMatchesEngine(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 13})
		base := e.MediumSnapshot()
		rec := NewRecorder()
		e.AttachHook(rec)
		slots := uint64(e.Size() / 8)
		for i := 0; i < int(n)+5; i++ {
			addr := (rng.Uint64() % slots) * 8
			switch rng.Intn(7) {
			case 0, 1:
				e.Store64(addr, rng.Uint64())
			case 2:
				e.NTStore64(addr, rng.Uint64())
			case 3:
				e.CLWB(addr)
			case 4:
				e.CLFlushOpt(addr)
			case 5:
				e.CLFlush(addr)
			case 6:
				e.SFence()
			}
		}
		c := NewCursor(&rec.T, base)
		c.SeekTo(rec.T.Len())
		return bytes.Equal(c.PrefixImage().Bytes(), e.PrefixImage().Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the certain image never exposes data the engine's strict
// medium snapshot does not also expose (certainty is conservative), and
// certain+all-uncertain covers the medium exactly.
func TestPropertyCertainConservative(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 12})
		base := e.MediumSnapshot()
		rec := NewRecorder()
		e.AttachHook(rec)
		slots := uint64(e.Size() / 8)
		for i := 0; i < int(n)+3; i++ {
			addr := (rng.Uint64() % slots) * 8
			switch rng.Intn(5) {
			case 0, 1:
				e.Store64(addr, rng.Uint64()|1)
			case 2:
				e.CLWB(addr)
			case 3:
				e.SFence()
			case 4:
				e.CLFlush(addr)
			}
		}
		c := NewCursor(&rec.T, base)
		c.SeekTo(rec.T.Len())
		certain := c.Certain()
		medium := e.MediumSnapshot()
		return bytes.Equal(certain.Bytes(), medium.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderAnnotations(t *testing.T) {
	e := pmem.NewEngine(pmem.Options{PoolSize: 1 << 12})
	rec := NewRecorder()
	e.AttachHook(rec)
	e.Annotate(pmem.AnnTxBegin, 0, 0)
	e.Store64(0, 1)
	e.Annotate(pmem.AnnTxEnd, 0, 0)
	if len(rec.T.Anns) != 2 {
		t.Fatalf("annotations = %+v", rec.T.Anns)
	}
	if rec.T.Anns[0].Kind != pmem.AnnTxBegin || rec.T.Anns[1].Kind != pmem.AnnTxEnd {
		t.Errorf("annotation kinds: %+v", rec.T.Anns)
	}
	if rec.T.Anns[1].ICount != 1 {
		t.Errorf("annotation icount = %d, want 1", rec.T.Anns[1].ICount)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestTraceSerializeRoundTrip(t *testing.T) {
	tr, _, base := recordedRun(func(e *pmem.Engine) {
		e.Annotate(pmem.AnnTxBegin, 0, 0)
		e.Store64(0, 1)
		e.CLWB(0)
		e.SFence()
		e.Annotate(pmem.AnnTxEnd, 0, 0)
	})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || len(got.Anns) != len(tr.Anns) {
		t.Fatalf("restored %d records/%d anns, want %d/%d", got.Len(), len(got.Anns), tr.Len(), len(tr.Anns))
	}
	// The replay cursor over the restored trace behaves identically.
	c1 := NewCursor(tr, base)
	c1.SeekTo(tr.Len())
	c2 := NewCursor(got, base)
	c2.SeekTo(got.Len())
	if !bytes.Equal(c1.PrefixImage().Bytes(), c2.PrefixImage().Bytes()) {
		t.Fatal("restored trace replays differently")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// A corrupted stream can carry records whose negative size or payload
// offset passes the upper-bound check (negative + size stays below the
// payload length) and then panics in Trace.Payload on a reversed slice;
// ReadTrace must reject such records with an error instead.
func TestReadTraceRejectsCorruptRecords(t *testing.T) {
	encode := func(wt wireTrace) *bytes.Buffer {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&wt); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	cases := []struct {
		name string
		rec  wireRecord
	}{
		{"negative size", wireRecord{Op: uint8(pmem.OpStore), Size: -8, Data: 4}},
		{"negative payload offset", wireRecord{Op: uint8(pmem.OpStore), Size: 8, Data: -3}},
		{"payload past the end", wireRecord{Op: uint8(pmem.OpStore), Size: 8, Data: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := encode(wireTrace{Records: []wireRecord{tc.rec}, Payload: make([]byte, 8)})
			tr, err := ReadTrace(buf)
			if err == nil {
				// The decode must fail; at minimum it must not panic
				// later when the payload is accessed.
				t.Fatalf("corrupt record accepted: %+v", tr.Records[0])
			}
		})
	}
	// The well-formed sentinel value -1 ("no payload") stays accepted.
	buf := encode(wireTrace{Records: []wireRecord{{Op: uint8(pmem.OpSFence), Data: -1}}})
	tr, err := ReadTrace(buf)
	if err != nil {
		t.Fatalf("payload-free record rejected: %v", err)
	}
	if got := tr.Payload(&tr.Records[0]); got != nil {
		t.Fatalf("payload of a payload-free record = %v", got)
	}
}

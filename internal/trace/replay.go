package trace

import (
	"sort"

	"mumak/internal/pmem"
)

// Unit is an atomically persistable fragment of a store: the intersection
// of the store's byte range with one aligned 8-byte slot (§2: PM provides
// failure atomicity for aligned groups of 8 bytes).
type Unit struct {
	// Addr is the first byte of the fragment.
	Addr uint64
	// Data is the fragment payload (aliases the trace payload buffer).
	Data []byte
	// Rec is the index of the originating store record.
	Rec int
}

// splitUnits cuts a store record into 8-byte-atomic units.
func splitUnits(t *Trace, rec int) []Unit {
	r := &t.Records[rec]
	data := t.Payload(r)
	var out []Unit
	addr := r.Addr
	for len(data) > 0 {
		slotEnd := (addr | (pmem.AtomicUnit - 1)) + 1
		n := int(slotEnd - addr)
		if n > len(data) {
			n = len(data)
		}
		out = append(out, Unit{Addr: addr, Data: data[:n], Rec: rec})
		addr += uint64(n)
		data = data[n:]
	}
	return out
}

// Cursor incrementally replays a trace over a base image, maintaining the
// certain-durable state and the set of maybe-durable units at every
// point. It is the machinery with which the exhaustive-exploration
// baselines (Yat, Witcher) and the ablation benches enumerate post-failure
// states that do not respect program order — the space Mumak deliberately
// skips (§4.1).
type Cursor struct {
	t       *Trace
	certain *pmem.Image
	pos     int
	// dirty maps cache-line base -> units stored but not written back.
	dirty map[uint64][]Unit
	// inflight holds units written back (clwb/clflushopt/ntstore) but
	// not yet fenced, in record order.
	inflight []Unit
}

// NewCursor returns a cursor positioned before the first record. The base
// image is copied.
func NewCursor(t *Trace, base *pmem.Image) *Cursor {
	return &Cursor{
		t:       t,
		certain: base.Clone(),
		dirty:   make(map[uint64][]Unit),
	}
}

// Pos returns the index of the next record to apply.
func (c *Cursor) Pos() int { return c.pos }

// Step applies the next record and reports whether one was applied.
func (c *Cursor) Step() bool {
	if c.pos >= len(c.t.Records) {
		return false
	}
	r := &c.t.Records[c.pos]
	switch r.Op {
	case pmem.OpStore:
		for _, u := range splitUnits(c.t, c.pos) {
			base := u.Addr &^ (pmem.CacheLineSize - 1)
			c.dirty[base] = append(c.dirty[base], u)
		}
	case pmem.OpNTStore:
		for _, u := range splitUnits(c.t, c.pos) {
			c.inflight = append(c.inflight, u)
			// A non-temporal store to a line with dirty cached data
			// also updates the cached copy (the engine keeps the
			// cache coherent), so a later write-back of that line
			// carries the NT data as well.
			base := u.Addr &^ (pmem.CacheLineSize - 1)
			if len(c.dirty[base]) > 0 {
				c.dirty[base] = append(c.dirty[base], u)
			}
		}
	case pmem.OpCLFlush:
		base := r.Addr &^ (pmem.CacheLineSize - 1)
		// Earlier in-flight write-backs of the same line complete
		// first (they carry older data), then the synchronous flush.
		c.drainInflightLine(base)
		c.applyUnits(c.dirty[base])
		delete(c.dirty, base)
	case pmem.OpCLFlushOpt, pmem.OpCLWB:
		base := r.Addr &^ (pmem.CacheLineSize - 1)
		if units := c.dirty[base]; len(units) > 0 {
			c.inflight = append(c.inflight, units...)
			delete(c.dirty, base)
		}
	case pmem.OpSFence, pmem.OpMFence, pmem.OpRMW:
		c.applyUnits(c.inflight)
		c.inflight = c.inflight[:0]
		if r.Op == pmem.OpRMW {
			// The RMW's own store lands in the cache.
			for _, u := range splitUnits(c.t, c.pos) {
				base := u.Addr &^ (pmem.CacheLineSize - 1)
				c.dirty[base] = append(c.dirty[base], u)
			}
		}
	}
	c.pos++
	return true
}

func (c *Cursor) drainInflightLine(base uint64) {
	kept := c.inflight[:0]
	for _, u := range c.inflight {
		if u.Addr&^(pmem.CacheLineSize-1) == base {
			c.applyUnit(u)
		} else {
			kept = append(kept, u)
		}
	}
	c.inflight = kept
}

func (c *Cursor) applyUnits(units []Unit) {
	for _, u := range units {
		c.applyUnit(u)
	}
}

func (c *Cursor) applyUnit(u Unit) {
	// The cursor owns certain (a Clone), so mutating its bytes is safe.
	copy(c.certain.Bytes()[u.Addr:], u.Data)
}

// SeekTo advances the cursor until Pos == n (or the trace ends).
func (c *Cursor) SeekTo(n int) {
	for c.pos < n && c.Step() {
	}
}

// Certain returns a copy of the guaranteed-durable image at the current
// position.
func (c *Cursor) Certain() *pmem.Image { return c.certain.Clone() }

// Uncertain returns the maybe-durable units at the current position in
// record order: in-flight write-backs racing the next fence, followed by
// dirty units that cache eviction could persist at any time.
func (c *Cursor) Uncertain() []Unit {
	out := make([]Unit, 0, len(c.inflight)+8)
	out = append(out, c.inflight...)
	bases := make([]uint64, 0, len(c.dirty))
	for base := range c.dirty {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		out = append(out, c.dirty[base]...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rec < out[j].Rec })
	return out
}

// Materialize builds a crash image from the current position: the certain
// image plus every uncertain unit selected by keep, applied in record
// order. uncertain must be the slice returned by Uncertain at the same
// position.
func (c *Cursor) Materialize(uncertain []Unit, keep func(i int) bool) *pmem.Image {
	img := c.certain.Clone()
	for i, u := range uncertain {
		if keep(i) {
			copy(img.Bytes()[u.Addr:], u.Data)
		}
	}
	return img
}

// PrefixImage builds the program-order-prefix image at the current
// position: certain plus all uncertain units. This reproduces the
// engine's PrefixImage from a recorded trace.
func (c *Cursor) PrefixImage() *pmem.Image {
	uncertain := c.Uncertain()
	return c.Materialize(uncertain, func(int) bool { return true })
}

// Package trace records and replays PM access traces.
//
// A Trace is the by-product 6 of the Mumak pipeline (Fig 1): the ordered
// list of stores, flushes and fences observed during the workload run,
// identified by instruction counter. Mumak's trace-analysis phase
// consumes it with a single pass; the baseline tools additionally use the
// replay machinery here to build crash images under weaker persistency
// assumptions (arbitrary subsets of unfenced write-backs), which is the
// search space Yat and Witcher explore.
package trace

import (
	"mumak/internal/pmem"
	"mumak/internal/stack"
)

// Record is one traced instruction, stored compactly (§5: instruction
// type, argument(s), instruction counter).
type Record struct {
	// ICount is the engine instruction counter of the event.
	ICount uint64
	// Op is the instruction opcode.
	Op pmem.Opcode
	// Addr is the affected address (line base for flushes).
	Addr uint64
	// Size is the number of bytes affected.
	Size int32
	// Data indexes the payload of store events within the trace's
	// shared buffer; -1 when the record carries no payload.
	Data int64
	// Stack is the captured call stack, or stack.NoID.
	Stack stack.ID
}

// Trace is an ordered PM access trace plus the annotations emitted by the
// PM library during the same execution.
type Trace struct {
	// Records holds the instruction stream in execution order.
	Records []Record
	// Anns holds library annotations in execution order.
	Anns []pmem.Annotation

	payload []byte
}

// Payload returns the stored bytes of a store record, or nil.
func (t *Trace) Payload(r *Record) []byte {
	if r.Data < 0 {
		return nil
	}
	return t.payload[r.Data : r.Data+int64(r.Size)]
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// PayloadBytes returns the total payload storage, a proxy for the
// resident size of the trace.
func (t *Trace) PayloadBytes() int { return len(t.payload) }

// Recorder is a pmem.Hook that appends every observed event to a Trace.
type Recorder struct {
	// T is the trace under construction.
	T Trace
	// RecordLoads includes load events when set; Mumak's analysis does
	// not need them, so they default to off.
	RecordLoads bool
}

// NewRecorder returns a Recorder ready to attach to an engine.
func NewRecorder() *Recorder {
	return &Recorder{T: Trace{payload: make([]byte, 0, 1<<16)}}
}

// OnEvent implements pmem.Hook.
func (rec *Recorder) OnEvent(ev *pmem.Event) {
	if ev.Op == pmem.OpLoad && !rec.RecordLoads {
		return
	}
	r := Record{
		ICount: ev.ICount,
		Op:     ev.Op,
		Addr:   ev.Addr,
		Size:   int32(ev.Size),
		Data:   -1,
		Stack:  ev.Stack,
	}
	if len(ev.Data) > 0 {
		r.Data = int64(len(rec.T.payload))
		rec.T.payload = append(rec.T.payload, ev.Data...)
	}
	rec.T.Records = append(rec.T.Records, r)
}

// OnAnnotation implements pmem.AnnotationObserver.
func (rec *Recorder) OnAnnotation(a *pmem.Annotation) {
	rec.T.Anns = append(rec.T.Anns, *a)
}

// Epoch is a fence-delimited section of the trace: the records strictly
// between two fences (the closing fence index is Fence, or -1 when the
// trace ends without one).
type Epoch struct {
	// Start and End delimit the record index range [Start, End).
	Start, End int
	// Fence is the index of the closing fence record, or -1.
	Fence int
}

// Epochs splits the trace at fence records. Every record belongs to
// exactly one epoch; fences close the epoch they terminate.
func (t *Trace) Epochs() []Epoch {
	var out []Epoch
	start := 0
	for i := range t.Records {
		if t.Records[i].Op.Kind() == pmem.KindFence {
			out = append(out, Epoch{Start: start, End: i, Fence: i})
			start = i + 1
		}
	}
	if start < len(t.Records) {
		out = append(out, Epoch{Start: start, End: len(t.Records), Fence: -1})
	}
	return out
}

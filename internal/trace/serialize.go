package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"mumak/internal/pmem"
	"mumak/internal/stack"
)

// wireTrace is the serialised trace format. Stack IDs are process-local
// and therefore dropped; the §5 debug-information pass re-resolves them
// by instruction counter when needed.
type wireTrace struct {
	Records []wireRecord
	Anns    []pmem.Annotation
	Payload []byte
}

type wireRecord struct {
	ICount uint64
	Op     uint8
	Addr   uint64
	Size   int32
	Data   int64
}

// Encode serialises the trace (by-product 6 of Fig 1, stored so the
// analysis phase can run decoupled from the instrumented execution).
func (t *Trace) Encode(w io.Writer) error {
	wt := wireTrace{
		Records: make([]wireRecord, len(t.Records)),
		Anns:    t.Anns,
		Payload: t.payload,
	}
	for i, r := range t.Records {
		wt.Records[i] = wireRecord{ICount: r.ICount, Op: uint8(r.Op), Addr: r.Addr, Size: r.Size, Data: r.Data}
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTrace deserialises a trace written by Encode.
func ReadTrace(r io.Reader) (*Trace, error) {
	var wt wireTrace
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	t := &Trace{Anns: wt.Anns, payload: wt.Payload}
	t.Records = make([]Record, len(wt.Records))
	for i, wr := range wt.Records {
		// A corrupted stream can carry a negative size or payload
		// offset that passes the upper-bound check and later panics in
		// Trace.Payload on a reversed slice; reject it here instead.
		if wr.Size < 0 {
			return nil, fmt.Errorf("trace: record %d has negative size %d", i, wr.Size)
		}
		if wr.Data < -1 {
			return nil, fmt.Errorf("trace: record %d has invalid payload offset %d", i, wr.Data)
		}
		if wr.Data >= 0 && wr.Data+int64(wr.Size) > int64(len(wt.Payload)) {
			return nil, fmt.Errorf("trace: record %d payload out of range", i)
		}
		t.Records[i] = Record{ICount: wr.ICount, Op: pmem.Opcode(wr.Op), Addr: wr.Addr,
			Size: wr.Size, Data: wr.Data, Stack: stack.NoID}
	}
	return t, nil
}

// Package stack captures, interns and symbolises call stacks.
//
// It is the analogue of PIN_Backtrace in the original Mumak: stacks
// identify unique code paths leading to failure points, and the package
// filters out instrumentation frames so that reports show only the
// application's own calls (§5 of the paper).
package stack

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"strings"
	"sync"
)

// ID names an interned call stack within a Table.
type ID int32

// NoID is the ID of the absent stack.
const NoID ID = -1

// maxDepth bounds captured stacks; deeper frames are truncated. 64 frames
// comfortably covers the recursive data structures under test.
const maxDepth = 64

// instrumentationPrefixes are function-name prefixes dropped from the top
// of captured stacks, mirroring Pin's filtering of instrumentation
// routines. Frames below the first application frame are kept verbatim.
var instrumentationPrefixes = []string{
	"mumak/internal/pmem.",
	"mumak/internal/stack.",
	"mumak/internal/trace.",
	"mumak/internal/fpt.",
	"mumak/internal/core.",
	"mumak/internal/tools",
	"mumak/internal/oracle.",
}

// boundarySuffixes mark the harness frames at which capture stops: frames
// at or below these functions belong to the runner, not the application.
var boundaryPrefixes = []string{
	"runtime.",
	"testing.",
	"mumak/internal/harness.",
}

// Frame is one symbolised stack frame.
type Frame struct {
	// PC is the program counter of the call site.
	PC uintptr
	// Function is the fully qualified function name.
	Function string
	// File and Line locate the call site in source.
	File string
	Line int
}

// String formats the frame like a debugger line.
func (f Frame) String() string {
	return fmt.Sprintf("%s at %s:%d", f.Function, f.File, f.Line)
}

// Table interns call stacks and assigns them stable IDs. It is safe for
// concurrent use.
type Table struct {
	mu     sync.RWMutex
	seed   maphash.Seed
	byHash map[uint64][]ID
	stacks [][]uintptr

	classMu sync.RWMutex
	// pcClass caches, per call-site PC, whether the frame belongs to the
	// instrumentation layer (1), the harness boundary (2) or the
	// application (0).
	pcClass map[uintptr]uint8
}

// NewTable returns an empty stack table.
func NewTable() *Table {
	return &Table{
		seed:    maphash.MakeSeed(),
		byHash:  make(map[uint64][]ID),
		pcClass: make(map[uintptr]uint8),
	}
}

const (
	classApp = iota
	classInstrumentation
	classBoundary
)

func (t *Table) classify(pc uintptr) uint8 {
	t.classMu.RLock()
	c, ok := t.pcClass[pc]
	t.classMu.RUnlock()
	if ok {
		return c
	}
	c = classApp
	if fn := runtime.FuncForPC(pc); fn != nil {
		name := fn.Name()
		for _, p := range instrumentationPrefixes {
			if strings.HasPrefix(name, p) {
				c = classInstrumentation
				break
			}
		}
		if c == classApp {
			for _, p := range boundaryPrefixes {
				if strings.HasPrefix(name, p) {
					c = classBoundary
					break
				}
			}
		}
	}
	t.classMu.Lock()
	t.pcClass[pc] = c
	t.classMu.Unlock()
	return c
}

// pcBufPool recycles the capture PC buffers. The buffer escapes through
// trim/Intern, so a stack array would be heap-allocated on every
// Capture — on the stack-mode hot path, once per PM instruction.
// Intern copies before storing, so returning the buffer is safe.
var pcBufPool = sync.Pool{New: func() any { return new([maxDepth]uintptr) }}

// Capture records the calling goroutine's stack, trims instrumentation
// frames from the top and harness frames from the bottom, and returns the
// interned ID. skip has the meaning of runtime.Callers' skip relative to
// Capture's caller (0 includes the caller itself).
func (t *Table) Capture(skip int) ID {
	buf := pcBufPool.Get().(*[maxDepth]uintptr)
	n := runtime.Callers(skip+2, buf[:])
	if n == 0 {
		pcBufPool.Put(buf)
		return NoID
	}
	trimmed := t.trim(buf[:n])
	if len(trimmed) == 0 {
		pcBufPool.Put(buf)
		return NoID
	}
	id := t.Intern(trimmed)
	pcBufPool.Put(buf)
	return id
}

// trim removes leading instrumentation frames and trailing harness
// frames.
func (t *Table) trim(pcs []uintptr) []uintptr {
	start := 0
	for start < len(pcs) && t.classify(pcs[start]) == classInstrumentation {
		start++
	}
	end := start
	for end < len(pcs) && t.classify(pcs[end]) != classBoundary {
		end++
	}
	return pcs[start:end]
}

// Intern stores the PC slice (copying it) and returns its stable ID. Two
// equal slices always intern to the same ID.
func (t *Table) Intern(pcs []uintptr) ID {
	var h maphash.Hash
	h.SetSeed(t.seed)
	for _, pc := range pcs {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(pc >> (8 * i))
		}
		h.Write(b[:])
	}
	sum := h.Sum64()

	t.mu.RLock()
	for _, id := range t.byHash[sum] {
		if pcsEqual(t.stacks[id], pcs) {
			t.mu.RUnlock()
			return id
		}
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range t.byHash[sum] {
		if pcsEqual(t.stacks[id], pcs) {
			return id
		}
	}
	id := ID(len(t.stacks))
	cp := make([]uintptr, len(pcs))
	copy(cp, pcs)
	t.stacks = append(t.stacks, cp)
	t.byHash[sum] = append(t.byHash[sum], id)
	return id
}

func pcsEqual(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Len returns the number of interned stacks.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.stacks)
}

// PCs returns the program counters of the identified stack, or nil for
// NoID or an unknown ID. The returned slice must not be modified.
func (t *Table) PCs(id ID) []uintptr {
	if id == NoID {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.stacks) {
		return nil
	}
	return t.stacks[id]
}

// Frames symbolises the identified stack, outermost frame last (the same
// order runtime produces).
func (t *Table) Frames(id ID) []Frame {
	pcs := t.PCs(id)
	if len(pcs) == 0 {
		return nil
	}
	frames := make([]Frame, 0, len(pcs))
	it := runtime.CallersFrames(pcs)
	for {
		fr, more := it.Next()
		frames = append(frames, Frame{PC: fr.PC, Function: fr.Function, File: fr.File, Line: fr.Line})
		if !more {
			break
		}
	}
	return frames
}

// Format renders the identified stack as an indented multi-line trace,
// innermost frame first, suitable for bug reports.
func (t *Table) Format(id ID) string {
	frames := t.Frames(id)
	if len(frames) == 0 {
		return "  <no stack>"
	}
	var sb strings.Builder
	for i, f := range frames {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "  %s", f)
	}
	return sb.String()
}

package stack_test

import . "mumak/internal/stack"

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

//go:noinline
func captureLeaf(t *Table) ID { return t.Capture(0) }

//go:noinline
func captureViaHelper(t *Table) ID { return captureLeaf(t) }

func TestCaptureInternsIdenticalStacks(t *testing.T) {
	tbl := NewTable()
	var ids []ID
	for i := 0; i < 3; i++ {
		// Same call site each iteration: one unique code path.
		ids = append(ids, captureViaHelper(tbl))
	}
	for _, id := range ids {
		if id == NoID {
			t.Fatal("capture returned NoID")
		}
		if id != ids[0] {
			t.Fatalf("identical call paths interned differently: %v", ids)
		}
	}
}

func TestCaptureDistinguishesCallPaths(t *testing.T) {
	tbl := NewTable()
	a := captureLeaf(tbl)
	b := captureViaHelper(tbl)
	if a == b {
		t.Fatal("different call paths interned identically")
	}
}

func TestFramesSymbolise(t *testing.T) {
	tbl := NewTable()
	id := captureViaHelper(tbl)
	frames := tbl.Frames(id)
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want >= 2", len(frames))
	}
	if !strings.Contains(frames[0].Function, "captureLeaf") {
		t.Errorf("innermost frame = %q, want captureLeaf", frames[0].Function)
	}
	if !strings.Contains(frames[1].Function, "captureViaHelper") {
		t.Errorf("second frame = %q, want captureViaHelper", frames[1].Function)
	}
}

func TestTrimDropsBoundaryFrames(t *testing.T) {
	tbl := NewTable()
	id := captureViaHelper(tbl)
	for _, f := range tbl.Frames(id) {
		if strings.HasPrefix(f.Function, "testing.") || strings.HasPrefix(f.Function, "runtime.") {
			t.Errorf("harness frame leaked into stack: %s", f.Function)
		}
	}
}

func TestFormatContainsFileAndLine(t *testing.T) {
	tbl := NewTable()
	id := captureLeaf(tbl)
	s := tbl.Format(id)
	if !strings.Contains(s, "stack_test.go:") {
		t.Errorf("formatted stack lacks source location:\n%s", s)
	}
}

func TestNoIDHandling(t *testing.T) {
	tbl := NewTable()
	if pcs := tbl.PCs(NoID); pcs != nil {
		t.Error("PCs(NoID) != nil")
	}
	if frames := tbl.Frames(NoID); frames != nil {
		t.Error("Frames(NoID) != nil")
	}
	if s := tbl.Format(NoID); !strings.Contains(s, "no stack") {
		t.Errorf("Format(NoID) = %q", s)
	}
}

func TestPropertyInternRoundTrip(t *testing.T) {
	tbl := NewTable()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pcs := make([]uintptr, len(raw))
		for i, r := range raw {
			pcs[i] = uintptr(r) + 1
		}
		id := tbl.Intern(pcs)
		got := tbl.PCs(id)
		if len(got) != len(pcs) {
			return false
		}
		for i := range pcs {
			if got[i] != pcs[i] {
				return false
			}
		}
		// Interning again yields the same ID.
		return tbl.Intern(pcs) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistinctSlicesDistinctIDs(t *testing.T) {
	tbl := NewTable()
	f := func(a, b []uint16) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		pa := make([]uintptr, len(a))
		for i, r := range a {
			pa[i] = uintptr(r) + 1
		}
		pb := make([]uintptr, len(b))
		for i, r := range b {
			pb[i] = uintptr(r) + 1
		}
		same := slicesEqual(pa, pb)
		return (tbl.Intern(pa) == tbl.Intern(pb)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIntern(t *testing.T) {
	tbl := NewTable()
	done := make(chan ID, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- tbl.Intern([]uintptr{1, 2, 3}) }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if id := <-done; id != first {
			t.Fatalf("concurrent interning of same stack diverged: %d vs %d", id, first)
		}
	}
}

func slicesEqual(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTableConcurrentUse(t *testing.T) {
	// The table is shared by all engines of a parallel fault-injection
	// campaign; under -race this exercises every accessor concurrently.
	tbl := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tbl.Intern([]uintptr{uintptr(g%4 + 1), uintptr(i%17 + 1), 7})
				if pcs := tbl.PCs(id); len(pcs) != 3 {
					t.Errorf("interned stack resolved to %d PCs", len(pcs))
					return
				}
				if cid := captureViaHelper(tbl); cid != NoID {
					_ = tbl.Frames(cid)
					_ = tbl.Format(cid)
				}
				_ = tbl.Len()
			}
		}()
	}
	wg.Wait()
}

// Steady-state Capture of an already-interned stack must not allocate:
// the PC buffer is pooled and Intern's fast path only reads. One warm-up
// capture interns the path (and seeds the pool and PC-class cache)
// before measuring.
func TestCaptureSteadyStateDoesNotAllocate(t *testing.T) {
	tbl := NewTable()
	captureViaHelper(tbl)
	allocs := testing.AllocsPerRun(100, func() {
		if captureViaHelper(tbl) == NoID {
			t.Fatal("capture returned NoID")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Capture allocates %.1f objects per call, want 0", allocs)
	}
}

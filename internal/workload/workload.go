// Package workload generates the deterministic key-value workloads that
// drive the applications under test (§6.1: N operations equally
// distributed among puts, gets and deletes over a bounded keyspace).
//
// Determinism matters twice: bug reproducibility, and Mumak's
// instruction-counter optimisation, which requires that re-running the
// same workload reproduces the same instruction stream.
package workload

import "math/rand"

// Kind is the operation type.
type Kind uint8

// Operation kinds.
const (
	Put Kind = iota
	Get
	Delete
)

var kindNames = [...]string{Put: "put", Get: "get", Delete: "delete"}

// String returns the operation name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "op?"
}

// Op is one key-value operation.
type Op struct {
	// Kind selects put/get/delete.
	Kind Kind
	// Key is the operation key.
	Key uint64
	// Val is the value for puts.
	Val uint64
}

// Workload is a deterministic operation sequence.
type Workload struct {
	// Ops is the operation list, executed in order.
	Ops []Op
	// Seed reproduces the workload via Generate.
	Seed int64
}

// Len returns the number of operations.
func (w Workload) Len() int { return len(w.Ops) }

// Distribution selects how keys are drawn from the keyspace.
type Distribution uint8

// Key distributions.
const (
	// Uniform draws keys uniformly, the paper's workload shape.
	Uniform Distribution = iota
	// Zipfian draws keys with the skew typical of YCSB workloads:
	// a small hot set absorbs most operations.
	Zipfian
)

// Config parameterises Generate.
type Config struct {
	// N is the total number of operations.
	N int
	// Seed drives generation; equal seeds yield equal workloads.
	Seed int64
	// Keyspace bounds keys to [0, Keyspace); 0 means N/2, which keeps
	// collisions, overwrites and deletes-of-present-keys frequent.
	Keyspace uint64
	// PutFrac, GetFrac, DeleteFrac select the operation mix out of the
	// sum of the three; all zero means the paper's equal thirds.
	PutFrac, GetFrac, DeleteFrac int
	// Dist selects the key distribution (default Uniform).
	Dist Distribution
}

func (c Config) withDefaults() Config {
	if c.Keyspace == 0 {
		c.Keyspace = uint64(c.N/2 + 1)
	}
	if c.PutFrac == 0 && c.GetFrac == 0 && c.DeleteFrac == 0 {
		c.PutFrac, c.GetFrac, c.DeleteFrac = 1, 1, 1
	}
	return c
}

// Generate produces a deterministic workload for the configuration.
// The first few operations are always puts so that every structure has
// content before the first get or delete.
func Generate(cfg Config) Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.PutFrac + cfg.GetFrac + cfg.DeleteFrac
	ops := make([]Op, cfg.N)
	warmup := cfg.N / 20
	if warmup > 64 {
		warmup = 64
	}
	var zipf *rand.Zipf
	if cfg.Dist == Zipfian && cfg.Keyspace > 1 {
		zipf = rand.NewZipf(rng, 1.1, 1, cfg.Keyspace-1)
	}
	for i := range ops {
		var key uint64
		if zipf != nil {
			key = zipf.Uint64()
		} else {
			key = rng.Uint64() % cfg.Keyspace
		}
		var k Kind
		switch pick := rng.Intn(total); {
		case i < warmup || pick < cfg.PutFrac:
			k = Put
		case pick < cfg.PutFrac+cfg.GetFrac:
			k = Get
		default:
			k = Delete
		}
		ops[i] = Op{Kind: k, Key: key, Val: rng.Uint64()}
	}
	return Workload{Ops: ops, Seed: cfg.Seed}
}

// Mix reports the per-kind operation counts, for tests and reports.
func (w Workload) Mix() (puts, gets, deletes int) {
	for _, op := range w.Ops {
		switch op.Kind {
		case Put:
			puts++
		case Get:
			gets++
		default:
			deletes++
		}
	}
	return
}

// YCSB-style presets over the generator, for the domain examples: A is
// update-heavy (50/50), B read-heavy (95/5), C read-only on a loaded
// store, with the zipfian skew YCSB specifies.
func YCSB(preset byte, n int, seed int64) Workload {
	cfg := Config{N: n, Seed: seed, Dist: Zipfian}
	switch preset {
	case 'A', 'a':
		cfg.PutFrac, cfg.GetFrac, cfg.DeleteFrac = 10, 10, 0
	case 'B', 'b':
		cfg.PutFrac, cfg.GetFrac, cfg.DeleteFrac = 1, 19, 0
	default: // C
		cfg.PutFrac, cfg.GetFrac, cfg.DeleteFrac = 0, 1, 0
	}
	return Generate(cfg)
}

package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 1000, Seed: 7})
	b := Generate(Config{N: 1000, Seed: 7})
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{N: 100, Seed: 1})
	b := Generate(Config{N: 100, Seed: 2})
	same := true
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestMixRoughlyEqualThirds(t *testing.T) {
	w := Generate(Config{N: 30000, Seed: 3})
	puts, gets, dels := w.Mix()
	third := 10000
	for name, n := range map[string]int{"puts": puts, "gets": gets, "deletes": dels} {
		if n < third*8/10 || n > third*12/10 {
			t.Errorf("%s = %d, want ~%d", name, n, third)
		}
	}
}

func TestWarmupIsAllPuts(t *testing.T) {
	w := Generate(Config{N: 1000, Seed: 9})
	for i := 0; i < 1000/20; i++ {
		if w.Ops[i].Kind != Put {
			t.Fatalf("warmup op %d is %v, want put", i, w.Ops[i].Kind)
		}
	}
}

func TestCustomMix(t *testing.T) {
	w := Generate(Config{N: 10000, Seed: 4, PutFrac: 1, GetFrac: 0, DeleteFrac: 0})
	puts, gets, dels := w.Mix()
	if gets != 0 || dels != 0 || puts != 10000 {
		t.Fatalf("mix = %d/%d/%d, want all puts", puts, gets, dels)
	}
}

func TestPropertyKeysWithinKeyspace(t *testing.T) {
	f := func(seed int64, ksRaw uint16) bool {
		ks := uint64(ksRaw%1000) + 1
		w := Generate(Config{N: 200, Seed: seed, Keyspace: ks})
		for _, op := range w.Ops {
			if op.Key >= ks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	w := Generate(Config{N: 20000, Seed: 5, Keyspace: 1000, Dist: Zipfian})
	counts := map[uint64]int{}
	for _, op := range w.Ops {
		counts[op.Key]++
	}
	// The hottest key should absorb far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5*20000/1000 {
		t.Fatalf("hottest key hit %d times; zipfian skew absent", max)
	}
}

func TestYCSBPresets(t *testing.T) {
	a := YCSB('A', 10000, 1)
	puts, gets, _ := a.Mix()
	if puts == 0 || gets == 0 {
		t.Fatal("YCSB-A should mix reads and writes")
	}
	c := YCSB('C', 1000, 1)
	pc, _, dc := c.Mix()
	// Only the warmup preloads puts in the read-only preset.
	if pc > 1000/20+1 || dc != 0 {
		t.Fatalf("YCSB-C mix: %d puts %d deletes", pc, dc)
	}
}

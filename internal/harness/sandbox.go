package harness

import (
	"fmt"
	"runtime/debug"

	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// PanicInfo describes a foreign target panic captured by the sandboxed
// executor: the panic value and the goroutine trace at the point of
// failure, the raw material of a target-crash finding.
type PanicInfo struct {
	// Value is the recovered panic value.
	Value any
	// Trace is the goroutine stack at the panic.
	Trace string
}

// Outcome is the structured result of one sandboxed execution. At most
// one of Sig, Hang, Panic and Err is set; all nil means the execution
// completed normally.
type Outcome struct {
	// Sig is the injected crash, when a *pmem.CrashSignal fired.
	Sig *pmem.CrashSignal
	// Hang is set when the engine watchdog (fuel budget or wall-clock
	// deadline) preempted the execution.
	Hang *pmem.HangSignal
	// Panic captures a foreign panic of the target itself — a crash of
	// the application outside fault injection, which the sandbox turns
	// into data instead of propagating into the tool.
	Panic *PanicInfo
	// Err is the error returned by Setup or Run.
	Err error
}

// ExecuteSandboxed runs Setup and the workload like Execute, but converts
// every abnormal termination into the structured Outcome: injected
// crashes (as Execute does), watchdog preemptions, and — unlike Execute —
// foreign panics of the target itself. It is the execution entry point
// for campaigns that must survive a misbehaving black-box target and
// report its behaviour as a finding; Execute remains the strict variant
// whose callers want target bugs to fail loudly.
func ExecuteSandboxed(app Application, w workload.Workload, opts pmem.Options, hooks ...pmem.Hook) (eng *pmem.Engine, out Outcome) {
	if opts.PoolSize == 0 {
		opts.PoolSize = app.PoolSize()
	}
	eng = pmem.NewEngine(opts)
	for _, h := range hooks {
		eng.AttachHook(h)
	}
	out = runSandboxed(func() error {
		if err := app.Setup(eng); err != nil {
			return fmt.Errorf("setup: %w", err)
		}
		return app.Run(eng, w)
	})
	return eng, out
}

// runSandboxed invokes f, classifying every way it can stop.
func runSandboxed(f func() error) (out Outcome) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *pmem.CrashSignal:
			out.Sig = v
		case *pmem.HangSignal:
			out.Hang = v
		default:
			out.Panic = &PanicInfo{Value: v, Trace: string(debug.Stack())}
		}
	}()
	out.Err = f()
	return
}

// Package harness defines the contract between analysis tools and the
// applications under test.
//
// An Application is the analogue of the paper's "application binary plus
// workload" input: tools may run it, crash it, and invoke its recovery
// procedure, but see nothing of its internals. All PM access happens
// through the pmem.Engine handed to the application, which is the
// black-box observation channel.
package harness

import (
	"fmt"

	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// Application is a PM program under test.
type Application interface {
	// Name identifies the target in reports.
	Name() string
	// PoolSize is the PM pool size in bytes the application requires
	// for the workloads under test.
	PoolSize() int
	// Setup initialises a fresh (zeroed) pool: creates the pool layout
	// and root data structures, as the application would on first run.
	Setup(e *pmem.Engine) error
	// Run executes the workload against the pool.
	Run(e *pmem.Engine, w workload.Workload) error
	// Recover is the application's recovery procedure: invoked after a
	// restart, it attempts to bring the pool back to a consistent
	// state. A non-nil error flags the state as unrecoverable — the
	// signal Mumak's oracle relies on (§4.1). Recovery that panics is
	// an abrupt recovery failure and likewise a bug.
	Recover(e *pmem.Engine) error
}

// KV is a live key-value handle used by semantics-dependent tools
// (Witcher's driver requirement, Table 3) and by output-equivalence
// checking. Mumak itself never uses it.
type KV interface {
	// Put inserts or overwrites a key.
	Put(key, val uint64) error
	// Get returns the value and whether the key is present.
	Get(key uint64) (uint64, bool, error)
	// Delete removes a key; removing an absent key is not an error.
	Delete(key uint64) error
}

// KVApplication is an application exposing key-value semantics.
type KVApplication interface {
	Application
	// Open returns a live handle over an already set-up (or recovered)
	// pool.
	Open(e *pmem.Engine) (KV, error)
}

// RunKV drives a KV handle with a workload; it is the canonical Run
// implementation for KVApplication targets.
func RunKV(kv KV, w workload.Workload) error {
	for i, op := range w.Ops {
		var err error
		switch op.Kind {
		case workload.Put:
			err = kv.Put(op.Key, op.Val)
		case workload.Get:
			_, _, err = kv.Get(op.Key)
		case workload.Delete:
			err = kv.Delete(op.Key)
		}
		if err != nil {
			return fmt.Errorf("op %d (%s key=%d): %w", i, op.Kind, op.Key, err)
		}
	}
	return nil
}

// Execute runs Setup and the workload on a fresh engine with the hooks
// attached, converting an injected crash into a returned *pmem.CrashSignal.
// Other panics propagate: a crash of the target itself outside fault
// injection is a target bug the caller should not mask.
func Execute(app Application, w workload.Workload, opts pmem.Options, hooks ...pmem.Hook) (eng *pmem.Engine, sig *pmem.CrashSignal, err error) {
	if opts.PoolSize == 0 {
		opts.PoolSize = app.PoolSize()
	}
	eng = pmem.NewEngine(opts)
	for _, h := range hooks {
		eng.AttachHook(h)
	}
	sig, err = runTrapped(func() error {
		if err := app.Setup(eng); err != nil {
			return fmt.Errorf("setup: %w", err)
		}
		return app.Run(eng, w)
	})
	return eng, sig, err
}

// runTrapped invokes f, converting a *pmem.CrashSignal panic into a
// return value and passing every other panic through.
func runTrapped(f func() error) (sig *pmem.CrashSignal, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cs, ok := r.(*pmem.CrashSignal); ok {
				sig = cs
				return
			}
			panic(r)
		}
	}()
	err = f()
	return
}

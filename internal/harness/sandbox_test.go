package harness_test

import (
	"errors"
	"strings"
	"testing"

	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

func TestSandboxCleanRunMatchesExecute(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3, Seed: 1})
	eng, out := harness.ExecuteSandboxed(&scriptApp{}, w, pmem.Options{})
	if out != (harness.Outcome{}) {
		t.Fatalf("outcome = %+v, want zero", out)
	}
	ref, _, _ := harness.Execute(&scriptApp{}, w, pmem.Options{})
	if eng.ICount() != ref.ICount() {
		t.Fatalf("sandboxed run delivered %d events, unsandboxed %d", eng.ICount(), ref.ICount())
	}
}

func TestSandboxTrapsCrashSignal(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3, Seed: 1})
	eng, out := harness.ExecuteSandboxed(&scriptApp{}, w, pmem.Options{}, crashHook{at: 5})
	if out.Sig == nil || out.Sig.ICount != 5 || out.Panic != nil || out.Hang != nil || out.Err != nil {
		t.Fatalf("outcome = %+v, want only Sig at 5", out)
	}
	if eng.ICount() != 5 {
		t.Fatalf("engine stopped at %d, want 5", eng.ICount())
	}
}

func TestSandboxCapturesForeignPanic(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3, Seed: 1})
	_, out := harness.ExecuteSandboxed(&scriptApp{}, w, pmem.Options{}, panicHook{})
	if out.Panic == nil {
		t.Fatalf("outcome = %+v, want a captured panic", out)
	}
	if out.Panic.Value != "not a crash signal" {
		t.Errorf("panic value = %v", out.Panic.Value)
	}
	if !strings.Contains(out.Panic.Trace, "OnEvent") {
		t.Error("panic trace lacks the failing frame")
	}
}

func TestSandboxCapturesHangSignal(t *testing.T) {
	w := workload.Generate(workload.Config{N: 50, Seed: 1})
	eng, out := harness.ExecuteSandboxed(&scriptApp{}, w, pmem.Options{MaxEvents: 10})
	if out.Hang == nil || out.Hang.Budget != 10 || out.Panic != nil {
		t.Fatalf("outcome = %+v, want a fuel trip at budget 10", out)
	}
	if eng.ICount() != 11 {
		t.Fatalf("engine stopped at %d, want 11", eng.ICount())
	}
}

func TestSandboxReturnsErrors(t *testing.T) {
	boom := errors.New("boom")
	_, out := harness.ExecuteSandboxed(&scriptApp{setupErr: boom}, workload.Workload{}, pmem.Options{})
	if !errors.Is(out.Err, boom) || !strings.Contains(out.Err.Error(), "setup") {
		t.Fatalf("outcome = %+v, want the wrapped setup error", out)
	}
}

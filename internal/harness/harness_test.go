package harness_test

import (
	"errors"
	"testing"

	"mumak/internal/harness"
	"mumak/internal/pmem"
	"mumak/internal/workload"
)

// scriptApp performs a fixed instruction sequence.
type scriptApp struct {
	setupErr error
	runErr   error
}

func (s *scriptApp) Name() string  { return "script" }
func (s *scriptApp) PoolSize() int { return 4096 }
func (s *scriptApp) Setup(e *pmem.Engine) error {
	e.Store64(0, 1)
	e.CLWB(0)
	e.SFence()
	return s.setupErr
}
func (s *scriptApp) Run(e *pmem.Engine, w workload.Workload) error {
	for range w.Ops {
		e.Store64(8, 2)
		e.CLWB(8)
		e.SFence()
	}
	return s.runErr
}
func (s *scriptApp) Recover(e *pmem.Engine) error { return nil }

func TestExecuteRunsSetupAndWorkload(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3, Seed: 1})
	eng, sig, err := harness.Execute(&scriptApp{}, w, pmem.Options{})
	if err != nil || sig != nil {
		t.Fatalf("err=%v sig=%v", err, sig)
	}
	// 3 events in setup + 3*3 in run.
	if eng.ICount() != 12 {
		t.Fatalf("icount = %d, want 12", eng.ICount())
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := harness.Execute(&scriptApp{setupErr: boom}, workload.Workload{}, pmem.Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type crashHook struct{ at uint64 }

func (h crashHook) OnEvent(ev *pmem.Event) {
	if ev.ICount == h.at {
		panic(&pmem.CrashSignal{ICount: ev.ICount, Reason: "test"})
	}
}

func TestExecuteTrapsCrashSignal(t *testing.T) {
	w := workload.Generate(workload.Config{N: 3, Seed: 1})
	eng, sig, err := harness.Execute(&scriptApp{}, w, pmem.Options{}, crashHook{at: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sig == nil || sig.ICount != 5 {
		t.Fatalf("sig = %+v", sig)
	}
	if eng.ICount() != 5 {
		t.Fatalf("engine stopped at %d, want 5", eng.ICount())
	}
}

func TestExecuteDoesNotSwallowOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	app := &scriptApp{}
	harness.Execute(app, workload.Workload{}, pmem.Options{}, panicHook{})
}

type panicHook struct{}

func (panicHook) OnEvent(*pmem.Event) { panic("not a crash signal") }

// modelKV is an in-memory KV for RunKV testing.
type modelKV struct {
	m       map[uint64]uint64
	failOn  workload.Kind
	failErr error
}

func (m *modelKV) Put(k, v uint64) error {
	if m.failErr != nil && m.failOn == workload.Put {
		return m.failErr
	}
	m.m[k] = v
	return nil
}
func (m *modelKV) Get(k uint64) (uint64, bool, error) {
	v, ok := m.m[k]
	return v, ok, nil
}
func (m *modelKV) Delete(k uint64) error {
	delete(m.m, k)
	return nil
}

func TestRunKVAppliesAllOps(t *testing.T) {
	kv := &modelKV{m: map[uint64]uint64{}}
	w := workload.Generate(workload.Config{N: 200, Seed: 3})
	if err := harness.RunKV(kv, w); err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	for _, op := range w.Ops {
		switch op.Kind {
		case workload.Put:
			model[op.Key] = op.Val
		case workload.Delete:
			delete(model, op.Key)
		}
	}
	if len(kv.m) != len(model) {
		t.Fatalf("kv has %d keys, model %d", len(kv.m), len(model))
	}
}

func TestRunKVWrapsErrorsWithOpContext(t *testing.T) {
	boom := errors.New("disk on fire")
	kv := &modelKV{m: map[uint64]uint64{}, failOn: workload.Put, failErr: boom}
	w := workload.Generate(workload.Config{N: 10, Seed: 4})
	err := harness.RunKV(kv, w)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

package metrics

import "testing"

func TestJournalCountersAccumulate(t *testing.T) {
	ResetJournalCounters()
	RecordJournal(10, 2, 0)
	RecordJournal(5, 1, 7)
	appends, snapshots, resumed := JournalCounters()
	if appends != 15 || snapshots != 3 || resumed != 7 {
		t.Errorf("JournalCounters = %d/%d/%d, want 15/3/7", appends, snapshots, resumed)
	}
	ResetJournalCounters()
	appends, snapshots, resumed = JournalCounters()
	if appends != 0 || snapshots != 0 || resumed != 0 {
		t.Errorf("reset left %d/%d/%d", appends, snapshots, resumed)
	}
}

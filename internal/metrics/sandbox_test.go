package metrics

import "testing"

func TestSandboxCountersAccumulate(t *testing.T) {
	ResetSandboxCounters()
	RecordSandbox(1, 2, 3)
	RecordSandbox(1, 0, 1)
	panics, hangs, recoveries := SandboxCounters()
	if panics != 2 || hangs != 2 || recoveries != 4 {
		t.Errorf("SandboxCounters = %d/%d/%d, want 2/2/4", panics, hangs, recoveries)
	}
	ResetSandboxCounters()
	panics, hangs, recoveries = SandboxCounters()
	if panics != 0 || hangs != 0 || recoveries != 0 {
		t.Errorf("reset left %d/%d/%d", panics, hangs, recoveries)
	}
}

// Package metrics collects the resource measurements of Table 2: wall
// time, average CPU load (busy goroutine-seconds over wall time), peak
// volatile memory relative to a vanilla execution, and PM overhead (the
// analysis' extra persistent memory relative to the target's own usage).
package metrics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Run aggregates one analysis run's resource usage.
type Run struct {
	start     time.Time
	wall      time.Duration
	busyNanos atomic.Int64
	heapStart uint64
	heapPeak  atomic.Uint64
	pmExtra   atomic.Uint64
	stopPoll  chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
}

// Start begins measuring; call Stop when the analysis finishes.
func Start() *Run {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r := &Run{
		start:     time.Now(),
		heapStart: ms.HeapAlloc,
		stopPoll:  make(chan struct{}),
		done:      make(chan struct{}),
	}
	r.heapPeak.Store(ms.HeapAlloc)
	go r.poll()
	return r
}

// poll samples heap usage until stopped.
func (r *Run) poll() {
	defer close(r.done)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopPoll:
			return
		case <-ticker.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			for {
				cur := r.heapPeak.Load()
				if ms.HeapAlloc <= cur || r.heapPeak.CompareAndSwap(cur, ms.HeapAlloc) {
					break
				}
			}
		}
	}
}

// AddBusy accounts busy worker time; workers call it with the duration
// they spent computing, so parallel tools accumulate CPU load above 1.
func (r *Run) AddBusy(d time.Duration) { r.busyNanos.Add(int64(d)) }

// AddPM accounts persistent memory the tool itself allocated (beyond the
// target's pools), e.g. XFDetector's on-PM analysis metadata.
func (r *Run) AddPM(bytes uint64) { r.pmExtra.Add(bytes) }

// Stop finishes measurement; extra calls are no-ops.
func (r *Run) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopPoll)
		<-r.done
		r.wall = time.Since(r.start)
	})
}

// Usage is the Table 2 row for one run.
type Usage struct {
	// Wall is the total analysis time.
	Wall time.Duration
	// CPULoad is busy-time divided by wall time: above 1 for parallel
	// tools, below 1 for runs that wait (e.g. oracle-bound serial
	// campaigns). It defaults to 1 only when no busy time was recorded
	// at all.
	CPULoad float64
	// PeakHeapBytes is the peak observed Go heap during the run.
	PeakHeapBytes uint64
	// HeapStartBytes is the heap size when the run began.
	HeapStartBytes uint64
	// PMExtraBytes is the tool's own persistent-memory footprint.
	PMExtraBytes uint64
}

// Usage returns the collected measurements; call after Stop.
func (r *Run) Usage() Usage {
	busy := time.Duration(r.busyNanos.Load())
	load := 1.0
	if r.wall > 0 && busy > 0 {
		// Report the true ratio: clamping sub-1 loads up would hide
		// genuinely idle (e.g. oracle-bound) runs from Table 2.
		load = float64(busy) / float64(r.wall)
	}
	return Usage{
		Wall:           r.wall,
		CPULoad:        load,
		PeakHeapBytes:  r.heapPeak.Load(),
		HeapStartBytes: r.heapStart,
		PMExtraBytes:   r.pmExtra.Load(),
	}
}

// RAMOverhead computes the Table 2 "peak RAM relative to vanilla" ratio
// given the vanilla execution's peak.
func (u Usage) RAMOverhead(vanillaPeak uint64) float64 {
	if vanillaPeak == 0 {
		return 1
	}
	return float64(u.PeakHeapBytes) / float64(vanillaPeak)
}

// Online-analyzer state counters. The streaming §4.2 analyzer publishes
// its peak live-cache-line count and peak resident state bytes here at
// Finalize; the trace-analysis benches read the process-wide maxima to
// demonstrate that analyzer state scales with live lines, not trace
// length.
var (
	analyzerPeakLines      atomic.Int64
	analyzerPeakStateBytes atomic.Uint64
)

// RecordAnalyzer folds one analyzer's peak state into the process-wide
// maxima. Safe for concurrent runs.
func RecordAnalyzer(peakLines int, peakStateBytes uint64) {
	for {
		cur := analyzerPeakLines.Load()
		if int64(peakLines) <= cur || analyzerPeakLines.CompareAndSwap(cur, int64(peakLines)) {
			break
		}
	}
	for {
		cur := analyzerPeakStateBytes.Load()
		if peakStateBytes <= cur || analyzerPeakStateBytes.CompareAndSwap(cur, peakStateBytes) {
			break
		}
	}
}

// AnalyzerPeaks returns the process-wide analyzer maxima recorded since
// the last reset: peak live cache lines and peak resident state bytes.
func AnalyzerPeaks() (lines int, stateBytes uint64) {
	return int(analyzerPeakLines.Load()), analyzerPeakStateBytes.Load()
}

// ResetAnalyzerPeaks zeroes the analyzer maxima (benches call it before a
// measured run).
func ResetAnalyzerPeaks() {
	analyzerPeakLines.Store(0)
	analyzerPeakStateBytes.Store(0)
}

// Campaign sandbox counters. Every analysis folds its sandbox
// interventions in here so long-running harnesses (and the robustness
// benches) can observe process-wide how often targets panicked, ran out
// of hang-watchdog fuel, or hung in recovery.
var (
	sandboxTargetPanics  atomic.Int64
	sandboxTargetHangs   atomic.Int64
	sandboxRecoveryHangs atomic.Int64
)

// RecordSandbox accumulates one analysis run's sandbox interventions.
// Safe for concurrent runs.
func RecordSandbox(targetPanics, targetHangs, recoveryHangs int) {
	sandboxTargetPanics.Add(int64(targetPanics))
	sandboxTargetHangs.Add(int64(targetHangs))
	sandboxRecoveryHangs.Add(int64(recoveryHangs))
}

// SandboxCounters returns the process-wide sandbox totals recorded since
// the last reset: target panics, fuel-budget kills, and recovery hangs.
func SandboxCounters() (targetPanics, targetHangs, recoveryHangs int) {
	return int(sandboxTargetPanics.Load()),
		int(sandboxTargetHangs.Load()),
		int(sandboxRecoveryHangs.Load())
}

// ResetSandboxCounters zeroes the sandbox totals.
func ResetSandboxCounters() {
	sandboxTargetPanics.Store(0)
	sandboxTargetHangs.Store(0)
	sandboxRecoveryHangs.Store(0)
}

// Injection-campaign counters, split by mode. Every analysis folds its
// campaign shape in here — worker count, replays, claim contention, and
// worker busy time versus campaign wall time — so harnesses and the
// parallelism benches can observe process-wide how well each mode's
// fan-out is utilised (busy/wall ≈ workers means full utilisation) and
// that the lock-free claim traversal stays contention-free.
type campaignCounters struct {
	campaigns  atomic.Int64
	workers    atomic.Int64 // sum over campaigns; average = workers/campaigns
	replays    atomic.Int64
	contention atomic.Int64
	busyNanos  atomic.Int64
	wallNanos  atomic.Int64
}

var counterCampaigns, stackCampaigns campaignCounters

func campaignFor(stackMode bool) *campaignCounters {
	if stackMode {
		return &stackCampaigns
	}
	return &counterCampaigns
}

// RecordCampaign accumulates one injection campaign's shape: its mode,
// worker count, consumed replays, observed claim contention, summed
// worker busy time and campaign wall time. Safe for concurrent runs.
func RecordCampaign(stackMode bool, workers, replays, contention int, busy, wall time.Duration) {
	c := campaignFor(stackMode)
	c.campaigns.Add(1)
	c.workers.Add(int64(workers))
	c.replays.Add(int64(replays))
	c.contention.Add(int64(contention))
	c.busyNanos.Add(int64(busy))
	c.wallNanos.Add(int64(wall))
}

// CampaignStats is the process-wide per-mode campaign aggregate.
type CampaignStats struct {
	// Campaigns is the number of campaigns recorded.
	Campaigns int
	// Workers sums the worker counts across campaigns.
	Workers int
	// Replays is the total number of injection replays consumed.
	Replays int
	// ClaimContention is the total number of lost claim races observed
	// by the failure-point claim sets; zero when traversal partitioning
	// is sound.
	ClaimContention int
	// Busy is the summed worker busy time; Wall the summed campaign
	// wall time. Busy/Wall is the average worker utilisation (≈ the
	// average worker count under full fan-out, ≤ 1 for serial runs).
	Busy, Wall time.Duration
}

// Utilization returns Busy/Wall, the average number of busy workers
// over the campaign; 0 when nothing was recorded.
func (s CampaignStats) Utilization() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Wall)
}

// CampaignCounters returns the per-mode campaign totals recorded since
// the last reset.
func CampaignCounters(stackMode bool) CampaignStats {
	c := campaignFor(stackMode)
	return CampaignStats{
		Campaigns:       int(c.campaigns.Load()),
		Workers:         int(c.workers.Load()),
		Replays:         int(c.replays.Load()),
		ClaimContention: int(c.contention.Load()),
		Busy:            time.Duration(c.busyNanos.Load()),
		Wall:            time.Duration(c.wallNanos.Load()),
	}
}

// ResetCampaignCounters zeroes both modes' campaign totals.
func ResetCampaignCounters() {
	for _, c := range []*campaignCounters{&counterCampaigns, &stackCampaigns} {
		c.campaigns.Store(0)
		c.workers.Store(0)
		c.replays.Store(0)
		c.contention.Store(0)
		c.busyNanos.Store(0)
		c.wallNanos.Store(0)
	}
}

// Crash-image verdict-cache counters. Every analysis folds its campaign
// cache traffic in here so harnesses and the dedup benches can observe
// process-wide how many recovery runs the cache elided.
var (
	imageCacheHits   atomic.Int64
	imageCacheMisses atomic.Int64
)

// RecordImageCache accumulates one analysis run's verdict-cache
// traffic. Safe for concurrent runs.
func RecordImageCache(hits, misses int) {
	imageCacheHits.Add(int64(hits))
	imageCacheMisses.Add(int64(misses))
}

// ImageCacheCounters returns the process-wide verdict-cache totals
// recorded since the last reset.
func ImageCacheCounters() (hits, misses int) {
	return int(imageCacheHits.Load()), int(imageCacheMisses.Load())
}

// ResetImageCacheCounters zeroes the verdict-cache totals.
func ResetImageCacheCounters() {
	imageCacheHits.Store(0)
	imageCacheMisses.Store(0)
}

// Crash-image equivalence-classing counters. Every analysis folds its
// classing activity in here so harnesses can observe process-wide how
// many replays phase-1 stamping elided and how warm the persistent
// cross-run verdict cache ran.
var (
	classingClasses   atomic.Int64
	classingInherited atomic.Int64
	classingAvoided   atomic.Int64
	persistentHits    atomic.Int64
	persistentMisses  atomic.Int64
)

// RecordClassing accumulates one analysis run's classing activity:
// distinct crash-image classes, members that inherited their class
// verdict, replays avoided outright, and persistent verdict-cache hits
// and misses. Safe for concurrent runs.
func RecordClassing(classes, inherited, avoided, pHits, pMisses int) {
	classingClasses.Add(int64(classes))
	classingInherited.Add(int64(inherited))
	classingAvoided.Add(int64(avoided))
	persistentHits.Add(int64(pHits))
	persistentMisses.Add(int64(pMisses))
}

// ClassingCounters returns the process-wide classing totals recorded
// since the last reset.
func ClassingCounters() (classes, inherited, avoided, pHits, pMisses int) {
	return int(classingClasses.Load()), int(classingInherited.Load()),
		int(classingAvoided.Load()), int(persistentHits.Load()), int(persistentMisses.Load())
}

// ResetClassingCounters zeroes the classing totals.
func ResetClassingCounters() {
	classingClasses.Store(0)
	classingInherited.Store(0)
	classingAvoided.Store(0)
	persistentHits.Store(0)
	persistentMisses.Store(0)
}

// Checkpointed-replay counters. Every analysis folds its checkpoint
// recording and restore traffic in here so harnesses can observe
// process-wide how much prefix re-execution the checkpoint store
// elided.
var (
	checkpointSnapshots atomic.Int64
	checkpointBytes     atomic.Int64
	checkpointRestores  atomic.Int64
)

// RecordCheckpoints accumulates one analysis run's checkpoint activity:
// snapshots recorded, approximate resident bytes, and injections served
// by a restore instead of a from-scratch replay. Safe for concurrent
// runs.
func RecordCheckpoints(snapshots int, bytes uint64, restores int) {
	checkpointSnapshots.Add(int64(snapshots))
	checkpointBytes.Add(int64(bytes))
	checkpointRestores.Add(int64(restores))
}

// CheckpointCounters returns the process-wide checkpointing totals
// recorded since the last reset.
func CheckpointCounters() (snapshots int, bytes uint64, restores int) {
	return int(checkpointSnapshots.Load()), uint64(checkpointBytes.Load()), int(checkpointRestores.Load())
}

// ResetCheckpointCounters zeroes the checkpointing totals.
func ResetCheckpointCounters() {
	checkpointSnapshots.Store(0)
	checkpointBytes.Store(0)
	checkpointRestores.Store(0)
}

// Campaign-journal counters. Every analysis folds its crash-safety
// traffic in here — durable verdict records appended, atomic snapshots
// written, and failure points whose verdicts were folded from a resumed
// journal instead of replayed — so harnesses can observe process-wide
// how much work resumability saved.
var (
	journalAppends   atomic.Int64
	journalSnapshots atomic.Int64
	journalResumed   atomic.Int64
)

// RecordJournal accumulates one analysis run's journal activity. Safe
// for concurrent runs.
func RecordJournal(appends, snapshots, resumed int) {
	journalAppends.Add(int64(appends))
	journalSnapshots.Add(int64(snapshots))
	journalResumed.Add(int64(resumed))
}

// JournalCounters returns the process-wide journal totals recorded
// since the last reset: records appended, snapshots written, and
// failure points restored from resumed journals.
func JournalCounters() (appends, snapshots, resumed int) {
	return int(journalAppends.Load()), int(journalSnapshots.Load()), int(journalResumed.Load())
}

// ResetJournalCounters zeroes the journal totals.
func ResetJournalCounters() {
	journalAppends.Store(0)
	journalSnapshots.Store(0)
	journalResumed.Store(0)
}

package metrics

import (
	"testing"
	"time"
)

// Usage must report the true busy/wall ratio: serial oracle-bound runs
// sit below 1, parallel campaigns above it. Only a run with no recorded
// busy time at all defaults to 1.
func TestCPULoadTrueRatio(t *testing.T) {
	cases := []struct {
		name string
		wall time.Duration
		busy time.Duration
		want float64
	}{
		{"idle-heavy serial run", time.Second, 250 * time.Millisecond, 0.25},
		{"fully busy", time.Second, time.Second, 1.0},
		{"parallel workers", time.Second, 4 * time.Second, 4.0},
		{"no busy time recorded", time.Second, 0, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Run{wall: tc.wall}
			r.busyNanos.Store(int64(tc.busy))
			if got := r.Usage().CPULoad; got != tc.want {
				t.Fatalf("CPULoad = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestStartStopCollects(t *testing.T) {
	r := Start()
	r.AddBusy(5 * time.Millisecond)
	r.AddPM(4096)
	r.Stop()
	r.Stop() // idempotent
	u := r.Usage()
	if u.Wall <= 0 {
		t.Fatalf("wall = %v", u.Wall)
	}
	if u.PMExtraBytes != 4096 {
		t.Fatalf("PMExtraBytes = %d", u.PMExtraBytes)
	}
	if u.PeakHeapBytes == 0 {
		t.Fatal("no heap peak sampled")
	}
	if u.CPULoad <= 0 {
		t.Fatalf("CPULoad = %v", u.CPULoad)
	}
}

func TestRAMOverhead(t *testing.T) {
	u := Usage{PeakHeapBytes: 300}
	if got := u.RAMOverhead(100); got != 3 {
		t.Fatalf("RAMOverhead = %v, want 3", got)
	}
	if got := u.RAMOverhead(0); got != 1 {
		t.Fatalf("RAMOverhead with zero vanilla peak = %v, want 1", got)
	}
}

// The analyzer gauges keep process-wide maxima across runs until reset.
func TestAnalyzerPeaks(t *testing.T) {
	ResetAnalyzerPeaks()
	RecordAnalyzer(10, 1000)
	RecordAnalyzer(5, 2000) // fewer lines but more bytes: both maxima independent
	lines, stateBytes := AnalyzerPeaks()
	if lines != 10 || stateBytes != 2000 {
		t.Fatalf("peaks = (%d, %d), want (10, 2000)", lines, stateBytes)
	}
	RecordAnalyzer(3, 500) // below both maxima: no change
	if lines, stateBytes = AnalyzerPeaks(); lines != 10 || stateBytes != 2000 {
		t.Fatalf("peaks regressed to (%d, %d)", lines, stateBytes)
	}
	ResetAnalyzerPeaks()
	if lines, stateBytes = AnalyzerPeaks(); lines != 0 || stateBytes != 0 {
		t.Fatalf("reset left (%d, %d)", lines, stateBytes)
	}
}

func TestRecordAnalyzerConcurrent(t *testing.T) {
	ResetAnalyzerPeaks()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				RecordAnalyzer(g*1000+i, uint64(g*1000+i))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	lines, stateBytes := AnalyzerPeaks()
	if lines != 7999 || stateBytes != 7999 {
		t.Fatalf("concurrent peaks = (%d, %d), want (7999, 7999)", lines, stateBytes)
	}
}

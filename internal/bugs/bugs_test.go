package bugs

import (
	"strings"
	"testing"
)

func TestRegistryTotalsMatchPaper(t *testing.T) {
	c, p, fc, fp := Counts()
	if c != 43 {
		t.Errorf("correctness bugs = %d, want 43 (Witcher's list)", c)
	}
	if p != 101 {
		t.Errorf("performance bugs = %d, want 101 (Witcher's list)", p)
	}
	if fp != p {
		t.Errorf("found performance = %d, want all %d", fp, p)
	}
	found := fc + fp
	total := c + p
	pct := 100 * found / total
	if pct != 90 {
		t.Errorf("expected coverage = %d%%, want 90%% (found %d of %d)", pct, found, total)
	}
}

func TestRegistryValidates(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIDsCarryAppPrefix(t *testing.T) {
	for _, b := range Registry {
		if !strings.HasPrefix(string(b.ID), b.App+"/") {
			t.Errorf("bug %q not prefixed with app %q", b.ID, b.App)
		}
	}
}

func TestLevelHashingHasSeventeen(t *testing.T) {
	n := 0
	for _, b := range ForApp("levelhash") {
		if b.Correctness() {
			n++
		}
	}
	if n != 17 {
		t.Fatalf("levelhash correctness bugs = %d, want 17 (§6.2)", n)
	}
}

func TestMissedAreOrderingOnly(t *testing.T) {
	for _, b := range Registry {
		if b.Mechanism == Missed && b.Class.Correctness() && b.Class != 2 /* Ordering */ {
			t.Errorf("missed bug %q has class %v; prefix images only hide ordering bugs", b.ID, b.Class)
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := Enable("btree/count-outside-tx")
	if !s.Has("btree/count-outside-tx") || s.Has("btree/root-publish-outside-tx") {
		t.Fatal("Enable built wrong set")
	}
	all := All("btree")
	if len(all) != 13 {
		t.Fatalf("All(btree) has %d bugs, want 13", len(all))
	}
	var nilSet Set
	if nilSet.Has("btree/count-outside-tx") {
		t.Fatal("nil set claims a bug")
	}
}

func TestLookup(t *testing.T) {
	b, ok := Lookup("cceh/dir-publish-early")
	if !ok || b.App != "cceh" {
		t.Fatalf("lookup failed: %+v %v", b, ok)
	}
	if _, ok := Lookup("nope/nope"); ok {
		t.Fatal("lookup found a ghost")
	}
}

// Package bugs is the ground-truth registry of seeded defects.
//
// The coverage evaluation of §6.2 measures Mumak against Witcher's bug
// list: 43 correctness and 101 performance bugs across PMDK's data
// stores, RECIPE indexes, Redis, WORT, Level Hashing, FAST&FAIR and
// CCEH. This package plays the role of that list: every application in
// internal/apps exposes named bug knobs; enabling a knob plants the
// corresponding defect, and the registry records its taxonomy class and
// which detection mechanism is expected to expose it, so experiments can
// compute coverage percentages exactly as the paper does.
package bugs

import (
	"fmt"
	"sort"

	"mumak/internal/taxonomy"
)

// ID names one seeded bug, conventionally "<app>/<slug>".
type ID string

// Mechanism is the Mumak component expected to expose a bug.
type Mechanism uint8

// Detection mechanisms.
const (
	// FaultInjection: exposed by crashing at a failure point and
	// failing recovery (correctness bugs).
	FaultInjection Mechanism = iota
	// TraceAnalysis: exposed by the single-pass pattern rules
	// (durability and performance bugs).
	TraceAnalysis
	// Missed: not expected to be found by Mumak — the ~10% of
	// Witcher's correctness bugs whose exposing post-failure state
	// does not respect a program-order prefix (§6.2), or bugs hidden
	// from the oracle by an absent recovery procedure.
	Missed
)

var mechanismNames = [...]string{
	FaultInjection: "fault-injection",
	TraceAnalysis:  "trace-analysis",
	Missed:         "missed",
}

// String names the mechanism.
func (m Mechanism) String() string {
	if int(m) < len(mechanismNames) {
		return mechanismNames[m]
	}
	return "mech?"
}

// Bug is one registry entry.
type Bug struct {
	// ID is the unique bug identifier.
	ID ID
	// App is the target application name.
	App string
	// Class is the taxonomy class.
	Class taxonomy.Class
	// Mechanism is the expected detector.
	Mechanism Mechanism
	// Description explains the planted defect.
	Description string
}

// Correctness reports whether the bug is a crash-consistency bug.
func (b Bug) Correctness() bool { return b.Class.Correctness() }

// Set selects which seeded bugs an application instance plants.
type Set map[ID]bool

// Has reports whether the bug is enabled; a nil Set plants nothing.
func (s Set) Has(id ID) bool { return s != nil && s[id] }

// All returns a Set enabling every registered bug for the application.
func All(app string) Set {
	s := Set{}
	for _, b := range ForApp(app) {
		s[b.ID] = true
	}
	return s
}

// Enable returns a Set with exactly the given bugs enabled.
func Enable(ids ...ID) Set {
	s := Set{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// ForApp returns the registered bugs of one application, sorted by ID.
func ForApp(app string) []Bug {
	var out []Bug
	for _, b := range Registry {
		if b.App == app {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the registry entry for id.
func Lookup(id ID) (Bug, bool) {
	for _, b := range Registry {
		if b.ID == id {
			return b, true
		}
	}
	return Bug{}, false
}

// Counts summarises the registry: total correctness and performance bugs
// (the paper's 43 + 101), and how many of each Mumak should find.
func Counts() (correctness, performance, foundCorrectness, foundPerformance int) {
	for _, b := range Registry {
		if b.Correctness() {
			correctness++
			if b.Mechanism != Missed {
				foundCorrectness++
			}
		} else {
			performance++
			if b.Mechanism != Missed {
				foundPerformance++
			}
		}
	}
	return
}

// Validate checks registry invariants: unique IDs, ID prefixes matching
// the app, and performance bugs never assigned to fault injection.
func Validate() error {
	seen := map[ID]bool{}
	for _, b := range Registry {
		if seen[b.ID] {
			return fmt.Errorf("duplicate bug id %q", b.ID)
		}
		seen[b.ID] = true
		if !b.Correctness() && b.Mechanism == FaultInjection {
			return fmt.Errorf("bug %q: performance bugs are invisible to fault injection", b.ID)
		}
	}
	return nil
}

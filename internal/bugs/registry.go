package bugs

import (
	"fmt"

	"mumak/internal/taxonomy"
)

// Registry is the ground-truth seeded bug list: 43 correctness and 101
// performance bugs distributed across the coverage targets, mirroring
// the totals of Witcher's list used in §6.2. Mumak's expected coverage
// is every TraceAnalysis and FaultInjection entry — 130/144 ≈ 90% — with
// the 14 Missed entries being ordering bugs whose exposing post-failure
// states do not respect a program-order prefix.
var Registry []Bug

func add(id ID, app string, class taxonomy.Class, mech Mechanism, desc string) {
	Registry = append(Registry, Bug{ID: id, App: app, Class: class, Mechanism: mech, Description: desc})
}

// addPerf appends n numbered performance bugs for app, cycling through
// redundant-flush, redundant-fence and transient-data classes.
func addPerf(app string, n int) {
	classes := []taxonomy.Class{taxonomy.RedundantFlush, taxonomy.RedundantFence, taxonomy.TransientData}
	descs := []string{
		"flush of a line not written since its last flush",
		"fence with no pending flush or non-temporal store",
		"PM region written on the hot path but never persisted (transient data)",
	}
	for i := 0; i < n; i++ {
		c := classes[i%3]
		add(ID(fmt.Sprintf("%s/pf-%02d", app, i+1)), app, c, TraceAnalysis, descs[i%3])
	}
}

func init() {
	// --- PMDK btree example (3 correctness + 10 performance).
	add("btree/split-missing-addrange", "btree", taxonomy.Atomicity, FaultInjection,
		"parent child-shift during split is not undo-logged; rollback leaves the parent half-updated")
	add("btree/root-publish-outside-tx", "btree", taxonomy.Ordering, FaultInjection,
		"new root pointer persisted outside the split transaction")
	add("btree/count-outside-tx", "btree", taxonomy.Atomicity, FaultInjection,
		"element count maintained with a non-transactional persisted store")
	addPerf("btree", 10)

	// --- PMDK rbtree example (2 + 8).
	add("rbtree/rotate-missing-addrange", "rbtree", taxonomy.Atomicity, FaultInjection,
		"rotation pointer updates are not undo-logged")
	add("rbtree/count-outside-tx", "rbtree", taxonomy.Atomicity, FaultInjection,
		"element count maintained with a non-transactional persisted store")
	addPerf("rbtree", 8)

	// --- PMDK hashmap_atomic example (3 + 8).
	add("hashmap/publish-before-init", "hashmap", taxonomy.Ordering, FaultInjection,
		"bucket head pointer published and persisted before the node fields are written")
	add("hashmap/rebuild-swap-early", "hashmap", taxonomy.Ordering, FaultInjection,
		"table pointer swapped to the new table before rehashing completes")
	add("hashmap/insert-single-fence", "hashmap", taxonomy.Ordering, Missed,
		"node initialisation and head publication flushed under one fence; exposing states violate program order")
	addPerf("hashmap", 8)

	// --- Level Hashing (17 + 12): the §6.2 oracle case study. All 17
	// are insert/delete/resize windows whose program-order prefix is
	// unrecoverable — but only with the (initially absent) recovery
	// procedure in place.
	lh := []struct {
		slug, desc string
	}{
		{"c01-top-slot-count-order", "top-level insert bumps the item count before writing the slot"},
		{"c02-bottom-slot-count-order", "bottom-level insert bumps the item count before writing the slot"},
		{"c03-top-alt-count-order", "top-level alternate-hash insert bumps the count before the slot"},
		{"c04-bottom-alt-count-order", "bottom-level alternate-hash insert bumps the count before the slot"},
		{"c05-delete-unlink-first", "delete clears the slot before decrementing the count"},
		{"c06-delete-alt-unlink-first", "alternate-position delete clears the slot before the count"},
		{"c07-resize-remove-first", "resize moves an item by deleting the old slot before inserting the new"},
		{"c08-resize-alt-remove-first", "resize alternate-bucket move deletes before inserting"},
		{"c09-resize-publish-early", "resize publishes the new level pointer before rehashing"},
		{"c10-resize-count-early", "resize persists the new capacity before moving items"},
		{"c11-tag-before-kv", "slot tag set and persisted before key/value are written"},
		{"c12-tag-before-kv-bottom", "bottom-level slot tag persisted before key/value"},
		{"c13-update-clear-first", "in-place update clears the tag, persists, then rewrites"},
		{"c14-update-clear-first-alt", "alternate-position update clears then rewrites with a persist between"},
		{"c15-swap-evict-order", "top-level displacement removes the victim before its copy exists"},
		{"c16-swap-evict-order-alt", "bottom-to-top promotion removes the victim before its copy exists"},
		{"c17-resize-old-free-early", "resize frees the level that lives on as the new bottom, corrupting live slots"},
	}
	for _, b := range lh {
		class := taxonomy.Atomicity
		if b.slug[1] == '0' && (b.slug[2] == '7' || b.slug[2] == '8' || b.slug[2] == '9') || b.slug[:3] == "c10" || b.slug[:3] == "c15" || b.slug[:3] == "c16" || b.slug[:3] == "c17" {
			class = taxonomy.Ordering
		}
		add(ID("levelhash/"+b.slug), "levelhash", class, FaultInjection, b.desc)
	}
	addPerf("levelhash", 12)

	// --- CCEH (5 + 12).
	add("cceh/dir-publish-early", "cceh", taxonomy.Ordering, FaultInjection,
		"directory entry points at the new segment before it is initialised")
	add("cceh/split-move-order", "cceh", taxonomy.Ordering, FaultInjection,
		"segment split deletes moved slots before inserting them into the new segment")
	add("cceh/split-single-fence", "cceh", taxonomy.Ordering, Missed,
		"segment split publishes directory entries and local depth under one fence")
	add("cceh/dir-double-fused", "cceh", taxonomy.Ordering, Missed,
		"directory doubling writes all entries then fences once")
	add("cceh/depth-fused-fence", "cceh", taxonomy.Ordering, Missed,
		"local and global depth updates flushed under one fence")
	addPerf("cceh", 12)

	// --- FAST&FAIR (4 + 14).
	add("fastfair/shift-lost-key", "fastfair", taxonomy.Atomicity, FaultInjection,
		"in-leaf shift overwrites before copying, losing a key at some crash points")
	add("fastfair/shift-single-fence", "fastfair", taxonomy.Ordering, Missed,
		"the per-entry shift fences are fused into one trailing fence")
	add("fastfair/sibling-single-fence", "fastfair", taxonomy.Ordering, Missed,
		"sibling pointer and split key flushed under one fence")
	add("fastfair/split-fused-fence", "fastfair", taxonomy.Ordering, Missed,
		"split copies and parent link flushed under one fence")
	addPerf("fastfair", 14)

	// --- WORT (3 + 10).
	add("wort/child-publish-early", "wort", taxonomy.Ordering, FaultInjection,
		"child pointer published and persisted before the leaf node is written")
	add("wort/leaf-single-fence", "wort", taxonomy.Ordering, Missed,
		"leaf contents and parent pointer flushed under one fence")
	add("wort/prefix-split-fused", "wort", taxonomy.Ordering, Missed,
		"path-compression split writes both nodes under one fence")
	addPerf("wort", 10)

	// --- PM-Redis (3 + 12).
	add("redis/log-seq-early", "redis", taxonomy.Ordering, FaultInjection,
		"append-only log sequence number persisted before the record body")
	add("redis/entry-single-fence", "redis", taxonomy.Ordering, Missed,
		"log record body and commit length flushed under one fence")
	add("redis/index-fused-fence", "redis", taxonomy.Ordering, Missed,
		"dict bucket pointer and entry flushed under one fence")
	addPerf("redis", 12)

	// --- ART, the RECIPE-style index (3 + 15).
	add("art/grow-fused-fence", "art", taxonomy.Ordering, Missed,
		"node4-to-node16 growth writes children and count under one fence")
	add("art/prefix-fused-fence", "art", taxonomy.Ordering, Missed,
		"prefix-split node pair flushed under one fence")
	add("art/leaf-fused-fence", "art", taxonomy.Ordering, Missed,
		"leaf and parent slot flushed under one fence")
	addPerf("art", 15)
}

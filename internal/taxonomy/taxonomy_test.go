package taxonomy

import "testing"

func TestClassCorrectnessSplit(t *testing.T) {
	for _, c := range []Class{Durability, Atomicity, Ordering, Liveness} {
		if !c.Correctness() {
			t.Errorf("%v should be a correctness class", c)
		}
	}
	for _, c := range []Class{RedundantFlush, RedundantFence, TransientData} {
		if c.Correctness() {
			t.Errorf("%v should be a performance class", c)
		}
	}
}

func TestTable1MumakRow(t *testing.T) {
	// Mumak's Table 1 row: every class detected automatically, both
	// agnosticism columns checked — the paper's headline comparison.
	var mumak *ToolProfile
	for i := range Table1 {
		if Table1[i].Name == "Mumak" {
			mumak = &Table1[i]
		}
	}
	if mumak == nil {
		t.Fatal("Mumak missing from Table 1")
	}
	for _, c := range Classes() {
		if mumak.Detects[c] != Yes {
			t.Errorf("Mumak support for %v = %v, want yes", c, mumak.Detects[c])
		}
	}
	if !mumak.AppAgnostic || !mumak.LibAgnostic {
		t.Error("Mumak must be application- and library-agnostic")
	}
}

func TestTable1NoOtherToolCoversEverything(t *testing.T) {
	for _, tool := range Table1 {
		if tool.Name == "Mumak" {
			continue
		}
		full := tool.AppAgnostic && tool.LibAgnostic
		for _, c := range Classes() {
			if tool.Detects[c] != Yes {
				full = false
			}
		}
		if full {
			t.Errorf("%s matches Mumak's full Table 1 row; the paper's comparison says none does", tool.Name)
		}
	}
}

func TestTable1AnnotationTools(t *testing.T) {
	// The ✓* entries: annotation-based tools require manual effort for
	// at least one class.
	for _, name := range []string{"pmemcheck", "PMTest", "XFDetector", "PMDebugger"} {
		found := false
		for _, tool := range Table1 {
			if tool.Name != name {
				continue
			}
			for _, s := range tool.Detects {
				if s == WithAnnotations {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s should have at least one annotation-dependent class", name)
		}
	}
}

func TestTable3MumakErgonomics(t *testing.T) {
	for _, row := range Table3 {
		if row.Name != "Mumak" {
			continue
		}
		if !row.CompleteBugPath || !row.FiltersUnique || !row.GenericWorkload ||
			row.ChangesTarget || row.ChangesBuild {
			t.Errorf("Mumak Table 3 row wrong: %+v", row)
		}
		return
	}
	t.Fatal("Mumak missing from Table 3")
}

func TestSupportStrings(t *testing.T) {
	if Yes.String() != "yes" || WithAnnotations.String() != "yes*" {
		t.Error("support rendering changed")
	}
	if No.String() != "" {
		t.Error("No should render empty (a blank Table 1 cell)")
	}
}

// Package taxonomy defines the PM bug taxonomy of §2 of the paper and
// the Table 1 classification of state-of-the-art tools against it.
package taxonomy

// Class is a bug class from the §2 taxonomy.
type Class uint8

// Bug classes. The first three are correctness (crash-consistency)
// classes; the last three are performance classes.
const (
	// Durability: a store lacking the flush/fence sequence needed to
	// guarantee it persists, or relying on cache eviction. Includes
	// dirty overwrites (overwriting a never-persisted store).
	Durability Class = iota
	// Atomicity: a set of stores that must persist atomically from a
	// logical standpoint but can persist partially.
	Atomicity
	// Ordering: persisted writes whose order can prevent the
	// application from recovering after a crash.
	Ordering
	// RedundantFlush: a flush of data that was not overwritten since
	// the last flush, acts on a volatile address, or duplicates a
	// same-line flush.
	RedundantFlush
	// RedundantFence: a fence with no pending flush or non-temporal
	// store since the previous fence.
	RedundantFence
	// TransientData: PM used for data that is never persisted and
	// could live in volatile memory.
	TransientData
	// Liveness: the target crashes abruptly outside fault injection or
	// fails to terminate (non-terminating recovery, runaway PM event
	// allocation). This class extends the §2 taxonomy — PM bug studies
	// treat abrupt recovery crashes and non-terminating recovery as
	// first-class categories — and is deliberately excluded from
	// Classes(), which reproduces the paper's Table 1 columns.
	Liveness
)

var classNames = [...]string{
	Durability:     "durability",
	Atomicity:      "atomicity",
	Ordering:       "ordering",
	RedundantFlush: "redundant-flush",
	RedundantFence: "redundant-fence",
	TransientData:  "transient-data",
	Liveness:       "liveness",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Correctness reports whether the class is a correctness class (as
// opposed to a performance class). Liveness failures are correctness
// bugs: the target or its recovery stops serving.
func (c Class) Correctness() bool { return c <= Ordering || c == Liveness }

// Classes lists every §2 class in taxonomy order (the Table 1 columns;
// the repo's Liveness extension is excluded).
func Classes() []Class {
	return []Class{Durability, Atomicity, Ordering, RedundantFlush, RedundantFence, TransientData}
}

// Support describes how a tool covers a bug class (Table 1).
type Support uint8

// Support levels.
const (
	// No: the class is not detected.
	No Support = iota
	// Yes: detected automatically.
	Yes
	// WithAnnotations: detected only with manual annotations (the ✓*
	// of Table 1).
	WithAnnotations
	// Undistinguished: detected but conflated with durability bugs
	// (the ✓† of Table 1, for transient data).
	Undistinguished
	// PMDKTransactions: detected only for PMDK transaction usage
	// (Agamotto's atomicity support).
	PMDKTransactions
)

var supportNames = [...]string{
	No:               "",
	Yes:              "yes",
	WithAnnotations:  "yes*",
	Undistinguished:  "yes†",
	PMDKTransactions: "PMDK TXs",
}

// String renders the Table 1 cell.
func (s Support) String() string {
	if int(s) < len(supportNames) {
		return supportNames[s]
	}
	return "?"
}

// ToolProfile is one row of Table 1.
type ToolProfile struct {
	// Name is the tool name.
	Name string
	// Detects maps each taxonomy class to the tool's support level.
	Detects map[Class]Support
	// AppAgnostic and LibAgnostic are the last two Table 1 columns.
	AppAgnostic bool
	LibAgnostic bool
}

// Table1 reproduces the tool classification of Table 1 of the paper.
var Table1 = []ToolProfile{
	{
		Name: "pmemcheck",
		Detects: map[Class]Support{
			Durability:     WithAnnotations,
			RedundantFlush: Yes,
			TransientData:  Undistinguished,
		},
	},
	{
		Name: "PMTest",
		Detects: map[Class]Support{
			Durability: WithAnnotations,
			Atomicity:  WithAnnotations,
			Ordering:   WithAnnotations,
		},
		LibAgnostic: true,
	},
	{
		Name: "XFDetector",
		Detects: map[Class]Support{
			Durability: WithAnnotations,
			Atomicity:  WithAnnotations,
			Ordering:   WithAnnotations,
		},
		AppAgnostic: true,
		LibAgnostic: true,
	},
	{
		Name: "PMDebugger",
		Detects: map[Class]Support{
			Durability:     Yes,
			Atomicity:      WithAnnotations,
			Ordering:       WithAnnotations,
			RedundantFlush: Yes,
			TransientData:  Undistinguished,
		},
	},
	{
		Name: "Yat",
		Detects: map[Class]Support{
			Durability: Yes,
			Atomicity:  Yes,
			Ordering:   Yes,
		},
	},
	{
		Name: "Jaaru",
		Detects: map[Class]Support{
			Durability: Yes,
			Atomicity:  Yes,
			Ordering:   Yes,
		},
		AppAgnostic: true,
	},
	{
		Name: "Agamotto",
		Detects: map[Class]Support{
			Durability:     Yes,
			Atomicity:      PMDKTransactions,
			RedundantFlush: Yes,
			RedundantFence: Yes,
			TransientData:  Undistinguished,
		},
		AppAgnostic: true,
	},
	{
		Name: "Witcher",
		Detects: map[Class]Support{
			Durability:     Yes,
			Atomicity:      Yes,
			Ordering:       Yes,
			RedundantFlush: Yes,
			RedundantFence: Yes,
		},
	},
	{
		Name: "Mumak",
		Detects: map[Class]Support{
			Durability:     Yes,
			Atomicity:      Yes,
			Ordering:       Yes,
			RedundantFlush: Yes,
			RedundantFence: Yes,
			TransientData:  Yes,
		},
		AppAgnostic: true,
		LibAgnostic: true,
	},
}

// ErgonomicsRow is one row of Table 3 (qualitative ergonomics).
type ErgonomicsRow struct {
	Name            string
	CompleteBugPath bool
	FiltersUnique   bool
	GenericWorkload bool
	ChangesTarget   bool
	ChangesBuild    bool
}

// Table3 reproduces the ergonomics comparison of Table 3.
var Table3 = []ErgonomicsRow{
	{Name: "XFDetector", CompleteBugPath: false, FiltersUnique: false, GenericWorkload: true, ChangesTarget: true, ChangesBuild: true},
	{Name: "PMDebugger", CompleteBugPath: true, FiltersUnique: false, GenericWorkload: true, ChangesTarget: true, ChangesBuild: false},
	{Name: "Agamotto", CompleteBugPath: true, FiltersUnique: true, GenericWorkload: false, ChangesTarget: false, ChangesBuild: true},
	{Name: "Witcher", CompleteBugPath: false, FiltersUnique: false, GenericWorkload: false, ChangesTarget: true, ChangesBuild: true},
	{Name: "Mumak", CompleteBugPath: true, FiltersUnique: true, GenericWorkload: true, ChangesTarget: false, ChangesBuild: false},
}

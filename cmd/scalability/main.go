// Command scalability runs experiment E3 (claim C3): Mumak's analysis
// time against codebase size for the large targets — pmemkv's cmap and
// stree, Montage's hashtables, PM-Redis and PM-RocksDB — reproducing
// Fig 5: analysis time is not proportional to code size.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	"mumak/internal/experiments"
)

func main() {
	var (
		ops    = flag.Int("ops", 15000, "workload size (the paper uses 150000)")
		budget = flag.Duration("budget", 5*time.Minute, "per-target analysis budget")
		seed   = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()
	sc := experiments.Scale{Ops: *ops, Budget: *budget, Seed: *seed}
	runs, err := experiments.Fig5(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalability:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderFig5(runs))
}

// Flag validation. Every rejection is a single actionable line on
// stderr (via fatal) instead of a Go panic or a confusing downstream
// failure: a campaign that will run for hours should refuse nonsense
// before phase 1, and an unwritable artifacts directory should fail
// now, not after the analysis already spent its budget.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// flagValues collects the parsed flags that validateFlags inspects,
// keeping the checks unit-testable without driving the flag package.
type flagValues struct {
	ops          int
	workers      int
	poolMB       int
	imageCache   int
	ckptInterval int
	budget       time.Duration
	artifacts    string
	journal      string
	resume       bool
	verdictCache string
}

// validateFlags rejects flag combinations that cannot produce a useful
// campaign. It returns the first problem found as a one-line error.
func validateFlags(v flagValues) error {
	switch {
	case v.ops < 1:
		return fmt.Errorf("-ops %d: the workload needs at least one operation", v.ops)
	case v.workers < 1:
		return fmt.Errorf("-workers %d: the campaign needs at least one worker (1 = serial)", v.workers)
	case v.poolMB < 1:
		return fmt.Errorf("-pool-mb %d: the simulated PM pool needs at least 1 MiB", v.poolMB)
	case v.imageCache < 0:
		return fmt.Errorf("-image-cache %d: capacity cannot be negative (0 disables the cache)", v.imageCache)
	case v.ckptInterval < 0:
		return fmt.Errorf("-checkpoint-interval %d: interval cannot be negative (0 disables checkpoints)", v.ckptInterval)
	case v.budget < 0:
		return fmt.Errorf("-budget %s: the analysis budget cannot be negative", v.budget)
	case v.resume && v.journal == "":
		return fmt.Errorf("-resume needs -journal DIR: there is no journal to resume from")
	case v.verdictCache != "" && v.imageCache == 0:
		return fmt.Errorf("-verdict-cache-file needs the image cache: verdicts persist through it (-image-cache 0 disables it)")
	}
	if v.artifacts != "" {
		if err := probeWritableDir(v.artifacts); err != nil {
			return fmt.Errorf("-artifacts %s: %v", v.artifacts, err)
		}
	}
	return nil
}

// probeWritableDir creates the directory if needed and verifies a file
// can actually be created inside it, so permission problems surface
// before the analysis runs rather than when its results are saved.
func probeWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("not writable: %v", err)
	}
	probe := filepath.Join(dir, ".mumak-writable")
	f, err := os.Create(probe)
	if err != nil {
		return fmt.Errorf("not writable: %v", err)
	}
	f.Close()
	os.Remove(probe)
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validValues() flagValues {
	return flagValues{
		ops: 1000, workers: 4, poolMB: 64,
		imageCache: 4096, ckptInterval: 2000, budget: time.Minute,
	}
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if err := validateFlags(validValues()); err != nil {
		t.Fatalf("default-shaped flags rejected: %v", err)
	}
	// Zero disables the caches rather than erroring.
	v := validValues()
	v.imageCache, v.ckptInterval, v.budget = 0, 0, 0
	if err := validateFlags(v); err != nil {
		t.Fatalf("zero cache/interval/budget rejected: %v", err)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*flagValues)
		want   string
	}{
		{"ops", func(v *flagValues) { v.ops = 0 }, "-ops"},
		{"workers", func(v *flagValues) { v.workers = 0 }, "-workers"},
		{"workers-negative", func(v *flagValues) { v.workers = -3 }, "-workers"},
		{"pool", func(v *flagValues) { v.poolMB = 0 }, "-pool-mb"},
		{"image-cache", func(v *flagValues) { v.imageCache = -1 }, "-image-cache"},
		{"checkpoint-interval", func(v *flagValues) { v.ckptInterval = -9 }, "-checkpoint-interval"},
		{"budget", func(v *flagValues) { v.budget = -time.Second }, "-budget"},
		{"resume-without-journal", func(v *flagValues) { v.resume = true }, "-journal"},
		{"verdict-cache-without-image-cache", func(v *flagValues) {
			v.verdictCache = "verdicts.bin"
			v.imageCache = 0
		}, "-verdict-cache-file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := validValues()
			tc.mutate(&v)
			err := validateFlags(v)
			if err == nil {
				t.Fatalf("%+v accepted", v)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error is not a single line: %q", err)
			}
		})
	}
}

func TestValidateFlagsArtifactsProbe(t *testing.T) {
	v := validValues()
	v.artifacts = filepath.Join(t.TempDir(), "out")
	if err := validateFlags(v); err != nil {
		t.Fatalf("creatable artifacts dir rejected: %v", err)
	}
	if fi, err := os.Stat(v.artifacts); err != nil || !fi.IsDir() {
		t.Fatalf("probe did not create the directory: %v", err)
	}
	if entries, _ := os.ReadDir(v.artifacts); len(entries) != 0 {
		t.Fatalf("probe left %d files behind", len(entries))
	}

	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	locked := filepath.Join(t.TempDir(), "locked")
	if err := os.Mkdir(locked, 0o555); err != nil {
		t.Fatal(err)
	}
	v.artifacts = filepath.Join(locked, "out")
	if err := validateFlags(v); err == nil {
		t.Fatal("unwritable artifacts dir accepted")
	}
}

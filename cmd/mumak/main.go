// Command mumak is the analysis frontend (the paper's Bash driver): it
// takes a registered target "binary" and a workload description, runs
// the full Mumak pipeline — fault injection with the recovery oracle
// plus single-pass trace analysis — and prints the merged bug report.
//
// Example:
//
//	mumak -target btree -ops 15000 -spt
//	mumak -target montage-hashtable -montage-buggy
//	mumak -list
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mumak/internal/apps"
	"mumak/internal/apps/apptest/imagedup"
	"mumak/internal/apps/apptest/misbehave"
	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/montageht"
	_ "mumak/internal/apps/pmemkv"
	_ "mumak/internal/apps/rbtree"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/rocksdb"
	_ "mumak/internal/apps/wort"
	"mumak/internal/bugs"
	"mumak/internal/campaign"
	"mumak/internal/core"
	"mumak/internal/fpt"
	"mumak/internal/harness"
	"mumak/internal/pmdk"
	"mumak/internal/workload"
)

func main() {
	var (
		target     = flag.String("target", "btree", "application under test (see -list)")
		list       = flag.Bool("list", false, "list registered targets and exit")
		ops        = flag.Int("ops", 150000, "workload size (the paper's scale; the online analyzer keeps memory flat and -budget bounds the wall clock)")
		seed       = flag.Int64("seed", 42, "workload seed")
		spt        = flag.Bool("spt", false, "single put per transaction variant")
		pmdkVer    = flag.String("pmdk", "1.6", "PMDK version for PMDK-based targets: 1.6, 1.8, 1.12")
		warnings   = flag.Bool("warnings", false, "include trace-analysis warnings in the report")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON (CI-pipeline friendly)")
		eadr       = flag.Bool("eadr", false, "analyse under an eADR persistence domain (§4.3)")
		storeGran  = flag.Bool("store-granularity", false, "inject at every store instead of persistency instructions (ablation)")
		stackMode  = flag.Bool("stack-mode", false, "match failure points by call stack instead of instruction counter")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent fault-injection replays, in counter and stack mode (1 = serial)")
		budget     = flag.Duration("budget", 10*time.Minute, "analysis wall-clock budget (the paper uses 12h)")
		seedBugs   = flag.String("seed-bugs", "", "comma-separated seeded bug IDs to plant (see internal/bugs)")
		montageBug = flag.Bool("montage-buggy", false, "enable the two historical Montage bugs")
		recovery   = flag.Bool("with-recovery", true, "use the full recovery procedure for targets that ship without one")
		poolMB     = flag.Int("pool-mb", 64, "simulated PM pool size in MiB")
		artifacts  = flag.String("artifacts", "", "directory to store the serialised failure point tree (step 5 of Fig 1; the trace is analysed online and never materialised)")
		printTree  = flag.Bool("print-tree", false, "render the failure point tree (the Fig 2 view)")
		hangBudget = flag.Uint64("hang-budget", 0, "PM events one execution may emit before the hang watchdog kills it (0 = default)")
		recTimeout = flag.Duration("recovery-timeout", 0, "wall-clock watchdog per recovery-oracle invocation (0 = default)")
		imageCache = flag.Int("image-cache", core.DefaultImageCacheSize, "crash-image verdict cache capacity: identical crash images reuse one recovery verdict (0 disables)")
		ckptEvery  = flag.Int("checkpoint-interval", core.DefaultCheckpointInterval, "engine events between full-state checkpoints of the instrumented run; counter-mode replays restore from the nearest checkpoint instead of re-executing the prefix (0 disables)")
		exitZero   = flag.Bool("exit-zero", false, "exit 0 even when bugs were found (smoke tests that assert findings without failing the step)")
		journalDir = flag.String("journal", "", "directory for a durable campaign journal: every verdict is fsync'd, so a killed campaign resumes with -resume")
		resume     = flag.Bool("resume", false, "resume the journaled campaign in -journal instead of starting fresh")
		classing   = flag.Bool("classing", true, "group failure points by phase-1 crash-image hash and replay one representative per class; the rest inherit its verdict (reports are byte-identical)")
		vcFile     = flag.String("verdict-cache-file", "", "persistent cross-run verdict cache file: re-runs of the identical campaign replay only crash images never judged before")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(apps.Names(), "\n"))
		// The sandbox and image-dedup fixtures are targets too (kept out
		// of the paper's §6 registry on purpose).
		fmt.Println(strings.Join(misbehave.Names(), "\n"))
		fmt.Println(strings.Join(imagedup.Names(), "\n"))
		return
	}
	if err := validateFlags(flagValues{
		ops: *ops, workers: *workers, poolMB: *poolMB,
		imageCache: *imageCache, ckptInterval: *ckptEvery,
		budget: *budget, artifacts: *artifacts,
		journal: *journalDir, resume: *resume,
		verdictCache: *vcFile,
	}); err != nil {
		fatal(err)
	}
	ver, err := parseVersion(*pmdkVer)
	if err != nil {
		fatal(err)
	}
	set := bugs.Set{}
	if *seedBugs != "" {
		for _, id := range strings.Split(*seedBugs, ",") {
			bid := bugs.ID(strings.TrimSpace(id))
			if _, ok := bugs.Lookup(bid); !ok {
				fatal(fmt.Errorf("unknown seeded bug %q", bid))
			}
			set[bid] = true
		}
	}
	cfg := apps.Config{
		Ver: ver, SPT: *spt, Bugs: set,
		WithRecovery: *recovery, MontageBuggy: *montageBug,
		PoolSize: *poolMB << 20,
	}
	var app harness.Application
	if fixture, ok := misbehave.New(*target); ok {
		app = fixture
	} else if fixture, ok := imagedup.New(*target); ok {
		app = fixture
	} else {
		app, err = apps.New(*target, cfg)
		if err != nil {
			fatal(err)
		}
	}
	w := workload.Generate(workload.Config{N: *ops, Seed: *seed})
	gran := fpt.GranPersistency
	if *storeGran {
		gran = fpt.GranStore
	}
	cacheSize := *imageCache
	if cacheSize <= 0 {
		cacheSize = -1 // flag 0 means "off"; Config 0 means "default"
	}
	ckptInterval := *ckptEvery
	if ckptInterval <= 0 {
		ckptInterval = -1 // flag 0 means "off"; Config 0 means "default"
	}

	// Campaign journal: identity is pinned at creation and re-checked on
	// resume, so a journal can never be folded into a different campaign.
	meta := campaign.Meta{
		Target: *target, Ops: *ops, Seed: *seed,
		StackMode: *stackMode, StoreGranularity: *storeGran, EADR: *eadr,
	}
	var (
		journal     *campaign.Journal
		resumeState *campaign.State
	)
	switch {
	case *resume:
		st, err := campaign.Load(*journalDir)
		if err != nil {
			fatal(fmt.Errorf("resume: %v", err))
		}
		if err := st.Meta.Check(meta); err != nil {
			fatal(fmt.Errorf("resume: %v", err))
		}
		for _, d := range st.Diagnostics {
			fmt.Fprintln(os.Stderr, "mumak: journal:", d)
		}
		journal, err = st.Reopen()
		if err != nil {
			fatal(fmt.Errorf("resume: %v", err))
		}
		resumeState = st
	case *journalDir != "":
		journal, err = campaign.Create(*journalDir, meta)
		if err != nil {
			fatal(fmt.Errorf("journal: %v", err))
		}
	}

	// Persistent cross-run verdict cache: load before the analysis (a
	// missing file is a cold start; a corrupt or foreign one is fatal —
	// silently ignoring it would hide the warm start the user asked for)
	// and save the campaign's final verdicts after it.
	var warmVerdicts []campaign.CacheEntry
	if *vcFile != "" {
		warmVerdicts, err = campaign.LoadVerdictCache(*vcFile, meta)
		if err != nil {
			fatal(err)
		}
	}

	// Graceful interruption: the first SIGINT/SIGTERM drains in-flight
	// replays, flushes the journal and prints a partial report with
	// resume instructions; a second signal aborts hard.
	interrupt := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "mumak: %s: draining workers and flushing the journal (repeat to abort hard)\n", s)
		close(interrupt)
		s = <-sigs
		fmt.Fprintf(os.Stderr, "mumak: second %s: aborting\n", s)
		os.Exit(130)
	}()

	res, err := core.Analyze(app, w, core.Config{
		Granularity:        gran,
		Budget:             *budget,
		StackMode:          *stackMode,
		Workers:            *workers,
		KeepWarnings:       *warnings,
		EADR:               *eadr,
		HangBudget:         *hangBudget,
		RecoveryTimeout:    *recTimeout,
		ImageCacheSize:     cacheSize,
		CheckpointInterval: ckptInterval,
		Classing:           *classing,
		WarmVerdicts:       warmVerdicts,
		PersistVerdicts:    *vcFile != "",
		Interrupt:          interrupt,
		Journal:            journal,
		Resume:             resumeState,
	})
	if journal != nil {
		if cerr := journal.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mumak: journal:", cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.JournalError != "" {
		fmt.Fprintln(os.Stderr, "mumak: journal degraded to unjournaled:", res.JournalError)
	}
	if *vcFile != "" {
		// A failed save only loses next run's warmth, never this run's
		// report; a partial (interrupted) campaign's verdicts are still
		// valid — they are keyed by image content.
		if err := campaign.SaveVerdictCache(*vcFile, meta, res.VerdictCache); err != nil {
			fmt.Fprintln(os.Stderr, "mumak: verdict cache not saved:", err)
		}
	}
	if *artifacts != "" {
		if err := saveArtifacts(*artifacts, res); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		if err := res.Report.WriteJSON(os.Stdout, *warnings); err != nil {
			fatal(err)
		}
		os.Exit(exitCode(res, *exitZero))
	}
	if *printTree {
		fmt.Println("# failure point tree")
		fmt.Print(res.Tree.String())
		fmt.Println()
	}
	fmt.Print(res.Report.Format(*warnings))
	fmt.Printf("\nfailure points: %d (tree nodes %d) | injections: %d | trace records: %d\n",
		res.Tree.Len(), res.Tree.Nodes(), res.Injections, res.TraceLen)
	if res.AnalyzerPeakLines > 0 {
		fmt.Printf("analyzer state: peak %d live cache lines, ~%d bytes (streamed, trace not materialised)\n",
			res.AnalyzerPeakLines, res.AnalyzerPeakStateBytes)
	}
	if res.SkippedFailurePoints > 0 {
		fmt.Printf("skipped failure points: %d (coverage is below one fault per failure point)\n",
			res.SkippedFailurePoints)
	}
	if res.QuarantinedFailurePoints > 0 {
		fmt.Printf("quarantined failure points: %d (replays kept failing after retries; see the report section)\n",
			res.QuarantinedFailurePoints)
	}
	if res.InjectionAborted {
		fmt.Println("fault-injection campaign aborted: repeated replays made no progress")
	}
	for _, e := range res.InjectionErrors {
		fmt.Println("  ", e)
	}
	if res.RetriedFailurePoints > 0 {
		fmt.Printf("replay retries: %d (transient skips re-attempted)\n", res.RetriedFailurePoints)
	}
	if res.TargetPanics > 0 || res.TargetHangs > 0 || res.RecoveryHangs > 0 {
		fmt.Printf("sandbox interventions: %d target panic(s), %d hang-budget kill(s), %d recovery hang(s)\n",
			res.TargetPanics, res.TargetHangs, res.RecoveryHangs)
	}
	if lookups := res.ImageCacheHits + res.ImageCacheMisses; lookups > 0 {
		fmt.Printf("image cache: %d hit(s), %d miss(es) (%.1f%% hit rate, %d image(s) cached)\n",
			res.ImageCacheHits, res.ImageCacheMisses,
			100*float64(res.ImageCacheHits)/float64(lookups), res.ImageCacheEntries)
	}
	if res.EquivClasses > 0 {
		fmt.Printf("classing: %d equivalence class(es) over %d failure point(s), %d inherited verdict(s), %d replay(s) avoided\n",
			res.EquivClasses, res.Tree.Len(), res.InheritedVerdicts, res.ReplaysAvoided)
	}
	if lookups := res.PersistentCacheHits + res.PersistentCacheMisses; lookups > 0 {
		fmt.Printf("verdict cache file: %d persistent hit(s), %d miss(es)\n",
			res.PersistentCacheHits, res.PersistentCacheMisses)
	}
	if res.Checkpoints > 0 || res.CheckpointRestores > 0 {
		fmt.Printf("checkpoints: %d snapshot(s), ~%d KiB resident, %d replay(s) served by restore\n",
			res.Checkpoints, res.CheckpointBytes>>10, res.CheckpointRestores)
	}
	if res.CampaignWorkers > 1 && res.InjectTime > 0 {
		fmt.Printf("campaign workers: %d (avg %.1f busy, claim contention %d)\n",
			res.CampaignWorkers, float64(res.WorkerBusy)/float64(res.InjectTime), res.ClaimContention)
	}
	if res.JournalAppends > 0 || res.JournalSnapshots > 0 || res.ResumedFailurePoints > 0 {
		fmt.Printf("journal: %d verdict(s) appended, %d snapshot(s), %d verdict(s) restored on resume\n",
			res.JournalAppends, res.JournalSnapshots, res.ResumedFailurePoints)
	}
	fmt.Printf("time: %s total (instrument %s, inject %s, trace analysis %s)\n",
		res.Elapsed.Round(time.Millisecond), res.InstrumentTime.Round(time.Millisecond),
		res.InjectTime.Round(time.Millisecond), res.AnalysisTime.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Println("analysis budget expired before completion")
	}
	if res.Interrupted {
		hint := ""
		if *journalDir != "" {
			hint = fmt.Sprintf(" (resume: mumak -target %s -journal %s -resume)", *target, *journalDir)
		}
		fmt.Printf("campaign interrupted before completion%s\n", hint)
	}
	os.Exit(exitCode(res, *exitZero))
}

// exitCode maps the campaign outcome onto CI-friendly process status:
// 0 clean, 1 bugs found, 3 interrupted before completion. -exit-zero
// forces 0 for smoke tests that assert findings without failing the
// step.
func exitCode(res *core.Result, exitZero bool) int {
	switch {
	case exitZero:
		return 0
	case res.Interrupted:
		return 3
	case len(res.Report.Bugs()) > 0:
		return 1 // CI-pipeline friendly: bugs fail the build
	}
	return 0
}

// saveArtifacts serialises the pipeline by-products: the failure point
// tree (step 5 of Fig 1), together with the campaign's claim state so a
// restored tree knows which failure points were already explored.
// Program counters are process-local, so the artifacts document one
// analysis rather than seeding another process.
//
// The tree is written crash-safely — temp file, fsync, rename, fsync
// the directory — so a kill mid-save leaves either the previous
// complete artifact or the new one, never a truncated gob that panics
// a later decode.
func saveArtifacts(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "failure-point-tree.*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := res.Tree.Encode(tmp, res.Claims); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, "failure-point-tree.gob")); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func parseVersion(s string) (pmdk.Version, error) {
	switch s {
	case "1.6":
		return pmdk.V16, nil
	case "1.8":
		return pmdk.V18, nil
	case "1.12", "1.12.0":
		return pmdk.V112, nil
	}
	return 0, fmt.Errorf("unknown PMDK version %q (want 1.6, 1.8 or 1.12)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mumak:", err)
	os.Exit(2)
}

// Command coverage runs experiment E1 (claim C1): the unique-execution-
// path coverage of the PMDK data stores as a function of workload size,
// reproducing Fig 3a (persistency instructions) and Fig 3b (stores).
package main

import (
	"flag"
	"fmt"
	"os"

	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/rbtree"
	"mumak/internal/experiments"
)

func main() {
	var (
		divisor = flag.Int("divisor", 10, "divide the paper's workload sizes (3000..300000) by this factor")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()
	sizes := experiments.Fig3Sizes(*divisor)
	fig3a, fig3b, err := experiments.Fig3(sizes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderSeries(
		"Unique execution paths to persistency instructions vs workload size (Fig 3a)",
		"ops", "paths", fig3a))
	fmt.Println()
	fmt.Print(experiments.RenderSeries(
		"Unique execution paths to PM stores vs workload size (Fig 3b)",
		"ops", "paths", fig3b))
}

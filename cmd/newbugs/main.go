// Command newbugs reproduces the four previously unknown bugs of §6.4:
// the two Montage allocator bugs (confirmed and fixed upstream) and the
// two PMDK 1.12 bugs — the high-priority pmemobj_tx_commit undo-log
// growth bug (pmem/pmdk#5461) and the libart insert bug
// (pmem/pmdk#5512).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/montageht"
	"mumak/internal/experiments"
)

func main() {
	var (
		ops    = flag.Int("ops", 4000, "workload size; the PMDK 5461 bug needs a large transaction to trigger")
		budget = flag.Duration("budget", 2*time.Minute, "per-target analysis budget")
		seed   = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()
	sc := experiments.Scale{Ops: *ops, Budget: *budget, Seed: *seed}
	runs, err := experiments.NewBugs(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "newbugs:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderNewBugs(runs))
	for _, r := range runs {
		if !r.Found {
			os.Exit(1)
		}
	}
}

// Command tables prints the paper's qualitative tables from the
// taxonomy data: Table 1 (tool classification against the §2 bug
// taxonomy) and Table 3 (ergonomics), plus the seeded bug registry
// summary behind the §6.2 study.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "mumak/internal/apps/hashatomic"
	"mumak/internal/bugs"
	"mumak/internal/experiments"
	"mumak/internal/taxonomy"
)

func main() {
	measured := flag.Bool("measured", false, "additionally run the measured §6.5 ergonomics comparison")
	flag.Parse()
	printTable1()
	fmt.Println()
	printTable3()
	fmt.Println()
	printRegistry()
	if *measured {
		fmt.Println()
		rows, err := experiments.Ergonomics(experiments.Quick())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderErgonomics(rows))
	}
}

func printTable1() {
	fmt.Println("# Table 1: tool classification against the bug taxonomy")
	classes := taxonomy.Classes()
	fmt.Printf("%-12s", "tool")
	for _, c := range classes {
		fmt.Printf(" %-16s", c)
	}
	fmt.Printf(" %-10s %-10s\n", "app-agn.", "lib-agn.")
	for _, tool := range taxonomy.Table1 {
		fmt.Printf("%-12s", tool.Name)
		for _, c := range classes {
			fmt.Printf(" %-16s", tool.Detects[c])
		}
		fmt.Printf(" %-10s %-10s\n", check(tool.AppAgnostic), check(tool.LibAgnostic))
	}
}

func printTable3() {
	fmt.Println("# Table 3: output and ease-of-use")
	fmt.Printf("%-12s %-14s %-14s %-18s %-16s %-14s\n",
		"tool", "complete path", "unique bugs", "generic workload", "changes target", "changes build")
	for _, row := range taxonomy.Table3 {
		fmt.Printf("%-12s %-14s %-14s %-18s %-16s %-14s\n",
			row.Name, yesNo(row.CompleteBugPath), yesNo(row.FiltersUnique),
			yesNo(row.GenericWorkload), yesNo(row.ChangesTarget), yesNo(row.ChangesBuild))
	}
}

func printRegistry() {
	fmt.Println("# Seeded ground-truth bug registry (the §6.2 Witcher-list analogue)")
	c, p, fc, fp := bugs.Counts()
	fmt.Printf("%d correctness + %d performance bugs; Mumak expected to find %d + %d (%d%%)\n",
		c, p, fc, fp, 100*(fc+fp)/(c+p))
	perApp := map[string][2]int{}
	var order []string
	for _, b := range bugs.Registry {
		v, seen := perApp[b.App]
		if !seen {
			order = append(order, b.App)
		}
		if b.Correctness() {
			v[0]++
		} else {
			v[1]++
		}
		perApp[b.App] = v
	}
	for _, app := range order {
		v := perApp[app]
		fmt.Printf("  %-12s %2d correctness, %3d performance\n", app, v[0], v[1])
	}
	fmt.Println(strings.TrimSpace(`
Missed entries are ordering bugs whose exposing post-failure states do
not respect a program-order prefix (§4.1); Mumak warns about them via
the fence-ordering pattern instead of reporting bugs.`))
}

func check(b bool) string {
	if b {
		return "yes"
	}
	return ""
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Command buglist runs the §6.2 coverage study: Mumak against the
// seeded ground-truth registry (43 correctness + 101 performance bugs
// distributed like Witcher's list), one bug at a time, including the
// Level Hashing recovery-oracle story.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	_ "mumak/internal/apps/art"
	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/cceh"
	_ "mumak/internal/apps/fastfair"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/levelhash"
	_ "mumak/internal/apps/rbtree"
	_ "mumak/internal/apps/redis"
	_ "mumak/internal/apps/wort"
	"mumak/internal/bugs"
	"mumak/internal/experiments"
)

func main() {
	var (
		ops        = flag.Int("ops", 2000, "per-bug workload size")
		budget     = flag.Duration("budget", 60*time.Second, "per-bug analysis budget")
		seed       = flag.Int64("seed", 42, "workload seed")
		noRecovery = flag.Bool("no-recovery", false, "analyse Level Hashing with its original (absent) recovery procedure")
	)
	flag.Parse()
	sc := experiments.Scale{Ops: *ops, Budget: *budget, Seed: *seed}
	res, err := experiments.Coverage(sc, !*noRecovery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buglist:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderCoverage(res))
	c, p, fc, fp := bugs.Counts()
	fmt.Printf("registry expectation: %d/%d correctness, %d/%d performance -> %d%%\n",
		fc, c, fp, p, 100*(fc+fp)/(c+p))
}

// The -campaign mode benchmarks phase-1 crash-image equivalence
// classing and the persistent cross-run verdict cache on one target.
// Three campaigns run over the identical workload: unclassed and cold
// (the pre-classing scheduler), classed and cold (first run of this
// PR's scheduler), and classed and warm (a re-run seeded from the
// verdict-cache file the cold run saved — the incremental re-run the
// ROADMAP asks for). All three reports must render byte-identical;
// the savings are emitted as text and as a machine-readable JSON file
// CI archives.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mumak/internal/apps"
	"mumak/internal/campaign"
	"mumak/internal/core"
	"mumak/internal/report"
	"mumak/internal/workload"
)

// campaignSide is one campaign's cost sheet. RecoveryExecutions counts
// recovery-oracle runs that actually executed (image-cache misses);
// Replays counts injections that paid a checkpoint restore plus gap
// replay instead of inheriting or eliding.
type campaignSide struct {
	WallMS             int64  `json:"wall_ms"`
	InjectMS           int64  `json:"inject_ms"`
	Injections         int    `json:"injections"`
	Recoveries         int    `json:"recoveries"`
	RecoveryExecutions int    `json:"recovery_executions"`
	Replays            int    `json:"replays"`
	EngineEvents       uint64 `json:"engine_events"`
	ImageCacheHits     int    `json:"image_cache_hits"`
	ImageCacheMisses   int    `json:"image_cache_misses"`
	Findings           int    `json:"findings"`
}

// classedSide extends the cost sheet with the classing counters.
type classedSide struct {
	campaignSide
	EquivClasses          int `json:"equiv_classes"`
	InheritedVerdicts     int `json:"inherited_verdicts"`
	ReplaysAvoided        int `json:"replays_avoided"`
	PersistentCacheHits   int `json:"persistent_cache_hits"`
	PersistentCacheMisses int `json:"persistent_cache_misses"`
}

// campaignBench is the BENCH_campaign.json payload.
type campaignBench struct {
	Target           string       `json:"target"`
	Ops              int          `json:"ops"`
	Seed             int64        `json:"seed"`
	Baseline         campaignSide `json:"baseline"`
	Classed          classedSide  `json:"classed"`
	Warm             classedSide  `json:"warm"`
	ReportsIdentical bool         `json:"reports_identical"`
	// Cold ratios compare the first classed run against the baseline;
	// warm ratios compare the seeded re-run against it. Denominators of
	// zero (a fully warm re-run) are clamped to one, so the ratio is a
	// floor, not an overflow.
	ColdReplayRatio   float64 `json:"cold_replay_ratio"`
	ColdEventRatio    float64 `json:"cold_event_ratio"`
	WarmRecoveryRatio float64 `json:"warm_recovery_ratio"`
	WarmReplayRatio   float64 `json:"warm_replay_ratio"`
	WarmEventRatio    float64 `json:"warm_event_ratio"`
}

// renderedReport captures everything a report consumer can observe, so
// the identity check covers text and JSON emission alike.
func renderedReport(rep *report.Report) (string, error) {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, true); err != nil {
		return "", err
	}
	return rep.Format(true) + buf.String(), nil
}

func side(res *core.Result) campaignSide {
	return campaignSide{
		WallMS:             res.Elapsed.Milliseconds(),
		InjectMS:           res.InjectTime.Milliseconds(),
		Injections:         res.Injections,
		Recoveries:         res.Recoveries,
		RecoveryExecutions: res.ImageCacheMisses,
		Replays:            res.Injections - res.ReplaysAvoided,
		EngineEvents:       res.EngineEvents,
		ImageCacheHits:     res.ImageCacheHits,
		ImageCacheMisses:   res.ImageCacheMisses,
		Findings:           len(res.Report.Bugs()),
	}
}

func classed(res *core.Result) classedSide {
	return classedSide{
		campaignSide:          side(res),
		EquivClasses:          res.EquivClasses,
		InheritedVerdicts:     res.InheritedVerdicts,
		ReplaysAvoided:        res.ReplaysAvoided,
		PersistentCacheHits:   res.PersistentCacheHits,
		PersistentCacheMisses: res.PersistentCacheMisses,
	}
}

func ratio(base, opt float64) float64 {
	if opt < 1 {
		opt = 1
	}
	return base / opt
}

// runCampaignBench runs the classing differential benchmark and writes
// jsonPath. It returns an error instead of exiting so main owns the
// process status.
func runCampaignBench(target string, ops int, seed int64, budget time.Duration, jsonPath string) error {
	w := workload.Generate(workload.Config{N: ops, Seed: seed})
	run := func(classing bool, warm []campaign.CacheEntry, persist bool) (*core.Result, error) {
		app, err := apps.New(target, apps.Config{PoolSize: 64 << 20, WithRecovery: true})
		if err != nil {
			return nil, err
		}
		// Mirror the mumak CLI defaults so the numbers describe the real
		// campaign: the zero-value Config already enables the image cache
		// and checkpoints, so only the worker pool needs spelling out.
		return core.Analyze(app, w, core.Config{
			Budget:          budget,
			Workers:         runtime.GOMAXPROCS(0),
			Classing:        classing,
			WarmVerdicts:    warm,
			PersistVerdicts: persist,
		})
	}

	base, err := run(false, nil, false)
	if err != nil {
		return err
	}
	cold, err := run(true, nil, true)
	if err != nil {
		return err
	}

	// Round-trip the verdicts through the real cache file, exactly as a
	// -verdict-cache-file re-run would, so the benchmark also covers the
	// persistence layer.
	dir, err := os.MkdirTemp("", "mumak-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	vcFile := filepath.Join(dir, "verdicts.bin")
	meta := campaign.Meta{Target: target, Ops: ops, Seed: seed}
	if err := campaign.SaveVerdictCache(vcFile, meta, cold.VerdictCache); err != nil {
		return err
	}
	verdicts, err := campaign.LoadVerdictCache(vcFile, meta)
	if err != nil {
		return err
	}
	warm, err := run(true, verdicts, false)
	if err != nil {
		return err
	}

	wantRep, err := renderedReport(base.Report)
	if err != nil {
		return err
	}
	identical := true
	for _, res := range []*core.Result{cold, warm} {
		got, err := renderedReport(res.Report)
		if err != nil {
			return err
		}
		identical = identical && got == wantRep
	}

	b := campaignBench{Target: target, Ops: ops, Seed: seed}
	b.Baseline = side(base)
	b.Classed = classed(cold)
	b.Warm = classed(warm)
	b.ReportsIdentical = identical
	b.ColdReplayRatio = ratio(float64(b.Baseline.Replays), float64(b.Classed.Replays))
	b.ColdEventRatio = ratio(float64(b.Baseline.EngineEvents), float64(b.Classed.EngineEvents))
	b.WarmRecoveryRatio = ratio(float64(b.Baseline.RecoveryExecutions), float64(b.Warm.RecoveryExecutions))
	b.WarmReplayRatio = ratio(float64(b.Baseline.Replays), float64(b.Warm.Replays))
	b.WarmEventRatio = ratio(float64(b.Baseline.EngineEvents), float64(b.Warm.EngineEvents))

	enc, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(enc, '\n'), 0o644); err != nil {
		return err
	}

	row := func(name string, f func(campaignSide) any) {
		fmt.Printf("%-22s %14v %14v %14v\n", name, f(b.Baseline), f(b.Classed.campaignSide), f(b.Warm.campaignSide))
	}
	fmt.Printf("# Crash-image equivalence classing, %s ops=%d seed=%d\n\n", target, ops, seed)
	fmt.Printf("%-22s %14s %14s %14s\n", "", "unclassed", "classed cold", "classed warm")
	row("injections", func(s campaignSide) any { return s.Injections })
	row("replays", func(s campaignSide) any { return s.Replays })
	row("recovery executions", func(s campaignSide) any { return s.RecoveryExecutions })
	row("engine events", func(s campaignSide) any { return s.EngineEvents })
	row("findings", func(s campaignSide) any { return s.Findings })
	row("inject wall (ms)", func(s campaignSide) any { return s.InjectMS })
	fmt.Printf("\nequivalence classes: %d over %d failure points (cold: %d inherited, %d replays avoided; warm: %d persistent hits)\n",
		b.Classed.EquivClasses, b.Classed.Injections, b.Classed.InheritedVerdicts, b.Classed.ReplaysAvoided, b.Warm.PersistentCacheHits)
	fmt.Printf("cold run:  %.2fx fewer replays, %.2fx fewer engine events\n", b.ColdReplayRatio, b.ColdEventRatio)
	fmt.Printf("warm re-run: %.1fx fewer recovery executions, %.1fx fewer replays, %.2fx fewer engine events\n",
		b.WarmRecoveryRatio, b.WarmReplayRatio, b.WarmEventRatio)
	fmt.Printf("reports identical: %v\nwrote %s\n", identical, jsonPath)

	if !identical {
		return fmt.Errorf("classed/warm reports are NOT byte-identical to the unclassed one")
	}
	return nil
}

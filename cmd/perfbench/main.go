// Command perfbench runs experiment E2 (claim C2): the cross-tool
// performance comparison of §6.1, reproducing Fig 4a (PMDK 1.6: Mumak
// vs Agamotto vs XFDetector), Fig 4b (PMDK 1.8: Mumak vs PMDebugger vs
// Witcher) and the Table 2 resource columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	_ "mumak/internal/apps/btree"
	_ "mumak/internal/apps/hashatomic"
	_ "mumak/internal/apps/rbtree"
	"mumak/internal/experiments"
	"mumak/internal/pmdk"
)

func main() {
	var (
		version  = flag.String("pmdk", "1.6", "PMDK version to benchmark: 1.6 (Fig 4a) or 1.8 (Fig 4b)")
		ops      = flag.Int("ops", 15000, "workload size (the paper uses 150000)")
		budget   = flag.Duration("budget", 60*time.Second, "per-tool analysis budget (stands in for the paper's 12h)")
		memMB    = flag.Int("mem-mb", 2048, "per-tool memory budget in MiB (stands in for the machine's 256GB)")
		seed     = flag.Int64("seed", 42, "workload seed")
		campaign = flag.Bool("campaign", false, "benchmark crash-image equivalence classing instead of Fig 4")
		target   = flag.String("target", "btree", "registry target for -campaign")
		jsonOut  = flag.String("campaign-json", "BENCH_campaign.json", "machine-readable output file for -campaign")
	)
	flag.Parse()
	if *campaign {
		if err := runCampaignBench(*target, *ops, *seed, *budget, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}
	var ver pmdk.Version
	var title string
	switch *version {
	case "1.6":
		ver, title = pmdk.V16, "Analysis time and resources, PMDK 1.6 (Fig 4a + Table 2)"
	case "1.8":
		ver, title = pmdk.V18, "Analysis time and resources, PMDK 1.8 (Fig 4b + Table 2)"
	default:
		fmt.Fprintln(os.Stderr, "perfbench: -pmdk must be 1.6 or 1.8")
		os.Exit(2)
	}
	sc := experiments.Scale{Ops: *ops, Budget: *budget, MemBudget: uint64(*memMB) << 20, Seed: *seed}
	runs, err := experiments.Fig4(ver, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderToolRuns(title, runs))
}
